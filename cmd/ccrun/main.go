// Command ccrun runs one connected-components algorithm on an edge-list
// file (or a generated dataset) and reports the labelling summary and the
// engine metrics the paper's evaluation measures.
//
// Usage:
//
//	ccrun -algo rc -in graph.tsv
//	ccrun -algo hm -dataset "Candels10" -verify
//	ccrun -algo rc -method encryption -variant safe -in graph.tsv -out labels.tsv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"dbcc"
	"dbcc/internal/bench"
)

func main() {
	var (
		algo     = flag.String("algo", "rc", "algorithm: rc|hm|tp|cr|bfs|lc|ld|auto")
		in       = flag.String("in", "", "input edge-list file (v<TAB>w per line)")
		dataset  = flag.String("dataset", "", "generate a Table II dataset instead of reading a file")
		scale    = flag.Float64("scale", 1.0, "dataset scale")
		seed     = flag.Uint64("seed", 1, "algorithm seed")
		segments = flag.Int("segments", 0, "virtual MPP segments (0 = default)")
		method   = flag.String("method", "finite-fields", "RC randomisation: finite-fields|gf-prime|encryption|random-reals")
		variant  = flag.String("variant", "fast", "RC variant: fast (Fig. 4) | safe (Fig. 3)")
		verify   = flag.Bool("verify", false, "check the labelling against the Union/Find oracle")
		out      = flag.String("out", "", "write the labelling as v<TAB>label lines")
		budget   = flag.Int64("budget", 0, "live-space budget in bytes (0 = unlimited)")
	)
	flag.Parse()

	var g *dbcc.Graph
	switch {
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		g, err = dbcc.ReadGraph(bufio.NewReader(f))
		f.Close()
		if err != nil {
			fatal(err)
		}
	case *dataset != "":
		d, ok := bench.DatasetByName(*dataset)
		if !ok {
			fatal(fmt.Errorf("unknown dataset %q", *dataset))
		}
		g = d.Gen(*scale, *seed)
	default:
		flag.Usage()
		os.Exit(2)
	}

	params := dbcc.Params{Algorithm: *algo, Seed: *seed, MaxLiveBytes: *budget}
	switch strings.ToLower(*method) {
	case "finite-fields", "ff":
		params.Method = dbcc.FiniteFields
	case "gf-prime", "gfp":
		params.Method = dbcc.GFPrime
	case "encryption", "enc":
		params.Method = dbcc.Encryption
	case "random-reals", "rr":
		params.Method = dbcc.RandomReals
	default:
		fatal(fmt.Errorf("unknown method %q", *method))
	}
	switch strings.ToLower(*variant) {
	case "fast":
		params.Variant = dbcc.Fast
	case "safe":
		params.Variant = dbcc.Safe
	default:
		fatal(fmt.Errorf("unknown variant %q", *variant))
	}

	db := dbcc.Open(dbcc.Config{Segments: *segments})
	res, err := db.ConnectedComponents(g, params)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("input:      %d edges, %d vertices\n", g.NumEdges(), g.NumVertices())
	fmt.Printf("components: %d\n", res.Labels.NumComponents())
	fmt.Printf("rounds:     %d\n", res.Rounds)
	fmt.Printf("time:       %v\n", res.Elapsed)
	fmt.Printf("queries:    %d\n", res.Stats.Queries)
	fmt.Printf("written:    %.2f MiB\n", float64(res.Stats.BytesWritten)/(1<<20))
	fmt.Printf("peak space: %.2f MiB\n", float64(res.Stats.PeakBytes)/(1<<20))

	if *verify {
		if err := dbcc.Verify(g, res.Labels); err != nil {
			fatal(fmt.Errorf("verification FAILED: %w", err))
		}
		fmt.Println("verified against Union/Find oracle ✓")
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		w := bufio.NewWriter(f)
		vs := make([]int64, 0, len(res.Labels))
		for v := range res.Labels {
			vs = append(vs, v)
		}
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
		for _, v := range vs {
			fmt.Fprintf(w, "%d\t%d\n", v, res.Labels[v])
		}
		if err := w.Flush(); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ccrun:", err)
	os.Exit(1)
}
