// Command ccsql is a minimal interactive SQL shell over the embedded MPP
// engine, demonstrating the SQL substrate stand-alone. The paper's
// user-defined functions (axplusb, axbp, enc, hrand) are pre-registered,
// so the queries of Appendix A can be typed directly.
//
// Meta-commands: \d lists tables, \stats prints engine counters
// (including the plan-cache line), \cc TABLE [ALGO] runs connected
// components on a resident edge table (default ALGO is auto, the
// adaptive planner), \load NAME FILE bulk-loads an edge list,
// \prepare NAME SQL parses a $N statement once under a shell-local
// name, \bind NAME ARG... executes it with bound arguments (integers,
// "null", or bare words as table names), \timing toggles per-statement
// elapsed-time reporting, \trace [N] prints the last N records of the
// cluster's query-trace ring, \q quits.
//
// The chaos flags -fault-rate, -fault-seed and -timeout enable the
// engine's deterministic fault injection and per-statement deadline;
// \stats then also reports the retry/fault/cancellation totals.
//
// -mem-budget BYTES bounds each statement's working memory: joins,
// aggregations and sorts spill partitions to temporary files once their
// hash tables and sort state would exceed the per-segment share, with
// bit-identical results. \stats then reports the peak accounted working
// memory and the spill volume.
//
// -no-bloom and -no-fusion disable the engine's bloom-filtered join
// shuffle pruning and fused scan pipelines (identical results either
// way); EXPLAIN ANALYZE annotates pruned joins with `bloom checked=
// skipped=` when pruning is on.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"dbcc"
	"dbcc/internal/engine"
	"dbcc/internal/sql"
)

func main() {
	segments := flag.Int("segments", 0, "virtual MPP segments (0 = default)")
	faultRate := flag.Float64("fault-rate", 0, "inject segment-task failures at this probability per attempt (0 = off)")
	faultSeed := flag.Uint64("fault-seed", 1, "seed for the deterministic fault injector")
	timeout := flag.Duration("timeout", 0, "per-statement deadline (0 = none)")
	memBudget := flag.Int64("mem-budget", 0, "per-statement working-memory budget in bytes; kernels spill to disk beyond it (0 = unbounded)")
	noBloom := flag.Bool("no-bloom", false, "disable bloom-join shuffle pruning (results identical; shuffle traffic grows)")
	noFusion := flag.Bool("no-fusion", false, "disable fused scan→filter→project execution")
	flag.Parse()

	db := dbcc.Open(dbcc.Config{
		Segments:     *segments,
		FaultRate:    *faultRate,
		FaultSeed:    *faultSeed,
		QueryTimeout: *timeout,
		MemoryBudget: *memBudget,

		DisableBloomJoin:      *noBloom,
		DisableOperatorFusion: *noFusion,
	})
	defer db.Close()
	sess := db.SQL()
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)

	fmt.Printf("dbcc SQL shell — %d segments. End statements with ';', \\q to quit.\n",
		db.Cluster().Segments())
	var buf strings.Builder
	prompt := "sql> "
	timing := false
	prepared := make(map[string]*sql.Prepared)
	for {
		fmt.Print(prompt)
		if !in.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(in.Text())
		if buf.Len() == 0 && strings.HasPrefix(line, "\\") {
			if meta(db, sess, line, &timing, prepared) {
				return
			}
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		if !strings.HasSuffix(line, ";") {
			prompt = "...> "
			continue
		}
		prompt = "sql> "
		stmt := buf.String()
		buf.Reset()
		start := time.Now()
		execute(db, sess, stmt)
		if timing {
			fmt.Printf("Time: %.3f ms\n", float64(time.Since(start).Nanoseconds())/1e6)
		}
	}
}

// execute runs one statement, printing rows for SELECTs, plans for
// EXPLAIN, and row counts for everything else.
func execute(db *dbcc.DB, sess interface {
	Query(string) (engine.Schema, []engine.Row, error)
	Exec(string) (int64, error)
	Explain(string) (string, error)
}, stmt string) {
	trimmed := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(stmt), ";"))
	if trimmed == "" {
		return
	}
	if strings.HasPrefix(strings.ToLower(trimmed), "explain") {
		plan, err := sess.Explain(trimmed)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Println(plan)
		return
	}
	if strings.HasPrefix(strings.ToLower(trimmed), "select") {
		schema, rows, err := sess.Query(trimmed)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Println(strings.Join(schema, "\t"))
		const maxShow = 50
		for i, row := range rows {
			if i == maxShow {
				fmt.Printf("... (%d more rows)\n", len(rows)-maxShow)
				break
			}
			parts := make([]string, len(row))
			for j, d := range row {
				if d.Null {
					parts[j] = "NULL"
				} else {
					parts[j] = fmt.Sprintf("%d", d.Int)
				}
			}
			fmt.Println(strings.Join(parts, "\t"))
		}
		fmt.Printf("(%d rows)\n", len(rows))
		return
	}
	n, err := sess.Exec(trimmed)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("ok (%d rows)\n", n)
}

// meta handles backslash commands; it returns true on quit.
func meta(db *dbcc.DB, sess *sql.Session, line string, timing *bool, prepared map[string]*sql.Prepared) bool {
	fields := strings.Fields(line)
	switch fields[0] {
	case "\\q", "\\quit":
		return true
	case "\\timing":
		*timing = !*timing
		if *timing {
			fmt.Println("Timing is on.")
		} else {
			fmt.Println("Timing is off.")
		}
	case "\\trace":
		n := 10
		if len(fields) > 1 {
			v, err := strconv.Atoi(fields[1])
			if err != nil || v <= 0 {
				fmt.Println("usage: \\trace [N]")
				return false
			}
			n = v
		}
		printTrace(db.Cluster(), n)
	case "\\d":
		for _, name := range db.Cluster().TableNames() {
			t, _ := db.Cluster().Table(name)
			fmt.Printf("%-24s (%s)  %d rows\n", name, strings.Join(t.Schema, ", "), t.Rows())
		}
	case "\\stats":
		s := db.Cluster().Stats()
		fmt.Printf("queries=%d rowsWritten=%d written=%.2fMiB live=%.2fMiB peak=%.2fMiB shuffled=%.2fMiB\n",
			s.Queries, s.RowsWritten, float64(s.BytesWritten)/(1<<20),
			float64(s.LiveBytes)/(1<<20), float64(s.PeakBytes)/(1<<20),
			float64(s.ShuffleBytes)/(1<<20))
		if retries, faults, cancelled := db.Cluster().FaultTotals(); retries > 0 || faults > 0 || cancelled > 0 {
			fmt.Printf("retries=%d faults=%d cancelled=%d\n", retries, faults, cancelled)
		}
		if s.SpilledBytes > 0 || s.PeakWorkBytes > 0 {
			fmt.Printf("peakWork=%.2fMiB spilled=%.2fMiB spillParts=%d spillPasses=%d\n",
				float64(s.PeakWorkBytes)/(1<<20), float64(s.SpilledBytes)/(1<<20),
				s.SpillPartitions, s.SpillPasses)
		}
		fmt.Printf("planCache: hits=%d misses=%d invalidations=%d entries=%d parses=%d\n",
			s.PlanCacheHits, s.PlanCacheMisses, s.PlanCacheInvalidations,
			db.Cluster().PlanCacheLen(), s.Parses)
	case "\\prepare":
		if len(fields) < 3 {
			fmt.Println("usage: \\prepare NAME SQL")
			return false
		}
		name := fields[1]
		src := strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(line, fields[0]), " "+name))
		p, err := sess.Prepare(strings.TrimSuffix(src, ";"))
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		prepared[name] = p
		fmt.Printf("prepared %s: %d parameter(s)\n", name, p.NumParams())
	case "\\bind":
		if len(fields) < 2 {
			fmt.Println("usage: \\bind NAME [ARG...]  (integers, null, or table names)")
			return false
		}
		p, ok := prepared[fields[1]]
		if !ok {
			fmt.Printf("no prepared statement %q (use \\prepare)\n", fields[1])
			return false
		}
		args := make([]sql.Arg, 0, len(fields)-2)
		for i, raw := range fields[2:] {
			switch {
			case strings.EqualFold(raw, "null"):
				args = append(args, sql.Null())
			default:
				if v, err := strconv.ParseInt(raw, 10, 64); err == nil && !p.ParamIsTable(i+1) {
					args = append(args, sql.Int(v))
				} else {
					args = append(args, sql.Table(raw))
				}
			}
		}
		runPrepared(p, args)
	case "\\cc":
		if len(fields) < 2 || len(fields) > 3 {
			fmt.Println("usage: \\cc TABLE [ALGO]  (rc|hm|tp|cr|bfs|lc|ld|auto; default auto)")
			return false
		}
		algo := dbcc.Auto
		if len(fields) == 3 {
			algo = fields[2]
		}
		res, err := db.ConnectedComponentsOf(fields[1], dbcc.Params{Algorithm: algo})
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		fmt.Printf("components=%d rounds=%d time=%v queries=%d peak=%.2fMiB\n",
			res.Labels.NumComponents(), res.Rounds, res.Elapsed,
			res.Stats.Queries, float64(res.Stats.PeakBytes)/(1<<20))
	case "\\load":
		if len(fields) != 3 {
			fmt.Println("usage: \\load TABLENAME FILE")
			return false
		}
		f, err := os.Open(fields[2])
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		g, err := dbcc.ReadGraph(bufio.NewReader(f))
		f.Close()
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		if err := db.LoadGraph(fields[1], g); err != nil {
			fmt.Println("error:", err)
			return false
		}
		fmt.Printf("loaded %d edges into %s(v1, v2)\n", g.NumEdges(), fields[1])
	default:
		fmt.Println("meta commands: \\d  \\stats  \\cc TABLE [ALGO]  \\load NAME FILE  \\prepare NAME SQL  \\bind NAME ARG...  \\timing  \\trace [N]  \\q")
	}
	return false
}

// runPrepared executes a bound prepared statement, printing rows for a
// SELECT and a row count otherwise.
func runPrepared(p *sql.Prepared, args []sql.Arg) {
	if p.IsQuery() {
		schema, rows, err := p.Query(args...)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Println(strings.Join(schema, "\t"))
		const maxShow = 50
		for i, row := range rows {
			if i == maxShow {
				fmt.Printf("... (%d more rows)\n", len(rows)-maxShow)
				break
			}
			parts := make([]string, len(row))
			for j, d := range row {
				if d.Null {
					parts[j] = "NULL"
				} else {
					parts[j] = fmt.Sprintf("%d", d.Int)
				}
			}
			fmt.Println(strings.Join(parts, "\t"))
		}
		fmt.Printf("(%d rows)\n", len(rows))
		return
	}
	n, err := p.Exec(args...)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("ok (%d rows)\n", n)
}

// printTrace prints the newest n records of the cluster's query-trace
// ring, oldest first.
func printTrace(c *engine.Cluster, n int) {
	recs := c.Trace()
	if len(recs) == 0 {
		fmt.Println("trace is empty")
		return
	}
	if len(recs) > n {
		recs = recs[len(recs)-n:]
	}
	for _, r := range recs {
		target := ""
		if r.Target != "" {
			target = " -> " + r.Target
		}
		fmt.Printf("#%-4d %-7s %8.3fms rows=%-8d bytes=%-10d shuffle=%-10d %s%s\n",
			r.Seq, r.Kind, float64(r.Elapsed.Nanoseconds())/1e6,
			r.Rows, r.Bytes, r.Shuffle, r.Plan, target)
	}
}
