// Command ccserverd serves the embedded MPP cluster over TCP — the
// paper's in-database analysis as a long-lived, multi-tenant network
// service instead of an in-process library.
//
// Usage:
//
//	ccserverd -addr 127.0.0.1:7744
//
// Engine flags mirror the library's dbcc.Config: -segments, -workers,
// -mem-budget, -timeout, plus the chaos knobs -fault-rate/-fault-seed.
// Admission flags bound per-tenant load: -tenant-statements concurrent
// statements per tenant, -tenant-queue waiting statements beyond the
// cap, -queue-timeout the longest a queued statement waits before the
// server sheds it with a 429-style overload error. -auth-token requires
// clients to present a shared secret.
//
// SIGTERM or SIGINT triggers a graceful drain: the listener closes, new
// statements are rejected with 503, in-flight statements finish (bounded
// by -drain-timeout, after which they are cancelled through the engine's
// context plumbing), and the cluster's spill directory is removed. A
// clean drain exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dbcc"
	"dbcc/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7744", "TCP listen address (\":0\" picks a free port)")
		segments  = flag.Int("segments", 8, "virtual MPP segments")
		workers   = flag.Int("workers", 0, "worker-pool bound across all sessions (0 = GOMAXPROCS)")
		memBudget = flag.Int64("mem-budget", 0, "per-statement working-memory budget in bytes (0 = unbounded)")
		timeout   = flag.Duration("timeout", 0, "per-statement deadline (0 = none)")
		faultRate = flag.Float64("fault-rate", 0, "inject segment-task failures at this probability (0 = off)")
		faultSeed = flag.Uint64("fault-seed", 1, "seed for the deterministic fault injector")

		tenantStmts  = flag.Int("tenant-statements", 4, "concurrent statements per tenant")
		tenantQueue  = flag.Int("tenant-queue", 16, "queued statements per tenant beyond the cap (-1 disables queueing)")
		queueTimeout = flag.Duration("queue-timeout", 5*time.Second, "longest a queued statement waits before it is shed")
		authToken    = flag.String("auth-token", "", "shared secret clients must present (empty disables auth)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "longest a graceful drain waits for in-flight statements")
	)
	flag.Parse()

	srv := server.New(server.Config{
		Addr: *addr,
		DB: dbcc.Config{
			Segments:     *segments,
			Workers:      *workers,
			MemoryBudget: *memBudget,
			QueryTimeout: *timeout,
			FaultRate:    *faultRate,
			FaultSeed:    *faultSeed,
		},
		Admission: server.AdmissionConfig{
			TenantStatements: *tenantStmts,
			TenantQueue:      *tenantQueue,
			QueueTimeout:     *queueTimeout,
		},
		AuthToken: *authToken,
	})
	if err := srv.Listen(); err != nil {
		fmt.Fprintf(os.Stderr, "ccserverd: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("ccserverd: listening on %s (%d segments, %d statements/tenant, queue %d, queue timeout %s)\n",
		srv.Addr(), *segments, *tenantStmts, *tenantQueue, *queueTimeout)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	drainDone := make(chan error, 1)
	go func() {
		sig := <-sigCh
		fmt.Printf("ccserverd: %s received, draining (timeout %s)\n", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		drainDone <- srv.Shutdown(ctx)
	}()

	if err := srv.Serve(); err != nil {
		fmt.Fprintf(os.Stderr, "ccserverd: serve: %v\n", err)
		os.Exit(1)
	}
	if err := <-drainDone; err != nil {
		fmt.Fprintf(os.Stderr, "ccserverd: drain: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("ccserverd: drain complete")
}
