// Command ccgen writes the reproduction's synthetic datasets to
// tab-separated edge-list files, so they can be fed to ccrun, external
// tools, or inspected directly.
//
// Usage:
//
//	ccgen -list
//	ccgen -dataset "RMAT" -scale 1.0 -seed 2019 -out rmat.tsv
//	ccgen -dataset path -n 100000 -out path.tsv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dbcc/internal/bench"
	"dbcc/internal/datagen"
	"dbcc/internal/graph"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list available datasets")
		dataset = flag.String("dataset", "", "dataset name from -list, or path|pathunion|star|cycle|complete")
		scale   = flag.Float64("scale", 1.0, "dataset scale (Table II datasets)")
		seed    = flag.Uint64("seed", 2019, "generator seed")
		n       = flag.Int("n", 10000, "size for the simple generators (path, star, ...)")
		out     = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	if *list {
		fmt.Println("Table II datasets (use with -scale/-seed):")
		for _, d := range bench.Datasets() {
			fmt.Printf("  %s\n", d.Name)
		}
		fmt.Println("simple generators (use with -n): path pathunion star cycle complete")
		return
	}
	if *dataset == "" {
		flag.Usage()
		os.Exit(2)
	}

	var g *graph.Graph
	switch strings.ToLower(*dataset) {
	case "path":
		g = datagen.Path(*n)
	case "pathunion":
		g = datagen.PathUnion(10, *n)
	case "star":
		g = datagen.Star(*n)
	case "cycle":
		g = datagen.Cycle(*n)
	case "complete":
		g = datagen.Complete(*n)
	default:
		d, ok := bench.DatasetByName(*dataset)
		if !ok {
			fmt.Fprintf(os.Stderr, "ccgen: unknown dataset %q (try -list)\n", *dataset)
			os.Exit(2)
		}
		g = d.Gen(*scale, *seed)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ccgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := g.Write(w); err != nil {
		fmt.Fprintln(os.Stderr, "ccgen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %d edges, %d vertices\n", g.NumEdges(), g.NumVertices())
}
