// Command ccbench regenerates every table and figure of the paper's
// evaluation (Tables I–V, Figures 5–6) and the theory/ablation experiments
// indexed in DESIGN.md §3, at reproduction scale.
//
// Usage:
//
//	ccbench -table 1|2|3|4|5        one table
//	ccbench -figure 5|6             one figure
//	ccbench -experiment gamma|rounds|scaling|spark|variants|methods|rerandom|segments|spill|stream|frontier
//	ccbench -all                    everything (the EXPERIMENTS.md run)
//	ccbench -concurrency 8          N concurrent RC sessions on one cluster
//	ccbench -json                   machine-readable BENCH_<dataset>.json reports
//
// Flags -scale, -reps, -segments, -seed and -capacity tune the campaign;
// the defaults match the committed EXPERIMENTS.md numbers.
//
// Chaos flags exercise the fault-tolerance layer: -fault-rate injects
// deterministic segment-task failures at the given probability (retried
// by the engine with capped exponential backoff; the labellings must
// still verify), -fault-seed makes the fault schedule reproducible, and
// -timeout aborts any single statement exceeding the duration. A failed
// run reports the rounds it completed before aborting.
//
// -mem-budget BYTES bounds each statement's working memory: join,
// aggregate and sort kernels spill partitions to temporary files beyond
// their per-segment share (bit-identical results), and the JSON reports
// carry the spill accounting. The dedicated -experiment spill ablation
// instead derives a 10%-of-peak budget per algorithm automatically.
//
// JSON mode (-json) runs the four table algorithms plus the deterministic
// RC variant per dataset and writes one BENCH_<dataset>.json report per
// dataset into -out. -datasets selects a comma-separated subset (default
// all twelve), and -baseline compares each report's deterministic-RC query
// count against a committed baseline file, exiting non-zero on deviation —
// the CI bench-smoke contract.
//
// -loadgen ADDR drives mixed SQL + connected-components traffic at a
// running ccserverd over the wire protocol (-connections clients spread
// over -tenants tenant catalogs for -load-duration) and writes a schema-v7
// BENCH_server-soak.json with latency percentiles and the server's
// admission accounting into -out. -require-zero-shed makes any shed or
// failed operation exit non-zero — the CI server-soak contract. -stream
// switches the op mix to streamed edge inserts against a component index
// with -watchers live Watch subscriptions, writing BENCH_stream-soak.json
// with insert percentiles, relabel accounting, and sequence-gap counts —
// the CI stream-soak contract.
//
// -pprof addr serves net/http/pprof under /debug/pprof/ and a plain-text
// runtime/metrics dump under /metrics for profiling long campaigns.
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime/metrics"
	"strings"
	"time"

	"dbcc/internal/bench"
)

func main() {
	var (
		table      = flag.Int("table", 0, "print table 1-5")
		figure     = flag.Int("figure", 0, "print figure 5 or 6")
		experiment = flag.String("experiment", "", "run experiment: gamma|appendixb|naive|transaction|rounds|scaling|spark|variants|methods|rerandom|segments|spill|stream|frontier")
		all        = flag.Bool("all", false, "run everything")
		scale      = flag.Float64("scale", 1.0, "dataset scale (1.0 ≈ 1/10000 of the paper)")
		reps       = flag.Int("reps", 3, "repetitions per cell (paper: 3)")
		segments   = flag.Int("segments", 8, "virtual MPP segments")
		seed       = flag.Uint64("seed", 2019, "base seed")
		capacity   = flag.Float64("capacity", 6.2, "cluster storage capacity as a multiple of the largest input (0 = unlimited)")
		noVerify   = flag.Bool("noverify", false, "skip oracle verification of every labelling")
		quiet      = flag.Bool("quiet", false, "suppress progress output")
		conc       = flag.Int("concurrency", 0, "run N concurrent RC sessions on one shared cluster and report throughput")
		jsonOut    = flag.Bool("json", false, "write machine-readable BENCH_<dataset>.json reports")
		outDir     = flag.String("out", ".", "output directory for -json reports")
		datasets   = flag.String("datasets", "", "comma-separated dataset subset for -json (default: all)")
		baseline   = flag.String("baseline", "", "baseline file to check -json reports against; deviations exit non-zero")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof and /metrics on this address (e.g. localhost:6060)")
		faultRate  = flag.Float64("fault-rate", 0, "inject segment-task failures at this probability per attempt (0 = off)")
		faultSeed  = flag.Uint64("fault-seed", 1, "seed for the deterministic fault injector")
		timeout    = flag.Duration("timeout", 0, "per-statement deadline (0 = none)")
		memBudget  = flag.Int64("mem-budget", 0, "per-statement working-memory budget in bytes; kernels spill to disk beyond it (0 = unbounded)")
		noBloom    = flag.Bool("no-bloom", false, "disable bloom-join shuffle pruning (results identical; shuffle_bytes grows)")
		noFusion   = flag.Bool("no-fusion", false, "disable fused scan→filter→project execution")
		checkMicro = flag.String("check-micro", "", "gate a `go test -bench` output file against -micro-baseline and exit")
		microBase  = flag.String("micro-baseline", "internal/bench/testdata/microbench_baseline.json", "microbenchmark baseline file for -check-micro")

		loadgen      = flag.String("loadgen", "", "drive wire-protocol load at a running ccserverd on this address and write BENCH_server-soak.json into -out")
		connections  = flag.Int("connections", 8, "concurrent client connections for -loadgen")
		tenants      = flag.Int("tenants", 2, "tenant catalogs the -loadgen connections are spread over")
		loadDuration = flag.Duration("load-duration", 10*time.Second, "measurement window for -loadgen")
		loadToken    = flag.String("load-token", "", "auth token for -loadgen connections")
		zeroShed     = flag.Bool("require-zero-shed", false, "exit non-zero if the -loadgen run shed or failed any operation")
		noPrepare    = flag.Bool("no-prepare", false, "send -loadgen ops as statement text instead of prepared statements (ablation)")
		reqHitRate   = flag.Float64("require-hit-rate", 0, "exit non-zero if the -loadgen plan-cache hit rate falls below this fraction")
		stream       = flag.Bool("stream", false, "run -loadgen in streaming mode: edge inserts against a component index plus Watch subscribers, writing BENCH_stream-soak.json")
		watchers     = flag.Int("watchers", 8, "Watch subscriptions held open during a -stream loadgen run")
	)
	flag.Parse()

	if *checkMicro != "" {
		if err := bench.CheckMicroFile(*checkMicro, *microBase); err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "microbenchmark gate passed")
		return
	}

	if *pprofAddr != "" {
		go servePprof(*pprofAddr)
	}

	cfg := bench.Config{
		Scale:          *scale,
		Segments:       *segments,
		Reps:           *reps,
		Seed:           *seed,
		CapacityFactor: *capacity,
		Verify:         !*noVerify,
		FaultRate:      *faultRate,
		FaultSeed:      *faultSeed,
		QueryTimeout:   *timeout,
		MemoryBudget:   *memBudget,

		DisableBloomJoin:      *noBloom,
		DisableOperatorFusion: *noFusion,
	}
	progress := func(s string) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "running %s...\n", s)
		}
	}
	out := os.Stdout

	needCampaign := *all || *table >= 3 && *table <= 5 || *figure == 6
	var camp *bench.Campaign
	if needCampaign {
		camp = bench.RunCampaign(cfg, progress)
	}

	ran := false
	section := func() {
		if ran {
			fmt.Fprintln(out)
		}
		ran = true
	}
	if *all || *table == 1 {
		section()
		bench.Table1(out)
	}
	if *all || *table == 2 {
		section()
		bench.Table2(out, cfg)
	}
	if *all || *table == 3 {
		section()
		bench.Table3(out, camp)
	}
	if *all || *table == 4 {
		section()
		bench.Table4(out, camp)
	}
	if *all || *table == 5 {
		section()
		bench.Table5(out, camp)
	}
	if *all || *figure == 5 {
		section()
		bench.Figure5(out, cfg)
	}
	if *all || *figure == 6 {
		section()
		bench.Figure6(out, camp)
	}
	runExp := func(name string) {
		section()
		switch name {
		case "gamma":
			bench.GammaExperiment(out, 50, *seed)
		case "appendixb":
			bench.AppendixBExperiment(out, 20000, *seed)
		case "naive":
			bench.NaiveExperiment(out, cfg)
		case "transaction":
			bench.TransactionExperiment(out, cfg)
		case "broadcast":
			bench.BroadcastExperiment(out, cfg)
		case "rounds":
			bench.RoundsExperiment(out, cfg)
		case "scaling":
			bench.ScalingExperiment(out, cfg)
		case "spark":
			bench.SparkExperiment(out, cfg)
		case "variants":
			bench.VariantsExperiment(out, cfg)
		case "methods":
			bench.MethodsExperiment(out, cfg)
		case "rerandom":
			bench.RerandomExperiment(out, cfg)
		case "segments":
			bench.SegmentsExperiment(out, cfg)
		case "spill":
			bench.SpillExperiment(out, cfg)
		case "stream":
			bench.StreamExperiment(out, cfg)
		case "frontier":
			rep := bench.FrontierExperiment(out, cfg)
			path, err := bench.WriteFrontierReport(*outDir, rep)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ccbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(out, "wrote %s\n", path)
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			os.Exit(2)
		}
	}
	if *all {
		for _, e := range []string{"gamma", "appendixb", "naive", "transaction", "broadcast", "rounds", "scaling", "spark", "variants", "methods", "rerandom", "segments", "spill", "stream", "frontier"} {
			runExp(e)
		}
	} else if *experiment != "" {
		runExp(*experiment)
	}
	if *conc > 0 {
		section()
		bench.ConcurrencyExperiment(out, cfg, *conc)
	}
	if *jsonOut {
		ran = true
		runJSON(cfg, *outDir, *datasets, *baseline, progress)
	}
	if *loadgen != "" {
		ran = true
		runLoadgen(cfg, *outDir, bench.LoadgenConfig{
			Addr:        *loadgen,
			Connections: *connections,
			Tenants:     *tenants,
			Duration:    *loadDuration,
			Seed:        *seed,
			AuthToken:   *loadToken,
			NoPrepare:   *noPrepare,
			Stream:      *stream,
			Watchers:    *watchers,
		}, *zeroShed, *reqHitRate, progress)
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

// runJSON executes the machine-readable report campaign and the optional
// baseline check, exiting non-zero on any failure or deviation.
func runJSON(cfg bench.Config, outDir, datasetList, baselinePath string, progress func(string)) {
	var selected []bench.Dataset
	if datasetList == "" {
		selected = bench.Datasets()
	} else {
		for _, name := range strings.Split(datasetList, ",") {
			ds, ok := bench.DatasetByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown dataset %q\n", name)
				os.Exit(2)
			}
			selected = append(selected, ds)
		}
	}
	reports, paths, err := bench.WriteJSONReports(outDir, selected, cfg, progress)
	if err != nil {
		fmt.Fprintf(os.Stderr, "json reports: %v\n", err)
		os.Exit(1)
	}
	for _, p := range paths {
		fmt.Println(p)
	}
	var b *bench.Baseline
	if baselinePath != "" {
		b, err = bench.LoadBaseline(baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "baseline: %v\n", err)
			os.Exit(1)
		}
	}
	// One summary line per dataset: the deterministic-RC shuffle traffic,
	// how much of it the bloom filters pruned, and the delta against the
	// committed baseline when one is loaded.
	for _, rep := range reports {
		for _, a := range rep.Algorithms {
			if a.Name != "rc-det" {
				continue
			}
			line := fmt.Sprintf("%s: rc-det queries=%d shuffle=%dB saved=%dB",
				rep.Dataset, a.Queries, a.ShuffleBytes, a.ShuffleSaved)
			if b != nil {
				if base, ok := b.RCDetShuffleBytes[rep.Dataset]; ok && base > 0 {
					delta := 100 * float64(a.ShuffleBytes-base) / float64(base)
					line += fmt.Sprintf(" (baseline %dB, %+.1f%%)", base, delta)
				}
			}
			fmt.Fprintln(os.Stderr, line)
		}
	}
	if b == nil {
		return
	}
	failed := false
	for _, rep := range reports {
		if err := b.Check(rep); err != nil {
			fmt.Fprintf(os.Stderr, "baseline check: %v\n", err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "baseline check passed for %d dataset(s)\n", len(reports))
}

// runLoadgen drives the server-soak load generator and writes the
// schema-v7 BENCH_server-soak.json (or, with lg.Stream, BENCH_stream-soak.json) report. With requireZeroShed, any shed
// or failed operation — client- or server-counted — exits non-zero; with
// requireHitRate > 0, so does a plan-cache hit rate below the threshold:
// the CI server-soak contract.
func runLoadgen(cfg bench.Config, outDir string, lg bench.LoadgenConfig, requireZeroShed bool, requireHitRate float64, progress func(string)) {
	rep, path, err := bench.WriteLoadgenReport(outDir, cfg, lg, progress)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(path)
	srv := rep.Server
	fmt.Fprintf(os.Stderr, "loadgen: %d ops (%d sql, %d cc) over %d conns/%d tenants in %.0fs; "+
		"p50=%.2fms p95=%.2fms p99=%.2fms max=%.2fms; shed=%d failed=%d peak_queue=%d queue_ms=%.1f; "+
		"plan cache hits=%d misses=%d rate=%.3f parses=%d\n",
		srv.Ops, srv.SQLOps, srv.CCOps, srv.Connections, srv.Tenants, srv.DurationSecs,
		srv.P50Millis, srv.P95Millis, srv.P99Millis, srv.MaxMillis,
		srv.Shed, srv.Failed, srv.PeakQueueDepth, srv.QueueMillis,
		srv.PlanCacheHits, srv.PlanCacheMisses, srv.PlanCacheHitRate, srv.Parses)
	if srv.Stream {
		fmt.Fprintf(os.Stderr, "loadgen: stream: %d inserts (p50=%.2fms p95=%.2fms p99=%.2fms) %d deletes; "+
			"%.1f relabels/insert, %d merges, %d rebuilds; %d watchers, %d notifies, %d watch events, %d seq gaps\n",
			srv.InsertOps, srv.InsertP50Millis, srv.InsertP95Millis, srv.InsertP99Millis, srv.DeleteOps,
			srv.RelabelsPerInsert, srv.IndexMerges, srv.IndexRebuilds,
			srv.Watchers, srv.Notifies, srv.WatchEvents, srv.SeqGaps)
		if srv.SeqGaps != 0 {
			fmt.Fprintf(os.Stderr, "loadgen: watchers observed %d sequence gaps\n", srv.SeqGaps)
			os.Exit(1)
		}
	}
	if requireZeroShed && (srv.Shed != 0 || srv.Failed != 0 || srv.ServerShed != 0 || srv.ServerFailed != 0) {
		fmt.Fprintf(os.Stderr, "loadgen: shed/failure budget exceeded: client shed=%d failed=%d, server shed=%d failed=%d\n",
			srv.Shed, srv.Failed, srv.ServerShed, srv.ServerFailed)
		os.Exit(1)
	}
	if requireHitRate > 0 && srv.PlanCacheHitRate < requireHitRate {
		fmt.Fprintf(os.Stderr, "loadgen: plan-cache hit rate %.3f below required %.3f (hits=%d misses=%d)\n",
			srv.PlanCacheHitRate, requireHitRate, srv.PlanCacheHits, srv.PlanCacheMisses)
		os.Exit(1)
	}
}

// servePprof serves the stdlib pprof handlers (registered by the
// net/http/pprof import on the default mux) plus a plain-text
// runtime/metrics dump under /metrics.
func servePprof(addr string) {
	http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		all := metrics.All()
		samples := make([]metrics.Sample, len(all))
		for i, d := range all {
			samples[i].Name = d.Name
		}
		metrics.Read(samples)
		for _, s := range samples {
			switch s.Value.Kind() {
			case metrics.KindUint64:
				fmt.Fprintf(w, "%s %d\n", s.Name, s.Value.Uint64())
			case metrics.KindFloat64:
				fmt.Fprintf(w, "%s %g\n", s.Name, s.Value.Float64())
			}
		}
	})
	if err := http.ListenAndServe(addr, nil); err != nil {
		fmt.Fprintf(os.Stderr, "pprof server: %v\n", err)
	}
}
