// Package dbcc is the public API of the in-database connected component
// analysis library, a from-scratch Go reproduction of
//
//	H. Bögeholz, M. Brand, R.-A. Todor,
//	"In-database connected component analysis", ICDE 2020.
//
// The library bundles an in-process MPP relational database engine with a
// SQL front end (the substrate the paper's algorithms execute on), the
// paper's Randomised Contraction algorithm, the three competing distributed
// algorithms of its evaluation (Hash-to-Min, Two-Phase, Cracker) plus the
// naive BFS strategy, a sequential Union/Find baseline, and generators for
// every dataset family in the paper's benchmark.
//
// Quick start:
//
//	db := dbcc.Open(dbcc.Config{})
//	g := dbcc.GeneratePath(1000)
//	res, err := db.ConnectedComponents(g, dbcc.Params{})
//	if err != nil { ... }
//	fmt.Println(res.Labels.NumComponents(), "components in", res.Rounds, "rounds")
//
// Algorithms other than the default Randomised Contraction are selected via
// Params.Algorithm; Randomised Contraction's randomisation method and
// space/speed variant via Params.Method and Params.Variant.
package dbcc

import (
	"context"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"dbcc/internal/ccalg"
	"dbcc/internal/datagen"
	"dbcc/internal/engine"
	"dbcc/internal/graph"
	"dbcc/internal/sql"
	"dbcc/internal/unionfind"
	"dbcc/internal/verify"
)

// Re-exported graph types: the edge-list representation of Sec. III.
type (
	// Graph is an undirected graph stored as an edge list; a loop edge
	// (v, v) represents an isolated vertex.
	Graph = graph.Graph
	// Edge is one undirected edge.
	Edge = graph.Edge
	// Labelling maps every vertex to its component label.
	Labelling = graph.Labelling
)

// ErrSpaceLimit is returned when an algorithm exceeds its live-space
// budget (the paper's "did not finish" outcome).
var ErrSpaceLimit = ccalg.ErrSpaceLimit

// RoundError is the typed failure an algorithm returns when a round
// fails (fault injection exhausting its retries, cancellation, a space
// limit): it carries the per-round statistics gathered up to the failure
// so callers can report partial progress. Unwrap exposes the underlying
// cause, so errors.Is(err, ErrSpaceLimit) still works.
type RoundError = ccalg.RoundError

// Config configures the embedded MPP cluster.
type Config struct {
	// Segments is the number of virtual MPP segments (parallel workers);
	// 0 selects the default of 8.
	Segments int
	// Workers bounds how many segment tasks execute simultaneously across
	// all concurrent sessions; 0 selects GOMAXPROCS. Raising Segments
	// beyond Workers refines data placement without oversubscribing the
	// host.
	Workers int
	// SparkSQLProfile models executing on Spark SQL instead of a mature
	// MPP database (Sec. VII-C): no map-side combine and a fixed
	// scheduling cost per query.
	SparkSQLProfile bool
	// QueryTimeout aborts any single statement that runs longer than
	// this; 0 means no per-query deadline. Algorithms surface the
	// timeout as a *RoundError wrapping context.DeadlineExceeded.
	QueryTimeout time.Duration
	// FaultRate enables deterministic fault injection: every segment
	// task attempt fails with this probability (and is retried by the
	// engine with capped exponential backoff). 0 disables injection.
	FaultRate float64
	// FaultSeed seeds the fault injector; the injected fault schedule is
	// a pure function of the seed and the statement sequence, so chaos
	// runs reproduce exactly.
	FaultSeed uint64
	// MemoryBudget bounds the working memory (hash tables, sort state,
	// partition buffers) of any single statement, in bytes; kernels that
	// would exceed their per-segment share spill partitions to temporary
	// files and produce bit-identical results. 0 means unbounded (the
	// classic all-in-memory engine).
	MemoryBudget int64
	// DisableBloomJoin turns off bloom-filtered join shuffle pruning;
	// results are identical, but non-matching probe rows cross segments
	// again (shuffle traffic grows, ShuffleSavedBytes stays zero).
	DisableBloomJoin bool
	// DisableOperatorFusion turns off fused scan→filter→project
	// execution, materialising one intermediate chunk per plan node
	// again. Results are identical.
	DisableOperatorFusion bool
}

// Algorithm names accepted by Params.Algorithm.
const (
	RandomisedContraction = "rc"   // the paper's contribution (default)
	HashToMin             = "hm"   // Rastogi et al. 2013
	TwoPhase              = "tp"   // Kiveris et al. 2014
	Cracker               = "cr"   // Lulli et al. 2017
	BFS                   = "bfs"  // naive min-propagation (MADlib)
	LocalContract         = "lc"   // Łącki et al. 2018, local contractions
	LogDiameter           = "ld"   // Andoni et al. 2018, log-diameter rounds
	Auto                  = "auto" // adaptive planner: pre-scan picks a driver
)

// Method selects Randomised Contraction's vertex-order randomisation.
type Method = ccalg.Method

// Randomisation methods (Sec. V-C).
const (
	FiniteFields = ccalg.FiniteFields // h(w) = A·w+B over GF(2^64) (default)
	GFPrime      = ccalg.GFPrime      // the SQL-only mod-p alternative
	Encryption   = ccalg.Encryption   // Blowfish with a fresh key per round
	RandomReals  = ccalg.RandomReals  // a materialised random number per vertex
)

// Variant selects Randomised Contraction's implementation (Sec. V-D).
type Variant = ccalg.Variant

// Implementation variants.
const (
	Fast = ccalg.Fast // Fig. 4: compose representative tables at the end
	Safe = ccalg.Safe // Fig. 3: deterministic linear space
)

// Params configures one connected-components run.
type Params struct {
	// Algorithm is one of the constants above; "" means Randomised
	// Contraction.
	Algorithm string
	// Seed drives all randomness; runs are reproducible per seed.
	Seed uint64
	// MaxLiveBytes aborts the run with ErrSpaceLimit when temporary
	// tables exceed this footprint; 0 means unlimited.
	MaxLiveBytes int64
	// Method and Variant apply to Randomised Contraction only.
	Method  Method
	Variant Variant
	// NoRerandomise reuses round-1 randomness for every round (for the
	// ablation of Sec. V-B's independence requirement).
	NoRerandomise bool
	// Deterministic disables randomisation (h = identity), recovering the
	// Sec. V-A "basic idea" with its Fig. 2(a) path worst case.
	Deterministic bool
	// KeepStats skips the engine-counter reset at the start of the run.
	// Solo callers want per-run accounting (the default); a multi-tenant
	// server runs many algorithms against one shared cluster whose
	// counters are a monotonic observability surface — resetting them
	// mid-soak would corrupt every window delta (plan-cache hit rates,
	// parse counts) computed from stats snapshots. Result.Stats is then
	// cumulative, not per-run.
	KeepStats bool
}

// Result is the outcome of a run.
type Result struct {
	// Labels assigns a component label to every vertex.
	Labels Labelling
	// Rounds is the number of algorithm rounds executed.
	Rounds int
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
	// Stats are the engine counters accumulated during the run: queries,
	// rows/bytes written (Table V), peak space (Table IV).
	Stats Stats
}

// Stats re-exports the engine's execution counters.
type Stats = engine.Stats

// DB is an embedded MPP database ready to run connected-components
// analyses. A DB is safe for concurrent use: multiple goroutines may run
// ConnectedComponents (or issue SQL through separate sessions) against one
// DB simultaneously — every run keeps its intermediate tables in a private
// namespace and the engine executes all sessions on one bounded worker
// pool. Per-run Stats are only meaningful when runs do not overlap; the
// cluster-wide counters are shared (see Cluster().ConcurrencyStats for the
// multi-session gauges).
type DB struct {
	c *engine.Cluster
	n atomic.Uint64 // scratch input-table name counter
}

// Open creates an embedded cluster.
func Open(cfg Config) *DB {
	profile := engine.ProfileMPP
	if cfg.SparkSQLProfile {
		profile = engine.ProfileSparkSQL
	}
	var injector *engine.FaultInjector
	if cfg.FaultRate > 0 {
		injector = engine.NewFaultInjector(engine.FaultConfig{
			Seed:        cfg.FaultSeed,
			FailureRate: cfg.FaultRate,
		})
	}
	c := engine.NewCluster(engine.Options{
		Segments:      cfg.Segments,
		Workers:       cfg.Workers,
		Profile:       profile,
		QueryTimeout:  cfg.QueryTimeout,
		FaultInjector: injector,
		MemoryBudget:  cfg.MemoryBudget,

		DisableBloomJoin:      cfg.DisableBloomJoin,
		DisableOperatorFusion: cfg.DisableOperatorFusion,
	})
	ccalg.RegisterUDFs(c)
	db := &DB{c: c}
	// Component indexes rebuild after deletes by re-running the paper's
	// deterministic Randomised Contraction (rc-det) over the base table —
	// the same driver interactive runs use, flowing through the prepared
	// statements and cached plans of the round loop. KeepStats: a rebuild
	// is engine maintenance, not a user run; it must not reset the shared
	// counters.
	c.SetComponentRebuilder(func(table string) (map[int64]int64, error) {
		res, err := db.ConnectedComponentsOf(table, Params{
			Algorithm:     RandomisedContraction,
			Deterministic: true,
			KeepStats:     true,
		})
		if err != nil {
			return nil, err
		}
		return res.Labels, nil
	})
	return db
}

// Close releases the cluster's on-disk resources (the spill directory of
// memory-bounded execution). A DB remains usable without ever calling
// Close — statements clean their own partition files up — but long-lived
// processes opening many DBs should Close each when done.
func (db *DB) Close() error { return db.c.Close() }

// Cluster exposes the underlying engine for advanced use (custom plans,
// statistics, UDF registration).
func (db *DB) Cluster() *engine.Cluster { return db.c }

// SQL returns a SQL session on the embedded cluster, with the paper's
// user-defined functions (axplusb, axbp, enc, hrand) pre-registered.
func (db *DB) SQL() *sql.Session { return sql.NewSession(db.c) }

// LoadGraph materialises g as a table named name with columns (v1, v2).
func (db *DB) LoadGraph(name string, g *Graph) error {
	return graph.Load(db.c, name, g)
}

// ConnectedComponents loads g into a scratch table, runs the selected
// algorithm and returns the labelling with run metrics. The scratch table
// is removed afterwards; engine statistics cover only this run.
func (db *DB) ConnectedComponents(g *Graph, p Params) (*Result, error) {
	return db.ConnectedComponentsCtx(context.Background(), g, p)
}

// ConnectedComponentsCtx is ConnectedComponents under a caller context:
// cancelling ctx (or its deadline expiring) aborts the run between
// operators and segment tasks, returning a *RoundError that carries the
// rounds completed so far.
func (db *DB) ConnectedComponentsCtx(ctx context.Context, g *Graph, p Params) (*Result, error) {
	table := fmt.Sprintf("cc_input_%d", db.n.Add(1))
	if err := db.LoadGraph(table, g); err != nil {
		return nil, err
	}
	defer db.c.DropTable(table)
	return db.ConnectedComponentsOfCtx(ctx, table, p)
}

// ConnectedComponentsOf runs the selected algorithm against an existing
// two-column edge table (for data already resident in the database — the
// paper's motivating scenario).
//
// The engine's statistics counters are reset at the start of the run so a
// solo run's Result.Stats covers exactly that run, matching the paper's
// per-algorithm accounting. When several runs execute concurrently they
// share those counters, so per-run Stats are best-effort; labellings are
// always exact.
func (db *DB) ConnectedComponentsOf(table string, p Params) (*Result, error) {
	return db.ConnectedComponentsOfCtx(context.Background(), table, p)
}

// ConnectedComponentsOfCtx is ConnectedComponentsOf under a caller
// context (see ConnectedComponentsCtx).
func (db *DB) ConnectedComponentsOfCtx(ctx context.Context, table string, p Params) (*Result, error) {
	name := p.Algorithm
	if name == "" {
		name = RandomisedContraction
	}
	info, ok := ccalg.ByName(name)
	if !ok {
		return nil, fmt.Errorf("dbcc: unknown algorithm %q", name)
	}
	if !p.KeepStats {
		db.c.ResetStats()
	}
	opts := ccalg.Options{
		Context:      ctx,
		Seed:         p.Seed,
		MaxLiveBytes: p.MaxLiveBytes,
		RC: ccalg.RCOptions{
			Method:        p.Method,
			Variant:       p.Variant,
			NoRerandomise: p.NoRerandomise,
			Deterministic: p.Deterministic,
		},
	}
	start := time.Now()
	res, err := info.Run(db.c, table, opts)
	if err != nil {
		return nil, err
	}
	return &Result{
		Labels:  res.Labels,
		Rounds:  res.Rounds,
		Elapsed: time.Since(start),
		Stats:   db.c.Stats(),
	}, nil
}

// IndexEvent is one component-index change delivered to a Watch: a
// merge of From's component into To's (Kind IndexEventMerge), or a full
// relabelling after a delete-triggered rebuild (Kind IndexEventRebuild —
// re-read labels via SQL or ComponentLabels). Seq is monotonic per index
// and gap-free per subscription.
type IndexEvent = engine.IndexEvent

// Watch event kinds.
const (
	IndexEventMerge   = engine.IndexEventMerge
	IndexEventRebuild = engine.IndexEventRebuild
)

// Watch is a live subscription to a table's component index; receive
// from C until Close. A subscriber that stops draining C is disconnected
// (C is closed) rather than allowed to stall index maintenance.
type Watch = engine.IndexSub

// CreateComponentIndex builds an incremental connected-components index
// over an existing two-column edge table: INSERTs update the labelling
// with bounded union-find work per statement, DELETEs trigger a rebuild
// through the rc-det driver. Equivalent to the SQL statement
// CREATE COMPONENT INDEX ON table.
func (db *DB) CreateComponentIndex(table string) error {
	return db.c.CreateComponentIndex(table)
}

// DropComponentIndex removes a table's component index and closes its
// subscriptions.
func (db *DB) DropComponentIndex(table string) error {
	return db.c.DropComponentIndex(table)
}

// ComponentLabels snapshots the maintained labelling of an indexed
// table: every vertex seen so far mapped to its component's current
// representative. Labels are representatives, not canonical minima —
// compare label equality, not label values.
func (db *DB) ComponentLabels(table string) (Labelling, error) {
	idx, ok := db.c.ComponentIndex(table)
	if !ok {
		return nil, fmt.Errorf("dbcc: table %q has no component index", table)
	}
	return idx.Labels(), nil
}

// Watch subscribes to a table's component index, delivering label-change
// events with a monotonic sequence number as inserts merge components
// and deletes trigger rebuilds. The table must have been indexed with
// CreateComponentIndex (or CREATE COMPONENT INDEX ON t).
func (db *DB) Watch(table string) (*Watch, error) {
	idx, ok := db.c.ComponentIndex(table)
	if !ok {
		return nil, fmt.Errorf("dbcc: table %q has no component index", table)
	}
	return idx.Subscribe(), nil
}

// Verify checks a labelling against the sequential Union/Find oracle,
// returning nil when it is a correct connected-components labelling of g.
func Verify(g *Graph, l Labelling) error { return verify.Labelling(g, l) }

// SequentialComponents computes the labelling with the classical
// Union/Find algorithm — the single-machine baseline of the paper's
// introduction.
func SequentialComponents(g *Graph) Labelling { return unionfind.Components(g) }

// ReadGraph parses a whitespace-separated edge list ("v w" per line,
// '#' comments allowed).
func ReadGraph(r io.Reader) (*Graph, error) { return graph.Read(r) }

// Dataset generators, re-exported from the datagen substrate. See
// DESIGN.md §1 for how each stands in for the paper's Table II datasets.

// GeneratePath returns the sequentially numbered n-vertex path graph.
func GeneratePath(n int) *Graph { return datagen.Path(n) }

// GeneratePathUnion returns a union of k paths with adversarial numbering.
func GeneratePathUnion(k, totalVertices int) *Graph { return datagen.PathUnion(k, totalVertices) }

// GenerateRMAT returns an R-MAT graph with the paper's parameters.
func GenerateRMAT(scale, edges int, seed uint64) *Graph {
	return datagen.RMAT(scale, edges, 0.57, 0.19, 0.19, 0.05, seed)
}

// GenerateImage2D returns an "Andromeda"-style pixel-similarity graph: a
// giant background plus power-law-sized objects, so component sizes are
// scale-free (Fig. 5). Object count scales with the image area.
func GenerateImage2D(width, height int, seed uint64) *Graph {
	return datagen.Image2D(width, height, width*height/25, 1.1, 0.2, seed)
}

// GenerateVideo3D returns a "Candels"-style volumetric pixel graph.
func GenerateVideo3D(width, height, frames int, seed uint64) *Graph {
	return datagen.Video3D(width, height, frames, width*height*frames/2000, 1.1, 0.04, seed)
}

// GenerateBitcoin returns a transaction/address bipartite graph for the
// address-clustering use case of Sec. VII-A.
func GenerateBitcoin(numTx int, seed uint64) *Graph { return datagen.Bitcoin(numTx, seed) }

// GenerateFriendster returns a single-component social graph.
func GenerateFriendster(n, avgDegreeHalf int, seed uint64) *Graph {
	return datagen.Friendster(n, avgDegreeHalf, seed)
}
