// Command worstcase demonstrates the paper's adversarial-input argument
// (Sec. IV–V): on a sequentially numbered path graph the naive BFS strategy
// needs a round per vertex and deterministic min-contraction removes one
// vertex per round (Fig. 2a), while Randomised Contraction stays
// logarithmic on every input because each round re-randomises the vertex
// order.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"dbcc"
)

func main() {
	n := flag.Int("n", 1024, "path length (vertices)")
	flag.Parse()

	g := dbcc.GeneratePath(*n)
	fmt.Printf("adversarial input: sequentially numbered path with %d vertices\n\n", *n)

	run := func(name string, p dbcc.Params) {
		db := dbcc.Open(dbcc.Config{})
		res, err := db.ConnectedComponents(g, p)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		if err := dbcc.Verify(g, res.Labels); err != nil {
			log.Fatalf("%s produced a wrong answer: %v", name, err)
		}
		fmt.Printf("%-34s %5d rounds   %10v\n", name, res.Rounds, res.Elapsed)
	}

	fmt.Printf("%-34s %s\n", "algorithm", "cost on the worst case")
	run("Randomised Contraction", dbcc.Params{Seed: 1})
	run("RC without re-randomisation", dbcc.Params{Seed: 1, NoRerandomise: true})
	run("deterministic min-contraction", dbcc.Params{Deterministic: true})
	run("BFS (MADlib strategy)", dbcc.Params{Algorithm: dbcc.BFS})

	fmt.Printf("\nfor reference: log2(n) = %.1f — Randomised Contraction's round count\n", math.Log2(float64(*n)))
	fmt.Println("tracks it, while BFS needs ~n rounds (Sec. IV) and a fixed vertex")
	fmt.Println("order contracts the path by a constant number of vertices per round (Fig. 2a).")
}
