// Command imagesegment reproduces the paper's image-segmentation use case
// (Sec. VII-A, the Andromeda dataset): a raster image becomes a graph with
// an edge between adjacent pixels of similar colour, and each connected
// component is one segment. The paper's Gigapixel Andromeda image is
// unavailable; the input here is the synthetic near-critical noise image of
// internal/datagen, which exhibits the same roughly scale-free segment-size
// distribution (paper Fig. 5).
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"strings"

	"dbcc"
)

func main() {
	width := flag.Int("width", 300, "image width in pixels")
	height := flag.Int("height", 200, "image height in pixels")
	seed := flag.Uint64("seed", 7, "image noise seed")
	flag.Parse()

	db := dbcc.Open(dbcc.Config{})
	g := dbcc.GenerateImage2D(*width, *height, *seed)
	fmt.Printf("image %dx%d -> graph with %d edges, %d non-isolated pixels\n",
		*width, *height, g.NumEdges(), g.NumVertices())

	res, err := db.ConnectedComponents(g, dbcc.Params{Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	if err := dbcc.Verify(g, res.Labels); err != nil {
		log.Fatalf("verification failed: %v", err)
	}

	// Segment-size histogram in power-of-two buckets: the log-log view the
	// paper uses to demonstrate scale-freedom (Fig. 5).
	sizes := res.Labels.ComponentSizes()
	buckets := map[int]int{}
	maxBucket := 0
	for _, s := range sizes {
		b := int(math.Log2(float64(s)))
		buckets[b]++
		if b > maxBucket {
			maxBucket = b
		}
	}
	fmt.Printf("segments: %d (in %d rounds, %v)\n", len(sizes), res.Rounds, res.Elapsed)
	fmt.Println("segment size distribution (log-log):")
	fmt.Println("  size bucket    #segments")
	for b := 0; b <= maxBucket; b++ {
		n := buckets[b]
		bar := strings.Repeat("#", int(math.Ceil(math.Log2(float64(n+1)))))
		fmt.Printf("  2^%-2d..2^%-2d %9d %s\n", b, b+1, n, bar)
	}
}
