// Command quickstart is the minimal end-to-end use of the dbcc library:
// generate a graph, run the paper's Randomised Contraction algorithm on the
// embedded MPP engine, verify the answer against the sequential oracle and
// print the run metrics the paper's evaluation reports.
package main

import (
	"fmt"
	"log"

	"dbcc"
)

func main() {
	// Open an embedded MPP cluster (8 virtual segments by default).
	db := dbcc.Open(dbcc.Config{})

	// An R-MAT graph with the paper's parameters: 2^12 vertex ID space,
	// 50 000 edges, heavily skewed degrees.
	g := dbcc.GenerateRMAT(12, 50_000, 42)
	fmt.Printf("input: %d edge rows, %d vertices\n", g.NumEdges(), g.NumVertices())

	// Run Randomised Contraction (finite fields method, Fig. 4 variant).
	res, err := db.ConnectedComponents(g, dbcc.Params{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("components: %d\n", res.Labels.NumComponents())
	fmt.Printf("contraction rounds: %d\n", res.Rounds)
	fmt.Printf("wall time: %v\n", res.Elapsed)
	fmt.Printf("SQL queries executed: %d\n", res.Stats.Queries)
	fmt.Printf("total data written: %.1f MiB (input %.1f MiB)\n",
		float64(res.Stats.BytesWritten)/(1<<20),
		float64(g.NumEdges()*16)/(1<<20))
	fmt.Printf("peak intermediate space: %.1f MiB\n", float64(res.Stats.PeakBytes)/(1<<20))

	// Cross-check against the classical sequential Union/Find oracle.
	if err := dbcc.Verify(g, res.Labels); err != nil {
		log.Fatalf("verification failed: %v", err)
	}
	fmt.Println("verified against Union/Find oracle ✓")
}
