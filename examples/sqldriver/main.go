// Command sqldriver reimplements the paper's Appendix A driver: instead of
// calling the library's algorithm API, it interpolates round keys into the
// published SQL queries and sends them to the embedded MPP database, the
// way the authors' Python script drives HAWQ. It demonstrates that the
// whole algorithm really is "SQL queries as basic building blocks".
package main

import (
	"flag"
	"fmt"
	"log"

	"dbcc"
	"dbcc/internal/xrand"
)

func main() {
	edges := flag.Int("edges", 20_000, "R-MAT edge count for the demo input")
	seed := flag.Uint64("seed", 2019, "round-key seed")
	flag.Parse()

	db := dbcc.Open(dbcc.Config{})
	sess := db.SQL()
	if err := db.LoadGraph("dataset", dbcc.GenerateRMAT(12, *edges, *seed)); err != nil {
		log.Fatal(err)
	}
	rng := xrand.New(*seed)
	exec := func(format string, args ...any) int64 {
		n, err := sess.Execf(format, args...)
		if err != nil {
			log.Fatalf("sql error: %v", err)
		}
		return n
	}

	// Setup: symmetrise the edge table (Appendix A).
	exec(`create table ccgraph as
	      select v1, v2 from dataset
	      union all
	      select v2, v1 from dataset
	      distributed by (v1)`)

	fmt.Println("round  graph-size  (rows after contraction)")
	roundno := 0
	var stackA, stackB []int64
	for {
		roundno++
		rA := int64(rng.NonZeroUint64())
		rB := int64(rng.Uint64())
		stackA, stackB = append(stackA, rA), append(stackB, rB)

		exec(`create table ccreps%d as
		      select v1 v, least(axplusb(%d, v1, %d), min(axplusb(%d, v2, %d))) rep
		      from ccgraph group by v1
		      distributed by (v)`, roundno, rA, rB, rA, rB)
		exec(`create table ccgraph2 as
		      select r1.rep as v1, v2 from ccgraph, ccreps%d as r1
		      where ccgraph.v1 = r1.v distributed by (v2)`, roundno)
		exec(`drop table ccgraph`)
		size := exec(`create table ccgraph3 as
		      select distinct v1, r2.rep as v2 from ccgraph2, ccreps%d as r2
		      where ccgraph2.v2 = r2.v and v1 != r2.rep
		      distributed by (v1)`, roundno)
		exec(`drop table ccgraph2`)
		exec(`alter table ccgraph3 rename to ccgraph`)
		fmt.Printf("%5d  %10d\n", roundno, size)
		if size == 0 {
			break
		}
	}

	// Compose representative tables back to front (Fig. 4's second loop).
	axb := func(a, x, b int64) int64 {
		_, rows, err := sess.Queryf("select axplusb(%d, %d, %d) as r", a, x, b)
		if err != nil {
			log.Fatal(err)
		}
		return rows[0][0].Int
	}
	accA, accB := int64(1), int64(0)
	for {
		roundno--
		a, b := stackA[len(stackA)-1], stackB[len(stackB)-1]
		stackA, stackB = stackA[:len(stackA)-1], stackB[:len(stackB)-1]
		accA, accB = axb(accA, a, 0), axb(accA, b, accB)
		if roundno == 0 {
			break
		}
		exec(`create table tmp as
		      select r1.v as v, coalesce(r2.rep, axplusb(%d, r1.rep, %d)) as rep
		      from ccreps%d as r1 left outer join ccreps%d as r2 on (r1.rep = r2.v)
		      distributed by (v)`, accA, accB, roundno, roundno+1)
		exec(`drop table ccreps%d, ccreps%d`, roundno, roundno+1)
		exec(`alter table tmp rename to ccreps%d`, roundno)
	}
	exec(`alter table ccreps1 rename to ccresult`)
	exec(`drop table ccgraph`)

	// Count components straight in SQL.
	_, rows, err := sess.Query(`select count(*) as n from ccresult`)
	if err != nil {
		log.Fatal(err)
	}
	vertices := rows[0][0].Int
	if _, err := sess.Exec(`create table ccdistinct as select distinct rep from ccresult`); err != nil {
		log.Fatal(err)
	}
	_, rows, err = sess.Query(`select count(*) as n from ccdistinct`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d vertices in %d connected components\n", vertices, rows[0][0].Int)

	stats := db.Cluster().Stats()
	fmt.Printf("SQL queries issued: %d; data written: %.1f MiB\n",
		stats.Queries, float64(stats.BytesWritten)/(1<<20))
}
