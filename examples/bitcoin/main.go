// Command bitcoin reproduces the paper's Bitcoin address-clustering use
// case (Sec. VII-A): transactions spending inputs from multiple addresses
// reveal that those addresses are controlled by one entity. Linking every
// address to the transactions that spend from it and computing connected
// components groups addresses into entities.
//
// The blockchain itself (250 GB in the paper) is unavailable, so the input
// is the synthetic transaction/address graph of internal/datagen, which
// preserves the heavy-tailed address reuse that shapes the real graph.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"dbcc"
)

func main() {
	numTx := flag.Int("tx", 50_000, "number of transactions to synthesise")
	seed := flag.Uint64("seed", 2019, "generator seed")
	flag.Parse()

	db := dbcc.Open(dbcc.Config{})
	g := dbcc.GenerateBitcoin(*numTx, *seed)
	fmt.Printf("transaction graph: %d edge rows, %d vertices (transactions + addresses)\n",
		g.NumEdges(), g.NumVertices())

	res, err := db.ConnectedComponents(g, dbcc.Params{Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}

	// Each component is one presumed entity; count addresses per entity
	// (vertices below 2^40 are addresses, above are transaction IDs).
	const txBase = int64(1) << 40
	entities := make(map[int64]int)
	for v, label := range res.Labels {
		if v < txBase {
			entities[label]++
		}
	}
	sizes := make([]int, 0, len(entities))
	totalAddrs := 0
	for _, n := range entities {
		sizes = append(sizes, n)
		totalAddrs += n
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))

	fmt.Printf("entities (components): %d covering %d addresses\n", len(entities), totalAddrs)
	fmt.Printf("resolved in %d contraction rounds, %v\n", res.Rounds, res.Elapsed)
	fmt.Println("largest entities by controlled addresses:")
	for i, n := range sizes {
		if i >= 10 {
			break
		}
		fmt.Printf("  #%-2d %6d addresses\n", i+1, n)
	}

	// The de-anonymisation claim rests on correctness; double-check it.
	if err := dbcc.Verify(g, res.Labels); err != nil {
		log.Fatalf("verification failed: %v", err)
	}
	fmt.Println("clustering verified against Union/Find oracle ✓")
}
