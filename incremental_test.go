package dbcc

import (
	"fmt"
	"strings"
	"testing"

	"dbcc/internal/graph"
	"dbcc/internal/unionfind"
)

// partitionEquivalent checks that two labellings induce the same
// partition of the same vertex set: the component index labels with
// representatives, the oracle with canonical minima, so only the
// grouping may be compared, never the label values.
func partitionEquivalent(t *testing.T, got, want Labelling) error {
	t.Helper()
	if len(got) != len(want) {
		return fmt.Errorf("labelled %d vertices, oracle labelled %d", len(got), len(want))
	}
	fwd := make(map[int64]int64) // got label -> want label
	rev := make(map[int64]int64) // want label -> got label
	for v, gl := range got {
		wl, ok := want[v]
		if !ok {
			return fmt.Errorf("vertex %d not in oracle labelling", v)
		}
		if prev, ok := fwd[gl]; ok && prev != wl {
			return fmt.Errorf("label %d maps to both oracle labels %d and %d (vertex %d)", gl, prev, wl, v)
		}
		if prev, ok := rev[wl]; ok && prev != gl {
			return fmt.Errorf("oracle label %d maps to both labels %d and %d (vertex %d)", wl, prev, gl, v)
		}
		fwd[gl] = wl
		rev[wl] = gl
	}
	return nil
}

// shuffled returns a deterministic permutation of g's edges (an xorshift
// Fisher–Yates; arrival order must not affect the maintained partition).
func shuffled(edges []graph.Edge, seed uint64) []graph.Edge {
	out := make([]graph.Edge, len(edges))
	copy(out, edges)
	x := seed | 1
	for i := len(out) - 1; i > 0; i-- {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		j := int(x % uint64(i+1))
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// oracleLabels runs the sequential Union/Find baseline over a prefix of
// the edge stream.
func oracleLabels(edges []graph.Edge) Labelling {
	g := graph.New(len(edges))
	for _, e := range edges {
		g.AddEdge(e.V, e.W)
	}
	return unionfind.Components(g)
}

// insertBatch issues one INSERT statement covering edges — the whole
// batch is a single statement, which is what the bounded-work pin below
// counts.
func insertBatch(t *testing.T, db *DB, edges []graph.Edge) {
	t.Helper()
	var b strings.Builder
	b.WriteString("INSERT INTO edges VALUES ")
	for i, e := range edges {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "(%d,%d)", e.V, e.W)
	}
	if _, err := db.SQL().Exec(b.String()); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalPrefixEquivalence is the tentpole correctness gate:
// stream a graph's edges into an indexed table in batches and require,
// after every prefix, that the maintained labelling is
// partition-equivalent to the Union/Find oracle on that prefix — across
// graph families and arrival orders — while each insert statement stays
// bounded: exactly one engine query (no recompute on the insert path)
// and amortised-constant union-find work per edge.
func TestIncrementalPrefixEquivalence(t *testing.T) {
	families := []struct {
		name string
		g    *Graph
	}{
		{"path", GeneratePath(600)},
		{"path_union", GeneratePathUnion(8, 600)},
		{"rmat", GenerateRMAT(9, 900, 7)},
		{"bitcoin", GenerateBitcoin(150, 11)},
		{"friendster", GenerateFriendster(300, 2, 13)},
	}
	orders := []struct {
		name    string
		arrange func([]graph.Edge) []graph.Edge
	}{
		{"natural", func(es []graph.Edge) []graph.Edge { return es }},
		{"shuffled", func(es []graph.Edge) []graph.Edge { return shuffled(es, 2019) }},
	}
	for _, fam := range families {
		for _, ord := range orders {
			t.Run(fam.name+"/"+ord.name, func(t *testing.T) {
				db := Open(Config{Segments: 4})
				defer db.Close()
				s := db.SQL()
				if _, err := s.Exec("CREATE TABLE edges (v1, v2); CREATE COMPONENT INDEX ON edges"); err != nil {
					t.Fatal(err)
				}
				edges := ord.arrange(fam.g.Edges)
				const batch = 64
				for off := 0; off < len(edges); off += batch {
					end := off + batch
					if end > len(edges) {
						end = len(edges)
					}
					before := db.Cluster().Stats()
					insertBatch(t, db, edges[off:end])
					after := db.Cluster().Stats()
					// Bounded work, pin 1: the insert path runs exactly the
					// one INSERT statement — a full recompute would show up
					// as the rc-det round loop's many queries.
					if d := after.Queries - before.Queries; d != 1 {
						t.Fatalf("insert of rows [%d,%d) ran %d engine queries, want exactly 1", off, end, d)
					}
					if after.IndexRebuilds != before.IndexRebuilds {
						t.Fatalf("insert triggered a rebuild")
					}
					got, err := db.ComponentLabels("edges")
					if err != nil {
						t.Fatal(err)
					}
					if err := partitionEquivalent(t, got, oracleLabels(edges[:end])); err != nil {
						t.Fatalf("prefix %d: %v", end, err)
					}
				}
				// Bounded work, pin 2: total union-find label work is
				// amortised near-linear in the stream. 8 parent-pointer
				// writes per edge plus 4 per vertex is far above the
				// O(m·α(n)) reality but far below quadratic relabelling.
				st := db.Cluster().Stats()
				limit := int64(8*len(edges) + 4*fam.g.NumVertices())
				if st.IndexLabelsTouched > limit {
					t.Fatalf("touched %d labels over %d edges; bound %d", st.IndexLabelsTouched, len(edges), limit)
				}
			})
		}
	}
}

// TestIncrementalDeleteRebuild exercises the other half of the
// maintenance contract: DELETE statements mark the index stale and
// trigger a rebuild through the rc-det driver, after which the labelling
// matches the oracle on the surviving edges.
func TestIncrementalDeleteRebuild(t *testing.T) {
	db := Open(Config{Segments: 4})
	defer db.Close()
	s := db.SQL()
	if _, err := s.Exec("CREATE TABLE edges (v1, v2); CREATE COMPONENT INDEX ON edges"); err != nil {
		t.Fatal(err)
	}
	// Two chains joined by a bridge: 0-1-...-49 and 100-101-...-149,
	// bridge (49,100).
	g := graph.New(0)
	for v := int64(0); v < 49; v++ {
		g.AddEdge(v, v+1)
	}
	for v := int64(100); v < 149; v++ {
		g.AddEdge(v, v+1)
	}
	g.AddEdge(49, 100)
	insertBatch(t, db, g.Edges)

	if got, _ := db.ComponentLabels("edges"); got.NumComponents() != 1 {
		t.Fatalf("bridged chains labelled as %d components, want 1", got.NumComponents())
	}

	// Cut the bridge. The insert path cannot un-merge; the delete must
	// trigger a rebuild that can.
	before := db.Cluster().Stats()
	n, err := s.Exec("DELETE FROM edges WHERE v1 = 49 AND v2 = 100")
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("deleted %d rows, want 1", n)
	}
	after := db.Cluster().Stats()
	if after.IndexRebuilds != before.IndexRebuilds+1 {
		t.Fatalf("delete ran %d rebuilds, want 1", after.IndexRebuilds-before.IndexRebuilds)
	}
	got, err := db.ComponentLabels("edges")
	if err != nil {
		t.Fatal(err)
	}
	remaining := graph.New(0)
	for _, e := range g.Edges {
		if !(e.V == 49 && e.W == 100) {
			remaining.AddEdge(e.V, e.W)
		}
	}
	if err := partitionEquivalent(t, got, oracleLabels(remaining.Edges)); err != nil {
		t.Fatal(err)
	}
	if got.NumComponents() != 2 {
		t.Fatalf("after cutting the bridge: %d components, want 2", got.NumComponents())
	}

	// A delete that removes nothing must not rebuild.
	if _, err := s.Exec("DELETE FROM edges WHERE v1 = 99999"); err != nil {
		t.Fatal(err)
	}
	if db.Cluster().Stats().IndexRebuilds != after.IndexRebuilds {
		t.Fatalf("no-op delete triggered a rebuild")
	}
}

// TestWatchDeliversMergesAndRebuilds checks the subscription contract:
// gap-free monotonic sequence numbers, merge events for inserts that
// join components, and a rebuild event after a delete.
func TestWatchDeliversMergesAndRebuilds(t *testing.T) {
	db := Open(Config{Segments: 4})
	defer db.Close()
	s := db.SQL()
	if _, err := s.Exec("CREATE TABLE edges (v1, v2); CREATE COMPONENT INDEX ON edges"); err != nil {
		t.Fatal(err)
	}
	w, err := db.Watch("edges")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	collected := make(chan []IndexEvent, 1)
	go func() {
		var evs []IndexEvent
		for ev := range w.C {
			evs = append(evs, ev)
			if ev.Kind == IndexEventRebuild {
				collected <- evs
				return
			}
		}
		collected <- evs
	}()

	// Three merges: 1-2, 3-4, then the joining edge 2-3.
	insertBatch(t, db, []graph.Edge{{V: 1, W: 2}, {V: 3, W: 4}, {V: 2, W: 3}})
	// Self-loop insert: registers a vertex, merges nothing.
	insertBatch(t, db, []graph.Edge{{V: 9, W: 9}})
	if _, err := s.Exec("DELETE FROM edges WHERE v1 = 2"); err != nil {
		t.Fatal(err)
	}

	evs := <-collected
	seq := w.StartSeq
	var merges, rebuilds int
	for _, ev := range evs {
		if ev.Seq != seq+1 {
			t.Fatalf("sequence gap: %d after %d", ev.Seq, seq)
		}
		seq = ev.Seq
		switch ev.Kind {
		case IndexEventMerge:
			merges++
			if ev.From == ev.To {
				t.Fatalf("merge event with From == To == %d", ev.From)
			}
		case IndexEventRebuild:
			rebuilds++
		default:
			t.Fatalf("unknown event kind %d", ev.Kind)
		}
	}
	if merges != 3 {
		t.Fatalf("saw %d merge events, want 3", merges)
	}
	if rebuilds != 1 {
		t.Fatalf("saw %d rebuild events, want 1", rebuilds)
	}

	// Dropping the index closes the subscription.
	if err := db.DropComponentIndex("edges"); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-w.C; ok {
		t.Fatal("subscription channel still open after DROP COMPONENT INDEX")
	}
}

// TestInsertSelectFeedsIndex covers the INSERT ... SELECT statement: rows
// produced by a query flow through the same maintenance hook as literal
// VALUES.
func TestInsertSelectFeedsIndex(t *testing.T) {
	db := Open(Config{Segments: 4})
	defer db.Close()
	s := db.SQL()
	stmts := `
		CREATE TABLE staged (v1, v2);
		INSERT INTO staged VALUES (1,2),(2,3),(10,11);
		CREATE TABLE edges (v1, v2);
		CREATE COMPONENT INDEX ON edges;
		INSERT INTO edges SELECT v1, v2 FROM staged`
	if _, err := s.Exec(stmts); err != nil {
		t.Fatal(err)
	}
	got, err := db.ComponentLabels("edges")
	if err != nil {
		t.Fatal(err)
	}
	if got.NumComponents() != 2 {
		t.Fatalf("%d components, want 2 (1-2-3 and 10-11)", got.NumComponents())
	}
	if err := partitionEquivalent(t, got, oracleLabels([]graph.Edge{{V: 1, W: 2}, {V: 2, W: 3}, {V: 10, W: 11}})); err != nil {
		t.Fatal(err)
	}
}
