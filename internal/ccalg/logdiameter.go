package ccalg

import (
	"fmt"

	"dbcc/internal/engine"
)

// ldExpandFactor caps the graph-exponentiation step: a round keeps its
// squared edge set only when it is at most this multiple of the current
// one. Andoni et al. spend the same ~|E|^(1+ε) space budget per round;
// here the cap bounds what one CREATE TABLE AS may charge to the memory
// accountant, and a round whose square would blow past it falls back to
// plain label contraction (still O(log |V|) rounds in the worst case).
const ldExpandFactor = 4

// ldProbeFactor guards the exact pre-count itself. Counting the squared
// edge set streams every raw two-hop candidate pair through the engine —
// Σ_v deg(v)² rows — which on a hub graph is quadratic in the hub degree
// even though the deduplicated result would be rejected anyway. The raw
// pair total (computable in one |E|-row join, no multiplication needed:
// Σ_v deg(v)² = Σ_{(u,v)∈E} deg(v)) must stay within this multiple of the
// live edges before the exact count is attempted at all. Since dedup only
// shrinks, a raw total within the probe factor bounds the counting work;
// a raw total beyond it skips the square outright, trading rounds (never
// correctness) on overlap-heavy graphs.
const ldProbeFactor = 16

// LogDiameter is the log-diameter-rounds algorithm in the style of Andoni,
// Song, Stein, Wang and Zhong ("Parallel graph connectivity in log
// diameter rounds", FOCS 2018, arXiv:1805.03055): rounds alternate graph
// exponentiation — adding every two-hop edge, which squares the reachable
// radius — with label contraction, so the effective diameter drops
// doubly-fast and the round count tracks O(log D) on bounded-expansion
// inputs instead of O(diameter) (BFS) or O(log |V|) (min-contraction).
//
// The contraction half maps every live vertex to the minimum of its closed
// neighbourhood and pointer-doubles that map to a fixpoint inside the
// round, so each outer round contracts whole rooted trees, not single
// edges. The exponentiation half is budget-capped by ldExpandFactor: the
// paper's ε-expansion is charged to the engine's memory accountant via the
// materialised edge table, and a square that would exceed the cap is
// skipped rather than materialised.
func LogDiameter(c *engine.Cluster, input string, opts Options) (*Result, error) {
	if err := validateInput(c, input); err != nil {
		return nil, err
	}
	r := newRun(c, opts)
	defer r.cleanup()
	res, err := runLogDiameter(r, input)
	if err != nil {
		return nil, r.roundError("ld", err)
	}
	return res, nil
}

func runLogDiameter(r *run, input string) (*Result, error) {
	liveE, err := initFrontier(r, input, "ld")
	if err != nil {
		return nil, err
	}
	fp := newFrontierPlans(r, "ld")
	e := r.scan("ld_e")

	// Graph exponentiation: the current edges unioned with every two-hop
	// edge, deduplicated, loops dropped. Columns after the self-join on
	// w = v': (u, w, w, x) → (u, x).
	twoHop := engine.Project(engine.Join(e, e, 1, 0),
		engine.ProjCol{Expr: engine.Col(0), Name: "v"},
		engine.ProjCol{Expr: engine.Col(3), Name: "w"})
	squared := engine.Distinct(engine.Filter(engine.UnionAll(e, twoHop),
		engine.Bin(engine.OpNe, engine.Col(0), engine.Col(1))))

	// Raw two-hop candidate total Σ_v deg(v)², phrased without a multiply
	// operator as the sum of deg(v) over the edge rows (u, v): join each
	// edge with the degree of its head and sum that column.
	deg := engine.GroupBy(e, []int{0},
		engine.Agg{Op: engine.AggCount, Name: "deg"})
	pairBound := engine.GroupBy(engine.Join(e, deg, 1, 0), nil,
		engine.Agg{Op: engine.AggSum, Arg: engine.Col(3), Name: "pairs"})

	// Label contraction: every live vertex points at the minimum of its
	// closed neighbourhood — acyclic (pointers strictly decrease), so the
	// pointer doubling of contractStep terminates.
	rep := engine.Project(
		engine.GroupBy(e, []int{0},
			engine.Agg{Op: engine.AggMin, Arg: engine.Col(1), Name: "mw"}),
		engine.ProjCol{Expr: engine.Col(0), Name: "v"},
		engine.ProjCol{Expr: engine.Least(engine.Col(0), engine.Col(1)), Name: "r"})

	rounds := 0
	for {
		rounds++
		if rounds > maxRounds {
			return nil, fmt.Errorf("ccalg: Log-Diameter exceeded %d rounds", maxRounds)
		}
		r.beginRound()
		// Exponentiation, kept only within the per-round expansion budget.
		// Two tiers: the raw-pair bound decides whether the exact count is
		// affordable, the exact count decides whether the square is kept.
		// Both stream through the engine without materialising, so a
		// rejected square never touches the space accountant.
		if liveE > 0 {
			raw, err := aggInt(r, pairBound)
			if err != nil {
				return nil, err
			}
			sq := int64(-1)
			if raw <= ldProbeFactor*liveE {
				if sq, err = countRows(r.ctx, r.c, squared); err != nil {
					return nil, err
				}
			}
			if sq >= 0 && sq <= ldExpandFactor*liveE {
				liveE, err = r.create("ld_esq", squared, 0)
				if err != nil {
					return nil, err
				}
				if err := r.drop("ld_e"); err != nil {
					return nil, err
				}
				if err := r.rename("ld_esq", "ld_e"); err != nil {
					return nil, err
				}
			}
		}
		// Contraction.
		if _, err := r.create("ld_p", rep, 0); err != nil {
			return nil, err
		}
		var liveV int64
		liveV, liveE, err = contractStep(r, "ld", &fp)
		if err != nil {
			return nil, err
		}
		r.endRound(liveV, liveE)
		if liveE == 0 {
			break
		}
	}
	return finishFrontier(r, "ld", rounds)
}
