package ccalg

import (
	"fmt"

	"dbcc/internal/engine"
)

// BFS is the naive "Breadth First Search" strategy of Sec. IV, which is how
// Apache MADlib computes connected components: every vertex starts with the
// minimum ID in its closed neighbourhood as its representative, and each
// round improves the representative to the minimum representative in the
// closed neighbourhood, until a fixpoint. After n rounds each vertex holds
// the minimum ID within distance n, so the round count is bounded by the
// diameter — the behaviour that makes it unsuitable for Big Data (a
// sequentially numbered path of n vertices takes n−1 rounds).
func BFS(c *engine.Cluster, input string, opts Options) (*Result, error) {
	if err := validateInput(c, input); err != nil {
		return nil, err
	}
	r := newRun(c, opts)
	defer r.cleanup()
	res, err := runBFS(r, c, input)
	if err != nil {
		return nil, r.roundError("bfs", err)
	}
	return res, nil
}

func runBFS(r *run, c *engine.Cluster, input string) (*Result, error) {
	// Symmetrised edge table, distributed by source. BFS never shrinks the
	// edge set, so this count is the constant live-edge figure of the round
	// log — the reason its per-round cost does not decay.
	liveE, err := r.create("bfs_e", symmetric(input), 0)
	if err != nil {
		return nil, err
	}
	// Initial labels: minimum of the closed neighbourhood.
	initial := engine.Project(
		engine.GroupBy(r.scan("bfs_e"), []int{0},
			engine.Agg{Op: engine.AggMin, Arg: engine.Col(1), Name: "mw"}),
		engine.ProjCol{Expr: engine.Col(0), Name: "v"},
		engine.ProjCol{Expr: engine.Least(engine.Col(0), engine.Col(1)), Name: "r"},
	)
	if _, err := r.create("bfs_l", initial, 0); err != nil {
		return nil, err
	}

	// The round-loop plans are built once, outside the loop — the engine
	// analogue of a prepared statement. The rename dance keeps the table
	// names stable (bfs_l2 is always created fresh and renamed to bfs_l),
	// so the same immutable plan values execute every round.
	//
	// Neighbour labels: for each edge (v, w), the label of w.
	// Columns after join: v, w, lv(v), lv(r).
	nbr := engine.Join(r.scan("bfs_e"), r.scan("bfs_l"), 1, 0)
	nbrMin := engine.GroupBy(nbr, []int{0},
		engine.Agg{Op: engine.AggMin, Arg: engine.Col(3), Name: "mr"})
	// Improved label: min(own label, best neighbour label).
	joined := engine.LeftJoin(r.scan("bfs_l"), nbrMin, 0, 0)
	improved := engine.Project(joined,
		engine.ProjCol{Expr: engine.Col(0), Name: "v"},
		engine.ProjCol{Expr: engine.Least(engine.Col(1), engine.Col(3)), Name: "r"},
	)
	// Converged when no vertex changed its representative.
	changedPlan := engine.Filter(
		engine.Join(r.scan("bfs_l"), r.scan("bfs_l2"), 0, 0),
		engine.Bin(engine.OpNe, engine.Col(1), engine.Col(3)),
	)

	rounds := 0
	for {
		rounds++
		if rounds > maxRounds {
			return nil, fmt.Errorf("ccalg: BFS exceeded %d rounds", maxRounds)
		}
		r.beginRound()
		liveV, err := r.create("bfs_l2", improved, 0)
		if err != nil {
			return nil, err
		}
		changed, err := countRows(r.ctx, c, changedPlan)
		if err != nil {
			return nil, err
		}
		if err := r.drop("bfs_l"); err != nil {
			return nil, err
		}
		if err := r.rename("bfs_l2", "bfs_l"); err != nil {
			return nil, err
		}
		r.endRound(liveV, liveE)
		if changed == 0 {
			break
		}
	}

	labels, err := r.labelsOf("bfs_l")
	if err != nil {
		return nil, err
	}
	if err := r.drop("bfs_l", "bfs_e"); err != nil {
		return nil, err
	}
	return &Result{Labels: labels, Rounds: rounds, RoundLog: r.roundLog}, nil
}
