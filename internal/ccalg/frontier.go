package ccalg

import (
	"fmt"

	"dbcc/internal/engine"
)

// Shared machinery of the two frontier drivers (LocalContract and
// LogDiameter). Both algorithms run the same contraction skeleton: a live
// edge set E (symmetric, deduplicated, loops dropped), a label table L
// mapping every original vertex to its current representative, and a
// per-round representative table P over the live vertices. A round builds
// P by its own rule (min of the closed neighbourhood for LogDiameter;
// degree-thresholded with hub exceptions for LocalContract), jumps P to a
// pointer fixpoint, rewrites E through P and folds P into L. The drivers
// differ only in how P is chosen and in LogDiameter's graph-exponentiation
// step, so everything else lives here.
//
// All plans below are built once per run and executed every round through
// the rename dance (<p>_e2 is always created fresh and renamed to <p>_e,
// and so on) — the engine analogue of prepared statements, matching the
// BFS/Two-Phase drivers.

// frontierPlans holds the round-loop plans shared by both drivers.
type frontierPlans struct {
	jump        engine.Plan // p2(v) = p(p(v)): one pointer-doubling step
	jumpChanged engine.Plan // rows whose pointer the doubling step moved
	contract    engine.Plan // E rewritten through P, loops dropped, deduplicated
	fold        engine.Plan // L rewritten through P
	liveV       engine.Plan // distinct endpoints of the live edge set
}

// newFrontierPlans builds the shared round-loop plans for the run-private
// tables <prefix>_e, <prefix>_p, <prefix>_p2 and <prefix>_l.
func newFrontierPlans(r *run, prefix string) frontierPlans {
	e := r.scan(prefix + "_e")
	p := r.scan(prefix + "_p")
	p2 := r.scan(prefix + "_p2")
	l := r.scan(prefix + "_l")

	// One pointer-doubling step. P is total over the live vertices and
	// closed under itself (every representative is a live vertex), so the
	// inner join loses no rows. Columns after join: v, p(v), p(v), p(p(v)).
	jump := engine.Project(engine.Join(p, p, 1, 0),
		engine.ProjCol{Expr: engine.Col(0), Name: "v"},
		engine.ProjCol{Expr: engine.Col(3), Name: "r"})
	jumpChanged := engine.Filter(engine.Join(p, p2, 0, 0),
		engine.Bin(engine.OpNe, engine.Col(1), engine.Col(3)))

	// Rewrite both endpoints of every edge through the (fixpointed) P:
	// two joins, then drop the loops contraction created and deduplicate.
	// E holds both orientations, so the output is symmetric by symmetry of
	// the input. Columns: (u, w, u, r(u)) → (r(u), w) → (r(u), w, w, r(w)).
	half := engine.Project(engine.Join(e, p, 0, 0),
		engine.ProjCol{Expr: engine.Col(3), Name: "v"},
		engine.ProjCol{Expr: engine.Col(1), Name: "w"})
	full := engine.Project(engine.Join(half, p, 1, 0),
		engine.ProjCol{Expr: engine.Col(0), Name: "v"},
		engine.ProjCol{Expr: engine.Col(3), Name: "w"})
	contract := engine.Distinct(engine.Filter(full,
		engine.Bin(engine.OpNe, engine.Col(0), engine.Col(1))))

	// Fold P into the original-vertex labels: representatives contracted
	// away in earlier rounds are absent from P, so a left join keeps their
	// final labels. Columns: (orig, cur, cur, root).
	fold := engine.Project(engine.LeftJoin(l, p, 1, 0),
		engine.ProjCol{Expr: engine.Col(0), Name: "v"},
		engine.ProjCol{Expr: engine.Coalesce(engine.Col(3), engine.Col(1)), Name: "r"})

	return frontierPlans{
		jump:        jump,
		jumpChanged: jumpChanged,
		contract:    contract,
		fold:        fold,
		liveV:       engine.GroupBy(e, []int{0}),
	}
}

// initFrontier materialises the run's starting state: <prefix>_l as the
// identity labelling over every input vertex (loop-only vertices
// included), and <prefix>_e as the symmetric, deduplicated, loop-free live
// edge set. It returns the live edge count (both orientations, matching
// the LiveEdges convention of the BFS round log).
func initFrontier(r *run, input, prefix string) (int64, error) {
	verts := engine.Project(
		engine.GroupBy(symmetric(input), []int{0}),
		engine.ProjCol{Expr: engine.Col(0), Name: "v"},
		engine.ProjCol{Expr: engine.Col(0), Name: "r"})
	if _, err := r.create(prefix+"_l", verts, 0); err != nil {
		return 0, err
	}
	edges := engine.Distinct(engine.Filter(symmetric(input),
		engine.Bin(engine.OpNe, engine.Col(0), engine.Col(1))))
	return r.create(prefix+"_e", edges, 0)
}

// contractStep finishes a round whose representative table <prefix>_p has
// just been created: it jumps P to a pointer fixpoint (the drivers
// guarantee P is acyclic, so the doubling terminates in logarithmically
// many steps), contracts the edge set through it, folds it into the
// labels, and returns the surviving (liveVertices, liveEdges).
func contractStep(r *run, prefix string, fp *frontierPlans) (int64, int64, error) {
	for i := 0; ; i++ {
		if i > maxRounds {
			return 0, 0, fmt.Errorf("ccalg: %s pointer jumping exceeded %d steps", prefix, maxRounds)
		}
		if _, err := r.create(prefix+"_p2", fp.jump, 0); err != nil {
			return 0, 0, err
		}
		changed, err := countRows(r.ctx, r.c, fp.jumpChanged)
		if err != nil {
			return 0, 0, err
		}
		if err := r.drop(prefix + "_p"); err != nil {
			return 0, 0, err
		}
		if err := r.rename(prefix+"_p2", prefix+"_p"); err != nil {
			return 0, 0, err
		}
		if changed == 0 {
			break
		}
	}
	liveE, err := r.create(prefix+"_e2", fp.contract, 0)
	if err != nil {
		return 0, 0, err
	}
	if _, err := r.create(prefix+"_l2", fp.fold, 0); err != nil {
		return 0, 0, err
	}
	if err := r.drop(prefix+"_e", prefix+"_l", prefix+"_p"); err != nil {
		return 0, 0, err
	}
	if err := r.rename(prefix+"_e2", prefix+"_e"); err != nil {
		return 0, 0, err
	}
	if err := r.rename(prefix+"_l2", prefix+"_l"); err != nil {
		return 0, 0, err
	}
	liveV, err := countRows(r.ctx, r.c, fp.liveV)
	if err != nil {
		return 0, 0, err
	}
	return liveV, liveE, nil
}

// finishFrontier reads the final labelling and drops the run's state.
func finishFrontier(r *run, prefix string, rounds int) (*Result, error) {
	labels, err := r.labelsOf(prefix + "_l")
	if err != nil {
		return nil, err
	}
	if err := r.drop(prefix+"_l", prefix+"_e"); err != nil {
		return nil, err
	}
	return &Result{Labels: labels, Rounds: rounds, RoundLog: r.roundLog}, nil
}

// aggInt evaluates a single-row, single-column aggregate plan (0 when the
// aggregate has no input rows, e.g. MAX over an empty table).
func aggInt(r *run, p engine.Plan) (int64, error) {
	_, rows, err := r.c.QueryCtx(r.ctx, p)
	if err != nil {
		return 0, err
	}
	if len(rows) == 0 || rows[0][0].Null {
		return 0, nil
	}
	return rows[0][0].Int, nil
}
