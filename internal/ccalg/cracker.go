package ccalg

import (
	"fmt"

	"dbcc/internal/engine"
)

// Cracker is the vertex-pruning algorithm of Lulli et al. ("Fast connected
// components computation in large graphs by vertex pruning", TPDS 2017),
// ported with the same direct translation the paper applies to its Spark
// implementation. Each round has two phases:
//
//   - Min selection: every vertex u computes the minimum of its closed
//     neighbourhood and proposes it as a candidate to every member of that
//     neighbourhood (including itself);
//   - Pruning: every vertex v looks at its received candidate set C(v).
//     If v is nobody's minimum (v ∉ C(v)) it is pruned from the graph and
//     attached to min C(v) in the propagation tree; in either case the
//     candidates in C(v) are re-linked to min C(v), preserving
//     connectivity among the surviving local minima.
//
// When the graph runs out of edges, the surviving vertices seed their
// components and labels propagate down the tree. The candidate re-linking
// is what inflates communication on path-shaped inputs (Table I's
// O(|V|·|E|/log|V|) bound and the Path100M failure in Table III).
func Cracker(c *engine.Cluster, input string, opts Options) (*Result, error) {
	if err := validateInput(c, input); err != nil {
		return nil, err
	}
	r := newRun(c, opts)
	defer r.cleanup()
	res, err := runCracker(r, c, input)
	if err != nil {
		return nil, r.roundError("cr", err)
	}
	return res, nil
}

func runCracker(r *run, c *engine.Cluster, input string) (*Result, error) {
	// Working edge set: symmetric, deduplicated, loop-free.
	if _, err := r.create("cr_e", engine.Distinct(engine.Filter(symmetric(input),
		engine.Bin(engine.OpNe, engine.Col(0), engine.Col(1)))), 0); err != nil {
		return nil, err
	}
	// All original vertices, for final labelling.
	if _, err := r.create("cr_allv", engine.Project(
		engine.GroupBy(symmetric(input), []int{0}),
		engine.ProjCol{Expr: engine.Col(0), Name: "v"}), 0); err != nil {
		return nil, err
	}
	// Propagation tree rows (parent, child); roots appear as (v, v).
	if _, err := r.c.CreateTable(r.t("cr_tree"), engine.Schema{"parent", "child"}, 1); err != nil {
		return nil, err
	}
	r.temps[r.t("cr_tree")] = struct{}{}

	plans := newCRPlans(r)
	rounds := 0
	for {
		n, err := countRows(r.ctx, c, plans.eCount)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			break
		}
		rounds++
		if rounds > maxRounds {
			return nil, fmt.Errorf("ccalg: Cracker exceeded %d rounds", maxRounds)
		}
		r.beginRound()
		liveV, liveE, err := crackerRound(r, plans)
		if err != nil {
			return nil, err
		}
		r.endRound(liveV, liveE)
	}

	// Propagation: seed labels at the roots, then push one tree level per
	// round until every reachable vertex is labelled.
	roots := engine.Project(
		engine.Filter(r.scan("cr_tree"),
			engine.Bin(engine.OpEq, engine.Col(0), engine.Col(1))),
		engine.ProjCol{Expr: engine.Col(1), Name: "v"},
		engine.ProjCol{Expr: engine.Col(0), Name: "r"},
	)
	if _, err := r.create("cr_lab", roots, 0); err != nil {
		return nil, err
	}
	// Children of labelled parents inherit the label; union with the
	// existing labels and deduplicate (each child has one parent, so
	// no conflicts arise). Built once: the rename dance keeps the names
	// stable across propagation rounds.
	children := engine.Project(
		engine.Join(r.scan("cr_tree"), r.scan("cr_lab"), 0, 0),
		engine.ProjCol{Expr: engine.Col(1), Name: "v"},
		engine.ProjCol{Expr: engine.Col(3), Name: "r"},
	)
	propagate := engine.Distinct(engine.UnionAll(r.scan("cr_lab"), children))
	labCount := r.scan("cr_lab")
	prev := int64(-1)
	for {
		n, err := countRows(r.ctx, c, labCount)
		if err != nil {
			return nil, err
		}
		if n == prev {
			break
		}
		prev = n
		rounds++
		r.beginRound()
		labelled, err := r.create("cr_lab2", propagate, 0)
		if err != nil {
			return nil, err
		}
		if err := r.drop("cr_lab"); err != nil {
			return nil, err
		}
		if err := r.rename("cr_lab2", "cr_lab"); err != nil {
			return nil, err
		}
		// Propagation rounds run on the edge-free tree: the labelled vertex
		// count grows level by level while the live edge set stays empty.
		r.endRound(labelled, 0)
	}

	// Isolated input vertices (loop edges) never enter the working graph;
	// they label themselves.
	final := engine.Project(
		engine.LeftJoin(r.scan("cr_allv"), r.scan("cr_lab"), 0, 0),
		engine.ProjCol{Expr: engine.Col(0), Name: "v"},
		engine.ProjCol{Expr: engine.Coalesce(engine.Col(2), engine.Col(0)), Name: "r"},
	)
	if _, err := r.create("cr_result", final, 0); err != nil {
		return nil, err
	}
	labels, err := r.labelsOf("cr_result")
	if err != nil {
		return nil, err
	}
	if err := r.drop("cr_result", "cr_lab", "cr_tree", "cr_allv", "cr_e"); err != nil {
		return nil, err
	}
	return &Result{Labels: labels, Rounds: rounds, RoundLog: r.roundLog}, nil
}

// crPlans holds the round loop's plans, built once per run
// (prepared-statement style): the rename dance keeps the cr_* names
// stable, so the same immutable plan values execute every round.
type crPlans struct {
	eCount     engine.Plan
	m          engine.Plan // min of the closed neighbourhood per vertex
	candidates engine.Plan // min-selection proposals (receiver, candidate)
	vmin       engine.Plan // vmin(v) = min C(v)
	live       engine.Plan // surviving vertices (somebody's minimum)
	prunedTree engine.Plan // tree rows for pruned vertices
	nextGraph  engine.Plan // re-linked, re-symmetrised next edge set
	nextV      engine.Plan // vertices of the next graph
	rootRows   engine.Plan // tree rows for this round's roots
}

func newCRPlans(r *run) *crPlans {
	p := &crPlans{eCount: r.scan("cr_e")}
	p.m = engine.Project(
		engine.GroupBy(r.scan("cr_e"), []int{0},
			engine.Agg{Op: engine.AggMin, Arg: engine.Col(1), Name: "mn"}),
		engine.ProjCol{Expr: engine.Col(0), Name: "v"},
		engine.ProjCol{Expr: engine.Least(engine.Col(0), engine.Col(1)), Name: "m"},
	)
	// Min selection: candidate proposals (receiver, candidate). Each edge
	// row (u, v) sends u's minimum to v; each vertex also proposes its
	// minimum to itself.
	toNeighbours := engine.Project(
		engine.Join(r.scan("cr_e"), r.scan("cr_m"), 0, 0),
		engine.ProjCol{Expr: engine.Col(1), Name: "v"},
		engine.ProjCol{Expr: engine.Col(3), Name: "c"},
	)
	toSelf := engine.Project(r.scan("cr_m"),
		engine.ProjCol{Expr: engine.Col(0), Name: "v"},
		engine.ProjCol{Expr: engine.Col(1), Name: "c"})
	p.candidates = engine.Distinct(engine.UnionAll(toNeighbours, toSelf))
	p.vmin = engine.GroupBy(r.scan("cr_g"), []int{0},
		engine.Agg{Op: engine.AggMin, Arg: engine.Col(1), Name: "vmin"})
	// Survivors: vertices that are somebody's minimum (v ∈ C(v)).
	survivors := engine.Project(
		engine.Filter(r.scan("cr_g"),
			engine.Bin(engine.OpEq, engine.Col(0), engine.Col(1))),
		engine.ProjCol{Expr: engine.Col(0), Name: "v"},
	)
	p.live = engine.Distinct(survivors)
	// Pruned vertices attach to their candidate minimum in the tree.
	// Columns after left join: v, vmin, v(live).
	p.prunedTree = engine.Project(
		engine.Filter(
			engine.LeftJoin(r.scan("cr_vmin"), r.scan("cr_live"), 0, 0),
			engine.IsNull(engine.Col(2))),
		engine.ProjCol{Expr: engine.Col(1), Name: "parent"},
		engine.ProjCol{Expr: engine.Col(0), Name: "child"},
	)
	// Next graph: every candidate re-linked to its receiver's minimum,
	// re-symmetrised, loops dropped. Join columns: v, c, v, vmin.
	relinked := engine.Project(
		engine.Join(r.scan("cr_g"), r.scan("cr_vmin"), 0, 0),
		engine.ProjCol{Expr: engine.Col(3), Name: "v"},
		engine.ProjCol{Expr: engine.Col(1), Name: "w"},
	)
	rev := engine.Project(relinked,
		engine.ProjCol{Expr: engine.Col(1), Name: "v"},
		engine.ProjCol{Expr: engine.Col(0), Name: "w"})
	p.nextGraph = engine.Distinct(engine.Filter(engine.UnionAll(relinked, rev),
		engine.Bin(engine.OpNe, engine.Col(0), engine.Col(1))))
	p.nextV = engine.Distinct(engine.Project(
		engine.GroupBy(r.scan("cr_e2"), []int{0}),
		engine.ProjCol{Expr: engine.Col(0), Name: "v"}))
	// Roots: surviving vertices that no longer touch any edge and were not
	// pruned — they seed their component. Columns after the two left
	// joins: v, v(pruned child), v(next-graph vertex).
	prunedChildren := engine.Project(r.scan("cr_prune"),
		engine.ProjCol{Expr: engine.Col(1), Name: "v"})
	lj1 := engine.LeftJoin(r.scan("cr_live"), engine.Distinct(prunedChildren), 0, 0)
	lj2 := engine.LeftJoin(lj1, r.scan("cr_nextv"), 0, 0)
	p.rootRows = engine.Project(
		engine.Filter(lj2, engine.Bin(engine.OpAnd,
			engine.IsNull(engine.Col(1)), engine.IsNull(engine.Col(2)))),
		engine.ProjCol{Expr: engine.Col(0), Name: "parent"},
		engine.ProjCol{Expr: engine.Col(0), Name: "child"},
	)
	return p
}

// crackerRound performs one min-selection + pruning round, replacing cr_e
// and appending to cr_tree. It returns the surviving (unpruned) vertex
// count and the edge count of the next graph.
func crackerRound(r *run, p *crPlans) (int64, int64, error) {
	c := r.c
	if _, err := r.create("cr_m", p.m, 0); err != nil {
		return 0, 0, err
	}
	if _, err := r.create("cr_g", p.candidates, 0); err != nil {
		return 0, 0, err
	}
	// The previous graph is no longer needed once the candidate table
	// exists (a Spark port would unpersist the parent RDD here).
	if err := r.drop("cr_m", "cr_e"); err != nil {
		return 0, 0, err
	}
	if _, err := r.create("cr_vmin", p.vmin, 0); err != nil {
		return 0, 0, err
	}
	liveV, err := r.create("cr_live", p.live, 0)
	if err != nil {
		return 0, 0, err
	}
	if _, err := r.create("cr_prune", p.prunedTree, 1); err != nil {
		return 0, 0, err
	}
	liveE, err := r.create("cr_e2", p.nextGraph, 0)
	if err != nil {
		return 0, 0, err
	}
	if _, err := r.create("cr_nextv", p.nextV, 0); err != nil {
		return 0, 0, err
	}
	if _, err := r.create("cr_roots", p.rootRows, 1); err != nil {
		return 0, 0, err
	}
	// Append this round's tree rows.
	treeRows, err := c.ReadAll(r.t("cr_prune"))
	if err != nil {
		return 0, 0, err
	}
	rootRowsData, err := c.ReadAll(r.t("cr_roots"))
	if err != nil {
		return 0, 0, err
	}
	if err := c.InsertRows(r.t("cr_tree"), append(treeRows, rootRowsData...)); err != nil {
		return 0, 0, err
	}
	if err := r.drop("cr_g", "cr_vmin", "cr_live", "cr_prune", "cr_roots", "cr_nextv"); err != nil {
		return 0, 0, err
	}
	if err := r.rename("cr_e2", "cr_e"); err != nil {
		return 0, 0, err
	}
	return liveV, liveE, r.checkSpace()
}
