package ccalg_test

import (
	"testing"

	"dbcc/internal/ccalg"
	"dbcc/internal/ccalg/conformance"
	"dbcc/internal/datagen"
	"dbcc/internal/engine"
	"dbcc/internal/graph"
)

// TestAutoGoldenDecisions pins the adaptive planner's choice per graph
// family. The table is golden on purpose: a change to the planner's rules
// or thresholds shows up here as a visible diff, not as a silent
// performance regression. The rationale per row: paths, grids and sparse
// random graphs have diameter beyond the probe's horizon (log-diameter
// wins); stars, bitcoin's and RMAT's heavy hubs trip the degree-skew rule
// (local contraction's hub exception wins); the dense friendster blobs
// converge inside the probe with no skew (deterministic contraction, the
// paper's best all-rounder); and a tight space budget overrides everything
// (two-phase has the flattest space profile).
func TestAutoGoldenDecisions(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		opts ccalg.Options
		want string
	}{
		{"path", datagen.Path(2000), ccalg.Options{}, "ld"},
		{"pathunion", datagen.PathUnion(10, 2000), ccalg.Options{}, "ld"},
		{"star", datagen.Star(2000), ccalg.Options{}, "lc"},
		{"bitcoin", datagen.Bitcoin(2000, 7), ccalg.Options{}, "lc"},
		{"rmat", datagen.RMAT(11, 6000, 0.57, 0.19, 0.19, 0.05, 7), ccalg.Options{}, "lc"},
		{"friendster", datagen.Friendster(300, 3, 7), ccalg.Options{}, "rc-det"},
		{"erdosrenyi", datagen.ErdosRenyi(2000, 4000, 7), ccalg.Options{}, "ld"},
		{"image2d", datagen.Image2D(48, 48, 12, 0.3, 0.1, 7), ccalg.Options{}, "ld"},
		{"empty", graph.New(0), ccalg.Options{}, "rc-det"},
		{"tight-budget", datagen.Star(2000), ccalg.Options{MaxLiveBytes: 1}, "tp"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := engine.NewCluster(engine.Options{Segments: 4})
			if err := graph.Load(c, "input", tc.g); err != nil {
				t.Fatal(err)
			}
			d, err := ccalg.PlanAlgorithm(c, "input", tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			if d.Algorithm != tc.want {
				t.Errorf("planned %q (%s), golden table says %q", d.Algorithm, d.Reason, tc.want)
			}
			if d.Reason == "" {
				t.Error("decision carries no reason")
			}
		})
	}
}

// TestAutoPrescanStats sanity-checks the statistics behind a decision on a
// graph whose exact shape is known: a 100-vertex star has 99 symmetric
// edge pairs, a hub of degree 99, and needs no probe.
func TestAutoPrescanStats(t *testing.T) {
	c := engine.NewCluster(engine.Options{Segments: 4})
	if err := graph.Load(c, "input", datagen.Star(100)); err != nil {
		t.Fatal(err)
	}
	d, err := ccalg.PlanAlgorithm(c, "input", ccalg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := d.Prescan
	if p.Vertices != 100 || p.Edges != 198 || p.MaxDegree != 99 {
		t.Errorf("prescan V=%d E=%d maxdeg=%d, want 100/198/99", p.Vertices, p.Edges, p.MaxDegree)
	}
	if p.ProbeRounds != 0 || p.ProbeConverged {
		t.Errorf("probe ran (%d rounds) although the skew rule decides first", p.ProbeRounds)
	}
	if d.Algorithm != "lc" {
		t.Errorf("planned %q for a star", d.Algorithm)
	}
}

// TestAutoRunsItsPlan checks the driver end to end on one graph per
// planned algorithm: Auto must run its plan and label correctly.
func TestAutoRunsItsPlan(t *testing.T) {
	for _, g := range []*graph.Graph{
		datagen.Path(500),             // plans ld
		datagen.Star(500),             // plans lc
		datagen.Friendster(120, 3, 7), // plans rc-det
	} {
		res, _ := conformance.RunOn(t, ccalg.Auto, g, ccalg.Options{Seed: 1})
		conformance.CheckCorrect(t, g, res)
	}
}

// TestAutoDecisionIgnoresEngineKnobs pins the reproducibility premise of
// the planner: decisions are a pure function of the graph and the run
// options, never of cluster tuning. A divergence would break the property
// matrix's bit-identical guarantee for Algorithm="auto".
func TestAutoDecisionIgnoresEngineKnobs(t *testing.T) {
	g := datagen.ErdosRenyi(500, 1000, 3)
	var ref string
	for _, opts := range []engine.Options{
		{Segments: 4},
		{Segments: 4, MemoryBudget: 8 << 10},
		{Segments: 4, DisableBloomJoin: true, DisableOperatorFusion: true},
		{Segments: 16},
	} {
		c := engine.NewCluster(opts)
		if err := graph.Load(c, "input", g); err != nil {
			t.Fatal(err)
		}
		d, err := ccalg.PlanAlgorithm(c, "input", ccalg.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if ref == "" {
			ref = d.Algorithm
		} else if d.Algorithm != ref {
			t.Fatalf("decision %q under %+v, but %q on the reference cluster", d.Algorithm, opts, ref)
		}
	}
}
