package ccalg

import (
	"fmt"

	"dbcc/internal/engine"
)

// Local contraction's degree-threshold schedule: vertices of degree at
// most τ contract locally this round, and τ grows geometrically so every
// vertex — however high its degree — becomes contractible within
// log_lcTauGrowth(Δ) rounds.
const (
	lcInitialTau = 16
	lcTauGrowth  = 4
)

// LocalContract is the local-contractions algorithm in the style of Łącki,
// Mirrokni and Włodarczyk ("Connected components at scale via local
// contractions", arXiv:1807.10727): each round contracts the low-degree
// vertices (degree ≤ τ) into a neighbour, while high-degree hubs are
// excepted — a hub never contracts into anything, and a low vertex
// adjacent to a hub contracts into its smallest hub neighbour rather than
// chase a chain of low vertices. The exception keeps per-round work local
// (a low vertex only inspects its ≤ τ neighbours) and funnels the mass of
// skewed graphs straight into their hubs; the threshold grows by
// lcTauGrowth per round, so once τ clears the maximum degree the algorithm
// degenerates to pure minimum-contraction and finishes in O(log |V|)
// further rounds.
//
// The representative map is acyclic by construction — pointers among
// hub-free low vertices strictly decrease, a hub-adjacent low vertex
// points at a hub, and hubs are fixpoints — so the shared pointer-doubling
// step contracts whole trees per round.
func LocalContract(c *engine.Cluster, input string, opts Options) (*Result, error) {
	if err := validateInput(c, input); err != nil {
		return nil, err
	}
	r := newRun(c, opts)
	defer r.cleanup()
	res, err := runLocalContract(r, input)
	if err != nil {
		return nil, r.roundError("lc", err)
	}
	return res, nil
}

func runLocalContract(r *run, input string) (*Result, error) {
	liveE, err := initFrontier(r, input, "lc")
	if err != nil {
		return nil, err
	}
	fp := newFrontierPlans(r, "lc")
	e := r.scan("lc_e")

	// Degree of every live vertex (E is symmetric, so the out-degree is
	// the degree), rebuilt per round into lc_d.
	deg := engine.GroupBy(e, []int{0}, engine.Agg{Op: engine.AggCount, Name: "deg"})

	rounds := 0
	tau := int64(lcInitialTau)
	for {
		rounds++
		if rounds > maxRounds {
			return nil, fmt.Errorf("ccalg: Local Contraction exceeded %d rounds", maxRounds)
		}
		r.beginRound()
		if _, err := r.create("lc_d", deg, 0); err != nil {
			return nil, err
		}
		// The τ-dependent plans are re-instantiated from their template
		// each round with the current threshold as a literal — the Plan-API
		// analogue of binding a parameter on a prepared statement. Nothing
		// is parsed; the surrounding plans stay fixed.
		if _, err := r.create("lc_p", lcRepPlan(r, tau), 0); err != nil {
			return nil, err
		}
		if err := r.drop("lc_d"); err != nil {
			return nil, err
		}
		liveV, nextE, err := contractStep(r, "lc", &fp)
		if err != nil {
			return nil, err
		}
		liveE = nextE
		r.endRound(liveV, liveE)
		if liveE == 0 {
			break
		}
		if tau < 1<<40 {
			tau *= lcTauGrowth
		}
	}
	return finishFrontier(r, "lc", rounds)
}

// lcRepPlan builds the round's representative map at threshold tau:
//
//	rep(v) = v                      when deg(v) > τ (hub exception)
//	       = min hub neighbour      when v is low but hub-adjacent
//	       = min(N(v) ∪ {v})        otherwise (plain local contraction)
//
// composed as two left joins over the lc_d degree table: the closed-
// neighbourhood minimum, overridden by the hub-neighbour minimum,
// overridden by self for hubs.
func lcRepPlan(r *run, tau int64) engine.Plan {
	e := r.scan("lc_e")
	d := r.scan("lc_d")
	hub := engine.Bin(engine.OpGt, engine.Col(1), engine.Const(tau))

	// Minimum of the closed neighbourhood, per live vertex.
	allMin := engine.Project(
		engine.GroupBy(e, []int{0},
			engine.Agg{Op: engine.AggMin, Arg: engine.Col(1), Name: "mw"}),
		engine.ProjCol{Expr: engine.Col(0), Name: "v"},
		engine.ProjCol{Expr: engine.Least(engine.Col(0), engine.Col(1)), Name: "r"})
	// Minimum hub neighbour, where one exists. Columns after joining each
	// edge with the neighbour's degree row: (v, w, w, deg(w)).
	hubNbrMin := engine.GroupBy(
		engine.Filter(engine.Join(e, d, 1, 0), engine.Bin(engine.OpGt, engine.Col(3), engine.Const(tau))),
		[]int{0},
		engine.Agg{Op: engine.AggMin, Arg: engine.Col(1), Name: "h"})
	// The hub set itself: one column of vertices with deg > τ.
	hubs := engine.Project(engine.Filter(d, hub),
		engine.ProjCol{Expr: engine.Col(0), Name: "v"})

	// Columns: (v, m) ⟕ (v, h) → (v, m, v', h) ⟕ (v) → (v, m, v', h, hv).
	// coalesce(hv, h, m): self for hubs, hub neighbour for hub-adjacent
	// lows, neighbourhood minimum for the rest.
	joined := engine.LeftJoin(engine.LeftJoin(allMin, hubNbrMin, 0, 0), hubs, 0, 0)
	return engine.Project(joined,
		engine.ProjCol{Expr: engine.Col(0), Name: "v"},
		engine.ProjCol{Expr: engine.Coalesce(engine.Col(4), engine.Col(3), engine.Col(1)), Name: "r"})
}
