package ccalg

import (
	"sync"

	"dbcc/internal/blowfish"
	"dbcc/internal/engine"
	"dbcc/internal/gf"
	"dbcc/internal/xrand"
)

// RegisterUDFs installs the user-defined functions the algorithms' SQL
// relies on, mirroring the paper loading its C functions into HAWQ:
//
//	axplusb(a, x, b) — a·x+b over GF(2^64) (Fig. 7), the finite fields method;
//	axbp(a, x, b)    — a·x+b mod 2^64−59, the SQL-only GF(p) alternative;
//	enc(key, x)      — Blowfish encryption of x under key, the encryption method;
//	hrand(seed, x)   — the per-round "random real" of vertex x, as a 63-bit
//	                   integer (the random reals method's h-table values).
//
// All four treat the int64 column values as raw 64-bit patterns. The
// functions are safe for concurrent evaluation (their memo caches are
// internally locked), and registration is idempotent: once a cluster has
// the UDFs, later calls keep the warm caches instead of replacing them,
// so concurrent algorithm runs share one set.
func RegisterUDFs(c *engine.Cluster) {
	if _, ok := c.UDF("hrand"); ok {
		return
	}
	// Multiplication tables are cached per coefficient a: one contraction
	// round evaluates axplusb with the same a for every row.
	var (
		mulMu    sync.RWMutex
		mulCache = make(map[uint64]*gf.Multiplier)
	)
	mulFor := func(a uint64) *gf.Multiplier {
		mulMu.RLock()
		m, ok := mulCache[a]
		mulMu.RUnlock()
		if ok {
			return m
		}
		mulMu.Lock()
		defer mulMu.Unlock()
		if m, ok = mulCache[a]; ok {
			return m
		}
		if len(mulCache) > 64 {
			mulCache = make(map[uint64]*gf.Multiplier) // bound the cache
		}
		m = gf.NewMultiplier(a)
		mulCache[a] = m
		return m
	}
	c.RegisterUDF("axplusb", func(args []engine.Datum) engine.Datum {
		if args[0].Null || args[1].Null || args[2].Null {
			return engine.NullDatum
		}
		m := mulFor(uint64(args[0].Int))
		return engine.I(int64(m.AxB(uint64(args[1].Int), uint64(args[2].Int))))
	})

	c.RegisterUDF("axbp", func(args []engine.Datum) engine.Datum {
		if args[0].Null || args[1].Null || args[2].Null {
			return engine.NullDatum
		}
		return engine.I(int64(gf.AxBP(uint64(args[0].Int), uint64(args[1].Int), uint64(args[2].Int))))
	})

	// Ciphers are cached per round key; the key schedule is far more
	// expensive than a block encryption.
	var (
		encMu    sync.RWMutex
		encCache = make(map[uint64]*blowfish.Cipher)
	)
	cipherFor := func(key uint64) *blowfish.Cipher {
		encMu.RLock()
		ci, ok := encCache[key]
		encMu.RUnlock()
		if ok {
			return ci
		}
		encMu.Lock()
		defer encMu.Unlock()
		if ci, ok = encCache[key]; ok {
			return ci
		}
		if len(encCache) > 64 {
			encCache = make(map[uint64]*blowfish.Cipher)
		}
		ci = blowfish.NewFromUint64(key)
		encCache[key] = ci
		return ci
	}
	c.RegisterUDF("enc", func(args []engine.Datum) engine.Datum {
		if args[0].Null || args[1].Null {
			return engine.NullDatum
		}
		ci := cipherFor(uint64(args[0].Int))
		// Keep results non-negative so integer min works like uint64 min;
		// dropping the top bit halves the range but keeps a 2^-63 collision
		// probability per pair, irrelevant for ordering purposes.
		return engine.I(int64(ci.Encrypt64(uint64(args[1].Int)) >> 1))
	})

	c.RegisterUDF("hrand", func(args []engine.Datum) engine.Datum {
		if args[0].Null || args[1].Null {
			return engine.NullDatum
		}
		h := xrand.Mix64(uint64(args[0].Int) ^ xrand.Mix64(uint64(args[1].Int)))
		return engine.I(int64(h >> 1)) // non-negative 63-bit "random real"
	})
}
