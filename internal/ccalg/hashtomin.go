package ccalg

import (
	"fmt"

	"dbcc/internal/engine"
)

// HashToMin is the algorithm of Rastogi et al. ("Finding connected
// components in Map-Reduce in logarithmic rounds", ICDE 2013), which the
// paper reports as the best practical MapReduce algorithm of its
// generation, ported to the database with the one-to-one translation the
// paper describes: "a 'map' using key-value messages was converted to the
// creation of a temporary database table distributed by the key, and the
// subsequent 'reduce' was implemented as an aggregate function applied on
// that table". Accordingly each round materialises the map phase's raw
// message table — every vertex sends its whole cluster C(v) to the
// minimum member and the minimum to every member — before the reduce
// phase deduplicates it into the next cluster state.
//
// Rounds are O(log |V|) but the cluster state is O(|V|²) in the worst
// case — the reason Hash-to-Min exhausts storage on the larger and the
// path-shaped datasets of Table III (reproduced here through the
// live-space budget).
func HashToMin(c *engine.Cluster, input string, opts Options) (*Result, error) {
	if err := validateInput(c, input); err != nil {
		return nil, err
	}
	r := newRun(c, opts)
	defer r.cleanup()
	res, err := runHashToMin(r, c, input)
	if err != nil {
		return nil, r.roundError("hm", err)
	}
	return res, nil
}

func runHashToMin(r *run, c *engine.Cluster, input string) (*Result, error) {
	// Initial clusters: C(v) = N[v] — both edge orientations plus a self
	// row per vertex; the raw map output is materialised first, MapReduce
	// style, then reduced to the deduplicated state.
	self := engine.Project(
		engine.GroupBy(symmetric(input), []int{0}),
		engine.ProjCol{Expr: engine.Col(0), Name: "v"},
		engine.ProjCol{Expr: engine.Col(0), Name: "u"},
	)
	if _, err := r.create("hm_map", engine.UnionAll(symmetric(input), self), 0); err != nil {
		return nil, err
	}
	if _, err := r.create("hm_c", engine.Distinct(r.scan("hm_map")), 0); err != nil {
		return nil, err
	}
	if err := r.drop("hm_map"); err != nil {
		return nil, err
	}

	// Round-loop plans, built once outside the loop (prepared-statement
	// style): the rename dance keeps hm_c / hm_m / hm_map names stable, so
	// the same immutable plan values execute every round.
	//
	// m(v) = min C(v). Its cardinality is the vertex count.
	mPlan := engine.GroupBy(r.scan("hm_c"), []int{0},
		engine.Agg{Op: engine.AggMin, Arg: engine.Col(1), Name: "m"})
	// Join columns: v, u, v, m.
	joined := engine.Join(r.scan("hm_c"), r.scan("hm_m"), 0, 0)
	// Map phase: send the cluster to the min, (m, u), and the min to
	// every member, (u, m). The raw message table is materialised
	// before the reduce, as in the paper's MapReduce-to-SQL port.
	toMin := engine.Project(joined,
		engine.ProjCol{Expr: engine.Col(3), Name: "v"},
		engine.ProjCol{Expr: engine.Col(1), Name: "u"})
	toMembers := engine.Project(joined,
		engine.ProjCol{Expr: engine.Col(1), Name: "v"},
		engine.ProjCol{Expr: engine.Col(3), Name: "u"})
	mapPlan := engine.UnionAll(toMin, toMembers)
	reducePlan := engine.Distinct(r.scan("hm_map"))
	cCount := r.scan("hm_c")
	unionCount := engine.Distinct(engine.UnionAll(r.scan("hm_c"), r.scan("hm_c2")))

	rounds := 0
	for {
		rounds++
		if rounds > maxRounds {
			return nil, fmt.Errorf("ccalg: Hash-to-Min exceeded %d rounds", maxRounds)
		}
		r.beginRound()
		liveV, err := r.create("hm_m", mPlan, 0)
		if err != nil {
			return nil, err
		}
		if _, err := r.create("hm_map", mapPlan, 0); err != nil {
			return nil, err
		}
		// Reduce phase: deduplicate into the next cluster state.
		n2, err := r.create("hm_c2", reducePlan, 0)
		if err != nil {
			return nil, err
		}
		if err := r.drop("hm_map", "hm_m"); err != nil {
			return nil, err
		}
		// Converged when the cluster table is unchanged (a fixpoint of the
		// update). Multiset equality: equal cardinalities and the distinct
		// union no larger than either side.
		n1, err := countRows(r.ctx, c, cCount)
		if err != nil {
			return nil, err
		}
		same := false
		if n1 == n2 {
			nu, err := countRows(r.ctx, c, unionCount)
			if err != nil {
				return nil, err
			}
			same = nu == n1
		}
		if err := r.drop("hm_c"); err != nil {
			return nil, err
		}
		if err := r.rename("hm_c2", "hm_c"); err != nil {
			return nil, err
		}
		// The live state for Hash-to-Min is the cluster table — its
		// quadratic growth (not shrinkage) is what the round log exposes.
		r.endRound(liveV, n2)
		if same {
			break
		}
	}

	// At the fixpoint every vertex's cluster contains its component
	// minimum, so the label is min C(v).
	if _, err := r.create("hm_result",
		engine.GroupBy(r.scan("hm_c"), []int{0},
			engine.Agg{Op: engine.AggMin, Arg: engine.Col(1), Name: "r"}), 0); err != nil {
		return nil, err
	}
	labels, err := r.labelsOf("hm_result")
	if err != nil {
		return nil, err
	}
	if err := r.drop("hm_result", "hm_c"); err != nil {
		return nil, err
	}
	return &Result{Labels: labels, Rounds: rounds, RoundLog: r.roundLog}, nil
}
