package ccalg_test

import (
	"errors"
	"fmt"
	"testing"

	"dbcc/internal/ccalg"
	"dbcc/internal/ccalg/conformance"
	"dbcc/internal/datagen"
	"dbcc/internal/engine"
	"dbcc/internal/graph"
)

// The generic driver-contract tests (oracle equivalence over the corpus,
// determinism, cancellation, faults, budgets, round-stats invariants,
// cleanup, validation) live in the conformance package, which instantiates
// one shared suite for every driver. This file keeps the tests that are
// specific to individual algorithms: RC's randomisation methods, variants
// and complexity bounds, BFS's diameter behaviour, and Hash-to-Min's space
// blowup.

// TestRCMethodsAndVariants exercises every randomisation method × variant
// combination of Randomised Contraction.
func TestRCMethodsAndVariants(t *testing.T) {
	graphs := conformance.FamilyGraphs()
	for _, method := range []ccalg.Method{ccalg.FiniteFields, ccalg.GFPrime, ccalg.Encryption, ccalg.RandomReals} {
		for _, variant := range []ccalg.Variant{ccalg.Fast, ccalg.Safe} {
			for _, name := range []string{"pathunion", "rmat", "loops-only", "mixed"} {
				t.Run(fmt.Sprintf("%s/%s/%s", method, variant, name), func(t *testing.T) {
					g := graphs[name]
					res, _ := conformance.RunOn(t, ccalg.RandomisedContraction, g, ccalg.Options{
						Seed: 11, RC: ccalg.RCOptions{Method: method, Variant: variant}})
					conformance.CheckCorrect(t, g, res)
				})
			}
		}
	}
}

// TestRCSeeds runs RC across many seeds on one graph: the paper's central
// claim is that RC is always correct regardless of the random draws.
func TestRCSeeds(t *testing.T) {
	g := datagen.ErdosRenyi(80, 100, 21)
	for seed := uint64(0); seed < 12; seed++ {
		res, _ := conformance.RunOn(t, ccalg.RandomisedContraction, g, ccalg.Options{Seed: seed})
		conformance.CheckCorrect(t, g, res)
	}
}

// TestRCDeterministicForSeed checks reproducibility: same seed, same
// labelling, same round count.
func TestRCDeterministicForSeed(t *testing.T) {
	g := datagen.RMAT(8, 200, 0.57, 0.19, 0.19, 0.05, 1)
	a, _ := conformance.RunOn(t, ccalg.RandomisedContraction, g, ccalg.Options{Seed: 5})
	b, _ := conformance.RunOn(t, ccalg.RandomisedContraction, g, ccalg.Options{Seed: 5})
	if a.Rounds != b.Rounds {
		t.Fatalf("rounds differ: %d vs %d", a.Rounds, b.Rounds)
	}
	for v, r := range a.Labels {
		if b.Labels[v] != r {
			t.Fatalf("labels differ at vertex %d", v)
		}
	}
}

// TestRCLogarithmicRounds checks the round count stays logarithmic on the
// adversarial sequentially numbered path, where deterministic contraction
// degrades to n−1 rounds (Fig. 2).
func TestRCLogarithmicRounds(t *testing.T) {
	g := datagen.Path(512)
	res, _ := conformance.RunOn(t, ccalg.RandomisedContraction, g, ccalg.Options{Seed: 3})
	conformance.CheckCorrect(t, g, res)
	// log2(512) = 9; with E[shrink] ≤ 3/4 the expected round count is
	// ≤ log_{4/3}(512) ≈ 22. Allow generous slack for variance.
	if res.Rounds > 40 {
		t.Fatalf("RC took %d rounds on a 512-path, expected O(log n)", res.Rounds)
	}
}

// TestBFSRoundsOnPath verifies the Sec. IV worst case: BFS takes ~n rounds
// on a sequentially numbered path.
func TestBFSRoundsOnPath(t *testing.T) {
	g := datagen.Path(40)
	res, _ := conformance.RunOn(t, ccalg.BFS, g, ccalg.Options{})
	conformance.CheckCorrect(t, g, res)
	if res.Rounds < 20 {
		t.Fatalf("BFS took %d rounds on a 40-path; the worst case should be ~n", res.Rounds)
	}
}

// TestFrontierRoundsOnPath pins what the frontier drivers were built for:
// on the same sequentially numbered path that costs BFS ~n rounds and
// deterministic contraction n−1, Local Contraction and Log-Diameter
// converge in a handful of outer rounds (the per-round pointer doubling
// collapses whole chains).
func TestFrontierRoundsOnPath(t *testing.T) {
	g := datagen.Path(4096)
	for _, name := range []string{"lc", "ld"} {
		info, _ := ccalg.ByName(name)
		res, _ := conformance.RunOn(t, info.Run, g, ccalg.Options{})
		conformance.CheckCorrect(t, g, res)
		if res.Rounds > 24 {
			t.Fatalf("%s took %d rounds on a 4096-path, expected far below the %d of contraction",
				name, res.Rounds, g.NumVertices()-1)
		}
	}
}

// TestLogDiameterExpansionBounded pins the budgeted-exponentiation
// contract: the live edge set Log-Diameter reports never exceeds
// the expansion cap times the symmetrised input's edge count.
func TestLogDiameterExpansionBounded(t *testing.T) {
	g := datagen.ErdosRenyi(300, 500, 17)
	res, _ := conformance.RunOn(t, ccalg.LogDiameter, g, ccalg.Options{})
	conformance.CheckCorrect(t, g, res)
	input := int64(0)
	seen := map[[2]int64]bool{}
	for _, e := range g.Edges {
		if e.V == e.W {
			continue
		}
		for _, d := range [][2]int64{{e.V, e.W}, {e.W, e.V}} {
			if !seen[d] {
				seen[d] = true
				input++
			}
		}
	}
	for _, rs := range res.RoundLog {
		if rs.LiveEdges > 4*input {
			t.Fatalf("round %d reports %d live edges, over 4× the input's %d: the expansion cap leaked",
				rs.Round, rs.LiveEdges, input)
		}
	}
}

// TestHashToMinSpaceBlowup reproduces the paper's observation that
// Hash-to-Min exhausts storage on path graphs: with a budget proportional
// to the input it must fail on a long path but succeed on a compact graph.
func TestHashToMinSpaceBlowup(t *testing.T) {
	path := datagen.Path(3000)
	c := engine.NewCluster(engine.Options{Segments: 4})
	if err := graph.Load(c, "input", path); err != nil {
		t.Fatal(err)
	}
	inputBytes := int64(path.NumEdges()) * 2 * engine.DatumSize
	_, err := ccalg.HashToMin(c, "input", ccalg.Options{MaxLiveBytes: 24 * inputBytes})
	if !errors.Is(err, ccalg.ErrSpaceLimit) {
		t.Fatalf("Hash-to-Min on a path: err = %v, want ErrSpaceLimit", err)
	}

	star := datagen.Star(3000)
	c2 := engine.NewCluster(engine.Options{Segments: 4})
	if err := graph.Load(c2, "input", star); err != nil {
		t.Fatal(err)
	}
	starBytes := int64(star.NumEdges()) * 2 * engine.DatumSize
	res, err := ccalg.HashToMin(c2, "input", ccalg.Options{MaxLiveBytes: 24 * starBytes})
	if err != nil {
		t.Fatalf("Hash-to-Min on a star failed: %v", err)
	}
	conformance.CheckCorrect(t, star, res)
}

// TestRCSafeSpaceBounded: the Fig. 3 variant's live space must stay within
// a small constant of the input, deterministically.
func TestRCSafeSpaceBounded(t *testing.T) {
	g := datagen.ErdosRenyi(2000, 6000, 2)
	c := engine.NewCluster(engine.Options{Segments: 4})
	if err := graph.Load(c, "input", g); err != nil {
		t.Fatal(err)
	}
	inputBytes := c.Stats().LiveBytes
	res, err := ccalg.RandomisedContraction(c, "input", ccalg.Options{
		Seed: 1, RC: ccalg.RCOptions{Variant: ccalg.Safe},
		// Sec. II: temporary storage ≤ 4× input + O(|V|); the budget below
		// allows the 2× symmetrised table, its transient copy, and the two
		// O(|V|) label tables.
		MaxLiveBytes: 6*inputBytes + 4*int64(g.NumVertices())*2*engine.DatumSize,
	})
	if err != nil {
		t.Fatalf("Safe variant exceeded the deterministic space bound: %v", err)
	}
	conformance.CheckCorrect(t, g, res)
}

// TestNoRerandomiseStillCorrect: ablation A3 — reusing one key is slower
// (it recreates Fig. 2's worst case adversarially) but never incorrect.
func TestNoRerandomiseStillCorrect(t *testing.T) {
	g := datagen.Path(200)
	res, _ := conformance.RunOn(t, ccalg.RandomisedContraction, g, ccalg.Options{
		Seed: 9, RC: ccalg.RCOptions{NoRerandomise: true}})
	conformance.CheckCorrect(t, g, res)
}

// TestDeterministicAcrossRunsAndSegments pins the reproducibility contract
// for every algorithm of the paper's evaluation plus the frontier drivers
// and the planner: with a fixed seed the labelling (not merely the
// partition it induces) is identical across repeated runs AND across
// segment counts. Segment count is physical data placement; it must never
// leak into results.
func TestDeterministicAcrossRunsAndSegments(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"rmat":      datagen.RMAT(7, 160, 0.57, 0.19, 0.19, 0.05, 11),
		"pathunion": datagen.PathUnion(3, 50),
	}
	for _, algName := range []string{"rc", "hm", "tp", "cr", "lc", "ld", "auto"} {
		info, ok := ccalg.ByName(algName)
		if !ok {
			t.Fatalf("unknown algorithm %q", algName)
		}
		for gName, g := range graphs {
			var ref graph.Labelling
			var refRounds int
			for _, segs := range []int{1, 4, 16} {
				for rep := 0; rep < 2; rep++ {
					c := engine.NewCluster(engine.Options{Segments: segs})
					ccalg.RegisterUDFs(c)
					if err := graph.Load(c, "input", g); err != nil {
						t.Fatal(err)
					}
					res, err := info.Run(c, "input", ccalg.Options{Seed: 42})
					if err != nil {
						t.Fatalf("%s/%s segs=%d rep=%d: %v", algName, gName, segs, rep, err)
					}
					if ref == nil {
						conformance.CheckCorrect(t, g, res)
						ref, refRounds = res.Labels, res.Rounds
						continue
					}
					if res.Rounds != refRounds {
						t.Errorf("%s/%s segs=%d rep=%d: %d rounds, reference run took %d",
							algName, gName, segs, rep, res.Rounds, refRounds)
					}
					if len(res.Labels) != len(ref) {
						t.Fatalf("%s/%s segs=%d rep=%d: %d labelled vertices, reference has %d",
							algName, gName, segs, rep, len(res.Labels), len(ref))
					}
					for v, lab := range res.Labels {
						if want, ok := ref[v]; !ok || lab != want {
							t.Fatalf("%s/%s segs=%d rep=%d: vertex %d labelled %d, reference says %d",
								algName, gName, segs, rep, v, lab, want)
						}
					}
				}
			}
		}
	}
}
