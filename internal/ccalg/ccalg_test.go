package ccalg

import (
	"errors"
	"fmt"
	"testing"

	"dbcc/internal/datagen"
	"dbcc/internal/engine"
	"dbcc/internal/graph"
	"dbcc/internal/unionfind"
	"dbcc/internal/verify"
	"dbcc/internal/xrand"
)

// runOn loads g into a fresh cluster and runs algorithm fn on it.
func runOn(t *testing.T, fn Func, g *graph.Graph, opts Options) (*Result, *engine.Cluster) {
	t.Helper()
	c := engine.NewCluster(engine.Options{Segments: 4})
	if err := graph.Load(c, "input", g); err != nil {
		t.Fatal(err)
	}
	res, err := fn(c, "input", opts)
	if err != nil {
		t.Fatalf("algorithm failed: %v", err)
	}
	return res, c
}

// checkCorrect asserts the result labelling matches the Union/Find oracle.
func checkCorrect(t *testing.T, g *graph.Graph, res *Result) {
	t.Helper()
	if err := verify.Labelling(g, res.Labels); err != nil {
		t.Fatalf("incorrect labelling: %v", err)
	}
}

// testGraphs is the shared corpus of structurally diverse small graphs.
func testGraphs() map[string]*graph.Graph {
	loops := graph.New(0)
	loops.AddEdge(1, 1)
	loops.AddEdge(2, 2)
	loops.AddEdge(5, 5)

	mixed := datagen.PathUnion(4, 60)
	mixed.AddEdge(1000, 1000) // isolated vertex as loop edge

	single := graph.New(0)
	single.AddEdge(42, 17)

	return map[string]*graph.Graph{
		"path":       datagen.Path(60),
		"cycle":      datagen.Cycle(37),
		"complete":   datagen.Complete(12),
		"star":       datagen.Star(25),
		"pathunion":  datagen.PathUnion(3, 40),
		"rmat":       datagen.RMAT(8, 300, 0.57, 0.19, 0.19, 0.05, 3),
		"image2d":    datagen.Image2D(15, 15, 10, 1.1, 0.2, 5),
		"video3d":    datagen.Video3D(6, 6, 4, 5, 1.1, 0.05, 5),
		"bitcoin":    datagen.Bitcoin(100, 5),
		"friendster": datagen.Friendster(80, 3, 5),
		"erdos":      datagen.ErdosRenyi(50, 80, 9),
		"loops-only": loops,
		"mixed":      mixed,
		"one-edge":   single,
	}
}

// TestAllAlgorithmsAllGraphs is the central integration test: every
// algorithm must produce a labelling equivalent to the Union/Find oracle on
// every graph family.
func TestAllAlgorithmsAllGraphs(t *testing.T) {
	for name, g := range testGraphs() {
		for _, info := range Algorithms() {
			t.Run(info.Name+"/"+name, func(t *testing.T) {
				res, _ := runOn(t, info.Run, g, Options{Seed: 7})
				checkCorrect(t, g, res)
			})
		}
	}
}

// TestRCMethodsAndVariants exercises every randomisation method × variant
// combination of Randomised Contraction.
func TestRCMethodsAndVariants(t *testing.T) {
	graphs := testGraphs()
	for _, method := range []Method{FiniteFields, GFPrime, Encryption, RandomReals} {
		for _, variant := range []Variant{Fast, Safe} {
			for _, name := range []string{"pathunion", "rmat", "loops-only", "mixed"} {
				t.Run(fmt.Sprintf("%s/%s/%s", method, variant, name), func(t *testing.T) {
					g := graphs[name]
					res, _ := runOn(t, RandomisedContraction, g, Options{
						Seed: 11, RC: RCOptions{Method: method, Variant: variant}})
					checkCorrect(t, g, res)
				})
			}
		}
	}
}

// TestRCSeeds runs RC across many seeds on one graph: the paper's central
// claim is that RC is always correct regardless of the random draws.
func TestRCSeeds(t *testing.T) {
	g := datagen.ErdosRenyi(80, 100, 21)
	for seed := uint64(0); seed < 12; seed++ {
		res, _ := runOn(t, RandomisedContraction, g, Options{Seed: seed})
		checkCorrect(t, g, res)
	}
}

// TestRCDeterministicForSeed checks reproducibility: same seed, same
// labelling, same round count.
func TestRCDeterministicForSeed(t *testing.T) {
	g := datagen.RMAT(8, 200, 0.57, 0.19, 0.19, 0.05, 1)
	a, _ := runOn(t, RandomisedContraction, g, Options{Seed: 5})
	b, _ := runOn(t, RandomisedContraction, g, Options{Seed: 5})
	if a.Rounds != b.Rounds {
		t.Fatalf("rounds differ: %d vs %d", a.Rounds, b.Rounds)
	}
	for v, r := range a.Labels {
		if b.Labels[v] != r {
			t.Fatalf("labels differ at vertex %d", v)
		}
	}
}

// TestRCLogarithmicRounds checks the round count stays logarithmic on the
// adversarial sequentially numbered path, where deterministic contraction
// degrades to n−1 rounds (Fig. 2).
func TestRCLogarithmicRounds(t *testing.T) {
	g := datagen.Path(512)
	res, _ := runOn(t, RandomisedContraction, g, Options{Seed: 3})
	checkCorrect(t, g, res)
	// log2(512) = 9; with E[shrink] ≤ 3/4 the expected round count is
	// ≤ log_{4/3}(512) ≈ 22. Allow generous slack for variance.
	if res.Rounds > 40 {
		t.Fatalf("RC took %d rounds on a 512-path, expected O(log n)", res.Rounds)
	}
}

// TestBFSRoundsEqualDiameterish verifies the Sec. IV worst case: BFS takes
// ~n rounds on a sequentially numbered path.
func TestBFSRoundsOnPath(t *testing.T) {
	g := datagen.Path(40)
	res, _ := runOn(t, BFS, g, Options{})
	checkCorrect(t, g, res)
	if res.Rounds < 20 {
		t.Fatalf("BFS took %d rounds on a 40-path; the worst case should be ~n", res.Rounds)
	}
}

// TestHashToMinSpaceBlowup reproduces the paper's observation that
// Hash-to-Min exhausts storage on path graphs: with a budget proportional
// to the input it must fail on a long path but succeed on a compact graph.
func TestHashToMinSpaceBlowup(t *testing.T) {
	path := datagen.Path(3000)
	c := engine.NewCluster(engine.Options{Segments: 4})
	if err := graph.Load(c, "input", path); err != nil {
		t.Fatal(err)
	}
	inputBytes := int64(path.NumEdges()) * 2 * engine.DatumSize
	_, err := HashToMin(c, "input", Options{MaxLiveBytes: 24 * inputBytes})
	if !errors.Is(err, ErrSpaceLimit) {
		t.Fatalf("Hash-to-Min on a path: err = %v, want ErrSpaceLimit", err)
	}

	star := datagen.Star(3000)
	c2 := engine.NewCluster(engine.Options{Segments: 4})
	if err := graph.Load(c2, "input", star); err != nil {
		t.Fatal(err)
	}
	starBytes := int64(star.NumEdges()) * 2 * engine.DatumSize
	res, err := HashToMin(c2, "input", Options{MaxLiveBytes: 24 * starBytes})
	if err != nil {
		t.Fatalf("Hash-to-Min on a star failed: %v", err)
	}
	checkCorrect(t, star, res)
}

// TestRCSafeSpaceBounded: the Fig. 3 variant's live space must stay within
// a small constant of the input, deterministically.
func TestRCSafeSpaceBounded(t *testing.T) {
	g := datagen.ErdosRenyi(2000, 6000, 2)
	c := engine.NewCluster(engine.Options{Segments: 4})
	if err := graph.Load(c, "input", g); err != nil {
		t.Fatal(err)
	}
	inputBytes := c.Stats().LiveBytes
	res, err := RandomisedContraction(c, "input", Options{
		Seed: 1, RC: RCOptions{Variant: Safe},
		// Sec. II: temporary storage ≤ 4× input + O(|V|); the budget below
		// allows the 2× symmetrised table, its transient copy, and the two
		// O(|V|) label tables.
		MaxLiveBytes: 6*inputBytes + 4*int64(g.NumVertices())*2*engine.DatumSize,
	})
	if err != nil {
		t.Fatalf("Safe variant exceeded the deterministic space bound: %v", err)
	}
	checkCorrect(t, g, res)
}

// TestNoRerandomiseStillCorrect: ablation A3 — reusing one key is slower
// (it recreates Fig. 2's worst case adversarially) but never incorrect.
func TestNoRerandomiseStillCorrect(t *testing.T) {
	g := datagen.Path(200)
	res, _ := runOn(t, RandomisedContraction, g, Options{
		Seed: 9, RC: RCOptions{NoRerandomise: true}})
	checkCorrect(t, g, res)
}

// TestInputValidation checks the input contract of every algorithm.
func TestInputValidation(t *testing.T) {
	c := engine.NewCluster(engine.Options{Segments: 2})
	if _, err := c.CreateTable("bad", engine.Schema{"a", "b", "c"}, 0); err != nil {
		t.Fatal(err)
	}
	for _, info := range Algorithms() {
		if _, err := info.Run(c, "missing", Options{}); err == nil {
			t.Errorf("%s accepted a missing input table", info.Name)
		}
		if _, err := info.Run(c, "bad", Options{}); err == nil {
			t.Errorf("%s accepted a three-column input table", info.Name)
		}
	}
}

// TestEmptyInput: an empty edge table must yield an empty labelling.
func TestEmptyInput(t *testing.T) {
	for _, info := range Algorithms() {
		c := engine.NewCluster(engine.Options{Segments: 2})
		if err := graph.Load(c, "input", graph.New(0)); err != nil {
			t.Fatal(err)
		}
		res, err := info.Run(c, "input", Options{Seed: 1})
		if err != nil {
			t.Fatalf("%s failed on empty input: %v", info.Name, err)
		}
		if len(res.Labels) != 0 {
			t.Fatalf("%s labelled %d vertices of an empty graph", info.Name, len(res.Labels))
		}
	}
}

// TestTempTablesCleanedUp ensures algorithms leave only the input behind,
// so sequential runs on one cluster do not interfere.
func TestTempTablesCleanedUp(t *testing.T) {
	g := datagen.ErdosRenyi(40, 60, 4)
	for _, info := range Algorithms() {
		c := engine.NewCluster(engine.Options{Segments: 3})
		if err := graph.Load(c, "input", g); err != nil {
			t.Fatal(err)
		}
		if _, err := info.Run(c, "input", Options{Seed: 2}); err != nil {
			t.Fatal(err)
		}
		if names := c.TableNames(); len(names) != 1 || names[0] != "input" {
			t.Fatalf("%s left tables behind: %v", info.Name, names)
		}
	}
}

// TestCleanupAfterSpaceLimit ensures the space-limit error path also
// removes temporaries.
func TestCleanupAfterSpaceLimit(t *testing.T) {
	g := datagen.Path(2000)
	c := engine.NewCluster(engine.Options{Segments: 3})
	if err := graph.Load(c, "input", g); err != nil {
		t.Fatal(err)
	}
	_, err := HashToMin(c, "input", Options{MaxLiveBytes: 1})
	if !errors.Is(err, ErrSpaceLimit) {
		t.Fatalf("err = %v", err)
	}
	if names := c.TableNames(); len(names) != 1 || names[0] != "input" {
		t.Fatalf("tables left behind after failure: %v", names)
	}
}

// TestContractionShrinkage measures the per-round shrinkage of RC on random
// graphs and checks the Theorem 1 bound E[γ] ≤ 3/4 statistically (with
// slack for sampling noise).
func TestContractionShrinkage(t *testing.T) {
	rng := xrand.New(99)
	var totalBefore, totalAfter float64
	for trial := 0; trial < 20; trial++ {
		g := datagen.ErdosRenyi(300, 450, rng.Uint64())
		// One contraction round: choose representatives via a fresh affine
		// map, count distinct representatives among non-isolated vertices.
		adj := make(map[int64]map[int64]struct{})
		addAdj := func(a, b int64) {
			if adj[a] == nil {
				adj[a] = make(map[int64]struct{})
			}
			adj[a][b] = struct{}{}
		}
		for _, e := range g.Edges {
			if e.V != e.W {
				addAdj(e.V, e.W)
				addAdj(e.W, e.V)
			}
		}
		a, b := rng.NonZeroUint64(), rng.Uint64()
		reps := make(map[int64]struct{})
		n := 0
		for v, nbrs := range adj {
			n++
			best := int64(gfAx(a, uint64(v), b))
			for w := range nbrs {
				if h := int64(gfAx(a, uint64(w), b)); h < best {
					best = h
				}
			}
			reps[best] = struct{}{}
		}
		totalBefore += float64(n)
		totalAfter += float64(len(reps))
	}
	gamma := totalAfter / totalBefore
	if gamma > 0.78 {
		t.Fatalf("measured contraction factor %.3f exceeds the 3/4 bound (plus slack)", gamma)
	}
}

// gfAx mirrors the axplusb UDF for the shrinkage test.
func gfAx(a, x, b uint64) uint64 {
	var r uint64
	for x != 0 {
		if x&1 != 0 {
			r ^= a
		}
		x >>= 1
		if a&(1<<63) != 0 {
			a = a<<1 ^ 0x1b
		} else {
			a <<= 1
		}
	}
	return r ^ b
}

// TestComponentCountsMatchOracle cross-checks component counts on larger
// graphs for every algorithm.
func TestComponentCountsMatchOracle(t *testing.T) {
	g := datagen.Image2D(30, 30, 36, 1.1, 0.2, 13)
	want := unionfind.CountComponents(g)
	for _, info := range Algorithms() {
		res, _ := runOn(t, info.Run, g, Options{Seed: 3})
		if got := res.Labels.NumComponents(); got != want {
			t.Errorf("%s found %d components, oracle says %d", info.Name, got, want)
		}
	}
}

// TestByName checks the registry lookups.
func TestByName(t *testing.T) {
	for _, name := range []string{"rc", "hm", "tp", "cr", "bfs"} {
		info, ok := ByName(name)
		if !ok || info.Run == nil {
			t.Errorf("ByName(%q) failed", name)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName accepted an unknown algorithm")
	}
}

// TestDeterministicAcrossRunsAndSegments pins the reproducibility contract
// for every algorithm of the paper's evaluation: with a fixed seed the
// labelling (not merely the partition it induces) is identical across
// repeated runs AND across segment counts. Segment count is physical data
// placement; it must never leak into results.
func TestDeterministicAcrossRunsAndSegments(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"rmat":      datagen.RMAT(7, 160, 0.57, 0.19, 0.19, 0.05, 11),
		"pathunion": datagen.PathUnion(3, 50),
	}
	for _, algName := range []string{"rc", "hm", "tp", "cr"} {
		info, ok := ByName(algName)
		if !ok {
			t.Fatalf("unknown algorithm %q", algName)
		}
		for gName, g := range graphs {
			var ref graph.Labelling
			var refRounds int
			for _, segs := range []int{1, 4, 16} {
				for rep := 0; rep < 2; rep++ {
					c := engine.NewCluster(engine.Options{Segments: segs})
					RegisterUDFs(c)
					if err := graph.Load(c, "input", g); err != nil {
						t.Fatal(err)
					}
					res, err := info.Run(c, "input", Options{Seed: 42})
					if err != nil {
						t.Fatalf("%s/%s segs=%d rep=%d: %v", algName, gName, segs, rep, err)
					}
					if ref == nil {
						checkCorrect(t, g, res)
						ref, refRounds = res.Labels, res.Rounds
						continue
					}
					if res.Rounds != refRounds {
						t.Errorf("%s/%s segs=%d rep=%d: %d rounds, reference run took %d",
							algName, gName, segs, rep, res.Rounds, refRounds)
					}
					if len(res.Labels) != len(ref) {
						t.Fatalf("%s/%s segs=%d rep=%d: %d labelled vertices, reference has %d",
							algName, gName, segs, rep, len(res.Labels), len(ref))
					}
					for v, lab := range res.Labels {
						if want, ok := ref[v]; !ok || lab != want {
							t.Fatalf("%s/%s segs=%d rep=%d: vertex %d labelled %d, reference says %d",
								algName, gName, segs, rep, v, lab, want)
						}
					}
				}
			}
		}
	}
}
