// Package ccalg implements the five distributed connected-components
// algorithms of the paper's evaluation, all executing on the MPP engine:
//
//   - RandomisedContraction — the paper's contribution (Sec. V), driven by
//     the literal SQL of Appendix A, in the Fig. 3 (deterministic space)
//     and Fig. 4 (fast) variants and all four randomisation methods;
//   - BFS — the naive min-propagation strategy of Sec. IV, which is how
//     Apache MADlib computes connected components;
//   - HashToMin — Rastogi et al. (ICDE 2013), O(log|V|) rounds but
//     O(|V|²) worst-case space;
//   - TwoPhase — Kiveris et al. (SoCC 2014), alternating large-star /
//     small-star, Θ(log²|V|) rounds with linear space;
//   - Cracker — Lulli et al. (TPDS 2017), vertex pruning with a
//     propagation tree.
//
// Every algorithm takes an input table of (v1, v2) edge rows (loop edges
// representing isolated vertices) and produces a labelling. A configurable
// live-space budget reproduces the paper's "did not finish" outcomes: runs
// whose temporary tables exceed the budget abort with ErrSpaceLimit, which
// is how Hash-to-Min and Cracker fail on the path datasets in Table III.
package ccalg

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"dbcc/internal/engine"
	"dbcc/internal/graph"
)

// ErrSpaceLimit is returned when an algorithm's live table footprint
// exceeds Options.MaxLiveBytes — the reproduction's analogue of the paper's
// algorithms exhausting cluster storage ("did not finish").
var ErrSpaceLimit = errors.New("ccalg: live space budget exceeded; algorithm did not finish")

// maxRounds bounds iteration counts defensively; every algorithm here
// provably terminates long before this on any input that fits in memory.
const maxRounds = 100000

// RoundError is the graceful-degradation wrapper for a round that failed
// mid-algorithm (cancellation, timeout, retry exhaustion, space budget):
// it carries the identity of the failed round and the statistics of every
// round completed before it, so callers can report partial progress
// instead of losing the whole run. errors.Is/As see through it to the
// underlying cause via Unwrap.
type RoundError struct {
	// Algorithm is the short registry name of the failed run ("rc", ...).
	Algorithm string
	// Round is the 1-based round that failed (one past the last completed
	// round).
	Round int
	// RoundLog holds the statistics of every round completed before the
	// failure, in order — the partial progress of the run.
	RoundLog []RoundStats
	// Err is the underlying failure.
	Err error
}

func (e *RoundError) Error() string {
	return fmt.Sprintf("ccalg: %s failed in round %d (%d rounds completed): %v",
		e.Algorithm, e.Round, len(e.RoundLog), e.Err)
}

// Unwrap exposes the underlying cause to errors.Is / errors.As.
func (e *RoundError) Unwrap() error { return e.Err }

// Options configures an algorithm run.
type Options struct {
	// Seed drives all randomness; runs are reproducible for a fixed seed.
	Seed uint64
	// Context, when non-nil, bounds the run: cancelling it (or its
	// deadline expiring) aborts the algorithm between queries and between
	// segment tasks, returning a RoundError wrapping the cancellation.
	Context context.Context
	// MaxLiveBytes aborts the run with ErrSpaceLimit when the cluster's
	// live table footprint exceeds it; 0 means unlimited.
	MaxLiveBytes int64
	// OnRound, when non-nil, streams every completed round's statistics as
	// it finishes — the live form of Result.RoundLog.
	OnRound func(RoundStats)
	// NoPrepare disables the prepared-statement round loop of the SQL-driven
	// algorithms: every statement is rendered to literal SQL and re-parsed
	// and re-planned each round, the paper-style driver. Ablation knob for
	// measuring what preparation saves.
	NoPrepare bool
	// RC holds the Randomised Contraction specific knobs; ignored by the
	// other algorithms.
	RC RCOptions
}

// RoundStats is the per-round measurement stream of an algorithm run: the
// observable the paper's evaluation is built on (rows and bytes written
// per round, Tables IV–V; the exponential shrinkage of the live graph,
// Figs. 6–9). Queries, RowsWritten and BytesWritten are deltas of the
// cluster counters over the round, so when several runs share one cluster
// concurrently they are best-effort, like per-run Stats.
type RoundStats struct {
	// Round numbers rounds from 1 in execution order.
	Round int
	// LiveVertices is the number of vertices still participating after the
	// round (algorithm-specific: contraction survivors for RC, labelled
	// vertices during propagation phases).
	LiveVertices int64
	// LiveEdges is the size of the live graph state after the round (edge
	// rows for RC/Two-Phase/Cracker/BFS, cluster-state rows for
	// Hash-to-Min, whose quadratic growth is its failure mode).
	LiveEdges int64
	// Queries is the number of SQL statements the round issued.
	Queries int64
	// RowsWritten and BytesWritten are the write volume of the round.
	RowsWritten  int64
	BytesWritten int64
	// Parses, PlanHits and PlanMisses are the round's deltas of the SQL
	// layer's parse and plan-cache counters: with prepared round loops,
	// Parses stays zero after round one and PlanHits tracks Queries; the
	// NoPrepare ablation shows a parse per statement instead.
	Parses     int64
	PlanHits   int64
	PlanMisses int64
}

// Result is the outcome of an algorithm run.
type Result struct {
	// Labels assigns every vertex of the input graph a component label.
	Labels graph.Labelling
	// Rounds is the number of contraction / propagation rounds executed
	// (algorithm-specific granularity; for RC it is the number of
	// contraction steps, the paper's "number of SQL queries" up to the
	// constant per-round query count).
	Rounds int
	// RoundLog is the per-round measurement stream, one entry per executed
	// round in order.
	RoundLog []RoundStats
}

// Func runs one algorithm against the named input table on the cluster.
type Func func(c *engine.Cluster, input string, opts Options) (*Result, error)

// Info describes an algorithm for registries, Table I and CLI listings.
type Info struct {
	Name      string // short key, e.g. "rc"
	FullName  string // display name as in the paper's tables
	StepsBig0 string // round complexity from Table I
	SpaceBig0 string // space complexity from Table I
	Run       Func
}

// Algorithms returns the registry of the five algorithms in the paper's
// Table I/III order, with their proven complexities (Table I), followed by
// the two frontier drivers (local contraction and log-diameter).
func Algorithms() []Info {
	return []Info{
		{Name: "rc", FullName: "Randomised Contraction",
			StepsBig0: "exp. O(log |V|)", SpaceBig0: "exp. O(|E|)", Run: RandomisedContraction},
		{Name: "hm", FullName: "Hash-to-Min",
			StepsBig0: "O(log |V|)", SpaceBig0: "O(|V|^2)", Run: HashToMin},
		{Name: "tp", FullName: "Two-Phase",
			StepsBig0: "O(log^2 |V|)", SpaceBig0: "O(|E|)", Run: TwoPhase},
		{Name: "cr", FullName: "Cracker",
			StepsBig0: "O(log |V|)", SpaceBig0: "O(|V|*|E|/log |V|)", Run: Cracker},
		{Name: "bfs", FullName: "Breadth First Search (MADlib)",
			StepsBig0: "O(diameter)", SpaceBig0: "O(|E|)", Run: BFS},
		{Name: "lc", FullName: "Local Contraction",
			StepsBig0: "O(log |V|)", SpaceBig0: "O(|E|)", Run: LocalContract},
		{Name: "ld", FullName: "Log-Diameter",
			StepsBig0: "O(log D)", SpaceBig0: "O(|E|^(1+eps))", Run: LogDiameter},
	}
}

// AutoInfo describes the adaptive planner. It is not part of Algorithms()
// — Auto is a meta-driver that picks one of the registered algorithms per
// graph, so registries that enumerate the underlying drivers (Table I,
// the property matrix) would double-count it.
func AutoInfo() Info {
	return Info{Name: "auto", FullName: "Adaptive planner",
		StepsBig0: "per plan", SpaceBig0: "per plan", Run: Auto}
}

// ByName returns the registered algorithm with the given short name, or
// the adaptive planner for "auto".
func ByName(name string) (Info, bool) {
	for _, a := range Algorithms() {
		if a.Name == name {
			return a, true
		}
	}
	if a := AutoInfo(); a.Name == name {
		return a, true
	}
	return Info{}, false
}

// runSeq numbers algorithm runs so each gets a private temp-table
// namespace; concurrent runs on one cluster never collide on the names of
// their intermediate tables.
var runSeq atomic.Uint64

// run wraps the per-algorithm bookkeeping shared by all implementations:
// the run-private temp-table namespace, the space budget check and
// temp-table cleanup on failure. The temps set holds catalog (physical)
// names.
type run struct {
	c        *engine.Cluster
	ctx      context.Context
	maxBytes int64
	ns       string
	temps    map[string]struct{}

	onRound  func(RoundStats)
	roundLog []RoundStats
	// Counter snapshot at the start of the current round, for the deltas.
	q0, w0, b0 int64
	// Plan-counter snapshot (parses, plan-cache hits and misses).
	p0, h0, m0 int64
}

func newRun(c *engine.Cluster, opts Options) *run {
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	return &run{
		c:        c,
		ctx:      ctx,
		maxBytes: opts.MaxLiveBytes,
		ns:       fmt.Sprintf("run%d_", runSeq.Add(1)),
		temps:    make(map[string]struct{}),
		onRound:  opts.OnRound,
	}
}

// roundError wraps a mid-algorithm failure in a RoundError carrying the
// run's partial round log. Errors that already are RoundErrors pass
// through unchanged (nested drivers).
func (r *run) roundError(alg string, err error) error {
	if err == nil {
		return nil
	}
	var re *RoundError
	if errors.As(err, &re) {
		return err
	}
	return &RoundError{
		Algorithm: alg,
		Round:     len(r.roundLog) + 1,
		RoundLog:  append([]RoundStats(nil), r.roundLog...),
		Err:       err,
	}
}

// beginRound snapshots the cluster counters so endRound can report the
// round's query count and write volume as deltas.
func (r *run) beginRound() {
	r.q0, r.w0, r.b0 = r.c.Counters()
	r.p0, r.h0, r.m0 = r.c.PlanCounters()
}

// endRound closes the current round: it records the round's statistics in
// the run log and streams them to the OnRound callback if set.
func (r *run) endRound(liveVertices, liveEdges int64) {
	q, w, b := r.c.Counters()
	p, h, m := r.c.PlanCounters()
	rs := RoundStats{
		Round:        len(r.roundLog) + 1,
		LiveVertices: liveVertices,
		LiveEdges:    liveEdges,
		Queries:      q - r.q0,
		RowsWritten:  w - r.w0,
		BytesWritten: b - r.b0,
		Parses:       p - r.p0,
		PlanHits:     h - r.h0,
		PlanMisses:   m - r.m0,
	}
	r.roundLog = append(r.roundLog, rs)
	if r.onRound != nil {
		r.onRound(rs)
	}
}

// t maps a logical temp-table name to its run-private catalog name. Input
// tables are referenced by their own (global) names and never pass through
// here.
func (r *run) t(name string) string { return r.ns + name }

// scan returns a plan reading a run-private temp table.
func (r *run) scan(name string) engine.Plan { return engine.Scan(r.t(name)) }

// checkSpace enforces the live-space budget. Under concurrent sessions the
// footprint is the cluster-wide total, matching the paper's shared-storage
// "did not finish" condition.
func (r *run) checkSpace() error {
	if r.maxBytes > 0 && r.c.LiveBytes() > r.maxBytes {
		return ErrSpaceLimit
	}
	return nil
}

// create materialises a plan as a run-private temp table and applies the
// space check.
func (r *run) create(name string, p engine.Plan, distKey int) (int64, error) {
	phys := r.t(name)
	n, err := r.c.CreateTableAsCtx(r.ctx, phys, p, distKey)
	if err != nil {
		return 0, err
	}
	r.temps[phys] = struct{}{}
	return n, r.checkSpace()
}

// drop removes run-private temp tables.
func (r *run) drop(names ...string) error {
	for _, n := range names {
		phys := r.t(n)
		if err := r.c.DropTable(phys); err != nil {
			return err
		}
		delete(r.temps, phys)
	}
	return nil
}

// rename renames a run-private temp table, keeping the cleanup set
// consistent.
func (r *run) rename(oldName, newName string) error {
	physOld, physNew := r.t(oldName), r.t(newName)
	if err := r.c.RenameTable(physOld, physNew); err != nil {
		return err
	}
	delete(r.temps, physOld)
	r.temps[physNew] = struct{}{}
	return nil
}

// cleanup drops any temp tables still live (used on error paths).
func (r *run) cleanup() {
	for n := range r.temps {
		_ = r.c.DropTable(n)
	}
	r.temps = map[string]struct{}{}
}

// labelsOf reads a run-private (v, rep) table into a labelling.
func (r *run) labelsOf(table string) (graph.Labelling, error) {
	rows, err := r.c.ReadAll(r.t(table))
	if err != nil {
		return nil, err
	}
	return graph.FromRows(rows)
}

// countRows runs a counting query over a plan without materialising it.
func countRows(ctx context.Context, c *engine.Cluster, p engine.Plan) (int64, error) {
	counted := engine.GroupBy(p, nil, engine.Agg{Op: engine.AggCount, Name: "n"})
	_, rows, err := c.QueryCtx(ctx, counted)
	if err != nil {
		return 0, err
	}
	if len(rows) == 0 {
		return 0, nil
	}
	return rows[0][0].Int, nil
}

// symmetric returns the standard setup plan: the input edge table unioned
// with its swap, giving each undirected edge both orientations (the first
// query of Appendix A).
func symmetric(input string) engine.Plan {
	fwd := engine.Project(engine.Scan(input),
		engine.ProjCol{Expr: engine.Col(0), Name: "v"},
		engine.ProjCol{Expr: engine.Col(1), Name: "w"})
	rev := engine.Project(engine.Scan(input),
		engine.ProjCol{Expr: engine.Col(1), Name: "v"},
		engine.ProjCol{Expr: engine.Col(0), Name: "w"})
	return engine.UnionAll(fwd, rev)
}

// validateInput checks the algorithm input contract.
func validateInput(c *engine.Cluster, input string) error {
	t, ok := c.Table(input)
	if !ok {
		return fmt.Errorf("ccalg: input table %q does not exist", input)
	}
	if len(t.Schema) != 2 {
		return fmt.Errorf("ccalg: input table %q must have exactly two columns, has %v", input, t.Schema)
	}
	return nil
}
