package ccalg

import (
	"testing"

	"dbcc/internal/datagen"
	"dbcc/internal/xrand"
)

// TestContractionShrinkage measures the per-round shrinkage of RC on random
// graphs and checks the Theorem 1 bound E[γ] ≤ 3/4 statistically (with
// slack for sampling noise).
func TestContractionShrinkage(t *testing.T) {
	rng := xrand.New(99)
	var totalBefore, totalAfter float64
	for trial := 0; trial < 20; trial++ {
		g := datagen.ErdosRenyi(300, 450, rng.Uint64())
		// One contraction round: choose representatives via a fresh affine
		// map, count distinct representatives among non-isolated vertices.
		adj := make(map[int64]map[int64]struct{})
		addAdj := func(a, b int64) {
			if adj[a] == nil {
				adj[a] = make(map[int64]struct{})
			}
			adj[a][b] = struct{}{}
		}
		for _, e := range g.Edges {
			if e.V != e.W {
				addAdj(e.V, e.W)
				addAdj(e.W, e.V)
			}
		}
		a, b := rng.NonZeroUint64(), rng.Uint64()
		reps := make(map[int64]struct{})
		n := 0
		for v, nbrs := range adj {
			n++
			best := int64(gfAx(a, uint64(v), b))
			for w := range nbrs {
				if h := int64(gfAx(a, uint64(w), b)); h < best {
					best = h
				}
			}
			reps[best] = struct{}{}
		}
		totalBefore += float64(n)
		totalAfter += float64(len(reps))
	}
	gamma := totalAfter / totalBefore
	if gamma > 0.78 {
		t.Fatalf("measured contraction factor %.3f exceeds the 3/4 bound (plus slack)", gamma)
	}
}

// gfAx mirrors the axplusb UDF for the shrinkage test (and the Appendix A
// replica).
func gfAx(a, x, b uint64) uint64 {
	var r uint64
	for x != 0 {
		if x&1 != 0 {
			r ^= a
		}
		x >>= 1
		if a&(1<<63) != 0 {
			a = a<<1 ^ 0x1b
		} else {
			a <<= 1
		}
	}
	return r ^ b
}
