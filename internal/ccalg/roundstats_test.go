package ccalg_test

import (
	"testing"

	"dbcc/internal/ccalg"
	"dbcc/internal/ccalg/conformance"
	"dbcc/internal/datagen"
)

// The generic per-driver round-log checks (numbering, OnRound mirroring,
// queries per round, the parse-free prepared-loop pin) live in the
// conformance suite's roundstats subtest; this file keeps the RC-specific
// shrinkage and reproducibility pins.

// TestRCRoundLogShrinkage checks the contraction invariant the round log
// exposes: the live edge set of Randomised Contraction never grows from
// round to round (Lemma 2's expected shrinkage is probabilistic, but
// non-growth is certain: contraction only merges vertices and removes
// loops), and the run ends with the graph contracted away entirely.
func TestRCRoundLogShrinkage(t *testing.T) {
	g := datagen.Bitcoin(300, 7)
	res, _ := conformance.RunOn(t, ccalg.RandomisedContraction, g, ccalg.Options{Seed: 11})
	conformance.CheckCorrect(t, g, res)
	if len(res.RoundLog) == 0 {
		t.Fatal("RC produced no round log")
	}
	if len(res.RoundLog) != res.Rounds {
		t.Fatalf("round log has %d entries, Rounds = %d", len(res.RoundLog), res.Rounds)
	}
	prev := res.RoundLog[0].LiveEdges
	for i, rs := range res.RoundLog {
		if rs.Round != i+1 {
			t.Fatalf("round %d numbered %d", i+1, rs.Round)
		}
		if rs.LiveEdges > prev {
			t.Fatalf("round %d: live edges grew %d -> %d", rs.Round, prev, rs.LiveEdges)
		}
		prev = rs.LiveEdges
		if rs.Queries <= 0 {
			t.Fatalf("round %d issued %d queries", rs.Round, rs.Queries)
		}
		if rs.RowsWritten <= 0 || rs.BytesWritten <= 0 {
			t.Fatalf("round %d wrote rows=%d bytes=%d", rs.Round, rs.RowsWritten, rs.BytesWritten)
		}
	}
	if last := res.RoundLog[len(res.RoundLog)-1]; last.LiveEdges != 0 {
		t.Fatalf("final round still has %d live edges", last.LiveEdges)
	}
}

// TestRCDeterministicRoundLogReproducible checks that the deterministic
// variant's round log — the CI baseline anchor — is identical across runs.
func TestRCDeterministicRoundLogReproducible(t *testing.T) {
	g := datagen.Bitcoin(200, 3)
	opts := ccalg.Options{Seed: 5, RC: ccalg.RCOptions{Deterministic: true}}
	res1, _ := conformance.RunOn(t, ccalg.RandomisedContraction, g, opts)
	res2, _ := conformance.RunOn(t, ccalg.RandomisedContraction, g, opts)
	if len(res1.RoundLog) != len(res2.RoundLog) {
		t.Fatalf("round counts differ: %d vs %d", len(res1.RoundLog), len(res2.RoundLog))
	}
	for i := range res1.RoundLog {
		if res1.RoundLog[i] != res2.RoundLog[i] {
			t.Fatalf("round %d differs: %+v vs %+v", i+1, res1.RoundLog[i], res2.RoundLog[i])
		}
	}
}
