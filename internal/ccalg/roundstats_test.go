package ccalg

import (
	"testing"

	"dbcc/internal/datagen"
)

// TestRCRoundLogShrinkage checks the contraction invariant the round log
// exposes: the live edge set of Randomised Contraction never grows from
// round to round (Lemma 2's expected shrinkage is probabilistic, but
// non-growth is certain: contraction only merges vertices and removes
// loops), and the run ends with the graph contracted away entirely.
func TestRCRoundLogShrinkage(t *testing.T) {
	g := datagen.Bitcoin(300, 7)
	res, _ := runOn(t, RandomisedContraction, g, Options{Seed: 11})
	checkCorrect(t, g, res)
	if len(res.RoundLog) == 0 {
		t.Fatal("RC produced no round log")
	}
	if len(res.RoundLog) != res.Rounds {
		t.Fatalf("round log has %d entries, Rounds = %d", len(res.RoundLog), res.Rounds)
	}
	prev := res.RoundLog[0].LiveEdges
	for i, rs := range res.RoundLog {
		if rs.Round != i+1 {
			t.Fatalf("round %d numbered %d", i+1, rs.Round)
		}
		if rs.LiveEdges > prev {
			t.Fatalf("round %d: live edges grew %d -> %d", rs.Round, prev, rs.LiveEdges)
		}
		prev = rs.LiveEdges
		if rs.Queries <= 0 {
			t.Fatalf("round %d issued %d queries", rs.Round, rs.Queries)
		}
		if rs.RowsWritten <= 0 || rs.BytesWritten <= 0 {
			t.Fatalf("round %d wrote rows=%d bytes=%d", rs.Round, rs.RowsWritten, rs.BytesWritten)
		}
	}
	if last := res.RoundLog[len(res.RoundLog)-1]; last.LiveEdges != 0 {
		t.Fatalf("final round still has %d live edges", last.LiveEdges)
	}
}

// TestRCDeterministicRoundLogReproducible checks that the deterministic
// variant's round log — the CI baseline anchor — is identical across runs.
func TestRCDeterministicRoundLogReproducible(t *testing.T) {
	g := datagen.Bitcoin(200, 3)
	opts := Options{Seed: 5, RC: RCOptions{Deterministic: true}}
	res1, _ := runOn(t, RandomisedContraction, g, opts)
	res2, _ := runOn(t, RandomisedContraction, g, opts)
	if len(res1.RoundLog) != len(res2.RoundLog) {
		t.Fatalf("round counts differ: %d vs %d", len(res1.RoundLog), len(res2.RoundLog))
	}
	for i := range res1.RoundLog {
		if res1.RoundLog[i] != res2.RoundLog[i] {
			t.Fatalf("round %d differs: %+v vs %+v", i+1, res1.RoundLog[i], res2.RoundLog[i])
		}
	}
}

// TestAllAlgorithmsRoundLog checks every registered algorithm emits a
// consistent per-round stream and streams the same entries through the
// OnRound callback.
func TestAllAlgorithmsRoundLog(t *testing.T) {
	g := datagen.Bitcoin(150, 9)
	for _, info := range Algorithms() {
		t.Run(info.Name, func(t *testing.T) {
			var streamed []RoundStats
			opts := Options{Seed: 13, OnRound: func(rs RoundStats) { streamed = append(streamed, rs) }}
			res, _ := runOn(t, info.Run, g, opts)
			checkCorrect(t, g, res)
			if len(res.RoundLog) == 0 {
				t.Fatal("no round log")
			}
			if len(streamed) != len(res.RoundLog) {
				t.Fatalf("OnRound streamed %d entries, log has %d", len(streamed), len(res.RoundLog))
			}
			for i, rs := range res.RoundLog {
				if rs != streamed[i] {
					t.Fatalf("round %d: streamed %+v, logged %+v", i+1, streamed[i], rs)
				}
				if rs.Round != i+1 {
					t.Fatalf("round %d numbered %d", i+1, rs.Round)
				}
				if rs.Queries <= 0 {
					t.Fatalf("round %d issued %d queries", rs.Round, rs.Queries)
				}
			}
		})
	}
}
