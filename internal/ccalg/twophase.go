package ccalg

import (
	"fmt"

	"dbcc/internal/engine"
)

// TwoPhase is the algorithm of Kiveris et al. ("Connected components in
// MapReduce and beyond", SoCC 2014): rounds alternate a large-star and a
// small-star operation on the edge set until a fixpoint, at which the edge
// set is a star forest whose centres are the component minima.
//
//   - large-star: every vertex v connects each strictly larger neighbour
//     to the minimum of v's closed neighbourhood;
//   - small-star: every vertex v connects each smaller neighbour and
//     itself to that minimum.
//
// Both operations preserve connectivity and never increase the edge count.
// Two-Phase is the space-optimal contender of the paper's Table I/IV: the
// stored state is one row per undirected edge (both star outputs are
// naturally of the form (u, m) with u > m, so edges are kept in canonical
// larger-first order and the symmetric view is expanded only inside the
// per-round pipeline, never materialised). The price is Θ(log²|V|)
// rounds — and the pathological round count on the adversarially numbered
// PathUnion dataset (Table III).
func TwoPhase(c *engine.Cluster, input string, opts Options) (*Result, error) {
	if err := validateInput(c, input); err != nil {
		return nil, err
	}
	r := newRun(c, opts)
	defer r.cleanup()
	res, err := runTwoPhase(r, input)
	if err != nil {
		return nil, r.roundError("tp", err)
	}
	return res, nil
}

func runTwoPhase(r *run, input string) (*Result, error) {
	// Working edge set in canonical (larger, smaller) order, deduplicated,
	// loops dropped (isolated vertices are reattached at labelling time).
	canon := engine.Project(symmetric(input),
		engine.ProjCol{Expr: engine.Col(0), Name: "v"},
		engine.ProjCol{Expr: engine.Col(1), Name: "w"})
	canonFiltered := engine.Filter(canon, engine.Bin(engine.OpGt, engine.Col(0), engine.Col(1)))
	if _, err := r.create("tp_e", engine.Distinct(canonFiltered), 0); err != nil {
		return nil, err
	}
	// All original vertices, for the final labelling.
	if _, err := r.create("tp_v", engine.Project(
		engine.GroupBy(symmetric(input), []int{0}),
		engine.ProjCol{Expr: engine.Col(0), Name: "v"}), 0); err != nil {
		return nil, err
	}

	plans := newTPPlans(r)
	rounds := 0
	for {
		rounds++
		if rounds > maxRounds {
			return nil, fmt.Errorf("ccalg: Two-Phase exceeded %d rounds", maxRounds)
		}
		r.beginRound()
		if _, _, err := tpStar(r, plans, true); err != nil { // large-star
			return nil, err
		}
		changed, err := tpStarChanged(r, plans)
		if err != nil {
			return nil, err
		}
		liveV, liveE, err := tpStar(r, plans, false) // small-star
		if err != nil {
			return nil, err
		}
		changed2, err := tpStarChanged(r, plans)
		if err != nil {
			return nil, err
		}
		r.endRound(liveV, liveE)
		if !changed && !changed2 {
			break
		}
	}

	// The fixpoint is a star forest in canonical order: every edge is
	// (member, centre) with centre the component minimum. Vertices with no
	// remaining edge label themselves.
	starLabel := engine.GroupBy(r.scan("tp_e"), []int{0},
		engine.Agg{Op: engine.AggMin, Arg: engine.Col(1), Name: "m"})
	// Columns after left join: v, v(star), m.
	labelled := engine.Project(
		engine.LeftJoin(r.scan("tp_v"), starLabel, 0, 0),
		engine.ProjCol{Expr: engine.Col(0), Name: "v"},
		engine.ProjCol{Expr: engine.Least(engine.Col(0), engine.Col(2)), Name: "r"},
	)
	if _, err := r.create("tp_result", labelled, 0); err != nil {
		return nil, err
	}
	labels, err := r.labelsOf("tp_result")
	if err != nil {
		return nil, err
	}
	if err := r.drop("tp_result", "tp_e", "tp_v"); err != nil {
		return nil, err
	}
	return &Result{Labels: labels, Rounds: rounds, RoundLog: r.roundLog}, nil
}

// tpPlans holds the round loop's plans, built once per run
// (prepared-statement style): the rename dance keeps the tp_e / tp_m /
// tp_prev names stable, so the same immutable plan values execute every
// round.
type tpPlans struct {
	m          engine.Plan // m(v) = min of the closed neighbourhood
	largeOut   engine.Plan // large-star output edges
	smallOut   engine.Plan // small-star output edges
	prevCount  engine.Plan
	eCount     engine.Plan
	unionCount engine.Plan
}

func newTPPlans(r *run) *tpPlans {
	sym := engine.UnionAll(
		engine.Project(r.scan("tp_e"),
			engine.ProjCol{Expr: engine.Col(0), Name: "v"},
			engine.ProjCol{Expr: engine.Col(1), Name: "u"}),
		engine.Project(r.scan("tp_e"),
			engine.ProjCol{Expr: engine.Col(1), Name: "v"},
			engine.ProjCol{Expr: engine.Col(0), Name: "u"}),
	)
	m := engine.Project(
		engine.GroupBy(sym, []int{0},
			engine.Agg{Op: engine.AggMin, Arg: engine.Col(1), Name: "mn"}),
		engine.ProjCol{Expr: engine.Col(0), Name: "v"},
		engine.ProjCol{Expr: engine.Least(engine.Col(0), engine.Col(1)), Name: "m"},
	)
	// Join columns: v, u, v, m.
	joined := engine.Join(sym, r.scan("tp_m"), 0, 0)
	star := func(cmp engine.BinOp) engine.Plan {
		return engine.Project(
			engine.Filter(joined, engine.Bin(cmp, engine.Col(1), engine.Col(0))),
			engine.ProjCol{Expr: engine.Col(1), Name: "v"},
			engine.ProjCol{Expr: engine.Col(3), Name: "w"},
		)
	}
	// Small-star also links v itself to the minimum.
	selfLink := engine.Project(r.scan("tp_m"),
		engine.ProjCol{Expr: engine.Col(0), Name: "v"},
		engine.ProjCol{Expr: engine.Col(1), Name: "w"})
	canon := func(edges engine.Plan) engine.Plan {
		return engine.Distinct(engine.Filter(edges,
			engine.Bin(engine.OpNe, engine.Col(0), engine.Col(1))))
	}
	return &tpPlans{
		m:          m,
		largeOut:   canon(star(engine.OpGt)),
		smallOut:   canon(engine.UnionAll(star(engine.OpLt), selfLink)),
		prevCount:  r.scan("tp_prev"),
		eCount:     r.scan("tp_e"),
		unionCount: engine.Distinct(engine.UnionAll(r.scan("tp_prev"), r.scan("tp_e"))),
	}
}

// tpStar applies one star operation to tp_e, leaving the previous edge set
// in tp_prev for the change check. It returns the live vertex count (the
// vertices still touching an edge before the operation) and the edge count
// of the star output.
//
// The canonical edge table is expanded to both orientations inside the
// plan; grouping by the first column then yields m(v) = min(N[v]). The
// large-star output is {(u, m(v)) : u ∈ N(v), u > v}; the small-star
// output is {(u, m(v)) : u ∈ N(v), u < v} ∪ {(v, m(v))}. In both cases
// u > m(v) whenever the pair is not a loop, so the output is already
// canonical and deduplication suffices.
func tpStar(r *run, p *tpPlans, large bool) (int64, int64, error) {
	liveV, err := r.create("tp_m", p.m, 0)
	if err != nil {
		return 0, 0, err
	}
	out := p.largeOut
	if !large {
		out = p.smallOut
	}
	liveE, err := r.create("tp_e2", out, 0)
	if err != nil {
		return 0, 0, err
	}
	if err := r.drop("tp_m"); err != nil {
		return 0, 0, err
	}
	if err := r.rename("tp_e", "tp_prev"); err != nil {
		return 0, 0, err
	}
	return liveV, liveE, r.rename("tp_e2", "tp_e")
}

// tpStarChanged reports whether the last star operation changed the edge
// set, and drops the saved previous edge set.
func tpStarChanged(r *run, p *tpPlans) (bool, error) {
	n1, err := countRows(r.ctx, r.c, p.prevCount)
	if err != nil {
		return false, err
	}
	n2, err := countRows(r.ctx, r.c, p.eCount)
	if err != nil {
		return false, err
	}
	changed := true
	if n1 == n2 {
		nu, err := countRows(r.ctx, r.c, p.unionCount)
		if err != nil {
			return false, err
		}
		changed = nu != n1
	}
	return changed, r.drop("tp_prev")
}
