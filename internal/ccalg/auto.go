package ccalg

import (
	"context"
	"errors"
	"fmt"

	"dbcc/internal/engine"
)

// The adaptive planner's thresholds. They are deliberately coarse: the
// planner's job is to avoid the pathological pairings (rc-det on a
// high-diameter path, plain contraction on a hub-dominated graph, an
// expansion-hungry driver under a tight space budget), not to shave the
// last round off a good one. All of them feed rules over exact row counts,
// so a decision is a pure function of the graph and the run options —
// never of engine tuning knobs, memory budgets or injected faults.
const (
	// autoBudgetHeadroom: budgets tighter than this multiple of the input
	// table's footprint route to Two-Phase, the driver with the flattest
	// space profile (O(|E|) with no expansion step).
	autoBudgetHeadroom = 8
	// autoHubDegree / autoSkewFactor: a graph whose maximum degree is both
	// absolutely high and this many times the average is "skewed" and
	// routes to Local Contraction, whose hub exception was built for it.
	autoHubDegree  = 64
	autoSkewFactor = 8
	// autoProbeRounds: how many rounds of BFS-style minimum propagation
	// the diameter probe runs before giving up. Convergence within the
	// probe means every component has radius (from its minimum vertex)
	// within autoProbeRounds; non-convergence routes to Log-Diameter.
	autoProbeRounds = 6
	// autoBlowupFactor / autoRoundCeiling: the live monitor abandons the
	// planned driver and falls back to Two-Phase when its live edge set
	// grows past autoBlowupFactor times the input's, or its round count
	// passes autoRoundCeiling. Both triggers are functions of the
	// RoundStats stream, not of wall time, so runs stay reproducible.
	autoBlowupFactor = 8
	autoRoundCeiling = 512
)

// Prescan is the cheap statistics pass behind a planning decision.
type Prescan struct {
	Vertices  int64 // distinct endpoints of the symmetrised input
	Edges     int64 // symmetric, deduplicated, loop-free edge count
	MaxDegree int64 // maximum degree in the symmetrised graph
	AvgDegree int64 // Edges / Vertices (integer division)
	// ProbeRounds is how many minimum-propagation rounds the diameter
	// probe ran, and ProbeConverged whether labels reached a fixpoint
	// within them. The probe only runs when the earlier, cheaper rules
	// fail to decide, so both fields are zero for e.g. skewed graphs.
	ProbeRounds    int
	ProbeConverged bool
}

// AutoDecision is the outcome of planning: which driver to run and why.
type AutoDecision struct {
	// Algorithm is one of "rc-det", "tp", "lc", "ld" — the planner only
	// ever picks deterministic drivers so that Auto stays reproducible.
	Algorithm string
	// Reason is the matched rule, in one human-readable line.
	Reason  string
	Prescan Prescan
}

// PlanAlgorithm runs the pre-scan and decides which driver Auto would use
// for the given input, without running it. The rules, in order:
//
//  1. no edges                         → rc-det (any driver is one round)
//  2. MaxLiveBytes < 8× input bytes    → tp (flattest space profile)
//  3. max degree ≥ 64 and ≥ 8× average → lc (hub exception pays off)
//  4. diameter probe does not converge → ld (round count tracks log D)
//  5. otherwise                        → rc-det (the paper's best all-rounder)
//
// Rules 1–3 cost three aggregate queries and no temp tables; the probe
// (rule 4) materialises a label table and runs up to autoProbeRounds
// minimum-propagation rounds — the "few BFS probes" of the design note.
func PlanAlgorithm(c *engine.Cluster, input string, opts Options) (AutoDecision, error) {
	if err := validateInput(c, input); err != nil {
		return AutoDecision{}, err
	}
	r := newRun(c, opts)
	defer r.cleanup()

	var d AutoDecision

	// Degree table of the symmetrised, deduplicated, loop-free graph —
	// aggregated in one streaming pass, nothing materialised.
	edges := engine.Distinct(engine.Filter(symmetric(input),
		engine.Bin(engine.OpNe, engine.Col(0), engine.Col(1))))
	deg := engine.GroupBy(edges, []int{0}, engine.Agg{Op: engine.AggCount, Name: "deg"})
	var err error
	if d.Prescan.Vertices, err = countRows(r.ctx, c, deg); err != nil {
		return d, err
	}
	if d.Prescan.Edges, err = countRows(r.ctx, c, edges); err != nil {
		return d, err
	}
	if d.Prescan.MaxDegree, err = aggInt(r, engine.GroupBy(deg, nil,
		engine.Agg{Op: engine.AggMax, Arg: engine.Col(1), Name: "maxdeg"})); err != nil {
		return d, err
	}
	if d.Prescan.Vertices > 0 {
		d.Prescan.AvgDegree = d.Prescan.Edges / d.Prescan.Vertices
	}

	if d.Prescan.Edges == 0 {
		d.Algorithm, d.Reason = "rc-det", "no edges: every vertex is its own component"
		return d, nil
	}
	if t, ok := c.Table(input); ok && opts.MaxLiveBytes > 0 && opts.MaxLiveBytes < autoBudgetHeadroom*t.Bytes() {
		d.Algorithm = "tp"
		d.Reason = fmt.Sprintf("space budget %d B under %d× the input's %d B: two-phase has the flattest space profile",
			opts.MaxLiveBytes, autoBudgetHeadroom, t.Bytes())
		return d, nil
	}
	if d.Prescan.MaxDegree >= autoHubDegree && d.Prescan.MaxDegree >= autoSkewFactor*max(d.Prescan.AvgDegree, 1) {
		d.Algorithm = "lc"
		d.Reason = fmt.Sprintf("degree skew: max degree %d ≥ %d and ≥ %d× the average %d",
			d.Prescan.MaxDegree, autoHubDegree, autoSkewFactor, d.Prescan.AvgDegree)
		return d, nil
	}

	if err := probeDiameter(r, input, &d.Prescan); err != nil {
		return d, err
	}
	if !d.Prescan.ProbeConverged {
		d.Algorithm = "ld"
		d.Reason = fmt.Sprintf("diameter probe unconverged after %d rounds: log-diameter rounds beat contraction",
			d.Prescan.ProbeRounds)
		return d, nil
	}
	d.Algorithm = "rc-det"
	d.Reason = fmt.Sprintf("diameter probe converged in %d rounds with no degree skew: deterministic randomised contraction",
		d.Prescan.ProbeRounds)
	return d, nil
}

// probeDiameter runs up to autoProbeRounds rounds of BFS-style minimum
// propagation (l(v) ← min of l over the closed neighbourhood) over the
// full graph, recording whether labels converge. Convergence in k rounds
// bounds every component's radius from its minimum vertex by k.
func probeDiameter(r *run, input string, p *Prescan) error {
	if _, err := initFrontier(r, input, "pb"); err != nil {
		return err
	}
	e := r.scan("pb_e")
	l := r.scan("pb_l")
	l2 := r.scan("pb_l2")
	// Columns after joining edges with labels on the far endpoint:
	// (v, w, w, l(w)); group to the minimum neighbour label, then fold
	// into the current labels (left join keeps isolated vertices).
	nbrMin := engine.GroupBy(engine.Join(e, l, 1, 0), []int{0},
		engine.Agg{Op: engine.AggMin, Arg: engine.Col(3), Name: "m"})
	step := engine.Project(engine.LeftJoin(l, nbrMin, 0, 0),
		engine.ProjCol{Expr: engine.Col(0), Name: "v"},
		engine.ProjCol{Expr: engine.Least(engine.Col(1), engine.Coalesce(engine.Col(3), engine.Col(1))), Name: "r"})
	changedPlan := engine.Filter(engine.Join(l, l2, 0, 0),
		engine.Bin(engine.OpNe, engine.Col(1), engine.Col(3)))

	for i := 1; i <= autoProbeRounds; i++ {
		p.ProbeRounds = i
		if _, err := r.create("pb_l2", step, 0); err != nil {
			return err
		}
		changed, err := countRows(r.ctx, r.c, changedPlan)
		if err != nil {
			return err
		}
		if err := r.drop("pb_l"); err != nil {
			return err
		}
		if err := r.rename("pb_l2", "pb_l"); err != nil {
			return err
		}
		if changed == 0 {
			p.ProbeConverged = true
			break
		}
	}
	return r.drop("pb_l", "pb_e")
}

// Auto is the adaptive planner driver: it pre-scans the input with
// PlanAlgorithm, runs the chosen driver, and watches its RoundStats stream
// live — a run whose live edge set blows past autoBlowupFactor times the
// input's, or whose round count passes autoRoundCeiling, is cancelled and
// restarted under Two-Phase, with the fallback's rounds renumbered to
// continue the stream. The planner only ever picks deterministic drivers,
// and both monitor triggers are functions of the round statistics alone,
// so Auto is as reproducible as any single driver.
func Auto(c *engine.Cluster, input string, opts Options) (*Result, error) {
	if err := validateInput(c, input); err != nil {
		return nil, err
	}
	d, err := PlanAlgorithm(c, input, opts)
	if err != nil {
		var re *RoundError
		if !errors.As(err, &re) {
			err = &RoundError{Algorithm: "auto", Round: 1, Err: err}
		}
		return nil, err
	}
	res, err := runPlanned(c, input, opts, d.Algorithm)
	if err == nil || d.Algorithm == "tp" {
		return res, err
	}
	// A monitor abort (and nothing else) falls back to Two-Phase; genuine
	// failures — the caller's cancellation, space exhaustion, validation —
	// propagate as-is.
	var abort *autoAbort
	if !errors.As(err, &abort) {
		return nil, err
	}
	offset := len(abort.log)
	fbOpts := opts
	fbOpts.OnRound = renumberOnRound(opts.OnRound, offset)
	fb, err := TwoPhase(c, input, fbOpts)
	if err != nil {
		return nil, err
	}
	merged := append(append([]RoundStats(nil), abort.log...), renumberLog(fb.RoundLog, offset)...)
	return &Result{Labels: fb.Labels, Rounds: offset + fb.Rounds, RoundLog: merged}, nil
}

// autoAbort is the sentinel the live monitor cancels a planned run with.
type autoAbort struct {
	reason string
	log    []RoundStats // rounds completed before the abort
}

func (a *autoAbort) Error() string { return "ccalg: auto monitor abort: " + a.reason }

// runPlanned executes the planner's choice under the live monitor.
func runPlanned(c *engine.Cluster, input string, opts Options, algorithm string) (*Result, error) {
	runOpts := opts
	name := algorithm
	if algorithm == "rc-det" {
		name = "rc"
		runOpts.RC.Deterministic = true
	}
	info, ok := ByName(name)
	if !ok {
		return nil, fmt.Errorf("ccalg: auto planned unknown algorithm %q", algorithm)
	}

	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	runOpts.Context = ctx

	abort := &autoAbort{}
	tripped := false
	var inputEdges int64
	runOpts.OnRound = func(rs RoundStats) {
		if !tripped {
			abort.log = append(abort.log, rs)
			if rs.Round == 1 {
				inputEdges = rs.LiveEdges
			}
			switch {
			case rs.Round > 1 && inputEdges > 0 && rs.LiveEdges > autoBlowupFactor*inputEdges:
				abort.reason = fmt.Sprintf("%s live edges %d blew past %d× the input's %d",
					algorithm, rs.LiveEdges, autoBlowupFactor, inputEdges)
				tripped = true
			case rs.Round > autoRoundCeiling:
				abort.reason = fmt.Sprintf("%s passed %d rounds without converging", algorithm, autoRoundCeiling)
				tripped = true
			}
			if tripped {
				cancel()
			}
		}
		if opts.OnRound != nil {
			opts.OnRound(rs)
		}
	}

	res, err := info.Run(c, input, runOpts)
	if err != nil && tripped && (opts.Context == nil || opts.Context.Err() == nil) {
		return nil, abort
	}
	return res, err
}

// renumberOnRound shifts the Round numbers a fallback run reports so the
// caller's OnRound stream keeps strictly increasing round numbers across
// the switch.
func renumberOnRound(onRound func(RoundStats), offset int) func(RoundStats) {
	if onRound == nil {
		return nil
	}
	return func(rs RoundStats) {
		rs.Round += offset
		onRound(rs)
	}
}

func renumberLog(log []RoundStats, offset int) []RoundStats {
	out := make([]RoundStats, len(log))
	for i, rs := range log {
		rs.Round += offset
		out[i] = rs
	}
	return out
}
