package ccalg

import (
	"fmt"
	"testing"

	"dbcc/internal/graph"
	"dbcc/internal/xrand"
)

// edgeCaseGraphs are adversarial and degenerate inputs every algorithm
// must handle: negative vertex IDs (legal 64-bit values the generators
// never emit but input files may), duplicate and parallel edges, loops
// mixed with real edges, extreme ID magnitudes, and a vertex adjacent to
// everything.
func edgeCaseGraphs() map[string]*graph.Graph {
	negative := graph.New(0)
	negative.AddEdge(-5, -9)
	negative.AddEdge(-9, 3)
	negative.AddEdge(7, 7)

	dupes := graph.New(0)
	for i := 0; i < 5; i++ {
		dupes.AddEdge(1, 2) // parallel edges
		dupes.AddEdge(2, 1) // and the reversed duplicates
	}
	dupes.AddEdge(2, 3)

	loopsAndEdges := graph.New(0)
	loopsAndEdges.AddEdge(1, 1) // loop on a vertex that also has real edges
	loopsAndEdges.AddEdge(1, 2)
	loopsAndEdges.AddEdge(3, 3)

	extremes := graph.New(0)
	extremes.AddEdge(0, 9223372036854775807)
	extremes.AddEdge(-9223372036854775808, 0)
	extremes.AddEdge(42, 42)

	hub := graph.New(0)
	for i := int64(1); i <= 40; i++ {
		hub.AddEdge(0, i)
	}

	twoVertexLoop := graph.New(0)
	twoVertexLoop.AddEdge(5, 5)
	twoVertexLoop.AddEdge(5, 5)

	return map[string]*graph.Graph{
		"negative-ids":    negative,
		"duplicate-edges": dupes,
		"loops-and-edges": loopsAndEdges,
		"extreme-ids":     extremes,
		"hub":             hub,
		"repeated-loop":   twoVertexLoop,
	}
}

func TestEdgeCasesAllAlgorithms(t *testing.T) {
	for name, g := range edgeCaseGraphs() {
		for _, info := range Algorithms() {
			t.Run(info.Name+"/"+name, func(t *testing.T) {
				res, _ := runOn(t, info.Run, g, Options{Seed: 13})
				checkCorrect(t, g, res)
			})
		}
	}
}

// TestEdgeCasesAllRCMethods runs the tricky inputs through every
// randomisation method (the GF(2^64) and GF(p) bijections must behave on
// negative bit patterns too).
func TestEdgeCasesAllRCMethods(t *testing.T) {
	for name, g := range edgeCaseGraphs() {
		for _, method := range []Method{FiniteFields, GFPrime, Encryption, RandomReals} {
			t.Run(fmt.Sprintf("%s/%s", method, name), func(t *testing.T) {
				res, _ := runOn(t, RandomisedContraction, g, Options{
					Seed: 3, RC: RCOptions{Method: method}})
				checkCorrect(t, g, res)
			})
		}
	}
}

// TestManySeedsFuzz is a randomised stress test: random graphs, random
// seeds, every algorithm, always checked against the oracle.
func TestManySeedsFuzz(t *testing.T) {
	rng := xrand.New(2024)
	for trial := 0; trial < 15; trial++ {
		n := int(rng.Uint64n(40)) + 2
		m := int(rng.Uint64n(80)) + 1
		g := graph.New(m)
		for i := 0; i < m; i++ {
			// Mix positive and negative IDs.
			v := rng.Int63n(int64(n)) - int64(n)/2
			w := rng.Int63n(int64(n)) - int64(n)/2
			g.AddEdge(v, w)
		}
		for _, info := range Algorithms() {
			res, _ := runOn(t, info.Run, g, Options{Seed: rng.Uint64()})
			checkCorrect(t, g, res)
		}
	}
}
