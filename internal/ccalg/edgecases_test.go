package ccalg_test

import (
	"fmt"
	"testing"

	"dbcc/internal/ccalg"
	"dbcc/internal/ccalg/conformance"
	"dbcc/internal/graph"
	"dbcc/internal/xrand"
)

// The per-driver edge-case loop moved into the conformance suite's oracle
// subtest (conformance.Graphs includes conformance.EdgeCaseGraphs); this
// file keeps the RC-method axis and the randomised fuzz, which have no
// per-driver analogue.

// TestEdgeCasesAllRCMethods runs the tricky inputs through every
// randomisation method (the GF(2^64) and GF(p) bijections must behave on
// negative bit patterns too).
func TestEdgeCasesAllRCMethods(t *testing.T) {
	for name, g := range conformance.EdgeCaseGraphs() {
		for _, method := range []ccalg.Method{ccalg.FiniteFields, ccalg.GFPrime, ccalg.Encryption, ccalg.RandomReals} {
			t.Run(fmt.Sprintf("%s/%s", method, name), func(t *testing.T) {
				res, _ := conformance.RunOn(t, ccalg.RandomisedContraction, g, ccalg.Options{
					Seed: 3, RC: ccalg.RCOptions{Method: method}})
				conformance.CheckCorrect(t, g, res)
			})
		}
	}
}

// TestManySeedsFuzz is a randomised stress test: random graphs, random
// seeds, every driver, always checked against the oracle.
func TestManySeedsFuzz(t *testing.T) {
	rng := xrand.New(2024)
	for trial := 0; trial < 15; trial++ {
		n := int(rng.Uint64n(40)) + 2
		m := int(rng.Uint64n(80)) + 1
		g := graph.New(m)
		for i := 0; i < m; i++ {
			// Mix positive and negative IDs.
			v := rng.Int63n(int64(n)) - int64(n)/2
			w := rng.Int63n(int64(n)) - int64(n)/2
			g.AddEdge(v, w)
		}
		for _, info := range conformance.Drivers() {
			res, _ := conformance.RunOn(t, info.Run, g, ccalg.Options{Seed: rng.Uint64()})
			conformance.CheckCorrect(t, g, res)
		}
	}
}
