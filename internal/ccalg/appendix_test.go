package ccalg

import (
	"fmt"
	"testing"

	"dbcc/internal/datagen"
	"dbcc/internal/engine"
	"dbcc/internal/graph"
	"dbcc/internal/sql"
	"dbcc/internal/unionfind"
	"dbcc/internal/verify"
	"dbcc/internal/xrand"
)

// TestAppendixAScript drives the verbatim SQL of the paper's Appendix A —
// the queries the Python driver interpolates and sends to HAWQ — through
// the SQL layer, replicating the driver's control flow line by line
// (including the key stack and the back-to-front composition), and checks
// the resulting labelling against the oracle. This is the end-to-end
// demonstration that the engine + SQL substrate can execute the paper's
// implementation as published.
func TestAppendixAScript(t *testing.T) {
	g := datagen.RMAT(8, 400, 0.57, 0.19, 0.19, 0.05, 9)
	c := engine.NewCluster(engine.Options{Segments: 4})
	RegisterUDFs(c)
	if err := graph.Load(c, "dataset", g); err != nil {
		t.Fatal(err)
	}
	s := sql.NewSession(c)
	rng := xrand.New(123)

	// Setup (Fig. 8: "create table ccgraph as ... union all ... distributed by (v1)").
	mustExec(t, s, `
		create table ccgraph as
		select v1, v2 from dataset
		union all
		select v2, v1 from dataset
		distributed by (v1)`)

	roundno := 0
	var stackA, stackB []int64
	for {
		roundno++
		if roundno > 1000 {
			t.Fatal("runaway contraction loop")
		}
		rA := int64(rng.NonZeroUint64())
		rB := int64(rng.Uint64())
		stackA = append(stackA, rA)
		stackB = append(stackB, rB)
		ccreps := fmt.Sprintf("ccreps%d", roundno)

		mustExec(t, s, fmt.Sprintf(`
			create table %s as
			select v1 v,
			       least(axplusb(%d, v1, %d),
			             min(axplusb(%d, v2, %d))) rep
			from ccgraph
			group by v1
			distributed by (v)`, ccreps, rA, rB, rA, rB))

		mustExec(t, s, fmt.Sprintf(`
			create table ccgraph2 as
			select r1.rep as v1, v2
			from ccgraph, %s as r1
			where ccgraph.v1 = r1.v
			distributed by (v2)`, ccreps))
		mustExec(t, s, "drop table ccgraph")

		graphsize := mustExec(t, s, fmt.Sprintf(`
			create table ccgraph3 as
			select distinct v1, r2.rep as v2
			from ccgraph2, %s as r2
			where ccgraph2.v2 = r2.v
			and v1 != r2.rep
			distributed by (v1)`, ccreps))
		mustExec(t, s, "drop table ccgraph2")
		mustExec(t, s, "alter table ccgraph3 rename to ccgraph")

		if graphsize == 0 {
			break
		}
	}

	// Back-to-front composition with the accumulated affine coefficients,
	// exactly as the Python driver does (r.axplusb computed in-database).
	axplusb := func(a, x, b int64) int64 {
		_, rows, err := s.Queryf("select axplusb(%d, %d, %d) as r", a, x, b)
		if err != nil || len(rows) != 1 {
			t.Fatalf("axplusb query: %v", err)
		}
		return rows[0][0].Int
	}
	accA, accB := int64(1), int64(0)
	for {
		roundno--
		a := stackA[len(stackA)-1]
		b := stackB[len(stackB)-1]
		stackA = stackA[:len(stackA)-1]
		stackB = stackB[:len(stackB)-1]
		accA, accB = axplusb(accA, a, 0), axplusb(accA, b, accB)
		if roundno == 0 {
			break
		}
		r1 := fmt.Sprintf("ccreps%d", roundno)
		r2 := fmt.Sprintf("ccreps%d", roundno+1)
		mustExec(t, s, fmt.Sprintf(`
			create table tmp as
			select r1.v as v,
			       coalesce(r2.rep, axplusb(%d, r1.rep, %d)) as rep
			from %s as r1 left outer join
			     %s as r2
			on (r1.rep = r2.v)
			distributed by (v)`, accA, accB, r1, r2))
		mustExec(t, s, fmt.Sprintf("drop table %s, %s", r1, r2))
		mustExec(t, s, fmt.Sprintf("alter table tmp rename to %s", r1))
	}
	mustExec(t, s, "alter table ccreps1 rename to ccresult")
	mustExec(t, s, "drop table ccgraph")

	rows, err := c.ReadAll("ccresult")
	if err != nil {
		t.Fatal(err)
	}
	labels, err := graph.FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Labelling(g, labels); err != nil {
		t.Fatalf("Appendix A script produced a wrong labelling: %v", err)
	}
	if got, want := labels.NumComponents(), unionfind.CountComponents(g); got != want {
		t.Fatalf("components %d, want %d", got, want)
	}
}

func mustExec(t *testing.T, s *sql.Session, stmt string) int64 {
	t.Helper()
	n, err := s.Exec(stmt)
	if err != nil {
		t.Fatalf("exec %q: %v", stmt, err)
	}
	return n
}

// TestRCAgainstIndependentImplementation cross-checks the SQL-driven
// algorithm against an independent in-memory implementation of Randomised
// Contraction (straight from Sec. V-A's definition) using the same keys:
// both must contract in the same number of rounds and produce equivalent
// labellings.
func TestRCAgainstIndependentImplementation(t *testing.T) {
	g := datagen.ErdosRenyi(120, 200, 77)
	c := engine.NewCluster(engine.Options{Segments: 4})
	if err := graph.Load(c, "input", g); err != nil {
		t.Fatal(err)
	}
	res, err := RandomisedContraction(c, "input", Options{Seed: 55})
	if err != nil {
		t.Fatal(err)
	}
	ref := inMemoryRC(g, 55)
	if err := verify.Equivalent(res.Labels, ref); err != nil {
		t.Fatalf("SQL and in-memory implementations disagree: %v", err)
	}
}

// inMemoryRC is a from-the-definition implementation of Sec. V-A with the
// finite fields method and min-relabelling, sharing drawKeys' stream so it
// replays the exact per-round bijections of the SQL driver.
func inMemoryRC(g *graph.Graph, seed uint64) graph.Labelling {
	rng := xrand.New(seed)
	type edge struct{ v, w int64 }
	edges := make(map[edge]struct{})
	for _, e := range g.Edges {
		edges[edge{e.V, e.W}] = struct{}{}
		edges[edge{e.W, e.V}] = struct{}{}
	}
	labels := make(graph.Labelling)
	for _, v := range g.Vertices() {
		labels[v] = v // current label per original vertex, in round space
	}
	for len(edges) > 0 {
		k := drawKeys(rng)
		h := func(x int64) int64 { return int64(gfAx(uint64(k.a), uint64(x), uint64(k.b))) }
		// Representatives over the current vertex set.
		rep := make(map[int64]int64)
		vertexSeen := make(map[int64]struct{})
		for e := range edges {
			vertexSeen[e.v] = struct{}{}
		}
		for e := range edges {
			hv := h(e.w)
			if cur, ok := rep[e.v]; !ok || hv < cur {
				rep[e.v] = hv
			}
		}
		for v := range vertexSeen {
			if hv := h(v); rep[v] > hv {
				rep[v] = hv
			}
		}
		// Contract.
		next := make(map[edge]struct{})
		for e := range edges {
			nv, nw := rep[e.v], rep[e.w]
			if nv != nw {
				next[edge{nv, nw}] = struct{}{}
			}
		}
		edges = next
		// Compose into the running labelling (Fig. 3 style: survivors take
		// their representative, dropped vertices are relabelled through h).
		for v, l := range labels {
			if r, ok := rep[l]; ok {
				labels[v] = r
			} else {
				labels[v] = h(l)
			}
		}
	}
	return labels
}
