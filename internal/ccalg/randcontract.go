package ccalg

import (
	"fmt"

	"dbcc/internal/engine"
	"dbcc/internal/sql"
	"dbcc/internal/xrand"
)

// Method selects the vertex-order randomisation of Sec. V-C.
type Method int

// Randomisation methods.
const (
	// FiniteFields draws hᵢ(w) = Aᵢ·w + Bᵢ over GF(2^64) — the paper's
	// final refinement (Fig. 3/4, Appendix A) using the min-relabelling
	// optimisation of Sec. V-D.
	FiniteFields Method = iota
	// GFPrime is the SQL-only alternative the paper mentions: the same
	// affine map over GF(p) for a prime p = 2^64−59 exceeding every
	// vertex ID.
	GFPrime
	// Encryption draws a fresh Blowfish key per round and uses
	// rᵢ(v) = argmin eₖᵢ(w); only the key crosses the network.
	Encryption
	// RandomReals materialises a per-vertex table of round-fresh random
	// values and uses rᵢ(v) = argmin hᵢ(w) — full randomisation, at the
	// cost of distributing one random number per vertex.
	RandomReals
)

// String returns the method name used in reports.
func (m Method) String() string {
	switch m {
	case FiniteFields:
		return "finite-fields"
	case GFPrime:
		return "gf-prime"
	case Encryption:
		return "encryption"
	case RandomReals:
		return "random-reals"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Variant selects between the two implementations of Sec. V-D.
type Variant int

// Algorithm variants.
const (
	// Fast is Fig. 4 / Appendix A: per-round representative tables are
	// kept and composed small-to-large after contraction finishes.
	// Space is linear in expectation.
	Fast Variant = iota
	// Safe is Fig. 3: one full-size composition table L is folded every
	// round, giving deterministically linear space.
	Safe
)

// String returns the variant name used in reports.
func (v Variant) String() string {
	if v == Safe {
		return "fig3-safe"
	}
	return "fig4-fast"
}

// RCOptions are the Randomised Contraction knobs.
type RCOptions struct {
	Method  Method
	Variant Variant
	// NoRerandomise reuses the round-1 keys for every round (ablation A3).
	// Sec. V-B requires fresh randomness per round for the independence
	// argument; disabling it demonstrates why.
	NoRerandomise bool
	// Deterministic disables randomisation entirely (h = identity), i.e.
	// the "basic idea" of Sec. V-A choosing the minimum vertex ID of the
	// closed neighbourhood. On a sequentially numbered path this is the
	// Fig. 2(a) worst case: one vertex removed per round. Only meaningful
	// with the FiniteFields or GFPrime methods.
	Deterministic bool
}

// RandomisedContraction runs the paper's algorithm by issuing the SQL of
// Appendix A (adapted per method and variant) through the SQL layer, just
// as the paper's Python driver issues it to HAWQ.
func RandomisedContraction(c *engine.Cluster, input string, opts Options) (*Result, error) {
	if err := validateInput(c, input); err != nil {
		return nil, err
	}
	RegisterUDFs(c)
	r := newRun(c, opts)
	defer r.cleanup()
	// The session shares the run's temp-table namespace, so the literal
	// Appendix A table names in the SQL below resolve to run-private
	// catalog names and concurrent RC sessions never collide; it also
	// carries the run's context so cancellation reaches every statement.
	res, err := runRC(r, sql.SessionWithNamespace(c, r.ns).WithContext(r.ctx), input, opts)
	if err != nil {
		return nil, r.roundError("rc", err)
	}
	return res, nil
}

// rcKeys holds one round's randomisation parameters.
type rcKeys struct {
	a, b int64 // affine coefficients (GF methods)
	key  int64 // cipher key / hash seed (argmin methods)
}

// drawKeys draws a round's keys the way the paper's driver does: uniform
// 64-bit integers with A ≠ 0.
func drawKeys(rng *xrand.Rand) rcKeys {
	return rcKeys{
		a:   int64(rng.NonZeroUint64()),
		b:   int64(rng.Uint64()),
		key: int64(rng.Uint64()),
	}
}

func runRC(r *run, s *sql.Session, input string, opts Options) (*Result, error) {
	rng := xrand.New(opts.Seed)
	method := opts.RC.Method
	variant := opts.RC.Variant

	// Setup (Appendix A): symmetrise the edge table.
	if _, err := r.exec(s, `
		create table rc_graph as
		select v1, v2 from `+input+`
		union all
		select v2, v1 from `+input+`
		distributed by (v1)`); err != nil {
		return nil, err
	}

	var stack []rcKeys
	round := 0
	for {
		round++
		if round > maxRounds {
			return nil, fmt.Errorf("ccalg: randomised contraction exceeded %d rounds", maxRounds)
		}
		r.beginRound()
		var keys rcKeys
		switch {
		case opts.RC.Deterministic:
			keys = rcKeys{a: 1, b: 0, key: 0}
		case opts.RC.NoRerandomise && len(stack) > 0:
			keys = stack[0]
		default:
			keys = drawKeys(rng)
		}
		stack = append(stack, keys)

		var liveV int64
		var err error
		if method == FiniteFields || method == GFPrime {
			liveV, err = rcRepsAffine(r, s, method, round, keys)
		} else {
			liveV, err = rcRepsArgmin(r, s, method, round, keys)
		}
		if err != nil {
			return nil, err
		}

		// Contraction, split into the two queries of Appendix A so the
		// write-volume accounting matches the measured implementation.
		if _, err := r.exec(s, fmt.Sprintf(`
			create table rc_graph2 as
			select r1.rep as v1, v2
			from rc_graph, rc_reps%d as r1
			where rc_graph.v1 = r1.v
			distributed by (v2)`, round)); err != nil {
			return nil, err
		}
		if err := r.drop("rc_graph"); err != nil {
			return nil, err
		}
		size, err := r.exec(s, fmt.Sprintf(`
			create table rc_graph3 as
			select distinct v1, r2.rep as v2
			from rc_graph2, rc_reps%d as r2
			where rc_graph2.v2 = r2.v and v1 != r2.rep
			distributed by (v1)`, round))
		if err != nil {
			return nil, err
		}
		if err := r.drop("rc_graph2"); err != nil {
			return nil, err
		}
		if err := r.rename("rc_graph3", "rc_graph"); err != nil {
			return nil, err
		}

		// The Safe (Fig. 3) variant folds the round's representative table
		// into the running composition L immediately and drops it.
		if variant == Safe {
			if err := rcFoldSafe(r, s, method, round, keys); err != nil {
				return nil, err
			}
		}
		r.endRound(liveV, size)

		if size == 0 {
			break
		}
	}
	if err := r.drop("rc_graph"); err != nil {
		return nil, err
	}

	// Composition.
	switch variant {
	case Safe:
		if err := r.rename("rc_l", "rc_result"); err != nil {
			return nil, err
		}
	case Fast:
		if err := rcComposeFast(r, s, method, stack); err != nil {
			return nil, err
		}
	}

	labels, err := r.labelsOf("rc_result")
	if err != nil {
		return nil, err
	}
	if err := r.drop("rc_result"); err != nil {
		return nil, err
	}
	return &Result{Labels: labels, Rounds: len(stack), RoundLog: r.roundLog}, nil
}

// rcRepsAffine computes the round's representatives with the
// min-relabelling optimisation (Sec. V-D): representatives are the
// h-transformed IDs, so a plain min aggregate suffices. It returns the
// representative-table cardinality — the round's live vertex count.
func rcRepsAffine(r *run, s *sql.Session, method Method, round int, k rcKeys) (int64, error) {
	fn := "axplusb"
	if method == GFPrime {
		fn = "axbp"
	}
	return r.exec(s, fmt.Sprintf(`
		create table rc_reps%d as
		select v1 v, least(%[2]s(%[3]d, v1, %[4]d), min(%[2]s(%[3]d, v2, %[4]d))) rep
		from rc_graph
		group by v1
		distributed by (v)`, round, fn, k.a, k.b))
}

// rcRepsArgmin computes the round's representatives as
// rᵢ(v) = argmin_{w∈N[v]} h(w), the form the paper gives for the random
// reals and encryption methods (Sec. V-C). Representatives remain genuine
// vertex IDs. Ties on h are broken by the smaller vertex ID, which is
// still a valid representative choice (any r(v) ∈ N[v] preserves
// connectivity). It returns the representative-table cardinality — the
// round's live vertex count.
func rcRepsArgmin(r *run, s *sql.Session, method Method, round int, k rcKeys) (int64, error) {
	hexpr := func(col string) string {
		if method == Encryption {
			return fmt.Sprintf("enc(%d, %s)", k.key, col)
		}
		return fmt.Sprintf("hrand(%d, %s)", k.key, col)
	}
	// Closed-neighbourhood h values: one row (v, w, h(w)) per neighbour,
	// plus the self row (v, v, h(v)).
	if _, err := r.exec(s, fmt.Sprintf(`
		create table rc_nh as
		select v1 as v, v2 as w, %s as h from rc_graph
		union all
		select v1 as v, v1 as w, %s as h from rc_graph group by v1
		distributed by (v)`, hexpr("v2"), hexpr("v1"))); err != nil {
		return 0, err
	}
	if _, err := r.exec(s, `
		create table rc_minh as
		select v, min(h) as mh from rc_nh group by v
		distributed by (v)`); err != nil {
		return 0, err
	}
	n, err := r.exec(s, fmt.Sprintf(`
		create table rc_reps%d as
		select rc_nh.v as v, min(rc_nh.w) as rep
		from rc_nh, rc_minh
		where rc_nh.v = rc_minh.v and rc_nh.h = rc_minh.mh
		group by rc_nh.v
		distributed by (v)`, round))
	if err != nil {
		return 0, err
	}
	return n, r.drop("rc_nh", "rc_minh")
}

// rcFoldSafe folds the round's representative table into the running
// composition table rc_l (Fig. 3's else branch) and drops it, keeping the
// space bound deterministic.
func rcFoldSafe(r *run, s *sql.Session, method Method, round int, k rcKeys) error {
	reps := fmt.Sprintf("rc_reps%d", round)
	if round == 1 {
		return r.rename(reps, "rc_l")
	}
	// Vertices whose label dropped out of this round's computation must be
	// relabelled through hᵢ for the GF methods (their labels live in the
	// previous round's ID space); the argmin methods keep real IDs.
	var relabel string
	switch method {
	case FiniteFields:
		relabel = fmt.Sprintf("axplusb(%d, l.rep, %d)", k.a, k.b)
	case GFPrime:
		relabel = fmt.Sprintf("axbp(%d, l.rep, %d)", k.a, k.b)
	default:
		relabel = "l.rep"
	}
	if _, err := r.exec(s, fmt.Sprintf(`
		create table rc_tmp as
		select l.v as v, coalesce(rr.rep, %s) as rep
		from rc_l as l left outer join %s as rr on (l.rep = rr.v)
		distributed by (v)`, relabel, reps)); err != nil {
		return err
	}
	if err := r.drop("rc_l", reps); err != nil {
		return err
	}
	return r.rename("rc_tmp", "rc_l")
}

// rcComposeFast composes the stacked representative tables back to front
// (Fig. 4's second loop / Appendix A), accumulating the affine coefficient
// composition for the GF methods exactly as the paper's Python does.
func rcComposeFast(r *run, s *sql.Session, method Method, stack []rcKeys) error {
	gfMethod := method == FiniteFields || method == GFPrime
	axb := func(a, x, b int64) (int64, error) {
		fn := "axplusb"
		if method == GFPrime {
			fn = "axbp"
		}
		_, rows, err := s.Queryf("select %s(%d, %d, %d) as r", fn, a, x, b)
		if err != nil {
			return 0, fmt.Errorf("ccalg: %s self-query failed: %w", fn, err)
		}
		if len(rows) != 1 {
			return 0, fmt.Errorf("ccalg: %s self-query returned %d rows, want 1", fn, len(rows))
		}
		return rows[0][0].Int, nil
	}
	accA, accB := int64(1), int64(0)
	for i := len(stack) - 1; i >= 1; i-- {
		if gfMethod {
			k := stack[i]
			newA, err := axb(accA, k.a, 0)
			if err != nil {
				return err
			}
			newB, err := axb(accA, k.b, accB)
			if err != nil {
				return err
			}
			accA, accB = newA, newB
		}
		var relabel string
		if gfMethod {
			fn := "axplusb"
			if method == GFPrime {
				fn = "axbp"
			}
			relabel = fmt.Sprintf("%s(%d, r1.rep, %d)", fn, accA, accB)
		} else {
			relabel = "r1.rep"
		}
		if _, err := r.exec(s, fmt.Sprintf(`
			create table rc_tmp as
			select r1.v as v, coalesce(r2.rep, %s) as rep
			from rc_reps%d as r1 left outer join rc_reps%d as r2 on (r1.rep = r2.v)
			distributed by (v)`, relabel, i, i+1)); err != nil {
			return err
		}
		if err := r.drop(fmt.Sprintf("rc_reps%d", i), fmt.Sprintf("rc_reps%d", i+1)); err != nil {
			return err
		}
		if err := r.rename("rc_tmp", fmt.Sprintf("rc_reps%d", i)); err != nil {
			return err
		}
	}
	return r.rename("rc_reps1", "rc_result")
}

// exec runs a SQL statement through the session with the run's space guard.
func (r *run) exec(s *sql.Session, stmt string) (int64, error) {
	n, err := s.Exec(stmt)
	if err != nil {
		return 0, err
	}
	r.noteTables(stmt)
	return n, r.checkSpace()
}

// noteTables records tables created by a statement for cleanup purposes.
// The statement names are logical; the cleanup set stores the run-private
// catalog names the namespaced session actually created.
func (r *run) noteTables(stmt string) {
	stmts, err := sql.Parse(stmt)
	if err != nil {
		return
	}
	for _, st := range stmts {
		switch st := st.(type) {
		case *sql.CreateTableAs:
			r.temps[r.t(st.Name)] = struct{}{}
		case *sql.DropTable:
			for _, n := range st.Names {
				delete(r.temps, r.t(n))
			}
		case *sql.AlterRename:
			delete(r.temps, r.t(st.Old))
			r.temps[r.t(st.New)] = struct{}{}
		}
	}
}
