package ccalg

import (
	"fmt"

	"dbcc/internal/engine"
	"dbcc/internal/sql"
	"dbcc/internal/xrand"
)

// Method selects the vertex-order randomisation of Sec. V-C.
type Method int

// Randomisation methods.
const (
	// FiniteFields draws hᵢ(w) = Aᵢ·w + Bᵢ over GF(2^64) — the paper's
	// final refinement (Fig. 3/4, Appendix A) using the min-relabelling
	// optimisation of Sec. V-D.
	FiniteFields Method = iota
	// GFPrime is the SQL-only alternative the paper mentions: the same
	// affine map over GF(p) for a prime p = 2^64−59 exceeding every
	// vertex ID.
	GFPrime
	// Encryption draws a fresh Blowfish key per round and uses
	// rᵢ(v) = argmin eₖᵢ(w); only the key crosses the network.
	Encryption
	// RandomReals materialises a per-vertex table of round-fresh random
	// values and uses rᵢ(v) = argmin hᵢ(w) — full randomisation, at the
	// cost of distributing one random number per vertex.
	RandomReals
)

// String returns the method name used in reports.
func (m Method) String() string {
	switch m {
	case FiniteFields:
		return "finite-fields"
	case GFPrime:
		return "gf-prime"
	case Encryption:
		return "encryption"
	case RandomReals:
		return "random-reals"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Variant selects between the two implementations of Sec. V-D.
type Variant int

// Algorithm variants.
const (
	// Fast is Fig. 4 / Appendix A: per-round representative tables are
	// kept and composed small-to-large after contraction finishes.
	// Space is linear in expectation.
	Fast Variant = iota
	// Safe is Fig. 3: one full-size composition table L is folded every
	// round, giving deterministically linear space.
	Safe
)

// String returns the variant name used in reports.
func (v Variant) String() string {
	if v == Safe {
		return "fig3-safe"
	}
	return "fig4-fast"
}

// RCOptions are the Randomised Contraction knobs.
type RCOptions struct {
	Method  Method
	Variant Variant
	// NoRerandomise reuses the round-1 keys for every round (ablation A3).
	// Sec. V-B requires fresh randomness per round for the independence
	// argument; disabling it demonstrates why.
	NoRerandomise bool
	// Deterministic disables randomisation entirely (h = identity), i.e.
	// the "basic idea" of Sec. V-A choosing the minimum vertex ID of the
	// closed neighbourhood. On a sequentially numbered path this is the
	// Fig. 2(a) worst case: one vertex removed per round. Only meaningful
	// with the FiniteFields or GFPrime methods.
	Deterministic bool
}

// RandomisedContraction runs the paper's algorithm by issuing the SQL of
// Appendix A (adapted per method and variant) through the SQL layer, just
// as the paper's Python driver issues it to HAWQ.
func RandomisedContraction(c *engine.Cluster, input string, opts Options) (*Result, error) {
	if err := validateInput(c, input); err != nil {
		return nil, err
	}
	RegisterUDFs(c)
	r := newRun(c, opts)
	defer r.cleanup()
	// The session shares the run's temp-table namespace, so the literal
	// Appendix A table names in the SQL below resolve to run-private
	// catalog names and concurrent RC sessions never collide; it also
	// carries the run's context so cancellation reaches every statement.
	res, err := runRC(r, sql.SessionWithNamespace(c, r.ns).WithContext(r.ctx), input, opts)
	if err != nil {
		return nil, r.roundError("rc", err)
	}
	return res, nil
}

// rcKeys holds one round's randomisation parameters.
type rcKeys struct {
	a, b int64 // affine coefficients (GF methods)
	key  int64 // cipher key / hash seed (argmin methods)
}

// drawKeys draws a round's keys the way the paper's driver does: uniform
// 64-bit integers with A ≠ 0.
func drawKeys(rng *xrand.Rand) rcKeys {
	return rcKeys{
		a:   int64(rng.NonZeroUint64()),
		b:   int64(rng.Uint64()),
		key: int64(rng.Uint64()),
	}
}

// The Appendix A statement shapes, written once with $N parameters: $1 is
// always the CTAS target, table parameters carry the round-varying
// rc_reps<i> / renamed graph tables, value parameters the round keys. Each
// shape is prepared once per run (one parse) and its plan template is
// cached engine-wide; because every table reference is a parameter the
// templates are namespace-independent and shared across runs.
const (
	rcSQLSetup = `
		create table $1 as
		select v1, v2 from $2 as e
		union all
		select v2, v1 from $2 as e2
		distributed by (v1)`
	rcSQLContract1 = `
		create table $1 as
		select r1.rep as v1, g.v2 as v2
		from $2 as g, $3 as r1
		where g.v1 = r1.v
		distributed by (v2)`
	rcSQLContract2 = `
		create table $1 as
		select distinct g2.v1 as v1, r2.rep as v2
		from $2 as g2, $3 as r2
		where g2.v2 = r2.v and g2.v1 != r2.rep
		distributed by (v1)`
	rcSQLMinH = `
		create table $1 as
		select v, min(h) as mh from $2 as nh group by v
		distributed by (v)`
	rcSQLArgmin = `
		create table $1 as
		select nh.v as v, min(nh.w) as rep
		from $2 as nh, $3 as mh
		where nh.v = mh.v and nh.h = mh.mh
		group by nh.v
		distributed by (v)`
)

// rcStmts issues the driver's SQL as prepared statements: each distinct
// statement shape is parsed and planned once per run, and every round
// binds that round's table names and keys. With noPrep set (the ablation)
// each call instead renders the arguments into literal SQL and executes
// the text, paying the per-round parse and plan the paper's driver pays.
type rcStmts struct {
	r       *run
	s       *sql.Session
	noPrep  bool
	byShape map[string]*sql.Prepared
}

func newRCStmts(r *run, s *sql.Session, noPrep bool) *rcStmts {
	return &rcStmts{r: r, s: s, noPrep: noPrep, byShape: make(map[string]*sql.Prepared)}
}

func (p *rcStmts) handle(src string) (*sql.Prepared, error) {
	if h, ok := p.byShape[src]; ok {
		return h, nil
	}
	h, err := p.s.Prepare(src)
	if err != nil {
		return nil, err
	}
	p.byShape[src] = h
	return h, nil
}

// create runs a CTAS shape with $1 bound to the target temp table,
// tracking the temp for cleanup and applying the run's space guard.
func (p *rcStmts) create(target, src string, args ...sql.Arg) (int64, error) {
	all := append([]sql.Arg{sql.Table(target)}, args...)
	var n int64
	var err error
	if p.noPrep {
		n, err = p.s.Exec(renderSQL(src, all))
	} else {
		var h *sql.Prepared
		if h, err = p.handle(src); err == nil {
			n, err = h.Exec(all...)
		}
	}
	if err != nil {
		return 0, err
	}
	p.r.temps[p.r.t(target)] = struct{}{}
	return n, p.r.checkSpace()
}

// query runs a SELECT shape.
func (p *rcStmts) query(src string, args ...sql.Arg) (engine.Schema, []engine.Row, error) {
	if p.noPrep {
		return p.s.Query(renderSQL(src, args))
	}
	h, err := p.handle(src)
	if err != nil {
		return nil, nil, err
	}
	return h.Query(args...)
}

// renderSQL substitutes the bound arguments into the statement text as
// literals — the unprepared form the NoPrepare ablation measures.
func renderSQL(src string, args []sql.Arg) string {
	var b []byte
	for i := 0; i < len(src); i++ {
		if src[i] != '$' {
			b = append(b, src[i])
			continue
		}
		j := i + 1
		n := 0
		for j < len(src) && src[j] >= '0' && src[j] <= '9' {
			n = n*10 + int(src[j]-'0')
			j++
		}
		if j == i+1 || n < 1 || n > len(args) {
			b = append(b, src[i])
			continue
		}
		b = append(b, args[n-1].String()...)
		i = j - 1
	}
	return string(b)
}

func runRC(r *run, s *sql.Session, input string, opts Options) (*Result, error) {
	rng := xrand.New(opts.Seed)
	method := opts.RC.Method
	variant := opts.RC.Variant
	p := newRCStmts(r, s, opts.NoPrepare)

	// Setup (Appendix A): symmetrise the edge table.
	if _, err := p.create("rc_graph", rcSQLSetup, sql.Table(input)); err != nil {
		return nil, err
	}

	var stack []rcKeys
	round := 0
	for {
		round++
		if round > maxRounds {
			return nil, fmt.Errorf("ccalg: randomised contraction exceeded %d rounds", maxRounds)
		}
		r.beginRound()
		var keys rcKeys
		switch {
		case opts.RC.Deterministic:
			keys = rcKeys{a: 1, b: 0, key: 0}
		case opts.RC.NoRerandomise && len(stack) > 0:
			keys = stack[0]
		default:
			keys = drawKeys(rng)
		}
		stack = append(stack, keys)

		reps := fmt.Sprintf("rc_reps%d", round)
		var liveV int64
		var err error
		if method == FiniteFields || method == GFPrime {
			liveV, err = rcRepsAffine(p, method, reps, keys)
		} else {
			liveV, err = rcRepsArgmin(p, method, reps, keys)
		}
		if err != nil {
			return nil, err
		}

		// Contraction, split into the two queries of Appendix A so the
		// write-volume accounting matches the measured implementation.
		if _, err := p.create("rc_graph2", rcSQLContract1,
			sql.Table("rc_graph"), sql.Table(reps)); err != nil {
			return nil, err
		}
		if err := r.drop("rc_graph"); err != nil {
			return nil, err
		}
		size, err := p.create("rc_graph3", rcSQLContract2,
			sql.Table("rc_graph2"), sql.Table(reps))
		if err != nil {
			return nil, err
		}
		if err := r.drop("rc_graph2"); err != nil {
			return nil, err
		}
		if err := r.rename("rc_graph3", "rc_graph"); err != nil {
			return nil, err
		}

		// The Safe (Fig. 3) variant folds the round's representative table
		// into the running composition L immediately and drops it.
		if variant == Safe {
			if err := rcFoldSafe(p, method, round, keys); err != nil {
				return nil, err
			}
		}
		r.endRound(liveV, size)

		if size == 0 {
			break
		}
	}
	if err := r.drop("rc_graph"); err != nil {
		return nil, err
	}

	// Composition.
	switch variant {
	case Safe:
		if err := r.rename("rc_l", "rc_result"); err != nil {
			return nil, err
		}
	case Fast:
		if err := rcComposeFast(p, method, stack); err != nil {
			return nil, err
		}
	}

	labels, err := r.labelsOf("rc_result")
	if err != nil {
		return nil, err
	}
	if err := r.drop("rc_result"); err != nil {
		return nil, err
	}
	return &Result{Labels: labels, Rounds: len(stack), RoundLog: r.roundLog}, nil
}

// rcFn names the affine-map UDF of a GF method.
func rcFn(method Method) string {
	if method == GFPrime {
		return "axbp"
	}
	return "axplusb"
}

// rcRepsAffine computes the round's representatives with the
// min-relabelling optimisation (Sec. V-D): representatives are the
// h-transformed IDs, so a plain min aggregate suffices. It returns the
// representative-table cardinality — the round's live vertex count.
func rcRepsAffine(p *rcStmts, method Method, reps string, k rcKeys) (int64, error) {
	src := fmt.Sprintf(`
		create table $1 as
		select v1 v, least(%[1]s($2, v1, $3), min(%[1]s($2, v2, $3))) rep
		from $4 as g
		group by v1
		distributed by (v)`, rcFn(method))
	return p.create(reps, src, sql.Int(k.a), sql.Int(k.b), sql.Table("rc_graph"))
}

// rcRepsArgmin computes the round's representatives as
// rᵢ(v) = argmin_{w∈N[v]} h(w), the form the paper gives for the random
// reals and encryption methods (Sec. V-C). Representatives remain genuine
// vertex IDs. Ties on h are broken by the smaller vertex ID, which is
// still a valid representative choice (any r(v) ∈ N[v] preserves
// connectivity). It returns the representative-table cardinality — the
// round's live vertex count.
func rcRepsArgmin(p *rcStmts, method Method, reps string, k rcKeys) (int64, error) {
	h := "hrand"
	if method == Encryption {
		h = "enc"
	}
	// Closed-neighbourhood h values: one row (v, w, h(w)) per neighbour,
	// plus the self row (v, v, h(v)).
	nhSrc := fmt.Sprintf(`
		create table $1 as
		select g.v1 as v, g.v2 as w, %[1]s($2, g.v2) as h from $3 as g
		union all
		select g2.v1 as v, g2.v1 as w, %[1]s($2, g2.v1) as h from $3 as g2 group by g2.v1
		distributed by (v)`, h)
	if _, err := p.create("rc_nh", nhSrc, sql.Int(k.key), sql.Table("rc_graph")); err != nil {
		return 0, err
	}
	if _, err := p.create("rc_minh", rcSQLMinH, sql.Table("rc_nh")); err != nil {
		return 0, err
	}
	n, err := p.create(reps, rcSQLArgmin, sql.Table("rc_nh"), sql.Table("rc_minh"))
	if err != nil {
		return 0, err
	}
	return n, p.r.drop("rc_nh", "rc_minh")
}

// rcRelabelSQL renders the Fig. 3 / Fig. 4 composition shape: relabel is
// the fallback expression for labels that dropped out of the joined
// representative table.
func rcRelabelSQL(left, right, relabel string) string {
	return fmt.Sprintf(`
		create table $1 as
		select %[1]s.v as v, coalesce(%[2]s.rep, %[3]s) as rep
		from $2 as %[1]s left outer join $3 as %[2]s on (%[1]s.rep = %[2]s.v)
		distributed by (v)`, left, right, relabel)
}

// rcFoldSafe folds the round's representative table into the running
// composition table rc_l (Fig. 3's else branch) and drops it, keeping the
// space bound deterministic.
func rcFoldSafe(p *rcStmts, method Method, round int, k rcKeys) error {
	r := p.r
	reps := fmt.Sprintf("rc_reps%d", round)
	if round == 1 {
		return r.rename(reps, "rc_l")
	}
	// Vertices whose label dropped out of this round's computation must be
	// relabelled through hᵢ for the GF methods (their labels live in the
	// previous round's ID space); the argmin methods keep real IDs.
	var src string
	var args []sql.Arg
	switch method {
	case FiniteFields, GFPrime:
		src = rcRelabelSQL("l", "rr", rcFn(method)+"($4, l.rep, $5)")
		args = []sql.Arg{sql.Table("rc_l"), sql.Table(reps), sql.Int(k.a), sql.Int(k.b)}
	default:
		src = rcRelabelSQL("l", "rr", "l.rep")
		args = []sql.Arg{sql.Table("rc_l"), sql.Table(reps)}
	}
	if _, err := p.create("rc_tmp", src, args...); err != nil {
		return err
	}
	if err := r.drop("rc_l", reps); err != nil {
		return err
	}
	return r.rename("rc_tmp", "rc_l")
}

// rcComposeFast composes the stacked representative tables back to front
// (Fig. 4's second loop / Appendix A), accumulating the affine coefficient
// composition for the GF methods exactly as the paper's Python does.
func rcComposeFast(p *rcStmts, method Method, stack []rcKeys) error {
	r := p.r
	gfMethod := method == FiniteFields || method == GFPrime
	axbSrc := fmt.Sprintf("select %s($1, $2, $3) as r", rcFn(method))
	axb := func(a, x, b int64) (int64, error) {
		_, rows, err := p.query(axbSrc, sql.Int(a), sql.Int(x), sql.Int(b))
		if err != nil {
			return 0, fmt.Errorf("ccalg: %s self-query failed: %w", rcFn(method), err)
		}
		if len(rows) != 1 {
			return 0, fmt.Errorf("ccalg: %s self-query returned %d rows, want 1", rcFn(method), len(rows))
		}
		return rows[0][0].Int, nil
	}
	accA, accB := int64(1), int64(0)
	for i := len(stack) - 1; i >= 1; i-- {
		var src string
		var args []sql.Arg
		r1 := fmt.Sprintf("rc_reps%d", i)
		r2 := fmt.Sprintf("rc_reps%d", i+1)
		if gfMethod {
			k := stack[i]
			newA, err := axb(accA, k.a, 0)
			if err != nil {
				return err
			}
			newB, err := axb(accA, k.b, accB)
			if err != nil {
				return err
			}
			accA, accB = newA, newB
			src = rcRelabelSQL("r1", "r2", rcFn(method)+"($4, r1.rep, $5)")
			args = []sql.Arg{sql.Table(r1), sql.Table(r2), sql.Int(accA), sql.Int(accB)}
		} else {
			src = rcRelabelSQL("r1", "r2", "r1.rep")
			args = []sql.Arg{sql.Table(r1), sql.Table(r2)}
		}
		if _, err := p.create("rc_tmp", src, args...); err != nil {
			return err
		}
		if err := r.drop(r1, r2); err != nil {
			return err
		}
		if err := r.rename("rc_tmp", r1); err != nil {
			return err
		}
	}
	return r.rename("rc_reps1", "rc_result")
}
