package conformance

import (
	"testing"

	"dbcc/internal/ccalg"
	"dbcc/internal/datagen"
	"dbcc/internal/unionfind"
)

// TestConformance instantiates the shared driver-contract suite for every
// driver: the paper's five algorithms, the two frontier drivers and the
// adaptive planner all pass exactly the same checks.
func TestConformance(t *testing.T) {
	for _, info := range Drivers() {
		t.Run(info.Name, func(t *testing.T) {
			Suite(t, info)
		})
	}
}

// TestByName checks registry lookups for every driver the suite covers.
func TestByName(t *testing.T) {
	for _, want := range Drivers() {
		info, ok := ccalg.ByName(want.Name)
		if !ok || info.Run == nil || info.FullName != want.FullName {
			t.Errorf("ByName(%q) failed", want.Name)
		}
	}
	if _, ok := ccalg.ByName("nope"); ok {
		t.Error("ByName accepted an unknown algorithm")
	}
}

// TestComponentCountsMatchOracle cross-checks component counts on a larger
// graph for every driver.
func TestComponentCountsMatchOracle(t *testing.T) {
	g := datagen.Image2D(30, 30, 36, 1.1, 0.2, 13)
	want := unionfind.CountComponents(g)
	for _, info := range Drivers() {
		res, _ := RunOn(t, info.Run, g, ccalg.Options{Seed: 3})
		if got := res.Labels.NumComponents(); got != want {
			t.Errorf("%s found %d components, oracle says %d", info.Name, got, want)
		}
	}
}
