// Package conformance is the driver conformance harness: one table-driven
// suite every connected-components driver — current or future — must pass.
// A driver is conformant when it (1) labels every corpus graph equivalently
// to the Union/Find oracle, (2) is bit-for-bit deterministic for a fixed
// seed, (3) aborts within 100 ms of its context being cancelled, (4)
// produces fault-free labels under 5% injected task faults, (5) keeps peak
// accounted work memory within the engine budget, (6) emits a well-formed
// RoundStats stream (strictly increasing round numbers, queries in every
// round, OnRound mirroring RoundLog, and zero SQL parses after round one —
// the prepared-statement pin), (7) leaves no temp tables behind, on the
// success path and the space-limit failure path alike, and (8) enforces
// the input contract. Suite instantiates all of that for one driver;
// Drivers enumerates the registry plus the adaptive planner so the test
// files run every driver through the same code.
//
// The package also hosts the oracle-comparison helpers (RunOn,
// CheckCorrect, Canonicalize, SameLabelling) and the shared graph corpus
// that used to be duplicated across the ccalg test files.
package conformance

import (
	"context"
	"errors"
	"testing"
	"time"

	"dbcc/internal/ccalg"
	"dbcc/internal/datagen"
	"dbcc/internal/engine"
	"dbcc/internal/graph"
	"dbcc/internal/verify"
)

// Drivers returns every driver the suite covers: the registered algorithms
// (the paper's five plus the two frontier drivers) and the adaptive
// planner, which is registered separately because it delegates to them.
func Drivers() []ccalg.Info {
	return append(ccalg.Algorithms(), ccalg.AutoInfo())
}

// RunOn loads g into a fresh cluster and runs algorithm fn on it.
func RunOn(t *testing.T, fn ccalg.Func, g *graph.Graph, opts ccalg.Options) (*ccalg.Result, *engine.Cluster) {
	t.Helper()
	c := engine.NewCluster(engine.Options{Segments: 4})
	if err := graph.Load(c, "input", g); err != nil {
		t.Fatal(err)
	}
	res, err := fn(c, "input", opts)
	if err != nil {
		t.Fatalf("algorithm failed: %v", err)
	}
	return res, c
}

// CheckCorrect asserts the result labelling matches the Union/Find oracle.
func CheckCorrect(t *testing.T, g *graph.Graph, res *ccalg.Result) {
	t.Helper()
	if err := verify.Labelling(g, res.Labels); err != nil {
		t.Fatalf("incorrect labelling: %v", err)
	}
}

// Canonicalize maps every vertex to the smallest vertex of its component,
// the representative-independent form labellings are compared in.
func Canonicalize(l graph.Labelling) map[int64]int64 {
	minOf := map[int64]int64{}
	for v, lab := range l {
		if m, ok := minOf[lab]; !ok || v < m {
			minOf[lab] = v
		}
	}
	out := make(map[int64]int64, len(l))
	for v, lab := range l {
		out[v] = minOf[lab]
	}
	return out
}

// SameLabelling asserts two labellings are exactly equal (same
// representatives, not merely the same partition).
func SameLabelling(t *testing.T, ctxt string, got, want graph.Labelling) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: labelled %d vertices, want %d", ctxt, len(got), len(want))
	}
	for v, lab := range want {
		if got[v] != lab {
			t.Fatalf("%s: vertex %d labelled %d, want %d", ctxt, v, got[v], lab)
		}
	}
}

// FamilyGraphs is the corpus of structurally diverse generator families.
func FamilyGraphs() map[string]*graph.Graph {
	loops := graph.New(0)
	loops.AddEdge(1, 1)
	loops.AddEdge(2, 2)
	loops.AddEdge(5, 5)

	mixed := datagen.PathUnion(4, 60)
	mixed.AddEdge(1000, 1000) // isolated vertex as loop edge

	single := graph.New(0)
	single.AddEdge(42, 17)

	return map[string]*graph.Graph{
		"path":       datagen.Path(60),
		"cycle":      datagen.Cycle(37),
		"complete":   datagen.Complete(12),
		"star":       datagen.Star(25),
		"pathunion":  datagen.PathUnion(3, 40),
		"rmat":       datagen.RMAT(8, 300, 0.57, 0.19, 0.19, 0.05, 3),
		"image2d":    datagen.Image2D(15, 15, 10, 1.1, 0.2, 5),
		"video3d":    datagen.Video3D(6, 6, 4, 5, 1.1, 0.05, 5),
		"bitcoin":    datagen.Bitcoin(100, 5),
		"friendster": datagen.Friendster(80, 3, 5),
		"erdos":      datagen.ErdosRenyi(50, 80, 9),
		"loops-only": loops,
		"mixed":      mixed,
		"one-edge":   single,
	}
}

// EdgeCaseGraphs are adversarial and degenerate inputs every algorithm
// must handle: negative vertex IDs (legal 64-bit values the generators
// never emit but input files may), duplicate and parallel edges, loops
// mixed with real edges, extreme ID magnitudes, and a vertex adjacent to
// everything.
func EdgeCaseGraphs() map[string]*graph.Graph {
	negative := graph.New(0)
	negative.AddEdge(-5, -9)
	negative.AddEdge(-9, 3)
	negative.AddEdge(7, 7)

	dupes := graph.New(0)
	for i := 0; i < 5; i++ {
		dupes.AddEdge(1, 2) // parallel edges
		dupes.AddEdge(2, 1) // and the reversed duplicates
	}
	dupes.AddEdge(2, 3)

	loopsAndEdges := graph.New(0)
	loopsAndEdges.AddEdge(1, 1) // loop on a vertex that also has real edges
	loopsAndEdges.AddEdge(1, 2)
	loopsAndEdges.AddEdge(3, 3)

	extremes := graph.New(0)
	extremes.AddEdge(0, 9223372036854775807)
	extremes.AddEdge(-9223372036854775808, 0)
	extremes.AddEdge(42, 42)

	hub := graph.New(0)
	for i := int64(1); i <= 40; i++ {
		hub.AddEdge(0, i)
	}

	twoVertexLoop := graph.New(0)
	twoVertexLoop.AddEdge(5, 5)
	twoVertexLoop.AddEdge(5, 5)

	return map[string]*graph.Graph{
		"negative-ids":    negative,
		"duplicate-edges": dupes,
		"loops-and-edges": loopsAndEdges,
		"extreme-ids":     extremes,
		"hub":             hub,
		"repeated-loop":   twoVertexLoop,
	}
}

// Graphs is the full conformance corpus: the generator families united
// with the adversarial edge cases. Names are disjoint by construction.
func Graphs() map[string]*graph.Graph {
	out := FamilyGraphs()
	for name, g := range EdgeCaseGraphs() {
		out[name] = g
	}
	return out
}

// faultyCluster builds a cluster with 5% injected task faults (and a low
// spill-write fault rate), retried aggressively so runs always finish.
func faultyCluster(budget int64) *engine.Cluster {
	return engine.NewCluster(engine.Options{
		Segments:     4,
		MemoryBudget: budget,
		FaultInjector: engine.NewFaultInjector(engine.FaultConfig{
			Seed:             1234,
			FailureRate:      0.05,
			SpillFailureRate: 0.0002,
		}),
		RetryBackoff:   time.Microsecond,
		MaxTaskRetries: 10,
		RetryBudget:    10000,
	})
}

// Suite runs the full conformance suite against one driver. Each clause of
// the driver contract is a named subtest so a failure pinpoints the broken
// guarantee.
func Suite(t *testing.T, info ccalg.Info) {
	t.Run("oracle", func(t *testing.T) {
		for name, g := range Graphs() {
			t.Run(name, func(t *testing.T) {
				res, _ := RunOn(t, info.Run, g, ccalg.Options{Seed: 7})
				CheckCorrect(t, g, res)
			})
		}
	})

	t.Run("determinism", func(t *testing.T) {
		g := datagen.Bitcoin(150, 9)
		a, _ := RunOn(t, info.Run, g, ccalg.Options{Seed: 5})
		b, _ := RunOn(t, info.Run, g, ccalg.Options{Seed: 5})
		if a.Rounds != b.Rounds {
			t.Fatalf("rounds differ across identical runs: %d vs %d", a.Rounds, b.Rounds)
		}
		SameLabelling(t, "second run", b.Labels, a.Labels)
		if len(a.RoundLog) != len(b.RoundLog) {
			t.Fatalf("round logs differ in length: %d vs %d", len(a.RoundLog), len(b.RoundLog))
		}
		for i := range a.RoundLog {
			if a.RoundLog[i] != b.RoundLog[i] {
				t.Fatalf("round %d stats differ: %+v vs %+v", i+1, a.RoundLog[i], b.RoundLog[i])
			}
		}
	})

	t.Run("cancel", func(t *testing.T) {
		c := engine.NewCluster(engine.Options{Segments: 4})
		// A graph large enough that the run is still going when cancel
		// fires mid-flight.
		if err := graph.Load(c, "input", datagen.Bitcoin(5000, 7)); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		done := make(chan error, 1)
		go func() {
			_, err := info.Run(c, "input", ccalg.Options{Seed: 1, Context: ctx})
			done <- err
		}()
		for i := 0; c.Stats().Queries < 3; i++ {
			if i > 2000 {
				t.Fatal("run never started issuing queries")
			}
			time.Sleep(time.Millisecond)
		}
		cancel()
		t0 := time.Now()
		select {
		case err := <-done:
			if elapsed := time.Since(t0); elapsed > 100*time.Millisecond {
				t.Fatalf("cancelled run took %v to return, want <100ms", elapsed)
			}
			if err == nil {
				t.Fatal("cancelled run returned no error")
			}
			var re *ccalg.RoundError
			if !errors.As(err, &re) {
				t.Fatalf("cancelled run returned %T (%v), want *ccalg.RoundError", err, err)
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelled run's error does not unwrap to context.Canceled: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("cancelled run did not return within 5s")
		}
	})

	t.Run("faults", func(t *testing.T) {
		g := datagen.Bitcoin(150, 9)
		clean, _ := RunOn(t, info.Run, g, ccalg.Options{Seed: 5})
		CheckCorrect(t, g, clean)
		c := faultyCluster(0)
		if err := graph.Load(c, "input", g); err != nil {
			t.Fatal(err)
		}
		res, err := info.Run(c, "input", ccalg.Options{Seed: 5})
		if err != nil {
			t.Fatalf("run under 5%% faults failed: %v", err)
		}
		// Retries must be transparent: not merely a correct labelling but
		// the identical one.
		SameLabelling(t, "faulty run vs clean run", res.Labels, clean.Labels)
	})

	t.Run("budget", func(t *testing.T) {
		const budget = 8 << 10
		g := datagen.ErdosRenyi(120, 260, 5)
		unbounded, _ := RunOn(t, info.Run, g, ccalg.Options{Seed: 5})
		c := engine.NewCluster(engine.Options{Segments: 4, MemoryBudget: budget})
		if err := graph.Load(c, "input", g); err != nil {
			t.Fatal(err)
		}
		res, err := info.Run(c, "input", ccalg.Options{Seed: 5})
		if err != nil {
			t.Fatalf("run under %d-byte budget failed: %v", budget, err)
		}
		if peak := c.Stats().PeakWorkBytes; peak > budget {
			t.Fatalf("peak accounted work memory %d exceeds the %d-byte budget", peak, budget)
		}
		// Spilling must be invisible in the output.
		SameLabelling(t, "budgeted run vs unbounded run", res.Labels, unbounded.Labels)
	})

	t.Run("roundstats", func(t *testing.T) {
		g := datagen.Bitcoin(150, 9)
		var streamed []ccalg.RoundStats
		opts := ccalg.Options{Seed: 13, OnRound: func(rs ccalg.RoundStats) { streamed = append(streamed, rs) }}
		res, _ := RunOn(t, info.Run, g, opts)
		CheckCorrect(t, g, res)
		if len(res.RoundLog) == 0 {
			t.Fatal("no round log")
		}
		if len(res.RoundLog) != res.Rounds {
			t.Fatalf("round log has %d entries, Rounds = %d", len(res.RoundLog), res.Rounds)
		}
		if len(streamed) != len(res.RoundLog) {
			t.Fatalf("OnRound streamed %d entries, log has %d", len(streamed), len(res.RoundLog))
		}
		for i, rs := range res.RoundLog {
			if rs != streamed[i] {
				t.Fatalf("round %d: streamed %+v, logged %+v", i+1, streamed[i], rs)
			}
			if rs.Round != i+1 {
				t.Fatalf("round %d numbered %d: round numbers must increase strictly from 1", i+1, rs.Round)
			}
			if rs.Queries <= 0 {
				t.Fatalf("round %d issued %d queries", rs.Round, rs.Queries)
			}
			// The prepared-statement pin: with the default options, round
			// loops run prepared (SQL drivers) or as reinstantiated plan
			// templates (Plan-API drivers) — either way nothing is parsed
			// after the first round.
			if rs.Round > 1 && rs.Parses != 0 {
				t.Fatalf("round %d parsed %d statements; rounds after the first must be parse-free", rs.Round, rs.Parses)
			}
		}
	})

	t.Run("cleanup", func(t *testing.T) {
		g := datagen.ErdosRenyi(40, 60, 4)
		c := engine.NewCluster(engine.Options{Segments: 3})
		if err := graph.Load(c, "input", g); err != nil {
			t.Fatal(err)
		}
		if _, err := info.Run(c, "input", ccalg.Options{Seed: 2}); err != nil {
			t.Fatal(err)
		}
		if names := c.TableNames(); len(names) != 1 || names[0] != "input" {
			t.Fatalf("run left tables behind: %v", names)
		}
	})

	t.Run("space-limit", func(t *testing.T) {
		g := datagen.Path(2000)
		c := engine.NewCluster(engine.Options{Segments: 3})
		if err := graph.Load(c, "input", g); err != nil {
			t.Fatal(err)
		}
		_, err := info.Run(c, "input", ccalg.Options{Seed: 2, MaxLiveBytes: 1})
		if !errors.Is(err, ccalg.ErrSpaceLimit) {
			t.Fatalf("run under a 1-byte space budget: err = %v, want ErrSpaceLimit", err)
		}
		if names := c.TableNames(); len(names) != 1 || names[0] != "input" {
			t.Fatalf("tables left behind after the space-limit failure: %v", names)
		}
	})

	t.Run("empty", func(t *testing.T) {
		c := engine.NewCluster(engine.Options{Segments: 2})
		if err := graph.Load(c, "input", graph.New(0)); err != nil {
			t.Fatal(err)
		}
		res, err := info.Run(c, "input", ccalg.Options{Seed: 1})
		if err != nil {
			t.Fatalf("failed on empty input: %v", err)
		}
		if len(res.Labels) != 0 {
			t.Fatalf("labelled %d vertices of an empty graph", len(res.Labels))
		}
	})

	t.Run("validation", func(t *testing.T) {
		c := engine.NewCluster(engine.Options{Segments: 2})
		if _, err := c.CreateTable("bad", engine.Schema{"a", "b", "c"}, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := info.Run(c, "missing", ccalg.Options{}); err == nil {
			t.Error("accepted a missing input table")
		}
		if _, err := info.Run(c, "bad", ccalg.Options{}); err == nil {
			t.Error("accepted a three-column input table")
		}
	})
}
