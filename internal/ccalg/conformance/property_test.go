package conformance

import (
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"dbcc/internal/ccalg"
	"dbcc/internal/datagen"
	"dbcc/internal/engine"
	"dbcc/internal/graph"
	"dbcc/internal/unionfind"
	"dbcc/internal/xrand"
)

// Property-based differential suite: every driver — the paper's five, the
// two frontier drivers and the adaptive planner — on randomly drawn graphs
// from six structural families, must produce the same canonical labelling
// as the Union/Find oracle — and the *identical* labelling regardless of
// memory budget (spilling kernels are bit-identical), of injected faults
// (retries are transparent), of the bloom-join / operator-fusion execution
// knobs (pruning and fusion are pure optimizations), and of whether
// round-loop statements run prepared through the plan cache or as freshly
// parsed text. The budget and fault axes are exactly the conditions the
// ICDE'20 evaluation never varies: the paper's correctness claims are
// per-algorithm, so any divergence here is an engine bug, not an algorithm
// property. For the adaptive planner the matrix additionally pins that
// planning decisions are a pure function of the graph: were a decision to
// depend on an engine knob, the cells would diverge.

// propertyCells is the execution matrix: each cell is one cluster
// configuration every algorithm × family pair must label identically
// under. The budget axis spans unbounded, tight enough that per-round
// joins and folds spill, and pathologically small so every kernel takes
// its spilling path; the knob axes disable bloom-join pruning and operator
// fusion; the fault cells run with injected segment faults and retries.
// Knob coverage concentrates where the code paths differ most: all four
// knob combinations on the unbounded cell, and knob-off-under-faults on
// the spilling cells. The no-prepare cells execute the drivers' round
// loops through literal SQL text instead of prepared statements, so
// substitute-and-replan and instantiate-from-template must agree bit for
// bit — once under no pressure and once with spilling and faults layered
// on top.
var propertyCells = []struct {
	name      string
	budget    int64
	faulty    bool
	bloomOff  bool
	fusionOff bool
	noPrepare bool
}{
	{"unbounded", 0, false, false, false, false},
	{"unbounded/no-bloom", 0, false, true, false, false},
	{"unbounded/no-fusion", 0, false, false, true, false},
	{"unbounded/plain", 0, false, true, true, false},
	{"unbounded/no-prepare", 0, false, false, false, true},
	{"tight", 8 << 10, false, false, false, false},
	{"tight/faults", 8 << 10, true, false, false, false},
	{"tight/plain/faults", 8 << 10, true, true, true, false},
	{"pathological", 1 << 10, false, false, false, false},
	{"pathological/faults", 1 << 10, true, false, false, false},
	{"pathological/no-bloom/faults", 1 << 10, true, true, false, false},
	{"pathological/no-prepare/faults", 1 << 10, true, false, false, true},
}

// randomFamilies draws one graph per structural family from rng. Isolated
// vertices follow the repo convention of self-loop edges (the engine's
// input is an edge table, so a vertex exists only by appearing in one).
func randomFamilies(rng *xrand.Rand) map[string]*graph.Graph {
	fams := map[string]*graph.Graph{}

	n := 30 + int(rng.Uint64n(50))
	fams["erdos"] = datagen.ErdosRenyi(n, n+int(rng.Uint64n(uint64(2*n))), rng.Uint64())

	fams["star"] = datagen.Star(10 + int(rng.Uint64n(40)))
	fams["path"] = datagen.Path(10 + int(rng.Uint64n(30)))

	// Cliques plus bridges: k dense blobs, then a few random cross-clique
	// bridge edges merging some of them.
	cliques := graph.New(0)
	k := 3 + int(rng.Uint64n(4))
	size := 4 + int(rng.Uint64n(5))
	for c := 0; c < k; c++ {
		base := int64(c * 1000)
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				cliques.AddEdge(base+int64(i), base+int64(j))
			}
		}
	}
	for b := 0; b < k/2; b++ {
		from, to := rng.Uint64n(uint64(k)), rng.Uint64n(uint64(k))
		cliques.AddEdge(int64(from*1000)+int64(rng.Uint64n(uint64(size))),
			int64(to*1000)+int64(rng.Uint64n(uint64(size))))
	}
	fams["cliques-bridges"] = cliques

	// Self-loops and duplicate edges: a small vertex universe hit with
	// many redundant edges, loops included.
	loops := graph.New(0)
	verts := 12 + int(rng.Uint64n(12))
	for i := 0; i < 6*verts; i++ {
		v := int64(rng.Uint64n(uint64(verts)))
		w := int64(rng.Uint64n(uint64(verts)))
		if rng.Uint64n(5) == 0 {
			w = v // self-loop
		}
		loops.AddEdge(v, w)
	}
	fams["loops-dups"] = loops

	// Isolated vertices: a sparse graph plus lone vertices as self-loops.
	iso := datagen.ErdosRenyi(20, 12, rng.Uint64())
	for i := 0; i < 8; i++ {
		v := int64(100000 + rng.Uint64n(1000))
		iso.AddEdge(v, v)
	}
	fams["isolated"] = iso

	return fams
}

// propertyCluster builds a cluster for one (budget, faults, knobs) cell.
func propertyCluster(budget int64, faulty, bloomOff, fusionOff bool) *engine.Cluster {
	opts := engine.Options{
		Segments:              4,
		MemoryBudget:          budget,
		DisableBloomJoin:      bloomOff,
		DisableOperatorFusion: fusionOff,
	}
	if faulty {
		// 5% of task attempts die outright; spill writes fail at a much
		// lower per-write rate because one spilling kernel can perform
		// hundreds of writes per attempt under the pathological budget, and
		// the per-attempt failure probability must stay inside what the
		// retry policy absorbs.
		opts.FaultInjector = engine.NewFaultInjector(engine.FaultConfig{
			Seed:             1234,
			FailureRate:      0.05,
			SpillFailureRate: 0.0002,
		})
		opts.RetryBackoff = time.Microsecond
		opts.MaxTaskRetries = 10
		opts.RetryBudget = 10000
	}
	return engine.NewCluster(opts)
}

// TestPropertyAllAlgorithmsBudgetsFaults is the suite driver: per trial it
// draws one graph per family and checks, for every driver, that the
// labelling (a) canonicalizes to the Union/Find oracle's and (b) is
// bit-identical across every cell of the budget × fault × knob matrix.
func TestPropertyAllAlgorithmsBudgetsFaults(t *testing.T) {
	// One trial is ~580 algorithm runs (8 drivers × 6 families × 12
	// matrix cells); DBCC_PROPERTY_TRIALS raises the count for soak runs
	// without inflating every CI pass.
	trials := 1
	if n, err := strconv.Atoi(os.Getenv("DBCC_PROPERTY_TRIALS")); err == nil && n > 0 {
		trials = n
	}
	rng := xrand.New(20200420) // ICDE'20, why not
	for trial := 0; trial < trials; trial++ {
		for fam, g := range randomFamilies(rng.Split()) {
			oracle := Canonicalize(unionfind.Components(g))
			for _, info := range Drivers() {
				var ref graph.Labelling
				for _, cell := range propertyCells {
					ctxt := fmt.Sprintf("trial %d %s/%s cell=%s faults=%v",
						trial, info.Name, fam, cell.name, cell.faulty)
					c := propertyCluster(cell.budget, cell.faulty, cell.bloomOff, cell.fusionOff)
					if err := graph.Load(c, "input", g); err != nil {
						t.Fatal(err)
					}
					res, err := info.Run(c, "input", ccalg.Options{Seed: uint64(trial) + 7, NoPrepare: cell.noPrepare})
					if err != nil {
						t.Fatalf("%s: %v", ctxt, err)
					}
					canon := Canonicalize(res.Labels)
					if len(canon) != len(oracle) {
						t.Fatalf("%s: labelled %d vertices, oracle has %d",
							ctxt, len(canon), len(oracle))
					}
					for v, rep := range oracle {
						if canon[v] != rep {
							t.Fatalf("%s: vertex %d canonical label %d, oracle says %d",
								ctxt, v, canon[v], rep)
						}
					}
					if ref == nil {
						ref = res.Labels
					} else {
						SameLabelling(t, ctxt+" (vs first cell)", res.Labels, ref)
					}
					c.Close()
				}
			}
		}
	}
}

// TestPropertyBudgetedRunsSpill pins that the tight-budget cells of the
// property suite genuinely exercise the spilling paths — otherwise the
// budget axis would be vacuous.
func TestPropertyBudgetedRunsSpill(t *testing.T) {
	g := datagen.ErdosRenyi(120, 260, 5)
	var spilledSomewhere bool
	for _, info := range Drivers() {
		c := propertyCluster(1<<10, false, false, false)
		if err := graph.Load(c, "input", g); err != nil {
			t.Fatal(err)
		}
		if _, err := info.Run(c, "input", ccalg.Options{Seed: 5}); err != nil {
			t.Fatalf("%s: %v", info.Name, err)
		}
		if s := c.Stats(); s.SpilledBytes > 0 {
			spilledSomewhere = true
		}
		c.Close()
	}
	if !spilledSomewhere {
		t.Fatal("no algorithm spilled under the pathological budget; the property suite's budget axis is vacuous")
	}
}
