package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"dbcc/internal/wire"
)

// AdmissionConfig bounds how much statement concurrency each tenant may
// claim from the shared worker pool and memory budget underneath.
//
// The engine already bounds physical resources (Options.Workers caps
// running segment tasks, Options.MemoryBudget caps per-statement working
// memory); admission control bounds the *logical* load on top of them —
// how many statements may hold those resources at once per tenant, and
// how many more may wait. Beyond that the server sheds with the typed
// 429-style overload error instead of letting queues grow without bound.
type AdmissionConfig struct {
	// TenantStatements is the number of statements one tenant may have
	// executing simultaneously; 0 selects the default of 4.
	TenantStatements int
	// TenantQueue is how many statements beyond the cap may wait in the
	// tenant's admission queue; 0 selects the default of 16, negative
	// disables queueing (immediate shed at the cap).
	TenantQueue int
	// QueueTimeout bounds how long a queued statement waits for a slot
	// before it is shed with an overload error; 0 selects the default of
	// 5s.
	QueueTimeout time.Duration
}

func (c AdmissionConfig) withDefaults() AdmissionConfig {
	if c.TenantStatements <= 0 {
		c.TenantStatements = 4
	}
	if c.TenantQueue == 0 {
		c.TenantQueue = 16
	}
	if c.TenantQueue < 0 {
		c.TenantQueue = 0
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = 5 * time.Second
	}
	return c
}

// OverloadError is the typed admission rejection — the wire protocol's
// CodeOverloaded (429) as a Go error. Timeout distinguishes a statement
// shed after waiting out the queue timeout from one shed immediately
// because the queue itself was full.
type OverloadError struct {
	Tenant  string
	Timeout bool
}

// Error implements the error interface.
func (e *OverloadError) Error() string {
	if e.Timeout {
		return fmt.Sprintf("server: tenant %q overloaded: statement waited out the admission queue timeout", e.Tenant)
	}
	return fmt.Sprintf("server: tenant %q overloaded: statement cap reached and admission queue full", e.Tenant)
}

// ErrDraining rejects statements arriving after graceful drain began.
var ErrDraining = errors.New("server: draining; no new statements accepted")

// admission is the controller: one gate per tenant, so one tenant's
// flood can only fill its own queue — it cannot consume another tenant's
// statement slots or queue positions.
type admission struct {
	cfg     AdmissionConfig
	drainCh <-chan struct{}

	mu      sync.Mutex
	tenants map[string]*tenantGate
	queued  int64 // statements waiting right now, all tenants
	peak    int64 // highest simultaneous queued, all tenants
}

// tenantGate is one tenant's slot semaphore plus its accounting. The
// counters are guarded by mu; sem carries the slot ownership.
type tenantGate struct {
	sem chan struct{}

	mu          sync.Mutex
	active      int64
	admitted    int64
	queued      int64
	peakQueued  int64
	queuedTotal int64
	queueNanos  int64
	shedFull    int64
	shedTimeout int64
}

func newAdmission(cfg AdmissionConfig, drainCh <-chan struct{}) *admission {
	return &admission{
		cfg:     cfg.withDefaults(),
		drainCh: drainCh,
		tenants: make(map[string]*tenantGate),
	}
}

// gate returns (creating if needed) the named tenant's gate.
func (a *admission) gate(tenant string) *tenantGate {
	a.mu.Lock()
	defer a.mu.Unlock()
	g, ok := a.tenants[tenant]
	if !ok {
		g = &tenantGate{sem: make(chan struct{}, a.cfg.TenantStatements)}
		a.tenants[tenant] = g
	}
	return g
}

// acquire admits one statement for the tenant, blocking in the bounded
// queue when the tenant is at its cap. It returns the time spent queued
// and a release function, or the typed rejection: *OverloadError when the
// queue is full or the wait times out, ErrDraining when graceful drain
// began, ctx.Err() when the caller's context ends first.
func (a *admission) acquire(ctx context.Context, tenant string) (time.Duration, func(), error) {
	g := a.gate(tenant)

	// Fast path: a slot is free, no queueing.
	select {
	case g.sem <- struct{}{}:
		g.mu.Lock()
		g.active++
		g.admitted++
		g.mu.Unlock()
		return 0, func() { a.release(g) }, nil
	default:
	}

	// Queue path: claim a bounded queue position or shed immediately.
	g.mu.Lock()
	if g.queued >= int64(a.cfg.TenantQueue) {
		g.shedFull++
		g.mu.Unlock()
		return 0, nil, &OverloadError{Tenant: tenant}
	}
	g.queued++
	g.queuedTotal++
	if g.queued > g.peakQueued {
		g.peakQueued = g.queued
	}
	g.mu.Unlock()
	a.noteQueued(+1)

	start := time.Now()
	timer := time.NewTimer(a.cfg.QueueTimeout)
	defer timer.Stop()
	leaveQueue := func() {
		g.mu.Lock()
		g.queued--
		g.mu.Unlock()
		a.noteQueued(-1)
	}

	select {
	case g.sem <- struct{}{}:
		wait := time.Since(start)
		leaveQueue()
		g.mu.Lock()
		g.active++
		g.admitted++
		g.queueNanos += wait.Nanoseconds()
		g.mu.Unlock()
		return wait, func() { a.release(g) }, nil
	case <-timer.C:
		leaveQueue()
		g.mu.Lock()
		g.shedTimeout++
		g.mu.Unlock()
		return 0, nil, &OverloadError{Tenant: tenant, Timeout: true}
	case <-a.drainCh:
		leaveQueue()
		return 0, nil, ErrDraining
	case <-ctx.Done():
		leaveQueue()
		return 0, nil, ctx.Err()
	}
}

func (a *admission) release(g *tenantGate) {
	<-g.sem
	g.mu.Lock()
	g.active--
	g.mu.Unlock()
}

func (a *admission) noteQueued(delta int64) {
	a.mu.Lock()
	a.queued += delta
	if a.queued > a.peak {
		a.peak = a.queued
	}
	a.mu.Unlock()
}

// snapshot fills the admission slice of a ServerStats.
func (a *admission) snapshot(st *wire.ServerStats) {
	a.mu.Lock()
	st.QueueDepth = a.queued
	st.PeakQueueDepth = a.peak
	gates := make(map[string]*tenantGate, len(a.tenants))
	for name, g := range a.tenants {
		gates[name] = g
	}
	a.mu.Unlock()

	st.Tenants = make(map[string]wire.TenantStats, len(gates))
	for name, g := range gates {
		g.mu.Lock()
		ts := wire.TenantStats{
			Admitted:      g.admitted,
			Active:        g.active,
			Queued:        g.queued,
			QueuedTotal:   g.queuedTotal,
			PeakQueued:    g.peakQueued,
			QueueNanos:    g.queueNanos,
			ShedQueueFull: g.shedFull,
			ShedTimeout:   g.shedTimeout,
		}
		g.mu.Unlock()
		st.Tenants[name] = ts
		st.Shed += ts.ShedQueueFull + ts.ShedTimeout
	}
}
