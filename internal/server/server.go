// Package server implements ccserverd's network layer: a multi-tenant
// statement server speaking the length-prefixed protocol of package wire
// on top of the embedded MPP cluster.
//
// Each accepted connection authenticates once (Hello: tenant + optional
// token) and becomes a statement loop. Tenants get private catalogs by
// layering the SQL layer's namespace mechanism: every connection of
// tenant T resolves and creates tables under the physical prefix
// "tn_T_", so two tenants' "edges" tables never collide while tables
// created by one of T's connections are visible to all of them.
//
// Admission control (see admission.go) sits between the socket and the
// engine: per-tenant concurrent-statement caps with a bounded wait
// queue, queue-time surfaced in both the per-statement reply and the
// stats message, and 429-style overload errors once queueing is
// exhausted. Graceful drain (Shutdown) stops accepting connections,
// rejects new statements with 503, lets in-flight statements finish,
// then closes the engine — releasing the spill root like any in-process
// Cluster.Close caller.
package server

import (
	"bufio"
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dbcc"
	"dbcc/internal/ccalg"
	"dbcc/internal/engine"
	"dbcc/internal/sql"
	"dbcc/internal/wire"
)

// tenantPrefix namespaces tenant catalogs; distinct from the session
// ("tmpN_") and per-run ("runN_") temp prefixes already in use.
const tenantPrefix = "tn_"

// handshakeTimeout bounds how long an accepted connection may dawdle
// before sending its Hello.
const handshakeTimeout = 30 * time.Second

// rowsPerChunk bounds one Rows frame of a streamed result set.
const rowsPerChunk = 512

// maxPreparedPerConn bounds how many prepared statements one connection
// may hold open; each pins a parsed AST (the plans live in the engine's
// bounded cache, not here).
const maxPreparedPerConn = 64

// Config configures a Server.
type Config struct {
	// Addr is the TCP listen address, e.g. "127.0.0.1:7744"; ":0" picks a
	// free port (see Addr after Listen).
	Addr string
	// DB configures the embedded cluster the server fronts — segments,
	// worker-pool bound, per-statement memory budget, query timeout,
	// fault injection; exactly the knobs an in-process dbcc.Open takes.
	DB dbcc.Config
	// Admission bounds per-tenant statement concurrency and queueing.
	Admission AdmissionConfig
	// AuthToken, when non-empty, is the shared secret every Hello must
	// present. Empty disables authentication (trusted networks, tests).
	AuthToken string
}

// Server is a running ccserverd instance.
type Server struct {
	cfg Config
	db  *dbcc.DB
	adm *admission

	baseCtx context.Context // statement execution context; cancelled on forced shutdown
	cancel  context.CancelFunc
	drainCh chan struct{}

	ln net.Listener

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	connWG sync.WaitGroup

	inflightMu sync.Mutex // guards draining vs stmtWG.Add
	draining   bool
	stmtWG     sync.WaitGroup

	connsTotal    atomic.Int64
	statements    atomic.Int64
	failed        atomic.Int64
	prepares      atomic.Int64
	watchers      atomic.Int64 // live component-index subscriptions
	watchersTotal atomic.Int64
	notifies      atomic.Int64 // Notify frames written across all subscriptions
}

// New creates a server (and its embedded cluster); call Listen then
// Serve to start fielding connections.
func New(cfg Config) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		db:      dbcc.Open(cfg.DB),
		baseCtx: ctx,
		cancel:  cancel,
		drainCh: make(chan struct{}),
		conns:   make(map[net.Conn]struct{}),
	}
	s.adm = newAdmission(cfg.Admission, s.drainCh)
	return s
}

// DB exposes the embedded database (tests preload shared tables and
// inspect the cluster through it).
func (s *Server) DB() *dbcc.DB { return s.db }

// Listen binds the configured address.
func (s *Server) Listen() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	return nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string {
	if s.ln == nil {
		return s.cfg.Addr
	}
	return s.ln.Addr().String()
}

// Serve accepts connections until Shutdown closes the listener. It
// returns nil on a drain-initiated stop.
func (s *Server) Serve() error {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.drainCh:
				return nil
			default:
				return err
			}
		}
		s.connMu.Lock()
		select {
		case <-s.drainCh:
			// Accept raced Shutdown: the close loop over s.conns may
			// already have run, so registering now would leave a
			// connection nobody closes and hang connWG.Wait forever.
			s.connMu.Unlock()
			conn.Close()
			continue
		default:
		}
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		s.connsTotal.Add(1)
		s.connWG.Add(1)
		go s.handleConn(conn)
	}
}

// Shutdown drains the server gracefully: stop accepting connections,
// reject statements that arrive from now on with CodeUnavailable, wait
// for in-flight statements to finish, close the connections, and release
// the engine's disk resources (Cluster.Close — the spill root and any
// partition files under it are removed). When ctx expires before the
// in-flight statements finish, they are cancelled through the engine's
// context plumbing (prompt abort, no goroutine leaks) and ctx's error is
// returned; a clean drain returns nil.
func (s *Server) Shutdown(ctx context.Context) error {
	s.inflightMu.Lock()
	if s.draining {
		s.inflightMu.Unlock()
		return errors.New("server: already draining")
	}
	s.draining = true
	close(s.drainCh)
	s.inflightMu.Unlock()

	if s.ln != nil {
		s.ln.Close()
	}

	done := make(chan struct{})
	go func() {
		s.stmtWG.Wait()
		close(done)
	}()
	var drainErr error
	select {
	case <-done:
	case <-ctx.Done():
		drainErr = ctx.Err()
		s.cancel() // abort the stragglers between operators / segment tasks
		<-done
	}

	s.connMu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.connMu.Unlock()
	s.connWG.Wait()
	s.cancel()

	if err := s.db.Close(); err != nil && drainErr == nil {
		drainErr = err
	}
	return drainErr
}

// Stats snapshots the server's observability counters.
func (s *Server) Stats() wire.ServerStats {
	s.inflightMu.Lock()
	draining := s.draining
	s.inflightMu.Unlock()
	s.connMu.Lock()
	conns := int64(len(s.conns))
	s.connMu.Unlock()
	cst := s.db.Cluster().Stats()
	st := wire.ServerStats{
		Draining:               draining,
		Conns:                  conns,
		ConnsTotal:             s.connsTotal.Load(),
		Statements:             s.statements.Load(),
		Failed:                 s.failed.Load(),
		Prepared:               s.prepares.Load(),
		Parses:                 cst.Parses,
		PlanCacheHits:          cst.PlanCacheHits,
		PlanCacheMisses:        cst.PlanCacheMisses,
		PlanCacheInvalidations: cst.PlanCacheInvalidations,
		PlanCacheEntries:       int64(s.db.Cluster().PlanCacheLen()),
		Watchers:               s.watchers.Load(),
		WatchersTotal:          s.watchersTotal.Load(),
		Notifies:               s.notifies.Load(),
		IndexLabelsTouched:     cst.IndexLabelsTouched,
		IndexMerges:            cst.IndexMerges,
		IndexRebuilds:          cst.IndexRebuilds,
	}
	s.adm.snapshot(&st)
	return st
}

// beginStmt registers one in-flight statement unless drain has begun.
func (s *Server) beginStmt() bool {
	s.inflightMu.Lock()
	defer s.inflightMu.Unlock()
	if s.draining {
		return false
	}
	s.stmtWG.Add(1)
	return true
}

// validTenant accepts short alphanumeric tenant names. Underscores are
// rejected because the physical prefix is the textual concatenation
// tn_<tenant>_: if tenant "a_b" existed, tenant "a" naming "b_edges"
// would resolve to tn_a_b_edges — tenant "a_b"'s "edges" table — so one
// tenant's namespace must never be a prefix of another's. Restricting
// names to [A-Za-z0-9] makes '_' a reserved separator and every
// namespace prefix-free.
func validTenant(name string) bool {
	if len(name) == 0 || len(name) > 32 {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		default:
			return false
		}
	}
	return true
}

// conn wraps one connection's buffered streams and its prepared
// statements. A connection carries one statement at a time (the loop in
// handleConn is sequential), so the prepared map needs no lock.
type connState struct {
	s        *Server
	bw       *bufio.Writer
	tenant   string
	sess     *sql.Session
	prepared map[uint32]*sql.Prepared
	prepID   uint32
}

func (s *Server) handleConn(conn net.Conn) {
	defer s.connWG.Done()
	defer func() {
		s.connMu.Lock()
		delete(s.conns, conn)
		s.connMu.Unlock()
		conn.Close()
	}()

	br := bufio.NewReader(conn)
	cs := &connState{s: s, bw: bufio.NewWriter(conn)}

	// Handshake: exactly one Hello, within the deadline.
	conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
	f, err := wire.ReadFrame(br)
	if err != nil {
		return
	}
	conn.SetReadDeadline(time.Time{})
	if f.Type != wire.TypeHello {
		cs.sendError(wire.CodeParse, "expected Hello frame")
		return
	}
	h, err := wire.DecodeHello(f.Payload)
	if err != nil {
		cs.sendError(wire.CodeParse, err.Error())
		return
	}
	if h.Version != wire.ProtocolVersion {
		cs.sendError(wire.CodeParse, fmt.Sprintf("protocol version %d unsupported (server speaks %d)", h.Version, wire.ProtocolVersion))
		return
	}
	if s.cfg.AuthToken != "" && subtle.ConstantTimeCompare([]byte(h.Token), []byte(s.cfg.AuthToken)) != 1 {
		cs.sendError(wire.CodeAuth, "bad token")
		return
	}
	if !validTenant(h.Tenant) {
		cs.sendError(wire.CodeAuth, fmt.Sprintf("invalid tenant name %q", h.Tenant))
		return
	}
	ns := tenantPrefix + h.Tenant + "_"
	cs.tenant = h.Tenant
	// RestrictPrefix stops this tenant from resolving other tenants'
	// physical names through the global-namespace fallback.
	cs.sess = sql.SessionWithNamespace(s.db.Cluster(), ns).RestrictPrefix(tenantPrefix)
	if !cs.send(wire.Frame{Type: wire.TypeHelloOK, Payload: wire.EncodeHelloOK(wire.HelloOK{Version: wire.ProtocolVersion, Namespace: ns})}) {
		return
	}

	// Statement loop: one request frame, one terminal reply frame.
	for {
		f, err := wire.ReadFrame(br)
		if err != nil {
			return // client closed (or force-close during shutdown)
		}
		switch f.Type {
		case wire.TypeStats:
			data, err := json.Marshal(s.Stats())
			if err != nil {
				cs.sendError(wire.CodeInternal, err.Error())
				continue
			}
			if !cs.send(wire.Frame{Type: wire.TypeStatsReply, Payload: data}) {
				return
			}
		case wire.TypePrepare:
			cs.servePrepare(string(f.Payload))
		case wire.TypeClosePrepared:
			cs.serveClosePrepared(f.Payload)
		case wire.TypeExec, wire.TypeQuery, wire.TypeCC, wire.TypeExecPrepared:
			cs.serveStatement(f)
		case wire.TypeSubscribe:
			// A subscription is terminal for the connection: serveSubscribe
			// owns the read side (to detect client close) and returns only
			// when the watch ends, after which the connection is done.
			cs.serveSubscribe(f.Payload, br)
			return
		default:
			cs.sendError(wire.CodeParse, fmt.Sprintf("unexpected frame type 0x%02x", f.Type))
		}
	}
}

// send writes and flushes one frame, reporting whether the connection is
// still usable.
func (cs *connState) send(f wire.Frame) bool {
	if err := wire.WriteFrame(cs.bw, f); err != nil {
		return false
	}
	return cs.bw.Flush() == nil
}

// sendError writes an Error frame and counts the failure.
func (cs *connState) sendError(code uint16, msg string) bool {
	cs.s.failed.Add(1)
	return cs.send(wire.Frame{Type: wire.TypeError, Payload: wire.EncodeError(wire.WireError{Code: code, Message: msg})})
}

// errorCode classifies a statement failure into a wire error code.
func errorCode(err error) uint16 {
	var oe *OverloadError
	switch {
	case errors.As(err, &oe):
		return wire.CodeOverloaded
	case errors.Is(err, ErrDraining):
		return wire.CodeUnavailable
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return wire.CodeUnavailable
	default:
		return wire.CodeInternal
	}
}

// serveStatement runs one Exec/Query/CC request under admission control.
func (cs *connState) serveStatement(f wire.Frame) {
	s := cs.s
	s.statements.Add(1)
	if !s.beginStmt() {
		cs.sendError(wire.CodeUnavailable, ErrDraining.Error())
		return
	}
	defer s.stmtWG.Done()

	queued, release, err := s.adm.acquire(s.baseCtx, cs.tenant)
	if err != nil {
		cs.sendError(errorCode(err), err.Error())
		return
	}
	defer release()

	switch f.Type {
	case wire.TypeExec:
		cs.serveExec(string(f.Payload), queued)
	case wire.TypeQuery:
		cs.serveQuery(string(f.Payload), queued)
	case wire.TypeCC:
		cs.serveCC(f.Payload, queued)
	case wire.TypeExecPrepared:
		cs.serveExecPrepared(f.Payload, queued)
	}
}

// servePrepare parses and registers a $N statement. Prepare is parse-only
// (planning happens at first execute, against the live catalog), so it
// runs outside admission control like Stats.
func (cs *connState) servePrepare(src string) {
	if len(cs.prepared) >= maxPreparedPerConn {
		cs.sendError(wire.CodeInternal, fmt.Sprintf("connection holds %d prepared statements; close some", maxPreparedPerConn))
		return
	}
	p, err := cs.sess.Prepare(src)
	if err != nil {
		cs.sendError(wire.CodeParse, err.Error())
		return
	}
	if cs.prepared == nil {
		cs.prepared = make(map[uint32]*sql.Prepared)
	}
	cs.prepID++
	cs.prepared[cs.prepID] = p
	cs.s.prepares.Add(1)
	cs.send(wire.Frame{Type: wire.TypePrepareOK, Payload: wire.EncodePrepareOK(wire.PrepareOK{
		ID:        cs.prepID,
		NumParams: uint16(p.NumParams()),
		IsQuery:   p.IsQuery(),
	})})
}

// serveClosePrepared releases one prepared statement.
func (cs *connState) serveClosePrepared(payload []byte) {
	req, err := wire.DecodeClosePrepared(payload)
	if err != nil {
		cs.sendError(wire.CodeParse, err.Error())
		return
	}
	if _, ok := cs.prepared[req.ID]; !ok {
		cs.sendError(wire.CodeNotFound, fmt.Sprintf("unknown prepared statement %d", req.ID))
		return
	}
	delete(cs.prepared, req.ID)
	cs.send(wire.Frame{Type: wire.TypeDone, Payload: wire.EncodeDone(wire.Done{})})
}

// wireArgs converts wire arguments to SQL arguments.
func wireArgs(in []wire.Arg) []sql.Arg {
	out := make([]sql.Arg, len(in))
	for i, a := range in {
		switch a.Tag {
		case wire.ArgTagNull:
			out[i] = sql.Null()
		case wire.ArgTagTable:
			out[i] = sql.Table(a.Table)
		default:
			out[i] = sql.Int(a.Int)
		}
	}
	return out
}

// serveExecPrepared executes a previously prepared statement with bound
// arguments, streaming rows when the statement is a query.
func (cs *connState) serveExecPrepared(payload []byte, queued time.Duration) {
	req, err := wire.DecodeExecPrepared(payload)
	if err != nil {
		cs.sendError(wire.CodeParse, err.Error())
		return
	}
	p, ok := cs.prepared[req.ID]
	if !ok {
		cs.sendError(wire.CodeNotFound, fmt.Sprintf("unknown prepared statement %d", req.ID))
		return
	}
	b, err := cs.sess.Bind(p, wireArgs(req.Args)...)
	if err != nil {
		cs.sendError(wire.CodeParse, err.Error()) // bind mismatches are the client's bug
		return
	}
	sess := cs.sess.WithContext(cs.s.baseCtx)
	if p.IsQuery() {
		schema, rows, err := sess.QueryPrepared(b)
		if err != nil {
			cs.sendError(errorCode(err), err.Error())
			return
		}
		cs.streamRows(schema, rows, queued)
		return
	}
	n, err := sess.ExecutePrepared(b)
	if err != nil {
		cs.sendError(errorCode(err), err.Error())
		return
	}
	cs.send(wire.Frame{Type: wire.TypeDone, Payload: wire.EncodeDone(wire.Done{Rows: n, QueueNanos: queued.Nanoseconds()})})
}

func (cs *connState) serveExec(src string, queued time.Duration) {
	// Parse before executing so malformed statements report 400, not 500.
	// This validation parse is pure; the session's own Exec counts the
	// real one and consults the text-keyed plan cache.
	stmts, err := sql.Parse(src)
	if err != nil {
		cs.sendError(wire.CodeParse, err.Error())
		return
	}
	if len(stmts) == 0 {
		cs.sendError(wire.CodeParse, "empty statement")
		return
	}
	rows, err := cs.sess.WithContext(cs.s.baseCtx).Exec(src)
	if err != nil {
		cs.sendError(errorCode(err), err.Error())
		return
	}
	cs.send(wire.Frame{Type: wire.TypeDone, Payload: wire.EncodeDone(wire.Done{Rows: rows, QueueNanos: queued.Nanoseconds()})})
}

func (cs *connState) serveQuery(src string, queued time.Duration) {
	st, err := sql.ParseOne(src)
	if err != nil {
		cs.sendError(wire.CodeParse, err.Error())
		return
	}
	if _, ok := st.(*sql.SelectQuery); !ok {
		cs.sendError(wire.CodeParse, fmt.Sprintf("Query requires a SELECT statement, got %T", st))
		return
	}
	schema, rows, err := cs.sess.WithContext(cs.s.baseCtx).Query(src)
	if err != nil {
		cs.sendError(errorCode(err), err.Error())
		return
	}
	cs.streamRows(schema, rows, queued)
}

// streamRows sends a result set as Schema, Rows* and a terminal Done.
func (cs *connState) streamRows(schema engine.Schema, rows []engine.Row, queued time.Duration) {
	if len(schema) > wire.MaxCols {
		cs.sendError(wire.CodeInternal, fmt.Sprintf("result set has %d columns, wire max is %d", len(schema), wire.MaxCols))
		return
	}
	if !cs.send(wire.Frame{Type: wire.TypeSchema, Payload: wire.EncodeSchema(wire.Schema{Cols: schema})}) {
		return
	}
	ncols := len(schema)
	for off := 0; off < len(rows); off += rowsPerChunk {
		end := off + rowsPerChunk
		if end > len(rows) {
			end = len(rows)
		}
		chunk := wire.Rows{
			NCols: ncols,
			Tags:  make([]byte, 0, (end-off)*ncols),
			Vals:  make([]int64, 0, (end-off)*ncols),
		}
		for _, row := range rows[off:end] {
			for _, d := range row {
				if d.Null {
					chunk.Tags = append(chunk.Tags, 1)
					chunk.Vals = append(chunk.Vals, 0)
				} else {
					chunk.Tags = append(chunk.Tags, 0)
					chunk.Vals = append(chunk.Vals, d.Int)
				}
			}
		}
		if !cs.send(wire.Frame{Type: wire.TypeRows, Payload: wire.EncodeRows(chunk)}) {
			return
		}
	}
	cs.send(wire.Frame{Type: wire.TypeDone, Payload: wire.EncodeDone(wire.Done{Rows: int64(len(rows)), QueueNanos: queued.Nanoseconds()})})
}

// serveSubscribe registers a component-index watch and streams Notify
// frames until the client disconnects, the server drains, or the
// subscription overflows. Registration counts as a statement for
// admission control — a tenant cannot open more watches than its
// concurrency budget admits at once — but the slot is released as soon
// as the watch is registered, so long-lived subscriptions do not starve
// the tenant's statement lanes. The in-flight registration (stmtWG) is
// held for the subscription's whole lifetime instead: that is what
// guarantees drain writes the terminal Error frame before Shutdown
// closes the connection.
func (cs *connState) serveSubscribe(payload []byte, br *bufio.Reader) {
	s := cs.s
	s.statements.Add(1)
	if !s.beginStmt() {
		cs.sendError(wire.CodeUnavailable, ErrDraining.Error())
		return
	}
	defer s.stmtWG.Done()

	_, release, err := s.adm.acquire(s.baseCtx, cs.tenant)
	if err != nil {
		cs.sendError(errorCode(err), err.Error())
		return
	}

	req, err := wire.DecodeSubscribe(payload)
	if err != nil {
		release()
		cs.sendError(wire.CodeParse, err.Error())
		return
	}
	phys := cs.sess.Resolve(req.Table)
	idx, ok := s.db.Cluster().ComponentIndex(phys)
	if !ok {
		release()
		cs.sendError(wire.CodeNotFound, fmt.Sprintf("table %q has no component index", req.Table))
		return
	}
	sub := idx.Subscribe()
	defer sub.Close()
	release() // registered: give the admission slot back
	s.watchers.Add(1)
	s.watchersTotal.Add(1)
	defer s.watchers.Add(-1)

	if !cs.send(wire.Frame{Type: wire.TypeSubscribeOK, Payload: wire.EncodeSubscribeOK(wire.SubscribeOK{Seq: sub.StartSeq})}) {
		return
	}

	// The client writes nothing after Subscribe; a read completing (frame
	// or error) means it hung up. The goroutine unblocks when handleConn's
	// deferred conn.Close runs after we return.
	clientGone := make(chan struct{})
	go func() {
		wire.ReadFrame(br)
		close(clientGone)
	}()

	for {
		select {
		case ev, ok := <-sub.C:
			if !ok {
				// Disconnected by the index: the subscriber fell too far
				// behind (buffer overflow) or the index was dropped.
				cs.sendError(wire.CodeUnavailable, "subscription dropped (slow consumer or index dropped)")
				return
			}
			if !cs.send(wire.Frame{Type: wire.TypeNotify, Payload: wire.EncodeNotify(wire.Notify{
				Seq:  ev.Seq,
				Kind: ev.Kind,
				From: ev.From,
				To:   ev.To,
			})}) {
				return
			}
			s.notifies.Add(1)
		case <-s.drainCh:
			cs.sendError(wire.CodeUnavailable, ErrDraining.Error())
			return
		case <-clientGone:
			return
		}
	}
}

func (cs *connState) serveCC(payload []byte, queued time.Duration) {
	req, err := wire.DecodeCC(payload)
	if err != nil {
		cs.sendError(wire.CodeParse, err.Error())
		return
	}
	algName := req.Algorithm
	if algName == "" {
		algName = dbcc.RandomisedContraction
	}
	if _, ok := ccalg.ByName(algName); !ok {
		cs.sendError(wire.CodeNotFound, fmt.Sprintf("unknown algorithm %q", req.Algorithm))
		return
	}
	// Resolve through the tenant catalog; the session's restricted
	// resolver keeps other tenants' physical names unreachable.
	phys := cs.sess.Resolve(req.Table)
	if _, ok := cs.s.db.Cluster().Table(phys); !ok {
		cs.sendError(wire.CodeNotFound, fmt.Sprintf("table %q does not exist", req.Table))
		return
	}
	// KeepStats: the shared cluster's counters are the server's
	// observability surface; a per-run reset would wipe them for every
	// other tenant mid-flight.
	res, err := cs.s.db.ConnectedComponentsOfCtx(cs.s.baseCtx, phys, dbcc.Params{Algorithm: algName, Seed: req.Seed, KeepStats: true})
	if err != nil {
		cs.sendError(errorCode(err), err.Error())
		return
	}
	cs.send(wire.Frame{Type: wire.TypeCCDone, Payload: wire.EncodeCCDone(wire.CCDone{
		Components: int64(res.Labels.NumComponents()),
		Rounds:     int64(res.Rounds),
		Vertices:   int64(len(res.Labels)),
		QueueNanos: queued.Nanoseconds(),
	})})
}
