package server_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"dbcc"
	"dbcc/internal/client"
	"dbcc/internal/datagen"
	"dbcc/internal/server"
	"dbcc/internal/wire"
)

// startServer boots a server on a free loopback port and returns it with
// a cleanup that drains it unless the test already did.
func startServer(t *testing.T, cfg server.Config) *server.Server {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	srv := server.New(cfg)
	if err := srv.Listen(); err != nil {
		t.Fatalf("listen: %v", err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve() }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx) // "already draining" from a test's own drain is fine
		if err := <-serveDone; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return srv
}

func dial(t *testing.T, srv *server.Server, tenant string) *client.Client {
	t.Helper()
	c, err := client.Dial(srv.Addr(), tenant, "")
	if err != nil {
		t.Fatalf("dial %s: %v", tenant, err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// loadEdges creates table name in the connection's tenant catalog and
// inserts the edges of a path graph over the wire.
func loadEdges(t *testing.T, c *client.Client, name string, n int) {
	t.Helper()
	if _, _, err := c.Exec(fmt.Sprintf("CREATE TABLE %s (v1, v2) DISTRIBUTED BY (v1)", name)); err != nil {
		t.Fatalf("create %s: %v", name, err)
	}
	const batch = 200
	for lo := 0; lo < n; lo += batch {
		var b strings.Builder
		fmt.Fprintf(&b, "INSERT INTO %s VALUES ", name)
		for i := lo; i < lo+batch && i < n; i++ {
			if i > lo {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "(%d, %d)", i, i+1)
		}
		if _, _, err := c.Exec(b.String()); err != nil {
			t.Fatalf("insert into %s: %v", name, err)
		}
	}
}

func TestServerExecQueryCC(t *testing.T) {
	srv := startServer(t, server.Config{DB: dbcc.Config{Segments: 4}})
	c := dial(t, srv, "acme")

	loadEdges(t, c, "edges", 100) // path 0-1-...-100: one component
	schema, rows, err := c.Query("SELECT count(*) AS n, min(v1) AS lo, max(v2) AS hi FROM edges")
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if len(schema) != 3 || schema[0] != "n" {
		t.Fatalf("schema: %v", schema)
	}
	if len(rows) != 1 || rows[0][0].Int != 100 || rows[0][1].Int != 0 || rows[0][2].Int != 100 {
		t.Fatalf("rows: %v", rows)
	}

	res, err := c.ConnectedComponents("edges", "rc", 2019)
	if err != nil {
		t.Fatalf("cc: %v", err)
	}
	if res.Components != 1 || res.Vertices != 101 {
		t.Fatalf("cc result: %+v", res)
	}
	if res.Rounds < 1 {
		t.Fatalf("cc rounds: %+v", res)
	}

	// A streamed result wider than one chunk (512 rows) reassembles intact.
	_, all, err := c.Query("SELECT v1, v2 FROM edges")
	if err != nil {
		t.Fatalf("full scan: %v", err)
	}
	if len(all) != 100 {
		t.Fatalf("full scan returned %d rows", len(all))
	}

	st, err := c.ServerStats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Statements == 0 || st.Conns < 1 || st.Tenants["acme"].Admitted == 0 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Shed != 0 || st.Failed != 0 {
		t.Fatalf("unexpected shed/failed: %+v", st)
	}
}

func TestTenantCatalogIsolation(t *testing.T) {
	srv := startServer(t, server.Config{DB: dbcc.Config{Segments: 4}})
	a := dial(t, srv, "tenanta")
	b := dial(t, srv, "tenantb")

	loadEdges(t, a, "edges", 30)
	loadEdges(t, b, "edges", 10)

	_, arows, err := a.Query("SELECT count(*) AS n FROM edges")
	if err != nil {
		t.Fatalf("a query: %v", err)
	}
	_, brows, err := b.Query("SELECT count(*) AS n FROM edges")
	if err != nil {
		t.Fatalf("b query: %v", err)
	}
	if arows[0][0].Int != 30 || brows[0][0].Int != 10 {
		t.Fatalf("tenant tables bled: a=%d b=%d", arows[0][0].Int, brows[0][0].Int)
	}

	// Naming another tenant's physical table must not resolve.
	if _, _, err := b.Query("SELECT count(*) AS n FROM tn_tenanta_edges"); err == nil {
		t.Fatal("cross-tenant SELECT resolved")
	}
	if _, err := b.ConnectedComponents("tn_tenanta_edges", "rc", 1); err == nil {
		t.Fatal("cross-tenant CC resolved")
	}

	// Shared global tables stay reachable from any tenant.
	if err := srv.DB().LoadGraph("shared_input", dbcc.GeneratePath(20)); err != nil {
		t.Fatalf("load shared: %v", err)
	}
	res, err := b.ConnectedComponents("shared_input", "", 7)
	if err != nil {
		t.Fatalf("cc on shared table: %v", err)
	}
	if res.Components != 1 {
		t.Fatalf("shared cc: %+v", res)
	}
}

func TestAuthAndHandshakeErrors(t *testing.T) {
	srv := startServer(t, server.Config{DB: dbcc.Config{Segments: 2}, AuthToken: "hunter2"})

	if _, err := client.Dial(srv.Addr(), "acme", "wrong"); err == nil {
		t.Fatal("bad token accepted")
	} else {
		var we *wire.WireError
		if !errors.As(err, &we) || we.Code != wire.CodeAuth {
			t.Fatalf("bad token error: %v", err)
		}
	}
	if _, err := client.Dial(srv.Addr(), "no spaces allowed", "hunter2"); err == nil {
		t.Fatal("invalid tenant name accepted")
	}
	// Underscores are rejected: tenant "acme_x" would make tenant
	// "acme"'s namespace a prefix of its own, letting "acme" reach its
	// tables by naming "x_<table>".
	if _, err := client.Dial(srv.Addr(), "acme_x", "hunter2"); err == nil {
		t.Fatal("underscored tenant name accepted")
	}
	c, err := client.Dial(srv.Addr(), "acme", "hunter2")
	if err != nil {
		t.Fatalf("good token rejected: %v", err)
	}
	c.Close()
}

func TestStatementErrors(t *testing.T) {
	srv := startServer(t, server.Config{DB: dbcc.Config{Segments: 2}})
	c := dial(t, srv, "acme")

	var we *wire.WireError
	if _, _, err := c.Exec("THIS IS NOT SQL"); !errors.As(err, &we) || we.Code != wire.CodeParse {
		t.Fatalf("parse error: %v", err)
	}
	if _, _, err := c.Query("SELECT v1 FROM missing"); err == nil {
		t.Fatal("query on missing table succeeded")
	}
	if _, err := c.ConnectedComponents("missing", "rc", 1); !errors.As(err, &we) || we.Code != wire.CodeNotFound {
		t.Fatalf("cc on missing table: %v", err)
	}
	if _, err := c.ConnectedComponents("missing", "nope", 1); !errors.As(err, &we) || we.Code != wire.CodeNotFound {
		t.Fatalf("cc with unknown algorithm: %v", err)
	}
	// The connection survives statement errors.
	if _, _, err := c.Exec("CREATE TABLE ok (a, b)"); err != nil {
		t.Fatalf("exec after errors: %v", err)
	}
}

// slowCC starts a connected-components run that takes long enough to
// still be in flight when the test acts, and reports its completion.
func slowCC(t *testing.T, srv *server.Server, c *client.Client) chan error {
	t.Helper()
	if err := srv.DB().LoadGraph("big_input", dbcc.GenerateBitcoin(4000, 7)); err != nil {
		t.Fatalf("load big graph: %v", err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := c.ConnectedComponents("big_input", "hm", 1)
		done <- err
	}()
	// Wait until the run is issuing queries so it is genuinely in flight.
	for i := 0; srv.DB().Cluster().Stats().Queries < 3; i++ {
		if i > 2000 {
			t.Error("cc run never started issuing queries")
			return done
		}
		time.Sleep(time.Millisecond)
	}
	return done
}

func TestDrainFinishesInflightAndRejectsNew(t *testing.T) {
	srv := startServer(t, server.Config{DB: dbcc.Config{Segments: 4}})
	busy := dial(t, srv, "acme")
	other := dial(t, srv, "acme")

	ccDone := slowCC(t, srv, busy)

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	// Drain has begun once stats report it; the in-flight CC holds it open.
	for i := 0; !srv.Stats().Draining; i++ {
		if i > 2000 {
			t.Fatal("server never started draining")
		}
		time.Sleep(time.Millisecond)
	}

	// A statement arriving mid-drain is rejected with 503.
	_, _, err := other.Exec("CREATE TABLE late (a, b)")
	if !client.IsUnavailable(err) {
		t.Fatalf("mid-drain statement: %v, want 503 unavailable", err)
	}

	// The in-flight run still completes cleanly.
	if err := <-ccDone; err != nil {
		t.Fatalf("in-flight cc failed during drain: %v", err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// waitNoExtraGoroutines mirrors the engine chaos suite's no-leak bound:
// after a drain, the goroutine count must return to the pre-server
// baseline.
func waitNoExtraGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("%d goroutines still running (baseline %d):\n%s",
				n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestDrainLeavesNoGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()

	srv := server.New(server.Config{Addr: "127.0.0.1:0", DB: dbcc.Config{Segments: 4}})
	if err := srv.Listen(); err != nil {
		t.Fatalf("listen: %v", err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve() }()

	// A few tenants do real work, then the server drains.
	for i := 0; i < 3; i++ {
		c, err := client.Dial(srv.Addr(), fmt.Sprintf("t%d", i), "")
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		loadEdges(t, c, "edges", 50)
		if _, err := c.ConnectedComponents("edges", "rc", uint64(i)); err != nil {
			t.Fatalf("cc: %v", err)
		}
		c.Close()
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}
	waitNoExtraGoroutines(t, base)
}

// TestDrainRemovesSpillDirs is the server-path Cluster.Close contract: a
// drained server whose sessions spilled must leave no spill directory
// behind.
func TestDrainRemovesSpillDirs(t *testing.T) {
	srv := startServer(t, server.Config{
		// The spill suite's squeeze: 4 KiB budget over 4 segments = 1 KiB
		// per task share, so a 2000-row group-by must spill partitions.
		DB: dbcc.Config{Segments: 4, MemoryBudget: 4 << 10},
	})
	c := dial(t, srv, "acme")

	// Load a table with enough duplicate keys to build real hash state.
	g := datagen.RMAT(11, 2000, 0.57, 0.19, 0.19, 0.05, 11)
	if _, _, err := c.Exec("CREATE TABLE t (k, x) DISTRIBUTED BY (k)"); err != nil {
		t.Fatalf("create: %v", err)
	}
	var b strings.Builder
	n := 0
	for _, e := range g.Edges {
		if b.Len() == 0 {
			b.WriteString("INSERT INTO t VALUES ")
		} else {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "(%d, %d)", e.V%256, e.W)
		n++
		if n%200 == 0 {
			if _, _, err := c.Exec(b.String()); err != nil {
				t.Fatalf("insert: %v", err)
			}
			b.Reset()
		}
	}
	if b.Len() > 0 {
		if _, _, err := c.Exec(b.String()); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	if _, _, err := c.Exec("CREATE TABLE agg AS SELECT k, min(x) AS m, max(x) AS h FROM t GROUP BY k"); err != nil {
		t.Fatalf("group-by: %v", err)
	}

	cl := srv.DB().Cluster()
	if cl.Stats().SpilledBytes == 0 {
		t.Fatal("workload did not spill; the test no longer exercises the spill path")
	}
	root := cl.SpillRoot()
	if root == "" {
		t.Fatal("no spill root after a spilling statement")
	}
	if _, err := os.Stat(root); err != nil {
		t.Fatalf("spill root missing before drain: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if got := cl.SpillRoot(); got != "" {
		t.Fatalf("spill root still registered after drain: %q", got)
	}
	if _, err := os.Stat(root); !os.IsNotExist(err) {
		t.Fatalf("spill dir %s survived the drain: %v", root, err)
	}
}

// TestSubscribeStreamsNotifies is the wire-level watch contract: a
// dedicated connection subscribes to an indexed table, another tenant
// connection streams inserts and a delete, and the watcher sees merge
// events with gap-free sequence numbers followed by a rebuild event.
func TestSubscribeStreamsNotifies(t *testing.T) {
	srv := startServer(t, server.Config{DB: dbcc.Config{Segments: 4}})
	writer := dial(t, srv, "acme")
	if _, _, err := writer.Exec("CREATE TABLE edges (v1, v2); CREATE COMPONENT INDEX ON edges"); err != nil {
		t.Fatalf("create index: %v", err)
	}

	// Subscribing to an unindexed table is a 404.
	if _, err := dial(t, srv, "acme").Subscribe("nosuch"); err == nil {
		t.Fatal("subscribe to unindexed table succeeded")
	}

	w, err := dial(t, srv, "acme").Subscribe("edges")
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	defer w.Close()

	if _, _, err := writer.Exec("INSERT INTO edges VALUES (1,2), (3,4), (2,3)"); err != nil {
		t.Fatalf("insert: %v", err)
	}
	if _, _, err := writer.Exec("DELETE FROM edges WHERE v1 = 2"); err != nil {
		t.Fatalf("delete: %v", err)
	}

	seq := w.StartSeq()
	var merges, rebuilds int
	deadline := time.After(10 * time.Second)
	for rebuilds == 0 {
		select {
		case ev, ok := <-w.Events():
			if !ok {
				t.Fatalf("watch closed early: %v", w.Err())
			}
			if ev.Seq != seq+1 {
				t.Fatalf("sequence gap: %d after %d", ev.Seq, seq)
			}
			seq = ev.Seq
			if ev.Rebuild {
				rebuilds++
			} else {
				merges++
			}
		case <-deadline:
			t.Fatalf("no rebuild event after %d merges", merges)
		}
	}
	if merges != 3 {
		t.Fatalf("saw %d merge events, want 3", merges)
	}

	st, err := writer.ServerStats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Watchers != 1 || st.WatchersTotal != 1 || st.Notifies < 4 {
		t.Fatalf("watch counters: watchers=%d total=%d notifies=%d", st.Watchers, st.WatchersTotal, st.Notifies)
	}
	if st.IndexMerges < 3 || st.IndexRebuilds < 1 || st.IndexLabelsTouched == 0 {
		t.Fatalf("index counters: %+v", st)
	}

	// Tenants are isolated: tenant "other" cannot watch acme's index.
	if _, err := dial(t, srv, "other").Subscribe("edges"); err == nil {
		t.Fatal("cross-tenant subscribe succeeded")
	}
}

// TestDrainWithLiveWatchers is the drain-while-subscribed contract
// (extending TestDrainLeavesNoGoroutines): SIGTERM-style Shutdown with
// live Watch subscriptions must deliver each watcher a terminal 503
// frame and leave no goroutines behind.
func TestDrainWithLiveWatchers(t *testing.T) {
	base := runtime.NumGoroutine()

	srv := server.New(server.Config{Addr: "127.0.0.1:0", DB: dbcc.Config{Segments: 4}})
	if err := srv.Listen(); err != nil {
		t.Fatalf("listen: %v", err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve() }()

	writer, err := client.Dial(srv.Addr(), "acme", "")
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if _, _, err := writer.Exec("CREATE TABLE edges (v1, v2); CREATE COMPONENT INDEX ON edges; INSERT INTO edges VALUES (1,2)"); err != nil {
		t.Fatalf("setup: %v", err)
	}

	const watchers = 4
	watches := make([]*client.Watch, watchers)
	conns := make([]*client.Client, watchers)
	for i := range watches {
		conns[i], err = client.Dial(srv.Addr(), "acme", "")
		if err != nil {
			t.Fatalf("dial watcher %d: %v", i, err)
		}
		watches[i], err = conns[i].Subscribe("edges")
		if err != nil {
			t.Fatalf("subscribe %d: %v", i, err)
		}
	}
	writer.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}

	// Every watcher's stream ends with the server's 503, not an abrupt
	// connection reset: the drain wrote the terminal frame first.
	for i, w := range watches {
		deadline := time.After(5 * time.Second)
		for {
			var open bool
			select {
			case _, open = <-w.Events():
			case <-deadline:
				t.Fatalf("watcher %d: stream still open after drain", i)
			}
			if !open {
				break
			}
		}
		if !client.IsUnavailable(w.Err()) {
			t.Fatalf("watcher %d: terminal error = %v, want 503 unavailable", i, w.Err())
		}
		conns[i].Close()
	}
	waitNoExtraGoroutines(t, base)
}
