package server

import (
	"context"
	"errors"
	"testing"
	"time"

	"dbcc/internal/wire"
)

// mustAcquire admits immediately or fails the test.
func mustAcquire(t *testing.T, a *admission, tenant string) func() {
	t.Helper()
	wait, release, err := a.acquire(context.Background(), tenant)
	if err != nil {
		t.Fatalf("acquire(%s): %v", tenant, err)
	}
	if wait != 0 {
		t.Fatalf("acquire(%s) queued for %s, want the fast path", tenant, wait)
	}
	return release
}

func TestAdmissionCapAndQueue(t *testing.T) {
	drain := make(chan struct{})
	a := newAdmission(AdmissionConfig{TenantStatements: 2, TenantQueue: 1, QueueTimeout: time.Hour}, drain)

	r1 := mustAcquire(t, a, "acme")
	r2 := mustAcquire(t, a, "acme")

	// Third statement queues; it must report a non-zero queue wait once a
	// slot frees up.
	admitted := make(chan time.Duration, 1)
	go func() {
		wait, release, err := a.acquire(context.Background(), "acme")
		if err != nil {
			admitted <- -1
			return
		}
		defer release()
		admitted <- wait
	}()
	// Wait for it to reach the queue.
	for i := 0; ; i++ {
		var st wire.ServerStats
		a.snapshot(&st)
		if st.QueueDepth == 1 {
			break
		}
		if i > 2000 {
			t.Fatal("third statement never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Fourth overflows the single queue slot: immediate typed shed.
	_, _, err := a.acquire(context.Background(), "acme")
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Timeout || oe.Tenant != "acme" {
		t.Fatalf("queue-full rejection: %v", err)
	}

	r1()
	wait := <-admitted
	if wait <= 0 {
		t.Fatalf("queued statement reported wait %v", wait)
	}
	r2()

	var st wire.ServerStats
	a.snapshot(&st)
	ts := st.Tenants["acme"]
	if ts.Admitted != 3 || ts.QueuedTotal != 1 || ts.ShedQueueFull != 1 || ts.QueueNanos <= 0 {
		t.Fatalf("tenant stats: %+v", ts)
	}
	if st.Shed != 1 || st.PeakQueueDepth != 1 {
		t.Fatalf("global stats: %+v", st)
	}
}

// TestAdmissionQueueTimeout is the satellite contract: a statement that
// waits out the queue timeout gets the typed overload error, not a
// generic failure.
func TestAdmissionQueueTimeout(t *testing.T) {
	drain := make(chan struct{})
	a := newAdmission(AdmissionConfig{TenantStatements: 1, TenantQueue: 4, QueueTimeout: 30 * time.Millisecond}, drain)

	release := mustAcquire(t, a, "acme")
	defer release()

	start := time.Now()
	_, _, err := a.acquire(context.Background(), "acme")
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("queue timeout returned %T (%v), want *OverloadError", err, err)
	}
	if !oe.Timeout {
		t.Fatalf("overload error not marked as timeout: %+v", oe)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("shed after %s, before the queue timeout", elapsed)
	}

	var st wire.ServerStats
	a.snapshot(&st)
	if st.Tenants["acme"].ShedTimeout != 1 {
		t.Fatalf("stats: %+v", st.Tenants["acme"])
	}
}

// TestAdmissionTenantIsolation is the satellite contract: one tenant
// flooding its cap and queue cannot starve another tenant's admission.
func TestAdmissionTenantIsolation(t *testing.T) {
	drain := make(chan struct{})
	a := newAdmission(AdmissionConfig{TenantStatements: 1, TenantQueue: 2, QueueTimeout: time.Hour}, drain)

	// Flood tenant A: one active, two queued, further statements shed.
	holdA := mustAcquire(t, a, "flood")
	for i := 0; i < 2; i++ {
		go a.acquire(context.Background(), "flood")
	}
	for i := 0; ; i++ {
		var st wire.ServerStats
		a.snapshot(&st)
		if st.QueueDepth == 2 {
			break
		}
		if i > 2000 {
			t.Fatal("flood never filled the queue")
		}
		time.Sleep(time.Millisecond)
	}
	if _, _, err := a.acquire(context.Background(), "flood"); err == nil {
		t.Fatal("flooded tenant admitted beyond cap+queue")
	}

	// Tenant B admits instantly despite A's flood.
	start := time.Now()
	releaseB := mustAcquire(t, a, "quiet")
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("quiet tenant waited %s behind another tenant's flood", elapsed)
	}
	releaseB()

	var st wire.ServerStats
	a.snapshot(&st)
	if st.Tenants["quiet"].Admitted != 1 || st.Tenants["quiet"].Queued != 0 {
		t.Fatalf("quiet tenant stats: %+v", st.Tenants["quiet"])
	}
	holdA() // release the flood so its queued goroutines drain
}

func TestAdmissionDrainRejectsQueued(t *testing.T) {
	drain := make(chan struct{})
	a := newAdmission(AdmissionConfig{TenantStatements: 1, TenantQueue: 4, QueueTimeout: time.Hour}, drain)

	release := mustAcquire(t, a, "acme")
	defer release()

	got := make(chan error, 1)
	go func() {
		_, _, err := a.acquire(context.Background(), "acme")
		got <- err
	}()
	for i := 0; ; i++ {
		var st wire.ServerStats
		a.snapshot(&st)
		if st.QueueDepth == 1 {
			break
		}
		if i > 2000 {
			t.Fatal("statement never queued")
		}
		time.Sleep(time.Millisecond)
	}
	close(drain)
	if err := <-got; !errors.Is(err, ErrDraining) {
		t.Fatalf("queued statement got %v during drain, want ErrDraining", err)
	}
}

func TestAdmissionContextCancel(t *testing.T) {
	drain := make(chan struct{})
	a := newAdmission(AdmissionConfig{TenantStatements: 1, TenantQueue: 4, QueueTimeout: time.Hour}, drain)

	release := mustAcquire(t, a, "acme")
	defer release()

	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() {
		_, _, err := a.acquire(ctx, "acme")
		got <- err
	}()
	for i := 0; ; i++ {
		var st wire.ServerStats
		a.snapshot(&st)
		if st.QueueDepth == 1 {
			break
		}
		if i > 2000 {
			t.Fatal("statement never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-got; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled queue wait got %v", err)
	}
	// The queue position was returned.
	var st wire.ServerStats
	a.snapshot(&st)
	if st.QueueDepth != 0 {
		t.Fatalf("queue depth %d after cancel", st.QueueDepth)
	}
}

func TestValidTenant(t *testing.T) {
	for _, ok := range []string{"a", "acme", "Tenant42", "x9z"} {
		if !validTenant(ok) {
			t.Errorf("validTenant(%q) = false", ok)
		}
	}
	// Underscores make one tenant's physical prefix a prefix of
	// another's (tn_a_ vs tn_a_b_), so they are rejected outright.
	for _, bad := range []string{"", "a_b", "x_y_z", "_", "has space", "dash-ed", "dot.ted", "über", string(make([]byte, 33))} {
		if validTenant(bad) {
			t.Errorf("validTenant(%q) = true", bad)
		}
	}
}
