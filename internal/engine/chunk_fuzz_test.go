package engine

import (
	"bytes"
	"testing"
)

// FuzzChunkCodec fuzzes the spill-frame decoder with untrusted bytes: it
// must never panic or over-allocate, and anything it accepts must
// re-encode to exactly the bytes it consumed (the codec has no redundant
// representations). The seed corpus lives in testdata/fuzz/FuzzChunkCodec
// plus the generated frames below; use
// `go test -fuzz=FuzzChunkCodec ./internal/engine` to explore.
func FuzzChunkCodec(f *testing.F) {
	// Seed with well-formed frames of assorted shapes.
	shapes := []struct{ ncols, nrows int }{
		{0, 0}, {1, 0}, {0, 5}, {1, 1}, {2, 3}, {3, 64}, {2, 65}, {4, 130},
	}
	for _, s := range shapes {
		b := newChunkBuilder(s.ncols, 0)
		for r := 0; r < s.nrows; r++ {
			for c := 0; c < s.ncols; c++ {
				b.appendCol(c, int64(r*31+c), (r+c)%5 == 0)
			}
			b.n++
		}
		f.Add(encodeChunkFrame(nil, b.finish()))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		ch, n, err := decodeChunkFrame(data)
		if err != nil {
			return // rejection is fine; panics and over-reads are not
		}
		if n > len(data) {
			t.Fatalf("decoder consumed %d of %d bytes", n, len(data))
		}
		if ch.length < 0 || len(ch.cols) != len(ch.nulls) {
			t.Fatalf("decoded chunk has inconsistent shape")
		}
		// Accepted frames must round-trip byte-identically: the format has
		// exactly one encoding per chunk, so re-encoding what was decoded
		// must reproduce the consumed prefix.
		re := encodeChunkFrame(nil, ch)
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("round-trip mismatch: consumed %d bytes, re-encoded %d", n, len(re))
		}
	})
}
