package engine

import (
	"testing"

	"dbcc/internal/xrand"
)

// randRows generates random two-column rows with duplicates, NULLs and a
// small key range (to force collisions).
func randRows(rng *xrand.Rand, n int) []Row {
	rows := make([]Row, n)
	for i := range rows {
		var a, b Datum
		if rng.Uint64n(10) == 0 {
			a = NullDatum
		} else {
			a = I(int64(rng.Uint64n(12)))
		}
		if rng.Uint64n(10) == 0 {
			b = NullDatum
		} else {
			b = I(int64(rng.Uint64n(50)))
		}
		rows[i] = Row{a, b}
	}
	return rows
}

// TestGroupByMatchesNaive compares distributed grouped aggregation against
// a straightforward in-memory reference over random inputs, for both
// execution profiles.
func TestGroupByMatchesNaive(t *testing.T) {
	rng := xrand.New(41)
	for trial := 0; trial < 25; trial++ {
		rows := randRows(rng, int(rng.Uint64n(200)))
		for _, profile := range []Profile{ProfileMPP, ProfileSparkSQL} {
			c := NewCluster(Options{Segments: int(rng.Uint64n(6)) + 1, Profile: profile, SparkPerQueryWork: 1})
			mustCreate(t, c, "t", Schema{"k", "x"}, 0, rows)
			p := GroupBy(Scan("t"), []int{0},
				Agg{Op: AggMin, Arg: Col(1), Name: "mn"},
				Agg{Op: AggMax, Arg: Col(1), Name: "mx"},
				Agg{Op: AggCount, Arg: Col(1), Name: "cnt"},
				Agg{Op: AggCount, Name: "star"})
			_, got, err := c.Query(p)
			if err != nil {
				t.Fatal(err)
			}

			// Naive reference.
			type agg struct {
				mn, mx    Datum
				cnt, star int64
			}
			ref := map[Datum]*agg{}
			for _, r := range rows {
				a, ok := ref[r[0]]
				if !ok {
					a = &agg{mn: NullDatum, mx: NullDatum}
					ref[r[0]] = a
				}
				a.star++
				if !r[1].Null {
					a.cnt++
					if a.mn.Null || r[1].Int < a.mn.Int {
						a.mn = r[1]
					}
					if a.mx.Null || r[1].Int > a.mx.Int {
						a.mx = r[1]
					}
				}
			}
			if len(got) != len(ref) {
				t.Fatalf("trial %d: %d groups, want %d", trial, len(got), len(ref))
			}
			for _, row := range got {
				a, ok := ref[row[0]]
				if !ok {
					t.Fatalf("trial %d: unexpected group %v", trial, row[0])
				}
				if row[1] != a.mn || row[2] != a.mx || row[3].Int != a.cnt || row[4].Int != a.star {
					t.Fatalf("trial %d: group %v = %v, want %+v", trial, row[0], row, a)
				}
			}
		}
	}
}

// TestJoinMatchesNaive compares the distributed hash joins against nested
// loops over random inputs.
func TestJoinMatchesNaive(t *testing.T) {
	rng := xrand.New(43)
	for trial := 0; trial < 25; trial++ {
		left := randRows(rng, int(rng.Uint64n(80)))
		right := randRows(rng, int(rng.Uint64n(80)))
		c := NewCluster(Options{Segments: int(rng.Uint64n(6)) + 1})
		mustCreate(t, c, "l", Schema{"k", "a"}, 0, left)
		mustCreate(t, c, "r", Schema{"k", "b"}, 1, right)
		for _, kind := range []JoinKind{InnerJoin, LeftOuterJoin} {
			p := JoinPlan{Left: Scan("l"), Right: Scan("r"), LeftKey: 0, RightKey: 0, Kind: kind}
			_, got, err := c.Query(p)
			if err != nil {
				t.Fatal(err)
			}
			var want []Row
			for _, lr := range left {
				matched := false
				if !lr[0].Null {
					for _, rr := range right {
						if !rr[0].Null && rr[0].Int == lr[0].Int {
							matched = true
							want = append(want, Row{lr[0], lr[1], rr[0], rr[1]})
						}
					}
				}
				if !matched && kind == LeftOuterJoin {
					want = append(want, Row{lr[0], lr[1], NullDatum, NullDatum})
				}
			}
			eqRows(t, got, want)
		}
	}
}

// TestBroadcastJoinMatchesDistributed verifies the broadcast-motion
// optimisation changes only the physical plan: results must be identical
// to the plain distributed join, for both join kinds, and the broadcast
// must actually avoid re-shuffling the probe side.
func TestBroadcastJoinMatchesDistributed(t *testing.T) {
	rng := xrand.New(61)
	for trial := 0; trial < 15; trial++ {
		left := randRows(rng, int(rng.Uint64n(150))+20)
		right := randRows(rng, int(rng.Uint64n(20)))
		var want [][]Row
		for mode, threshold := range []int64{0, 1 << 30} {
			c := NewCluster(Options{Segments: 5, BroadcastThreshold: threshold})
			mustCreate(t, c, "l", Schema{"k", "a"}, 1, left) // distributed off the join key
			mustCreate(t, c, "r", Schema{"k", "b"}, 0, right)
			for _, kind := range []JoinKind{InnerJoin, LeftOuterJoin} {
				p := JoinPlan{Left: Scan("l"), Right: Scan("r"), LeftKey: 0, RightKey: 0, Kind: kind}
				_, got, err := c.Query(p)
				if err != nil {
					t.Fatal(err)
				}
				if mode == 0 {
					want = append(want, got)
				} else {
					eqRows(t, got, want[int(kind)])
				}
			}
		}
	}
}

// TestDistinctMatchesNaive compares distributed DISTINCT with a map-based
// reference.
func TestDistinctMatchesNaive(t *testing.T) {
	rng := xrand.New(47)
	for trial := 0; trial < 25; trial++ {
		rows := randRows(rng, int(rng.Uint64n(300)))
		c := NewCluster(Options{Segments: int(rng.Uint64n(6)) + 1})
		mustCreate(t, c, "t", Schema{"k", "x"}, 0, rows)
		_, got, err := c.Query(Distinct(Scan("t")))
		if err != nil {
			t.Fatal(err)
		}
		seen := map[[2]Datum]bool{}
		var want []Row
		for _, r := range rows {
			k := [2]Datum{r[0], r[1]}
			if !seen[k] {
				seen[k] = true
				want = append(want, r)
			}
		}
		eqRows(t, got, want)
	}
}

// TestRedistributePreservesRows checks the shuffle moves every row exactly
// once and lands it on the hash-correct segment.
func TestRedistributePreservesRows(t *testing.T) {
	rng := xrand.New(53)
	rows := randRows(rng, 500)
	c := NewCluster(Options{Segments: 7})
	mustCreate(t, c, "t", Schema{"k", "x"}, 0, rows)
	if _, err := c.CreateTableAs("t2", Scan("t"), 1); err != nil {
		t.Fatal(err)
	}
	tab, _ := c.Table("t2")
	var total int
	for seg, part := range tab.Parts {
		total += len(part)
		for _, row := range part {
			if want := c.hashDatum(row[1]); want != seg {
				t.Fatalf("row %v on segment %d, want %d", row, seg, want)
			}
		}
	}
	if total != len(rows) {
		t.Fatalf("shuffle lost rows: %d of %d", total, len(rows))
	}
	got, _ := c.ReadAll("t2")
	eqRows(t, got, rows)
}

// TestProjectPreservesDistribution verifies the planner keeps track of
// distribution through pass-through projections (no redundant shuffle).
func TestProjectPreservesDistribution(t *testing.T) {
	c := NewCluster(Options{Segments: 4})
	var rows []Row
	for i := int64(0); i < 200; i++ {
		rows = append(rows, Row{I(i), I(i * 3)})
	}
	mustCreate(t, c, "t", Schema{"k", "x"}, 0, rows)
	before := c.Stats().ShuffleBytes
	// Projection keeps column 0 first; creating distributed by that output
	// column must not shuffle.
	p := Project(Scan("t"),
		ProjCol{Expr: Col(0), Name: "k"},
		ProjCol{Expr: Bin(OpAdd, Col(1), Const(1)), Name: "y"})
	if _, err := c.CreateTableAs("t2", p, 0); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().ShuffleBytes; got != before {
		t.Fatalf("pass-through projection shuffled %d bytes", got-before)
	}
}
