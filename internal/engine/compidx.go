// Component indexes: incremental connected-component maintenance for edge
// tables. A ComponentIndex is a union-find structure over a table's first
// two int64 columns that InsertRows feeds as rows arrive, so component
// labels stay current under a stream of inserts with amortised
// near-constant relabel work per edge — no recompute on the insert path.
// Deletes can split components, which union-find cannot express, so
// DeleteRows marks the index stale and triggers a rebuild: a full
// recompute through the cluster's pluggable rebuilder (the dbcc layer
// installs the deterministic-RC driver via SetComponentRebuilder) or,
// when none is installed, a local rescan.
//
// Subscribers observe the label stream: every structural change carries a
// monotonically increasing sequence number, merges identify the losing
// and winning roots, and a rebuild event tells the subscriber to refetch
// the full labelling. The index lives inside the engine (not on top of
// internal/unionfind) because the unionfind package depends on the graph
// loader, which depends on the engine.

package engine

import (
	"fmt"
	"sync"
)

// Index event kinds. The values are part of the wire protocol (the Notify
// frame carries them as a uint8), so they must not be renumbered.
const (
	// IndexEventMerge reports that the component rooted at From was merged
	// into the component rooted at To.
	IndexEventMerge uint8 = 0
	// IndexEventRebuild reports that the labelling was rebuilt from
	// scratch (after deletes); subscribers must refetch the snapshot, as
	// any label may have changed. From and To are zero.
	IndexEventRebuild uint8 = 1
)

// IndexEvent is one label-change notification from a ComponentIndex.
type IndexEvent struct {
	Seq  uint64 // monotonic per-index sequence number, gap-free per subscriber
	Kind uint8  // IndexEventMerge or IndexEventRebuild
	From int64  // merge: root of the absorbed component
	To   int64  // merge: root of the surviving component
}

// IndexSub is one subscription to a ComponentIndex's event stream.
type IndexSub struct {
	// C delivers events in sequence order. It is closed when the
	// subscription ends: after Close, after the index is dropped, or if
	// the subscriber falls so far behind that its buffer overflows (a
	// closed channel with undelivered sequence numbers means "resubscribe
	// and refetch").
	C <-chan IndexEvent
	// StartSeq is the index sequence number at subscription time; the
	// first delivered event has Seq == StartSeq+1.
	StartSeq uint64

	idx *ComponentIndex
	id  uint64
}

// Close ends the subscription and closes C. It is idempotent.
func (s *IndexSub) Close() { s.idx.unsubscribe(s.id) }

// ComponentIndex maintains the connected-component labelling of one edge
// table under streaming inserts. All methods are safe for concurrent use.
type ComponentIndex struct {
	c     *Cluster
	table string // physical table name (renamed along with the table)

	mu      sync.Mutex
	parent  map[int64]int64
	rank    map[int64]int8
	seq     uint64
	deletes int64 // delete statements since the last rebuild
	stale   bool  // deletes happened; labels may over-merge until rebuilt

	watchers map[uint64]chan IndexEvent
	nextSub  uint64

	// rebuildMu serializes rebuilds; while one is running, observed edges
	// are also queued on backlog so a rebuild snapshot racing with inserts
	// cannot lose their merges.
	rebuildMu  sync.Mutex
	rebuilding bool
	backlog    [][2]int64
}

// subBuffer is the per-subscriber event buffer; a subscriber that lags
// more than this many events behind is disconnected (closed channel).
const subBuffer = 4096

func newComponentIndex(c *Cluster, table string) *ComponentIndex {
	return &ComponentIndex{
		c:        c,
		table:    table,
		parent:   make(map[int64]int64),
		rank:     make(map[int64]int8),
		watchers: make(map[uint64]chan IndexEvent),
	}
}

// find returns the root of v with path compression, registering unseen
// vertices, and counts every touched label. Caller holds x.mu.
func (x *ComponentIndex) find(v int64, touched *int64) int64 {
	if _, ok := x.parent[v]; !ok {
		x.parent[v] = v
		*touched++
	}
	root := v
	for x.parent[root] != root {
		root = x.parent[root]
	}
	for x.parent[v] != root {
		x.parent[v], v = root, x.parent[v]
		*touched++
	}
	return root
}

// observe folds a batch of inserted rows into the labelling, emitting one
// merge event per actual union. Rows whose first two columns are not both
// non-NULL int64s are ignored (they carry no edge). Returns the labels
// touched and merges performed, for the cluster counters.
func (x *ComponentIndex) observe(rows []Row) (touched, merges int64) {
	x.mu.Lock()
	for _, r := range rows {
		if len(r) < 2 || r[0].Null || r[1].Null {
			continue
		}
		v, w := r[0].Int, r[1].Int
		if x.rebuilding {
			x.backlog = append(x.backlog, [2]int64{v, w})
		}
		rv, rw := x.find(v, &touched), x.find(w, &touched)
		if rv == rw {
			continue
		}
		// Union by rank; the higher-ranked root survives.
		if x.rank[rv] < x.rank[rw] {
			rv, rw = rw, rv
		} else if x.rank[rv] == x.rank[rw] {
			x.rank[rv]++
		}
		x.parent[rw] = rv
		touched++
		merges++
		x.seq++
		x.broadcast(IndexEvent{Seq: x.seq, Kind: IndexEventMerge, From: rw, To: rv})
	}
	x.mu.Unlock()
	return touched, merges
}

// broadcast fans an event out to every subscriber, disconnecting any
// whose buffer is full. Caller holds x.mu.
func (x *ComponentIndex) broadcast(ev IndexEvent) {
	for id, ch := range x.watchers {
		select {
		case ch <- ev:
		default:
			close(ch)
			delete(x.watchers, id)
		}
	}
}

// Labels returns a snapshot of the labelling: every registered vertex
// mapped to its component root. Vertices of one component share a label.
func (x *ComponentIndex) Labels() map[int64]int64 {
	var touched int64
	x.mu.Lock()
	out := make(map[int64]int64, len(x.parent))
	for v := range x.parent {
		out[v] = x.find(v, &touched)
	}
	x.mu.Unlock()
	return out
}

// Seq returns the current sequence number.
func (x *ComponentIndex) Seq() uint64 {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.seq
}

// Stale reports whether deletes have happened since the last rebuild (the
// labelling may over-merge until the next rebuild runs).
func (x *ComponentIndex) Stale() bool {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.stale
}

// Subscribe registers a new event subscriber. Events after StartSeq are
// delivered on C in order, gap-free; a subscriber that stops draining is
// disconnected by a channel close.
func (x *ComponentIndex) Subscribe() *IndexSub {
	ch := make(chan IndexEvent, subBuffer)
	x.mu.Lock()
	id := x.nextSub
	x.nextSub++
	x.watchers[id] = ch
	seq := x.seq
	x.mu.Unlock()
	return &IndexSub{C: ch, StartSeq: seq, idx: x, id: id}
}

func (x *ComponentIndex) unsubscribe(id uint64) {
	x.mu.Lock()
	if ch, ok := x.watchers[id]; ok {
		close(ch)
		delete(x.watchers, id)
	}
	x.mu.Unlock()
}

// closeAll disconnects every subscriber (index dropped or table gone).
func (x *ComponentIndex) closeAll() {
	x.mu.Lock()
	for id, ch := range x.watchers {
		close(ch)
		delete(x.watchers, id)
	}
	x.mu.Unlock()
}

// noteDeletes records a delete statement and reports whether a rebuild
// should run now. Policy: every delete statement that removed rows
// schedules a rebuild (deletes are the rare, expensive direction; inserts
// are the hot path).
func (x *ComponentIndex) noteDeletes(removed int64) bool {
	if removed <= 0 {
		return false
	}
	x.mu.Lock()
	x.deletes++
	x.stale = true
	x.mu.Unlock()
	return true
}

// applyRebuild replaces the labelling with a freshly computed one and
// folds in any edges observed while the rebuild ran.
func (x *ComponentIndex) applyRebuild(labels map[int64]int64, backlog [][2]int64) {
	x.mu.Lock()
	x.parent = make(map[int64]int64, len(labels))
	x.rank = make(map[int64]int8, len(labels))
	for v, l := range labels {
		x.parent[v] = l
		x.parent[l] = l
	}
	var touched int64
	for _, e := range backlog {
		rv, rw := x.find(e[0], &touched), x.find(e[1], &touched)
		if rv == rw {
			continue
		}
		if x.rank[rv] < x.rank[rw] {
			rv, rw = rw, rv
		} else if x.rank[rv] == x.rank[rw] {
			x.rank[rv]++
		}
		x.parent[rw] = rv
	}
	x.stale = false
	x.seq++
	x.broadcast(IndexEvent{Seq: x.seq, Kind: IndexEventRebuild})
	x.mu.Unlock()
}

// SetComponentRebuilder installs the full-recompute hook rebuilds use: a
// function mapping a physical table name to a fresh vertex→label map. The
// dbcc layer wires this to the deterministic-RC driver (running through
// the prepared-statement path); without one, rebuilds rescan the table
// into a fresh union-find locally.
func (c *Cluster) SetComponentRebuilder(fn func(table string) (map[int64]int64, error)) {
	c.idxMu.Lock()
	c.rebuilder = fn
	c.idxMu.Unlock()
}

// CreateComponentIndex builds a component index over an existing edge
// table (first two columns are the edge endpoints) by scanning its
// current rows, and registers it for maintenance by subsequent InsertRows
// and DeleteRows calls.
func (c *Cluster) CreateComponentIndex(table string) error {
	t, ok := c.Table(table)
	if !ok {
		return fmt.Errorf("engine: table %q does not exist", table)
	}
	if len(t.Schema) < 2 {
		return fmt.Errorf("engine: component index needs at least two columns, table %q has %d", table, len(t.Schema))
	}
	x := newComponentIndex(c, table)
	c.idxMu.Lock()
	if _, exists := c.indexes[table]; exists {
		c.idxMu.Unlock()
		return fmt.Errorf("engine: component index on %q already exists", table)
	}
	c.indexes[table] = x
	c.idxMu.Unlock()
	// Fold in the rows already stored. Rows inserted concurrently are fed
	// through the InsertRows hook; re-observing an edge is idempotent.
	var rows int64
	for _, p := range t.snapshotParts() {
		touched, merges := x.observe(p)
		rows += int64(len(p))
		c.addIndexCounters(touched, merges, 0)
	}
	c.addTrace(TraceRecord{
		Kind:   "index",
		Target: table,
		Plan:   fmt.Sprintf("CreateComponentIndex(%s, %d rows)", table, rows),
		Rows:   rows,
	})
	return nil
}

// DropComponentIndex removes a table's component index, disconnecting its
// subscribers.
func (c *Cluster) DropComponentIndex(table string) error {
	c.idxMu.Lock()
	x, ok := c.indexes[table]
	if !ok {
		c.idxMu.Unlock()
		return fmt.Errorf("engine: no component index on %q", table)
	}
	delete(c.indexes, table)
	c.idxMu.Unlock()
	x.closeAll()
	return nil
}

// ComponentIndex returns the index registered on a table, if any.
func (c *Cluster) ComponentIndex(table string) (*ComponentIndex, bool) {
	c.idxMu.Lock()
	defer c.idxMu.Unlock()
	x, ok := c.indexes[table]
	return x, ok
}

// feedIndex folds freshly inserted rows into the table's component index,
// if one exists. Called by InsertRows after the table locks are released.
func (c *Cluster) feedIndex(table string, rows []Row) {
	c.idxMu.Lock()
	x, ok := c.indexes[table]
	c.idxMu.Unlock()
	if !ok {
		return
	}
	touched, merges := x.observe(rows)
	c.addIndexCounters(touched, merges, 0)
}

// dropIndexFor tears down the index of a dropped table.
func (c *Cluster) dropIndexFor(table string) {
	c.idxMu.Lock()
	x, ok := c.indexes[table]
	if ok {
		delete(c.indexes, table)
	}
	c.idxMu.Unlock()
	if ok {
		x.closeAll()
	}
}

// renameIndexFor re-keys the index of a renamed table.
func (c *Cluster) renameIndexFor(oldName, newName string) {
	c.idxMu.Lock()
	if x, ok := c.indexes[oldName]; ok {
		delete(c.indexes, oldName)
		x.table = newName
		c.indexes[newName] = x
	}
	c.idxMu.Unlock()
}

// maybeRebuildIndex runs a rebuild of the table's index after a delete
// statement, through the installed rebuilder or a local rescan. Rebuilds
// are serialized per index; edges inserted while one runs are folded into
// its result via the backlog. Must be called with no engine locks held —
// the rebuilder re-enters the cluster to run a full recompute.
func (c *Cluster) maybeRebuildIndex(table string, removed int64) error {
	c.idxMu.Lock()
	x, ok := c.indexes[table]
	rebuilder := c.rebuilder
	c.idxMu.Unlock()
	if !ok || !x.noteDeletes(removed) {
		return nil
	}
	x.rebuildMu.Lock()
	defer x.rebuildMu.Unlock()
	x.mu.Lock()
	x.rebuilding = true
	x.backlog = nil
	x.mu.Unlock()
	var labels map[int64]int64
	var err error
	if rebuilder != nil {
		labels, err = rebuilder(table)
	} else {
		labels, err = c.rescanLabels(table)
	}
	x.mu.Lock()
	x.rebuilding = false
	backlog := x.backlog
	x.backlog = nil
	x.mu.Unlock()
	if err != nil {
		return fmt.Errorf("engine: component index rebuild on %q: %w", table, err)
	}
	x.applyRebuild(labels, backlog)
	c.addIndexCounters(int64(len(labels)), 0, 1)
	return nil
}

// rescanLabels is the fallback rebuilder: a fresh union-find over the
// table's current rows.
func (c *Cluster) rescanLabels(table string) (map[int64]int64, error) {
	t, ok := c.Table(table)
	if !ok {
		return nil, fmt.Errorf("engine: table %q does not exist", table)
	}
	scratch := newComponentIndex(c, table)
	for _, p := range t.snapshotParts() {
		scratch.observe(p)
	}
	return scratch.Labels(), nil
}

// addIndexCounters charges index maintenance work to the statistics.
func (c *Cluster) addIndexCounters(touched, merges, rebuilds int64) {
	if touched == 0 && merges == 0 && rebuilds == 0 {
		return
	}
	c.statsMu.Lock()
	c.stats.IndexLabelsTouched += touched
	c.stats.IndexMerges += merges
	c.stats.IndexRebuilds += rebuilds
	c.statsMu.Unlock()
}
