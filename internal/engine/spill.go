package engine

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Disk spilling: the file substrate of the memory-bounded kernels.
//
// Spilling kernels write sequences of encoded chunks ("frames") into
// partition files under a per-statement directory of the cluster's spill
// root (an os.MkdirTemp directory created on first use and removed by
// Cluster.Close). The statement directory is removed when the statement
// finishes — success or failure — so an error mid-spill never leaks
// partition files; the leak-check tests scan SpillRoot afterwards.
//
// Each frame is length-prefixed and self-describing:
//
//	u32 frameLen                      byte length of the body below
//	u32 ncols, u32 nrows              chunk shape
//	per column:
//	  u8  hasNulls                    0 = all valid, 1 = bitmap present
//	  u64 × ceil(nrows/64) bitmap     only when hasNulls = 1
//	  i64 × nrows values              little-endian
//
// decodeChunkFrame validates the header against sanity caps and the
// available byte count before allocating, so a corrupted or adversarial
// file (the fuzz target FuzzChunkCodec) fails cleanly instead of
// panicking or over-allocating.
//
// Spill file writes are a failure surface for the fault injector:
// FaultConfig.SpillFailureRate makes individual frame writes fail with
// ErrInjectedFault, deterministically per (seed, statement, operator,
// segment, attempt, write ordinal). The failure propagates out of the
// segment task and is retried by the ordinary retry loop; partition files
// are opened with O_TRUNC under deterministic names, so a retried attempt
// overwrites its predecessor's partial output — the idempotence the
// engine's task model requires.

// Sanity caps for decoding untrusted frames.
const (
	spillMaxCols       = 1 << 12
	spillMaxRows       = 1 << 24
	spillMaxFrameBytes = 1 << 30
)

// errSpillCorrupt marks a malformed spill frame.
var errSpillCorrupt = errors.New("engine: corrupt spill frame")

// encodeChunkFrame appends the frame body (without the length prefix) of
// ch to buf and returns the extended slice.
func encodeChunkFrame(buf []byte, ch *Chunk) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ch.cols)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(ch.length))
	words := (ch.length + 63) / 64
	for c := range ch.cols {
		nb := ch.nulls[c]
		if nb == nil {
			buf = append(buf, 0)
		} else {
			buf = append(buf, 1)
			// Builder bitmaps grow lazily and may be shorter than the full
			// word count; encode always writes full words, zero-padded.
			for w := 0; w < words; w++ {
				var v uint64
				if w < len(nb) {
					v = nb[w]
				}
				buf = binary.LittleEndian.AppendUint64(buf, v)
			}
		}
		col := ch.cols[c]
		for r := 0; r < ch.length; r++ {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(col[r]))
		}
	}
	return buf
}

// decodeChunkFrame decodes one frame body from data, returning the chunk
// and the number of bytes consumed.
func decodeChunkFrame(data []byte) (*Chunk, int, error) {
	if len(data) < 8 {
		return nil, 0, errSpillCorrupt
	}
	ncols := int(binary.LittleEndian.Uint32(data[0:4]))
	nrows := int(binary.LittleEndian.Uint32(data[4:8]))
	if ncols < 0 || ncols > spillMaxCols || nrows < 0 || nrows > spillMaxRows {
		return nil, 0, errSpillCorrupt
	}
	words := (nrows + 63) / 64
	// Cheap size check before allocating: every column needs at least the
	// flag byte plus its values.
	if minLen := 8 + ncols*(1+8*nrows); len(data) < minLen {
		return nil, 0, errSpillCorrupt
	}
	ch := newChunk(ncols, nrows)
	off := 8
	for c := 0; c < ncols; c++ {
		if off >= len(data) {
			return nil, 0, errSpillCorrupt
		}
		hasNulls := data[off]
		off++
		if hasNulls > 1 {
			return nil, 0, errSpillCorrupt
		}
		if hasNulls == 1 {
			if off+8*words > len(data) {
				return nil, 0, errSpillCorrupt
			}
			nb := make(nullBitmap, words)
			for w := 0; w < words; w++ {
				nb[w] = binary.LittleEndian.Uint64(data[off : off+8])
				off += 8
			}
			// Bits beyond nrows would silently corrupt later gathers.
			if nrows%64 != 0 && words > 0 && nb[words-1]>>(uint(nrows)%64) != 0 {
				return nil, 0, errSpillCorrupt
			}
			ch.nulls[c] = nb
		}
		if off+8*nrows > len(data) {
			return nil, 0, errSpillCorrupt
		}
		col := ch.cols[c]
		for r := 0; r < nrows; r++ {
			col[r] = int64(binary.LittleEndian.Uint64(data[off : off+8]))
			off += 8
		}
	}
	return ch, off, nil
}

// ensureSpillRoot lazily creates the cluster's spill root directory.
func (c *Cluster) ensureSpillRoot() (string, error) {
	c.spillMu.Lock()
	defer c.spillMu.Unlock()
	if c.spillRoot == "" {
		dir, err := os.MkdirTemp("", "dbcc-spill-")
		if err != nil {
			return "", fmt.Errorf("engine: creating spill root: %w", err)
		}
		c.spillRoot = dir
	}
	return c.spillRoot, nil
}

// SpillRoot returns the cluster's spill directory, or "" if no statement
// has spilled yet. Statement subdirectories are removed when their
// statement finishes, so between statements the root is empty — the
// invariant the spill leak-check tests scan for.
func (c *Cluster) SpillRoot() string {
	c.spillMu.Lock()
	defer c.spillMu.Unlock()
	return c.spillRoot
}

// Close releases the cluster's disk resources (the spill root directory
// and everything under it). The cluster remains usable; a later spill
// recreates the root. Close is safe to call multiple times and on
// clusters that never spilled.
func (c *Cluster) Close() error {
	c.spillMu.Lock()
	dir := c.spillRoot
	c.spillRoot = ""
	c.spillMu.Unlock()
	if dir == "" {
		return nil
	}
	return os.RemoveAll(dir)
}

// ensureSpillDir lazily creates this statement's spill directory. Safe
// for concurrent use by segment tasks; the directory is removed by
// execEnv.close when the statement finishes.
func (e *execEnv) ensureSpillDir() (string, error) {
	e.spillOnce.Do(func() {
		root, err := e.c.ensureSpillRoot()
		if err != nil {
			e.spillDirErr = err
			return
		}
		dir := filepath.Join(root, fmt.Sprintf("stmt%d", e.stmt))
		if err := os.MkdirAll(dir, 0o700); err != nil {
			e.spillDirErr = fmt.Errorf("engine: creating statement spill dir: %w", err)
			return
		}
		e.spillDir = dir
	})
	return e.spillDir, e.spillDirErr
}

// noteSpill records spill activity in both the operator counters (drained
// into OpMetrics by finishOp) and the statement ledger (folded into
// cluster Stats by execEnv.close).
func (e *execEnv) noteSpill(bytes, parts, passes int64) {
	e.opSpilled.Add(bytes)
	e.opSpillParts.Add(parts)
	e.opSpillPasses.Add(passes)
	e.acct.spilledBytes.Add(bytes)
	e.acct.spillParts.Add(parts)
	e.acct.spillPasses.Add(passes)
}

// spillIOFault consults the fault injector before a physical spill write.
// The decision is a pure function of (seed, statement, operator, segment,
// attempt, ordinal), so chaos runs reproduce exactly; the returned error
// wraps ErrInjectedFault, making the whole segment-task attempt retryable.
func (e *execEnv) spillIOFault(seg int, ordinal *int64) error {
	fi := e.c.injector
	if fi == nil || fi.cfg.SpillFailureRate <= 0 {
		return nil
	}
	nth := *ordinal
	*ordinal = nth + 1
	attempt := int(e.curAttempt[seg].Load())
	if !fi.decideSpillIO(e.stmt, e.opSeq.Load(), seg, attempt, nth) {
		return nil
	}
	e.opFaults.Add(1)
	return fmt.Errorf("spill write (stmt %d seg %d attempt %d io %d): %w",
		e.stmt, seg, attempt, nth, ErrInjectedFault)
}

// spillFanout picks the partition fan-out for an estimated working set:
// enough partitions that each is expected to fit the share, between 2 and
// 32 (the paper's substrate, like PostgreSQL's hash join, caps fan-out
// and recurses on oversized partitions instead of opening thousands of
// files). The fan-out is additionally capped so the partition buffers
// alone — at their one-row floor — never exceed half the share: a very
// tight share gets fewer partitions and deeper recursion instead of a
// structural budget breach.
func spillFanout(est, share, rowBytes int64) int {
	f := int64(4)
	for f*share < est && f < 32 {
		f <<= 1
	}
	for f > 2 && 2*f*rowBytes > share {
		f >>= 1
	}
	return int(f)
}

// spillSalt derives the partition-hash perturbation for one recursion
// depth, so re-partitioning an oversized partition redistributes its rows
// instead of rehashing them into a single bucket again.
func spillSalt(depth int) uint64 {
	return 0x5f11ed ^ uint64(depth)*0x9e3779b97f4a7c15
}

// maxSpillDepth caps partition recursion. A partition that still exceeds
// the share at the cap (e.g. one extremely hot key, which no amount of
// re-partitioning can split) is processed in memory — correctness over
// the budget, the same escape hatch real executors use.
const maxSpillDepth = 6

// spillPartWriter buffers rows for one partition file and writes framed
// chunks through the fault-injection hook.
type spillPartWriter struct {
	f     *os.File
	path  string
	b     *chunkBuilder
	rows  int64 // rows written to the file (excluding the open buffer)
	bytes int64 // bytes written to the file
}

// partitionSet fans one segment task's rows out into fanout partition
// files. Buffer sizes adapt to the share so the set's in-memory footprint
// stays within it; the footprint is charged to the statement ledger for
// the set's lifetime.
type partitionSet struct {
	e       *execEnv
	seg     int
	parts   []*spillPartWriter
	ncols   int
	bufRows int
	scratch []byte
	ioSeq   *int64
	charged int64
}

// spillBufRows sizes partition buffers: the whole set (fanout buffers of
// ncols 8-byte values) should use at most half the share, within sane
// bounds. The floor is a single row — tiny shares trade frame granularity
// for staying accountable.
func spillBufRows(share int64, fanout, ncols int) int {
	rowB := int64(ncols) * 8
	if rowB <= 0 {
		rowB = 8
	}
	rows := share / (2 * int64(fanout) * rowB)
	if rows < 1 {
		rows = 1
	}
	if rows > 1024 {
		rows = 1024
	}
	return int(rows)
}

// newPartitionSet creates fanout partition files under dir named
// "<base>_p<i>". Files are created with O_TRUNC semantics (os.Create), so
// a retried task attempt deterministically overwrites its own partials.
func (e *execEnv) newPartitionSet(seg int, dir, base string, fanout, ncols int, ioSeq *int64) (*partitionSet, error) {
	ps := &partitionSet{
		e:       e,
		seg:     seg,
		parts:   make([]*spillPartWriter, fanout),
		ncols:   ncols,
		bufRows: spillBufRows(e.segShare(), fanout, ncols),
		ioSeq:   ioSeq,
	}
	for i := range ps.parts {
		path := filepath.Join(dir, fmt.Sprintf("%s_p%d.part", base, i))
		f, err := os.Create(path)
		if err != nil {
			ps.abort()
			return nil, fmt.Errorf("engine: creating spill partition: %w", err)
		}
		ps.parts[i] = &spillPartWriter{f: f, path: path, b: newChunkBuilder(ncols, 0)}
	}
	ps.charged = int64(fanout) * int64(ps.bufRows) * int64(ncols) * 8
	e.acct.charge(ps.charged)
	return ps, nil
}

// appendRow routes all columns of row r of ch into partition p.
func (ps *partitionSet) appendRow(p int, ch *Chunk, r int) error {
	w := ps.parts[p]
	for c := 0; c < ps.ncols; c++ {
		w.b.appendCol(c, ch.cols[c][r], ch.nulls[c].get(r))
	}
	w.b.n++
	if w.b.n >= ps.bufRows {
		return ps.flush(p)
	}
	return nil
}

// appendRowExtra routes row r of ch plus one extra trailing value (the
// hidden original-row-index column the spill kernels carry).
func (ps *partitionSet) appendRowExtra(p int, ch *Chunk, r int, extra int64) error {
	w := ps.parts[p]
	nc := len(ch.cols)
	for c := 0; c < nc; c++ {
		w.b.appendCol(c, ch.cols[c][r], ch.nulls[c].get(r))
	}
	w.b.appendCol(nc, extra, false)
	w.b.n++
	if w.b.n >= ps.bufRows {
		return ps.flush(p)
	}
	return nil
}

// writeSpillFrame length-prefixes, encodes and writes one frame through
// the fault-injection hook, returning the bytes written. The caller's
// scratch buffer is reused across frames.
func (e *execEnv) writeSpillFrame(seg int, f *os.File, scratch *[]byte, fr *Chunk, ioSeq *int64) (int64, error) {
	buf := (*scratch)[:0]
	buf = binary.LittleEndian.AppendUint32(buf, 0) // frameLen placeholder
	buf = encodeChunkFrame(buf, fr)
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(buf)-4))
	*scratch = buf
	if err := e.spillIOFault(seg, ioSeq); err != nil {
		return 0, err
	}
	if _, err := f.Write(buf); err != nil {
		return 0, fmt.Errorf("engine: writing spill frame: %w", err)
	}
	return int64(len(buf)), nil
}

// flush encodes and writes partition p's buffered rows as one frame.
func (ps *partitionSet) flush(p int) error {
	w := ps.parts[p]
	if w.b.n == 0 {
		return nil
	}
	n := w.b.n
	nb, err := ps.e.writeSpillFrame(ps.seg, w.f, &ps.scratch, w.b.finish(), ps.ioSeq)
	if err != nil {
		return err
	}
	w.rows += int64(n)
	w.bytes += nb
	w.b = newChunkBuilder(ps.ncols, 0)
	return nil
}

// finish flushes and closes every partition file, reports the pass to the
// spill counters, releases the buffer charge, and returns the writers
// (rows/bytes per partition) for the caller to read back.
func (ps *partitionSet) finish() ([]*spillPartWriter, error) {
	var total int64
	for p := range ps.parts {
		if err := ps.flush(p); err != nil {
			ps.abort()
			return nil, err
		}
		if err := ps.parts[p].f.Close(); err != nil {
			ps.abort()
			return nil, fmt.Errorf("engine: closing spill partition: %w", err)
		}
		ps.parts[p].f = nil
		total += ps.parts[p].bytes
	}
	ps.e.acct.release(ps.charged)
	ps.charged = 0
	ps.e.noteSpill(total, int64(len(ps.parts)), 1)
	return ps.parts, nil
}

// abort closes any open files and releases charges after a failure. The
// files themselves are removed with the statement's spill directory.
func (ps *partitionSet) abort() {
	for _, w := range ps.parts {
		if w != nil && w.f != nil {
			w.f.Close()
			w.f = nil
		}
	}
	ps.e.acct.release(ps.charged)
	ps.charged = 0
}

// spillReader streams frames back out of one partition file.
type spillReader struct {
	f   *os.File
	br  *bufio.Reader
	buf []byte
}

func openSpillReader(path string) (*spillReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("engine: opening spill partition: %w", err)
	}
	return &spillReader{f: f, br: bufio.NewReaderSize(f, 1<<15)}, nil
}

// next returns the next frame, or (nil, nil) at end of file.
func (sr *spillReader) next() (*Chunk, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(sr.br, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, nil
		}
		return nil, fmt.Errorf("engine: reading spill frame header: %w", err)
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > spillMaxFrameBytes {
		return nil, errSpillCorrupt
	}
	if cap(sr.buf) < int(n) {
		sr.buf = make([]byte, n)
	}
	sr.buf = sr.buf[:n]
	if _, err := io.ReadFull(sr.br, sr.buf); err != nil {
		return nil, fmt.Errorf("engine: reading spill frame: %w", err)
	}
	ch, _, err := decodeChunkFrame(sr.buf)
	return ch, err
}

func (sr *spillReader) close() {
	if sr.f != nil {
		sr.f.Close()
		sr.f = nil
	}
}

// readPartition reads a whole partition file back as one chunk of ncols
// columns (the build side of a grace join sub-partition).
func readPartition(path string, ncols int) (*Chunk, error) {
	sr, err := openSpillReader(path)
	if err != nil {
		return nil, err
	}
	defer sr.close()
	var frames []*Chunk
	for {
		fr, err := sr.next()
		if err != nil {
			return nil, err
		}
		if fr == nil {
			break
		}
		frames = append(frames, fr)
	}
	if len(frames) == 1 {
		return frames[0], nil
	}
	return concatChunks(ncols, frames), nil
}
