package engine

import (
	"context"
	"testing"

	"dbcc/internal/xrand"
)

// Differential tests for the columnar kernels: each rewritten kernel
// (join, group-by, distinct, shuffle) is compared against a naive
// row-at-a-time reference on randomized inputs with NULLs and heavily
// skewed keys. The kernels promise not just the same multiset but the
// same row order the row engine produced, so the kernel-level checks
// assert exact equality; the query-level checks additionally assert the
// OpMetrics row counts match the reference cardinalities.

// skewedRows generates rows whose key column is heavily skewed: most keys
// come from a tiny hot set (forcing long hash-join chains and populous
// groups), a few from a wide range, plus NULLs.
func skewedRows(rng *xrand.Rand, n, ncols int) []Row {
	rows := make([]Row, n)
	for i := range rows {
		row := make(Row, ncols)
		for c := range row {
			switch rng.Uint64n(10) {
			case 0:
				row[c] = NullDatum
			case 1, 2:
				row[c] = I(int64(rng.Uint64n(1 << 30))) // cold: near-unique
			default:
				row[c] = I(int64(rng.Uint64n(3))) // hot: 3 values
			}
		}
		rows[i] = row
	}
	return rows
}

// chunkEqualRows asserts a chunk materialises to exactly want, in order.
func chunkEqualRows(t *testing.T, ch *Chunk, want []Row) {
	t.Helper()
	got := chunkToRows(ch)
	if len(got) != len(want) {
		t.Fatalf("kernel produced %d rows, want %d", len(got), len(want))
	}
	for r := range want {
		for c := range want[r] {
			if got[r][c] != want[r][c] {
				t.Fatalf("row %d: got %v, want %v", r, got[r], want[r])
			}
		}
	}
}

// TestJoinChunksMatchesReference differential-tests the join kernel
// against a nested-loop reference on one pair of chunks, including the
// exact match order.
func TestJoinChunksMatchesReference(t *testing.T) {
	rng := xrand.New(71)
	for trial := 0; trial < 40; trial++ {
		left := skewedRows(rng, int(rng.Uint64n(120)), 2)
		right := skewedRows(rng, int(rng.Uint64n(120)), 2)
		lch, rch := rowsToChunk(left, 2), rowsToChunk(right, 2)
		for _, kind := range []JoinKind{InnerJoin, LeftOuterJoin} {
			var want []Row
			for _, lr := range left {
				matched := false
				for _, rr := range right {
					if !lr[0].Null && !rr[1].Null && lr[0].Int == rr[1].Int {
						matched = true
						want = append(want, Row{lr[0], lr[1], rr[0], rr[1]})
					}
				}
				if !matched && kind == LeftOuterJoin {
					want = append(want, Row{lr[0], lr[1], NullDatum, NullDatum})
				}
			}
			chunkEqualRows(t, joinChunks(lch, rch, 0, 1, kind), want)
		}
	}
}

// TestGroupChunkMatchesReference differential-tests the group-by fold
// kernel (partial layout in, one row per group out) against a map-based
// reference, including first-seen group order.
func TestGroupChunkMatchesReference(t *testing.T) {
	rng := xrand.New(73)
	aggs := []Agg{
		{Op: AggMin, Arg: Col(1), Name: "mn"},
		{Op: AggMax, Arg: Col(1), Name: "mx"},
		{Op: AggSum, Arg: Col(1), Name: "sm"},
	}
	for trial := 0; trial < 40; trial++ {
		// Partial layout: one key column, then one value column per agg.
		raw := skewedRows(rng, int(rng.Uint64n(250)), 2)
		partial := make([]Row, len(raw))
		for i, r := range raw {
			partial[i] = Row{r[0], r[1], r[1], r[1]}
		}

		type state struct{ mn, mx, sm Datum }
		ref := map[Datum]*state{}
		var order []Datum
		for _, r := range raw {
			st, ok := ref[r[0]]
			if !ok {
				st = &state{mn: NullDatum, mx: NullDatum, sm: NullDatum}
				ref[r[0]] = st
				order = append(order, r[0])
			}
			if r[1].Null {
				continue
			}
			if st.mn.Null || r[1].Int < st.mn.Int {
				st.mn = r[1]
			}
			if st.mx.Null || r[1].Int > st.mx.Int {
				st.mx = r[1]
			}
			if st.sm.Null {
				st.sm = I(0)
			}
			st.sm = I(st.sm.Int + r[1].Int)
		}
		want := make([]Row, len(order))
		for i, k := range order {
			st := ref[k]
			want[i] = Row{k, st.mn, st.mx, st.sm}
		}
		chunkEqualRows(t, groupChunk(rowsToChunk(partial, 4), 1, aggs), want)
	}
}

// TestDistinctChunkMatchesReference differential-tests the dedup kernel
// against a map reference, including keep-first order.
func TestDistinctChunkMatchesReference(t *testing.T) {
	rng := xrand.New(79)
	for trial := 0; trial < 40; trial++ {
		rows := skewedRows(rng, int(rng.Uint64n(300)), 3)
		seen := map[[3]Datum]bool{}
		var want []Row
		for _, r := range rows {
			k := [3]Datum{r[0], r[1], r[2]}
			if !seen[k] {
				seen[k] = true
				want = append(want, r)
			}
		}
		chunkEqualRows(t, distinctChunk(rowsToChunk(rows, 3)), want)
	}
}

// TestShuffleMatchesReference differential-tests the counting shuffle:
// every row lands on the segment the row-at-a-time destination function
// chooses, per-segment order is source-major (segment 0's rows first, in
// their original order), and the moved-bytes accounting equals the
// reference count of segment-changing rows at the wire width.
func TestShuffleMatchesReference(t *testing.T) {
	rng := xrand.New(83)
	for trial := 0; trial < 25; trial++ {
		segs := int(rng.Uint64n(7)) + 1
		c := NewCluster(Options{Segments: segs})
		rows := skewedRows(rng, int(rng.Uint64n(400)), 2)
		in := &relation{schema: Schema{"a", "b"}, parts: make([]*Chunk, segs), distKey: NoDistKey}
		// Spread input rows round-robin across source segments.
		srcRows := make([][]Row, segs)
		for i, r := range rows {
			srcRows[i%segs] = append(srcRows[i%segs], r)
		}
		for s := range in.parts {
			in.parts[s] = rowsToChunk(srcRows[s], 2)
		}
		destOf := func(r Row) int {
			if r[0].Null {
				return 0
			}
			return int(uint64(r[0].Int) % uint64(segs))
		}

		out, moved, err := c.newExecEnv(context.Background()).shuffle(in, func(ch *Chunk, r int) int {
			return destOf(Row{ch.datum(0, r), ch.datum(1, r)})
		}, NoDistKey)
		if err != nil {
			t.Fatalf("shuffle: %v", err)
		}

		wantParts := make([][]Row, segs)
		var wantMoved int64
		for src := 0; src < segs; src++ {
			for _, r := range srcRows[src] {
				d := destOf(r)
				wantParts[d] = append(wantParts[d], r)
				if d != src {
					wantMoved += int64(len(r)) * DatumWireSize
				}
			}
		}
		if moved != wantMoved {
			t.Fatalf("trial %d: shuffle charged %d bytes, want %d", trial, moved, wantMoved)
		}
		for s := 0; s < segs; s++ {
			chunkEqualRows(t, out.parts[s], wantParts[s])
		}
	}
}

// TestKernelOpMetricsRowCounts runs a query through every rewritten
// operator and asserts the OpMetrics row counts equal reference
// cardinalities computed row-at-a-time.
func TestKernelOpMetricsRowCounts(t *testing.T) {
	rng := xrand.New(89)
	for trial := 0; trial < 10; trial++ {
		rows := skewedRows(rng, int(rng.Uint64n(200))+50, 2)
		c := NewCluster(Options{Segments: 4})
		mustCreate(t, c, "t", Schema{"k", "x"}, 0, rows)

		// Reference cardinalities.
		var joinOut int64
		for _, a := range rows {
			for _, b := range rows {
				if !a[0].Null && !b[0].Null && a[0].Int == b[0].Int {
					joinOut++
				}
			}
		}
		// Groups form over the join output: every non-NULL key self-matches,
		// NULL keys never join and so never group.
		groups := map[Datum]bool{}
		for _, r := range rows {
			if !r[0].Null {
				groups[r[0]] = true
			}
		}
		distinct := map[[2]Datum]bool{}
		for _, r := range rows {
			distinct[[2]Datum{r[0], r[1]}] = true
		}

		p := GroupBy(
			JoinPlan{Left: Scan("t"), Right: Scan("t"), LeftKey: 0, RightKey: 0, Kind: InnerJoin},
			[]int{0},
			Agg{Op: AggCount, Name: "n"})
		_, got, root, err := c.QueryAnalyze(p)
		if err != nil {
			t.Fatal(err)
		}
		if root.Rows != int64(len(groups)) {
			t.Fatalf("trial %d: GroupBy OpMetrics.Rows = %d, want %d groups", trial, root.Rows, len(groups))
		}
		if len(got) != len(groups) {
			t.Fatalf("trial %d: %d result rows, want %d", trial, len(got), len(groups))
		}
		join := root.Children[0]
		if join.Rows != joinOut {
			t.Fatalf("trial %d: join OpMetrics.Rows = %d, want %d", trial, join.Rows, joinOut)
		}

		_, drows, droot, err := c.QueryAnalyze(Distinct(Scan("t")))
		if err != nil {
			t.Fatal(err)
		}
		if droot.Rows != int64(len(distinct)) || len(drows) != len(distinct) {
			t.Fatalf("trial %d: Distinct rows = %d (metrics %d), want %d",
				trial, len(drows), droot.Rows, len(distinct))
		}
	}
}
