package engine

import (
	"context"
	"testing"

	"dbcc/internal/xrand"
)

// Differential tests for the columnar kernels: each rewritten kernel
// (join, group-by, distinct, shuffle) is compared against a naive
// row-at-a-time reference on randomized inputs with NULLs and heavily
// skewed keys. The kernels promise not just the same multiset but the
// same row order the row engine produced, so the kernel-level checks
// assert exact equality; the query-level checks additionally assert the
// OpMetrics row counts match the reference cardinalities.

// skewedRows generates rows whose key column is heavily skewed: most keys
// come from a tiny hot set (forcing long hash-join chains and populous
// groups), a few from a wide range, plus NULLs.
func skewedRows(rng *xrand.Rand, n, ncols int) []Row {
	rows := make([]Row, n)
	for i := range rows {
		row := make(Row, ncols)
		for c := range row {
			switch rng.Uint64n(10) {
			case 0:
				row[c] = NullDatum
			case 1, 2:
				row[c] = I(int64(rng.Uint64n(1 << 30))) // cold: near-unique
			default:
				row[c] = I(int64(rng.Uint64n(3))) // hot: 3 values
			}
		}
		rows[i] = row
	}
	return rows
}

// chunkEqualRows asserts a chunk materialises to exactly want, in order.
func chunkEqualRows(t *testing.T, ch *Chunk, want []Row) {
	t.Helper()
	got := chunkToRows(ch)
	if len(got) != len(want) {
		t.Fatalf("kernel produced %d rows, want %d", len(got), len(want))
	}
	for r := range want {
		for c := range want[r] {
			if got[r][c] != want[r][c] {
				t.Fatalf("row %d: got %v, want %v", r, got[r], want[r])
			}
		}
	}
}

// TestJoinChunksMatchesReference differential-tests the join kernel
// against a nested-loop reference on one pair of chunks, including the
// exact match order.
func TestJoinChunksMatchesReference(t *testing.T) {
	rng := xrand.New(71)
	for trial := 0; trial < 40; trial++ {
		left := skewedRows(rng, int(rng.Uint64n(120)), 2)
		right := skewedRows(rng, int(rng.Uint64n(120)), 2)
		lch, rch := rowsToChunk(left, 2), rowsToChunk(right, 2)
		for _, kind := range []JoinKind{InnerJoin, LeftOuterJoin} {
			var want []Row
			for _, lr := range left {
				matched := false
				for _, rr := range right {
					if !lr[0].Null && !rr[1].Null && lr[0].Int == rr[1].Int {
						matched = true
						want = append(want, Row{lr[0], lr[1], rr[0], rr[1]})
					}
				}
				if !matched && kind == LeftOuterJoin {
					want = append(want, Row{lr[0], lr[1], NullDatum, NullDatum})
				}
			}
			chunkEqualRows(t, joinChunks(lch, rch, 0, 1, kind), want)
		}
	}
}

// TestGroupChunkMatchesReference differential-tests the group-by fold
// kernel (partial layout in, one row per group out) against a map-based
// reference, including first-seen group order.
func TestGroupChunkMatchesReference(t *testing.T) {
	rng := xrand.New(73)
	aggs := []Agg{
		{Op: AggMin, Arg: Col(1), Name: "mn"},
		{Op: AggMax, Arg: Col(1), Name: "mx"},
		{Op: AggSum, Arg: Col(1), Name: "sm"},
	}
	for trial := 0; trial < 40; trial++ {
		// Partial layout: one key column, then one value column per agg.
		raw := skewedRows(rng, int(rng.Uint64n(250)), 2)
		partial := make([]Row, len(raw))
		for i, r := range raw {
			partial[i] = Row{r[0], r[1], r[1], r[1]}
		}

		type state struct{ mn, mx, sm Datum }
		ref := map[Datum]*state{}
		var order []Datum
		for _, r := range raw {
			st, ok := ref[r[0]]
			if !ok {
				st = &state{mn: NullDatum, mx: NullDatum, sm: NullDatum}
				ref[r[0]] = st
				order = append(order, r[0])
			}
			if r[1].Null {
				continue
			}
			if st.mn.Null || r[1].Int < st.mn.Int {
				st.mn = r[1]
			}
			if st.mx.Null || r[1].Int > st.mx.Int {
				st.mx = r[1]
			}
			if st.sm.Null {
				st.sm = I(0)
			}
			st.sm = I(st.sm.Int + r[1].Int)
		}
		want := make([]Row, len(order))
		for i, k := range order {
			st := ref[k]
			want[i] = Row{k, st.mn, st.mx, st.sm}
		}
		chunkEqualRows(t, groupChunk(rowsToChunk(partial, 4), 1, aggs), want)
	}
}

// TestDistinctChunkMatchesReference differential-tests the dedup kernel
// against a map reference, including keep-first order.
func TestDistinctChunkMatchesReference(t *testing.T) {
	rng := xrand.New(79)
	for trial := 0; trial < 40; trial++ {
		rows := skewedRows(rng, int(rng.Uint64n(300)), 3)
		seen := map[[3]Datum]bool{}
		var want []Row
		for _, r := range rows {
			k := [3]Datum{r[0], r[1], r[2]}
			if !seen[k] {
				seen[k] = true
				want = append(want, r)
			}
		}
		chunkEqualRows(t, distinctChunk(rowsToChunk(rows, 3)), want)
	}
}

// TestShuffleMatchesReference differential-tests the counting shuffle:
// every row lands on the segment the row-at-a-time destination function
// chooses, per-segment order is source-major (segment 0's rows first, in
// their original order), and the moved-bytes accounting equals the
// reference count of segment-changing rows at the wire width.
func TestShuffleMatchesReference(t *testing.T) {
	rng := xrand.New(83)
	for trial := 0; trial < 25; trial++ {
		segs := int(rng.Uint64n(7)) + 1
		c := NewCluster(Options{Segments: segs})
		rows := skewedRows(rng, int(rng.Uint64n(400)), 2)
		in := &relation{schema: Schema{"a", "b"}, parts: make([]*Chunk, segs), distKey: NoDistKey}
		// Spread input rows round-robin across source segments.
		srcRows := make([][]Row, segs)
		for i, r := range rows {
			srcRows[i%segs] = append(srcRows[i%segs], r)
		}
		for s := range in.parts {
			in.parts[s] = rowsToChunk(srcRows[s], 2)
		}
		destOf := func(r Row) int {
			if r[0].Null {
				return 0
			}
			return int(uint64(r[0].Int) % uint64(segs))
		}

		out, moved, err := c.newExecEnv(context.Background()).shuffle(in, func(ch *Chunk, r int) int {
			return destOf(Row{ch.datum(0, r), ch.datum(1, r)})
		}, NoDistKey)
		if err != nil {
			t.Fatalf("shuffle: %v", err)
		}

		wantParts := make([][]Row, segs)
		var wantMoved int64
		for src := 0; src < segs; src++ {
			for _, r := range srcRows[src] {
				d := destOf(r)
				wantParts[d] = append(wantParts[d], r)
				if d != src {
					wantMoved += int64(len(r)) * DatumWireSize
				}
			}
		}
		if moved != wantMoved {
			t.Fatalf("trial %d: shuffle charged %d bytes, want %d", trial, moved, wantMoved)
		}
		for s := 0; s < segs; s++ {
			chunkEqualRows(t, out.parts[s], wantParts[s])
		}
	}
}

// referencePartition is the row-at-a-time placement the radix partition
// kernel replaced: walk the rows once, appending each to its destination
// (skipping pruned rows). Shared by the differential tests and
// FuzzRadixPartition as the ground truth for both content and order.
func referencePartition(ch *Chunk, dests []int32, nparts int) [][]Row {
	parts := make([][]Row, nparts)
	rows := chunkToRows(ch)
	for r := 0; r < ch.length; r++ {
		if d := dests[r]; d >= 0 {
			parts[d] = append(parts[d], rows[r])
		}
	}
	return parts
}

// TestRadixPartitionMatchesReference differential-tests the radix
// partition kernel against the row-at-a-time reference across random
// seeds, segment counts, null patterns (none, mixed, all-NULL columns) and
// skewed destinations, including the negative-destination prune sentinel.
// Beyond row equality it asserts the pooled backing is bit-identical to a
// fresh chunk: every NULL slot's payload must read zero, since pooled
// memory arrives stale.
func TestRadixPartitionMatchesReference(t *testing.T) {
	rng := xrand.New(101)
	for trial := 0; trial < 60; trial++ {
		nparts := int(rng.Uint64n(7)) + 1
		ncols := int(rng.Uint64n(3)) + 1
		n := int(rng.Uint64n(300))
		rows := skewedRows(rng, n, ncols)
		switch trial % 4 {
		case 1: // no NULLs anywhere: the branch-free fast path
			for _, r := range rows {
				for c := range r {
					if r[c].Null {
						r[c] = I(7)
					}
				}
			}
		case 2: // an all-NULL column
			for _, r := range rows {
				r[0] = NullDatum
			}
		}
		ch := rowsToChunk(rows, ncols)
		dests := make([]int32, n)
		for r := range dests {
			if trial%3 == 0 && rng.Uint64n(4) == 0 {
				dests[r] = -1 // pruned
			} else if rng.Uint64n(3) == 0 {
				dests[r] = int32(rng.Uint64n(uint64(nparts))) // cold spread
			} else {
				dests[r] = 0 // hot destination
			}
		}

		parts, fp := radixPartitionChunk(ch, dests, nparts)
		want := referencePartition(ch, dests, nparts)
		for d := 0; d < nparts; d++ {
			chunkEqualRows(t, parts[d], want[d])
			for c := 0; c < ncols; c++ {
				for r := 0; r < parts[d].length; r++ {
					if parts[d].nulls[c].get(r) && parts[d].cols[c][r] != 0 {
						t.Fatalf("trial %d: part %d col %d row %d: NULL slot has stale payload %d",
							trial, d, c, r, parts[d].cols[c][r])
					}
				}
			}
		}
		putI64(fp)
	}
}

// TestBloomFilterNoFalseNegatives checks the bloom filter's one hard
// guarantee directly, including across a partial-filter merge.
func TestBloomFilterNoFalseNegatives(t *testing.T) {
	rng := xrand.New(103)
	keys := make([]int64, 5000)
	for i := range keys {
		keys[i] = int64(rng.Uint64())
	}
	a, b := newBloomFilter(int64(len(keys))), newBloomFilter(int64(len(keys)))
	for _, k := range keys[:len(keys)/2] {
		a.add(k)
	}
	for _, k := range keys[len(keys)/2:] {
		b.add(k)
	}
	a.merge(b)
	for _, k := range keys {
		if !a.mayContain(k) {
			t.Fatalf("bloom filter lost key %d", k)
		}
	}
	// The false-positive rate at ~16 bits/key should be low; this is a
	// sanity bound, not a precise statistical test.
	fp := 0
	for i := 0; i < 10000; i++ {
		if a.mayContain(int64(rng.Uint64())) {
			fp++
		}
	}
	if fp > 1000 {
		t.Fatalf("false-positive rate %d/10000 is implausibly high", fp)
	}
}

// TestBloomJoinMatchesPlainJoin differential-tests bloom-pruned joins
// against plain joins at the query level, and exact shuffle accounting —
// the pruned run's ShuffleBytes plus its ShuffleSavedBytes must equal the
// plain run's ShuffleBytes. Inner joins promise bit-identical result rows
// in identical order. Left outer joins promise the identical row multiset:
// unmatched probe rows bypass the shuffle and surface NULL-padded at their
// source segment instead of their hash destination, so placement (and
// hence gather order) may differ, but no row may appear, disappear, or
// change values.
func TestBloomJoinMatchesPlainJoin(t *testing.T) {
	rng := xrand.New(107)
	for trial := 0; trial < 12; trial++ {
		probe := skewedRows(rng, int(rng.Uint64n(300))+30, 2)
		build := skewedRows(rng, int(rng.Uint64n(120))+10, 2)
		// Reference: probe rows (by column 1) with no build match (column 0).
		buildKeys := map[int64]bool{}
		for _, r := range build {
			if !r[0].Null {
				buildKeys[r[0].Int] = true
			}
		}
		var nonMatching int64
		for _, r := range probe {
			if r[1].Null || !buildKeys[r[1].Int] {
				nonMatching++
			}
		}
		for _, kind := range []JoinKind{InnerJoin, LeftOuterJoin} {
			run := func(disable bool) ([]Row, *OpMetrics, Stats) {
				c := NewCluster(Options{Segments: 4, DisableBloomJoin: disable})
				mustCreate(t, c, "p", Schema{"k", "x"}, 0, probe)
				mustCreate(t, c, "b", Schema{"k", "y"}, 0, build)
				// Joining on probe column 1 forces the probe side to
				// reshuffle (tables are distributed by column 0).
				_, rows, root, err := c.QueryAnalyze(JoinPlan{
					Left: Scan("p"), Right: Scan("b"), LeftKey: 1, RightKey: 0, Kind: kind})
				if err != nil {
					t.Fatal(err)
				}
				return rows, root, c.Stats()
			}
			bRows, bRoot, bStats := run(false)
			pRows, pRoot, pStats := run(true)

			if len(bRows) != len(pRows) || bRoot.Rows != pRoot.Rows {
				t.Fatalf("trial %d kind %v: bloom join produced %d rows (metrics %d), plain %d (metrics %d)",
					trial, kind, len(bRows), bRoot.Rows, len(pRows), pRoot.Rows)
			}
			if kind == InnerJoin {
				for i := range pRows {
					for c := range pRows[i] {
						if bRows[i][c] != pRows[i][c] {
							t.Fatalf("trial %d kind %v row %d: bloom %v, plain %v",
								trial, kind, i, bRows[i], pRows[i])
						}
					}
				}
			} else {
				counts := map[[4]Datum]int{}
				for _, r := range pRows {
					counts[[4]Datum{r[0], r[1], r[2], r[3]}]++
				}
				for _, r := range bRows {
					k := [4]Datum{r[0], r[1], r[2], r[3]}
					counts[k]--
					if counts[k] < 0 {
						t.Fatalf("trial %d kind %v: bloom join invented row %v", trial, kind, r)
					}
				}
			}
			if got := bStats.ShuffleBytes + bStats.ShuffleSavedBytes; got != pStats.ShuffleBytes {
				t.Fatalf("trial %d kind %v: bloom shuffle %d + saved %d = %d, want plain shuffle %d",
					trial, kind, bStats.ShuffleBytes, bStats.ShuffleSavedBytes, got, pStats.ShuffleBytes)
			}
			if pStats.ShuffleSavedBytes != 0 || pRoot.BloomChecked != 0 {
				t.Fatalf("trial %d kind %v: disabled bloom still pruned (saved=%d checked=%d)",
					trial, kind, pStats.ShuffleSavedBytes, pRoot.BloomChecked)
			}
			if bRoot.BloomChecked != int64(len(probe)) {
				t.Fatalf("trial %d kind %v: BloomChecked = %d, want %d probe rows",
					trial, kind, bRoot.BloomChecked, len(probe))
			}
			// Pruning is conservative: it may keep non-matching rows
			// (false positives) but must never touch a matching one.
			if bRoot.BloomSkipped > nonMatching {
				t.Fatalf("trial %d kind %v: BloomSkipped = %d exceeds the %d non-matching probe rows",
					trial, kind, bRoot.BloomSkipped, nonMatching)
			}
		}
	}
}

// TestKernelOpMetricsRowCounts runs a query through every rewritten
// operator and asserts the OpMetrics row counts equal reference
// cardinalities computed row-at-a-time.
func TestKernelOpMetricsRowCounts(t *testing.T) {
	rng := xrand.New(89)
	for trial := 0; trial < 10; trial++ {
		rows := skewedRows(rng, int(rng.Uint64n(200))+50, 2)
		c := NewCluster(Options{Segments: 4})
		mustCreate(t, c, "t", Schema{"k", "x"}, 0, rows)

		// Reference cardinalities.
		var joinOut int64
		for _, a := range rows {
			for _, b := range rows {
				if !a[0].Null && !b[0].Null && a[0].Int == b[0].Int {
					joinOut++
				}
			}
		}
		// Groups form over the join output: every non-NULL key self-matches,
		// NULL keys never join and so never group.
		groups := map[Datum]bool{}
		for _, r := range rows {
			if !r[0].Null {
				groups[r[0]] = true
			}
		}
		distinct := map[[2]Datum]bool{}
		for _, r := range rows {
			distinct[[2]Datum{r[0], r[1]}] = true
		}

		p := GroupBy(
			JoinPlan{Left: Scan("t"), Right: Scan("t"), LeftKey: 0, RightKey: 0, Kind: InnerJoin},
			[]int{0},
			Agg{Op: AggCount, Name: "n"})
		_, got, root, err := c.QueryAnalyze(p)
		if err != nil {
			t.Fatal(err)
		}
		if root.Rows != int64(len(groups)) {
			t.Fatalf("trial %d: GroupBy OpMetrics.Rows = %d, want %d groups", trial, root.Rows, len(groups))
		}
		if len(got) != len(groups) {
			t.Fatalf("trial %d: %d result rows, want %d", trial, len(got), len(groups))
		}
		join := root.Children[0]
		if join.Rows != joinOut {
			t.Fatalf("trial %d: join OpMetrics.Rows = %d, want %d", trial, join.Rows, joinOut)
		}

		_, drows, droot, err := c.QueryAnalyze(Distinct(Scan("t")))
		if err != nil {
			t.Fatal(err)
		}
		if droot.Rows != int64(len(distinct)) || len(drows) != len(distinct) {
			t.Fatalf("trial %d: Distinct rows = %d (metrics %d), want %d",
				trial, len(drows), droot.Rows, len(distinct))
		}
	}
}
