package engine

// This file is the columnar chunk layer of the execution engine. A Chunk
// stores one segment's share of an in-flight relation in struct-of-arrays
// layout: each column is a flat []int64 plus an optional null bitmap,
// instead of one []Datum allocation per row. The hot operators (join,
// group-by, distinct, shuffle, sort) run as kernels directly over chunks;
// rows only exist at the storage boundary (Table.Parts, ReadAll, Query
// results), where the conversion shims below translate. The public API —
// Datum, Row, Table, Plan — is unchanged by the columnar representation.

// nullBitmap marks the NULL rows of one chunk column, one bit per row. A
// nil bitmap means the column contains no NULLs, so the common all-valid
// case costs nothing to store or test.
type nullBitmap []uint64

// newNullBitmap returns an all-valid bitmap sized for n rows.
func newNullBitmap(n int) nullBitmap { return make(nullBitmap, (n+63)/64) }

// get reports whether row i is NULL. Safe on a nil bitmap and on bitmaps
// that were grown lazily and do not cover row i yet (builder columns only
// extend their bitmap up to the last NULL actually seen).
func (b nullBitmap) get(i int) bool {
	w := i >> 6
	return w < len(b) && b[w]&(1<<(uint(i)&63)) != 0
}

func (b nullBitmap) set(i int)   { b[i>>6] |= 1 << (uint(i) & 63) }
func (b nullBitmap) clear(i int) { b[i>>6] &^= 1 << (uint(i) & 63) }

// Chunk is one segment's rows in columnar struct-of-arrays layout: the
// value of column c in row r is cols[c][r], and nulls[c] (if non-nil)
// marks the rows where that column is SQL NULL. Chunks are immutable once
// an operator has produced them — like rows, they may be shared between
// concurrent readers and aliased across operators without copying.
type Chunk struct {
	length int
	cols   [][]int64
	nulls  []nullBitmap
}

// newChunk allocates a chunk of ncols columns and exactly n rows, all
// values zero and non-NULL. Kernels that know their output cardinality
// (shuffle placement, gathers, concatenations) fill it in place.
func newChunk(ncols, n int) *Chunk {
	ch := &Chunk{
		length: n,
		cols:   make([][]int64, ncols),
		nulls:  make([]nullBitmap, ncols),
	}
	if n > 0 {
		flat := make([]int64, ncols*n)
		for c := range ch.cols {
			ch.cols[c] = flat[c*n : (c+1)*n : (c+1)*n]
		}
	}
	return ch
}

// Len returns the number of rows.
func (ch *Chunk) Len() int { return ch.length }

// chunksFromFlat carves a set of chunks out of one shared flat backing
// array: chunk i has ncols columns of counts[i] rows each. The layout is
// column-major across the whole set — all chunks' column 0 first, then all
// chunks' column 1, ... — so a caller that knows a row's global slot g
// (its offset within the concatenated chunk set) addresses column c at
// flat[c*total+g], independent of which chunk the row landed in. The radix
// shuffle kernel uses this to back a whole per-destination bucket set with
// a single pooled allocation and to scatter each column in one pass over a
// single destination slice. The backing array's contents are NOT cleared —
// callers must write every slot (see radixPartitionChunk) — and the
// produced chunks alias flat, so they must not outlive its return to the
// pool.
func chunksFromFlat(ncols int, counts []int32, flat []int64) []*Chunk {
	total := 0
	for _, cnt := range counts {
		total += int(cnt)
	}
	out := make([]*Chunk, len(counts))
	start := 0
	for i, cnt := range counts {
		n := int(cnt)
		ch := &Chunk{
			length: n,
			cols:   make([][]int64, ncols),
			nulls:  make([]nullBitmap, ncols),
		}
		for c := 0; c < ncols; c++ {
			off := c*total + start
			ch.cols[c] = flat[off : off+n : off+n]
		}
		out[i] = ch
		start += n
	}
	return out
}

// datum materialises one value as a Datum. NULL values come back exactly
// as NullDatum (payload zero), so rows converted out of a chunk compare
// equal under == to rows that never went through the columnar layer.
func (ch *Chunk) datum(c, r int) Datum {
	if ch.nulls[c].get(r) {
		return NullDatum
	}
	return Datum{Int: ch.cols[c][r]}
}

// ensureNulls returns column c's bitmap, allocating it on first NULL.
func (ch *Chunk) ensureNulls(c int) nullBitmap {
	if ch.nulls[c] == nil {
		ch.nulls[c] = newNullBitmap(ch.length)
	}
	return ch.nulls[c]
}

// rowsToChunk converts one segment's stored rows into a chunk — the scan
// shim at the Table boundary.
func rowsToChunk(rows []Row, ncols int) *Chunk {
	ch := newChunk(ncols, len(rows))
	for c := 0; c < ncols; c++ {
		col := ch.cols[c]
		for r, row := range rows {
			d := row[c]
			if d.Null {
				ch.ensureNulls(c).set(r)
			} else {
				col[r] = d.Int
			}
		}
	}
	return ch
}

// chunkToRows materialises a chunk as rows — the shim at the CreateTableAs
// and Query boundaries. All rows share one flat Datum backing array (rows
// are immutable once stored), so the conversion costs two allocations, not
// one per row. Empty chunks return nil, matching the engine's historical
// empty-partition representation.
func chunkToRows(ch *Chunk) []Row {
	n, w := ch.length, len(ch.cols)
	if n == 0 {
		return nil
	}
	flat := make([]Datum, n*w)
	rows := make([]Row, n)
	for r := 0; r < n; r++ {
		row := flat[r*w : (r+1)*w : (r+1)*w]
		for c := 0; c < w; c++ {
			row[c] = ch.datum(c, r)
		}
		rows[r] = row
	}
	return rows
}

// gatherChunk copies the selected rows, in index order, into a fresh
// exact-capacity chunk (the output path of Filter, Distinct and Sort).
func gatherChunk(in *Chunk, idx []int32) *Chunk {
	out := newChunk(len(in.cols), len(idx))
	for c := range in.cols {
		src, dst := in.cols[c], out.cols[c]
		if in.nulls[c] == nil {
			for i, r := range idx {
				dst[i] = src[r]
			}
			continue
		}
		nb := in.nulls[c]
		for i, r := range idx {
			if nb.get(int(r)) {
				out.ensureNulls(c).set(i)
			} else {
				dst[i] = src[r]
			}
		}
	}
	return out
}

// copyChunkInto copies src into dst starting at row offset off, returning
// the offset after the copy. Values move column-at-a-time (a memcpy per
// column); null bits are only touched for columns that have any.
func copyChunkInto(dst, src *Chunk, off int) int {
	for c := range src.cols {
		copy(dst.cols[c][off:], src.cols[c])
		if src.nulls[c] != nil {
			db := dst.ensureNulls(c)
			sb := src.nulls[c]
			for r := 0; r < src.length; r++ {
				if sb.get(r) {
					db.set(off + r)
				}
			}
		}
	}
	return off + src.length
}

// concatChunks concatenates chunks of identical arity into one
// exact-capacity chunk (UnionAll, gather-to-coordinator, broadcast).
func concatChunks(ncols int, chunks []*Chunk) *Chunk {
	total := 0
	for _, ch := range chunks {
		total += ch.length
	}
	out := newChunk(ncols, total)
	off := 0
	for _, ch := range chunks {
		off = copyChunkInto(out, ch, off)
	}
	return out
}

// padRight extends ch with rw additional all-NULL columns — the
// unmatched-probe rows of a left outer join. The left columns alias ch and
// the NULL columns share one zeroed backing and one all-ones bitmap, so
// the pad costs O(rows/64) regardless of width.
func padRight(ch *Chunk, rw int) *Chunk {
	ncols := len(ch.cols)
	out := &Chunk{
		length: ch.length,
		cols:   make([][]int64, ncols+rw),
		nulls:  make([]nullBitmap, ncols+rw),
	}
	copy(out.cols, ch.cols)
	copy(out.nulls, ch.nulls)
	zeros := make([]int64, ch.length)
	allNull := newNullBitmap(ch.length)
	for i := range allNull {
		allNull[i] = ^uint64(0)
	}
	for c := ncols; c < ncols+rw; c++ {
		out.cols[c] = zeros
		out.nulls[c] = allNull
	}
	return out
}

// chunkBuilder grows a chunk whose output cardinality is not known up
// front (join matches, group-by states). Columns grow by amortized
// append; null bitmaps are allocated per column on first NULL and
// zero-extended lazily, so all-valid columns never touch them. Group-by
// kernels additionally mutate aggregate state in place through mergeAgg.
type chunkBuilder struct {
	cols  [][]int64
	nulls []nullBitmap
	n     int
}

func newChunkBuilder(ncols, capHint int) *chunkBuilder {
	b := &chunkBuilder{
		cols:  make([][]int64, ncols),
		nulls: make([]nullBitmap, ncols),
	}
	if capHint > 0 {
		for c := range b.cols {
			b.cols[c] = make([]int64, 0, capHint)
		}
	}
	return b
}

// setNull marks row i of column c NULL, growing the bitmap to cover i.
func (b *chunkBuilder) setNull(c, i int) {
	words := i>>6 + 1
	for len(b.nulls[c]) < words {
		b.nulls[c] = append(b.nulls[c], 0)
	}
	b.nulls[c].set(i)
}

// appendCol appends one value to column c (the caller advances b.n once
// per row via finishRow or the row-level helpers).
func (b *chunkBuilder) appendCol(c int, v int64, null bool) {
	i := len(b.cols[c])
	b.cols[c] = append(b.cols[c], v)
	if null {
		b.setNull(c, i)
	}
}

// appendJoinRow emits the concatenation of left row li and right row ri.
func (b *chunkBuilder) appendJoinRow(left *Chunk, li int, right *Chunk, ri int) {
	lw := len(left.cols)
	for c := 0; c < lw; c++ {
		b.appendCol(c, left.cols[c][li], left.nulls[c].get(li))
	}
	for c := range right.cols {
		b.appendCol(lw+c, right.cols[c][ri], right.nulls[c].get(ri))
	}
	b.n++
}

// appendOuterRow emits left row li padded with rw NULL right columns (the
// unmatched side of a left outer join).
func (b *chunkBuilder) appendOuterRow(left *Chunk, li, rw int) {
	lw := len(left.cols)
	for c := 0; c < lw; c++ {
		b.appendCol(c, left.cols[c][li], left.nulls[c].get(li))
	}
	for c := 0; c < rw; c++ {
		b.appendCol(lw+c, 0, true)
	}
	b.n++
}

// appendGroupRow starts a new group from row r of a partial-layout chunk:
// the nk key columns are copied and every aggregate slot starts NULL,
// mirroring the row engine's fresh aggState.
func (b *chunkBuilder) appendGroupRow(in *Chunk, r, nk, naggs int) {
	for c := 0; c < nk; c++ {
		b.appendCol(c, in.cols[c][r], in.nulls[c].get(r))
	}
	for c := nk; c < nk+naggs; c++ {
		b.appendCol(c, 0, true)
	}
	b.n++
}

// mergeAgg folds value (v, vnull) into the aggregate state of group g at
// column c — the columnar counterpart of the row engine's aggState merge,
// with identical NULL semantics: MIN/MAX/SUM ignore NULL inputs, COUNT
// adds the partial count payload, and an untouched state stays NULL.
func (b *chunkBuilder) mergeAgg(c int, g int32, op AggOp, v int64, vnull bool) {
	curNull := b.nulls[c].get(int(g))
	switch op {
	case AggMin:
		if vnull {
			return
		}
		if curNull || v < b.cols[c][g] {
			b.setAgg(c, g, v)
		}
	case AggMax:
		if vnull {
			return
		}
		if curNull || v > b.cols[c][g] {
			b.setAgg(c, g, v)
		}
	case AggCount:
		if curNull {
			b.setAgg(c, g, v)
			return
		}
		b.cols[c][g] += v
	case AggSum:
		if vnull {
			return
		}
		if curNull {
			b.setAgg(c, g, v)
			return
		}
		b.cols[c][g] += v
	}
}

// setAgg stores a non-NULL aggregate state value.
func (b *chunkBuilder) setAgg(c int, g int32, v int64) {
	b.cols[c][g] = v
	if b.nulls[c] != nil {
		words := len(b.nulls[c])
		if int(g)>>6 < words {
			b.nulls[c].clear(int(g))
		}
	}
}

// finish seals the builder into a chunk.
func (b *chunkBuilder) finish() *Chunk {
	return &Chunk{length: b.n, cols: b.cols, nulls: b.nulls}
}
