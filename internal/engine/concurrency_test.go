package engine

// Concurrency tests for the multi-session engine. Everything here is meant
// to run under `go test -race`: the stress tests drive the cluster from
// many goroutines at once and then check that the bookkeeping — row counts,
// statistics counters, concurrency gauges, the catalog itself — adds up
// exactly, so both data races (caught by the detector) and lost updates
// (caught by the arithmetic) fail the build.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentSessionsStress runs many goroutines that each repeatedly
// create a private table, query it, append to it, query again and drop it,
// all against one shared cluster. No writes may be lost, every query must
// see exactly its own session's rows, and afterwards the cluster counters
// must equal the sum of everything the sessions did.
func TestConcurrentSessionsStress(t *testing.T) {
	const (
		goroutines = 8
		iters      = 25
		baseRows   = 7
	)
	c := NewCluster(Options{Segments: 4})

	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			<-start
			for i := 0; i < iters; i++ {
				name := fmt.Sprintf("stress_g%d_i%d", id, i)
				rows := make([]Row, baseRows)
				for k := range rows {
					rows[k] = Row{I(int64(id)), I(int64(i)), I(int64(k))}
				}
				if _, err := c.CreateTableAs(name, Values(Schema{"id", "iter", "k"}, rows), 2); err != nil {
					t.Errorf("g%d i%d: create: %v", id, i, err)
					return
				}
				if got := querySum(t, c, name); got != int64(baseRows)*int64(id) {
					t.Errorf("g%d i%d: sum(id) = %d, want %d", id, i, got, baseRows*id)
				}
				if err := c.InsertRows(name, []Row{{I(int64(id)), I(int64(i)), I(int64(baseRows))}}); err != nil {
					t.Errorf("g%d i%d: insert: %v", id, i, err)
					return
				}
				if got := queryCount(t, c, name); got != baseRows+1 {
					t.Errorf("g%d i%d: count = %d, want %d (lost write)", id, i, got, baseRows+1)
				}
				if err := c.DropTable(name); err != nil {
					t.Errorf("g%d i%d: drop: %v", id, i, err)
					return
				}
			}
		}(g)
	}
	close(start)
	wg.Wait()
	if t.Failed() {
		return
	}

	if names := c.TableNames(); len(names) != 0 {
		t.Fatalf("tables left after all sessions dropped theirs: %v", names)
	}

	// Exact accounting: per iteration each session runs one CreateTableAs,
	// two Querys and one InsertRows. All four bump Stats.Queries; the
	// create writes baseRows rows and the insert one more.
	const perIter = 4
	st := c.Stats()
	if want := int64(goroutines * iters * perIter); st.Queries != want {
		t.Errorf("Stats.Queries = %d, want %d", st.Queries, want)
	}
	if want := int64(goroutines * iters * (baseRows + 1)); st.RowsWritten != want {
		t.Errorf("Stats.RowsWritten = %d, want %d", st.RowsWritten, want)
	}
	if st.LiveBytes != 0 {
		t.Errorf("Stats.LiveBytes = %d after dropping every table, want 0", st.LiveBytes)
	}

	// Concurrency gauges: CreateTableAs and Query are statements,
	// InsertRows is not.
	cs := c.ConcurrencyStats()
	if want := int64(goroutines * iters * 3); cs.Total != want {
		t.Errorf("ConcurrencyStats.Total = %d, want %d", cs.Total, want)
	}
	if cs.Active != 0 {
		t.Errorf("ConcurrencyStats.Active = %d after quiescence, want 0", cs.Active)
	}
	if cs.Peak < 1 || cs.Peak > goroutines {
		t.Errorf("ConcurrencyStats.Peak = %d, want within [1, %d]", cs.Peak, goroutines)
	}
}

// TestConcurrentCreateSameName races several goroutines creating the same
// table name: exactly one must win, the rest must get the duplicate-table
// error, and the surviving table must be intact.
func TestConcurrentCreateSameName(t *testing.T) {
	c := newTestCluster(t, 4)
	const racers = 8
	rows := []Row{{I(1), I(2)}, {I(3), I(4)}, {I(5), I(6)}}

	var wins, losses atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < racers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			_, err := c.CreateTableAs("contested", Values(Schema{"a", "b"}, rows), 0)
			if err != nil {
				losses.Add(1)
			} else {
				wins.Add(1)
			}
		}()
	}
	close(start)
	wg.Wait()

	if wins.Load() != 1 || losses.Load() != racers-1 {
		t.Fatalf("wins = %d, losses = %d; want exactly 1 winner of %d", wins.Load(), losses.Load(), racers)
	}
	if got := queryCount(t, c, "contested"); got != int64(len(rows)) {
		t.Fatalf("surviving table has %d rows, want %d", got, len(rows))
	}
}

// TestConcurrentReadersAndWriter checks scan snapshot isolation: readers
// querying a table while a writer appends batches must only ever observe a
// whole number of batches — a torn batch means a scan saw a partition
// mid-insert.
func TestConcurrentReadersAndWriter(t *testing.T) {
	const (
		readers   = 6
		batches   = 40
		batchRows = 16
	)
	c := newTestCluster(t, 4)
	if _, err := c.CreateTable("feed", Schema{"v", "w"}, 0); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			prev := int64(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				n := queryCount(t, c, "feed")
				if n%batchRows != 0 {
					t.Errorf("reader saw %d rows: torn batch (batch size %d)", n, batchRows)
					return
				}
				if n < prev {
					t.Errorf("reader saw row count go backwards: %d after %d", n, prev)
					return
				}
				prev = n
			}
		}()
	}
	for b := 0; b < batches; b++ {
		batch := make([]Row, batchRows)
		for k := range batch {
			batch[k] = Row{I(int64(b)), I(int64(k))}
		}
		if err := c.InsertRows("feed", batch); err != nil {
			t.Fatalf("insert batch %d: %v", b, err)
		}
	}
	close(stop)
	wg.Wait()

	if got := queryCount(t, c, "feed"); got != batches*batchRows {
		t.Fatalf("final count = %d, want %d", got, batches*batchRows)
	}
}

// TestWorkerPoolBoundsParallelism verifies that segment tasks never exceed
// the configured worker budget, within one parallel call and across
// concurrent statements sharing the cluster.
func TestWorkerPoolBoundsParallelism(t *testing.T) {
	const workers = 3
	c := NewCluster(Options{Segments: 16, Workers: workers})
	if c.Workers() != workers {
		t.Fatalf("Workers() = %d, want %d", c.Workers(), workers)
	}

	var cur, peak atomic.Int64
	task := func(seg int) {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		// Busy work so tasks overlap if the pool lets them.
		s := 0
		for i := 0; i < 20000; i++ {
			s += i * seg
		}
		_ = s
		cur.Add(-1)
	}

	// Several goroutines issue parallel fan-outs at once; the semaphore
	// must bound the total, not just each call.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.parallel(task)
		}()
	}
	wg.Wait()

	if got := peak.Load(); got > workers {
		t.Fatalf("observed %d concurrent segment tasks, budget is %d", got, workers)
	}
	if cur.Load() != 0 {
		t.Fatalf("task gauge did not return to zero: %d", cur.Load())
	}
}

// TestParallelCoversAllSegments checks the work-stealing loop in parallel
// runs every segment exactly once for assorted worker/segment shapes.
func TestParallelCoversAllSegments(t *testing.T) {
	for _, tc := range []struct{ segs, workers int }{
		{1, 1}, {4, 1}, {4, 2}, {16, 4}, {3, 8}, {7, 7},
	} {
		c := NewCluster(Options{Segments: tc.segs, Workers: tc.workers})
		counts := make([]atomic.Int64, tc.segs)
		c.parallel(func(seg int) { counts[seg].Add(1) })
		for s := range counts {
			if got := counts[s].Load(); got != 1 {
				t.Errorf("segments=%d workers=%d: segment %d ran %d times, want 1",
					tc.segs, tc.workers, s, got)
			}
		}
	}
}

// TestConcurrentUDFRegistration races registration against evaluation: a
// query planned before a re-registration keeps the function it captured.
func TestConcurrentUDFRegistration(t *testing.T) {
	c := newTestCluster(t, 4)
	mustCreate(t, c, "u", Schema{"x"}, 0, []Row{{I(10)}, {I(20)}, {I(30)}})
	c.RegisterUDF("twice", func(args []Datum) Datum { return I(args[0].Int * 2) })

	var regWG, queryWG sync.WaitGroup
	stop := make(chan struct{})
	regWG.Add(1)
	go func() {
		defer regWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				c.RegisterUDF("twice", func(args []Datum) Datum { return I(args[0].Int * 2) })
			}
		}
	}()
	for r := 0; r < 4; r++ {
		queryWG.Add(1)
		go func() {
			defer queryWG.Done()
			for i := 0; i < 50; i++ {
				// Re-plan every iteration: CallUDF reads the registry
				// while the other goroutine re-registers, and the built
				// expression captures the function it saw.
				expr, err := c.CallUDF("twice", Col(0))
				if err != nil {
					t.Errorf("CallUDF: %v", err)
					return
				}
				_, rows, err := c.Query(Project(Scan("u"), ProjCol{Expr: expr, Name: "y"}))
				if err != nil {
					t.Errorf("query: %v", err)
					return
				}
				sum := int64(0)
				for _, row := range rows {
					sum += row[0].Int
				}
				if sum != 120 {
					t.Errorf("sum = %d, want 120", sum)
					return
				}
			}
		}()
	}
	queryWG.Wait()
	// Only now stop the re-registration loop; it raced real queries above.
	close(stop)
	regWG.Wait()
}

// querySum returns SUM(col0) of a table via a full query.
func querySum(t *testing.T, c *Cluster, table string) int64 {
	t.Helper()
	_, rows, err := c.Query(GroupBy(Scan(table), nil,
		Agg{Op: AggSum, Arg: Col(0), Name: "s"}))
	if err != nil {
		t.Errorf("sum %s: %v", table, err)
		return -1
	}
	if len(rows) == 0 || rows[0][0].Null {
		return 0
	}
	return rows[0][0].Int
}

// queryCount returns COUNT(*) of a table via a full query.
func queryCount(t *testing.T, c *Cluster, table string) int64 {
	t.Helper()
	_, rows, err := c.Query(GroupBy(Scan(table), nil,
		Agg{Op: AggCount, Name: "n"}))
	if err != nil {
		t.Errorf("count %s: %v", table, err)
		return -1
	}
	if len(rows) == 0 {
		return 0
	}
	return rows[0][0].Int
}
