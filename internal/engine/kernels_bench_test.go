package engine

import (
	"context"
	"fmt"
	"testing"

	"dbcc/internal/xrand"
)

// Microbenchmarks proving the columnar kernels against the row-at-a-time
// code they replaced. Each benchmark has a "kernel" variant exercising the
// shipped implementation and a "rows" variant replicating the map-based
// inner loop of the row engine (preserved here, in test code only, as the
// baseline). Run with:
//
//	go test ./internal/engine -bench BenchmarkKernel -benchmem -count=1
//
// The allocs/op column is the headline: the kernels amortize one
// allocation per column per chunk where the row engine paid one (or more)
// per row.

// benchRows builds n two-column rows with ~10% NULLs and a key space of
// n/8 values (long join chains, populous groups).
func benchRows(n int) []Row {
	rng := xrand.New(101)
	keys := uint64(n/8) + 1
	rows := make([]Row, n)
	for i := range rows {
		var a, b Datum
		if rng.Uint64n(10) == 0 {
			a = NullDatum
		} else {
			a = I(int64(rng.Uint64n(keys)))
		}
		if rng.Uint64n(10) == 0 {
			b = NullDatum
		} else {
			b = I(int64(rng.Uint64n(1 << 20)))
		}
		rows[i] = Row{a, b}
	}
	return rows
}

// rowJoin replicates the row engine's per-segment hash join (map build +
// probe with per-row output allocation).
func rowJoin(left, right []Row, lk, rk int, kind JoinKind) []Row {
	build := make(map[int64][]Row)
	for _, row := range right {
		k := row[rk]
		if k.Null {
			continue
		}
		build[k.Int] = append(build[k.Int], row)
	}
	var rows []Row
	rw := 2
	for _, lrow := range left {
		k := lrow[lk]
		var matches []Row
		if !k.Null {
			matches = build[k.Int]
		}
		if len(matches) == 0 {
			if kind == LeftOuterJoin {
				nr := make(Row, len(lrow)+rw)
				copy(nr, lrow)
				for i := 0; i < rw; i++ {
					nr[len(lrow)+i] = NullDatum
				}
				rows = append(rows, nr)
			}
			continue
		}
		for _, rrow := range matches {
			nr := make(Row, 0, len(lrow)+rw)
			nr = append(nr, lrow...)
			nr = append(nr, rrow...)
			rows = append(rows, nr)
		}
	}
	return rows
}

// rowGroupMin replicates the row engine's per-segment group-by fold
// (encoded string keys into a map of aggregate states) for min(x) by k.
func rowGroupMin(partial []Row) []Row {
	groups := make(map[string]Row)
	var order []string
	var buf []byte
	for _, row := range partial {
		buf = encodeRow(buf[:0], row[:1])
		g, ok := groups[string(buf)]
		if !ok {
			g = make(Row, 2)
			copy(g, row[:1])
			g[1] = NullDatum
			groups[string(buf)] = g
			order = append(order, string(buf))
		}
		v := row[1]
		if !v.Null && (g[1].Null || v.Int < g[1].Int) {
			g[1] = v
		}
	}
	rows := make([]Row, 0, len(groups))
	for _, k := range order {
		rows = append(rows, groups[k])
	}
	return rows
}

var sinkChunk *Chunk
var sinkRows []Row

func BenchmarkKernelJoinProbe(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 16} {
		left, right := benchRows(n), benchRows(n/4)
		lch, rch := rowsToChunk(left, 2), rowsToChunk(right, 2)
		b.Run(fmt.Sprintf("kernel/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sinkChunk = joinChunks(lch, rch, 0, 0, InnerJoin)
			}
		})
		b.Run(fmt.Sprintf("rows/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sinkRows = rowJoin(left, right, 0, 0, InnerJoin)
			}
		})
	}
}

func BenchmarkKernelGroupByMin(b *testing.B) {
	aggs := []Agg{{Op: AggMin, Arg: Col(1), Name: "mn"}}
	for _, n := range []int{1 << 12, 1 << 16} {
		rows := benchRows(n)
		ch := rowsToChunk(rows, 2)
		b.Run(fmt.Sprintf("kernel/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sinkChunk = groupChunk(ch, 1, aggs)
			}
		})
		b.Run(fmt.Sprintf("rows/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sinkRows = rowGroupMin(rows)
			}
		})
	}
}

func BenchmarkKernelDistinct(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 16} {
		rows := benchRows(n)
		ch := rowsToChunk(rows, 2)
		b.Run(fmt.Sprintf("kernel/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sinkChunk = distinctChunk(ch)
			}
		})
		b.Run(fmt.Sprintf("rows/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				seen := make(map[string]struct{}, len(rows))
				var keep []Row
				var buf []byte
				for _, row := range rows {
					buf = encodeRow(buf[:0], row)
					if _, dup := seen[string(buf)]; dup {
						continue
					}
					seen[string(buf)] = struct{}{}
					keep = append(keep, row)
				}
				sinkRows = keep
			}
		})
	}
}

func BenchmarkKernelShuffle(b *testing.B) {
	for _, n := range []int{1 << 16} {
		rows := benchRows(n)
		c := NewCluster(Options{Segments: 8, Workers: 1})
		segRows := make([][]Row, 8)
		for i, r := range rows {
			segRows[i%8] = append(segRows[i%8], r)
		}
		in := &relation{schema: Schema{"k", "x"}, parts: make([]*Chunk, 8), distKey: NoDistKey}
		for s := range in.parts {
			in.parts[s] = rowsToChunk(segRows[s], 2)
		}
		b.Run(fmt.Sprintf("kernel/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out, _, _ := c.newExecEnv(context.Background()).shuffle(in, func(ch *Chunk, r int) int {
					if ch.nulls[0].get(r) {
						return 0
					}
					return int(xrand.Mix64(uint64(ch.cols[0][r])) % 8)
				}, 0)
				sinkChunk = out.parts[0]
			}
		})
		b.Run(fmt.Sprintf("rows/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				// The row engine's shuffle: append-grown [src][dst] buckets,
				// then per-destination concatenation.
				buckets := make([][][]Row, 8)
				for src := 0; src < 8; src++ {
					bk := make([][]Row, 8)
					for _, row := range segRows[src] {
						d := 0
						if !row[0].Null {
							d = int(xrand.Mix64(uint64(row[0].Int)) % 8)
						}
						bk[d] = append(bk[d], row)
					}
					buckets[src] = bk
				}
				for dst := 0; dst < 8; dst++ {
					var out []Row
					for src := 0; src < 8; src++ {
						out = append(out, buckets[src][dst]...)
					}
					sinkRows = out
				}
			}
		})
	}
}

// countingPartitionChunk preserves the replaced counting shuffle's
// placement loop — count per destination, allocate exact-capacity chunks,
// then scatter row-at-a-time across all columns — as the benchmark
// baseline for the radix partition kernel (test code only, like the row
// variants above).
func countingPartitionChunk(ch *Chunk, dests []int32, nparts int) []*Chunk {
	ncols := len(ch.cols)
	counts := make([]int32, nparts)
	for r := 0; r < ch.length; r++ {
		counts[dests[r]]++
	}
	b := make([]*Chunk, nparts)
	for d := range b {
		b[d] = newChunk(ncols, int(counts[d]))
	}
	cursors := make([]int32, nparts)
	for r := 0; r < ch.length; r++ {
		d := dests[r]
		k := int(cursors[d])
		cursors[d]++
		dst := b[d]
		for col := 0; col < ncols; col++ {
			if ch.nulls[col].get(r) {
				dst.ensureNulls(col).set(k)
			} else {
				dst.cols[col][k] = ch.cols[col][r]
			}
		}
	}
	return b
}

// BenchmarkKernelRadixPartition measures the shuffle hot loop: the radix
// (column-at-a-time, pooled-backing) partition kernel against the counting
// (row-at-a-time, allocating) placement it replaced, on the wide all-valid
// chunks RC's contraction rounds shuffle and on narrow chunks with NULLs.
func BenchmarkKernelRadixPartition(b *testing.B) {
	run := func(name string, ncols int, withNulls bool) {
		const n = 1 << 16
		rng := xrand.New(109)
		rows := make([]Row, n)
		for i := range rows {
			row := make(Row, ncols)
			for c := range row {
				if withNulls && rng.Uint64n(10) == 0 {
					row[c] = NullDatum
				} else {
					row[c] = I(int64(rng.Uint64n(1 << 20)))
				}
			}
			rows[i] = row
		}
		ch := rowsToChunk(rows, ncols)
		dests := make([]int32, n)
		for r := 0; r < n; r++ {
			if ch.nulls[0].get(r) {
				dests[r] = 0
			} else {
				dests[r] = int32(xrand.Mix64(uint64(ch.cols[0][r])) % 8)
			}
		}
		b.Run(fmt.Sprintf("kernel/%s/n=%d", name, n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				parts, fp := radixPartitionChunk(ch, dests, 8)
				sinkChunk = parts[0]
				putI64(fp)
			}
		})
		b.Run(fmt.Sprintf("counting/%s/n=%d", name, n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				parts := countingPartitionChunk(ch, dests, 8)
				sinkChunk = parts[0]
			}
		})
	}
	run("wide", 4, false)
	run("nulls", 2, true)
}

// BenchmarkKernelBloomFilter measures the bloom probe the pruned shuffle
// pays per probe-side row (one Mix64 plus two word tests), the cost that
// must stay far below the DatumWireSize-per-column shuffle it can save.
func BenchmarkKernelBloomFilter(b *testing.B) {
	const n = 1 << 16
	rng := xrand.New(113)
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64(rng.Uint64n(n / 4))
	}
	bf := newBloomFilter(n / 4)
	for _, k := range keys[:n/4] {
		bf.add(k)
	}
	var hits int
	b.Run(fmt.Sprintf("probe/n=%d", n), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h := 0
			for _, k := range keys {
				if bf.mayContain(k) {
					h++
				}
			}
			hits = h
		}
	})
	_ = hits
}

// BenchmarkKernelRCRound measures one round-shaped query of the paper's
// randomized-contraction algorithm — join the edge list with the current
// representative mapping, take min per vertex — end to end through the
// engine, the unit of work the columnar kernels were built to speed up.
func BenchmarkKernelRCRound(b *testing.B) {
	const nv, ne = 1 << 14, 1 << 16
	rng := xrand.New(103)
	c := NewCluster(Options{Segments: 8})
	edges := make([]Row, ne)
	for i := range edges {
		edges[i] = Row{I(int64(rng.Uint64n(nv))), I(int64(rng.Uint64n(nv)))}
	}
	reps := make([]Row, nv)
	for i := range reps {
		reps[i] = Row{I(int64(i)), I(int64(rng.Uint64n(nv)))}
	}
	mustCreateBench(b, c, "e", Schema{"src", "dst"}, 0, edges)
	mustCreateBench(b, c, "r", Schema{"v", "rep"}, 0, reps)
	p := GroupBy(
		JoinPlan{Left: Scan("e"), Right: Scan("r"), LeftKey: 0, RightKey: 0, Kind: InnerJoin},
		[]int{1}, // group by dst
		Agg{Op: AggMin, Arg: Col(3), Name: "newrep"})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Query(p); err != nil {
			b.Fatal(err)
		}
	}
}

func mustCreateBench(b *testing.B, c *Cluster, name string, schema Schema, distKey int, rows []Row) {
	b.Helper()
	if _, err := c.CreateTable(name, schema, distKey); err != nil {
		b.Fatal(err)
	}
	if err := c.InsertRows(name, rows); err != nil {
		b.Fatal(err)
	}
}

// TestScratchPoolRoundTripAllocFree pins the allocation cost of the
// pooled scratch-buffer round-trip at zero. The pool hands out *[]int32
// boxes precisely so Get and Put recycle one allocation; the historical
// bug this guards against was a by-value putI32([]int32) that boxed a
// fresh pointer on every Put, costing one heap allocation per kernel
// task and silently defeating the pool.
func TestScratchPoolRoundTripAllocFree(t *testing.T) {
	// Warm the pool so the measurement sees the steady state.
	warm := getI32(4096)
	putI32(warm)
	allocs := testing.AllocsPerRun(1000, func() {
		p := getI32(4096)
		s := *p
		s = append(s, 1, 2, 3)
		*p = s
		putI32(p)
	})
	// Allow a little noise: a GC cycle during the run may clear the pool
	// and force one refill.
	if allocs > 0.1 {
		t.Fatalf("scratch pool round-trip costs %.2f allocs/op, want ~0", allocs)
	}
}

// BenchmarkKernelScratchPool measures the pooled round-trip the filter,
// distinct and shuffle kernels perform once per segment task; allocs/op
// must report 0.
func BenchmarkKernelScratchPool(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := getI32(1024)
		s := *p
		for j := 0; j < 16; j++ {
			s = append(s, int32(j))
		}
		*p = s
		putI32(p)
	}
}
