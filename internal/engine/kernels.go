package engine

// Columnar execution kernels: the per-segment inner loops of the hot
// operators, operating directly on chunks and the int64-specialized hash
// tables. Each kernel is a pure function over immutable input chunks so
// it can run as a leaf task on the worker pool, be differential-tested
// against a row-at-a-time reference, and be benchmarked in isolation
// (see kernels_bench_test.go).

// joinChunks joins one segment's co-located chunks: a hash table is built
// over the right (build) side keyed on the raw int64 join key, then the
// left (probe) side streams through it. NULL keys never match; for a left
// outer join, unmatched probe rows are emitted padded with NULLs. Build
// rows are inserted in reverse so each chain iterates in ascending build
// order — the exact match order the row engine produced.
func joinChunks(left, right *Chunk, leftKey, rightKey int, kind JoinKind) *Chunk {
	lw, rw := len(left.cols), len(right.cols)
	out := newChunkBuilder(lw+rw, 0)

	jt := newJoinTable(right.length)
	rkeys := right.cols[rightKey]
	rnulls := right.nulls[rightKey]
	for i := right.length - 1; i >= 0; i-- {
		if rnulls.get(i) {
			continue
		}
		jt.insert(rkeys[i], int32(i))
	}

	lkeys := left.cols[leftKey]
	lnulls := left.nulls[leftKey]
	for i := 0; i < left.length; i++ {
		m := int32(-1)
		if !lnulls.get(i) {
			m = jt.lookup(lkeys[i])
		}
		if m < 0 {
			if kind == LeftOuterJoin {
				out.appendOuterRow(left, i, rw)
			}
			continue
		}
		for ; m >= 0; m = jt.next[m] {
			out.appendJoinRow(left, i, right, int(m))
		}
	}
	return out.finish()
}

// groupChunk folds a partial-layout chunk (nk key columns followed by one
// column per aggregate) into one row per distinct key, preserving
// first-seen group order. Lookup is a single hash + open-addressing probe
// per input row; aggregate state mutates in place in the output builder.
func groupChunk(in *Chunk, nk int, aggs []Agg) *Chunk {
	b := newChunkBuilder(nk+len(aggs), 0)
	t := newGroupTable(64)
	foldChunkInto(b, t, in, nk, aggs)
	return b.finish()
}

// foldChunkInto folds one partial-layout chunk into an accumulating group
// builder/table pair. Factoring the loop out of groupChunk lets the spill
// path (foldPartition) fold a partition's chunks frame by frame into one
// shared accumulator without materializing their concatenation.
func foldChunkInto(b *chunkBuilder, t *groupTable, in *Chunk, nk int, aggs []Agg) {
	na := len(aggs)
	for r := 0; r < in.length; r++ {
		h := chunkRowHash(in, 0, nk, r)
		id, found := t.insertOrGet(h, func(g int32) bool {
			return builderKeysEqual(b, g, in, r, nk)
		})
		if !found {
			b.appendGroupRow(in, r, nk, na)
		}
		for i, a := range aggs {
			c := nk + i
			b.mergeAgg(c, id, a.Op, in.cols[c][r], in.nulls[c].get(r))
		}
	}
}

// builderKeysEqual compares the key columns of admitted group g against
// input row r, NULLs comparing equal (SQL GROUP BY key semantics).
func builderKeysEqual(b *chunkBuilder, g int32, in *Chunk, r, nk int) bool {
	for c := 0; c < nk; c++ {
		gn, rn := b.nulls[c].get(int(g)), in.nulls[c].get(r)
		if gn != rn {
			return false
		}
		if !gn && b.cols[c][g] != in.cols[c][r] {
			return false
		}
	}
	return true
}

// distinctChunk removes duplicate rows, keeping the first occurrence of
// each, via one whole-row hash + probe per input row. The survivors are
// gathered into an exact-capacity output chunk.
func distinctChunk(in *Chunk) *Chunk {
	ncols := len(in.cols)
	t := newGroupTable(64)
	kp := getI32(in.length)
	keep := *kp
	for r := 0; r < in.length; r++ {
		h := chunkRowHash(in, 0, ncols, r)
		_, found := t.insertOrGet(h, func(id int32) bool {
			return chunkRowsEqual(in, int(keep[id]), in, r, 0, ncols)
		})
		if !found {
			keep = append(keep, int32(r))
		}
	}
	out := gatherChunk(in, keep)
	*kp = keep
	putI32(kp)
	return out
}

// buildPartialChunk converts one segment's input chunk into group-by
// partial layout: the nk key columns (aliased, not copied) followed by one
// column per aggregate holding its per-row partial value — the evaluated
// argument for MIN/MAX/SUM, and a 0/1 non-NULL indicator (or constant 1
// for count(*)) for COUNT.
func buildPartialChunk(in *Chunk, keys []int, aggs []Agg) (*Chunk, error) {
	n := in.length
	vecs := make([]colVec, len(keys)+len(aggs))
	for i, k := range keys {
		vecs[i] = colVec{vals: in.cols[k], nulls: in.nulls[k]}
	}
	for i, a := range aggs {
		switch {
		case a.Op == AggCount && a.Arg == nil:
			ones := make([]int64, n)
			for j := range ones {
				ones[j] = 1
			}
			vecs[len(keys)+i] = colVec{vals: ones}
		case a.Op == AggCount:
			arg, err := evalVec(a.Arg, in)
			if err != nil {
				return nil, err
			}
			counts := make([]int64, n)
			for j := 0; j < n; j++ {
				if !arg.null(j) {
					counts[j] = 1
				}
			}
			vecs[len(keys)+i] = colVec{vals: counts}
		default:
			arg, err := evalVec(a.Arg, in)
			if err != nil {
				return nil, err
			}
			vecs[len(keys)+i] = arg
		}
	}
	return chunkFromVecs(vecs, n), nil
}
