package engine

// Columnar execution kernels: the per-segment inner loops of the hot
// operators, operating directly on chunks and the int64-specialized hash
// tables. Each kernel is a pure function over immutable input chunks so
// it can run as a leaf task on the worker pool, be differential-tested
// against a row-at-a-time reference, and be benchmarked in isolation
// (see kernels_bench_test.go).

// radixPartitionChunk splits one source chunk into nparts per-destination
// chunks — the radix step of the partitioned shuffle. dests[r] names row
// r's destination part; a negative destination drops the row entirely
// (bloom-join pruning). Rows keep their source order within each
// destination, so concatenating the per-source buckets downstream
// reproduces the exact source-major row order of the historical counting
// shuffle (pinned by TestShuffleMatchesReference and the differential
// tests).
//
// Unlike the counting shuffle's row-at-a-time placement, values move
// column-at-a-time: per column, one pass over the rows scatters into the
// destination slices, which keeps a single source column and a handful of
// destination cursors hot in cache instead of striding across every column
// of every destination per row. All destination columns share one pooled
// flat backing array (returned for release via putI64 once the buckets
// have been consumed); the backing is stale pool memory, so every slot is
// written exactly once — NULL slots are explicitly zeroed so a bucket is
// bit-identical to a freshly allocated chunk. Null bitmaps are allocated
// fresh, never pooled.
func radixPartitionChunk(ch *Chunk, dests []int32, nparts int) ([]*Chunk, *[]int64) {
	ncols := len(ch.cols)
	n := ch.length
	counts := make([]int32, nparts)
	kept := 0
	for _, d := range dests[:n] {
		if d >= 0 {
			counts[d]++
			kept++
		}
	}
	fp := getI64(ncols * kept)
	flat := *fp
	parts := chunksFromFlat(ncols, counts, flat)

	// gslot[r] is row r's slot within the concatenated bucket set: buckets
	// are packed in destination order and rows keep source order within
	// each bucket, so the slot is the bucket's start plus a running cursor.
	// Under chunksFromFlat's column-major layout, column c of row r then
	// lives at flat[c*kept+gslot[r]] — one slice, one index, no per-row
	// part indirection in the scatter loops below.
	gp := getI32(n)
	gslot := (*gp)[:n]
	starts := make([]int32, nparts)
	cursors := make([]int32, nparts)
	at := int32(0)
	for d, cnt := range counts {
		starts[d] = at
		cursors[d] = at
		at += cnt
	}
	for r, d := range dests[:n] {
		if d >= 0 {
			gslot[r] = cursors[d]
			cursors[d]++
		}
	}

	for c := 0; c < ncols; c++ {
		src := ch.cols[c]
		dst := flat[c*kept : (c+1)*kept : (c+1)*kept]
		if ch.nulls[c] == nil {
			if kept == n {
				// Branch-free hot loop: nothing pruned, no NULLs — the
				// common shape of a contraction-round shuffle.
				for r, g := range gslot {
					dst[g] = src[r]
				}
				continue
			}
			for r, d := range dests[:n] {
				if d >= 0 {
					dst[gslot[r]] = src[r]
				}
			}
			continue
		}
		nb := ch.nulls[c]
		for r, d := range dests[:n] {
			if d < 0 {
				continue
			}
			g := gslot[r]
			if nb.get(r) {
				dst[g] = 0 // pooled backing is stale; NULL payloads must read zero
				parts[d].ensureNulls(c).set(int(g - starts[d]))
			} else {
				dst[g] = src[r]
			}
		}
	}
	*gp = gslot
	putI32(gp)
	return parts, fp
}

// joinChunks joins one segment's co-located chunks: a hash table is built
// over the right (build) side keyed on the raw int64 join key, then the
// left (probe) side streams through it. NULL keys never match; for a left
// outer join, unmatched probe rows are emitted padded with NULLs. Build
// rows are inserted in reverse so each chain iterates in ascending build
// order — the exact match order the row engine produced.
func joinChunks(left, right *Chunk, leftKey, rightKey int, kind JoinKind) *Chunk {
	lw, rw := len(left.cols), len(right.cols)
	out := newChunkBuilder(lw+rw, 0)

	jt := newJoinTable(right.length)
	rkeys := right.cols[rightKey]
	rnulls := right.nulls[rightKey]
	for i := right.length - 1; i >= 0; i-- {
		if rnulls.get(i) {
			continue
		}
		jt.insert(rkeys[i], int32(i))
	}

	lkeys := left.cols[leftKey]
	lnulls := left.nulls[leftKey]
	for i := 0; i < left.length; i++ {
		m := int32(-1)
		if !lnulls.get(i) {
			m = jt.lookup(lkeys[i])
		}
		if m < 0 {
			if kind == LeftOuterJoin {
				out.appendOuterRow(left, i, rw)
			}
			continue
		}
		for ; m >= 0; m = jt.next[m] {
			out.appendJoinRow(left, i, right, int(m))
		}
	}
	return out.finish()
}

// groupChunk folds a partial-layout chunk (nk key columns followed by one
// column per aggregate) into one row per distinct key, preserving
// first-seen group order. Lookup is a single hash + open-addressing probe
// per input row; aggregate state mutates in place in the output builder.
func groupChunk(in *Chunk, nk int, aggs []Agg) *Chunk {
	b := newChunkBuilder(nk+len(aggs), 0)
	t := newGroupTable(64)
	foldChunkInto(b, t, in, nk, aggs)
	return b.finish()
}

// foldChunkInto folds one partial-layout chunk into an accumulating group
// builder/table pair. Factoring the loop out of groupChunk lets the spill
// path (foldPartition) fold a partition's chunks frame by frame into one
// shared accumulator without materializing their concatenation.
func foldChunkInto(b *chunkBuilder, t *groupTable, in *Chunk, nk int, aggs []Agg) {
	na := len(aggs)
	for r := 0; r < in.length; r++ {
		h := chunkRowHash(in, 0, nk, r)
		id, found := t.insertOrGet(h, func(g int32) bool {
			return builderKeysEqual(b, g, in, r, nk)
		})
		if !found {
			b.appendGroupRow(in, r, nk, na)
		}
		for i, a := range aggs {
			c := nk + i
			b.mergeAgg(c, id, a.Op, in.cols[c][r], in.nulls[c].get(r))
		}
	}
}

// builderKeysEqual compares the key columns of admitted group g against
// input row r, NULLs comparing equal (SQL GROUP BY key semantics).
func builderKeysEqual(b *chunkBuilder, g int32, in *Chunk, r, nk int) bool {
	for c := 0; c < nk; c++ {
		gn, rn := b.nulls[c].get(int(g)), in.nulls[c].get(r)
		if gn != rn {
			return false
		}
		if !gn && b.cols[c][g] != in.cols[c][r] {
			return false
		}
	}
	return true
}

// distinctChunk removes duplicate rows, keeping the first occurrence of
// each, via one whole-row hash + probe per input row. The survivors are
// gathered into an exact-capacity output chunk.
func distinctChunk(in *Chunk) *Chunk {
	ncols := len(in.cols)
	t := newGroupTable(64)
	kp := getI32(in.length)
	keep := *kp
	for r := 0; r < in.length; r++ {
		h := chunkRowHash(in, 0, ncols, r)
		_, found := t.insertOrGet(h, func(id int32) bool {
			return chunkRowsEqual(in, int(keep[id]), in, r, 0, ncols)
		})
		if !found {
			keep = append(keep, int32(r))
		}
	}
	out := gatherChunk(in, keep)
	*kp = keep
	putI32(kp)
	return out
}

// buildPartialChunk converts one segment's input chunk into group-by
// partial layout: the nk key columns (aliased, not copied) followed by one
// column per aggregate holding its per-row partial value — the evaluated
// argument for MIN/MAX/SUM, and a 0/1 non-NULL indicator (or constant 1
// for count(*)) for COUNT.
func buildPartialChunk(in *Chunk, keys []int, aggs []Agg) (*Chunk, error) {
	n := in.length
	vecs := make([]colVec, len(keys)+len(aggs))
	for i, k := range keys {
		vecs[i] = colVec{vals: in.cols[k], nulls: in.nulls[k]}
	}
	for i, a := range aggs {
		switch {
		case a.Op == AggCount && a.Arg == nil:
			ones := make([]int64, n)
			for j := range ones {
				ones[j] = 1
			}
			vecs[len(keys)+i] = colVec{vals: ones}
		case a.Op == AggCount:
			arg, err := evalVec(a.Arg, in)
			if err != nil {
				return nil, err
			}
			counts := make([]int64, n)
			for j := 0; j < n; j++ {
				if !arg.null(j) {
					counts[j] = 1
				}
			}
			vecs[len(keys)+i] = colVec{vals: counts}
		default:
			arg, err := evalVec(a.Arg, in)
			if err != nil {
				return nil, err
			}
			vecs[len(keys)+i] = arg
		}
	}
	return chunkFromVecs(vecs, n), nil
}
