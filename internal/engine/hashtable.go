package engine

import (
	"math/bits"

	"dbcc/internal/xrand"
)

// This file holds the int64-specialized hash tables the execution kernels
// use instead of generic Go maps: open addressing with linear probing over
// power-of-two capacities, no tombstones (the tables are insert-only for
// the lifetime of one operator), and dense int32 payloads. They exist
// because the engine's hot loops — join build/probe, group-by state
// lookup, DISTINCT dedup — otherwise spend their time in runtime.mapassign
// and per-key allocations.

// nextPow2 returns the smallest power of two >= n (and >= 8).
func nextPow2(n int) int {
	c := 8
	for c < n {
		c <<= 1
	}
	return c
}

// joinTable indexes the build side of a hash join: an open-addressed table
// keyed on the raw int64 join key, where each occupied slot heads a chain
// of build-row indices threaded through next (rows sharing a key link
// together, replacing the map[int64][]Row bucket slices of the row
// engine). Chains are built by prepending, so inserting rows in reverse
// order yields chains that iterate in ascending build order — exactly the
// match order the row engine produced.
type joinTable struct {
	keys []int64
	head []int32 // head[slot] = first build row for keys[slot], -1 if empty
	next []int32 // next[row] = next build row with the same key, -1 at end
	mask uint32
}

// newJoinTable sizes a table for n build rows at load factor <= 1/2.
func newJoinTable(n int) *joinTable {
	slots := nextPow2(2 * n)
	t := &joinTable{
		keys: make([]int64, slots),
		head: make([]int32, slots),
		next: make([]int32, n),
		mask: uint32(slots - 1),
	}
	for i := range t.head {
		t.head[i] = -1
	}
	return t
}

// insert links build row onto the chain for key.
func (t *joinTable) insert(key int64, row int32) {
	s := uint32(xrand.Mix64(uint64(key))) & t.mask
	for {
		h := t.head[s]
		if h < 0 {
			t.keys[s] = key
			t.head[s] = row
			t.next[row] = -1
			return
		}
		if t.keys[s] == key {
			t.next[row] = h
			t.head[s] = row
			return
		}
		s = (s + 1) & t.mask
	}
}

// lookup returns the first build row matching key, or -1.
func (t *joinTable) lookup(key int64) int32 {
	s := uint32(xrand.Mix64(uint64(key))) & t.mask
	for {
		h := t.head[s]
		if h < 0 {
			return -1
		}
		if t.keys[s] == key {
			return h
		}
		s = (s + 1) & t.mask
	}
}

// groupTable maps hashed rows to dense small-int ids — the shared engine
// under group-by (id = group number) and DISTINCT (id = kept-row number).
// The caller supplies the 64-bit row hash and an equality predicate over
// already-admitted ids; the table caches each id's hash so probes compare
// one uint64 before falling back to column-wise equality, and growth
// rehashes from the cache without re-reading any data.
type groupTable struct {
	slots  []int32  // dense id per occupied slot, -1 if empty
	idHash []uint64 // hash of each admitted id, in id order
	mask   uint32
	n      int
}

// newGroupTable sizes a table for about capHint distinct ids.
func newGroupTable(capHint int) *groupTable {
	slots := nextPow2(2 * capHint)
	t := &groupTable{
		slots:  make([]int32, slots),
		idHash: make([]uint64, 0, capHint),
		mask:   uint32(slots - 1),
	}
	for i := range t.slots {
		t.slots[i] = -1
	}
	return t
}

// insertOrGet returns the id for a row with hash h, admitting a new id
// (found=false) when no admitted id with the same hash satisfies eq. The
// caller must record the new id's data before the next insertOrGet call,
// since later probes may invoke eq against it.
func (t *groupTable) insertOrGet(h uint64, eq func(id int32) bool) (id int32, found bool) {
	if 2*(t.n+1) > len(t.slots) {
		t.grow()
	}
	s := uint32(h) & t.mask
	for {
		id := t.slots[s]
		if id < 0 {
			id = int32(t.n)
			t.slots[s] = id
			t.idHash = append(t.idHash, h)
			t.n++
			return id, false
		}
		if t.idHash[id] == h && eq(id) {
			return id, true
		}
		s = (s + 1) & t.mask
	}
}

// grow doubles the slot array and reinserts every admitted id from the
// hash cache.
func (t *groupTable) grow() {
	slots := make([]int32, 2*len(t.slots))
	for i := range slots {
		slots[i] = -1
	}
	mask := uint32(len(slots) - 1)
	for id, h := range t.idHash {
		s := uint32(h) & mask
		for slots[s] >= 0 {
			s = (s + 1) & mask
		}
		slots[s] = int32(id)
	}
	t.slots = slots
	t.mask = mask
}

// bloomFilter is the join-pruning companion of joinTable: a blocked-free
// two-hash Bloom filter over the raw int64 join keys of a hash join's
// build side. The probe side tests it before rows cross segments, so a
// probe row whose key cannot possibly have a build match is dropped at its
// source segment instead of being shuffled and then discarded by the join.
//
// Both bit positions derive from one Mix64 call (the low word and the
// word rotated by 32), so testing costs one multiply-shift hash — cheaper
// than the shuffle it saves. Membership is conservative: mayContain may
// return true for absent keys (a false positive merely forfeits the
// pruning win) but never false for a key that was added, which the
// FuzzBloomFilter target enforces. Adding is idempotent (OR-ing bits), so
// a retried build task re-adding its keys is harmless, and same-sized
// per-segment partial filters OR-merge into the global filter.
type bloomFilter struct {
	words []uint64
	mask  uint64 // bit-index mask: number of bits - 1
}

// bloomBitsPerKey sizes filters at ~16 bits per expected build key, which
// with two hash functions keeps the false-positive rate under ~2%.
const bloomBitsPerKey = 16

// newBloomFilter sizes a filter for n expected keys. All partial filters
// built for the same join must be created with the same n so their bit
// arrays line up for merge.
func newBloomFilter(n int64) *bloomFilter {
	nbits := int64(1024)
	for nbits < bloomBitsPerKey*n {
		nbits <<= 1
	}
	return &bloomFilter{words: make([]uint64, nbits/64), mask: uint64(nbits - 1)}
}

// bloomPositions derives the two bit positions for a key.
func (f *bloomFilter) bloomPositions(key int64) (uint64, uint64) {
	h := xrand.Mix64(uint64(key))
	return h & f.mask, bits.RotateLeft64(h, 32) & f.mask
}

// add records a key.
func (f *bloomFilter) add(key int64) {
	b1, b2 := f.bloomPositions(key)
	f.words[b1>>6] |= 1 << (b1 & 63)
	f.words[b2>>6] |= 1 << (b2 & 63)
}

// mayContain reports whether key may have been added: false means
// certainly absent, true means probably present.
func (f *bloomFilter) mayContain(key int64) bool {
	b1, b2 := f.bloomPositions(key)
	return f.words[b1>>6]&(1<<(b1&63)) != 0 && f.words[b2>>6]&(1<<(b2&63)) != 0
}

// merge ORs another same-sized filter into f, so f contains every key
// added to either side.
func (f *bloomFilter) merge(o *bloomFilter) {
	for i, w := range o.words {
		f.words[i] |= w
	}
}

// chunkRowHash mixes columns [lo, hi) of row r into a 64-bit hash, with a
// fixed perturbation for NULLs (the same construction the whole-row
// shuffle hash uses, so NULL and zero never collide silently).
func chunkRowHash(ch *Chunk, lo, hi, r int) uint64 {
	var h uint64
	for c := lo; c < hi; c++ {
		if ch.nulls[c].get(r) {
			h = xrand.Mix64(h ^ nullHashSeed)
		} else {
			h = xrand.Mix64(h ^ uint64(ch.cols[c][r]))
		}
	}
	return h
}

// nullHashSeed perturbs row hashes for NULL values, matching the historic
// whole-row redistribution hash.
const nullHashSeed = 0x9e37

// chunkRowsEqual reports whether columns [lo, hi) of row a in ca equal the
// same columns of row b in cb, treating NULL as equal to NULL (group keys
// and DISTINCT compare NULLs as identical, per SQL GROUP BY semantics).
func chunkRowsEqual(ca *Chunk, a int, cb *Chunk, b int, lo, hi int) bool {
	for c := lo; c < hi; c++ {
		an, bn := ca.nulls[c].get(a), cb.nulls[c].get(b)
		if an != bn {
			return false
		}
		if !an && ca.cols[c][a] != cb.cols[c][b] {
			return false
		}
	}
	return true
}
