package engine

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"dbcc/internal/xrand"
)

// Memory-bounded kernel variants: Grace-style partitioned hash join,
// partitioned group-by/DISTINCT fold, and external merge sort. Each
// segment task estimates the working set of the in-memory kernel first
// and runs it unchanged when it fits the task's share of the statement
// budget; otherwise the spilling variant partitions its input into files
// (see spill.go) whose partitions are processed one at a time, recursing
// with a fresh hash salt on partitions that still exceed the share.
//
// Every spilling variant is bit-identical to its in-memory kernel: rows
// carry a hidden original-row-index column through the partition files,
// and the final output is re-ordered by it —
//
//   - grace join tags both sides, emits matches with hidden
//     (probeIdx, buildIdx) columns (buildIdx −1 for the padded rows of a
//     left outer join) and index-sorts the concatenated partition outputs
//     by that pair, reproducing the in-memory order exactly: probe order,
//     ascending build row within one probe row;
//   - the fold adds a MIN aggregate over the hidden row index, giving
//     each group its first-occurrence position, and sorts group rows by
//     it — first-seen order, as groupChunk and distinctChunk produce;
//   - external sort splits the chunk into consecutive-range runs (ties
//     within a run break by original position, the earlier run wins
//     across runs), so the merge is exactly the stable in-memory sort.

// joinSegment joins one segment's co-located chunks under the memory
// budget: in-memory when the build side and its hash table fit the
// segment share, Grace-partitioned otherwise.
func (e *execEnv) joinSegment(seg int, left, right *Chunk, lk, rk int, kind JoinKind) (*Chunk, error) {
	est := chunkFootprint(right) + joinTableBytes(right.length)
	if !e.shouldSpill(est) {
		w := joinTableBytes(right.length)
		e.acct.charge(w)
		defer e.acct.release(w)
		return joinChunks(left, right, lk, rk, kind), nil
	}
	dir, err := e.ensureSpillDir()
	if err != nil {
		return nil, err
	}
	lw, rw := len(left.cols), len(right.cols)
	wideRow := int64(max(lw, rw)+1) * 8
	fan := spillFanout(est, e.segShare(), wideRow)
	name := fmt.Sprintf("op%d_seg%d_J", e.opSeq.Load(), seg)
	var ioSeq int64

	// Pass 0: partition both sides by the join key, tagging every row with
	// its original index. NULL probe keys can never match but must still
	// surface for outer joins, so they ride in partition 0; NULL build keys
	// are dropped, as the in-memory kernel never inserts them.
	lps, err := e.newPartitionSet(seg, dir, name+"_L", fan, lw+1, &ioSeq)
	if err != nil {
		return nil, err
	}
	salt := spillSalt(0)
	lkeys, lnulls := left.cols[lk], left.nulls[lk]
	for r := 0; r < left.length; r++ {
		p := 0
		if !lnulls.get(r) {
			p = int(xrand.Mix64(uint64(lkeys[r])^salt) % uint64(fan))
		}
		if err := lps.appendRowExtra(p, left, r, int64(r)); err != nil {
			lps.abort()
			return nil, err
		}
	}
	lparts, err := lps.finish()
	if err != nil {
		return nil, err
	}
	rps, err := e.newPartitionSet(seg, dir, name+"_R", fan, rw+1, &ioSeq)
	if err != nil {
		return nil, err
	}
	rkeys, rnulls := right.cols[rk], right.nulls[rk]
	for r := 0; r < right.length; r++ {
		if rnulls.get(r) {
			continue
		}
		p := int(xrand.Mix64(uint64(rkeys[r])^salt) % uint64(fan))
		if err := rps.appendRowExtra(p, right, r, int64(r)); err != nil {
			rps.abort()
			return nil, err
		}
	}
	rparts, err := rps.finish()
	if err != nil {
		return nil, err
	}

	out := newChunkBuilder(lw+rw+2, 0)
	for p := 0; p < fan; p++ {
		child := fmt.Sprintf("%s_p%d", name, p)
		if err := e.graceJoinPart(seg, dir, child, out, lparts[p], rparts[p],
			lw, rw, lk, rk, kind, int64(right.length), 1, &ioSeq); err != nil {
			return nil, err
		}
	}
	res := out.finish()

	// Restore the in-memory emission order via the hidden index pair, then
	// strip the hidden columns.
	pc, bc := res.cols[lw+rw], res.cols[lw+rw+1]
	idx := make([]int32, res.length)
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.Slice(idx, func(i, j int) bool {
		a, b := idx[i], idx[j]
		if pc[a] != pc[b] {
			return pc[a] < pc[b]
		}
		return bc[a] < bc[b]
	})
	return stripCols(gatherChunk(res, idx), lw+rw), nil
}

// graceJoinPart processes one partition pair: re-partitioned with a fresh
// salt while the build side still exceeds the share (and is still
// shrinking — identical keys cannot be split further), joined in memory
// otherwise. Matches are appended to out with the hidden index pair.
func (e *execEnv) graceJoinPart(seg int, dir, name string, out *chunkBuilder,
	lpart, rpart *spillPartWriter, lw, rw, lk, rk int, kind JoinKind,
	parentBuildRows int64, depth int, ioSeq *int64) error {
	buildRows := rpart.rows
	est := buildRows*int64(rw+1)*8 + joinTableBytes(int(buildRows))
	if e.shouldSpill(est) && depth < maxSpillDepth && buildRows < parentBuildRows {
		fan := spillFanout(est, e.segShare(), int64(max(lw, rw)+1)*8)
		salt := spillSalt(depth)
		lsub, err := e.repartitionByKey(seg, dir, name+"_L", lpart.path, lw+1, lk, fan, salt, true, ioSeq)
		if err != nil {
			return err
		}
		rsub, err := e.repartitionByKey(seg, dir, name+"_R", rpart.path, rw+1, rk, fan, salt, false, ioSeq)
		if err != nil {
			return err
		}
		for p := 0; p < fan; p++ {
			child := fmt.Sprintf("%s_d%d_p%d", name, depth, p)
			if err := e.graceJoinPart(seg, dir, child, out, lsub[p], rsub[p],
				lw, rw, lk, rk, kind, buildRows, depth+1, ioSeq); err != nil {
				return err
			}
		}
		return nil
	}

	if !e.shouldSpill(est) {
		build, err := readPartition(rpart.path, rw+1)
		if err != nil {
			return err
		}
		charge := chunkFootprint(build) + joinTableBytes(build.length)
		e.acct.charge(charge)
		defer e.acct.release(charge)
		jt := newJoinTable(build.length)
		bkeys := build.cols[rk]
		for i := build.length - 1; i >= 0; i-- {
			jt.insert(bkeys[i], int32(i))
		}
		sr, err := openSpillReader(lpart.path)
		if err != nil {
			return err
		}
		defer sr.close()
		for {
			pf, err := sr.next()
			if err != nil {
				return err
			}
			if pf == nil {
				return nil
			}
			if err := probeAgainst(out, pf, build, jt, lw, rw, lk, rk, kind, nil, 0); err != nil {
				return err
			}
		}
	}
	// The partition still exceeds the share but cannot shrink (one
	// extremely hot key, or the depth cap): no amount of re-partitioning
	// helps, so fall back to a block nested-loop hash join — the build
	// side streams through in blocks that fit the share, the probe side is
	// re-scanned once per block. Matches carry the hidden index pair, so
	// the final re-sort restores the exact in-memory order regardless of
	// block boundaries.
	return e.blockJoinPart(lpart, rpart, out, lw, rw, lk, rk, kind)
}

// probeAgainst streams one probe frame through a build chunk's hash
// table, appending matches (with the hidden index pair) to out. When
// matched is nil (single-table grace mode) unmatched probe rows of a left
// outer join are padded immediately; when non-nil (block nested-loop
// mode, where a row unmatched by this block may match a later one) it
// records which probe ordinals found a match instead, and the caller
// emits the pads in a final pass. ordBase is the ordinal of the frame's
// first row.
func probeAgainst(out *chunkBuilder, pf, build *Chunk, jt *joinTable, lw, rw, lk, rk int,
	kind JoinKind, matched []uint64, ordBase int64) error {
	pkeys, pnulls := pf.cols[lk], pf.nulls[lk]
	pidx := pf.cols[lw]
	bidx := build.cols[rw]
	for r := 0; r < pf.length; r++ {
		m := int32(-1)
		if !pnulls.get(r) {
			m = jt.lookup(pkeys[r])
		}
		if m < 0 {
			if matched == nil && kind == LeftOuterJoin {
				for c := 0; c < lw; c++ {
					out.appendCol(c, pf.cols[c][r], pf.nulls[c].get(r))
				}
				for c := 0; c < rw; c++ {
					out.appendCol(lw+c, 0, true)
				}
				out.appendCol(lw+rw, pidx[r], false)
				out.appendCol(lw+rw+1, -1, false)
				out.n++
			}
			continue
		}
		if matched != nil {
			ord := ordBase + int64(r)
			matched[ord/64] |= 1 << (uint(ord) % 64)
		}
		for ; m >= 0; m = jt.next[m] {
			for c := 0; c < lw; c++ {
				out.appendCol(c, pf.cols[c][r], pf.nulls[c].get(r))
			}
			for c := 0; c < rw; c++ {
				out.appendCol(lw+c, build.cols[c][int(m)], build.nulls[c].get(int(m)))
			}
			out.appendCol(lw+rw, pidx[r], false)
			out.appendCol(lw+rw+1, bidx[m], false)
			out.n++
		}
	}
	return nil
}

// blockJoinPart joins one unsplittable partition pair within the share:
// the build file streams through in fixed-size blocks, each block's hash
// table probes the whole probe file, and (for outer joins) a bitmap over
// probe ordinals collects matches so pad rows are emitted exactly once in
// a final pass.
func (e *execEnv) blockJoinPart(lpart, rpart *spillPartWriter, out *chunkBuilder,
	lw, rw, lk, rk int, kind JoinKind) error {
	share := e.segShare()
	rowB := int64(rw+1) * 8
	// A build row costs its chunk bytes plus at most ~52 hash-table bytes
	// (nextPow2(2n) 12-byte slots + 4-byte chain links); size blocks so
	// chunk + table fit half the share.
	blockRows := int(share / (2 * (rowB + 52)))
	if blockRows < 1 {
		blockRows = 1
	}
	charge := int64(blockRows)*rowB + joinTableBytes(blockRows)
	var matched []uint64
	if kind == LeftOuterJoin {
		matched = make([]uint64, (lpart.rows+63)/64)
		charge += int64(len(matched)) * 8
	}
	e.acct.charge(charge)
	defer e.acct.release(charge)

	probeAll := func(block *Chunk) error {
		jt := newJoinTable(block.length)
		bkeys := block.cols[rk]
		for i := block.length - 1; i >= 0; i-- {
			jt.insert(bkeys[i], int32(i))
		}
		sr, err := openSpillReader(lpart.path)
		if err != nil {
			return err
		}
		defer sr.close()
		var ord int64
		for {
			pf, err := sr.next()
			if err != nil {
				return err
			}
			if pf == nil {
				return nil
			}
			if err := probeAgainst(out, pf, block, jt, lw, rw, lk, rk, kind, matched, ord); err != nil {
				return err
			}
			ord += int64(pf.length)
		}
	}

	bb := newChunkBuilder(rw+1, 0)
	br, err := openSpillReader(rpart.path)
	if err != nil {
		return err
	}
	defer br.close()
	for {
		bf, err := br.next()
		if err != nil {
			return err
		}
		if bf == nil {
			break
		}
		for r := 0; r < bf.length; r++ {
			for c := 0; c <= rw; c++ {
				bb.appendCol(c, bf.cols[c][r], bf.nulls[c].get(r))
			}
			bb.n++
			if bb.n >= blockRows {
				if err := probeAll(bb.finish()); err != nil {
					return err
				}
				bb = newChunkBuilder(rw+1, 0)
			}
		}
	}
	if bb.n > 0 {
		if err := probeAll(bb.finish()); err != nil {
			return err
		}
	}

	if kind != LeftOuterJoin {
		return nil
	}
	// Pad pass: probe rows no block matched (NULL keys included).
	sr, err := openSpillReader(lpart.path)
	if err != nil {
		return err
	}
	defer sr.close()
	var ord int64
	for {
		pf, err := sr.next()
		if err != nil {
			return err
		}
		if pf == nil {
			return nil
		}
		for r := 0; r < pf.length; r++ {
			o := ord + int64(r)
			if matched[o/64]&(1<<(uint(o)%64)) != 0 {
				continue
			}
			for c := 0; c < lw; c++ {
				out.appendCol(c, pf.cols[c][r], pf.nulls[c].get(r))
			}
			for c := 0; c < rw; c++ {
				out.appendCol(lw+c, 0, true)
			}
			out.appendCol(lw+rw, pf.cols[lw][r], false)
			out.appendCol(lw+rw+1, -1, false)
			out.n++
		}
		ord += int64(pf.length)
	}
}

// repartitionByKey streams a partition file into fanout sub-partitions
// under a new salt. Rows already carry their hidden index column; the key
// column position is unchanged. keepNull routes NULL-key rows to
// sub-partition 0 (probe sides); files never contain NULL build keys.
func (e *execEnv) repartitionByKey(seg int, dir, base, path string, ncols, key, fanout int,
	salt uint64, keepNull bool, ioSeq *int64) ([]*spillPartWriter, error) {
	ps, err := e.newPartitionSet(seg, dir, base, fanout, ncols, ioSeq)
	if err != nil {
		return nil, err
	}
	sr, err := openSpillReader(path)
	if err != nil {
		ps.abort()
		return nil, err
	}
	defer sr.close()
	for {
		fr, err := sr.next()
		if err != nil {
			ps.abort()
			return nil, err
		}
		if fr == nil {
			break
		}
		keys, nulls := fr.cols[key], fr.nulls[key]
		for r := 0; r < fr.length; r++ {
			p := 0
			if nulls.get(r) {
				if !keepNull {
					continue
				}
			} else {
				p = int(xrand.Mix64(uint64(keys[r])^salt) % uint64(fanout))
			}
			if err := ps.appendRow(p, fr, r); err != nil {
				ps.abort()
				return nil, err
			}
		}
	}
	return ps.finish()
}

// foldSegment folds one segment's partial-layout chunk (group-by) or
// whole rows (DISTINCT, nk = all columns, no aggregates) under the memory
// budget: the in-memory kernel when input plus hash table fit the share,
// the partitioned fold otherwise.
func (e *execEnv) foldSegment(seg int, in *Chunk, nk int, aggs []Agg, distinct bool) (*Chunk, error) {
	est := chunkFootprint(in) + groupTableBytes(in.length)
	if !e.shouldSpill(est) {
		w := groupTableBytes(in.length)
		e.acct.charge(w)
		defer e.acct.release(w)
		if distinct {
			return distinctChunk(in), nil
		}
		return groupChunk(in, nk, aggs), nil
	}
	dir, err := e.ensureSpillDir()
	if err != nil {
		return nil, err
	}
	ncols := len(in.cols)
	fan := spillFanout(est, e.segShare(), int64(ncols+1)*8)
	name := fmt.Sprintf("op%d_seg%d_G", e.opSeq.Load(), seg)
	var ioSeq int64

	// Pass 0: partition by key hash, tagging rows with their original
	// index; all rows of one group land in one partition.
	ps, err := e.newPartitionSet(seg, dir, name, fan, ncols+1, &ioSeq)
	if err != nil {
		return nil, err
	}
	salt := spillSalt(0)
	for r := 0; r < in.length; r++ {
		p := int(xrand.Mix64(chunkRowHash(in, 0, nk, r)^salt) % uint64(fan))
		if err := ps.appendRowExtra(p, in, r, int64(r)); err != nil {
			ps.abort()
			return nil, err
		}
	}
	parts, err := ps.finish()
	if err != nil {
		return nil, err
	}

	// Per-partition streaming fold, with an extra MIN over the hidden
	// index recording each group's first occurrence.
	foldAggs := make([]Agg, 0, len(aggs)+1)
	foldAggs = append(foldAggs, aggs...)
	foldAggs = append(foldAggs, Agg{Op: AggMin})
	var outs []*Chunk
	for p := 0; p < fan; p++ {
		child := fmt.Sprintf("%s_p%d", name, p)
		if err := e.foldPartition(seg, dir, child, parts[p], nk, foldAggs,
			int64(in.length), 1, &ioSeq, &outs); err != nil {
			return nil, err
		}
	}
	all := concatChunks(ncols+1, outs)

	// Restore first-seen order via the hidden first-occurrence column.
	hidden := all.cols[ncols]
	idx := make([]int32, all.length)
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.Slice(idx, func(i, j int) bool { return hidden[idx[i]] < hidden[idx[j]] })
	return stripCols(gatherChunk(all, idx), ncols), nil
}

// foldPartition folds one partition file into group rows, recursing with
// a fresh salt while the partition exceeds the share and still shrinks.
// Folded chunks (keys, aggregates, hidden first-occurrence index) are
// appended to outs.
func (e *execEnv) foldPartition(seg int, dir, name string, part *spillPartWriter,
	nk int, foldAggs []Agg, parentRows int64, depth int, ioSeq *int64, outs *[]*Chunk) error {
	fcols := nk + len(foldAggs) // file layout: keys, agg partials, hidden index
	est := part.rows*int64(fcols)*8 + groupTableBytes(int(part.rows))
	if e.shouldSpill(est) && depth < maxSpillDepth && part.rows < parentRows {
		fan := spillFanout(est, e.segShare(), int64(fcols)*8)
		salt := spillSalt(depth)
		ps, err := e.newPartitionSet(seg, dir, name, fan, fcols, ioSeq)
		if err != nil {
			return err
		}
		sr, err := openSpillReader(part.path)
		if err != nil {
			ps.abort()
			return err
		}
		for {
			fr, err := sr.next()
			if err != nil {
				sr.close()
				ps.abort()
				return err
			}
			if fr == nil {
				break
			}
			for r := 0; r < fr.length; r++ {
				p := int(xrand.Mix64(chunkRowHash(fr, 0, nk, r)^salt) % uint64(fan))
				if err := ps.appendRow(p, fr, r); err != nil {
					sr.close()
					ps.abort()
					return err
				}
			}
		}
		sr.close()
		sub, err := ps.finish()
		if err != nil {
			return err
		}
		for p := 0; p < fan; p++ {
			child := fmt.Sprintf("%s_d%d_p%d", name, depth, p)
			if err := e.foldPartition(seg, dir, child, sub[p], nk, foldAggs,
				part.rows, depth+1, ioSeq, outs); err != nil {
				return err
			}
		}
		return nil
	}

	// Base fold: frames stream through the accumulator one at a time, so
	// the working set is the group rows, not the input rows — a partition
	// that could not shrink (one hot key) folds into few groups and stays
	// within the share even though its row count does not. The charge
	// tracks the accumulator as it grows.
	b := newChunkBuilder(fcols, 0)
	t := newGroupTable(64)
	var charged int64
	defer func() { e.acct.release(charged) }()
	sr, err := openSpillReader(part.path)
	if err != nil {
		return err
	}
	defer sr.close()
	for {
		fr, err := sr.next()
		if err != nil {
			return err
		}
		if fr == nil {
			break
		}
		foldChunkInto(b, t, fr, nk, foldAggs)
		if c := int64(b.n)*int64(fcols)*8 + groupTableBytes(b.n); c > charged {
			e.acct.charge(c - charged)
			charged = c
		}
	}
	*outs = append(*outs, b.finish())
	return nil
}

// stripCols returns a view of ch keeping only the first k columns (the
// hidden spill bookkeeping columns sit at the end).
func stripCols(ch *Chunk, k int) *Chunk {
	return &Chunk{length: ch.length, cols: ch.cols[:k], nulls: ch.nulls[:k]}
}

// sortSegment sorts one segment's chunk under the memory budget. It
// returns the chunk the coordinator merge should read and the sorted
// index vector into it: the input chunk plus a sorted index in memory, or
// a materialised externally-sorted chunk with the identity index when the
// working set exceeds the share.
func (e *execEnv) sortSegment(seg int, ch *Chunk, keys []SortKey) (*Chunk, []int32, error) {
	n := ch.length
	idxBytes := int64(4 * n)
	if !e.shouldSpill(chunkFootprint(ch) + idxBytes) {
		e.acct.charge(idxBytes)
		defer e.acct.release(idxBytes)
		idx := make([]int32, n)
		for i := range idx {
			idx[i] = int32(i)
		}
		sort.Slice(idx, func(i, j int) bool {
			a, b := int(idx[i]), int(idx[j])
			if cmp := compareChunkRows(keys, ch, a, ch, b); cmp != 0 {
				return cmp < 0
			}
			return a < b
		})
		return ch, idx, nil
	}

	dir, err := e.ensureSpillDir()
	if err != nil {
		return nil, nil, err
	}
	ncols := len(ch.cols)
	share := e.segShare()
	rowB := int64(ncols) * 8
	if rowB <= 0 {
		rowB = 8
	}
	runRows := int(share / (2 * rowB))
	if runRows < 64 {
		runRows = 64
	}
	// The merge holds one buffered frame (one row at the floor) per run, so
	// cap the run count at what half the share can buffer and grow the runs
	// instead — the external-sort analogue of the fan-out cap.
	maxRuns := int(share / (2 * rowB))
	if maxRuns < 2 {
		maxRuns = 2
	}
	if minRun := (n + maxRuns - 1) / maxRuns; runRows < minRun {
		runRows = minRun
	}
	if runRows > n {
		runRows = n
	}
	nRuns := (n + runRows - 1) / runRows
	frameRows := int(share / (2 * int64(nRuns) * rowB))
	if frameRows < 1 {
		frameRows = 1
	}
	if frameRows > 512 {
		frameRows = 512
	}
	name := fmt.Sprintf("op%d_seg%d_S", e.opSeq.Load(), seg)
	var ioSeq int64

	// Run formation: consecutive ranges sorted with the original position
	// as tie-break, streamed out in frames. Consecutive ranges keep global
	// original-position order across runs, which makes the lowest-run
	// tie-break below reproduce the stable in-memory sort.
	bufCharge := int64(frameRows)*rowB + int64(runRows)*4
	e.acct.charge(bufCharge)
	var scratch []byte
	var runBytes int64
	paths := make([]string, nRuns)
	for run := 0; run < nRuns; run++ {
		lo := run * runRows
		hi := lo + runRows
		if hi > n {
			hi = n
		}
		idx := make([]int32, hi-lo)
		for i := range idx {
			idx[i] = int32(lo + i)
		}
		sort.Slice(idx, func(i, j int) bool {
			a, b := int(idx[i]), int(idx[j])
			if cmp := compareChunkRows(keys, ch, a, ch, b); cmp != 0 {
				return cmp < 0
			}
			return a < b
		})
		paths[run] = filepath.Join(dir, fmt.Sprintf("%s_r%d.run", name, run))
		f, err := os.Create(paths[run])
		if err != nil {
			e.acct.release(bufCharge)
			return nil, nil, fmt.Errorf("engine: creating sort run: %w", err)
		}
		for off := 0; off < len(idx); off += frameRows {
			end := off + frameRows
			if end > len(idx) {
				end = len(idx)
			}
			fr := gatherChunk(ch, idx[off:end])
			nb, err := e.writeSpillFrame(seg, f, &scratch, fr, &ioSeq)
			if err != nil {
				f.Close()
				e.acct.release(bufCharge)
				return nil, nil, err
			}
			runBytes += nb
		}
		if err := f.Close(); err != nil {
			e.acct.release(bufCharge)
			return nil, nil, fmt.Errorf("engine: closing sort run: %w", err)
		}
	}
	e.acct.release(bufCharge)
	e.noteSpill(runBytes, int64(nRuns), 1)

	// K-way merge of the runs, one buffered frame per run.
	mergeCharge := int64(nRuns) * int64(frameRows) * rowB
	e.acct.charge(mergeCharge)
	defer e.acct.release(mergeCharge)
	readers := make([]*spillReader, nRuns)
	cur := make([]*Chunk, nRuns)
	pos := make([]int, nRuns)
	defer func() {
		for _, r := range readers {
			if r != nil {
				r.close()
			}
		}
	}()
	for i := range readers {
		sr, err := openSpillReader(paths[i])
		if err != nil {
			return nil, nil, err
		}
		readers[i] = sr
		if cur[i], err = sr.next(); err != nil {
			return nil, nil, err
		}
	}
	out := newChunk(ncols, n)
	for k := 0; k < n; k++ {
		best := -1
		for i := 0; i < nRuns; i++ {
			if cur[i] == nil {
				continue
			}
			if best < 0 || compareChunkRows(keys, cur[i], pos[i], cur[best], pos[best]) < 0 {
				best = i
			}
		}
		bc, br := cur[best], pos[best]
		for col := 0; col < ncols; col++ {
			if bc.nulls[col].get(br) {
				out.ensureNulls(col).set(k)
			} else {
				out.cols[col][k] = bc.cols[col][br]
			}
		}
		pos[best]++
		if pos[best] >= bc.length {
			nxt, err := readers[best].next()
			if err != nil {
				return nil, nil, err
			}
			cur[best], pos[best] = nxt, 0
		}
	}
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	return out, idx, nil
}
