package engine

import "fmt"

// Expr is a scalar expression evaluated against one input row.
type Expr interface {
	// Eval computes the expression over the row.
	Eval(row Row) Datum
	// String renders the expression for plan explanations.
	String() string
}

// ColRef references an input column by position.
type ColRef struct {
	Idx  int
	Name string // for display only
}

// Eval implements Expr.
func (e ColRef) Eval(row Row) Datum { return row[e.Idx] }

func (e ColRef) String() string {
	if e.Name != "" {
		return e.Name
	}
	return fmt.Sprintf("$%d", e.Idx)
}

// Col returns a column reference expression.
func Col(idx int) Expr { return ColRef{Idx: idx} }

// NamedCol returns a column reference carrying a display name.
func NamedCol(idx int, name string) Expr { return ColRef{Idx: idx, Name: name} }

// ConstExpr is a literal value.
type ConstExpr struct{ Val Datum }

// Eval implements Expr.
func (e ConstExpr) Eval(Row) Datum { return e.Val }

func (e ConstExpr) String() string {
	if e.Val.Null {
		return "NULL"
	}
	return fmt.Sprintf("%d", e.Val.Int)
}

// Const returns a non-null integer literal expression.
func Const(v int64) Expr { return ConstExpr{Val: I(v)} }

// Null is the SQL NULL literal expression.
var Null Expr = ConstExpr{Val: NullDatum}

// BinOp identifies a built-in binary operator.
type BinOp int

// Built-in binary operators. Comparisons yield 1/0, or NULL if either
// operand is NULL (SQL three-valued logic, where unknown filters as false).
const (
	OpEq BinOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAdd
	OpSub
	OpAnd
	OpOr
)

var binOpNames = map[BinOp]string{
	OpEq: "=", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAdd: "+", OpSub: "-", OpAnd: "AND", OpOr: "OR",
}

// BinExpr applies a built-in binary operator.
type BinExpr struct {
	Op          BinOp
	Left, Right Expr
}

// Eval implements Expr with SQL NULL propagation: any NULL operand makes a
// comparison or arithmetic result NULL, except AND/OR which follow
// three-valued logic far enough for the dialect's needs.
func (e BinExpr) Eval(row Row) Datum {
	l := e.Left.Eval(row)
	r := e.Right.Eval(row)
	switch e.Op {
	case OpAnd:
		if !l.Null && l.Int == 0 || !r.Null && r.Int == 0 {
			return I(0)
		}
		if l.Null || r.Null {
			return NullDatum
		}
		return I(1)
	case OpOr:
		if !l.Null && l.Int != 0 || !r.Null && r.Int != 0 {
			return I(1)
		}
		if l.Null || r.Null {
			return NullDatum
		}
		return I(0)
	}
	if l.Null || r.Null {
		return NullDatum
	}
	b := func(ok bool) Datum {
		if ok {
			return I(1)
		}
		return I(0)
	}
	switch e.Op {
	case OpEq:
		return b(l.Int == r.Int)
	case OpNe:
		return b(l.Int != r.Int)
	case OpLt:
		return b(l.Int < r.Int)
	case OpLe:
		return b(l.Int <= r.Int)
	case OpGt:
		return b(l.Int > r.Int)
	case OpGe:
		return b(l.Int >= r.Int)
	case OpAdd:
		return I(l.Int + r.Int)
	case OpSub:
		return I(l.Int - r.Int)
	}
	// Eval cannot return an error; evalPanic is recovered at the task
	// runner / statement boundary and fails only this query.
	panic(evalPanic{fmt.Errorf("engine: unknown binary operator %d", e.Op)})
}

func (e BinExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", e.Left, binOpNames[e.Op], e.Right)
}

// Bin builds a binary operator expression.
func Bin(op BinOp, l, r Expr) Expr { return BinExpr{Op: op, Left: l, Right: r} }

// LeastExpr is SQL least(...): the minimum of its non-NULL arguments,
// matching the semantics the paper's representative query relies on
// ("least(axb(A,v,B), min(axb(A,w,B)))").
type LeastExpr struct{ Args []Expr }

// Eval implements Expr. NULL arguments are ignored; the result is NULL only
// if every argument is NULL (PostgreSQL least semantics).
func (e LeastExpr) Eval(row Row) Datum {
	out := NullDatum
	for _, a := range e.Args {
		v := a.Eval(row)
		if v.Null {
			continue
		}
		if out.Null || v.Int < out.Int {
			out = v
		}
	}
	return out
}

func (e LeastExpr) String() string { return fnString("least", e.Args) }

// Least builds a least(...) expression.
func Least(args ...Expr) Expr { return LeastExpr{Args: args} }

// CoalesceExpr is SQL coalesce(...): the first non-NULL argument.
type CoalesceExpr struct{ Args []Expr }

// Eval implements Expr.
func (e CoalesceExpr) Eval(row Row) Datum {
	for _, a := range e.Args {
		if v := a.Eval(row); !v.Null {
			return v
		}
	}
	return NullDatum
}

func (e CoalesceExpr) String() string { return fnString("coalesce", e.Args) }

// Coalesce builds a coalesce(...) expression.
func Coalesce(args ...Expr) Expr { return CoalesceExpr{Args: args} }

// IsNullExpr is SQL "expr IS NULL" (negate for IS NOT NULL).
type IsNullExpr struct {
	Arg    Expr
	Negate bool
}

// Eval implements Expr.
func (e IsNullExpr) Eval(row Row) Datum {
	isNull := e.Arg.Eval(row).Null
	if e.Negate {
		isNull = !isNull
	}
	if isNull {
		return I(1)
	}
	return I(0)
}

func (e IsNullExpr) String() string {
	if e.Negate {
		return fmt.Sprintf("(%s IS NOT NULL)", e.Arg)
	}
	return fmt.Sprintf("(%s IS NULL)", e.Arg)
}

// IsNull builds an IS NULL predicate.
func IsNull(arg Expr) Expr { return IsNullExpr{Arg: arg} }

// IsNotNull builds an IS NOT NULL predicate.
func IsNotNull(arg Expr) Expr { return IsNullExpr{Arg: arg, Negate: true} }

// UDFExpr calls a function registered on the cluster, the analogue of the
// paper loading its C axplusb function into HAWQ.
type UDFExpr struct {
	Name string
	Fn   UDF
	Args []Expr
}

// Eval implements Expr.
func (e UDFExpr) Eval(row Row) Datum {
	args := make([]Datum, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.Eval(row)
	}
	return e.Fn(args)
}

func (e UDFExpr) String() string { return fnString(e.Name, e.Args) }

// CallUDF builds a call to the named registered function. It returns an
// error if the function is not registered. The returned expression captures
// the function value at build time, so re-registering a UDF never affects
// queries already planned (or executing) in other sessions.
func (c *Cluster) CallUDF(name string, args ...Expr) (Expr, error) {
	fn, ok := c.UDF(name)
	if !ok {
		return nil, fmt.Errorf("engine: function %q is not registered", name)
	}
	return UDFExpr{Name: name, Fn: fn, Args: args}, nil
}

func fnString(name string, args []Expr) string {
	s := name + "("
	for i, a := range args {
		if i > 0 {
			s += ", "
		}
		s += a.String()
	}
	return s + ")"
}

// truthy reports whether a predicate result keeps the row (SQL WHERE:
// NULL and false both filter out).
func truthy(d Datum) bool { return !d.Null && d.Int != 0 }
