package engine

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// OpMetrics is the measured execution profile of one operator of an
// executed plan: the per-operator "actual" numbers an EXPLAIN ANALYZE
// renders next to the planned tree. Every execution of a plan produces one
// OpMetrics node per operator, mirroring the plan tree shape.
//
// Elapsed is inclusive wall time (the operator and everything below it),
// matching the convention of PostgreSQL's "actual time". SegRows and
// SegTimes expose the per-segment distribution of the operator's output
// and compute time — the skew signal an MPP operator profile is read for.
type OpMetrics struct {
	Op        string          // operator name: Scan, Filter, HashJoin, ...
	Detail    string          // operator argument: table name, keys, ...
	Rows      int64           // total output rows
	Bytes     int64           // modelled output bytes (rows × width × DatumSize)
	Shuffle   int64           // bytes redistributed between segments by this operator
	Elapsed   time.Duration   // inclusive wall time of this subtree
	SegRows   []int64         // output rows per segment
	SegTimes  []time.Duration // compute time per segment of the operator's parallel phase (nil if none)
	Retries   int64           // segment-task retries performed by this operator
	Faults    int64           // injected segment faults observed by this operator
	Cancelled int64           // segment tasks abandoned by cancellation in this operator

	// Memory-bounded execution: this operator's disk-spill activity.
	Spilled     int64 // bytes written to spill files
	SpillParts  int64 // partition/run files created
	SpillPasses int64 // partitioning / run-formation passes

	// Bloom-join pruning: probe rows this operator tested against the
	// build-side bloom filter, and how many it dropped before they crossed
	// segments (skipped rows are charged to Stats.ShuffleSavedBytes).
	BloomChecked int64
	BloomSkipped int64

	Children []*OpMetrics
}

// TotalShuffle sums the redistribution traffic of the whole subtree.
func (m *OpMetrics) TotalShuffle() int64 {
	if m == nil {
		return 0
	}
	total := m.Shuffle
	for _, ch := range m.Children {
		total += ch.TotalShuffle()
	}
	return total
}

// TotalRetries sums the segment-task retries of the whole subtree.
func (m *OpMetrics) TotalRetries() int64 {
	if m == nil {
		return 0
	}
	total := m.Retries
	for _, ch := range m.Children {
		total += ch.TotalRetries()
	}
	return total
}

// TotalFaults sums the injected segment faults of the whole subtree.
func (m *OpMetrics) TotalFaults() int64 {
	if m == nil {
		return 0
	}
	total := m.Faults
	for _, ch := range m.Children {
		total += ch.TotalFaults()
	}
	return total
}

// TotalCancelled sums the cancelled segment tasks of the whole subtree.
func (m *OpMetrics) TotalCancelled() int64 {
	if m == nil {
		return 0
	}
	total := m.Cancelled
	for _, ch := range m.Children {
		total += ch.TotalCancelled()
	}
	return total
}

// TotalSpilled sums the spill bytes of the whole subtree.
func (m *OpMetrics) TotalSpilled() int64 {
	if m == nil {
		return 0
	}
	total := m.Spilled
	for _, ch := range m.Children {
		total += ch.TotalSpilled()
	}
	return total
}

// MaxSegRows returns the largest per-segment output row count, the
// numerator of the skew ratio.
func (m *OpMetrics) MaxSegRows() int64 {
	var mx int64
	for _, n := range m.SegRows {
		if n > mx {
			mx = n
		}
	}
	return mx
}

// Skew returns max/mean of the per-segment output row counts (1.0 means
// perfectly balanced; 0 when the operator produced no rows).
func (m *OpMetrics) Skew() float64 {
	if m.Rows == 0 || len(m.SegRows) == 0 {
		return 0
	}
	mean := float64(m.Rows) / float64(len(m.SegRows))
	return float64(m.MaxSegRows()) / mean
}

// Format renders the metrics tree as indented text, one operator per line
// with its actual rows, bytes and wall time, followed by the per-segment
// row and time breakdown.
func (m *OpMetrics) Format() string {
	var b strings.Builder
	m.format(&b, 0)
	return b.String()
}

func (m *OpMetrics) format(b *strings.Builder, depth int) {
	indent := strings.Repeat("  ", depth)
	prefix := ""
	if depth > 0 {
		prefix = "-> "
	}
	detail := ""
	if m.Detail != "" {
		detail = "(" + m.Detail + ")"
	}
	fmt.Fprintf(b, "%s%s%s%s (actual time=%s rows=%d bytes=%d", indent, prefix, m.Op, detail,
		fmtDuration(m.Elapsed), m.Rows, m.Bytes)
	if m.Shuffle > 0 {
		fmt.Fprintf(b, " shuffle=%d", m.Shuffle)
	}
	if m.Retries > 0 || m.Faults > 0 {
		fmt.Fprintf(b, " retries=%d faults=%d", m.Retries, m.Faults)
	}
	if m.Cancelled > 0 {
		fmt.Fprintf(b, " cancelled=%d", m.Cancelled)
	}
	if m.Spilled > 0 {
		fmt.Fprintf(b, " spilled=%d parts=%d passes=%d", m.Spilled, m.SpillParts, m.SpillPasses)
	}
	if m.BloomChecked > 0 {
		fmt.Fprintf(b, " bloom checked=%d skipped=%d", m.BloomChecked, m.BloomSkipped)
	}
	b.WriteString(")\n")
	if len(m.SegRows) > 0 {
		fmt.Fprintf(b, "%s   seg rows=%s", indent, fmtInt64s(m.SegRows))
		if len(m.SegTimes) > 0 {
			fmt.Fprintf(b, " times=%s", fmtDurations(m.SegTimes))
		}
		if m.Rows > 0 {
			fmt.Fprintf(b, " skew=%.2f", m.Skew())
		}
		b.WriteString("\n")
	}
	for _, ch := range m.Children {
		ch.format(b, depth+1)
	}
}

// fmtDuration renders a duration with fixed millisecond precision so
// explain output stays visually aligned.
func fmtDuration(d time.Duration) string {
	return fmt.Sprintf("%.3fms", float64(d.Nanoseconds())/1e6)
}

func fmtInt64s(xs []int64) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprintf("%d", x)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

func fmtDurations(xs []time.Duration) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmtDuration(x)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// TraceRecord is one entry of the cluster's query-trace ring buffer: the
// full execution profile of one statement, the per-query granularity the
// paper's r.log_exec driver records.
type TraceRecord struct {
	Seq     int64         // statement sequence number (monotonic per cluster)
	Kind    string        // "create", "select" or "insert"
	Target  string        // created/inserted table name ("" for selects)
	Plan    string        // planned operator tree, as Plan.String()
	Rows    int64         // rows written (creates/inserts) or returned (selects)
	Bytes   int64         // bytes written (creates/inserts) or returned (selects)
	Shuffle int64         // bytes redistributed between segments
	Start   time.Time     // wall-clock start of execution
	Elapsed time.Duration // total execution wall time
	Root    *OpMetrics    // per-operator profile (nil for plain inserts)
}

// OpTotal is the cumulative execution profile of one operator kind across
// all statements since the last ResetStats — the per-operator accumulator
// behind OpTotals.
type OpTotal struct {
	Calls        int64
	Rows         int64
	Bytes        int64
	Shuffle      int64
	Retries      int64
	Faults       int64
	Cancelled    int64
	Spilled      int64
	SpillParts   int64
	SpillPasses  int64
	BloomChecked int64
	BloomSkipped int64
	Elapsed      time.Duration
}

// defaultTraceCapacity is the trace ring size when Options.TraceCapacity
// is zero.
const defaultTraceCapacity = 256

// Trace returns the contents of the query-trace ring buffer, oldest first.
// The ring holds the most recent TraceCapacity statements; older records
// are overwritten.
func (c *Cluster) Trace() []TraceRecord {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	out := make([]TraceRecord, 0, len(c.trace))
	if c.traceCap <= 0 || len(c.trace) < c.traceCap {
		out = append(out, c.trace...)
	} else {
		// The ring is full: the oldest record sits at the next write slot.
		at := int(c.traceSeq) % c.traceCap
		out = append(out, c.trace[at:]...)
		out = append(out, c.trace[:at]...)
	}
	return out
}

// OpTotals returns the cumulative per-operator accumulators, keyed by
// operator name.
func (c *Cluster) OpTotals() map[string]OpTotal {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	out := make(map[string]OpTotal, len(c.opTotals))
	for k, v := range c.opTotals {
		out[k] = v
	}
	return out
}

// FaultTotals sums the retry/fault/cancellation counters over every
// operator executed since the last ResetStats — the cluster-level
// fault-tolerance gauges.
func (c *Cluster) FaultTotals() (retries, faults, cancelled int64) {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	for _, t := range c.opTotals {
		retries += t.Retries
		faults += t.Faults
		cancelled += t.Cancelled
	}
	return retries, faults, cancelled
}

// SpillTotals sums the disk-spill counters over every operator executed
// since the last ResetStats — the cluster-level memory-bounded-execution
// gauges (also available on Stats, which additionally survives statements
// that error before their metrics tree is recorded).
func (c *Cluster) SpillTotals() (spilledBytes, partitions, passes int64) {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	for _, t := range c.opTotals {
		spilledBytes += t.Spilled
		partitions += t.SpillParts
		passes += t.SpillPasses
	}
	return spilledBytes, partitions, passes
}

// BloomTotals sums the bloom-join pruning counters over every operator
// executed since the last ResetStats: probe rows tested against build-side
// bloom filters and rows pruned before they crossed segments. The shuffle
// bytes the pruned rows would have moved are in Stats.ShuffleSavedBytes.
func (c *Cluster) BloomTotals() (checked, skipped int64) {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	for _, t := range c.opTotals {
		checked += t.BloomChecked
		skipped += t.BloomSkipped
	}
	return checked, skipped
}

// OpNames returns the operator kinds present in OpTotals, sorted.
func (c *Cluster) OpNames() []string {
	totals := c.OpTotals()
	names := make([]string, 0, len(totals))
	for n := range totals {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// addTrace appends one statement record to the ring buffer and folds its
// operator profile into the per-operator accumulators.
func (c *Cluster) addTrace(rec TraceRecord) {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	if c.traceCap > 0 {
		rec.Seq = c.traceSeq
		if len(c.trace) < c.traceCap {
			c.trace = append(c.trace, rec)
		} else {
			c.trace[int(c.traceSeq)%c.traceCap] = rec
		}
		c.traceSeq++
	}
	c.accumulateOps(rec.Root)
}

// accumulateOps folds an operator profile tree into opTotals. Caller holds
// statsMu.
func (c *Cluster) accumulateOps(m *OpMetrics) {
	if m == nil {
		return
	}
	t := c.opTotals[m.Op]
	t.Calls++
	t.Rows += m.Rows
	t.Bytes += m.Bytes
	t.Shuffle += m.Shuffle
	t.Retries += m.Retries
	t.Faults += m.Faults
	t.Cancelled += m.Cancelled
	t.Spilled += m.Spilled
	t.SpillParts += m.SpillParts
	t.SpillPasses += m.SpillPasses
	t.BloomChecked += m.BloomChecked
	t.BloomSkipped += m.BloomSkipped
	t.Elapsed += m.Elapsed
	c.opTotals[m.Op] = t
	for _, ch := range m.Children {
		c.accumulateOps(ch)
	}
}
