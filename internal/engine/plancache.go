package engine

import "sync"

// planCache is the engine's bounded LRU of compiled statement plans, keyed
// on (namespace, normalized statement text). The cache stores opaque values
// (the SQL layer's plan templates) plus the set of physical table names
// each plan reads, so catalog DDL — CREATE, DROP, RENAME — can eagerly
// evict every plan that referenced the changed table. Entries whose
// dependency set is empty (fully parameterised statements, whose scans are
// substituted at execute time) are never evicted by DDL, only by LRU
// pressure or an explicit flush.
//
// Locking: the cache has its own mutex, a leaf like statsMu. Catalog
// mutations call invalidate after releasing c.mu; nothing acquires c.mu
// while holding the cache lock.
type planCache struct {
	mu  sync.Mutex
	cap int
	m   map[string]*planCacheEntry
	// Most-recently-used list: head is hottest, tail is next to evict.
	head, tail *planCacheEntry

	hits          int64
	misses        int64
	invalidations int64
	parses        int64
}

// planCacheEntry is one cached plan with its intrusive LRU links.
type planCacheEntry struct {
	key        string
	val        any
	deps       map[string]struct{} // physical table names the plan reads
	prev, next *planCacheEntry
}

// defaultPlanCacheSize bounds the cache when Options.PlanCacheSize is 0.
const defaultPlanCacheSize = 256

func newPlanCache(capacity int) *planCache {
	if capacity == 0 {
		capacity = defaultPlanCacheSize
	}
	if capacity < 0 {
		capacity = 0 // disabled: Put is a no-op, Get always misses
	}
	return &planCache{cap: capacity, m: make(map[string]*planCacheEntry)}
}

// cacheKey joins the namespace and normalized statement text. Namespaces
// cannot contain NUL, so the join is unambiguous.
func cacheKey(ns, norm string) string { return ns + "\x00" + norm }

// get returns the cached value without touching the hit/miss counters: the
// caller validates the plan against the current catalog first and then
// reports the outcome via noteHit/noteMiss, so a stale plan that fails
// validation is counted as a miss, not a hit.
func (pc *planCache) get(ns, norm string) (any, bool) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	e, ok := pc.m[cacheKey(ns, norm)]
	if !ok {
		return nil, false
	}
	pc.moveToFront(e)
	return e.val, true
}

// put inserts or replaces a cached plan, evicting from the LRU tail past
// capacity.
func (pc *planCache) put(ns, norm string, val any, deps []string) {
	if pc.cap <= 0 {
		return
	}
	key := cacheKey(ns, norm)
	depSet := make(map[string]struct{}, len(deps))
	for _, d := range deps {
		depSet[d] = struct{}{}
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if e, ok := pc.m[key]; ok {
		e.val = val
		e.deps = depSet
		pc.moveToFront(e)
		return
	}
	e := &planCacheEntry{key: key, val: val, deps: depSet}
	pc.m[key] = e
	pc.pushFront(e)
	for len(pc.m) > pc.cap {
		pc.evict(pc.tail)
	}
}

// remove drops one entry — a plan that failed validation against the
// current catalog or statistics — and counts the invalidation, so the
// observability surface shows stats-delta evictions alongside DDL ones.
func (pc *planCache) remove(ns, norm string) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if e, ok := pc.m[cacheKey(ns, norm)]; ok {
		pc.evict(e)
		pc.invalidations++
	}
}

// invalidate evicts every entry depending on any of the named physical
// tables, counting the evictions.
func (pc *planCache) invalidate(names ...string) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if len(pc.m) == 0 {
		return
	}
	for e := pc.head; e != nil; {
		next := e.next
		for _, n := range names {
			if _, dep := e.deps[n]; dep {
				pc.evict(e)
				pc.invalidations++
				break
			}
		}
		e = next
	}
}

// flush drops every entry (UDF re-registration changes plan semantics
// wholesale). Counters are kept.
func (pc *planCache) flush() {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	pc.m = make(map[string]*planCacheEntry)
	pc.head, pc.tail = nil, nil
}

// len reports the number of cached plans.
func (pc *planCache) len() int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return len(pc.m)
}

func (pc *planCache) noteHit()   { pc.mu.Lock(); pc.hits++; pc.mu.Unlock() }
func (pc *planCache) noteMiss()  { pc.mu.Lock(); pc.misses++; pc.mu.Unlock() }
func (pc *planCache) noteParse() { pc.mu.Lock(); pc.parses++; pc.mu.Unlock() }

// counters returns the cumulative counter values.
func (pc *planCache) counters() (parses, hits, misses, invalidations int64) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.parses, pc.hits, pc.misses, pc.invalidations
}

// resetCounters zeroes the counters, keeping the cached entries (clearing
// statistics must not throw warm plans away).
func (pc *planCache) resetCounters() {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	pc.parses, pc.hits, pc.misses, pc.invalidations = 0, 0, 0, 0
}

// --- intrusive LRU list (pc.mu held) ---

func (pc *planCache) pushFront(e *planCacheEntry) {
	e.prev = nil
	e.next = pc.head
	if pc.head != nil {
		pc.head.prev = e
	}
	pc.head = e
	if pc.tail == nil {
		pc.tail = e
	}
}

func (pc *planCache) unlink(e *planCacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		pc.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		pc.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (pc *planCache) moveToFront(e *planCacheEntry) {
	if pc.head == e {
		return
	}
	pc.unlink(e)
	pc.pushFront(e)
}

func (pc *planCache) evict(e *planCacheEntry) {
	pc.unlink(e)
	delete(pc.m, e.key)
}

// --- Cluster-facing API ---

// NoteParse counts one SQL parse. The SQL layer calls it from every
// Session-level entry point that actually lexes and parses statement text,
// so the counter exposes exactly the parse work prepared statements and
// the plan cache avoid.
func (c *Cluster) NoteParse() { c.plans.noteParse() }

// PlanCacheGet looks up a cached plan for (namespace, normalized text). It
// does not count a hit: the caller must validate the plan against the
// current catalog and then call NotePlanCacheHit or NotePlanCacheMiss, so
// hit-rate figures reflect plans that were actually reused.
func (c *Cluster) PlanCacheGet(ns, norm string) (any, bool) { return c.plans.get(ns, norm) }

// PlanCachePut caches a plan under (namespace, normalized text). deps are
// the physical names of the tables the plan reads; DDL against any of them
// evicts the entry.
func (c *Cluster) PlanCachePut(ns, norm string, val any, deps []string) {
	c.plans.put(ns, norm, val, deps)
}

// PlanCacheRemove drops one cached plan (one that failed validation).
func (c *Cluster) PlanCacheRemove(ns, norm string) { c.plans.remove(ns, norm) }

// PlanCacheFlush drops every cached plan, keeping the counters.
func (c *Cluster) PlanCacheFlush() { c.plans.flush() }

// PlanCacheLen reports how many plans are cached.
func (c *Cluster) PlanCacheLen() int { return c.plans.len() }

// NotePlanCacheHit counts one validated cache hit.
func (c *Cluster) NotePlanCacheHit() { c.plans.noteHit() }

// NotePlanCacheMiss counts one cache miss (including validation failures).
func (c *Cluster) NotePlanCacheMiss() { c.plans.noteMiss() }

// PlanCounters returns the cumulative parse and plan-cache counters, the
// cheap accessor round-level instrumentation polls between queries.
func (c *Cluster) PlanCounters() (parses, hits, misses int64) {
	parses, hits, misses, _ = c.plans.counters()
	return parses, hits, misses
}
