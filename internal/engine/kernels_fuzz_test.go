package engine

import (
	"encoding/binary"
	"testing"
)

// Fuzz targets for the data-movement kernels of the radix shuffle and
// bloom-join pruning. Both kernels sit on the hot path of every
// redistribution, so their invariants are stated absolutely:
//
//   - FuzzBloomFilter: a key that was added is NEVER reported absent, on
//     one filter or across an OR-merge of same-sized partial filters — a
//     false negative would silently drop matching join rows.
//   - FuzzRadixPartition: the partition permutation is always a bijection
//     from the kept input rows onto the bucket rows — every kept row
//     appears exactly once, in its chosen bucket, in source order, and the
//     result is bit-identical to the row-at-a-time reference (including
//     zeroed payloads under NULL bits, since buckets are carved from
//     stale pooled memory).
//
// Seed corpora live in testdata/fuzz/Fuzz{BloomFilter,RadixPartition}
// plus the f.Add seeds below; the CI lint job runs each for a 30s smoke.

// fuzzKeys decodes data into int64 keys, 8 bytes each.
func fuzzKeys(data []byte) []int64 {
	keys := make([]int64, 0, len(data)/8)
	for len(data) >= 8 {
		keys = append(keys, int64(binary.LittleEndian.Uint64(data)))
		data = data[8:]
	}
	return keys
}

func FuzzBloomFilter(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	seed := make([]byte, 0, 64*8)
	for i := 0; i < 64; i++ {
		var w [8]byte
		binary.LittleEndian.PutUint64(w[:], uint64(i)*0x9e3779b97f4a7c15)
		seed = append(seed, w[:]...)
	}
	f.Add(seed)

	f.Fuzz(func(t *testing.T, data []byte) {
		keys := fuzzKeys(data)
		if len(keys) > 1<<14 {
			keys = keys[:1<<14]
		}
		// Build the way a join does: per-segment partial filters sized for
		// the total build cardinality, OR-merged into one.
		whole := newBloomFilter(int64(len(keys)))
		mid := len(keys) / 2
		a, b := newBloomFilter(int64(len(keys))), newBloomFilter(int64(len(keys)))
		for _, k := range keys[:mid] {
			a.add(k)
			whole.add(k)
		}
		for _, k := range keys[mid:] {
			b.add(k)
			whole.add(k)
		}
		a.merge(b)
		for _, k := range keys {
			if !whole.mayContain(k) {
				t.Fatalf("false negative: single filter lost key %d", k)
			}
			if !a.mayContain(k) {
				t.Fatalf("false negative: merged partials lost key %d", k)
			}
		}
		// Adding is idempotent: re-adding every key must not change a bit.
		before := append([]uint64(nil), a.words...)
		for _, k := range keys {
			a.add(k)
		}
		for i, w := range a.words {
			if w != before[i] {
				t.Fatalf("re-adding keys changed filter word %d", i)
			}
		}
	})
}

func FuzzRadixPartition(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 2, 0, 1, 7, 0xff, 2, 9})
	seed := []byte{8, 3}
	for i := 0; i < 200; i++ {
		seed = append(seed, byte(i*7), byte(i), byte(i*13), byte(255-i))
	}
	f.Add(seed)

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		nparts := int(data[0]%8) + 1
		ncols := int(data[1]%3) + 1
		data = data[2:]
		// Each row consumes 1 destination byte + ncols value bytes; value
		// byte 0xff means NULL, and destination byte high bit means pruned.
		rowBytes := 1 + ncols
		n := len(data) / rowBytes
		if n > 1<<12 {
			n = 1 << 12
		}
		rows := make([]Row, n)
		dests := make([]int32, n)
		for r := 0; r < n; r++ {
			rec := data[r*rowBytes : (r+1)*rowBytes]
			if rec[0]&0x80 != 0 {
				dests[r] = -1
			} else {
				dests[r] = int32(int(rec[0]) % nparts)
			}
			row := make(Row, ncols)
			for c := 0; c < ncols; c++ {
				if rec[1+c] == 0xff {
					row[c] = NullDatum
				} else {
					row[c] = I(int64(int8(rec[1+c])))
				}
			}
			rows[r] = row
		}
		ch := rowsToChunk(rows, ncols)

		parts, fp := radixPartitionChunk(ch, dests, nparts)
		defer putI64(fp)
		want := referencePartition(ch, dests, nparts)

		// Bijection onto the kept rows: bucket sizes sum to the kept count
		// and every bucket matches the reference content and order exactly.
		kept := 0
		for _, d := range dests {
			if d >= 0 {
				kept++
			}
		}
		total := 0
		for d := 0; d < nparts; d++ {
			total += parts[d].length
			if parts[d].length != len(want[d]) {
				t.Fatalf("part %d has %d rows, want %d", d, parts[d].length, len(want[d]))
			}
			got := chunkToRows(parts[d])
			for r := range want[d] {
				for c := range want[d][r] {
					if got[r][c] != want[d][r][c] {
						t.Fatalf("part %d row %d: got %v, want %v", d, r, got[r], want[d][r])
					}
				}
			}
			// Stale pooled memory must not leak through NULL slots.
			for c := 0; c < ncols; c++ {
				for r := 0; r < parts[d].length; r++ {
					if parts[d].nulls[c].get(r) && parts[d].cols[c][r] != 0 {
						t.Fatalf("part %d col %d row %d: NULL slot payload %d != 0",
							d, c, r, parts[d].cols[c][r])
					}
				}
			}
		}
		if total != kept {
			t.Fatalf("buckets hold %d rows, want %d kept of %d", total, kept, n)
		}
	})
}
