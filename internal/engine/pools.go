package engine

import "sync"

// Pooled per-task scratch buffers. Shuffle destination maps and
// filter/distinct selection vectors are needed once per segment task and
// discarded immediately; recycling them through a sync.Pool keeps the
// steady-state allocation rate of a query round independent of its row
// count. Buffers are returned before the owning kernel publishes its
// output, so no pooled memory ever escapes into a chunk.
//
// The pool stores *[]int32 boxes and hands the box itself to the caller:
// taking and returning the same pointer is what keeps the round-trip
// allocation-free (a by-value Put would box a fresh *[]int32 on every
// call). Callers that append must write the grown slice back through the
// pointer before putI32, so the enlarged capacity is what gets recycled.

// i32Scratch is a pooled []int32 used for row-index and destination
// scratch vectors.
var i32Scratch = sync.Pool{
	New: func() any {
		s := make([]int32, 0, 1024)
		return &s
	},
}

// getI32 returns a pooled scratch box whose slice is zero-length with
// capacity >= n. Pass the same pointer back to putI32 when done.
func getI32(n int) *[]int32 {
	p := i32Scratch.Get().(*[]int32)
	if cap(*p) < n {
		*p = make([]int32, 0, n)
	}
	*p = (*p)[:0]
	return p
}

// putI32 recycles a scratch box obtained from getI32.
func putI32(p *[]int32) {
	i32Scratch.Put(p)
}

// i64Scratch is a pooled []int64 used as the flat column backing of the
// radix-partitioned shuffle's per-destination buckets. Unlike getI32, the
// slice is handed out at full length with stale contents: the radix
// scatter writes every slot exactly once (NULL slots are explicitly
// zeroed), so clearing here would be a second pass over the hot data for
// nothing.
var i64Scratch = sync.Pool{
	New: func() any {
		s := make([]int64, 0, 4096)
		return &s
	},
}

// getI64 returns a pooled scratch box whose slice has length n and
// UNDEFINED contents — the caller must store to every slot before anything
// reads them. Pass the same pointer back to putI64 when done; buckets
// backed by the slice must not be referenced after that.
func getI64(n int) *[]int64 {
	p := i64Scratch.Get().(*[]int64)
	if cap(*p) < n {
		*p = make([]int64, n)
	}
	*p = (*p)[:n]
	return p
}

// putI64 recycles a scratch box obtained from getI64.
func putI64(p *[]int64) {
	i64Scratch.Put(p)
}
