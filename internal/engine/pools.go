package engine

import "sync"

// Pooled per-task scratch buffers. Shuffle destination maps and
// filter/distinct selection vectors are needed once per segment task and
// discarded immediately; recycling them through a sync.Pool keeps the
// steady-state allocation rate of a query round independent of its row
// count. Buffers are returned before the owning kernel publishes its
// output, so no pooled memory ever escapes into a chunk.

// i32Scratch is a pooled []int32 used for row-index and destination
// scratch vectors.
var i32Scratch = sync.Pool{
	New: func() any {
		s := make([]int32, 0, 1024)
		return &s
	},
}

// getI32 returns a zero-length scratch slice with capacity >= n.
func getI32(n int) []int32 {
	p := i32Scratch.Get().(*[]int32)
	s := *p
	if cap(s) < n {
		s = make([]int32, 0, n)
	}
	return s[:0]
}

// putI32 recycles a scratch slice.
func putI32(s []int32) {
	i32Scratch.Put(&s)
}
