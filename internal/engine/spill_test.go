package engine

import (
	"bytes"
	"os"
	"strings"
	"testing"
	"time"

	"dbcc/internal/xrand"
)

// Differential tests for memory-bounded execution: every spilling kernel
// must be bit-identical to its in-memory twin. Each test runs the same
// query on two clusters over identical data — one unbounded, one with a
// budget tiny enough to force the spilling paths — and asserts exact row
// equality plus actual spill activity on the budgeted side.

// spillBudget is tight enough that every per-segment kernel working set
// in these tests exceeds its share (budget/segments = 1 KiB).
const spillBudget = 4 << 10

// joinableRows generates rows whose key column is nearly uniform over a
// small range: enough duplicates to exercise hash chains without the
// quadratic blowup a hot-key-skewed self join would produce.
func joinableRows(rng *xrand.Rand, n int) []Row {
	rows := make([]Row, n)
	for i := range rows {
		k := NullDatum
		if rng.Uint64n(20) != 0 {
			k = I(int64(rng.Uint64n(512)))
		}
		rows[i] = Row{k, I(int64(i))}
	}
	return rows
}

// spillPair creates an unbounded and a tightly budgeted cluster over the
// same table.
func spillPair(t *testing.T, schema Schema, rows []Row) (mem, spill *Cluster) {
	t.Helper()
	mem = NewCluster(Options{Segments: 4})
	spill = NewCluster(Options{Segments: 4, MemoryBudget: spillBudget})
	t.Cleanup(func() { spill.Close() })
	mustCreate(t, mem, "t", schema, 0, rows)
	mustCreate(t, spill, "t", schema, 0, rows)
	return mem, spill
}

// sameRows asserts two result sets are identical, including order.
func sameRows(t *testing.T, got, want []Row) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d rows, want %d", len(got), len(want))
	}
	for r := range want {
		for c := range want[r] {
			if got[r][c] != want[r][c] {
				t.Fatalf("row %d: got %v, want %v", r, got[r], want[r])
			}
		}
	}
}

// runBoth executes the plan on both clusters and asserts identical
// results and spill activity on the budgeted cluster.
func runBoth(t *testing.T, mem, spill *Cluster, p Plan) {
	t.Helper()
	_, want, err := mem.Query(p)
	if err != nil {
		t.Fatalf("in-memory query: %v", err)
	}
	_, got, root, err := spill.QueryAnalyze(p)
	if err != nil {
		t.Fatalf("budgeted query: %v", err)
	}
	sameRows(t, got, want)
	if root.TotalSpilled() == 0 {
		t.Fatalf("budgeted query did not spill:\n%s", root.Format())
	}
}

func TestSpillJoinMatchesInMemory(t *testing.T) {
	rng := xrand.New(101)
	rows := joinableRows(rng, 2000)
	mem, spill := spillPair(t, Schema{"k", "x"}, rows)
	for _, kind := range []JoinKind{InnerJoin, LeftOuterJoin} {
		p := JoinPlan{Left: Scan("t"), Right: Scan("t"), LeftKey: 0, RightKey: 0, Kind: kind}
		runBoth(t, mem, spill, p)
	}
	if b, _, _ := spill.SpillTotals(); b == 0 {
		t.Fatal("SpillTotals reports no spilled bytes")
	}
	if s := spill.Stats(); s.SpilledBytes == 0 || s.PeakWorkBytes == 0 {
		t.Fatalf("Stats missing spill activity: %+v", s)
	}
}

func TestSpillGroupByMatchesInMemory(t *testing.T) {
	rng := xrand.New(103)
	rows := make([]Row, 3000)
	for i := range rows {
		rows[i] = Row{I(int64(rng.Uint64n(700))), I(int64(rng.Uint64n(1 << 20)))}
	}
	mem, spill := spillPair(t, Schema{"k", "x"}, rows)
	p := GroupBy(Scan("t"), []int{0},
		Agg{Op: AggMin, Arg: Col(1), Name: "mn"},
		Agg{Op: AggMax, Arg: Col(1), Name: "mx"},
		Agg{Op: AggCount, Name: "n"})
	runBoth(t, mem, spill, p)
}

func TestSpillDistinctMatchesInMemory(t *testing.T) {
	rng := xrand.New(107)
	rows := make([]Row, 3000)
	for i := range rows {
		rows[i] = Row{I(int64(rng.Uint64n(40))), I(int64(rng.Uint64n(50)))}
	}
	mem, spill := spillPair(t, Schema{"a", "b"}, rows)
	runBoth(t, mem, spill, Distinct(Scan("t")))
}

// TestSpillSortMatchesInMemory drives the external merge sort with heavy
// key ties: the payload column records input order, so any stability
// violation in run formation or merge shows up as a row mismatch.
func TestSpillSortMatchesInMemory(t *testing.T) {
	rng := xrand.New(109)
	rows := make([]Row, 4000)
	for i := range rows {
		k := NullDatum
		if rng.Uint64n(15) != 0 {
			k = I(int64(rng.Uint64n(8)))
		}
		rows[i] = Row{k, I(int64(i))}
	}
	mem, spill := spillPair(t, Schema{"k", "pos"}, rows)
	for _, desc := range []bool{false, true} {
		p := Sort(Scan("t"), []SortKey{{Col: 0, Desc: desc}}, -1)
		runBoth(t, mem, spill, p)
	}
}

// TestSpillExplainAnalyze asserts the spill counters surface in the
// rendered operator profile.
func TestSpillExplainAnalyze(t *testing.T) {
	rng := xrand.New(113)
	_, spill := spillPair(t, Schema{"k", "x"}, joinableRows(rng, 2000))
	_, _, root, err := spill.QueryAnalyze(
		JoinPlan{Left: Scan("t"), Right: Scan("t"), LeftKey: 0, RightKey: 0, Kind: InnerJoin})
	if err != nil {
		t.Fatal(err)
	}
	out := root.Format()
	if !strings.Contains(out, "spilled=") || !strings.Contains(out, "parts=") {
		t.Fatalf("EXPLAIN ANALYZE output missing spill counters:\n%s", out)
	}
}

func TestResetStatsClearsSpillTotals(t *testing.T) {
	rng := xrand.New(127)
	_, spill := spillPair(t, Schema{"k", "x"}, joinableRows(rng, 2000))
	if _, _, err := spill.Query(Distinct(Scan("t"))); err != nil {
		t.Fatal(err)
	}
	if s := spill.Stats(); s.SpilledBytes == 0 {
		t.Fatal("setup query did not spill")
	}
	spill.ResetStats()
	s := spill.Stats()
	if s.SpilledBytes != 0 || s.SpillPartitions != 0 || s.SpillPasses != 0 || s.PeakWorkBytes != 0 {
		t.Fatalf("ResetStats left spill totals: %+v", s)
	}
	if b, p, ps := spill.SpillTotals(); b != 0 || p != 0 || ps != 0 {
		t.Fatalf("ResetStats left per-operator spill totals: %d %d %d", b, p, ps)
	}
}

// TestSpillCleanupAfterStatement asserts no partition files outlive their
// statement: after a spilling query completes, the spill root is empty.
func TestSpillCleanupAfterStatement(t *testing.T) {
	rng := xrand.New(131)
	_, spill := spillPair(t, Schema{"k", "x"}, joinableRows(rng, 2000))
	if _, _, err := spill.Query(Distinct(Scan("t"))); err != nil {
		t.Fatal(err)
	}
	assertSpillRootEmpty(t, spill)
}

// TestSpillCleanupAfterError injects a certain spill-write failure with
// no retry budget, so the statement errors mid-spill, and asserts its
// partition files are removed anyway.
func TestSpillCleanupAfterError(t *testing.T) {
	rng := xrand.New(137)
	inj := NewFaultInjector(FaultConfig{Seed: 7, SpillFailureRate: 1})
	c := NewCluster(Options{Segments: 4, MemoryBudget: spillBudget, FaultInjector: inj})
	t.Cleanup(func() { c.Close() })
	mustCreate(t, c, "t", Schema{"k", "x"}, 0, joinableRows(rng, 2000))
	if _, _, err := c.Query(Distinct(Scan("t"))); err == nil {
		t.Fatal("query with certain spill failures succeeded")
	}
	assertSpillRootEmpty(t, c)
}

// TestSpillFaultRetry composes spilling with the fault injector at a rate
// retries can absorb: results stay identical to the unbounded cluster and
// the injected spill faults are visible in the totals.
func TestSpillFaultRetry(t *testing.T) {
	rng := xrand.New(139)
	rows := joinableRows(rng, 2000)
	mem := NewCluster(Options{Segments: 4})
	mustCreate(t, mem, "t", Schema{"k", "x"}, 0, rows)
	// Under this pathological budget a task attempt performs on the order
	// of a thousand spill writes, so the per-write rate must stay low
	// enough that the per-attempt failure probability is well inside what
	// the retry policy absorbs.
	inj := NewFaultInjector(FaultConfig{Seed: 11, SpillFailureRate: 0.0002})
	spill := NewCluster(Options{
		Segments: 4, MemoryBudget: spillBudget,
		FaultInjector: inj, RetryBackoff: time.Microsecond,
		MaxTaskRetries: 12, RetryBudget: 400,
	})
	t.Cleanup(func() { spill.Close() })
	mustCreate(t, spill, "t", Schema{"k", "x"}, 0, rows)

	p := GroupBy(Scan("t"), []int{0}, Agg{Op: AggCount, Name: "n"})
	_, want, err := mem.Query(p)
	if err != nil {
		t.Fatal(err)
	}
	// Fault decisions are deterministic per (seed, statement); a fixed
	// number of statements yields a fixed, nonzero injection count.
	for i := 0; i < 20; i++ {
		_, got, err := spill.Query(p)
		if err != nil {
			t.Fatalf("statement %d under spill faults: %v", i, err)
		}
		sameRows(t, got, want)
	}
	if inj.Injected() == 0 {
		t.Fatal("no spill faults were injected; lower the threshold or raise the rate")
	}
	if retries, faults, _ := spill.FaultTotals(); retries == 0 || faults == 0 {
		t.Fatalf("spill faults not visible in FaultTotals: retries=%d faults=%d", retries, faults)
	}
	assertSpillRootEmpty(t, spill)
}

// assertSpillRootEmpty scans the cluster's spill root for leftover
// statement directories.
func assertSpillRootEmpty(t *testing.T, c *Cluster) {
	t.Helper()
	root := c.SpillRoot()
	if root == "" {
		t.Fatal("cluster never created a spill root")
	}
	ents, err := os.ReadDir(root)
	if err != nil {
		t.Fatalf("reading spill root: %v", err)
	}
	if len(ents) != 0 {
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name()
		}
		t.Fatalf("spill root not empty after statements finished: %v", names)
	}
}

// TestSpillCodecRoundTrip round-trips random chunks (with and without
// NULL bitmaps, including zero-row and zero-column shapes) through the
// frame codec.
func TestSpillCodecRoundTrip(t *testing.T) {
	rng := xrand.New(149)
	for trial := 0; trial < 60; trial++ {
		ncols := int(rng.Uint64n(5))
		nrows := int(rng.Uint64n(200))
		b := newChunkBuilder(ncols, 0)
		for r := 0; r < nrows; r++ {
			for c := 0; c < ncols; c++ {
				b.appendCol(c, int64(rng.Uint64()), rng.Uint64n(4) == 0)
			}
			b.n++
		}
		in := b.finish()
		buf := encodeChunkFrame(nil, in)
		out, n, err := decodeChunkFrame(buf)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if n != len(buf) {
			t.Fatalf("trial %d: decode consumed %d of %d bytes", trial, n, len(buf))
		}
		if out.length != in.length || len(out.cols) != len(in.cols) {
			t.Fatalf("trial %d: shape mismatch", trial)
		}
		for c := 0; c < ncols; c++ {
			for r := 0; r < nrows; r++ {
				gn, wn := out.nulls[c].get(r), in.nulls[c].get(r)
				if gn != wn || (!gn && out.cols[c][r] != in.cols[c][r]) {
					t.Fatalf("trial %d: col %d row %d differs", trial, c, r)
				}
			}
		}
	}
}

// TestSpillCodecRejectsCorrupt asserts truncated or corrupted frames fail
// cleanly with errSpillCorrupt-class errors rather than panicking.
func TestSpillCodecRejectsCorrupt(t *testing.T) {
	b := newChunkBuilder(2, 0)
	for r := 0; r < 100; r++ {
		b.appendCol(0, int64(r), false)
		b.appendCol(1, int64(r), r%3 == 0)
		b.n++
	}
	good := encodeChunkFrame(nil, b.finish())
	if _, _, err := decodeChunkFrame(good); err != nil {
		t.Fatalf("control decode failed: %v", err)
	}
	for cut := 0; cut < len(good); cut += 7 {
		if _, _, err := decodeChunkFrame(good[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", cut)
		}
	}
	// Oversized column/row counts must be rejected before allocation.
	huge := bytes.Clone(good)
	huge[0], huge[1], huge[2], huge[3] = 0xff, 0xff, 0xff, 0x7f
	if _, _, err := decodeChunkFrame(huge); err == nil {
		t.Fatal("absurd ncols decoded successfully")
	}
	huge = bytes.Clone(good)
	huge[4], huge[5], huge[6], huge[7] = 0xff, 0xff, 0xff, 0x7f
	if _, _, err := decodeChunkFrame(huge); err == nil {
		t.Fatal("absurd nrows decoded successfully")
	}
	// Stray bits past nrows in the last bitmap word must be rejected.
	stray := bytes.Clone(good)
	// Column 1 header: 8 byte chunk header + col0 (1 flag + 100 values).
	col1 := 8 + 1 + 800
	if stray[col1] != 1 {
		t.Fatalf("expected col 1 to carry a bitmap, flag=%d", stray[col1])
	}
	// Last bitmap word covers rows 64..99: set bit 63 (row 127).
	stray[col1+1+8+7] |= 0x80
	if _, _, err := decodeChunkFrame(stray); err == nil {
		t.Fatal("stray bitmap bits decoded successfully")
	}
}
