package engine

import (
	"strings"
	"testing"
)

// analyzeJoinGroupBy runs the shared join + group-by profiling query:
// edges joined to labels on the source vertex, grouped by label.
func analyzeJoinGroupBy(t *testing.T, c *Cluster) (Schema, []Row, *OpMetrics) {
	t.Helper()
	plan := GroupBy(
		Join(Scan("edges"), Scan("labels"), 0, 0),
		[]int{3},
		Agg{Op: AggCount, Name: "n"},
	)
	schema, rows, root, err := c.QueryAnalyze(plan)
	if err != nil {
		t.Fatal(err)
	}
	return schema, rows, root
}

func loadJoinTables(t *testing.T, c *Cluster) {
	t.Helper()
	mustCreate(t, c, "edges", Schema{"v1", "v2"}, 0,
		pairs([2]int64{1, 2}, [2]int64{2, 3}, [2]int64{3, 4}, [2]int64{4, 1}, [2]int64{5, 6}))
	mustCreate(t, c, "labels", Schema{"v", "l"}, 0,
		pairs([2]int64{1, 10}, [2]int64{2, 10}, [2]int64{3, 10}, [2]int64{4, 10},
			[2]int64{5, 20}, [2]int64{6, 20}))
}

func TestQueryAnalyzeMetrics(t *testing.T) {
	c := newTestCluster(t, 4)
	loadJoinTables(t, c)
	_, rows, root := analyzeJoinGroupBy(t, c)

	if root == nil {
		t.Fatal("QueryAnalyze returned nil metrics")
	}
	if root.Rows != int64(len(rows)) {
		t.Fatalf("root.Rows = %d, result has %d rows", root.Rows, len(rows))
	}
	if root.Elapsed <= 0 {
		t.Fatalf("root.Elapsed = %v, want > 0", root.Elapsed)
	}
	// The profile tree mirrors the plan: GroupBy over HashJoin over two
	// Scans, with per-segment row counts summing to the operator total.
	var walk func(m *OpMetrics)
	ops := map[string]int{}
	walk = func(m *OpMetrics) {
		ops[m.Op]++
		if len(m.SegRows) != c.Segments() {
			t.Fatalf("%s: %d segment row counts, want %d", m.Op, len(m.SegRows), c.Segments())
		}
		var sum int64
		for _, n := range m.SegRows {
			sum += n
		}
		if sum != m.Rows {
			t.Fatalf("%s: segment rows sum to %d, operator total is %d", m.Op, sum, m.Rows)
		}
		if m.Rows > 0 && m.Bytes <= 0 {
			t.Fatalf("%s: %d rows but %d bytes", m.Op, m.Rows, m.Bytes)
		}
		for _, ch := range m.Children {
			walk(ch)
		}
	}
	walk(root)
	if ops["GroupBy"] != 1 || ops["HashJoin"] != 1 || ops["Scan"] != 2 {
		t.Fatalf("operator census %v, want 1 GroupBy, 1 HashJoin, 2 Scans", ops)
	}
}

func TestQueryAnalyzeShuffleAccounting(t *testing.T) {
	c := newTestCluster(t, 4)
	loadJoinTables(t, c)
	before := c.Stats().ShuffleBytes
	_, _, root := analyzeJoinGroupBy(t, c)
	moved := c.Stats().ShuffleBytes - before
	if root.TotalShuffle() != moved {
		t.Fatalf("per-operator shuffle sums to %d, cluster counter moved by %d",
			root.TotalShuffle(), moved)
	}
}

func TestTraceRing(t *testing.T) {
	c := NewCluster(Options{Segments: 2, TraceCapacity: 4})
	mustCreate(t, c, "tt", Schema{"a", "b"}, 0, pairs([2]int64{1, 1}))
	// The insert is one record; six queries overflow the 4-slot ring.
	for i := 0; i < 6; i++ {
		if _, _, err := c.Query(Scan("tt")); err != nil {
			t.Fatal(err)
		}
	}
	recs := c.Trace()
	if len(recs) != 4 {
		t.Fatalf("trace holds %d records, want capacity 4", len(recs))
	}
	for i, r := range recs {
		if i > 0 && r.Seq != recs[i-1].Seq+1 {
			t.Fatalf("trace seqs not consecutive ascending: %d after %d", r.Seq, recs[i-1].Seq)
		}
	}
	// 7 statements total (1 insert + 6 selects), seqs 0..6; the ring keeps
	// the last four.
	if got, want := recs[len(recs)-1].Seq, int64(6); got != want {
		t.Fatalf("newest trace seq = %d, want %d", got, want)
	}
	if recs[0].Seq != 3 {
		t.Fatalf("oldest trace seq = %d, want 3", recs[0].Seq)
	}
}

func TestTraceDisabled(t *testing.T) {
	c := NewCluster(Options{Segments: 2, TraceCapacity: -1})
	mustCreate(t, c, "tt", Schema{"a", "b"}, 0, pairs([2]int64{1, 1}))
	if _, _, err := c.Query(Scan("tt")); err != nil {
		t.Fatal(err)
	}
	if recs := c.Trace(); len(recs) != 0 {
		t.Fatalf("trace disabled but holds %d records", len(recs))
	}
}

func TestTraceRecordKinds(t *testing.T) {
	c := newTestCluster(t, 2)
	mustCreate(t, c, "tt", Schema{"a", "b"}, 0, pairs([2]int64{1, 2}))
	if _, err := c.CreateTableAs("tt2", Scan("tt"), 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Query(Scan("tt2")); err != nil {
		t.Fatal(err)
	}
	recs := c.Trace()
	if len(recs) != 3 {
		t.Fatalf("trace holds %d records, want 3 (insert, create, select)", len(recs))
	}
	if recs[0].Kind != "insert" || recs[0].Target != "tt" {
		t.Fatalf("record 0 = %s %q, want insert tt", recs[0].Kind, recs[0].Target)
	}
	if recs[1].Kind != "create" || recs[1].Target != "tt2" || recs[1].Root == nil {
		t.Fatalf("record 1 = %s %q (root %v), want create tt2 with a profile", recs[1].Kind, recs[1].Target, recs[1].Root)
	}
	if recs[2].Kind != "select" || recs[2].Rows != 1 {
		t.Fatalf("record 2 = %s rows=%d, want select rows=1", recs[2].Kind, recs[2].Rows)
	}
	if !strings.Contains(recs[2].Plan, "Scan(tt2)") {
		t.Fatalf("select plan %q does not mention Scan(tt2)", recs[2].Plan)
	}
}

func TestOpTotals(t *testing.T) {
	c := newTestCluster(t, 4)
	loadJoinTables(t, c)
	analyzeJoinGroupBy(t, c)
	analyzeJoinGroupBy(t, c)
	totals := c.OpTotals()
	if totals["Scan"].Calls != 4 {
		t.Fatalf("Scan totals %+v, want 4 calls (2 per query)", totals["Scan"])
	}
	if totals["HashJoin"].Calls != 2 || totals["HashJoin"].Rows == 0 {
		t.Fatalf("HashJoin totals %+v, want 2 calls with rows", totals["HashJoin"])
	}
	names := c.OpNames()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("OpNames not sorted: %v", names)
		}
	}
}

func TestResetStatsClearsObservability(t *testing.T) {
	c := newTestCluster(t, 4)
	loadJoinTables(t, c)
	analyzeJoinGroupBy(t, c)
	if len(c.Trace()) == 0 || len(c.OpTotals()) == 0 {
		t.Fatal("expected trace and op totals before reset")
	}
	c.ResetStats()
	if recs := c.Trace(); len(recs) != 0 {
		t.Fatalf("ResetStats left %d trace records", len(recs))
	}
	if totals := c.OpTotals(); len(totals) != 0 {
		t.Fatalf("ResetStats left op totals %v", totals)
	}
	// The ring restarts from sequence zero and keeps working.
	if _, _, err := c.Query(Scan("edges")); err != nil {
		t.Fatal(err)
	}
	recs := c.Trace()
	if len(recs) != 1 || recs[0].Seq != 0 {
		t.Fatalf("post-reset trace %v, want one record with seq 0", recs)
	}
}

func TestCountersAccessor(t *testing.T) {
	c := newTestCluster(t, 2)
	mustCreate(t, c, "tt", Schema{"a", "b"}, 0, pairs([2]int64{1, 2}, [2]int64{3, 4}))
	q0, w0, b0 := c.Counters()
	if _, err := c.CreateTableAs("tt2", Scan("tt"), 0); err != nil {
		t.Fatal(err)
	}
	q1, w1, b1 := c.Counters()
	if q1-q0 != 1 {
		t.Fatalf("query delta %d, want 1", q1-q0)
	}
	if w1-w0 != 2 || b1-b0 != 2*2*DatumSize {
		t.Fatalf("write deltas rows=%d bytes=%d, want 2 rows, %d bytes", w1-w0, b1-b0, 2*2*DatumSize)
	}
}
