// Acceptance test for memory-bounded execution, pinning the PR's central
// claim end to end: give each of the paper's five algorithms one tenth of
// the working memory its unbounded run peaked at, and it must still
// complete with the identical labelling, actually spill to disk, keep its
// accounted working memory within the budget, surface the spill activity
// in EXPLAIN ANALYZE, and leave no partition files behind.
//
// The suite lives in package engine_test (like the chaos suite) so it can
// drive the engine through the real ccalg workloads. When SPILL_LOG_DIR
// is set, each run writes a spill-metrics summary there — the CI
// test-spill job uploads them as artifacts. DBCC_MEM_BUDGET overrides the
// derived budget (in bytes) to experiment with other operating points.
package engine_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"dbcc/internal/ccalg"
	"dbcc/internal/datagen"
	"dbcc/internal/engine"
	"dbcc/internal/graph"
)

// spillGraph is the acceptance workload: large enough that per-segment
// joins and folds have working sets worth bounding (so one tenth of the
// unbounded peak is still a workable share per segment), small enough
// that five algorithms finish quickly even while spilling.
func spillGraph() *graph.Graph { return datagen.Bitcoin(2500, 7) }

func writeSpillLog(t *testing.T, alg string, budget int64, s engine.Stats) {
	dir := os.Getenv("SPILL_LOG_DIR")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatalf("SPILL_LOG_DIR: %v", err)
	}
	body := fmt.Sprintf(
		"alg=%s budget=%d peak_work_bytes=%d spilled_bytes=%d spill_partitions=%d spill_passes=%d\n",
		alg, budget, s.PeakWorkBytes, s.SpilledBytes, s.SpillPartitions, s.SpillPasses)
	path := filepath.Join(dir, "spill_"+alg+".log")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatalf("write %s: %v", path, err)
	}
}

// TestSpillTenPercentBudgetAllAlgorithms is the pinned acceptance test:
// budget = 10% of the unbounded run's peak accounted working memory.
func TestSpillTenPercentBudgetAllAlgorithms(t *testing.T) {
	g := spillGraph()
	for _, info := range chaosAlgorithms() {
		t.Run(info.Name, func(t *testing.T) {
			base, bc, err := runAlg(t, info, g, engine.Options{Segments: 4}, ccalg.Options{Seed: 1})
			if err != nil {
				t.Fatalf("unbounded run: %v", err)
			}
			peak := bc.Stats().PeakWorkBytes
			if peak == 0 {
				t.Fatal("unbounded run recorded no peak working memory")
			}
			budget := peak / 10
			if env, err := strconv.ParseInt(os.Getenv("DBCC_MEM_BUDGET"), 10, 64); err == nil && env > 0 {
				budget = env
			}

			res, c, err := runAlg(t, info, g,
				engine.Options{Segments: 4, MemoryBudget: budget}, ccalg.Options{Seed: 1})
			if c != nil {
				defer c.Close()
			}
			if err != nil {
				t.Fatalf("budgeted run (budget=%d): %v", budget, err)
			}

			// (a) The labelling is identical — spilling must be invisible.
			if len(res.Labels) != len(base.Labels) {
				t.Fatalf("budgeted run labelled %d vertices, unbounded %d",
					len(res.Labels), len(base.Labels))
			}
			for v, l := range base.Labels {
				if res.Labels[v] != l {
					t.Fatalf("vertex %d: budgeted label %d, unbounded %d", v, res.Labels[v], l)
				}
			}

			// (b) The run genuinely spilled.
			s := c.Stats()
			if s.SpilledBytes == 0 {
				t.Fatalf("budgeted run (budget=%d, unbounded peak=%d) never spilled", budget, peak)
			}

			// (c) Accounted working memory stayed within the budget.
			if s.PeakWorkBytes > budget {
				t.Fatalf("peak accounted working memory %d exceeds budget %d",
					s.PeakWorkBytes, budget)
			}

			// (d) Spill activity surfaces in the rendered operator profiles.
			var rendered bool
			for _, rec := range c.Trace() {
				if rec.Root != nil && rec.Root.TotalSpilled() > 0 {
					if out := rec.Root.Format(); strings.Contains(out, "spilled=") {
						rendered = true
						break
					}
					t.Fatal("operator profile with spill activity renders no spilled= field")
				}
			}
			if !rendered {
				t.Fatal("no traced statement shows spill activity")
			}

			// (e) No partition files outlive their statements.
			if root := c.SpillRoot(); root != "" {
				ents, err := os.ReadDir(root)
				if err != nil {
					t.Fatalf("reading spill root: %v", err)
				}
				if len(ents) != 0 {
					t.Fatalf("%d statement spill dirs leaked under %s", len(ents), root)
				}
			}

			writeSpillLog(t, info.Name, budget, s)
		})
	}
}
