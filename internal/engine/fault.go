// Fault tolerance: the execution substrate the paper takes for granted.
//
// The paper's algorithm is "always correct" on an MPP cluster because the
// cluster substrate (HAWQ over Hadoop; MapReduce rounds in Rastogi et al.)
// assumes segment tasks fail and get retried: a segment process dies, the
// scheduler reruns its task, and the query either completes with the same
// answer or aborts cleanly. This file reproduces that model in-process:
//
//   - every statement executes under a context.Context (cancellation and
//     Options.QueryTimeout deadlines are honoured between operators and
//     between segment tasks, and in-flight tasks are drained before the
//     statement returns — no goroutine outlives its query);
//   - Options.FaultInjector simulates segment failure and latency spikes,
//     deterministically per seed: whether a given task attempt fails is a
//     pure function of (seed, statement, operator, segment, attempt), so a
//     chaos run is exactly reproducible regardless of goroutine schedule;
//   - failed task attempts are retried with capped exponential backoff up
//     to Options.MaxTaskRetries times per task and Options.RetryBudget
//     times per statement, and every retry/fault/cancellation is counted
//     in the operator's OpMetrics (EXPLAIN ANALYZE prints them);
//   - a task that panics (malformed plan, broken UDF) is converted into an
//     error that fails its query, not the process, and on the first task
//     error the remaining tasks of the fan-out are cancelled with the
//     lowest-segment error winning deterministically.
package engine

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"dbcc/internal/xrand"
)

// ErrInjectedFault marks a segment-task failure produced by the fault
// injector. It is the only error class the engine considers transient and
// therefore retries; real execution errors (bad plans, broken UDFs) fail
// the query immediately.
var ErrInjectedFault = errors.New("engine: injected segment fault")

// FaultConfig parameterises a FaultInjector.
type FaultConfig struct {
	// Seed drives all fault decisions; two runs issuing the same statement
	// sequence under the same seed inject exactly the same faults.
	Seed uint64
	// FailureRate is the probability in [0, 1] that any one segment-task
	// attempt fails before doing any work, modelling a segment process
	// dying between scheduling and completion.
	FailureRate float64
	// LatencyRate is the probability that a task attempt is delayed by
	// Latency before running, modelling a straggling segment.
	LatencyRate float64
	// Latency is the injected delay for latency spikes; 0 means 200µs.
	Latency time.Duration
	// SpillFailureRate is the probability in [0, 1] that any one spill-file
	// write fails — the disk failure surface of memory-bounded execution.
	// Spill faults are retried exactly like segment failures: the whole
	// segment-task attempt reruns and overwrites its partition files.
	SpillFailureRate float64
}

// FaultInjector deterministically injects segment-task failures and
// latency spikes. An injector is safe for concurrent use; determinism is
// per statement sequence, so single-session runs reproduce exactly.
type FaultInjector struct {
	cfg      FaultConfig
	injected atomic.Int64 // total failures injected
	delayed  atomic.Int64 // total latency spikes injected
}

// NewFaultInjector builds an injector; nil-safe to pass into Options.
func NewFaultInjector(cfg FaultConfig) *FaultInjector {
	if cfg.Latency <= 0 {
		cfg.Latency = 200 * time.Microsecond
	}
	return &FaultInjector{cfg: cfg}
}

// Injected returns the total number of failures this injector produced.
func (f *FaultInjector) Injected() int64 { return f.injected.Load() }

// Delayed returns the total number of latency spikes this injector
// produced.
func (f *FaultInjector) Delayed() int64 { return f.delayed.Load() }

// decide returns the fault decision for one task attempt. The decision is
// a pure function of the injector seed and the task identity, so it does
// not depend on goroutine scheduling.
func (f *FaultInjector) decide(stmt uint64, op int64, seg, attempt int) (fail bool, delay time.Duration) {
	h := xrand.Mix64(f.cfg.Seed ^ xrand.Mix64(stmt))
	h = xrand.Mix64(h ^ uint64(op)<<20 ^ uint64(seg)<<8 ^ uint64(attempt))
	// Two independent draws from one hash: low word for failure, high for
	// latency.
	const scale = 1 << 32
	if float64(h&(scale-1))/scale < f.cfg.FailureRate {
		f.injected.Add(1)
		fail = true
	}
	if float64(h>>32)/scale < f.cfg.LatencyRate {
		f.delayed.Add(1)
		delay = f.cfg.Latency
	}
	return fail, delay
}

// decideSpillIO returns the fault decision for the nth spill write of one
// task attempt. Like decide, it is a pure function of the injector seed
// and the write's identity — spill kernels issue their writes in a
// deterministic order within one attempt, so chaos runs reproduce.
func (f *FaultInjector) decideSpillIO(stmt uint64, op int64, seg, attempt int, nth int64) bool {
	h := xrand.Mix64(f.cfg.Seed ^ 0x5f111ed ^ xrand.Mix64(stmt))
	h = xrand.Mix64(h ^ uint64(op)<<28 ^ uint64(seg)<<20 ^ uint64(attempt)<<14 ^ uint64(nth))
	const scale = 1 << 32
	if float64(h&(scale-1))/scale < f.cfg.SpillFailureRate {
		f.injected.Add(1)
		return true
	}
	return false
}

// evalPanic carries an expression-evaluation failure through interfaces
// that cannot return errors (Expr.Eval); the task runner's and statement
// boundary's recover guards convert it back into its plain error.
type evalPanic struct{ err error }

// recoverToError converts a panic escaping a statement into a returned
// error, so a malformed plan or broken UDF fails one query instead of the
// whole process. Segment-task panics are already converted by the task
// runner; this boundary guard catches coordinator-side evaluation.
func recoverToError(label string, err *error) {
	r := recover()
	if r == nil {
		return
	}
	if ep, ok := r.(evalPanic); ok {
		*err = ep.err
		return
	}
	*err = fmt.Errorf("engine: panic during %s: %v\n%s", label, r, debug.Stack())
}

// execEnv is the per-statement execution environment: the context the
// statement runs under, its identity for deterministic fault injection,
// its remaining retry budget, and the fault counters the operator being
// executed accumulates into (finishOp drains them into that operator's
// OpMetrics; operators execute depth-first and sequentially, so the
// counters always belong to exactly one operator).
type execEnv struct {
	c    *Cluster
	ctx  context.Context
	stmt uint64 // statement sequence number (fault-injection identity)

	opSeq  atomic.Int64 // parallel-phase counter within the statement
	budget atomic.Int64 // remaining statement-wide retry budget

	opRetries   atomic.Int64
	opFaults    atomic.Int64
	opCancelled atomic.Int64

	// Memory-bounded execution state: the statement's working-memory
	// ledger, its spill directory (created on first spill, removed by
	// close), the per-operator spill counters finishOp drains, and each
	// segment's current attempt number (spill writes key their fault
	// decisions on it; only the goroutine running segment seg's task
	// touches curAttempt[seg] at any moment).
	acct        memAcct
	spillOnce   sync.Once
	spillDir    string
	spillDirErr error
	curAttempt  []atomic.Int32

	opSpilled     atomic.Int64
	opSpillParts  atomic.Int64
	opSpillPasses atomic.Int64

	// Bloom-join pruning counters (drained like the fault counters): probe
	// rows tested against a build-side bloom filter and rows it dropped
	// before they crossed segments.
	opBloomChecked atomic.Int64
	opBloomSkipped atomic.Int64
}

// newExecEnv opens the execution environment for one statement.
func (c *Cluster) newExecEnv(ctx context.Context) *execEnv {
	e := &execEnv{c: c, ctx: ctx, stmt: c.stmtSeq.Add(1)}
	e.budget.Store(int64(c.retryBudget))
	e.curAttempt = make([]atomic.Int32, c.segments)
	return e
}

// close releases the statement's execution resources: its spill directory
// (removing partition files whether the statement succeeded or errored
// mid-spill) and the fold of its memory ledger into the cluster stats.
func (e *execEnv) close() {
	if e.spillDir != "" {
		os.RemoveAll(e.spillDir)
	}
	spilled := e.acct.spilledBytes.Load()
	peak := e.acct.peak.Load()
	if spilled == 0 && peak == 0 {
		return
	}
	c := e.c
	c.statsMu.Lock()
	c.stats.SpilledBytes += spilled
	c.stats.SpillPartitions += e.acct.spillParts.Load()
	c.stats.SpillPasses += e.acct.spillPasses.Load()
	if peak > c.stats.PeakWorkBytes {
		c.stats.PeakWorkBytes = peak
	}
	c.statsMu.Unlock()
}

// statementContext applies the cluster's per-query deadline to a
// statement's context. The returned cancel must be called when the
// statement finishes.
func (c *Cluster) statementContext(ctx context.Context) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	if c.queryTimeout > 0 {
		return context.WithTimeout(ctx, c.queryTimeout)
	}
	return context.WithCancel(ctx)
}

// cancelErr wraps a context error in the engine's cancellation message.
func cancelErr(err error) error {
	return fmt.Errorf("engine: query cancelled: %w", err)
}

// checkCancelled returns the statement's cancellation error, if any.
func (e *execEnv) checkCancelled() error {
	if err := e.ctx.Err(); err != nil {
		return cancelErr(err)
	}
	return nil
}

// sleepCtx sleeps for d or until the context is cancelled.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// backoffDelay is the capped exponential retry backoff: base doubling per
// attempt, capped at 16× base.
func backoffDelay(base time.Duration, attempt int) time.Duration {
	if attempt > 4 {
		attempt = 4
	}
	return base << attempt
}

// parallel runs fn(seg) for every segment and waits, with fault
// injection, per-task retry, panic recovery and cancellation. Like the
// pre-fault-tolerance runner, at most Workers segment tasks run at any
// moment across the whole cluster. On the first task error the remaining
// not-yet-started tasks are cancelled; in-flight tasks are always drained
// before parallel returns, so no task ever outlives its statement or
// writes into shared state after the query has failed. When several tasks
// fail, the lowest-numbered segment's non-cancellation error wins,
// deterministically.
func (e *execEnv) parallel(fn func(seg int) error) error {
	n := e.c.segments
	ctx, cancel := context.WithCancel(e.ctx)
	defer cancel()
	opID := e.opSeq.Add(1)
	errs := make([]error, n)

	runTask := func(seg int) {
		if ctx.Err() != nil {
			e.opCancelled.Add(1)
			errs[seg] = ctx.Err()
			return
		}
		select {
		case e.c.sem <- struct{}{}:
		case <-ctx.Done():
			e.opCancelled.Add(1)
			errs[seg] = ctx.Err()
			return
		}
		err := e.runTaskAttempts(ctx, opID, seg, fn)
		<-e.c.sem
		if err != nil {
			errs[seg] = err
			cancel() // first failure cancels the remaining fan-out
		}
	}

	spawn := e.c.workers
	if spawn > n {
		spawn = n
	}
	if spawn <= 1 {
		for s := 0; s < n; s++ {
			runTask(s)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(spawn)
		for w := 0; w < spawn; w++ {
			go func() {
				defer wg.Done()
				for {
					s := int(next.Add(1)) - 1
					if s >= n {
						return
					}
					runTask(s)
				}
			}()
		}
		wg.Wait()
	}

	// Deterministic error selection: the lowest segment whose failure is a
	// real execution error, not the echo of the fan-out cancellation.
	var cancelled error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if cancelled == nil {
				cancelled = err
			}
			continue
		}
		return err
	}
	if err := e.ctx.Err(); err != nil {
		return cancelErr(err)
	}
	if cancelled != nil {
		return cancelErr(cancelled)
	}
	return nil
}

// parallelTimed is parallel with a per-segment wall-time measurement of
// fn (attempts, injected latency and backoff included — the time a real
// scheduler would bill the task).
func (e *execEnv) parallelTimed(fn func(seg int) error) ([]time.Duration, error) {
	times := make([]time.Duration, e.c.segments)
	err := e.parallel(func(seg int) error {
		t0 := time.Now()
		ferr := fn(seg)
		times[seg] = time.Since(t0)
		return ferr
	})
	return times, err
}

// runTaskAttempts executes one segment task with the retry loop: injected
// faults are retried with capped exponential backoff while per-task
// retries and the statement retry budget last; every other error fails
// the task immediately.
func (e *execEnv) runTaskAttempts(ctx context.Context, opID int64, seg int, fn func(seg int) error) error {
	for attempt := 0; ; attempt++ {
		err := e.attemptTask(ctx, opID, seg, attempt, fn)
		if err == nil || !errors.Is(err, ErrInjectedFault) {
			return err
		}
		if attempt >= e.c.maxTaskRetries {
			return fmt.Errorf("engine: segment %d task failed after %d attempts: %w", seg, attempt+1, err)
		}
		if e.budget.Add(-1) < 0 {
			return fmt.Errorf("engine: statement retry budget exhausted: %w", err)
		}
		e.opRetries.Add(1)
		if serr := sleepCtx(ctx, backoffDelay(e.c.retryBackoff, attempt)); serr != nil {
			return serr
		}
	}
}

// attemptTask executes one attempt of one segment task: injected latency,
// injected failure (before any work, so a retried task is idempotent —
// completion is an atomic publish into the task's own output slot, the
// in-process analogue of a segment's task output being committed only on
// success), then fn, with panics converted to errors.
func (e *execEnv) attemptTask(ctx context.Context, opID int64, seg, attempt int, fn func(seg int) error) (err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if ep, ok := r.(evalPanic); ok {
			err = ep.err
			return
		}
		err = fmt.Errorf("engine: segment %d task panicked: %v\n%s", seg, r, debug.Stack())
	}()
	e.curAttempt[seg].Store(int32(attempt))
	if fi := e.c.injector; fi != nil {
		fail, delay := fi.decide(e.stmt, opID, seg, attempt)
		if delay > 0 {
			if serr := sleepCtx(ctx, delay); serr != nil {
				return serr
			}
		}
		if fail {
			e.opFaults.Add(1)
			return fmt.Errorf("segment %d (stmt %d op %d attempt %d): %w",
				seg, e.stmt, opID, attempt, ErrInjectedFault)
		}
	}
	return fn(seg)
}
