// Chaos suite for the fault-tolerance layer: the five connected-components
// algorithms must produce fault-free labellings while segment tasks fail
// and straggle under deterministic injection, cancellation must abort a
// running query promptly without leaking goroutines, and the retry /
// fault / cancellation counters must surface in EXPLAIN ANALYZE.
//
// The suite lives in package engine_test so it can drive the engine
// through the real algorithm workloads (package ccalg imports engine, so
// an internal test would cycle). When CHAOS_LOG_DIR is set, every chaos
// run writes its per-round log there — the CI chaos job uploads them as
// artifacts.
package engine_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"dbcc/internal/ccalg"
	"dbcc/internal/datagen"
	"dbcc/internal/engine"
	"dbcc/internal/graph"
	"dbcc/internal/sql"
)

// chaosGraph is the shared workload: big enough that every algorithm
// issues a few dozen statements across several rounds, small enough that
// five algorithms times three runs stay fast.
func chaosGraph() *graph.Graph { return datagen.Bitcoin(150, 7) }

// chaosAlgorithms returns all five algorithms of the paper.
func chaosAlgorithms() []ccalg.Info {
	var out []ccalg.Info
	for _, name := range []string{"rc", "hm", "tp", "cr", "bfs"} {
		info, ok := ccalg.ByName(name)
		if !ok {
			panic("unknown algorithm " + name)
		}
		out = append(out, info)
	}
	return out
}

// runAlg loads the graph on a fresh cluster built from opts and runs one
// algorithm, returning its result and the cluster for counter inspection.
func runAlg(t *testing.T, info ccalg.Info, g *graph.Graph, opts engine.Options, algOpts ccalg.Options) (*ccalg.Result, *engine.Cluster, error) {
	t.Helper()
	c := engine.NewCluster(opts)
	ccalg.RegisterUDFs(c)
	if err := graph.Load(c, "input", g); err != nil {
		t.Fatalf("load: %v", err)
	}
	res, err := info.Run(c, "input", algOpts)
	return res, c, err
}

// writeChaosLog dumps a chaos run's round log into CHAOS_LOG_DIR (when
// set) for the CI artifact upload.
func writeChaosLog(t *testing.T, alg string, log []ccalg.RoundStats, retries, faults int64) {
	dir := os.Getenv("CHAOS_LOG_DIR")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatalf("CHAOS_LOG_DIR: %v", err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# %s: %d rounds, %d retries, %d injected faults\n", alg, len(log), retries, faults)
	for _, rs := range log {
		fmt.Fprintf(&b, "round=%d live_vertices=%d live_edges=%d queries=%d rows=%d bytes=%d\n",
			rs.Round, rs.LiveVertices, rs.LiveEdges, rs.Queries, rs.RowsWritten, rs.BytesWritten)
	}
	path := filepath.Join(dir, "chaos_"+alg+".log")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatalf("write %s: %v", path, err)
	}
}

// TestChaosLabelsMatchFaultFree runs every algorithm under 5% injected
// segment-task failures plus latency spikes and checks that (a) the
// labelling is exactly the fault-free one — retries must be invisible to
// the result — and (b) the fault schedule is deterministic: a second run
// with the same seed injects exactly the same faults.
func TestChaosLabelsMatchFaultFree(t *testing.T) {
	g := chaosGraph()
	var totalInjected int64
	for _, info := range chaosAlgorithms() {
		base, _, err := runAlg(t, info, g, engine.Options{Segments: 4}, ccalg.Options{Seed: 1})
		if err != nil {
			t.Fatalf("%s fault-free: %v", info.Name, err)
		}
		chaos := func() (*ccalg.Result, *engine.FaultInjector, *engine.Cluster) {
			inj := engine.NewFaultInjector(engine.FaultConfig{
				Seed:        42,
				FailureRate: 0.05,
				LatencyRate: 0.05,
				Latency:     50 * time.Microsecond,
			})
			res, c, err := runAlg(t, info, g,
				engine.Options{Segments: 4, FaultInjector: inj},
				ccalg.Options{Seed: 1})
			if err != nil {
				t.Fatalf("%s under 5%% faults: %v", info.Name, err)
			}
			return res, inj, c
		}
		res1, inj1, c1 := chaos()
		_, inj2, _ := chaos()

		if len(res1.Labels) != len(base.Labels) {
			t.Fatalf("%s: chaos labelled %d vertices, fault-free %d", info.Name, len(res1.Labels), len(base.Labels))
		}
		for v, l := range base.Labels {
			if res1.Labels[v] != l {
				t.Fatalf("%s: vertex %d labelled %d under faults, %d fault-free", info.Name, v, res1.Labels[v], l)
			}
		}
		if inj1.Injected() != inj2.Injected() || inj1.Delayed() != inj2.Delayed() {
			t.Fatalf("%s: fault schedule not deterministic: run1 injected=%d delayed=%d, run2 injected=%d delayed=%d",
				info.Name, inj1.Injected(), inj1.Delayed(), inj2.Injected(), inj2.Delayed())
		}
		retries, faults, _ := c1.FaultTotals()
		if faults != inj1.Injected() {
			t.Fatalf("%s: cluster counted %d faults, injector produced %d", info.Name, faults, inj1.Injected())
		}
		totalInjected += inj1.Injected()
		writeChaosLog(t, info.Name, res1.RoundLog, retries, faults)
	}
	if totalInjected == 0 {
		t.Fatal("5% failure rate injected no faults across all five algorithms; the injector is not wired in")
	}
}

// TestChaosExhaustedRetriesReturnRoundError drives the failure rate to
// 100% so every retry is burned, and checks the typed partial-progress
// error: a *ccalg.RoundError that still unwraps to ErrInjectedFault.
func TestChaosExhaustedRetriesReturnRoundError(t *testing.T) {
	inj := engine.NewFaultInjector(engine.FaultConfig{Seed: 1, FailureRate: 1})
	info, _ := ccalg.ByName("rc")
	_, _, err := runAlg(t, info, chaosGraph(),
		engine.Options{Segments: 4, FaultInjector: inj, RetryBackoff: time.Microsecond},
		ccalg.Options{Seed: 1})
	if err == nil {
		t.Fatal("run succeeded with a 100% failure rate")
	}
	var re *ccalg.RoundError
	if !errors.As(err, &re) {
		t.Fatalf("error is %T (%v), want *ccalg.RoundError", err, err)
	}
	if !errors.Is(err, engine.ErrInjectedFault) {
		t.Fatalf("RoundError does not unwrap to ErrInjectedFault: %v", err)
	}
	if re.Algorithm != "rc" || re.Round < 1 {
		t.Fatalf("RoundError carries algorithm=%q round=%d", re.Algorithm, re.Round)
	}
}

// waitNoExtraGoroutines polls until the goroutine count returns to the
// pre-test baseline (plus slack for runtime helpers), failing if worker
// goroutines are still alive after the deadline — the no-leak bound of
// the cancellation contract.
func waitNoExtraGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("%d goroutines still running (baseline %d):\n%s",
				n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCancelAbortsRunQuickly cancels an in-flight algorithm run and
// requires it to return within 100ms, with a cancellation-typed
// RoundError and no leaked worker goroutines.
func TestCancelAbortsRunQuickly(t *testing.T) {
	baseGoroutines := runtime.NumGoroutine()
	c := engine.NewCluster(engine.Options{Segments: 4})
	ccalg.RegisterUDFs(c)
	// A graph large enough that the run is still going when cancel fires.
	if err := graph.Load(c, "input", datagen.Bitcoin(5000, 7)); err != nil {
		t.Fatalf("load: %v", err)
	}
	info, _ := ccalg.ByName("hm")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := info.Run(c, "input", ccalg.Options{Seed: 1, Context: ctx})
		done <- err
	}()
	// Wait until the run has issued a few statements so the cancel lands
	// mid-flight.
	for i := 0; c.Stats().Queries < 3; i++ {
		if i > 2000 {
			t.Fatal("run never started issuing queries")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	t0 := time.Now()
	select {
	case err := <-done:
		if elapsed := time.Since(t0); elapsed > 100*time.Millisecond {
			t.Fatalf("cancelled run took %v to return, want <100ms", elapsed)
		}
		if err == nil {
			t.Fatal("cancelled run returned no error")
		}
		var re *ccalg.RoundError
		if !errors.As(err, &re) {
			t.Fatalf("cancelled run returned %T (%v), want *ccalg.RoundError", err, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled run's error does not unwrap to context.Canceled: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled run did not return within 5s")
	}
	waitNoExtraGoroutines(t, baseGoroutines)
}

// TestQueryTimeoutAbortsRun checks Options.QueryTimeout: with an
// already-expired per-statement deadline the run must abort immediately
// with a RoundError unwrapping to context.DeadlineExceeded.
func TestQueryTimeoutAbortsRun(t *testing.T) {
	info, _ := ccalg.ByName("rc")
	t0 := time.Now()
	_, _, err := runAlg(t, info, chaosGraph(),
		engine.Options{Segments: 4, QueryTimeout: time.Nanosecond},
		ccalg.Options{Seed: 1})
	if elapsed := time.Since(t0); elapsed > time.Second {
		t.Fatalf("timed-out run took %v to return", elapsed)
	}
	if err == nil {
		t.Fatal("run succeeded under a 1ns query timeout")
	}
	var re *ccalg.RoundError
	if !errors.As(err, &re) {
		t.Fatalf("timed-out run returned %T (%v), want *ccalg.RoundError", err, err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("timed-out run's error does not unwrap to DeadlineExceeded: %v", err)
	}
}

// TestExplainAnalyzeShowsRetryCounters checks that injected faults and
// the retries that absorb them surface in the EXPLAIN ANALYZE profile.
func TestExplainAnalyzeShowsRetryCounters(t *testing.T) {
	inj := engine.NewFaultInjector(engine.FaultConfig{Seed: 3, FailureRate: 0.1})
	c := engine.NewCluster(engine.Options{Segments: 8, FaultInjector: inj, RetryBackoff: time.Microsecond})
	sess := sql.NewSession(c)
	if _, err := sess.Exec("create table t (v1, v2) distributed by (v1);"); err != nil {
		t.Fatalf("create: %v", err)
	}
	var ins strings.Builder
	ins.WriteString("insert into t values ")
	for i := 0; i < 64; i++ {
		if i > 0 {
			ins.WriteString(", ")
		}
		fmt.Fprintf(&ins, "(%d, %d)", i, i*7%13)
	}
	ins.WriteString(";")
	if _, err := sess.Exec(ins.String()); err != nil {
		t.Fatalf("insert: %v", err)
	}
	// The fault schedule is deterministic per statement sequence; a 10%
	// rate over 8 segments and several operators hits within a few
	// statements. Stop at the first profile that shows the counters.
	for i := 0; i < 100; i++ {
		out, err := sess.ExplainAnalyze("select v1, min(v2) from t group by v1")
		if err != nil {
			t.Fatalf("explain analyze: %v", err)
		}
		if strings.Contains(out, "retries=") && strings.Contains(out, "faults=") {
			retries, faults, _ := c.FaultTotals()
			if retries == 0 || faults == 0 {
				t.Fatalf("profile shows counters but cluster totals are retries=%d faults=%d", retries, faults)
			}
			return
		}
	}
	t.Fatalf("no EXPLAIN ANALYZE profile showed retry/fault counters in 100 statements (injector produced %d faults)", inj.Injected())
}

// TestPanicInUDFFailsOnlyThatQuery registers a user-defined function that
// panics, and checks the fan-out contract: the query fails with a
// deterministic error naming the lowest failing segment (first-error-wins
// is not schedule-dependent), the process survives, no goroutines leak,
// and the cluster keeps answering queries. Run under -race this doubles
// as the fan-out error-propagation regression test.
func TestPanicInUDFFailsOnlyThatQuery(t *testing.T) {
	baseGoroutines := runtime.NumGoroutine()
	c := engine.NewCluster(engine.Options{Segments: 4})
	c.RegisterUDF("boom", func(args []engine.Datum) engine.Datum {
		panic("kaboom")
	})
	if _, err := c.CreateTable("t", engine.Schema{"v"}, 0); err != nil {
		t.Fatalf("create: %v", err)
	}
	rows := make([]engine.Row, 64)
	for i := range rows {
		rows[i] = engine.Row{engine.I(int64(i))}
	}
	if err := c.InsertRows("t", rows); err != nil {
		t.Fatalf("insert: %v", err)
	}
	call, err := c.CallUDF("boom", engine.Col(0))
	if err != nil {
		t.Fatalf("call: %v", err)
	}
	scan := engine.Scan("t")
	bad := engine.Project(scan, engine.ProjCol{Expr: call, Name: "b"})
	for i := 0; i < 8; i++ {
		_, _, err := c.Query(bad)
		if err == nil {
			t.Fatal("query with a panicking UDF succeeded")
		}
		// Every segment's task panics; deterministic first-error-wins must
		// always report the lowest one.
		if !strings.Contains(err.Error(), "segment 0 task panicked") {
			t.Fatalf("run %d: error does not name segment 0 deterministically: %v", i, err)
		}
	}
	// The failure is contained: the same cluster still executes queries.
	if _, _, err := c.Query(scan); err != nil {
		t.Fatalf("cluster unusable after UDF panic: %v", err)
	}
	waitNoExtraGoroutines(t, baseGoroutines)
}
