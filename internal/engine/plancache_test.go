package engine

import (
	"fmt"
	"testing"
)

// TestPlanCacheLRUBound fills the cache past its capacity and checks the
// coldest entries were evicted, newest retained.
func TestPlanCacheLRUBound(t *testing.T) {
	c := NewCluster(Options{Segments: 1, PlanCacheSize: 4})
	defer c.Close()
	for i := 0; i < 8; i++ {
		c.PlanCachePut("", fmt.Sprintf("select %d", i), i, nil)
	}
	if got := c.PlanCacheLen(); got != 4 {
		t.Fatalf("cache holds %d entries, capacity 4", got)
	}
	for i := 0; i < 4; i++ {
		if _, ok := c.PlanCacheGet("", fmt.Sprintf("select %d", i)); ok {
			t.Fatalf("cold entry %d survived past capacity", i)
		}
	}
	for i := 4; i < 8; i++ {
		if v, ok := c.PlanCacheGet("", fmt.Sprintf("select %d", i)); !ok || v.(int) != i {
			t.Fatalf("hot entry %d missing", i)
		}
	}
}

// TestPlanCacheLRUTouchOnGet checks that a Get refreshes recency: the
// touched entry must outlive untouched ones under eviction pressure.
func TestPlanCacheLRUTouchOnGet(t *testing.T) {
	c := NewCluster(Options{Segments: 1, PlanCacheSize: 2})
	defer c.Close()
	c.PlanCachePut("", "a", 1, nil)
	c.PlanCachePut("", "b", 2, nil)
	c.PlanCacheGet("", "a")         // a is now hotter than b
	c.PlanCachePut("", "c", 3, nil) // evicts b
	if _, ok := c.PlanCacheGet("", "a"); !ok {
		t.Fatal("recently used entry evicted")
	}
	if _, ok := c.PlanCacheGet("", "b"); ok {
		t.Fatal("least recently used entry survived")
	}
}

// TestPlanCacheDisabled checks PlanCacheSize < 0 turns the cache off
// entirely: puts are dropped, gets miss.
func TestPlanCacheDisabled(t *testing.T) {
	c := NewCluster(Options{Segments: 1, PlanCacheSize: -1})
	defer c.Close()
	c.PlanCachePut("", "a", 1, nil)
	if _, ok := c.PlanCacheGet("", "a"); ok {
		t.Fatal("disabled cache returned an entry")
	}
	if c.PlanCacheLen() != 0 {
		t.Fatal("disabled cache holds entries")
	}
}

// TestPlanCacheDDLInvalidation checks dependency-keyed eviction: DDL on a
// referenced physical table evicts exactly the plans that read it, and
// fully parameterised entries (empty dependency set) are immune.
func TestPlanCacheDDLInvalidation(t *testing.T) {
	c := NewCluster(Options{Segments: 2})
	defer c.Close()
	if _, err := c.CreateTable("t1", Schema{"a"}, 0); err != nil {
		t.Fatal(err)
	}
	c.PlanCachePut("", "select t1", 1, []string{"t1"})
	c.PlanCachePut("", "select other", 2, []string{"other"})
	c.PlanCachePut("", "select $1", 3, nil) // all-param: no deps

	if err := c.DropTable("t1"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.PlanCacheGet("", "select t1"); ok {
		t.Fatal("plan over dropped table survived")
	}
	if _, ok := c.PlanCacheGet("", "select other"); !ok {
		t.Fatal("unrelated plan evicted")
	}
	if _, ok := c.PlanCacheGet("", "select $1"); !ok {
		t.Fatal("parameterised plan evicted by DDL")
	}
	if st := c.Stats(); st.PlanCacheInvalidations == 0 {
		t.Fatal("invalidation not counted")
	}

	// CREATE of a same-named table also invalidates: a cached plan may
	// have resolved the name globally while the new table shadows it.
	c.PlanCachePut("", "select t2", 4, []string{"t2"})
	if _, err := c.CreateTable("t2", Schema{"a"}, 0); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.PlanCacheGet("", "select t2"); ok {
		t.Fatal("plan survived CREATE of its dependency")
	}

	// RENAME invalidates plans reading either name.
	if _, err := c.CreateTable("old", Schema{"a"}, 0); err != nil {
		t.Fatal(err)
	}
	c.PlanCachePut("", "select old", 5, []string{"old"})
	c.PlanCachePut("", "select new", 6, []string{"new"})
	if err := c.RenameTable("old", "new"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.PlanCacheGet("", "select old"); ok {
		t.Fatal("plan over renamed-away table survived")
	}
	if _, ok := c.PlanCacheGet("", "select new"); ok {
		t.Fatal("plan over renamed-to table survived")
	}
}

// TestPlanCacheCounters checks the hit/miss counters move only through
// the explicit Note calls, and that ResetStats clears the counters while
// keeping the cached plans warm.
func TestPlanCacheCounters(t *testing.T) {
	c := NewCluster(Options{Segments: 1})
	defer c.Close()
	c.PlanCachePut("ns_", "select x", 1, nil)
	c.PlanCacheGet("ns_", "select x") // get alone moves nothing
	parses, hits, misses := c.PlanCounters()
	if parses != 0 || hits != 0 || misses != 0 {
		t.Fatalf("counters moved without Note calls: %d/%d/%d", parses, hits, misses)
	}
	c.NoteParse()
	c.NotePlanCacheHit()
	c.NotePlanCacheHit()
	c.NotePlanCacheMiss()
	st := c.Stats()
	if st.Parses != 1 || st.PlanCacheHits != 2 || st.PlanCacheMisses != 1 {
		t.Fatalf("stats: parses=%d hits=%d misses=%d", st.Parses, st.PlanCacheHits, st.PlanCacheMisses)
	}

	c.ResetStats()
	st = c.Stats()
	if st.Parses != 0 || st.PlanCacheHits != 0 || st.PlanCacheMisses != 0 || st.PlanCacheInvalidations != 0 {
		t.Fatalf("ResetStats left counters: %+v", st)
	}
	if _, ok := c.PlanCacheGet("ns_", "select x"); !ok {
		t.Fatal("ResetStats dropped cached plans; it must only clear counters")
	}
}

// TestPlanCacheFlush checks Flush empties the cache but keeps counters.
func TestPlanCacheFlush(t *testing.T) {
	c := NewCluster(Options{Segments: 1})
	defer c.Close()
	c.PlanCachePut("", "a", 1, nil)
	c.NotePlanCacheHit()
	c.PlanCacheFlush()
	if c.PlanCacheLen() != 0 {
		t.Fatal("flush left entries")
	}
	if st := c.Stats(); st.PlanCacheHits != 1 {
		t.Fatal("flush cleared counters")
	}
}

// TestPlanCacheRemove checks single-entry removal (the validation-failure
// path).
func TestPlanCacheRemove(t *testing.T) {
	c := NewCluster(Options{Segments: 1})
	defer c.Close()
	c.PlanCachePut("", "a", 1, nil)
	c.PlanCachePut("", "b", 2, nil)
	c.PlanCacheRemove("", "a")
	if _, ok := c.PlanCacheGet("", "a"); ok {
		t.Fatal("removed entry still present")
	}
	if _, ok := c.PlanCacheGet("", "b"); !ok {
		t.Fatal("unrelated entry removed")
	}
}

// TestPlanCacheNamespaceKeying checks two namespaces never share entries
// for the same normalized text.
func TestPlanCacheNamespaceKeying(t *testing.T) {
	c := NewCluster(Options{Segments: 1})
	defer c.Close()
	c.PlanCachePut("tn_a_", "select x", 1, nil)
	c.PlanCachePut("tn_b_", "select x", 2, nil)
	va, okA := c.PlanCacheGet("tn_a_", "select x")
	vb, okB := c.PlanCacheGet("tn_b_", "select x")
	if !okA || !okB || va.(int) != 1 || vb.(int) != 2 {
		t.Fatalf("namespace keying broken: %v/%v %v/%v", va, okA, vb, okB)
	}
}
