package engine

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"dbcc/internal/xrand"
)

// relation is an in-flight distributed intermediate result.
type relation struct {
	schema  Schema
	parts   [][]Row
	distKey int // column the rows are currently hash-distributed by, or NoDistKey
}

// CreateTableAs executes the plan, materialises its output as a new table
// hash-distributed by column distKey (NoDistKey for arbitrary placement),
// and returns the number of rows written — the value the paper's driver
// script reads from every query to detect termination.
func (c *Cluster) CreateTableAs(name string, p Plan, distKey int) (int64, error) {
	c.beginStatement()
	defer c.endStatement()
	// Fast-fail before executing; the authoritative check is the atomic
	// publish below (another session may create the name meanwhile).
	if _, exists := c.Table(name); exists {
		return 0, fmt.Errorf("engine: table %q already exists", name)
	}
	start := time.Now()
	rel, root, err := c.exec(p)
	if err != nil {
		return 0, err
	}
	var placeShuffle int64
	if distKey != NoDistKey {
		if distKey < 0 || distKey >= len(rel.schema) {
			return 0, fmt.Errorf("engine: distribution key %d out of range for %v", distKey, rel.schema)
		}
		rel, placeShuffle = c.redistribute(rel, distKey)
	}
	t := &Table{Name: name, Schema: rel.schema, DistKey: distKey, Parts: rel.parts}
	c.mu.Lock()
	if _, exists := c.tables[name]; exists {
		c.mu.Unlock()
		return 0, fmt.Errorf("engine: table %q already exists", name)
	}
	c.tables[name] = t
	c.mu.Unlock()
	c.accountWrite("create "+name, t.Rows(), t.Bytes())
	c.chargeProfileOverhead()
	c.addTrace(TraceRecord{
		Kind:    "create",
		Target:  name,
		Plan:    p.String(),
		Rows:    t.Rows(),
		Bytes:   t.Bytes(),
		Shuffle: root.TotalShuffle() + placeShuffle,
		Start:   start,
		Elapsed: time.Since(start),
		Root:    root,
	})
	return t.Rows(), nil
}

// Query executes the plan and gathers all result rows onto the coordinator,
// along with the output schema. Unlike CreateTableAs it does not write a
// table and therefore does not count toward the write statistics, but it
// does count as a query.
func (c *Cluster) Query(p Plan) (Schema, []Row, error) {
	schema, rows, _, err := c.QueryAnalyze(p)
	return schema, rows, err
}

// QueryAnalyze is Query returning additionally the per-operator execution
// profile of the run — the engine half of EXPLAIN ANALYZE.
func (c *Cluster) QueryAnalyze(p Plan) (Schema, []Row, *OpMetrics, error) {
	c.beginStatement()
	defer c.endStatement()
	start := time.Now()
	rel, root, err := c.exec(p)
	if err != nil {
		return nil, nil, nil, err
	}
	var out []Row
	for _, part := range rel.parts {
		out = append(out, part...)
	}
	c.statsMu.Lock()
	c.stats.Queries++
	c.statsMu.Unlock()
	c.chargeProfileOverhead()
	c.addTrace(TraceRecord{
		Kind:    "select",
		Plan:    p.String(),
		Rows:    int64(len(out)),
		Bytes:   root.Bytes,
		Shuffle: root.TotalShuffle(),
		Start:   start,
		Elapsed: time.Since(start),
		Root:    root,
	})
	return rel.schema, out, root, nil
}

// profileSink keeps the synthetic scheduling work below observable so the
// compiler cannot eliminate the loop. Updated atomically: queries charge
// their overhead concurrently.
var profileSink atomic.Uint64

// chargeProfileOverhead burns the synthetic per-query scheduling work of
// the modelled execution environment (Sec. VII-C: Spark SQL pays a fixed
// job-scheduling cost per query that a resident MPP database does not).
func (c *Cluster) chargeProfileOverhead() {
	if c.profile != ProfileSparkSQL {
		return
	}
	var acc uint64
	for i := 0; i < c.sparkW; i++ {
		acc = xrand.Mix64(acc + uint64(i))
	}
	profileSink.Add(acc)
}

// finishOp builds the metrics node for one executed operator: output
// volume and per-segment distribution from the produced relation, plus the
// operator's shuffle traffic, per-segment compute times and inclusive wall
// time since start.
func finishOp(op, detail string, rel *relation, children []*OpMetrics,
	shuffle int64, segTimes []time.Duration, start time.Time) *OpMetrics {
	m := &OpMetrics{
		Op:       op,
		Detail:   detail,
		Shuffle:  shuffle,
		Elapsed:  time.Since(start),
		SegTimes: segTimes,
		Children: children,
	}
	m.SegRows = make([]int64, len(rel.parts))
	for i, p := range rel.parts {
		m.SegRows[i] = int64(len(p))
		m.Rows += int64(len(p))
	}
	m.Bytes = m.Rows * int64(len(rel.schema)) * DatumSize
	return m
}

// parallelTimed is parallel with a per-segment wall-time measurement of fn.
func (c *Cluster) parallelTimed(fn func(seg int)) []time.Duration {
	times := make([]time.Duration, c.segments)
	c.parallel(func(seg int) {
		t0 := time.Now()
		fn(seg)
		times[seg] = time.Since(t0)
	})
	return times
}

// exec evaluates a plan tree to a distributed relation, collecting one
// OpMetrics node per operator.
func (c *Cluster) exec(p Plan) (*relation, *OpMetrics, error) {
	start := time.Now()
	switch p := p.(type) {
	case ScanPlan:
		t, ok := c.Table(p.Table)
		if !ok {
			return nil, nil, fmt.Errorf("engine: table %q does not exist", p.Table)
		}
		rel := &relation{schema: t.Schema, parts: t.snapshotParts(), distKey: t.DistKey}
		return rel, finishOp("Scan", p.Table, rel, nil, 0, nil, start), nil

	case ValuesPlan:
		parts := make([][]Row, c.segments)
		parts[0] = p.Rows
		rel := &relation{schema: p.Cols, parts: parts, distKey: NoDistKey}
		return rel, finishOp("Values", "", rel, nil, 0, nil, start), nil

	case FilterPlan:
		in, cm, err := c.exec(p.Input)
		if err != nil {
			return nil, nil, err
		}
		out := c.newParts()
		segTimes := c.parallelTimed(func(seg int) {
			var keep []Row
			for _, row := range in.parts[seg] {
				if truthy(p.Pred.Eval(row)) {
					keep = append(keep, row)
				}
			}
			out[seg] = keep
		})
		rel := &relation{schema: in.schema, parts: out, distKey: in.distKey}
		return rel, finishOp("Filter", p.Pred.String(), rel, []*OpMetrics{cm}, 0, segTimes, start), nil

	case ProjectPlan:
		in, cm, err := c.exec(p.Input)
		if err != nil {
			return nil, nil, err
		}
		schema, err := p.Schema(c)
		if err != nil {
			return nil, nil, err
		}
		// A projection that passes the current distribution column through
		// unchanged preserves the distribution.
		outKey := NoDistKey
		if in.distKey != NoDistKey {
			for i, col := range p.Cols {
				if ref, ok := col.Expr.(ColRef); ok && ref.Idx == in.distKey {
					outKey = i
					break
				}
			}
		}
		out := c.newParts()
		segTimes := c.parallelTimed(func(seg int) {
			rows := make([]Row, len(in.parts[seg]))
			for i, row := range in.parts[seg] {
				nr := make(Row, len(p.Cols))
				for j, col := range p.Cols {
					nr[j] = col.Expr.Eval(row)
				}
				rows[i] = nr
			}
			out[seg] = rows
		})
		rel := &relation{schema: schema, parts: out, distKey: outKey}
		return rel, finishOp("Project", "", rel, []*OpMetrics{cm}, 0, segTimes, start), nil

	case UnionAllPlan:
		schema, err := p.Schema(c)
		if err != nil {
			return nil, nil, err
		}
		out := c.newParts()
		var children []*OpMetrics
		for _, inp := range p.Inputs {
			in, cm, err := c.exec(inp)
			if err != nil {
				return nil, nil, err
			}
			children = append(children, cm)
			for seg := range out {
				out[seg] = append(out[seg], in.parts[seg]...)
			}
		}
		rel := &relation{schema: schema, parts: out, distKey: NoDistKey}
		return rel, finishOp("UnionAll", "", rel, children, 0, nil, start), nil

	case DistinctPlan:
		in, cm, err := c.exec(p.Input)
		if err != nil {
			return nil, nil, err
		}
		shuffled, moved := c.redistributeByRowHash(in)
		out := c.newParts()
		segTimes := c.parallelTimed(func(seg int) {
			seen := make(map[string]struct{}, len(shuffled.parts[seg]))
			var keep []Row
			var buf []byte
			for _, row := range shuffled.parts[seg] {
				buf = encodeRow(buf[:0], row)
				if _, dup := seen[string(buf)]; dup {
					continue
				}
				seen[string(buf)] = struct{}{}
				keep = append(keep, row)
			}
			out[seg] = keep
		})
		rel := &relation{schema: in.schema, parts: out, distKey: NoDistKey}
		return rel, finishOp("Distinct", "", rel, []*OpMetrics{cm}, moved, segTimes, start), nil

	case SortPlan:
		return c.execSort(p, start)

	case GroupByPlan:
		return c.execGroupBy(p, start)

	case JoinPlan:
		return c.execJoin(p, start)
	}
	return nil, nil, fmt.Errorf("engine: unknown plan node %T", p)
}

// newParts allocates an empty per-segment row partition set.
func (c *Cluster) newParts() [][]Row { return make([][]Row, c.segments) }

// redistribute hash-shuffles a relation so rows are placed by column key,
// returning the bytes moved between segments.
func (c *Cluster) redistribute(in *relation, key int) (*relation, int64) {
	if in.distKey == key {
		return in, 0
	}
	return c.shuffle(in, func(row Row) int { return c.hashDatum(row[key]) }, key)
}

// redistributeByRowHash shuffles by a hash of the whole row (for DISTINCT).
func (c *Cluster) redistributeByRowHash(in *relation) (*relation, int64) {
	return c.shuffle(in, func(row Row) int {
		var h uint64
		for _, d := range row {
			if d.Null {
				h = xrand.Mix64(h ^ 0x9e37)
			} else {
				h = xrand.Mix64(h ^ uint64(d.Int))
			}
		}
		return int(h % uint64(c.segments))
	}, NoDistKey)
}

// shuffle moves every row to the segment chosen by dest, recording the
// network traffic in the statistics and returning it for per-operator
// accounting.
func (c *Cluster) shuffle(in *relation, dest func(Row) int, newKey int) (*relation, int64) {
	// Phase 1: each source segment buckets its rows by destination.
	buckets := make([][][]Row, c.segments) // [src][dst]
	moved := make([]int64, c.segments)
	c.parallel(func(src int) {
		b := make([][]Row, c.segments)
		for _, row := range in.parts[src] {
			d := dest(row)
			b[d] = append(b[d], row)
			if d != src {
				moved[src] += int64(len(row)) * DatumSize
			}
		}
		buckets[src] = b
	})
	// Phase 2: each destination concatenates its incoming buckets.
	out := c.newParts()
	c.parallel(func(dst int) {
		var rows []Row
		for src := 0; src < c.segments; src++ {
			rows = append(rows, buckets[src][dst]...)
		}
		out[dst] = rows
	})
	var total int64
	for _, m := range moved {
		total += m
	}
	c.addShuffleBytes(total)
	return &relation{schema: in.schema, parts: out, distKey: newKey}, total
}

// encodeRow appends a canonical byte encoding of the row to buf.
func encodeRow(buf []byte, row Row) []byte {
	for _, d := range row {
		if d.Null {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		var w [8]byte
		binary.LittleEndian.PutUint64(w[:], uint64(d.Int))
		buf = append(buf, w[:]...)
	}
	return buf
}

// execSort gathers all rows onto segment 0 and orders them by the sort
// keys, applying the limit if any.
func (c *Cluster) execSort(p SortPlan, start time.Time) (*relation, *OpMetrics, error) {
	in, cm, err := c.exec(p.Input)
	if err != nil {
		return nil, nil, err
	}
	var all []Row
	for _, part := range in.parts {
		all = append(all, part...)
	}
	sort.SliceStable(all, func(i, j int) bool {
		for _, k := range p.Keys {
			a, b := all[i][k.Col], all[j][k.Col]
			var cmp int
			switch {
			case a.Null && b.Null:
				cmp = 0
			case a.Null:
				cmp = -1
			case b.Null:
				cmp = 1
			case a.Int < b.Int:
				cmp = -1
			case a.Int > b.Int:
				cmp = 1
			}
			if k.Desc {
				cmp = -cmp
			}
			if cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
	if p.Limit >= 0 && int64(len(all)) > p.Limit {
		all = all[:p.Limit]
	}
	parts := c.newParts()
	parts[0] = all
	rel := &relation{schema: in.schema, parts: parts, distKey: NoDistKey}
	return rel, finishOp("Sort", "", rel, []*OpMetrics{cm}, 0, nil, start), nil
}

// aggState is the running state of the aggregates for one group.
type aggState []Datum

// mergeAgg folds value v into slot i of the state for aggregate a.
func mergeAgg(st aggState, i int, a Agg, v Datum) {
	switch a.Op {
	case AggMin:
		if v.Null {
			return
		}
		if st[i].Null || v.Int < st[i].Int {
			st[i] = v
		}
	case AggMax:
		if v.Null {
			return
		}
		if st[i].Null || v.Int > st[i].Int {
			st[i] = v
		}
	case AggCount:
		if st[i].Null {
			st[i] = I(0)
		}
		st[i] = I(st[i].Int + v.Int)
	case AggSum:
		if v.Null {
			return
		}
		if st[i].Null {
			st[i] = I(0)
		}
		st[i] = I(st[i].Int + v.Int)
	}
}

// execGroupBy evaluates a grouped aggregation. Under ProfileMPP each
// segment pre-aggregates locally before the shuffle (map-side combine);
// under ProfileSparkSQL raw rows are shuffled, as Spark SQL's planner of
// the paper's era did for this query shape.
func (c *Cluster) execGroupBy(p GroupByPlan, start time.Time) (*relation, *OpMetrics, error) {
	in, cm, err := c.exec(p.Input)
	if err != nil {
		return nil, nil, err
	}
	schema, err := p.Schema(c)
	if err != nil {
		return nil, nil, err
	}
	nk := len(p.Keys)

	// toPartial converts an input row into a (keys..., aggValues...) row,
	// where count contributes 1 per row.
	toPartial := func(row Row) Row {
		nr := make(Row, nk+len(p.Aggs))
		for i, k := range p.Keys {
			nr[i] = row[k]
		}
		for i, a := range p.Aggs {
			switch a.Op {
			case AggCount:
				// count(*) counts rows; count(expr) counts non-NULL values.
				if a.Arg != nil && a.Arg.Eval(row).Null {
					nr[nk+i] = I(0)
				} else {
					nr[nk+i] = I(1)
				}
			default:
				nr[nk+i] = a.Arg.Eval(row)
			}
		}
		return nr
	}

	// aggregateParts folds partial rows (already in key+agg layout) per
	// segment into one row per group, timing each segment's fold.
	var segTimes []time.Duration
	aggregateParts := func(parts [][]Row) [][]Row {
		out := c.newParts()
		segTimes = c.parallelTimed(func(seg int) {
			groups := make(map[string]Row)
			var order []string
			var buf []byte
			for _, row := range parts[seg] {
				buf = encodeRow(buf[:0], row[:nk])
				g, ok := groups[string(buf)]
				if !ok {
					g = make(Row, nk+len(p.Aggs))
					copy(g, row[:nk])
					for i := range p.Aggs {
						g[nk+i] = NullDatum
					}
					groups[string(buf)] = g
					order = append(order, string(buf))
				}
				for i, a := range p.Aggs {
					mergeAgg(aggState(g[nk:]), i, a, row[nk+i])
				}
			}
			rows := make([]Row, 0, len(groups))
			for _, k := range order {
				rows = append(rows, groups[k])
			}
			out[seg] = rows
		})
		return out
	}

	// Convert input rows to partial layout.
	partial := c.newParts()
	c.parallel(func(seg int) {
		rows := make([]Row, len(in.parts[seg]))
		for i, row := range in.parts[seg] {
			rows[i] = toPartial(row)
		}
		partial[seg] = rows
	})
	rel := &relation{schema: schema, parts: partial, distKey: NoDistKey}
	if nk > 0 && in.distKey != NoDistKey && nk >= 1 && p.Keys[0] == in.distKey {
		// Grouping by the distribution column: groups are already
		// co-located (single-key distribution).
		rel.distKey = 0
	}

	if c.profile == ProfileMPP {
		rel.parts = aggregateParts(rel.parts) // map-side combine
	}
	var moved int64
	if nk == 0 {
		// Global aggregate: gather everything to segment 0.
		all := make([]Row, 0)
		for _, part := range rel.parts {
			all = append(all, part...)
		}
		parts := c.newParts()
		parts[0] = all
		rel = &relation{schema: schema, parts: parts, distKey: NoDistKey}
	} else if rel.distKey != 0 {
		rel, moved = c.shuffle(rel, func(row Row) int { return c.hashDatum(row[0]) }, 0)
	}
	rel.parts = aggregateParts(rel.parts)
	detail := fmt.Sprintf("keys=%v aggs=%d", p.Keys, len(p.Aggs))
	return rel, finishOp("GroupBy", detail, rel, []*OpMetrics{cm}, moved, segTimes, start), nil
}

// execJoin evaluates a distributed hash equi-join: both sides are
// redistributed by their join keys (if not already co-located), then each
// segment joins its share with an in-memory hash table built on the
// smaller side.
func (c *Cluster) execJoin(p JoinPlan, start time.Time) (*relation, *OpMetrics, error) {
	left, lm, err := c.exec(p.Left)
	if err != nil {
		return nil, nil, err
	}
	right, rm, err := c.exec(p.Right)
	if err != nil {
		return nil, nil, err
	}
	if p.LeftKey < 0 || p.LeftKey >= len(left.schema) {
		return nil, nil, fmt.Errorf("engine: left join key %d out of range for %v", p.LeftKey, left.schema)
	}
	if p.RightKey < 0 || p.RightKey >= len(right.schema) {
		return nil, nil, fmt.Errorf("engine: right join key %d out of range for %v", p.RightKey, right.schema)
	}
	schema, err := p.Schema(c)
	if err != nil {
		return nil, nil, err
	}
	// Broadcast motion: if the build side is small enough and the probe
	// side is not already placed on its join key, replicate the build side
	// to every segment instead of shuffling both sides.
	var moved int64
	outKey := p.LeftKey
	if c.broadcast > 0 && left.distKey != p.LeftKey {
		var rightRows int64
		for _, part := range right.parts {
			rightRows += int64(len(part))
		}
		if rightRows <= c.broadcast {
			var bmoved int64
			right, bmoved = c.broadcastAll(right)
			moved += bmoved
			outKey = left.distKey
		} else {
			var lmoved, rmoved int64
			left, lmoved = c.redistribute(left, p.LeftKey)
			right, rmoved = c.redistribute(right, p.RightKey)
			moved += lmoved + rmoved
		}
	} else {
		var lmoved, rmoved int64
		left, lmoved = c.redistribute(left, p.LeftKey)
		right, rmoved = c.redistribute(right, p.RightKey)
		moved += lmoved + rmoved
	}

	out := c.newParts()
	segTimes := c.parallelTimed(func(seg int) {
		build := make(map[int64][]Row)
		for _, row := range right.parts[seg] {
			k := row[p.RightKey]
			if k.Null {
				continue // NULL keys never match
			}
			build[k.Int] = append(build[k.Int], row)
		}
		var rows []Row
		rw := len(right.schema)
		for _, lrow := range left.parts[seg] {
			k := lrow[p.LeftKey]
			var matches []Row
			if !k.Null {
				matches = build[k.Int]
			}
			if len(matches) == 0 {
				if p.Kind == LeftOuterJoin {
					nr := make(Row, len(lrow)+rw)
					copy(nr, lrow)
					for i := 0; i < rw; i++ {
						nr[len(lrow)+i] = NullDatum
					}
					rows = append(rows, nr)
				}
				continue
			}
			for _, rrow := range matches {
				nr := make(Row, 0, len(lrow)+rw)
				nr = append(nr, lrow...)
				nr = append(nr, rrow...)
				rows = append(rows, nr)
			}
		}
		out[seg] = rows
	})
	rel := &relation{schema: schema, parts: out, distKey: outKey}
	op := "HashJoin"
	if p.Kind == LeftOuterJoin {
		op = "HashLeftJoin"
	}
	detail := fmt.Sprintf("$%d = $%d", p.LeftKey, p.RightKey)
	return rel, finishOp(op, detail, rel, []*OpMetrics{lm, rm}, moved, segTimes, start), nil
}

// broadcastAll replicates a relation onto every segment (broadcast
// motion), charging the replication traffic to the shuffle statistics and
// returning it.
func (c *Cluster) broadcastAll(in *relation) (*relation, int64) {
	var all []Row
	var bytes int64
	for _, part := range in.parts {
		all = append(all, part...)
		for _, row := range part {
			bytes += int64(len(row)) * DatumSize
		}
	}
	parts := make([][]Row, c.segments)
	for i := range parts {
		parts[i] = all
	}
	moved := bytes * int64(c.segments-1)
	c.addShuffleBytes(moved)
	return &relation{schema: in.schema, parts: parts, distKey: NoDistKey}, moved
}
