package engine

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"time"

	"dbcc/internal/xrand"
)

// relation is an in-flight distributed intermediate result: one columnar
// chunk per segment. Rows exist only at the storage boundary — Scan
// converts stored rows into chunks and CreateTableAs/Query convert back —
// so every operator between the boundaries runs on flat column arrays.
type relation struct {
	schema  Schema
	parts   []*Chunk
	distKey int // column the rows are currently hash-distributed by, or NoDistKey
}

// rows returns the total row count across segments.
func (r *relation) rows() int64 {
	var n int64
	for _, ch := range r.parts {
		n += int64(ch.length)
	}
	return n
}

// CreateTableAs executes the plan, materialises its output as a new table
// hash-distributed by column distKey (NoDistKey for arbitrary placement),
// and returns the number of rows written — the value the paper's driver
// script reads from every query to detect termination.
func (c *Cluster) CreateTableAs(name string, p Plan, distKey int) (int64, error) {
	return c.CreateTableAsCtx(context.Background(), name, p, distKey)
}

// CreateTableAsCtx is CreateTableAs executing under a context: cancelling
// ctx (or exceeding Options.QueryTimeout) aborts the statement between
// operators and between segment tasks, draining in-flight tasks before
// returning.
func (c *Cluster) CreateTableAsCtx(ctx context.Context, name string, p Plan, distKey int) (rows int64, err error) {
	defer recoverToError("create table "+name, &err)
	c.beginStatement()
	defer c.endStatement()
	ctx, cancel := c.statementContext(ctx)
	defer cancel()
	// Fast-fail before executing; the authoritative check is the atomic
	// publish below (another session may create the name meanwhile).
	if _, exists := c.Table(name); exists {
		return 0, fmt.Errorf("engine: table %q already exists", name)
	}
	start := time.Now()
	e := c.newExecEnv(ctx)
	defer e.close()
	rel, root, err := e.exec(p)
	if err != nil {
		return 0, err
	}
	var placeShuffle int64
	if distKey != NoDistKey {
		if distKey < 0 || distKey >= len(rel.schema) {
			return 0, fmt.Errorf("engine: distribution key %d out of range for %v", distKey, rel.schema)
		}
		rel, placeShuffle, err = e.redistribute(rel, distKey)
		if err != nil {
			return 0, err
		}
	}
	parts := make([][]Row, c.segments)
	err = e.parallel(func(seg int) error {
		parts[seg] = chunkToRows(rel.parts[seg])
		return nil
	})
	if err != nil {
		return 0, err
	}
	// The placement shuffle and row conversion ran after the plan's root
	// operator finished; fold their fault counters into the root node so
	// the trace accounts for every retry of the statement.
	e.drainFaultCounters(root)
	t := &Table{Name: name, Schema: rel.schema, DistKey: distKey, Parts: parts}
	c.mu.Lock()
	if _, exists := c.tables[name]; exists {
		c.mu.Unlock()
		return 0, fmt.Errorf("engine: table %q already exists", name)
	}
	c.tables[name] = t
	c.mu.Unlock()
	c.accountWrite("create "+name, t.Rows(), t.Bytes())
	c.chargeProfileOverhead()
	c.addTrace(TraceRecord{
		Kind:    "create",
		Target:  name,
		Plan:    p.String(),
		Rows:    t.Rows(),
		Bytes:   t.Bytes(),
		Shuffle: root.TotalShuffle() + placeShuffle,
		Start:   start,
		Elapsed: time.Since(start),
		Root:    root,
	})
	return t.Rows(), nil
}

// Query executes the plan and gathers all result rows onto the coordinator,
// along with the output schema. Unlike CreateTableAs it does not write a
// table and therefore does not count toward the write statistics, but it
// does count as a query.
func (c *Cluster) Query(p Plan) (Schema, []Row, error) {
	schema, rows, _, err := c.QueryAnalyzeCtx(context.Background(), p)
	return schema, rows, err
}

// QueryCtx is Query executing under a context (see CreateTableAsCtx).
func (c *Cluster) QueryCtx(ctx context.Context, p Plan) (Schema, []Row, error) {
	schema, rows, _, err := c.QueryAnalyzeCtx(ctx, p)
	return schema, rows, err
}

// QueryAnalyze is Query returning additionally the per-operator execution
// profile of the run — the engine half of EXPLAIN ANALYZE.
func (c *Cluster) QueryAnalyze(p Plan) (Schema, []Row, *OpMetrics, error) {
	return c.QueryAnalyzeCtx(context.Background(), p)
}

// QueryAnalyzeCtx is QueryAnalyze executing under a context (see
// CreateTableAsCtx).
func (c *Cluster) QueryAnalyzeCtx(ctx context.Context, p Plan) (_ Schema, _ []Row, _ *OpMetrics, err error) {
	defer recoverToError("query", &err)
	c.beginStatement()
	defer c.endStatement()
	ctx, cancel := c.statementContext(ctx)
	defer cancel()
	start := time.Now()
	e := c.newExecEnv(ctx)
	defer e.close()
	rel, root, err := e.exec(p)
	if err != nil {
		return nil, nil, nil, err
	}
	var out []Row
	for _, part := range rel.parts {
		out = append(out, chunkToRows(part)...)
	}
	c.statsMu.Lock()
	c.stats.Queries++
	c.statsMu.Unlock()
	c.chargeProfileOverhead()
	c.addTrace(TraceRecord{
		Kind:    "select",
		Plan:    p.String(),
		Rows:    int64(len(out)),
		Bytes:   root.Bytes,
		Shuffle: root.TotalShuffle(),
		Start:   start,
		Elapsed: time.Since(start),
		Root:    root,
	})
	return rel.schema, out, root, nil
}

// profileSink keeps the synthetic scheduling work below observable so the
// compiler cannot eliminate the loop. Updated atomically: queries charge
// their overhead concurrently.
var profileSink atomic.Uint64

// chargeProfileOverhead burns the synthetic per-query scheduling work of
// the modelled execution environment (Sec. VII-C: Spark SQL pays a fixed
// job-scheduling cost per query that a resident MPP database does not).
func (c *Cluster) chargeProfileOverhead() {
	if c.profile != ProfileSparkSQL {
		return
	}
	var acc uint64
	for i := 0; i < c.sparkW; i++ {
		acc = xrand.Mix64(acc + uint64(i))
	}
	profileSink.Add(acc)
}

// drainFaultCounters moves the environment's pending retry/fault/cancel
// and spill counters into the metrics node. Operators execute depth-first
// and sequentially within a statement, so between two finishOp calls the
// counters belong to exactly one operator.
func (e *execEnv) drainFaultCounters(m *OpMetrics) {
	m.Retries += e.opRetries.Swap(0)
	m.Faults += e.opFaults.Swap(0)
	m.Cancelled += e.opCancelled.Swap(0)
	m.Spilled += e.opSpilled.Swap(0)
	m.SpillParts += e.opSpillParts.Swap(0)
	m.SpillPasses += e.opSpillPasses.Swap(0)
}

// finishOp builds the metrics node for one executed operator: output
// volume and per-segment distribution from the produced relation, the
// operator's shuffle traffic, per-segment compute times and inclusive wall
// time since start, plus the fault-tolerance counters accumulated since the
// previous operator finished.
func (e *execEnv) finishOp(op, detail string, rel *relation, children []*OpMetrics,
	shuffle int64, segTimes []time.Duration, start time.Time) *OpMetrics {
	m := &OpMetrics{
		Op:       op,
		Detail:   detail,
		Shuffle:  shuffle,
		Elapsed:  time.Since(start),
		SegTimes: segTimes,
		Children: children,
	}
	m.SegRows = make([]int64, len(rel.parts))
	for i, p := range rel.parts {
		m.SegRows[i] = int64(p.length)
		m.Rows += int64(p.length)
	}
	m.Bytes = m.Rows * int64(len(rel.schema)) * DatumSize
	e.drainFaultCounters(m)
	return m
}

// exec evaluates a plan tree to a distributed relation, collecting one
// OpMetrics node per operator. Cancellation is checked before every
// operator; segment tasks additionally observe it between retries and
// before starting.
func (e *execEnv) exec(p Plan) (*relation, *OpMetrics, error) {
	if err := e.checkCancelled(); err != nil {
		return nil, nil, err
	}
	c := e.c
	start := time.Now()
	switch p := p.(type) {
	case ScanPlan:
		t, ok := c.Table(p.Table)
		if !ok {
			return nil, nil, fmt.Errorf("engine: table %q does not exist", p.Table)
		}
		stored := t.snapshotParts()
		parts := make([]*Chunk, c.segments)
		err := e.parallel(func(seg int) error {
			parts[seg] = rowsToChunk(stored[seg], len(t.Schema))
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
		rel := &relation{schema: t.Schema, parts: parts, distKey: t.DistKey}
		return rel, e.finishOp("Scan", p.Table, rel, nil, 0, nil, start), nil

	case ValuesPlan:
		parts := c.newParts(len(p.Cols))
		parts[0] = rowsToChunk(p.Rows, len(p.Cols))
		rel := &relation{schema: p.Cols, parts: parts, distKey: NoDistKey}
		return rel, e.finishOp("Values", "", rel, nil, 0, nil, start), nil

	case FilterPlan:
		in, cm, err := e.exec(p.Input)
		if err != nil {
			return nil, nil, err
		}
		out := make([]*Chunk, c.segments)
		segTimes, err := e.parallelTimed(func(seg int) error {
			ch := in.parts[seg]
			pred, err := evalVec(p.Pred, ch)
			if err != nil {
				return err
			}
			kp := getI32(ch.length)
			keep := *kp
			for r := 0; r < ch.length; r++ {
				if !pred.null(r) && pred.vals[r] != 0 {
					keep = append(keep, int32(r))
				}
			}
			out[seg] = gatherChunk(ch, keep)
			*kp = keep
			putI32(kp)
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
		rel := &relation{schema: in.schema, parts: out, distKey: in.distKey}
		return rel, e.finishOp("Filter", p.Pred.String(), rel, []*OpMetrics{cm}, 0, segTimes, start), nil

	case ProjectPlan:
		in, cm, err := e.exec(p.Input)
		if err != nil {
			return nil, nil, err
		}
		schema, err := p.Schema(c)
		if err != nil {
			return nil, nil, err
		}
		// A projection that passes the current distribution column through
		// unchanged preserves the distribution.
		outKey := NoDistKey
		if in.distKey != NoDistKey {
			for i, col := range p.Cols {
				if ref, ok := col.Expr.(ColRef); ok && ref.Idx == in.distKey {
					outKey = i
					break
				}
			}
		}
		out := make([]*Chunk, c.segments)
		segTimes, err := e.parallelTimed(func(seg int) error {
			ch := in.parts[seg]
			vecs := make([]colVec, len(p.Cols))
			for i, col := range p.Cols {
				v, err := evalVec(col.Expr, ch)
				if err != nil {
					return err
				}
				vecs[i] = v
			}
			out[seg] = chunkFromVecs(vecs, ch.length)
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
		rel := &relation{schema: schema, parts: out, distKey: outKey}
		return rel, e.finishOp("Project", "", rel, []*OpMetrics{cm}, 0, segTimes, start), nil

	case UnionAllPlan:
		schema, err := p.Schema(c)
		if err != nil {
			return nil, nil, err
		}
		ins := make([]*relation, 0, len(p.Inputs))
		var children []*OpMetrics
		for _, inp := range p.Inputs {
			in, cm, err := e.exec(inp)
			if err != nil {
				return nil, nil, err
			}
			children = append(children, cm)
			ins = append(ins, in)
		}
		out := make([]*Chunk, c.segments)
		err = e.parallel(func(seg int) error {
			pieces := make([]*Chunk, len(ins))
			for i, in := range ins {
				pieces[i] = in.parts[seg]
			}
			out[seg] = concatChunks(len(schema), pieces)
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
		rel := &relation{schema: schema, parts: out, distKey: NoDistKey}
		return rel, e.finishOp("UnionAll", "", rel, children, 0, nil, start), nil

	case DistinctPlan:
		in, cm, err := e.exec(p.Input)
		if err != nil {
			return nil, nil, err
		}
		shuffled, moved, err := e.redistributeByRowHash(in)
		if err != nil {
			return nil, nil, err
		}
		out := make([]*Chunk, c.segments)
		segTimes, err := e.parallelTimed(func(seg int) error {
			ch, derr := e.foldSegment(seg, shuffled.parts[seg], len(in.schema), nil, true)
			if derr != nil {
				return derr
			}
			out[seg] = ch
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
		rel := &relation{schema: in.schema, parts: out, distKey: NoDistKey}
		return rel, e.finishOp("Distinct", "", rel, []*OpMetrics{cm}, moved, segTimes, start), nil

	case SortPlan:
		return e.execSort(p, start)

	case GroupByPlan:
		return e.execGroupBy(p, start)

	case JoinPlan:
		return e.execJoin(p, start)
	}
	return nil, nil, fmt.Errorf("engine: unknown plan node %T", p)
}

// newParts allocates a per-segment chunk set of empty chunks.
func (c *Cluster) newParts(ncols int) []*Chunk {
	parts := make([]*Chunk, c.segments)
	for i := range parts {
		parts[i] = newChunk(ncols, 0)
	}
	return parts
}

// redistribute hash-shuffles a relation so rows are placed by column key,
// returning the bytes moved between segments.
func (e *execEnv) redistribute(in *relation, key int) (*relation, int64, error) {
	if in.distKey == key {
		return in, 0, nil
	}
	segs := uint64(e.c.segments)
	return e.shuffle(in, func(ch *Chunk, r int) int {
		if ch.nulls[key].get(r) {
			return 0
		}
		return int(xrand.Mix64(uint64(ch.cols[key][r])) % segs)
	}, key)
}

// redistributeByRowHash shuffles by a hash of the whole row (for DISTINCT).
func (e *execEnv) redistributeByRowHash(in *relation) (*relation, int64, error) {
	ncols := len(in.schema)
	segs := uint64(e.c.segments)
	return e.shuffle(in, func(ch *Chunk, r int) int {
		return int(chunkRowHash(ch, 0, ncols, r) % segs)
	}, NoDistKey)
}

// shuffle moves every row to the segment chosen by dest, recording the
// network traffic in the statistics and returning it for per-operator
// accounting. Each source segment first counts its rows per destination,
// then places them into exact-capacity per-destination chunks — no
// append-growing — and each destination concatenates its incoming chunks
// column-at-a-time. Rows that change segments are charged DatumWireSize
// bytes per value, the width of the canonical row encoding. Each task
// publishes into its own slot only when it completes, so a retried or
// cancelled task never leaves partial state behind.
func (e *execEnv) shuffle(in *relation, dest func(ch *Chunk, r int) int, newKey int) (*relation, int64, error) {
	ncols := len(in.schema)
	segs := e.c.segments
	// Phase 1: each source segment counts, then places, its rows by
	// destination.
	buckets := make([][]*Chunk, segs) // [src][dst]
	moved := make([]int64, segs)
	err := e.parallel(func(src int) error {
		ch := in.parts[src]
		n := ch.length
		dp := getI32(n)
		dests := (*dp)[:n]
		counts := make([]int32, segs)
		for r := 0; r < n; r++ {
			d := dest(ch, r)
			dests[r] = int32(d)
			counts[d]++
		}
		rowBytes := int64(ncols) * DatumWireSize
		b := make([]*Chunk, segs)
		for d := range b {
			b[d] = newChunk(ncols, int(counts[d]))
		}
		cursors := make([]int32, segs)
		var movedHere int64
		for r := 0; r < n; r++ {
			d := dests[r]
			k := int(cursors[d])
			cursors[d]++
			dst := b[d]
			for col := 0; col < ncols; col++ {
				if ch.nulls[col].get(r) {
					dst.ensureNulls(col).set(k)
				} else {
					dst.cols[col][k] = ch.cols[col][r]
				}
			}
			if int(d) != src {
				movedHere += rowBytes
			}
		}
		*dp = dests
		putI32(dp)
		moved[src] = movedHere
		buckets[src] = b
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	// Phase 2: each destination concatenates its incoming chunks.
	out := make([]*Chunk, segs)
	err = e.parallel(func(dst int) error {
		pieces := make([]*Chunk, segs)
		for src := 0; src < segs; src++ {
			pieces[src] = buckets[src][dst]
		}
		out[dst] = concatChunks(ncols, pieces)
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	var total int64
	for _, m := range moved {
		total += m
	}
	e.c.addShuffleBytes(total)
	return &relation{schema: in.schema, parts: out, distKey: newKey}, total, nil
}

// encodeRow appends the canonical byte encoding of a row to buf: one null
// tag plus the 8-byte payload per value — DatumWireSize bytes per column,
// the width shuffle accounting charges (TestWireWidthAgreement locks the
// two together).
func encodeRow(buf []byte, row Row) []byte {
	for _, d := range row {
		if d.Null {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		var w [8]byte
		binary.LittleEndian.PutUint64(w[:], uint64(d.Int))
		buf = append(buf, w[:]...)
	}
	return buf
}

// execGroupBy evaluates a grouped aggregation. Under ProfileMPP each
// segment pre-aggregates locally before the shuffle (map-side combine);
// under ProfileSparkSQL raw rows are shuffled, as Spark SQL's planner of
// the paper's era did for this query shape.
func (e *execEnv) execGroupBy(p GroupByPlan, start time.Time) (*relation, *OpMetrics, error) {
	c := e.c
	in, cm, err := e.exec(p.Input)
	if err != nil {
		return nil, nil, err
	}
	schema, err := p.Schema(c)
	if err != nil {
		return nil, nil, err
	}
	nk := len(p.Keys)

	// aggregateParts folds partial chunks (already in key+agg layout) per
	// segment into one row per group, timing each segment's fold.
	var segTimes []time.Duration
	aggregateParts := func(parts []*Chunk) ([]*Chunk, error) {
		out := make([]*Chunk, c.segments)
		var err error
		segTimes, err = e.parallelTimed(func(seg int) error {
			ch, gerr := e.foldSegment(seg, parts[seg], nk, p.Aggs, false)
			if gerr != nil {
				return gerr
			}
			out[seg] = ch
			return nil
		})
		if err != nil {
			return nil, err
		}
		return out, nil
	}

	// Convert input chunks to partial layout.
	partial := make([]*Chunk, c.segments)
	err = e.parallel(func(seg int) error {
		ch, err := buildPartialChunk(in.parts[seg], p.Keys, p.Aggs)
		if err != nil {
			return err
		}
		partial[seg] = ch
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	rel := &relation{schema: schema, parts: partial, distKey: NoDistKey}
	if nk > 0 && in.distKey != NoDistKey && p.Keys[0] == in.distKey {
		// Grouping by the distribution column: groups are already
		// co-located (single-key distribution).
		rel.distKey = 0
	}

	if c.profile == ProfileMPP {
		rel.parts, err = aggregateParts(rel.parts) // map-side combine
		if err != nil {
			return nil, nil, err
		}
	}
	var moved int64
	if nk == 0 {
		// Global aggregate: gather everything to segment 0.
		all := concatChunks(len(schema), rel.parts)
		parts := c.newParts(len(schema))
		parts[0] = all
		rel = &relation{schema: schema, parts: parts, distKey: NoDistKey}
	} else if rel.distKey != 0 {
		segs := uint64(c.segments)
		rel, moved, err = e.shuffle(rel, func(ch *Chunk, r int) int {
			if ch.nulls[0].get(r) {
				return 0
			}
			return int(xrand.Mix64(uint64(ch.cols[0][r])) % segs)
		}, 0)
		if err != nil {
			return nil, nil, err
		}
	}
	rel.parts, err = aggregateParts(rel.parts)
	if err != nil {
		return nil, nil, err
	}
	detail := fmt.Sprintf("keys=%v aggs=%d", p.Keys, len(p.Aggs))
	return rel, e.finishOp("GroupBy", detail, rel, []*OpMetrics{cm}, moved, segTimes, start), nil
}

// execJoin evaluates a distributed hash equi-join: both sides are
// redistributed by their join keys (if not already co-located), then each
// segment joins its share with the int64-keyed open-addressing hash table
// built on the right side.
func (e *execEnv) execJoin(p JoinPlan, start time.Time) (*relation, *OpMetrics, error) {
	c := e.c
	left, lm, err := e.exec(p.Left)
	if err != nil {
		return nil, nil, err
	}
	right, rm, err := e.exec(p.Right)
	if err != nil {
		return nil, nil, err
	}
	if p.LeftKey < 0 || p.LeftKey >= len(left.schema) {
		return nil, nil, fmt.Errorf("engine: left join key %d out of range for %v", p.LeftKey, left.schema)
	}
	if p.RightKey < 0 || p.RightKey >= len(right.schema) {
		return nil, nil, fmt.Errorf("engine: right join key %d out of range for %v", p.RightKey, right.schema)
	}
	schema, err := p.Schema(c)
	if err != nil {
		return nil, nil, err
	}
	// Broadcast motion: if the build side is small enough and the probe
	// side is not already placed on its join key, replicate the build side
	// to every segment instead of shuffling both sides.
	var moved int64
	outKey := p.LeftKey
	if c.broadcast > 0 && left.distKey != p.LeftKey && right.rows() <= c.broadcast {
		var bmoved int64
		right, bmoved = c.broadcastAll(right)
		moved += bmoved
		outKey = left.distKey
	} else {
		var lmoved, rmoved int64
		left, lmoved, err = e.redistribute(left, p.LeftKey)
		if err != nil {
			return nil, nil, err
		}
		right, rmoved, err = e.redistribute(right, p.RightKey)
		if err != nil {
			return nil, nil, err
		}
		moved += lmoved + rmoved
	}

	out := make([]*Chunk, c.segments)
	segTimes, err := e.parallelTimed(func(seg int) error {
		ch, jerr := e.joinSegment(seg, left.parts[seg], right.parts[seg], p.LeftKey, p.RightKey, p.Kind)
		if jerr != nil {
			return jerr
		}
		out[seg] = ch
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	rel := &relation{schema: schema, parts: out, distKey: outKey}
	op := "HashJoin"
	if p.Kind == LeftOuterJoin {
		op = "HashLeftJoin"
	}
	detail := fmt.Sprintf("$%d = $%d", p.LeftKey, p.RightKey)
	return rel, e.finishOp(op, detail, rel, []*OpMetrics{lm, rm}, moved, segTimes, start), nil
}

// broadcastAll replicates a relation onto every segment (broadcast
// motion), charging the replication traffic to the shuffle statistics at
// the wire width and returning it.
func (c *Cluster) broadcastAll(in *relation) (*relation, int64) {
	all := concatChunks(len(in.schema), in.parts)
	parts := make([]*Chunk, c.segments)
	for i := range parts {
		parts[i] = all
	}
	bytes := int64(all.length) * int64(len(in.schema)) * DatumWireSize
	moved := bytes * int64(c.segments-1)
	c.addShuffleBytes(moved)
	return &relation{schema: in.schema, parts: parts, distKey: NoDistKey}, moved
}
