package engine

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"time"

	"dbcc/internal/xrand"
)

// relation is an in-flight distributed intermediate result: one columnar
// chunk per segment. Rows exist only at the storage boundary — Scan
// converts stored rows into chunks and CreateTableAs/Query convert back —
// so every operator between the boundaries runs on flat column arrays.
type relation struct {
	schema  Schema
	parts   []*Chunk
	distKey int // column the rows are currently hash-distributed by, or NoDistKey
}

// rows returns the total row count across segments.
func (r *relation) rows() int64 {
	var n int64
	for _, ch := range r.parts {
		n += int64(ch.length)
	}
	return n
}

// CreateTableAs executes the plan, materialises its output as a new table
// hash-distributed by column distKey (NoDistKey for arbitrary placement),
// and returns the number of rows written — the value the paper's driver
// script reads from every query to detect termination.
func (c *Cluster) CreateTableAs(name string, p Plan, distKey int) (int64, error) {
	return c.CreateTableAsCtx(context.Background(), name, p, distKey)
}

// CreateTableAsCtx is CreateTableAs executing under a context: cancelling
// ctx (or exceeding Options.QueryTimeout) aborts the statement between
// operators and between segment tasks, draining in-flight tasks before
// returning.
func (c *Cluster) CreateTableAsCtx(ctx context.Context, name string, p Plan, distKey int) (rows int64, err error) {
	defer recoverToError("create table "+name, &err)
	c.beginStatement()
	defer c.endStatement()
	ctx, cancel := c.statementContext(ctx)
	defer cancel()
	// Fast-fail before executing; the authoritative check is the atomic
	// publish below (another session may create the name meanwhile).
	if _, exists := c.Table(name); exists {
		return 0, fmt.Errorf("engine: table %q already exists", name)
	}
	start := time.Now()
	e := c.newExecEnv(ctx)
	defer e.close()
	rel, root, err := e.exec(p)
	if err != nil {
		return 0, err
	}
	var placeShuffle int64
	if distKey != NoDistKey {
		if distKey < 0 || distKey >= len(rel.schema) {
			return 0, fmt.Errorf("engine: distribution key %d out of range for %v", distKey, rel.schema)
		}
		rel, placeShuffle, err = e.redistribute(rel, distKey)
		if err != nil {
			return 0, err
		}
	}
	parts := make([][]Row, c.segments)
	err = e.parallel(func(seg int) error {
		parts[seg] = chunkToRows(rel.parts[seg])
		return nil
	})
	if err != nil {
		return 0, err
	}
	// The placement shuffle and row conversion ran after the plan's root
	// operator finished; fold their fault counters into the root node so
	// the trace accounts for every retry of the statement.
	e.drainFaultCounters(root)
	t := &Table{Name: name, Schema: rel.schema, DistKey: distKey, Parts: parts}
	c.mu.Lock()
	if _, exists := c.tables[name]; exists {
		c.mu.Unlock()
		return 0, fmt.Errorf("engine: table %q already exists", name)
	}
	c.tables[name] = t
	c.mu.Unlock()
	c.plans.invalidate(name)
	c.accountWrite("create "+name, t.Rows(), t.Bytes())
	c.chargeProfileOverhead()
	c.addTrace(TraceRecord{
		Kind:    "create",
		Target:  name,
		Plan:    p.String(),
		Rows:    t.Rows(),
		Bytes:   t.Bytes(),
		Shuffle: root.TotalShuffle() + placeShuffle,
		Start:   start,
		Elapsed: time.Since(start),
		Root:    root,
	})
	return t.Rows(), nil
}

// Query executes the plan and gathers all result rows onto the coordinator,
// along with the output schema. Unlike CreateTableAs it does not write a
// table and therefore does not count toward the write statistics, but it
// does count as a query.
func (c *Cluster) Query(p Plan) (Schema, []Row, error) {
	schema, rows, _, err := c.QueryAnalyzeCtx(context.Background(), p)
	return schema, rows, err
}

// QueryCtx is Query executing under a context (see CreateTableAsCtx).
func (c *Cluster) QueryCtx(ctx context.Context, p Plan) (Schema, []Row, error) {
	schema, rows, _, err := c.QueryAnalyzeCtx(ctx, p)
	return schema, rows, err
}

// QueryAnalyze is Query returning additionally the per-operator execution
// profile of the run — the engine half of EXPLAIN ANALYZE.
func (c *Cluster) QueryAnalyze(p Plan) (Schema, []Row, *OpMetrics, error) {
	return c.QueryAnalyzeCtx(context.Background(), p)
}

// QueryAnalyzeCtx is QueryAnalyze executing under a context (see
// CreateTableAsCtx).
func (c *Cluster) QueryAnalyzeCtx(ctx context.Context, p Plan) (_ Schema, _ []Row, _ *OpMetrics, err error) {
	defer recoverToError("query", &err)
	c.beginStatement()
	defer c.endStatement()
	ctx, cancel := c.statementContext(ctx)
	defer cancel()
	start := time.Now()
	e := c.newExecEnv(ctx)
	defer e.close()
	rel, root, err := e.exec(p)
	if err != nil {
		return nil, nil, nil, err
	}
	var out []Row
	for _, part := range rel.parts {
		out = append(out, chunkToRows(part)...)
	}
	c.statsMu.Lock()
	c.stats.Queries++
	c.statsMu.Unlock()
	c.chargeProfileOverhead()
	c.addTrace(TraceRecord{
		Kind:    "select",
		Plan:    p.String(),
		Rows:    int64(len(out)),
		Bytes:   root.Bytes,
		Shuffle: root.TotalShuffle(),
		Start:   start,
		Elapsed: time.Since(start),
		Root:    root,
	})
	return rel.schema, out, root, nil
}

// profileSink keeps the synthetic scheduling work below observable so the
// compiler cannot eliminate the loop. Updated atomically: queries charge
// their overhead concurrently.
var profileSink atomic.Uint64

// chargeProfileOverhead burns the synthetic per-query scheduling work of
// the modelled execution environment (Sec. VII-C: Spark SQL pays a fixed
// job-scheduling cost per query that a resident MPP database does not).
func (c *Cluster) chargeProfileOverhead() {
	if c.profile != ProfileSparkSQL {
		return
	}
	var acc uint64
	for i := 0; i < c.sparkW; i++ {
		acc = xrand.Mix64(acc + uint64(i))
	}
	profileSink.Add(acc)
}

// drainFaultCounters moves the environment's pending retry/fault/cancel
// and spill counters into the metrics node. Operators execute depth-first
// and sequentially within a statement, so between two finishOp calls the
// counters belong to exactly one operator.
func (e *execEnv) drainFaultCounters(m *OpMetrics) {
	m.Retries += e.opRetries.Swap(0)
	m.Faults += e.opFaults.Swap(0)
	m.Cancelled += e.opCancelled.Swap(0)
	m.Spilled += e.opSpilled.Swap(0)
	m.SpillParts += e.opSpillParts.Swap(0)
	m.SpillPasses += e.opSpillPasses.Swap(0)
	m.BloomChecked += e.opBloomChecked.Swap(0)
	m.BloomSkipped += e.opBloomSkipped.Swap(0)
}

// finishOp builds the metrics node for one executed operator: output
// volume and per-segment distribution from the produced relation, the
// operator's shuffle traffic, per-segment compute times and inclusive wall
// time since start, plus the fault-tolerance counters accumulated since the
// previous operator finished.
func (e *execEnv) finishOp(op, detail string, rel *relation, children []*OpMetrics,
	shuffle int64, segTimes []time.Duration, start time.Time) *OpMetrics {
	m := &OpMetrics{
		Op:       op,
		Detail:   detail,
		Shuffle:  shuffle,
		Elapsed:  time.Since(start),
		SegTimes: segTimes,
		Children: children,
	}
	m.SegRows = make([]int64, len(rel.parts))
	for i, p := range rel.parts {
		m.SegRows[i] = int64(p.length)
		m.Rows += int64(p.length)
	}
	m.Bytes = m.Rows * int64(len(rel.schema)) * DatumSize
	e.drainFaultCounters(m)
	return m
}

// exec evaluates a plan tree to a distributed relation, collecting one
// OpMetrics node per operator. Cancellation is checked before every
// operator; segment tasks additionally observe it between retries and
// before starting.
func (e *execEnv) exec(p Plan) (*relation, *OpMetrics, error) {
	if err := e.checkCancelled(); err != nil {
		return nil, nil, err
	}
	c := e.c
	start := time.Now()
	switch p := p.(type) {
	case ScanPlan:
		t, ok := c.Table(p.Table)
		if !ok {
			return nil, nil, fmt.Errorf("engine: table %q does not exist", p.Table)
		}
		stored := t.snapshotParts()
		parts := make([]*Chunk, c.segments)
		err := e.parallel(func(seg int) error {
			parts[seg] = rowsToChunk(stored[seg], len(t.Schema))
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
		rel := &relation{schema: t.Schema, parts: parts, distKey: t.DistKey}
		return rel, e.finishOp("Scan", p.Table, rel, nil, 0, nil, start), nil

	case ValuesPlan:
		parts := c.newParts(len(p.Cols))
		parts[0] = rowsToChunk(p.Rows, len(p.Cols))
		rel := &relation{schema: p.Cols, parts: parts, distKey: NoDistKey}
		return rel, e.finishOp("Values", "", rel, nil, 0, nil, start), nil

	case FilterPlan:
		if !c.fusionOff {
			if _, ok := p.Input.(FilterPlan); ok {
				return e.execFused(nil, p, start)
			}
		}
		in, cm, err := e.exec(p.Input)
		if err != nil {
			return nil, nil, err
		}
		out := make([]*Chunk, c.segments)
		segTimes, err := e.parallelTimed(func(seg int) error {
			ch := in.parts[seg]
			pred, err := evalVec(p.Pred, ch)
			if err != nil {
				return err
			}
			kp := getI32(ch.length)
			keep := *kp
			for r := 0; r < ch.length; r++ {
				if !pred.null(r) && pred.vals[r] != 0 {
					keep = append(keep, int32(r))
				}
			}
			out[seg] = gatherChunk(ch, keep)
			*kp = keep
			putI32(kp)
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
		rel := &relation{schema: in.schema, parts: out, distKey: in.distKey}
		return rel, e.finishOp("Filter", p.Pred.String(), rel, []*OpMetrics{cm}, 0, segTimes, start), nil

	case ProjectPlan:
		if !c.fusionOff {
			if f, ok := p.Input.(FilterPlan); ok {
				return e.execFused(&p, f, start)
			}
		}
		in, cm, err := e.exec(p.Input)
		if err != nil {
			return nil, nil, err
		}
		schema, err := p.Schema(c)
		if err != nil {
			return nil, nil, err
		}
		// A projection that passes the current distribution column through
		// unchanged preserves the distribution.
		outKey := NoDistKey
		if in.distKey != NoDistKey {
			for i, col := range p.Cols {
				if ref, ok := col.Expr.(ColRef); ok && ref.Idx == in.distKey {
					outKey = i
					break
				}
			}
		}
		out := make([]*Chunk, c.segments)
		segTimes, err := e.parallelTimed(func(seg int) error {
			ch := in.parts[seg]
			vecs := make([]colVec, len(p.Cols))
			for i, col := range p.Cols {
				v, err := evalVec(col.Expr, ch)
				if err != nil {
					return err
				}
				vecs[i] = v
			}
			out[seg] = chunkFromVecs(vecs, ch.length)
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
		rel := &relation{schema: schema, parts: out, distKey: outKey}
		return rel, e.finishOp("Project", "", rel, []*OpMetrics{cm}, 0, segTimes, start), nil

	case UnionAllPlan:
		schema, err := p.Schema(c)
		if err != nil {
			return nil, nil, err
		}
		ins := make([]*relation, 0, len(p.Inputs))
		var children []*OpMetrics
		for _, inp := range p.Inputs {
			in, cm, err := e.exec(inp)
			if err != nil {
				return nil, nil, err
			}
			children = append(children, cm)
			ins = append(ins, in)
		}
		out := make([]*Chunk, c.segments)
		err = e.parallel(func(seg int) error {
			pieces := make([]*Chunk, len(ins))
			for i, in := range ins {
				pieces[i] = in.parts[seg]
			}
			out[seg] = concatChunks(len(schema), pieces)
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
		rel := &relation{schema: schema, parts: out, distKey: NoDistKey}
		return rel, e.finishOp("UnionAll", "", rel, children, 0, nil, start), nil

	case DistinctPlan:
		in, cm, err := e.exec(p.Input)
		if err != nil {
			return nil, nil, err
		}
		shuffled, moved, err := e.redistributeByRowHash(in)
		if err != nil {
			return nil, nil, err
		}
		out := make([]*Chunk, c.segments)
		segTimes, err := e.parallelTimed(func(seg int) error {
			ch, derr := e.foldSegment(seg, shuffled.parts[seg], len(in.schema), nil, true)
			if derr != nil {
				return derr
			}
			out[seg] = ch
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
		rel := &relation{schema: in.schema, parts: out, distKey: NoDistKey}
		return rel, e.finishOp("Distinct", "", rel, []*OpMetrics{cm}, moved, segTimes, start), nil

	case SortPlan:
		return e.execSort(p, start)

	case GroupByPlan:
		return e.execGroupBy(p, start)

	case JoinPlan:
		return e.execJoin(p, start)
	}
	return nil, nil, fmt.Errorf("engine: unknown plan node %T", p)
}

// execFused executes a Project(Filter…(X)) or Filter(Filter…(X)) chain as
// one fused pipeline: the innermost predicate evaluates over the child's
// full chunk, every outer predicate evaluates only over the rows still
// selected (evalVecSel), and the projection (when present) computes its
// expressions directly over the final selection into dense output vectors.
// No intermediate filtered chunk is ever materialised — the per-operator
// gather of the unfused path disappears — yet the produced chunks are
// bit-identical to the unfused execution, and the metrics tree still
// carries one faithful node per logical operator (EXPLAIN ANALYZE output
// keeps its shape; TestQueryAnalyzeMetrics' per-node invariants hold).
// proj is nil when the chain has no projection on top.
func (e *execEnv) execFused(proj *ProjectPlan, top FilterPlan, start time.Time) (*relation, *OpMetrics, error) {
	c := e.c
	// Collect the filter chain, outermost first.
	filters := []FilterPlan{top}
	child := top.Input
	for {
		f, ok := child.(FilterPlan)
		if !ok {
			break
		}
		filters = append(filters, f)
		child = f.Input
	}
	in, cm, err := e.exec(child)
	if err != nil {
		return nil, nil, err
	}
	schema := in.schema
	outKey := in.distKey
	if proj != nil {
		schema, err = proj.Schema(c)
		if err != nil {
			return nil, nil, err
		}
		// A projection that passes the current distribution column through
		// unchanged preserves the distribution (filters never disturb it).
		outKey = NoDistKey
		if in.distKey != NoDistKey {
			for i, col := range proj.Cols {
				if ref, ok := col.Expr.(ColRef); ok && ref.Idx == in.distKey {
					outKey = i
					break
				}
			}
		}
	}
	// Surviving rows per segment after each filter, innermost filter last.
	counts := make([][]int64, len(filters))
	for i := range counts {
		counts[i] = make([]int64, c.segments)
	}
	out := make([]*Chunk, c.segments)
	segTimes, err := e.parallelTimed(func(seg int) error {
		ch := in.parts[seg]
		kp := getI32(ch.length)
		sel := (*kp)[:0]
		last := len(filters) - 1
		pv, perr := evalVec(filters[last].Pred, ch)
		if perr != nil {
			return perr
		}
		for r := 0; r < ch.length; r++ {
			if !pv.null(r) && pv.vals[r] != 0 {
				sel = append(sel, int32(r))
			}
		}
		counts[last][seg] = int64(len(sel))
		for fi := last - 1; fi >= 0; fi-- {
			sv, serr := evalVecSel(filters[fi].Pred, ch, sel)
			if serr != nil {
				return serr
			}
			kept := sel[:0]
			for i, r := range sel {
				if !sv.null(i) && sv.vals[i] != 0 {
					kept = append(kept, r)
				}
			}
			sel = kept
			counts[fi][seg] = int64(len(sel))
		}
		if proj == nil {
			out[seg] = gatherChunk(ch, sel)
		} else {
			vecs := make([]colVec, len(proj.Cols))
			for i, col := range proj.Cols {
				v, verr := evalVecSel(col.Expr, ch, sel)
				if verr != nil {
					return verr
				}
				vecs[i] = v
			}
			out[seg] = chunkFromVecs(vecs, len(sel))
		}
		*kp = sel
		putI32(kp)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	// Rebuild the per-operator metrics chain from the inside out; every
	// logical Filter gets its own node with its measured selectivity.
	inWidth := int64(len(in.schema))
	node := cm
	for fi := len(filters) - 1; fi >= 0; fi-- {
		var rows int64
		for _, k := range counts[fi] {
			rows += k
		}
		node = &OpMetrics{
			Op:       "Filter",
			Detail:   filters[fi].Pred.String(),
			Rows:     rows,
			Bytes:    rows * inWidth * DatumSize,
			Elapsed:  time.Since(start),
			SegRows:  counts[fi],
			Children: []*OpMetrics{node},
		}
	}
	rel := &relation{schema: schema, parts: out, distKey: outKey}
	if proj == nil {
		// The outermost Filter produced rel; let finishOp build its node (so
		// the fault counters drain there) on top of the inner chain.
		return rel, e.finishOp("Filter", filters[0].Pred.String(), rel, node.Children, 0, segTimes, start), nil
	}
	return rel, e.finishOp("Project", "", rel, []*OpMetrics{node}, 0, segTimes, start), nil
}

// newParts allocates a per-segment chunk set of empty chunks.
func (c *Cluster) newParts(ncols int) []*Chunk {
	parts := make([]*Chunk, c.segments)
	for i := range parts {
		parts[i] = newChunk(ncols, 0)
	}
	return parts
}

// redistribute hash-shuffles a relation so rows are placed by column key,
// returning the bytes moved between segments.
func (e *execEnv) redistribute(in *relation, key int) (*relation, int64, error) {
	if in.distKey == key {
		return in, 0, nil
	}
	segs := uint64(e.c.segments)
	return e.shuffle(in, func(ch *Chunk, r int) int {
		if ch.nulls[key].get(r) {
			return 0
		}
		return int(xrand.Mix64(uint64(ch.cols[key][r])) % segs)
	}, key)
}

// redistributeBloom hash-shuffles the probe side of an inner join by its
// join key, dropping rows that cannot have a build-side match — NULL keys
// (which never match an inner join) and bloom-filter misses — before they
// cross segments. Returns the relation, the bytes moved, and the
// counterfactual bytes the pruned rows would have moved.
func (e *execEnv) redistributeBloom(in *relation, key int, bf *bloomFilter) (*relation, int64, int64, error) {
	rel, moved, saved, _, err := e.shuffleFiltered(in, bloomDest(e, key), bloomKeep(key, bf), key, false)
	return rel, moved, saved, err
}

// redistributeBloomOuter hash-shuffles the probe side of a left outer
// join, diverting rows that cannot have a build-side match — NULL keys and
// bloom-filter misses — into per-source bypass chunks instead of moving
// them: the join emits those rows NULL-padded at their source segment, so
// they never cross the interconnect at all. The output row multiset is
// identical to the plain plan's; only row placement differs, so the caller
// must drop the output relation's distribution claim.
func (e *execEnv) redistributeBloomOuter(in *relation, key int, bf *bloomFilter) (*relation, int64, []*Chunk, error) {
	rel, moved, _, bypass, err := e.shuffleFiltered(in, bloomDest(e, key), bloomKeep(key, bf), key, true)
	return rel, moved, bypass, err
}

// bloomDest is the plain hash-shuffle destination function for a join key
// (NULL keys land on segment 0, matching redistribute).
func bloomDest(e *execEnv, key int) func(ch *Chunk, r int) int {
	segs := uint64(e.c.segments)
	return func(ch *Chunk, r int) int {
		if ch.nulls[key].get(r) {
			return 0
		}
		return int(xrand.Mix64(uint64(ch.cols[key][r])) % segs)
	}
}

// bloomKeep keeps the probe rows that may still match: non-NULL keys the
// build-side bloom filter does not rule out.
func bloomKeep(key int, bf *bloomFilter) func(ch *Chunk, r int) bool {
	return func(ch *Chunk, r int) bool {
		return !ch.nulls[key].get(r) && bf.mayContain(ch.cols[key][r])
	}
}

// joinBloomFilter builds the build-side bloom filter of a hash join when
// pruning can pay: bloom joins enabled, a kind the engine knows how to
// prune (inner joins drop non-matching probe rows; left outer joins divert
// them around the shuffle), the probe side actually has to move, and
// neither side is empty. Each segment fills a partial filter over its
// share of the build keys (idempotent under task retry — adding a key
// twice sets the same bits), and the partials OR-merge into the one filter
// every probe-side source segment tests during the shuffle. Returns nil
// when pruning does not apply.
func (e *execEnv) joinBloomFilter(p JoinPlan, left, right *relation) (*bloomFilter, error) {
	if e.c.bloomOff || (p.Kind != InnerJoin && p.Kind != LeftOuterJoin) || left.distKey == p.LeftKey {
		return nil, nil
	}
	nbuild := right.rows()
	if nbuild == 0 || left.rows() == 0 {
		return nil, nil
	}
	partials := make([]*bloomFilter, len(right.parts))
	err := e.parallel(func(seg int) error {
		ch := right.parts[seg]
		f := newBloomFilter(nbuild)
		keys := ch.cols[p.RightKey]
		nulls := ch.nulls[p.RightKey]
		for r := 0; r < ch.length; r++ {
			if !nulls.get(r) {
				f.add(keys[r])
			}
		}
		partials[seg] = f
		return nil
	})
	if err != nil {
		return nil, err
	}
	bf := partials[0]
	for _, f := range partials[1:] {
		bf.merge(f)
	}
	return bf, nil
}

// redistributeByRowHash shuffles by a hash of the whole row (for DISTINCT).
func (e *execEnv) redistributeByRowHash(in *relation) (*relation, int64, error) {
	ncols := len(in.schema)
	segs := uint64(e.c.segments)
	return e.shuffle(in, func(ch *Chunk, r int) int {
		return int(chunkRowHash(ch, 0, ncols, r) % segs)
	}, NoDistKey)
}

// shuffle moves every row to the segment chosen by dest, recording the
// network traffic in the statistics and returning it for per-operator
// accounting.
func (e *execEnv) shuffle(in *relation, dest func(ch *Chunk, r int) int, newKey int) (*relation, int64, error) {
	rel, moved, _, _, err := e.shuffleFiltered(in, dest, nil, newKey, false)
	return rel, moved, err
}

// shuffleFiltered is the radix-partitioned shuffle kernel behind every
// redistribution. Each source segment maps its rows to destinations, then
// radixPartitionChunk scatters them column-at-a-time into per-destination
// buckets backed by one pooled flat array; each destination concatenates
// its incoming buckets, after which the pooled backings are released. Rows
// that change segments are charged DatumWireSize bytes per value, the
// width of the canonical row encoding; output rows arrive in source-major
// order, stable within each source — both bit-identical to the historical
// counting shuffle (pinned by TestShuffleMatchesReference and the radix
// differential tests). Each task publishes into its own slot only when it
// completes, so a retried or cancelled task never leaves partial state
// behind.
//
// keep, when non-nil, is the bloom-join prune: rows for which it returns
// false are dropped before they are placed or charged. The returned
// pruned count is the exact counterfactual traffic — the bytes the dropped
// rows would have moved had they shuffled — so for any input,
// moved(pruned shuffle) + pruned == moved(plain shuffle).
//
// collect diverts pruned rows into per-source bypass chunks (the fourth
// return value, indexed by source segment) instead of discarding them —
// the left-outer-join bypass, where a pruned probe row still produces an
// output row, just without crossing the interconnect.
func (e *execEnv) shuffleFiltered(in *relation, dest func(ch *Chunk, r int) int,
	keep func(ch *Chunk, r int) bool, newKey int, collect bool) (*relation, int64, int64, []*Chunk, error) {
	ncols := len(in.schema)
	segs := e.c.segments
	// Phase 1: each source segment maps rows to destinations (dropping or
	// diverting pruned rows), then radix-partitions them into
	// per-destination buckets; with collect, bucket segs holds the pruned
	// rows of that source.
	nparts := segs
	if collect {
		nparts++
	}
	buckets := make([][]*Chunk, segs) // [src][dst]
	flats := make([]*[]int64, segs)   // pooled bucket backings, released after phase 2
	moved := make([]int64, segs)
	pruned := make([]int64, segs)
	err := e.parallel(func(src int) error {
		ch := in.parts[src]
		n := ch.length
		dp := getI32(n)
		dests := (*dp)[:n]
		rowBytes := int64(ncols) * DatumWireSize
		var movedHere, prunedHere int64
		for r := 0; r < n; r++ {
			d := dest(ch, r)
			if keep != nil && !keep(ch, r) {
				if collect {
					dests[r] = int32(segs)
				} else {
					dests[r] = -1
				}
				if d != src {
					prunedHere += rowBytes
				}
				continue
			}
			dests[r] = int32(d)
			if d != src {
				movedHere += rowBytes
			}
		}
		b, flat := radixPartitionChunk(ch, dests, nparts)
		*dp = dests
		putI32(dp)
		moved[src] = movedHere
		pruned[src] = prunedHere
		buckets[src] = b
		flats[src] = flat
		return nil
	})
	releaseFlats := func() {
		for _, fp := range flats {
			if fp != nil {
				putI64(fp)
			}
		}
	}
	if err != nil {
		releaseFlats()
		return nil, 0, 0, nil, err
	}
	// Phase 2: each destination concatenates its incoming buckets, copying
	// them out of the pooled backings; with collect, each source also
	// copies out its own bypass bucket.
	out := make([]*Chunk, segs)
	var bypass []*Chunk
	if collect {
		bypass = make([]*Chunk, segs)
	}
	err = e.parallel(func(dst int) error {
		pieces := make([]*Chunk, segs)
		for src := 0; src < segs; src++ {
			pieces[src] = buckets[src][dst]
		}
		out[dst] = concatChunks(ncols, pieces)
		if collect {
			bypass[dst] = concatChunks(ncols, buckets[dst][segs:segs+1])
		}
		return nil
	})
	releaseFlats()
	if err != nil {
		return nil, 0, 0, nil, err
	}
	var total, saved int64
	for i := range moved {
		total += moved[i]
		saved += pruned[i]
	}
	e.c.addShuffleBytes(total)
	if saved > 0 {
		e.c.addShuffleSaved(saved)
	}
	return &relation{schema: in.schema, parts: out, distKey: newKey}, total, saved, bypass, nil
}

// encodeRow appends the canonical byte encoding of a row to buf: one null
// tag plus the 8-byte payload per value — DatumWireSize bytes per column,
// the width shuffle accounting charges (TestWireWidthAgreement locks the
// two together).
func encodeRow(buf []byte, row Row) []byte {
	for _, d := range row {
		if d.Null {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		var w [8]byte
		binary.LittleEndian.PutUint64(w[:], uint64(d.Int))
		buf = append(buf, w[:]...)
	}
	return buf
}

// execGroupBy evaluates a grouped aggregation. Under ProfileMPP each
// segment pre-aggregates locally before the shuffle (map-side combine);
// under ProfileSparkSQL raw rows are shuffled, as Spark SQL's planner of
// the paper's era did for this query shape.
func (e *execEnv) execGroupBy(p GroupByPlan, start time.Time) (*relation, *OpMetrics, error) {
	c := e.c
	in, cm, err := e.exec(p.Input)
	if err != nil {
		return nil, nil, err
	}
	schema, err := p.Schema(c)
	if err != nil {
		return nil, nil, err
	}
	nk := len(p.Keys)

	// aggregateParts folds partial chunks (already in key+agg layout) per
	// segment into one row per group, timing each segment's fold.
	var segTimes []time.Duration
	aggregateParts := func(parts []*Chunk) ([]*Chunk, error) {
		out := make([]*Chunk, c.segments)
		var err error
		segTimes, err = e.parallelTimed(func(seg int) error {
			ch, gerr := e.foldSegment(seg, parts[seg], nk, p.Aggs, false)
			if gerr != nil {
				return gerr
			}
			out[seg] = ch
			return nil
		})
		if err != nil {
			return nil, err
		}
		return out, nil
	}

	// Convert input chunks to partial layout.
	partial := make([]*Chunk, c.segments)
	err = e.parallel(func(seg int) error {
		ch, err := buildPartialChunk(in.parts[seg], p.Keys, p.Aggs)
		if err != nil {
			return err
		}
		partial[seg] = ch
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	rel := &relation{schema: schema, parts: partial, distKey: NoDistKey}
	if nk > 0 && in.distKey != NoDistKey && p.Keys[0] == in.distKey {
		// Grouping by the distribution column: groups are already
		// co-located (single-key distribution).
		rel.distKey = 0
	}

	if c.profile == ProfileMPP {
		rel.parts, err = aggregateParts(rel.parts) // map-side combine
		if err != nil {
			return nil, nil, err
		}
	}
	var moved int64
	if nk == 0 {
		// Global aggregate: gather everything to segment 0.
		all := concatChunks(len(schema), rel.parts)
		parts := c.newParts(len(schema))
		parts[0] = all
		rel = &relation{schema: schema, parts: parts, distKey: NoDistKey}
	} else if rel.distKey != 0 {
		segs := uint64(c.segments)
		rel, moved, err = e.shuffle(rel, func(ch *Chunk, r int) int {
			if ch.nulls[0].get(r) {
				return 0
			}
			return int(xrand.Mix64(uint64(ch.cols[0][r])) % segs)
		}, 0)
		if err != nil {
			return nil, nil, err
		}
	}
	rel.parts, err = aggregateParts(rel.parts)
	if err != nil {
		return nil, nil, err
	}
	detail := fmt.Sprintf("keys=%v aggs=%d", p.Keys, len(p.Aggs))
	return rel, e.finishOp("GroupBy", detail, rel, []*OpMetrics{cm}, moved, segTimes, start), nil
}

// execJoin evaluates a distributed hash equi-join: both sides are
// redistributed by their join keys (if not already co-located), then each
// segment joins its share with the int64-keyed open-addressing hash table
// built on the right side.
func (e *execEnv) execJoin(p JoinPlan, start time.Time) (*relation, *OpMetrics, error) {
	c := e.c
	left, lm, err := e.exec(p.Left)
	if err != nil {
		return nil, nil, err
	}
	right, rm, err := e.exec(p.Right)
	if err != nil {
		return nil, nil, err
	}
	if p.LeftKey < 0 || p.LeftKey >= len(left.schema) {
		return nil, nil, fmt.Errorf("engine: left join key %d out of range for %v", p.LeftKey, left.schema)
	}
	if p.RightKey < 0 || p.RightKey >= len(right.schema) {
		return nil, nil, fmt.Errorf("engine: right join key %d out of range for %v", p.RightKey, right.schema)
	}
	schema, err := p.Schema(c)
	if err != nil {
		return nil, nil, err
	}
	// Broadcast motion: if the build side is small enough and the probe
	// side is not already placed on its join key, replicate the build side
	// to every segment instead of shuffling both sides.
	var moved int64
	var bypass []*Chunk // per-source LOJ rows that skipped the shuffle
	outKey := p.LeftKey
	if c.broadcast > 0 && left.distKey != p.LeftKey && right.rows() <= c.broadcast {
		var bmoved int64
		right, bmoved = c.broadcastAll(right)
		moved += bmoved
		outKey = left.distKey
	} else {
		// Bloom pruning: before shuffling the probe side, build a bloom
		// filter over the build keys and handle probe rows that cannot
		// match at their source segment, so they never cross the
		// interconnect. Membership is location-independent, so the filter
		// is built on the pre-shuffle build side. For an inner join the
		// pruned rows cannot affect the output and are dropped outright.
		// For a left outer join they are diverted into per-source bypass
		// chunks and emitted NULL-padded where they already live; the
		// output row multiset is identical but placement differs, so the
		// relation loses its distribution claim. False positives merely
		// shuffle like before, so the result is the same with pruning on
		// or off.
		bf, berr := e.joinBloomFilter(p, left, right)
		if berr != nil {
			return nil, nil, berr
		}
		var lmoved, rmoved int64
		switch {
		case bf != nil && p.Kind == LeftOuterJoin:
			checked := left.rows()
			left, lmoved, bypass, err = e.redistributeBloomOuter(left, p.LeftKey, bf)
			if err != nil {
				return nil, nil, err
			}
			var diverted int64
			for _, ch := range bypass {
				diverted += int64(ch.length)
			}
			e.opBloomChecked.Add(checked)
			e.opBloomSkipped.Add(diverted)
			if diverted > 0 {
				outKey = NoDistKey
			}
		case bf != nil:
			checked := left.rows()
			left, lmoved, _, err = e.redistributeBloom(left, p.LeftKey, bf)
			if err != nil {
				return nil, nil, err
			}
			e.opBloomChecked.Add(checked)
			e.opBloomSkipped.Add(checked - left.rows())
		default:
			left, lmoved, err = e.redistribute(left, p.LeftKey)
			if err != nil {
				return nil, nil, err
			}
		}
		right, rmoved, err = e.redistribute(right, p.RightKey)
		if err != nil {
			return nil, nil, err
		}
		moved += lmoved + rmoved
	}

	out := make([]*Chunk, c.segments)
	segTimes, err := e.parallelTimed(func(seg int) error {
		ch, jerr := e.joinSegment(seg, left.parts[seg], right.parts[seg], p.LeftKey, p.RightKey, p.Kind)
		if jerr != nil {
			return jerr
		}
		if bypass != nil && bypass[seg].length > 0 {
			ch = concatChunks(len(schema), []*Chunk{ch, padRight(bypass[seg], len(right.schema))})
		}
		out[seg] = ch
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	rel := &relation{schema: schema, parts: out, distKey: outKey}
	op := "HashJoin"
	if p.Kind == LeftOuterJoin {
		op = "HashLeftJoin"
	}
	detail := fmt.Sprintf("$%d = $%d", p.LeftKey, p.RightKey)
	return rel, e.finishOp(op, detail, rel, []*OpMetrics{lm, rm}, moved, segTimes, start), nil
}

// broadcastAll replicates a relation onto every segment (broadcast
// motion), charging the replication traffic to the shuffle statistics at
// the wire width and returning it.
func (c *Cluster) broadcastAll(in *relation) (*relation, int64) {
	all := concatChunks(len(in.schema), in.parts)
	parts := make([]*Chunk, c.segments)
	for i := range parts {
		parts[i] = all
	}
	bytes := int64(all.length) * int64(len(in.schema)) * DatumWireSize
	moved := bytes * int64(c.segments-1)
	c.addShuffleBytes(moved)
	return &relation{schema: in.schema, parts: parts, distKey: NoDistKey}, moved
}
