package engine

import (
	"fmt"
	"strings"
)

// Plan is a relational operator tree. Plans are built either directly (the
// typed API used by the algorithm implementations) or by the SQL planner in
// package sql, and executed by Cluster.CreateTableAs or Cluster.Query.
//
// Plan nodes are immutable values: once built, a plan may be executed from
// several sessions concurrently. Scans resolve their table against the
// catalog at execution time and read a point-in-time snapshot of its
// partitions, so a plan sees each referenced table in exactly one state
// even while other sessions insert into it.
type Plan interface {
	// Schema resolves the output schema of the plan against the catalog.
	Schema(c *Cluster) (Schema, error)
	// String renders a one-line description of the node tree.
	String() string
}

// ScanPlan reads a stored table.
type ScanPlan struct{ Table string }

// Schema implements Plan.
func (p ScanPlan) Schema(c *Cluster) (Schema, error) {
	t, ok := c.Table(p.Table)
	if !ok {
		return nil, fmt.Errorf("engine: table %q does not exist", p.Table)
	}
	return t.Schema, nil
}

func (p ScanPlan) String() string { return "Scan(" + p.Table + ")" }

// Scan returns a plan reading the named table.
func Scan(table string) Plan { return ScanPlan{Table: table} }

// FilterPlan keeps the rows for which Pred is true.
type FilterPlan struct {
	Input Plan
	Pred  Expr
}

// Schema implements Plan.
func (p FilterPlan) Schema(c *Cluster) (Schema, error) { return p.Input.Schema(c) }

func (p FilterPlan) String() string {
	return fmt.Sprintf("Filter(%s, %s)", p.Input, p.Pred)
}

// Filter returns a filtering plan.
func Filter(in Plan, pred Expr) Plan { return FilterPlan{Input: in, Pred: pred} }

// ProjCol is one output column of a projection.
type ProjCol struct {
	Expr Expr
	Name string
}

// ProjectPlan computes an expression per output column.
type ProjectPlan struct {
	Input Plan
	Cols  []ProjCol
}

// Schema implements Plan.
func (p ProjectPlan) Schema(c *Cluster) (Schema, error) {
	if _, err := p.Input.Schema(c); err != nil {
		return nil, err
	}
	s := make(Schema, len(p.Cols))
	for i, col := range p.Cols {
		s[i] = col.Name
	}
	return s, nil
}

func (p ProjectPlan) String() string {
	var cols []string
	for _, c := range p.Cols {
		cols = append(cols, fmt.Sprintf("%s AS %s", c.Expr, c.Name))
	}
	return fmt.Sprintf("Project(%s, [%s])", p.Input, strings.Join(cols, ", "))
}

// Project returns a projection plan.
func Project(in Plan, cols ...ProjCol) Plan { return ProjectPlan{Input: in, Cols: cols} }

// JoinKind distinguishes inner from left outer joins.
type JoinKind int

// Join kinds.
const (
	InnerJoin JoinKind = iota
	LeftOuterJoin
)

// JoinPlan is a hash equi-join on one column from each side. The output
// schema is the left schema followed by the right schema; for a left outer
// join, unmatched left rows carry NULLs in the right columns. Both inputs
// are redistributed by their join keys unless already co-located, exactly
// as an MPP planner schedules a distributed hash join.
type JoinPlan struct {
	Left, Right       Plan
	LeftKey, RightKey int // column positions in the respective inputs
	Kind              JoinKind
}

// Schema implements Plan.
func (p JoinPlan) Schema(c *Cluster) (Schema, error) {
	ls, err := p.Left.Schema(c)
	if err != nil {
		return nil, err
	}
	rs, err := p.Right.Schema(c)
	if err != nil {
		return nil, err
	}
	out := make(Schema, 0, len(ls)+len(rs))
	out = append(out, ls...)
	out = append(out, rs...)
	return out, nil
}

func (p JoinPlan) String() string {
	kind := "Join"
	if p.Kind == LeftOuterJoin {
		kind = "LeftJoin"
	}
	return fmt.Sprintf("%s(%s.$%d = %s.$%d)", kind, p.Left, p.LeftKey, p.Right, p.RightKey)
}

// Join returns an inner hash equi-join plan.
func Join(left, right Plan, leftKey, rightKey int) Plan {
	return JoinPlan{Left: left, Right: right, LeftKey: leftKey, RightKey: rightKey, Kind: InnerJoin}
}

// LeftJoin returns a left outer hash equi-join plan.
func LeftJoin(left, right Plan, leftKey, rightKey int) Plan {
	return JoinPlan{Left: left, Right: right, LeftKey: leftKey, RightKey: rightKey, Kind: LeftOuterJoin}
}

// AggOp is an aggregate operator.
type AggOp int

// Aggregates supported by GroupBy. Min is the aggregate the paper's queries
// use; Max, Count and Sum round the engine out for tests and tooling.
const (
	AggMin AggOp = iota
	AggMax
	AggCount
	AggSum
)

// Agg is one aggregate output column of a GroupBy.
type Agg struct {
	Op   AggOp
	Arg  Expr // ignored for AggCount
	Name string
}

// GroupByPlan groups by key columns and computes aggregates. Output schema
// is the key columns (keeping their input names) followed by the aggregate
// columns. Under ProfileMPP, decomposable aggregates are pre-aggregated on
// each segment before the shuffle (map-side combine); under
// ProfileSparkSQL they are not, modelling the less mature optimiser.
type GroupByPlan struct {
	Input Plan
	Keys  []int
	Aggs  []Agg
}

// Schema implements Plan.
func (p GroupByPlan) Schema(c *Cluster) (Schema, error) {
	in, err := p.Input.Schema(c)
	if err != nil {
		return nil, err
	}
	out := make(Schema, 0, len(p.Keys)+len(p.Aggs))
	for _, k := range p.Keys {
		if k < 0 || k >= len(in) {
			return nil, fmt.Errorf("engine: group key %d out of range for %v", k, in)
		}
		out = append(out, in[k])
	}
	for _, a := range p.Aggs {
		out = append(out, a.Name)
	}
	return out, nil
}

func (p GroupByPlan) String() string {
	return fmt.Sprintf("GroupBy(%s, keys=%v, aggs=%d)", p.Input, p.Keys, len(p.Aggs))
}

// GroupBy returns a grouping plan.
func GroupBy(in Plan, keys []int, aggs ...Agg) Plan {
	return GroupByPlan{Input: in, Keys: keys, Aggs: aggs}
}

// DistinctPlan removes duplicate rows (SELECT DISTINCT): rows are
// redistributed by whole-row hash so each segment deduplicates its share.
type DistinctPlan struct{ Input Plan }

// Schema implements Plan.
func (p DistinctPlan) Schema(c *Cluster) (Schema, error) { return p.Input.Schema(c) }

func (p DistinctPlan) String() string { return fmt.Sprintf("Distinct(%s)", p.Input) }

// Distinct returns a duplicate-elimination plan.
func Distinct(in Plan) Plan { return DistinctPlan{Input: in} }

// UnionAllPlan concatenates inputs with identical arity.
type UnionAllPlan struct{ Inputs []Plan }

// Schema implements Plan.
func (p UnionAllPlan) Schema(c *Cluster) (Schema, error) {
	if len(p.Inputs) == 0 {
		return nil, fmt.Errorf("engine: union all of zero inputs")
	}
	first, err := p.Inputs[0].Schema(c)
	if err != nil {
		return nil, err
	}
	for _, in := range p.Inputs[1:] {
		s, err := in.Schema(c)
		if err != nil {
			return nil, err
		}
		if len(s) != len(first) {
			return nil, fmt.Errorf("engine: union all arity mismatch: %v vs %v", first, s)
		}
	}
	return first, nil
}

func (p UnionAllPlan) String() string {
	var parts []string
	for _, in := range p.Inputs {
		parts = append(parts, in.String())
	}
	return "UnionAll(" + strings.Join(parts, ", ") + ")"
}

// UnionAll returns a concatenation plan.
func UnionAll(inputs ...Plan) Plan { return UnionAllPlan{Inputs: inputs} }

// SortKey orders by one column.
type SortKey struct {
	Col  int
	Desc bool
}

// SortPlan gathers the input onto the coordinator and orders it (the final
// ORDER BY of an MPP query plan; NULLs sort first). Limit > 0 keeps only
// the first Limit rows after sorting; Limit < 0 keeps all.
type SortPlan struct {
	Input Plan
	Keys  []SortKey
	Limit int64
}

// Schema implements Plan.
func (p SortPlan) Schema(c *Cluster) (Schema, error) { return p.Input.Schema(c) }

func (p SortPlan) String() string {
	return fmt.Sprintf("Sort(%s, keys=%v, limit=%d)", p.Input, p.Keys, p.Limit)
}

// Sort returns a gather-and-order plan; pass limit < 0 for no limit.
func Sort(in Plan, keys []SortKey, limit int64) Plan {
	return SortPlan{Input: in, Keys: keys, Limit: limit}
}

// ValuesPlan produces literal rows on segment 0, used by tests and the SQL
// layer's INSERT support.
type ValuesPlan struct {
	Cols Schema
	Rows []Row
}

// Schema implements Plan.
func (p ValuesPlan) Schema(*Cluster) (Schema, error) { return p.Cols, nil }

func (p ValuesPlan) String() string { return fmt.Sprintf("Values(%d rows)", len(p.Rows)) }

// Values returns a literal-rows plan.
func Values(cols Schema, rows []Row) Plan { return ValuesPlan{Cols: cols, Rows: rows} }
