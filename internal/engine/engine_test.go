package engine

import (
	"sort"
	"testing"
)

// newTestCluster returns a small cluster for tests.
func newTestCluster(t *testing.T, segs int) *Cluster {
	t.Helper()
	return NewCluster(Options{Segments: segs})
}

// mustCreate loads rows into a fresh table.
func mustCreate(t *testing.T, c *Cluster, name string, schema Schema, distKey int, rows []Row) {
	t.Helper()
	if _, err := c.CreateTable(name, schema, distKey); err != nil {
		t.Fatal(err)
	}
	if err := c.InsertRows(name, rows); err != nil {
		t.Fatal(err)
	}
}

// pairs builds two-column rows from int64 pairs.
func pairs(vals ...[2]int64) []Row {
	rows := make([]Row, len(vals))
	for i, v := range vals {
		rows[i] = Row{I(v[0]), I(v[1])}
	}
	return rows
}

// sortRows orders rows lexicographically for comparison (NULLs first).
func sortRows(rows []Row) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		for k := range a {
			switch {
			case a[k].Null && b[k].Null:
			case a[k].Null:
				return true
			case b[k].Null:
				return false
			case a[k].Int != b[k].Int:
				return a[k].Int < b[k].Int
			}
		}
		return false
	})
}

// eqRows compares row multisets.
func eqRows(t *testing.T, got, want []Row) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("row count %d, want %d\ngot:  %v\nwant: %v", len(got), len(want), got, want)
	}
	g := append([]Row(nil), got...)
	w := append([]Row(nil), want...)
	sortRows(g)
	sortRows(w)
	for i := range g {
		for k := range g[i] {
			if g[i][k] != w[i][k] {
				t.Fatalf("row %d differs: got %v want %v", i, g[i], w[i])
			}
		}
	}
}

func TestCreateInsertRead(t *testing.T) {
	c := newTestCluster(t, 4)
	rows := pairs([2]int64{1, 2}, [2]int64{3, 4}, [2]int64{5, 6})
	mustCreate(t, c, "e", Schema{"v", "w"}, 0, rows)
	got, err := c.ReadAll("e")
	if err != nil {
		t.Fatal(err)
	}
	eqRows(t, got, rows)
}

func TestDistributionInvariant(t *testing.T) {
	// Every row must live on the segment its distribution key hashes to.
	c := newTestCluster(t, 5)
	var rows []Row
	for i := int64(0); i < 1000; i++ {
		rows = append(rows, Row{I(i), I(i * 7)})
	}
	mustCreate(t, c, "e", Schema{"v", "w"}, 0, rows)
	tab, _ := c.Table("e")
	for seg, part := range tab.Parts {
		for _, row := range part {
			if want := c.hashDatum(row[0]); want != seg {
				t.Fatalf("row %v on segment %d, want %d", row, seg, want)
			}
		}
	}
}

func TestDDLErrors(t *testing.T) {
	c := newTestCluster(t, 2)
	mustCreate(t, c, "a", Schema{"v"}, 0, nil)
	if _, err := c.CreateTable("a", Schema{"v"}, 0); err == nil {
		t.Error("duplicate CreateTable succeeded")
	}
	if err := c.DropTable("missing"); err == nil {
		t.Error("DropTable of missing table succeeded")
	}
	if err := c.RenameTable("missing", "x"); err == nil {
		t.Error("RenameTable of missing table succeeded")
	}
	mustCreate(t, c, "b", Schema{"v"}, 0, nil)
	if err := c.RenameTable("a", "b"); err == nil {
		t.Error("RenameTable onto existing table succeeded")
	}
	if err := c.RenameTable("a", "c"); err != nil {
		t.Errorf("RenameTable failed: %v", err)
	}
	if _, ok := c.Table("c"); !ok {
		t.Error("renamed table not found")
	}
	if _, ok := c.Table("a"); ok {
		t.Error("old name still present after rename")
	}
}

func TestFilterProject(t *testing.T) {
	c := newTestCluster(t, 3)
	mustCreate(t, c, "e", Schema{"v", "w"}, 0,
		pairs([2]int64{1, 10}, [2]int64{2, 20}, [2]int64{3, 30}))
	p := Project(
		Filter(Scan("e"), Bin(OpGt, Col(1), Const(15))),
		ProjCol{Expr: Col(0), Name: "v"},
		ProjCol{Expr: Bin(OpAdd, Col(1), Const(1)), Name: "w1"},
	)
	_, rows, err := c.Query(p)
	if err != nil {
		t.Fatal(err)
	}
	eqRows(t, rows, pairs([2]int64{2, 21}, [2]int64{3, 31}))
}

func TestUnionAll(t *testing.T) {
	c := newTestCluster(t, 3)
	mustCreate(t, c, "a", Schema{"v", "w"}, 0, pairs([2]int64{1, 2}))
	mustCreate(t, c, "b", Schema{"v", "w"}, 0, pairs([2]int64{1, 2}, [2]int64{3, 4}))
	_, rows, err := c.Query(UnionAll(Scan("a"), Scan("b")))
	if err != nil {
		t.Fatal(err)
	}
	eqRows(t, rows, pairs([2]int64{1, 2}, [2]int64{1, 2}, [2]int64{3, 4}))
}

func TestDistinct(t *testing.T) {
	c := newTestCluster(t, 4)
	mustCreate(t, c, "e", Schema{"v", "w"}, 0,
		pairs([2]int64{1, 2}, [2]int64{1, 2}, [2]int64{2, 1}, [2]int64{1, 3}))
	_, rows, err := c.Query(Distinct(Scan("e")))
	if err != nil {
		t.Fatal(err)
	}
	eqRows(t, rows, pairs([2]int64{1, 2}, [2]int64{2, 1}, [2]int64{1, 3}))
}

func TestDistinctWithNulls(t *testing.T) {
	c := newTestCluster(t, 4)
	mustCreate(t, c, "e", Schema{"v", "w"}, NoDistKey, []Row{
		{I(1), NullDatum}, {I(1), NullDatum}, {NullDatum, NullDatum},
	})
	_, rows, err := c.Query(Distinct(Scan("e")))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("distinct kept %d rows, want 2: %v", len(rows), rows)
	}
}

func TestGroupByMin(t *testing.T) {
	for _, profile := range []Profile{ProfileMPP, ProfileSparkSQL} {
		c := NewCluster(Options{Segments: 4, Profile: profile, SparkPerQueryWork: 1})
		mustCreate(t, c, "e", Schema{"v", "w"}, 0,
			pairs([2]int64{1, 10}, [2]int64{1, 5}, [2]int64{2, 20}, [2]int64{2, 25}, [2]int64{3, 3}))
		p := GroupBy(Scan("e"), []int{0},
			Agg{Op: AggMin, Arg: Col(1), Name: "m"},
			Agg{Op: AggMax, Arg: Col(1), Name: "x"},
			Agg{Op: AggCount, Name: "n"})
		_, rows, err := c.Query(p)
		if err != nil {
			t.Fatal(err)
		}
		want := []Row{
			{I(1), I(5), I(10), I(2)},
			{I(2), I(20), I(25), I(2)},
			{I(3), I(3), I(3), I(1)},
		}
		eqRows(t, rows, want)
	}
}

func TestGroupByGlobal(t *testing.T) {
	c := newTestCluster(t, 4)
	mustCreate(t, c, "e", Schema{"v", "w"}, 0,
		pairs([2]int64{1, 10}, [2]int64{2, 5}, [2]int64{3, 30}))
	p := GroupBy(Scan("e"), nil,
		Agg{Op: AggCount, Name: "n"},
		Agg{Op: AggMin, Arg: Col(1), Name: "m"})
	_, rows, err := c.Query(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].Int != 3 || rows[0][1].Int != 5 {
		t.Fatalf("global aggregate = %v, want [3 5]", rows)
	}
}

func TestGroupByMinIgnoresNulls(t *testing.T) {
	c := newTestCluster(t, 2)
	mustCreate(t, c, "e", Schema{"v", "w"}, NoDistKey, []Row{
		{I(1), NullDatum}, {I(1), I(7)}, {I(2), NullDatum},
	})
	p := GroupBy(Scan("e"), []int{0}, Agg{Op: AggMin, Arg: Col(1), Name: "m"})
	_, rows, err := c.Query(p)
	if err != nil {
		t.Fatal(err)
	}
	want := []Row{{I(1), I(7)}, {I(2), NullDatum}}
	eqRows(t, rows, want)
}

func TestInnerJoin(t *testing.T) {
	c := newTestCluster(t, 4)
	mustCreate(t, c, "e", Schema{"v", "w"}, 0,
		pairs([2]int64{1, 2}, [2]int64{2, 3}, [2]int64{4, 5}))
	mustCreate(t, c, "r", Schema{"v", "rep"}, 0,
		pairs([2]int64{1, 100}, [2]int64{2, 200}, [2]int64{3, 300}))
	p := Join(Scan("e"), Scan("r"), 0, 0)
	schema, rows, err := c.Query(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(schema) != 4 {
		t.Fatalf("join schema %v", schema)
	}
	want := []Row{
		{I(1), I(2), I(1), I(100)},
		{I(2), I(3), I(2), I(200)},
	}
	eqRows(t, rows, want)
}

func TestJoinDuplicateKeys(t *testing.T) {
	c := newTestCluster(t, 3)
	mustCreate(t, c, "l", Schema{"k", "a"}, 0, pairs([2]int64{1, 10}, [2]int64{1, 11}))
	mustCreate(t, c, "r", Schema{"k", "b"}, 0, pairs([2]int64{1, 20}, [2]int64{1, 21}))
	_, rows, err := c.Query(Join(Scan("l"), Scan("r"), 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("cross-match produced %d rows, want 4", len(rows))
	}
}

func TestLeftOuterJoin(t *testing.T) {
	c := newTestCluster(t, 4)
	mustCreate(t, c, "l", Schema{"v", "r"}, 0,
		pairs([2]int64{1, 5}, [2]int64{2, 6}))
	mustCreate(t, c, "rr", Schema{"v", "rep"}, 0,
		pairs([2]int64{5, 50}))
	// Join l.r = rr.v — vertex 1's representative 5 has a new rep, 2's (6) does not.
	p := LeftJoin(Scan("l"), Scan("rr"), 1, 0)
	_, rows, err := c.Query(p)
	if err != nil {
		t.Fatal(err)
	}
	want := []Row{
		{I(1), I(5), I(5), I(50)},
		{I(2), I(6), NullDatum, NullDatum},
	}
	eqRows(t, rows, want)
}

func TestJoinNullKeysNeverMatch(t *testing.T) {
	c := newTestCluster(t, 2)
	mustCreate(t, c, "l", Schema{"k"}, NoDistKey, []Row{{NullDatum}, {I(1)}})
	mustCreate(t, c, "r", Schema{"k"}, NoDistKey, []Row{{NullDatum}, {I(1)}})
	_, rows, err := c.Query(Join(Scan("l"), Scan("r"), 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("NULL keys matched: %v", rows)
	}
}

func TestCreateTableAsAndStats(t *testing.T) {
	c := newTestCluster(t, 4)
	mustCreate(t, c, "e", Schema{"v", "w"}, 0,
		pairs([2]int64{1, 2}, [2]int64{3, 4}))
	base := c.Stats()
	n, err := c.CreateTableAs("e2", Scan("e"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("rowcount %d, want 2", n)
	}
	s := c.Stats()
	if s.Queries != base.Queries+1 {
		t.Errorf("queries %d, want %d", s.Queries, base.Queries+1)
	}
	wantBytes := int64(2 * 2 * DatumSize)
	if s.BytesWritten != base.BytesWritten+wantBytes {
		t.Errorf("bytes written %d, want +%d", s.BytesWritten-base.BytesWritten, wantBytes)
	}
	if s.LiveBytes != base.LiveBytes+wantBytes {
		t.Errorf("live bytes %d", s.LiveBytes)
	}
	if err := c.DropTable("e2"); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().LiveBytes; got != base.LiveBytes {
		t.Errorf("live bytes after drop %d, want %d", got, base.LiveBytes)
	}
	if got := c.Stats().PeakBytes; got != base.LiveBytes+wantBytes {
		t.Errorf("peak bytes %d, want %d", got, base.LiveBytes+wantBytes)
	}
}

func TestGroupByMultipleKeys(t *testing.T) {
	c := newTestCluster(t, 4)
	mustCreate(t, c, "t", Schema{"a", "b", "x"}, 0, []Row{
		{I(1), I(1), I(5)}, {I(1), I(1), I(3)}, {I(1), I(2), I(9)}, {I(2), I(1), I(7)},
	})
	p := GroupBy(Scan("t"), []int{0, 1}, Agg{Op: AggMin, Arg: Col(2), Name: "m"})
	_, rows, err := c.Query(p)
	if err != nil {
		t.Fatal(err)
	}
	want := []Row{
		{I(1), I(1), I(3)},
		{I(1), I(2), I(9)},
		{I(2), I(1), I(7)},
	}
	eqRows(t, rows, want)
}

func TestStatsQueryLog(t *testing.T) {
	c := newTestCluster(t, 2)
	mustCreate(t, c, "t", Schema{"a"}, 0, []Row{{I(1)}})
	if _, err := c.CreateTableAs("t2", Scan("t"), 0); err != nil {
		t.Fatal(err)
	}
	log := c.Stats().Log
	if len(log) < 2 {
		t.Fatalf("query log has %d entries", len(log))
	}
	last := log[len(log)-1]
	if last.Label != "create t2" || last.RowsWritten != 1 {
		t.Fatalf("last log entry %+v", last)
	}
	c.ResetStats()
	if len(c.Stats().Log) != 0 {
		t.Fatal("ResetStats kept the log")
	}
}

func TestSortAndLimit(t *testing.T) {
	c := newTestCluster(t, 4)
	mustCreate(t, c, "t", Schema{"a", "b"}, 0, []Row{
		{I(3), I(1)}, {I(1), NullDatum}, {I(2), I(5)}, {I(1), I(9)},
	})
	// Ascending by a, then descending by b; NULLs first within a.
	p := Sort(Scan("t"), []SortKey{{Col: 0}, {Col: 1, Desc: true}}, -1)
	_, rows, err := c.Query(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0][0].Int != 1 || rows[1][0].Int != 1 || rows[2][0].Int != 2 || rows[3][0].Int != 3 {
		t.Fatalf("sort order wrong: %v", rows)
	}
	// Descending within a=1: 9 then NULL.
	if rows[0][1].Null || rows[0][1].Int != 9 || !rows[1][1].Null {
		t.Fatalf("secondary sort wrong: %v %v", rows[0], rows[1])
	}
	// Limit.
	_, rows, err = c.Query(Sort(Scan("t"), []SortKey{{Col: 0}}, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("limit kept %d rows", len(rows))
	}
}

func TestSumAggregateEngine(t *testing.T) {
	c := newTestCluster(t, 3)
	mustCreate(t, c, "t", Schema{"k", "x"}, 0, []Row{
		{I(1), I(10)}, {I(1), I(5)}, {I(1), NullDatum}, {I(2), NullDatum},
	})
	p := GroupBy(Scan("t"), []int{0}, Agg{Op: AggSum, Arg: Col(1), Name: "s"})
	_, rows, err := c.Query(p)
	if err != nil {
		t.Fatal(err)
	}
	want := []Row{{I(1), I(15)}, {I(2), NullDatum}}
	eqRows(t, rows, want)
}

func TestTransactionModeRetainsDroppedSpace(t *testing.T) {
	c := NewCluster(Options{Segments: 2, TransactionMode: true})
	mustCreate(t, c, "e", Schema{"v", "w"}, 0, pairs([2]int64{1, 2}, [2]int64{3, 4}))
	if _, err := c.CreateTableAs("t1", Scan("e"), 0); err != nil {
		t.Fatal(err)
	}
	liveBefore := c.Stats().LiveBytes
	if err := c.DropTable("t1"); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().LiveBytes; got != liveBefore {
		t.Fatalf("transaction mode released space on drop: %d -> %d", liveBefore, got)
	}
	if _, ok := c.Table("t1"); ok {
		t.Fatal("dropped table still in catalog")
	}
	// Peak must track cumulative writes: input + both creates.
	if _, err := c.CreateTableAs("t2", Scan("e"), 0); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.PeakBytes != s.BytesWritten {
		t.Fatalf("transaction peak %d != total written %d", s.PeakBytes, s.BytesWritten)
	}
}

func TestCreateTableAsDuplicate(t *testing.T) {
	c := newTestCluster(t, 2)
	mustCreate(t, c, "e", Schema{"v"}, 0, nil)
	if _, err := c.CreateTableAs("e", Scan("e"), 0); err == nil {
		t.Fatal("CreateTableAs over existing table succeeded")
	}
}

func TestLeastCoalesce(t *testing.T) {
	row := Row{I(5), NullDatum, I(3)}
	if got := Least(Col(0), Col(1), Col(2)).Eval(row); got.Null || got.Int != 3 {
		t.Errorf("least = %v, want 3", got)
	}
	if got := Least(Col(1)).Eval(row); !got.Null {
		t.Errorf("least of all NULL = %v, want NULL", got)
	}
	if got := Coalesce(Col(1), Col(0)).Eval(row); got.Null || got.Int != 5 {
		t.Errorf("coalesce = %v, want 5", got)
	}
	if got := Coalesce(Col(1), Col(1)).Eval(row); !got.Null {
		t.Errorf("coalesce of NULLs = %v, want NULL", got)
	}
}

func TestUDF(t *testing.T) {
	c := newTestCluster(t, 2)
	c.RegisterUDF("double", func(args []Datum) Datum {
		if args[0].Null {
			return NullDatum
		}
		return I(args[0].Int * 2)
	})
	expr, err := c.CallUDF("double", Col(0))
	if err != nil {
		t.Fatal(err)
	}
	if got := expr.Eval(Row{I(21)}); got.Int != 42 {
		t.Fatalf("udf = %v", got)
	}
	if _, err := c.CallUDF("missing"); err == nil {
		t.Fatal("missing UDF lookup succeeded")
	}
}

func TestSegmentCountIndependence(t *testing.T) {
	// Query results must not depend on the number of segments.
	rows := pairs([2]int64{1, 10}, [2]int64{1, 5}, [2]int64{2, 7}, [2]int64{9, 1},
		[2]int64{9, 4}, [2]int64{2, 2})
	var ref []Row
	for _, segs := range []int{1, 2, 7, 16} {
		c := newTestCluster(t, segs)
		mustCreate(t, c, "e", Schema{"v", "w"}, 0, rows)
		p := GroupBy(Scan("e"), []int{0}, Agg{Op: AggMin, Arg: Col(1), Name: "m"})
		_, got, err := c.Query(p)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = got
			continue
		}
		eqRows(t, got, ref)
	}
}

func TestShuffleBytesAccounting(t *testing.T) {
	c := newTestCluster(t, 4)
	var rows []Row
	for i := int64(0); i < 100; i++ {
		rows = append(rows, Row{I(i), I(i + 1)})
	}
	mustCreate(t, c, "e", Schema{"v", "w"}, 0, rows)
	// Re-distributing by column 1 must move some rows.
	if _, err := c.CreateTableAs("e2", Scan("e"), 1); err != nil {
		t.Fatal(err)
	}
	if c.Stats().ShuffleBytes == 0 {
		t.Error("redistribution recorded no shuffle traffic")
	}
}
