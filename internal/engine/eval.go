package engine

import "fmt"

// Vectorized expression evaluation over chunks. evalVec computes an
// expression once per chunk instead of once per row: column references
// alias the input column (zero copies), arithmetic and comparisons run as
// tight loops over flat []int64 with word-wise null propagation, and only
// genuinely row-oriented expressions (UDF calls, unknown Expr
// implementations) fall back to a scalar loop — with a reused argument
// buffer, so even the fallback allocates per chunk, not per row.
//
// Evaluation is fallible: a malformed plan (an unknown operator smuggled
// into a BinExpr) surfaces as a returned error that fails its query, never
// as a process-killing panic.

// colVec is one evaluated expression column: values plus an optional null
// bitmap (nil = no NULLs), the same layout as a chunk column.
type colVec struct {
	vals  []int64
	nulls nullBitmap
}

// null reports whether row i of the vector is NULL.
func (v colVec) null(i int) bool { return v.nulls.get(i) }

// datum materialises row i as a Datum.
func (v colVec) datum(i int) Datum {
	if v.nulls.get(i) {
		return NullDatum
	}
	return Datum{Int: v.vals[i]}
}

// setNull marks row i NULL, allocating the bitmap lazily.
func (v *colVec) setNull(i, n int) {
	if v.nulls == nil {
		v.nulls = newNullBitmap(n)
	}
	v.nulls.set(i)
}

// orNulls unions two null bitmaps (NULL if either side is NULL) sized for
// n rows; nil in, nil out when both sides are all-valid.
func orNulls(a, b nullBitmap, n int) nullBitmap {
	if a == nil && b == nil {
		return nil
	}
	out := newNullBitmap(n)
	for i := range out {
		var w uint64
		if i < len(a) {
			w |= a[i]
		}
		if i < len(b) {
			w |= b[i]
		}
		out[i] = w
	}
	return out
}

// evalVec evaluates e over every row of ch.
func evalVec(e Expr, ch *Chunk) (colVec, error) {
	n := ch.length
	switch e := e.(type) {
	case ColRef:
		return colVec{vals: ch.cols[e.Idx], nulls: ch.nulls[e.Idx]}, nil

	case ConstExpr:
		vals := make([]int64, n)
		if e.Val.Null {
			nb := newNullBitmap(n)
			for i := range nb {
				nb[i] = ^uint64(0)
			}
			return colVec{vals: vals, nulls: nb}, nil
		}
		if e.Val.Int != 0 {
			for i := range vals {
				vals[i] = e.Val.Int
			}
		}
		return colVec{vals: vals}, nil

	case BinExpr:
		return evalBinVec(e, ch)

	case IsNullExpr:
		arg, err := evalVec(e.Arg, ch)
		if err != nil {
			return colVec{}, err
		}
		out := colVec{vals: make([]int64, n)}
		for i := 0; i < n; i++ {
			isNull := arg.null(i)
			if e.Negate {
				isNull = !isNull
			}
			if isNull {
				out.vals[i] = 1
			}
		}
		return out, nil

	case CoalesceExpr:
		args, err := evalArgVecs(e.Args, ch)
		if err != nil {
			return colVec{}, err
		}
		out := colVec{vals: make([]int64, n)}
		for i := 0; i < n; i++ {
			hit := false
			for _, a := range args {
				if !a.null(i) {
					out.vals[i] = a.vals[i]
					hit = true
					break
				}
			}
			if !hit {
				out.setNull(i, n)
			}
		}
		return out, nil

	case LeastExpr:
		args, err := evalArgVecs(e.Args, ch)
		if err != nil {
			return colVec{}, err
		}
		out := colVec{vals: make([]int64, n)}
		for i := 0; i < n; i++ {
			hit := false
			var best int64
			for _, a := range args {
				if a.null(i) {
					continue
				}
				if v := a.vals[i]; !hit || v < best {
					best, hit = v, true
				}
			}
			if hit {
				out.vals[i] = best
			} else {
				out.setNull(i, n)
			}
		}
		return out, nil

	case UDFExpr:
		args, err := evalArgVecs(e.Args, ch)
		if err != nil {
			return colVec{}, err
		}
		argBuf := make([]Datum, len(args))
		out := colVec{vals: make([]int64, n)}
		for i := 0; i < n; i++ {
			for j := range args {
				argBuf[j] = args[j].datum(i)
			}
			d := e.Fn(argBuf)
			if d.Null {
				out.setNull(i, n)
			} else {
				out.vals[i] = d.Int
			}
		}
		return out, nil

	default:
		// Unknown Expr implementation: reconstruct each row into a scratch
		// buffer and evaluate the row-oriented interface.
		scratch := make(Row, len(ch.cols))
		out := colVec{vals: make([]int64, n)}
		for i := 0; i < n; i++ {
			for c := range scratch {
				scratch[c] = ch.datum(c, i)
			}
			d := e.Eval(scratch)
			if d.Null {
				out.setNull(i, n)
			} else {
				out.vals[i] = d.Int
			}
		}
		return out, nil
	}
}

// evalArgVecs evaluates an argument list.
func evalArgVecs(args []Expr, ch *Chunk) ([]colVec, error) {
	out := make([]colVec, len(args))
	for i, a := range args {
		v, err := evalVec(a, ch)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// evalVecSel evaluates e over only the selected rows of ch, producing a
// dense vector of len(sel) values: output row i corresponds to input row
// sel[i], and evalVecSel(e, ch, sel) row i equals evalVec(e, ch) row
// sel[i] exactly (values, NULLs and errors). It is the fused pipeline's
// evaluator (see execFused): outer filters and projections over an
// already-filtered chunk compute just the surviving rows instead of
// gathering them into an intermediate chunk first.
func evalVecSel(e Expr, ch *Chunk, sel []int32) (colVec, error) {
	n := len(sel)
	switch e := e.(type) {
	case ColRef:
		src, nb := ch.cols[e.Idx], ch.nulls[e.Idx]
		out := colVec{vals: make([]int64, n)}
		if nb == nil {
			for i, r := range sel {
				out.vals[i] = src[r]
			}
			return out, nil
		}
		for i, r := range sel {
			if nb.get(int(r)) {
				out.setNull(i, n)
			} else {
				out.vals[i] = src[r]
			}
		}
		return out, nil

	case ConstExpr:
		vals := make([]int64, n)
		if e.Val.Null {
			nb := newNullBitmap(n)
			for i := range nb {
				nb[i] = ^uint64(0)
			}
			return colVec{vals: vals, nulls: nb}, nil
		}
		if e.Val.Int != 0 {
			for i := range vals {
				vals[i] = e.Val.Int
			}
		}
		return colVec{vals: vals}, nil

	case BinExpr:
		l, err := evalVecSel(e.Left, ch, sel)
		if err != nil {
			return colVec{}, err
		}
		r, err := evalVecSel(e.Right, ch, sel)
		if err != nil {
			return colVec{}, err
		}
		return combineBinVec(e.Op, l, r, n)

	default:
		// Row-oriented fallback (UDF calls, IS NULL, COALESCE, unknown Expr
		// implementations): reconstruct each selected row and evaluate the
		// row interface. Rare in hot filter chains; the semantics match the
		// scalar evaluator by construction.
		scratch := make(Row, len(ch.cols))
		out := colVec{vals: make([]int64, n)}
		for i, r := range sel {
			for c := range scratch {
				scratch[c] = ch.datum(c, int(r))
			}
			d := e.Eval(scratch)
			if d.Null {
				out.setNull(i, n)
			} else {
				out.vals[i] = d.Int
			}
		}
		return out, nil
	}
}

// evalBinVec evaluates a binary operator column-at-a-time. Comparisons and
// arithmetic propagate NULL by bitmap union; AND/OR run a scalar loop for
// SQL's three-valued logic, mirroring BinExpr.Eval exactly.
func evalBinVec(e BinExpr, ch *Chunk) (colVec, error) {
	l, err := evalVec(e.Left, ch)
	if err != nil {
		return colVec{}, err
	}
	r, err := evalVec(e.Right, ch)
	if err != nil {
		return colVec{}, err
	}
	return combineBinVec(e.Op, l, r, ch.length)
}

// combineBinVec combines two evaluated operand vectors of length n under a
// binary operator — the shared back half of evalBinVec and evalVecSel.
func combineBinVec(op BinOp, l, r colVec, n int) (colVec, error) {
	out := colVec{vals: make([]int64, n)}

	switch op {
	case OpAnd:
		for i := 0; i < n; i++ {
			ln, rn := l.null(i), r.null(i)
			switch {
			case !ln && l.vals[i] == 0 || !rn && r.vals[i] == 0:
				// false AND anything = false
			case ln || rn:
				out.setNull(i, n)
			default:
				out.vals[i] = 1
			}
		}
		return out, nil
	case OpOr:
		for i := 0; i < n; i++ {
			ln, rn := l.null(i), r.null(i)
			switch {
			case !ln && l.vals[i] != 0 || !rn && r.vals[i] != 0:
				out.vals[i] = 1
			case ln || rn:
				out.setNull(i, n)
			}
		}
		return out, nil
	}

	out.nulls = orNulls(l.nulls, r.nulls, n)
	lv, rv, ov := l.vals, r.vals, out.vals
	switch op {
	case OpAdd:
		for i := 0; i < n; i++ {
			ov[i] = lv[i] + rv[i]
		}
	case OpSub:
		for i := 0; i < n; i++ {
			ov[i] = lv[i] - rv[i]
		}
	case OpEq:
		for i := 0; i < n; i++ {
			if lv[i] == rv[i] {
				ov[i] = 1
			}
		}
	case OpNe:
		for i := 0; i < n; i++ {
			if lv[i] != rv[i] {
				ov[i] = 1
			}
		}
	case OpLt:
		for i := 0; i < n; i++ {
			if lv[i] < rv[i] {
				ov[i] = 1
			}
		}
	case OpLe:
		for i := 0; i < n; i++ {
			if lv[i] <= rv[i] {
				ov[i] = 1
			}
		}
	case OpGt:
		for i := 0; i < n; i++ {
			if lv[i] > rv[i] {
				ov[i] = 1
			}
		}
	case OpGe:
		for i := 0; i < n; i++ {
			if lv[i] >= rv[i] {
				ov[i] = 1
			}
		}
	default:
		return colVec{}, fmt.Errorf("engine: unknown binary operator %d in vectorized eval", op)
	}
	return out, nil
}

// chunkFromVecs assembles evaluated columns into a chunk; column slices
// are aliased, not copied (chunks and vectors are immutable).
func chunkFromVecs(vecs []colVec, n int) *Chunk {
	ch := &Chunk{
		length: n,
		cols:   make([][]int64, len(vecs)),
		nulls:  make([]nullBitmap, len(vecs)),
	}
	for i, v := range vecs {
		ch.cols[i] = v.vals
		ch.nulls[i] = v.nulls
	}
	return ch
}
