package engine

import (
	"context"
	"testing"
)

// TestWireWidthAgreement locks the two places that model the interconnect
// row width together: encodeRow (the canonical byte encoding) and
// DatumWireSize (the width shuffle and broadcast accounting charge per
// value). If either changes without the other, shuffle statistics would
// silently stop describing the encoded traffic.
func TestWireWidthAgreement(t *testing.T) {
	rows := []Row{
		{},
		{I(1)},
		{I(1), NullDatum, I(-7)},
		{NullDatum, NullDatum, NullDatum, NullDatum},
	}
	for _, row := range rows {
		got := len(encodeRow(nil, row))
		want := len(row) * DatumWireSize
		if got != want {
			t.Errorf("encodeRow emitted %d bytes for %d columns, want %d (DatumWireSize=%d)",
				got, len(row), want, DatumWireSize)
		}
	}
}

// TestShuffleChargesWireSize asserts the shuffle kernel charges exactly
// rows-moved × columns × DatumWireSize.
func TestShuffleChargesWireSize(t *testing.T) {
	c := NewCluster(Options{Segments: 4})
	in := &relation{
		schema:  Schema{"a", "b"},
		parts:   make([]*Chunk, 4),
		distKey: NoDistKey,
	}
	// 10 rows on segment 0; send rows 0-6 to segment 1, keep rows 7-9 home.
	rows := make([]Row, 10)
	for i := range rows {
		rows[i] = Row{I(int64(i)), I(int64(2 * i))}
	}
	in.parts[0] = rowsToChunk(rows, 2)
	for s := 1; s < 4; s++ {
		in.parts[s] = newChunk(2, 0)
	}
	out, moved, err := c.newExecEnv(context.Background()).shuffle(in, func(ch *Chunk, r int) int {
		if ch.length == 0 {
			return 0
		}
		if ch.cols[0][r] < 7 {
			return 1
		}
		return 0
	}, NoDistKey)
	if err != nil {
		t.Fatalf("shuffle: %v", err)
	}
	want := int64(7) * 2 * DatumWireSize
	if moved != want {
		t.Fatalf("shuffle charged %d bytes, want %d", moved, want)
	}
	if got := out.parts[1].Len(); got != 7 {
		t.Fatalf("segment 1 received %d rows, want 7", got)
	}
	if got := out.parts[0].Len(); got != 3 {
		t.Fatalf("segment 0 kept %d rows, want 3", got)
	}
	if s := c.Stats(); s.ShuffleBytes != want {
		t.Fatalf("Stats.ShuffleBytes = %d, want %d", s.ShuffleBytes, want)
	}
}

func TestRowsChunkRoundTrip(t *testing.T) {
	rows := []Row{
		{I(1), NullDatum, I(3)},
		{NullDatum, I(5), I(-6)},
		{I(0), I(0), NullDatum},
	}
	ch := rowsToChunk(rows, 3)
	if ch.Len() != 3 {
		t.Fatalf("chunk length = %d, want 3", ch.Len())
	}
	back := chunkToRows(ch)
	if len(back) != len(rows) {
		t.Fatalf("round trip returned %d rows, want %d", len(back), len(rows))
	}
	for r := range rows {
		for c := range rows[r] {
			if back[r][c] != rows[r][c] {
				t.Errorf("row %d col %d: got %+v, want %+v", r, c, back[r][c], rows[r][c])
			}
		}
	}
	// NULLs must come back exactly as NullDatum (zero payload) so Datum ==
	// comparisons keep working downstream.
	if back[0][1] != NullDatum {
		t.Errorf("NULL round trip produced %+v, want NullDatum", back[0][1])
	}
	if got := chunkToRows(newChunk(3, 0)); got != nil {
		t.Errorf("empty chunk converted to %v, want nil", got)
	}
}

func TestGatherAndConcat(t *testing.T) {
	rows := []Row{{I(10), NullDatum}, {I(20), I(2)}, {I(30), NullDatum}, {I(40), I(4)}}
	ch := rowsToChunk(rows, 2)
	g := gatherChunk(ch, []int32{3, 0})
	want := []Row{{I(40), I(4)}, {I(10), NullDatum}}
	got := chunkToRows(g)
	for r := range want {
		for c := range want[r] {
			if got[r][c] != want[r][c] {
				t.Errorf("gather row %d col %d: got %+v, want %+v", r, c, got[r][c], want[r][c])
			}
		}
	}

	cc := concatChunks(2, []*Chunk{g, newChunk(2, 0), ch})
	if cc.Len() != 6 {
		t.Fatalf("concat length = %d, want 6", cc.Len())
	}
	all := append(append([]Row{}, want...), rows...)
	cr := chunkToRows(cc)
	for r := range all {
		for c := range all[r] {
			if cr[r][c] != all[r][c] {
				t.Errorf("concat row %d col %d: got %+v, want %+v", r, c, cr[r][c], all[r][c])
			}
		}
	}
}

func TestNullBitmapLazyGrowth(t *testing.T) {
	b := newChunkBuilder(1, 0)
	b.appendCol(0, 7, false)
	b.n++
	b.appendCol(0, 0, true)
	b.n++
	b.appendCol(0, 9, false)
	b.n++
	// Probing far past the lazily grown bitmap must read as non-NULL, not
	// panic: kernels compare admitted builder rows against arbitrary input
	// rows.
	for i := 200; i < 203; i++ {
		if b.nulls[0].get(i) {
			t.Errorf("row %d reads NULL from a bitmap that never covered it", i)
		}
	}
	ch := b.finish()
	wantNull := []bool{false, true, false}
	for i, wn := range wantNull {
		if ch.nulls[0].get(i) != wn {
			t.Errorf("row %d null = %v, want %v", i, !wn, wn)
		}
	}
}

func TestBuilderMergeAgg(t *testing.T) {
	type step struct {
		v    int64
		null bool
	}
	cases := []struct {
		op       AggOp
		steps    []step
		want     int64
		wantNull bool
	}{
		{AggMin, []step{{5, false}, {3, false}, {9, false}}, 3, false},
		{AggMin, []step{{5, true}, {3, true}}, 0, true},
		{AggMin, []step{{5, true}, {4, false}}, 4, false},
		{AggMax, []step{{5, false}, {3, false}, {9, false}}, 9, false},
		{AggMax, []step{{1, true}}, 0, true},
		{AggSum, []step{{5, false}, {0, true}, {9, false}}, 14, false},
		{AggSum, []step{{2, true}, {2, true}}, 0, true},
		{AggCount, []step{{1, false}, {0, false}, {1, false}}, 2, false},
	}
	for i, tc := range cases {
		b := newChunkBuilder(1, 0)
		b.appendCol(0, 0, true) // fresh state starts NULL
		b.n++
		for _, s := range tc.steps {
			b.mergeAgg(0, 0, tc.op, s.v, s.null)
		}
		gotNull := b.nulls[0].get(0)
		if gotNull != tc.wantNull {
			t.Errorf("case %d: state null = %v, want %v", i, gotNull, tc.wantNull)
			continue
		}
		if !gotNull && b.cols[0][0] != tc.want {
			t.Errorf("case %d: state = %d, want %d", i, b.cols[0][0], tc.want)
		}
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{-1: 8, 0: 8, 1: 8, 8: 8, 9: 16, 16: 16, 17: 32, 1000: 1024}
	for in, want := range cases {
		if got := nextPow2(in); got != want {
			t.Errorf("nextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestJoinTableChains(t *testing.T) {
	jt := newJoinTable(6)
	// Insert in reverse, as joinChunks does, so chains iterate ascending.
	keys := []int64{7, 7, 3, 7, 3, 100}
	for i := len(keys) - 1; i >= 0; i-- {
		jt.insert(keys[i], int32(i))
	}
	collect := func(k int64) []int32 {
		var out []int32
		for m := jt.lookup(k); m >= 0; m = jt.next[m] {
			out = append(out, m)
		}
		return out
	}
	if got := collect(7); len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 3 {
		t.Errorf("chain for key 7 = %v, want [0 1 3]", got)
	}
	if got := collect(3); len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Errorf("chain for key 3 = %v, want [2 4]", got)
	}
	if got := collect(100); len(got) != 1 || got[0] != 5 {
		t.Errorf("chain for key 100 = %v, want [5]", got)
	}
	if m := jt.lookup(42); m != -1 {
		t.Errorf("lookup of absent key returned %d, want -1", m)
	}
}

func TestGroupTableGrowth(t *testing.T) {
	// Start tiny so insertOrGet's doubling path is exercised many times.
	gt := newGroupTable(1)
	hashes := make([]uint64, 0, 500)
	for i := 0; i < 500; i++ {
		h := uint64(i) * 0x9e3779b97f4a7c15
		if i%5 == 0 && i > 0 {
			h = hashes[i/5] // force hash collisions with earlier ids
		}
		id, found := gt.insertOrGet(h, func(id int32) bool { return false })
		if found {
			t.Fatalf("insert %d: reported found for eq-always-false", i)
		}
		if id != int32(i) {
			t.Fatalf("insert %d: got id %d, want dense sequential ids", i, id)
		}
		hashes = append(hashes, h)
	}
	// Every admitted id must be retrievable after all the growth.
	for i, h := range hashes {
		id, found := gt.insertOrGet(h, func(id int32) bool { return id == int32(i) })
		if !found || id != int32(i) {
			t.Fatalf("lookup %d: got (%d, %v), want (%d, true)", i, id, found, i)
		}
	}
}

// TestInsertRowsRoundRobin asserts NoDistKey tables spread bulk loads
// evenly across segments instead of piling rows onto one.
func TestInsertRowsRoundRobin(t *testing.T) {
	c := NewCluster(Options{Segments: 4})
	if _, err := c.CreateTable("t", Schema{"v"}, NoDistKey); err != nil {
		t.Fatal(err)
	}
	rows := make([]Row, 42)
	for i := range rows {
		rows[i] = Row{I(int64(i))}
	}
	if err := c.InsertRows("t", rows); err != nil {
		t.Fatal(err)
	}
	tab, _ := c.Table("t")
	for seg, part := range tab.Parts {
		n := len(part)
		if n < 10 || n > 11 { // 42 rows over 4 segments
			t.Errorf("segment %d holds %d rows, want 10 or 11", seg, n)
		}
	}
	// A second batch continues the rotation from where the first stopped.
	if err := c.InsertRows("t", rows[:6]); err != nil {
		t.Fatal(err)
	}
	total := 0
	for seg, part := range tab.Parts {
		total += len(part)
		if len(part) == 0 {
			t.Errorf("segment %d empty after 48 rows", seg)
		}
	}
	if total != 48 {
		t.Fatalf("total rows = %d, want 48", total)
	}
}
