package engine

import (
	"time"
)

// Parallel distributed sort. The engine's historical sort gathered every
// row onto the coordinator and ran one big sort.SliceStable there — the
// only operator whose work was entirely serial. The columnar sort instead
// sorts each segment's chunk locally, in parallel on the worker pool, and
// the coordinator only performs a k-way merge of the pre-sorted runs. The
// output is bit-identical to the old implementation: local sorts break
// ties by original row position and the merge breaks ties by segment
// index, which together reproduce a stable sort of the concatenation of
// the segments in segment order.

// compareChunkRows orders row a of ca against row b of cb under the sort
// keys: NULLs first ascending, descending keys flipped.
func compareChunkRows(keys []SortKey, ca *Chunk, a int, cb *Chunk, b int) int {
	for _, k := range keys {
		an, bn := ca.nulls[k.Col].get(a), cb.nulls[k.Col].get(b)
		var cmp int
		switch {
		case an && bn:
			cmp = 0
		case an:
			cmp = -1
		case bn:
			cmp = 1
		default:
			av, bv := ca.cols[k.Col][a], cb.cols[k.Col][b]
			switch {
			case av < bv:
				cmp = -1
			case av > bv:
				cmp = 1
			}
		}
		if k.Desc {
			cmp = -cmp
		}
		if cmp != 0 {
			return cmp
		}
	}
	return 0
}

// execSort orders the relation by the sort keys onto segment 0, applying
// the limit if any: parallel per-segment index sorts, then a coordinator
// k-way merge of the sorted runs.
func (e *execEnv) execSort(p SortPlan, start time.Time) (*relation, *OpMetrics, error) {
	c := e.c
	in, cm, err := e.exec(p.Input)
	if err != nil {
		return nil, nil, err
	}

	// Phase 1: each segment sorts its own chunk, in parallel. Under a
	// memory budget sortSegment may run an external merge sort, returning a
	// freshly materialized sorted chunk with an identity index; otherwise
	// it index-sorts in place (original position as final tie-break, so the
	// local sort is stable either way).
	runs := make([][]int32, c.segments)
	chs := make([]*Chunk, c.segments)
	segTimes, err := e.parallelTimed(func(seg int) error {
		ch, idx, serr := e.sortSegment(seg, in.parts[seg], p.Keys)
		if serr != nil {
			return serr
		}
		chs[seg] = ch
		runs[seg] = idx
		return nil
	})
	if err != nil {
		return nil, nil, err
	}

	// Phase 2: k-way merge of the sorted runs on the coordinator, ties
	// resolved by segment index. The heads array tracks each run's cursor;
	// with a handful of segments a linear minimum scan beats heap upkeep.
	total := 0
	for _, ch := range chs {
		total += ch.length
	}
	n := total
	if p.Limit >= 0 && int64(n) > p.Limit {
		n = int(p.Limit)
	}
	out := newChunk(len(in.schema), n)
	heads := make([]int, c.segments)
	for k := 0; k < n; k++ {
		best := -1
		var bestCh *Chunk
		var bestRow int
		for seg := 0; seg < c.segments; seg++ {
			if heads[seg] >= len(runs[seg]) {
				continue
			}
			ch := chs[seg]
			row := int(runs[seg][heads[seg]])
			if best < 0 || compareChunkRows(p.Keys, ch, row, bestCh, bestRow) < 0 {
				best, bestCh, bestRow = seg, ch, row
			}
		}
		heads[best]++
		for col := range out.cols {
			if bestCh.nulls[col].get(bestRow) {
				out.ensureNulls(col).set(k)
			} else {
				out.cols[col][k] = bestCh.cols[col][bestRow]
			}
		}
	}

	parts := c.newParts(len(in.schema))
	parts[0] = out
	rel := &relation{schema: in.schema, parts: parts, distKey: NoDistKey}
	return rel, e.finishOp("Sort", "", rel, []*OpMetrics{cm}, 0, segTimes, start), nil
}
