// Package engine implements the Massively Parallel Processing (MPP)
// relational database substrate the paper's algorithms run on.
//
// The paper executes its SQL queries on Apache HAWQ, an MPP database that
// hash-distributes every table across a cluster of segments and executes
// relational operators in parallel on each segment, shuffling rows between
// segments when an operator needs a different distribution. This package
// reproduces that execution model in-process: a Cluster holds N virtual
// segments; each Table is hash-distributed by one of its columns; plans
// composed of Scan, Filter, Project, HashJoin, GroupBy, Distinct and
// UnionAll execute on a bounded worker pool and explicit hash
// redistribution steps, exactly as an MPP planner would schedule them.
//
// The engine also keeps the books the paper's evaluation reads: how many
// queries ran, how many rows and bytes each query wrote, the live table
// footprint over time and its peak (Table IV), and the cumulative bytes
// written (Table V).
//
// # Concurrency and locking discipline
//
// A Cluster is safe for concurrent use by multiple sessions: independent
// queries (CreateTableAs, Query, InsertRows, DropTable, ...) may execute
// simultaneously from different goroutines. The discipline is:
//
//   - c.mu (RWMutex) guards the catalog: the tables map, the UDF registry
//     and Table.Name. Lookups take the read lock; create/drop/rename take
//     the write lock. No query execution happens while holding c.mu.
//   - t.mu (RWMutex, per Table) guards Table.Parts. Scans snapshot the
//     per-segment slice headers under the read lock; InsertRows replaces
//     the mutated partitions with freshly allocated slices under the write
//     lock, so a snapshot taken before an insert never shares a backing
//     array element with a concurrent append. Rows are immutable once
//     stored — operators must build new rows, never modify scanned ones.
//   - c.statsMu (Mutex) guards the Stats counters, the query log and the
//     concurrency gauges. It is a leaf lock: nothing else is acquired
//     while holding it.
//   - Lock order is c.mu before t.mu before c.statsMu; never the reverse.
//   - Segment tasks submitted to the worker pool via parallel must be leaf
//     computations: they must not issue queries, touch the catalog or call
//     parallel again, or the pool's cluster-wide bound could deadlock.
//
// Statements are individually atomic but multi-statement sequences are
// not isolated: two sessions creating the same table name race benignly
// (one receives an "already exists" error). Sessions that need private
// intermediate tables must namespace them (see package sql's isolated
// sessions and package ccalg's per-run prefixes).
package engine

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dbcc/internal/xrand"
)

// Datum is a single column value: a 64-bit integer or SQL NULL.
type Datum struct {
	Int  int64
	Null bool
}

// I returns a non-null integer Datum.
func I(v int64) Datum { return Datum{Int: v} }

// NullDatum is the SQL NULL value.
var NullDatum = Datum{Null: true}

// DatumSize is the modelled on-disk size of one column value in bytes,
// matching the 64-bit vertex IDs of the paper's tables. Storage accounting
// (Table.Bytes, OpMetrics.Bytes, Stats.BytesWritten) uses this width.
const DatumSize = 8

// DatumWireSize is the modelled size of one column value on the
// interconnect: the canonical row encoding emitted by encodeRow is one
// null-tag byte plus the 8-byte payload per value, and shuffle/broadcast
// traffic (Stats.ShuffleBytes, OpMetrics.Shuffle) is charged at exactly
// this width. TestWireWidthAgreement asserts the encoding and the
// accounting never drift apart.
const DatumWireSize = DatumSize + 1

// Row is one table row.
type Row []Datum

// Schema is the ordered list of column names of a table or plan output.
type Schema []string

// ColIndex returns the index of the named column, or -1 if absent.
func (s Schema) ColIndex(name string) int {
	for i, c := range s {
		if c == name {
			return i
		}
	}
	return -1
}

// NoDistKey marks a table or intermediate result with no known hash
// distribution (rows may live on any segment).
const NoDistKey = -1

// Table is a hash-distributed table: rows whose distribution-key column
// hashes to segment i live in Parts[i]. Parts is guarded by mu; use
// Cluster.ReadAll (or hold no concurrent writers, as tests do) rather than
// iterating Parts directly while the cluster is shared.
type Table struct {
	Name    string
	Schema  Schema
	DistKey int // column index rows are distributed by, or NoDistKey
	Parts   [][]Row

	mu sync.RWMutex // guards Parts
}

// Rows returns the total row count across all segments.
func (t *Table) Rows() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var n int64
	for _, p := range t.Parts {
		n += int64(len(p))
	}
	return n
}

// Bytes returns the modelled storage footprint of the table.
func (t *Table) Bytes() int64 {
	return t.Rows() * int64(len(t.Schema)) * DatumSize
}

// snapshotParts returns a copy of the per-segment slice headers. The rows
// themselves are shared and immutable; concurrent inserts replace whole
// partitions, so the snapshot stays a consistent point-in-time view.
func (t *Table) snapshotParts() [][]Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return append([][]Row(nil), t.Parts...)
}

// QueryStat records the bookkeeping of one executed query (one
// CreateTableAs, matching the paper's r.log_exec granularity).
type QueryStat struct {
	Label       string
	RowsWritten int64
	BytesOut    int64
}

// Stats aggregates the execution counters the paper's Tables IV and V are
// built from.
type Stats struct {
	Queries      int64 // number of CreateTableAs queries executed
	RowsWritten  int64 // total rows written into created tables
	BytesWritten int64 // total bytes written into created tables (Table V)
	LiveBytes    int64 // current footprint of all live tables
	PeakBytes    int64 // maximum LiveBytes observed (Table IV)
	ShuffleBytes int64 // bytes moved between segments by redistribution
	// ShuffleSavedBytes counts the counterfactual traffic bloom-join
	// pruning avoided: the bytes pruned probe rows would have moved had
	// they crossed segments. Per pruned shuffle, ShuffleBytes + saved
	// equals what that shuffle would have moved with bloom joins off.
	// Statement totals may diverge further in pruning's favor: left-outer
	// bypass rows surface at their source segment, so downstream motions
	// see different (typically cheaper) placements.
	ShuffleSavedBytes int64
	Log               []QueryStat // per-query log, in execution order

	// Memory-bounded execution counters (see memory.go). PeakWorkBytes is
	// the highest accounted kernel working set of any single statement;
	// with Options.MemoryBudget set it never exceeds the budget. The spill
	// totals accumulate across statements and are cleared by ResetStats.
	PeakWorkBytes   int64 // peak accounted working memory of one statement
	SpilledBytes    int64 // bytes written to spill files
	SpillPartitions int64 // spill partition/run files created
	SpillPasses     int64 // partitioning / run-formation passes

	// Prepared-statement / plan-cache counters (see plancache.go). Parses
	// counts SQL texts actually lexed+parsed; the cache counters report
	// validated plan reuse. ResetStats clears the counters but keeps the
	// cached plans warm.
	Parses                 int64 // SQL statements parsed
	PlanCacheHits          int64 // cached plans reused after validation
	PlanCacheMisses        int64 // lookups that had to plan from scratch
	PlanCacheInvalidations int64 // cached plans evicted by DDL or failed validation

	// Component-index maintenance counters (see compidx.go).
	// IndexLabelsTouched counts parent-pointer writes and vertex
	// registrations on the incremental insert path — the bounded-work
	// witness: it grows amortised near-constant per inserted edge, never
	// with the table size. IndexRebuilds counts full recomputes (the
	// delete path).
	IndexLabelsTouched int64 // union-find labels written by insert maintenance
	IndexMerges        int64 // component merges performed by inserts
	IndexRebuilds      int64 // full rebuilds triggered by deletes
}

// ConcurrencyStats reports the multi-session activity of a cluster, the
// observability hook for the concurrent-session support.
type ConcurrencyStats struct {
	// Active is the number of statements (CreateTableAs, Query) executing
	// right now.
	Active int64
	// Peak is the highest number of simultaneously executing statements
	// observed since the cluster was created.
	Peak int64
	// Total is the number of statements begun since the cluster was
	// created (never reset).
	Total int64
}

// Profile selects the execution environment being modelled.
type Profile int

const (
	// ProfileMPP models a mature MPP database (HAWQ): local
	// pre-aggregation before shuffles and negligible per-query overhead.
	ProfileMPP Profile = iota
	// ProfileSparkSQL models executing the same SQL on Spark SQL
	// (Sec. VII-C): no map-side pre-aggregation and a fixed scheduling
	// overhead added to every query, the mechanism the paper blames for
	// the ≈2.3× slowdown it measured.
	ProfileSparkSQL
)

// Options configure a Cluster.
type Options struct {
	// Segments is the number of virtual MPP segments; 0 means 8, the
	// reproduction default (the paper's cluster had 60 cores over 5 nodes).
	Segments int
	// Workers bounds the number of OS-thread-backed goroutines executing
	// segment tasks at any moment, across all concurrent sessions; 0 means
	// GOMAXPROCS. Segments beyond this bound queue on the shared pool, so
	// configuring many virtual segments never oversubscribes the host.
	Workers int
	// Profile selects the execution environment model.
	Profile Profile
	// SparkPerQueryWork is the amount of synthetic extra work (in hash
	// operations) charged per query under ProfileSparkSQL, modelling job
	// scheduling and stage startup. 0 means the default.
	SparkPerQueryWork int
	// BroadcastThreshold enables the broadcast-motion join optimisation
	// of MPP planners: when the build side of a hash join has at most
	// this many rows, it is replicated to every segment instead of
	// redistributing both sides, trading a small broadcast for a large
	// shuffle. 0 disables the optimisation (the default, so measured
	// shuffle volumes follow the paper's plain distributed-join plans).
	BroadcastThreshold int64
	// TransactionMode models running a whole algorithm as one database
	// transaction (Sec. VII-B): most databases can only reclaim dropped
	// tables' storage at commit, so dropped tables release their space
	// from the catalog but not from the live-space accounting. Under this
	// mode the peak space equals input + total data written — the reason
	// the paper calls total-written (Table V) "arguably more important"
	// than instantaneous peak (Table IV).
	TransactionMode bool
	// TraceCapacity sets the size of the query-trace ring buffer readable
	// via Trace(); 0 means the default of 256, negative disables tracing.
	TraceCapacity int
	// QueryTimeout is the per-statement execution deadline; statements
	// exceeding it abort with a context.DeadlineExceeded error. 0 means no
	// deadline. It composes with caller-supplied contexts: whichever
	// cancels first wins.
	QueryTimeout time.Duration
	// FaultInjector, when non-nil, injects deterministic segment-task
	// failures and latency spikes (see FaultConfig) — the chaos harness
	// modelling segment failure in an MPP cluster.
	FaultInjector *FaultInjector
	// MaxTaskRetries is how many times one segment task is retried after
	// an injected fault before its query fails; 0 means the default of 3,
	// negative disables retries.
	MaxTaskRetries int
	// RetryBackoff is the base of the capped exponential backoff between
	// task retries; 0 means the default of 200µs.
	RetryBackoff time.Duration
	// RetryBudget caps the total retries one statement may consume across
	// all its tasks; 0 means the default of 1024, negative disables
	// retries entirely.
	RetryBudget int
	// MemoryBudget bounds each statement's kernel working memory (hash
	// tables, sort state, spill buffers) in bytes; segment tasks whose
	// working set would exceed budget/Segments run spilling kernel
	// variants instead (Grace hash join, partitioned group-by/DISTINCT,
	// external merge sort — see memory.go and spill_kernels.go). 0 means
	// unbounded, the historical in-memory behaviour.
	MemoryBudget int64
	// DisableBloomJoin turns off the build-side bloom filters that prune
	// an inner join's probe-side shuffle (on by default). Pruning never
	// changes results — a dropped row could not have matched — it only
	// reduces shuffle traffic; the knob exists for differential testing
	// and for measuring the pruning win.
	DisableBloomJoin bool
	// DisableOperatorFusion turns off the fused execution of
	// Filter/Project chains (on by default). Fusion eliminates the
	// intermediate materialisation between chained filters and a
	// projection; results and metrics trees are identical either way.
	DisableOperatorFusion bool
	// PlanCacheSize bounds the plan cache (plancache.go) in entries; 0
	// means the default of 256, negative disables caching entirely (every
	// lookup misses), the knob differential tests and the parse+plan
	// microbenchmark baseline use.
	PlanCacheSize int
}

// Cluster is the in-process MPP database: a catalog of distributed tables,
// a set of virtual segments, a UDF registry and execution statistics.
// A Cluster is safe for concurrent use by multiple sessions; see the
// package comment for the locking discipline.
type Cluster struct {
	segments    int
	workers     int
	profile     Profile
	sparkW      int
	transaction bool
	broadcast   int64

	queryTimeout   time.Duration
	injector       *FaultInjector
	maxTaskRetries int
	retryBackoff   time.Duration
	retryBudget    int
	memBudget      int64
	bloomOff       bool
	fusionOff      bool
	stmtSeq        atomic.Uint64 // statement numbering for fault determinism

	spillMu   sync.Mutex // guards spillRoot
	spillRoot string     // lazily created spill directory; "" until first spill

	mu     sync.RWMutex // guards tables, udfs, Table.Name
	tables map[string]*Table
	udfs   map[string]UDF

	plans *planCache // compiled-plan cache; own leaf lock, see plancache.go

	idxMu     sync.Mutex // guards indexes and rebuilder (leaf; see compidx.go)
	indexes   map[string]*ComponentIndex
	rebuilder func(table string) (map[int64]int64, error)

	statsMu  sync.Mutex // guards stats, the concurrency gauges, trace and opTotals
	stats    Stats
	active   int64
	peak     int64
	total    int64
	trace    []TraceRecord // query-trace ring buffer
	traceSeq int64         // statements traced since the last reset
	traceCap int
	opTotals map[string]OpTotal

	sem chan struct{} // cluster-wide worker-pool slots
}

// UDF is a scalar user-defined function, the mechanism the paper uses to
// load finite-field arithmetic (axplusb) and Blowfish into the database.
// UDFs may be evaluated from many worker goroutines at once and must be
// safe for concurrent use.
type UDF func(args []Datum) Datum

// NewCluster creates an MPP cluster.
func NewCluster(opts Options) *Cluster {
	if opts.Segments <= 0 {
		opts.Segments = 8
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.SparkPerQueryWork <= 0 {
		opts.SparkPerQueryWork = 800_000
	}
	traceCap := opts.TraceCapacity
	if traceCap == 0 {
		traceCap = defaultTraceCapacity
	} else if traceCap < 0 {
		traceCap = 0
	}
	retries := opts.MaxTaskRetries
	if retries == 0 {
		retries = 3
	} else if retries < 0 {
		retries = 0
	}
	backoff := opts.RetryBackoff
	if backoff <= 0 {
		backoff = 200 * time.Microsecond
	}
	budget := opts.RetryBudget
	if budget == 0 {
		budget = 1024
	} else if budget < 0 {
		budget = 0
	}
	return &Cluster{
		segments:       opts.Segments,
		workers:        opts.Workers,
		profile:        opts.Profile,
		sparkW:         opts.SparkPerQueryWork,
		transaction:    opts.TransactionMode,
		broadcast:      opts.BroadcastThreshold,
		queryTimeout:   opts.QueryTimeout,
		injector:       opts.FaultInjector,
		maxTaskRetries: retries,
		retryBackoff:   backoff,
		retryBudget:    budget,
		memBudget:      opts.MemoryBudget,
		bloomOff:       opts.DisableBloomJoin,
		fusionOff:      opts.DisableOperatorFusion,
		tables:         make(map[string]*Table),
		udfs:           make(map[string]UDF),
		indexes:        make(map[string]*ComponentIndex),
		plans:          newPlanCache(opts.PlanCacheSize),
		traceCap:       traceCap,
		opTotals:       make(map[string]OpTotal),
		sem:            make(chan struct{}, opts.Workers),
	}
}

// Segments returns the number of virtual segments.
func (c *Cluster) Segments() int { return c.segments }

// Workers returns the worker-pool bound in effect.
func (c *Cluster) Workers() int { return c.workers }

// MemoryBudget returns the per-statement working-memory budget in bytes,
// or 0 when execution is unbounded.
func (c *Cluster) MemoryBudget() int64 { return c.memBudget }

// Profile returns the execution environment model in effect.
func (c *Cluster) Profile() Profile { return c.profile }

// RegisterUDF installs or replaces a scalar function available to plans
// (and to the SQL layer) under the given lower-case name. Cached plans
// capture UDF implementations at plan time, so the whole plan cache is
// flushed (after releasing the catalog lock — the cache lock is a leaf).
func (c *Cluster) RegisterUDF(name string, fn UDF) {
	c.mu.Lock()
	c.udfs[name] = fn
	c.mu.Unlock()
	c.plans.flush()
}

// UDF looks up a registered function.
func (c *Cluster) UDF(name string) (UDF, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	fn, ok := c.udfs[name]
	return fn, ok
}

// Stats returns a copy of the execution statistics.
func (c *Cluster) Stats() Stats {
	c.statsMu.Lock()
	s := c.stats
	s.Log = append([]QueryStat(nil), c.stats.Log...)
	c.statsMu.Unlock()
	s.Parses, s.PlanCacheHits, s.PlanCacheMisses, s.PlanCacheInvalidations = c.plans.counters()
	return s
}

// LiveBytes returns the current live table footprint without copying the
// per-query log (the cheap accessor for per-statement space budgeting).
func (c *Cluster) LiveBytes() int64 {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	return c.stats.LiveBytes
}

// ConcurrencyStats returns the multi-session activity gauges.
func (c *Cluster) ConcurrencyStats() ConcurrencyStats {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	return ConcurrencyStats{Active: c.active, Peak: c.peak, Total: c.total}
}

// beginStatement marks a statement as executing for the concurrency gauges.
func (c *Cluster) beginStatement() {
	c.statsMu.Lock()
	c.active++
	c.total++
	if c.active > c.peak {
		c.peak = c.active
	}
	c.statsMu.Unlock()
}

// endStatement reverses beginStatement.
func (c *Cluster) endStatement() {
	c.statsMu.Lock()
	c.active--
	c.statsMu.Unlock()
}

// ResetStats clears all counters (keeping live-space accounting consistent
// with the tables that currently exist), the query-trace ring buffer, the
// per-operator accumulators and the spill totals (SpilledBytes,
// SpillPartitions, SpillPasses, PeakWorkBytes), so benchmarks that reset
// between algorithm runs never leak metrics from one run into the next. The
// concurrency gauges are not reset. Per-run statistics are only meaningful
// when runs do not overlap; concurrent sessions share one set of counters.
func (c *Cluster) ResetStats() {
	c.statsMu.Lock()
	live := c.stats.LiveBytes
	c.stats = Stats{LiveBytes: live, PeakBytes: live}
	c.trace = nil
	c.traceSeq = 0
	c.opTotals = make(map[string]OpTotal)
	c.statsMu.Unlock()
	// Plan-cache counters reset too, but cached plans stay warm: clearing
	// statistics between benchmark runs must not force replanning.
	c.plans.resetCounters()
}

// Counters returns the cheap scalar counters (queries, rows written, bytes
// written) without copying the per-query log — the accessor round-level
// instrumentation polls between queries.
func (c *Cluster) Counters() (queries, rowsWritten, bytesWritten int64) {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	return c.stats.Queries, c.stats.RowsWritten, c.stats.BytesWritten
}

// hashDatum maps a distribution-key value to a segment.
func (c *Cluster) hashDatum(d Datum) int {
	if d.Null {
		return 0
	}
	return int(xrand.Mix64(uint64(d.Int)) % uint64(c.segments))
}

// Table returns the named table.
func (c *Cluster) Table(name string) (*Table, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[name]
	return t, ok
}

// TableNames returns the catalog contents in sorted order.
func (c *Cluster) TableNames() []string {
	c.mu.RLock()
	names := make([]string, 0, len(c.tables))
	for n := range c.tables {
		names = append(names, n)
	}
	c.mu.RUnlock()
	sort.Strings(names)
	return names
}

// CreateTable registers an empty table distributed by column distKey.
func (c *Cluster) CreateTable(name string, schema Schema, distKey int) (*Table, error) {
	if distKey != NoDistKey && (distKey < 0 || distKey >= len(schema)) {
		return nil, fmt.Errorf("engine: distribution key %d out of range for %v", distKey, schema)
	}
	t := &Table{Name: name, Schema: schema, DistKey: distKey, Parts: make([][]Row, c.segments)}
	c.mu.Lock()
	if _, exists := c.tables[name]; exists {
		c.mu.Unlock()
		return nil, fmt.Errorf("engine: table %q already exists", name)
	}
	c.tables[name] = t
	c.mu.Unlock()
	// A new table can change what a cached plan's name resolution would
	// pick (namespace shadowing a global name), so it invalidates too.
	c.plans.invalidate(name)
	return t, nil
}

// InsertRows bulk-loads rows into an existing table, distributing them by
// the table's distribution key, and accounts for the write. Mutated
// partitions are replaced with freshly allocated slices so concurrent
// scans keep reading their consistent snapshots.
func (c *Cluster) InsertRows(name string, rows []Row) (err error) {
	defer recoverToError("insert", &err)
	start := time.Now()
	t, ok := c.Table(name)
	if !ok {
		return fmt.Errorf("engine: table %q does not exist", name)
	}
	for _, r := range rows {
		if len(r) != len(t.Schema) {
			return fmt.Errorf("engine: row arity %d does not match schema %v", len(r), t.Schema)
		}
	}
	t.mu.Lock()
	// Counting pass: compute each row's segment once, so the per-segment
	// buffers below are allocated at exact capacity instead of append-grown.
	segOf := make([]int32, len(rows))
	counts := make([]int, c.segments)
	cursor := len(t.Parts[0]) // round-robin cursor for tables without a distribution key
	for i, r := range rows {
		seg := 0
		if t.DistKey != NoDistKey {
			seg = c.hashDatum(r[t.DistKey])
		} else {
			seg = cursor % c.segments
			cursor++
		}
		segOf[i] = int32(seg)
		counts[seg]++
	}
	for seg, n := range counts {
		if n == 0 {
			continue
		}
		merged := make([]Row, 0, len(t.Parts[seg])+n)
		merged = append(merged, t.Parts[seg]...)
		t.Parts[seg] = merged
	}
	for i, r := range rows {
		seg := segOf[i]
		t.Parts[seg] = append(t.Parts[seg], r)
	}
	t.mu.Unlock()
	bytes := int64(len(rows)) * int64(len(t.Schema)) * DatumSize
	c.accountWrite("insert "+name, int64(len(rows)), bytes)
	c.addTrace(TraceRecord{
		Kind:    "insert",
		Target:  name,
		Plan:    fmt.Sprintf("Insert(%s, %d rows)", name, len(rows)),
		Rows:    int64(len(rows)),
		Bytes:   bytes,
		Start:   start,
		Elapsed: time.Since(start),
	})
	// Incremental index maintenance happens after the table locks are
	// released; the index has its own lock and the rows are immutable.
	c.feedIndex(name, rows)
	return nil
}

// DeleteRows removes the rows of a table for which keep returns false,
// releasing their space, and returns the number of rows removed. Mutated
// partitions are replaced with fresh slices so concurrent scans keep their
// snapshots. A component index on the table goes stale on any removal and
// is rebuilt before DeleteRows returns (see compidx.go).
func (c *Cluster) DeleteRows(name string, keep func(Row) bool) (removed int64, err error) {
	defer recoverToError("delete", &err)
	start := time.Now()
	t, ok := c.Table(name)
	if !ok {
		return 0, fmt.Errorf("engine: table %q does not exist", name)
	}
	t.mu.Lock()
	for seg, part := range t.Parts {
		n := 0
		for _, r := range part {
			if keep(r) {
				n++
			}
		}
		if n == len(part) {
			continue
		}
		kept := make([]Row, 0, n)
		for _, r := range part {
			if keep(r) {
				kept = append(kept, r)
			}
		}
		removed += int64(len(part) - n)
		t.Parts[seg] = kept
	}
	t.mu.Unlock()
	bytes := removed * int64(len(t.Schema)) * DatumSize
	c.statsMu.Lock()
	c.stats.Queries++
	if !c.transaction {
		c.stats.LiveBytes -= bytes
	}
	c.stats.Log = append(c.stats.Log, QueryStat{Label: "delete " + name})
	c.statsMu.Unlock()
	c.addTrace(TraceRecord{
		Kind:    "delete",
		Target:  name,
		Plan:    fmt.Sprintf("Delete(%s, %d rows)", name, removed),
		Rows:    removed,
		Start:   start,
		Elapsed: time.Since(start),
	})
	if err := c.maybeRebuildIndex(name, removed); err != nil {
		return removed, err
	}
	return removed, nil
}

// DropTable removes a table from the catalog. Its space is released
// immediately, except in TransactionMode, where storage for dropped
// temporary tables stays allocated until the enclosing transaction commits
// (the rollback-safety behaviour the paper describes in Sec. VII-B).
func (c *Cluster) DropTable(name string) error {
	c.mu.Lock()
	t, ok := c.tables[name]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("engine: table %q does not exist", name)
	}
	delete(c.tables, name)
	c.mu.Unlock()
	c.plans.invalidate(name)
	c.dropIndexFor(name)
	if !c.transaction {
		bytes := t.Bytes()
		c.statsMu.Lock()
		c.stats.LiveBytes -= bytes
		c.statsMu.Unlock()
	}
	return nil
}

// RenameTable renames a table; the destination must not exist.
func (c *Cluster) RenameTable(oldName, newName string) error {
	c.mu.Lock()
	t, ok := c.tables[oldName]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("engine: table %q does not exist", oldName)
	}
	if _, exists := c.tables[newName]; exists {
		c.mu.Unlock()
		return fmt.Errorf("engine: table %q already exists", newName)
	}
	delete(c.tables, oldName)
	t.Name = newName
	c.tables[newName] = t
	c.mu.Unlock()
	c.plans.invalidate(oldName, newName)
	c.renameIndexFor(oldName, newName)
	return nil
}

// ReadAll gathers all rows of a table onto the coordinator, in segment
// order. It is intended for result extraction and tests, not hot paths.
func (c *Cluster) ReadAll(name string) ([]Row, error) {
	t, ok := c.Table(name)
	if !ok {
		return nil, fmt.Errorf("engine: table %q does not exist", name)
	}
	var out []Row
	for _, p := range t.snapshotParts() {
		out = append(out, p...)
	}
	return out, nil
}

// accountWrite records a completed write of rows/bytes into the catalog.
func (c *Cluster) accountWrite(label string, rows, bytes int64) {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	c.stats.Queries++
	c.stats.RowsWritten += rows
	c.stats.BytesWritten += bytes
	c.stats.LiveBytes += bytes
	if c.stats.LiveBytes > c.stats.PeakBytes {
		c.stats.PeakBytes = c.stats.LiveBytes
	}
	c.stats.Log = append(c.stats.Log, QueryStat{Label: label, RowsWritten: rows, BytesOut: bytes})
}

// addShuffleBytes charges redistribution traffic to the statistics.
func (c *Cluster) addShuffleBytes(n int64) {
	c.statsMu.Lock()
	c.stats.ShuffleBytes += n
	c.statsMu.Unlock()
}

// addShuffleSaved records shuffle traffic avoided by bloom-join pruning.
func (c *Cluster) addShuffleSaved(n int64) {
	c.statsMu.Lock()
	c.stats.ShuffleSavedBytes += n
	c.statsMu.Unlock()
}

// parallel runs fn(seg) for every segment and waits. Instead of one
// goroutine per segment, at most Workers segment tasks run at any moment
// across the whole cluster: each call spawns min(Workers, Segments)
// goroutines that pull segment indices from a shared counter, and every
// task additionally holds a slot of the cluster-wide pool, so many
// concurrent sessions cannot oversubscribe the host. fn must be a leaf
// computation (no queries, no catalog access, no nested parallel).
func (c *Cluster) parallel(fn func(seg int)) {
	n := c.segments
	spawn := c.workers
	if spawn > n {
		spawn = n
	}
	if spawn <= 1 {
		for s := 0; s < n; s++ {
			c.sem <- struct{}{}
			fn(s)
			<-c.sem
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(spawn)
	for w := 0; w < spawn; w++ {
		go func() {
			defer wg.Done()
			for {
				s := int(next.Add(1)) - 1
				if s >= n {
					return
				}
				c.sem <- struct{}{}
				fn(s)
				<-c.sem
			}
		}()
	}
	wg.Wait()
}
