package engine

import "sync/atomic"

// Memory-bounded execution: the per-statement working-memory accountant.
//
// The paper runs on HAWQ, whose executor bounds each operator's working
// memory (the PostgreSQL work_mem model): hash tables, sort state and
// partition buffers must fit the budget, and operators that would exceed
// it switch to spilling variants — Grace hash join, hybrid hash
// aggregation, external merge sort. This engine reproduces that model.
//
// Options.MemoryBudget is the per-statement budget in bytes. It bounds
// kernel working sets — join/group hash tables, sort index vectors,
// in-memory spill partitions and the chunk buffers of the spill files —
// not the operator input and output relations themselves (which the
// engine, like any MPP executor pipelining between motions, materialises
// per segment regardless). Each segment task may use at most
// budget/segments bytes of working memory; a kernel whose estimated
// working set exceeds that share runs its spilling variant instead (see
// spill_kernels.go). Because at most Segments tasks of one statement run
// concurrently and each stays within its share, the statement's total
// accounted working memory stays within the budget — the invariant the
// acceptance test pins.
//
// memAcct is the per-statement ledger: charge/release track the live
// working-set gauge and its peak, and the spill counters accumulate the
// statement's spill activity. At statement end execEnv.close folds the
// ledger into the cluster-wide Stats (PeakWorkBytes, SpilledBytes,
// SpillPartitions, SpillPasses).

// memAcct tracks one statement's accounted working memory and spill
// activity. All fields are atomics: segment tasks charge concurrently.
type memAcct struct {
	used atomic.Int64 // live accounted working-set bytes
	peak atomic.Int64 // maximum of used over the statement

	spilledBytes atomic.Int64 // bytes written to spill files
	spillParts   atomic.Int64 // spill partition/run files created
	spillPasses  atomic.Int64 // partitioning / run-formation passes
}

// charge adds n bytes to the working-set gauge and maintains the peak.
func (a *memAcct) charge(n int64) {
	if n <= 0 {
		return
	}
	u := a.used.Add(n)
	for {
		p := a.peak.Load()
		if u <= p || a.peak.CompareAndSwap(p, u) {
			return
		}
	}
}

// release subtracts n bytes charged earlier.
func (a *memAcct) release(n int64) {
	if n > 0 {
		a.used.Add(-n)
	}
}

// segShare returns the per-segment-task slice of the statement budget, or
// 0 when execution is unbounded.
func (e *execEnv) segShare() int64 {
	b := e.c.memBudget
	if b <= 0 {
		return 0
	}
	share := b / int64(e.c.segments)
	if share < 1 {
		share = 1
	}
	return share
}

// shouldSpill reports whether a kernel with the given estimated working
// set must take its spilling path: only when a budget is configured and
// the estimate exceeds this task's share of it.
func (e *execEnv) shouldSpill(est int64) bool {
	share := e.segShare()
	return share > 0 && est > share
}

// chunkFootprint is the modelled heap footprint of a chunk's column
// storage: 8 bytes per value plus the null-bitmap words.
func chunkFootprint(ch *Chunk) int64 {
	if ch == nil {
		return 0
	}
	n := int64(ch.length) * int64(len(ch.cols)) * DatumSize
	for _, nb := range ch.nulls {
		n += int64(len(nb)) * 8
	}
	return n
}

// joinTableBytes is the modelled size of a joinTable over n build rows:
// slots hold an 8-byte key and a 4-byte chain head at load factor <= 1/2,
// plus a 4-byte chain link per row.
func joinTableBytes(n int) int64 {
	slots := int64(nextPow2(2 * n))
	return slots*(8+4) + int64(n)*4
}

// groupTableBytes is the modelled worst-case size of a groupTable that
// admits up to n ids: 4-byte slots at load factor <= 1/2 (doubling growth
// can transiently hold old+new arrays, hence the extra factor) plus the
// 8-byte hash cache per id.
func groupTableBytes(n int) int64 {
	slots := int64(nextPow2(2 * (n + 1)))
	return slots*4*2 + int64(n)*8 + 64
}
