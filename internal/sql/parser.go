package sql

import (
	"fmt"
	"strconv"
	"strings"
)

// parser consumes a token stream.
type parser struct {
	toks []token
	i    int
}

// Parse parses a script of zero or more semicolon-separated statements.
func Parse(src string) ([]Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	return parseTokens(toks)
}

// parseTokens parses an already-lexed token stream, so callers that lex
// once for cache-key normalization need not lex again to parse.
func parseTokens(toks []token) ([]Statement, error) {
	p := &parser{toks: toks}
	var stmts []Statement
	for {
		for p.peek().text == ";" {
			p.next()
		}
		if p.peek().kind == tokEOF {
			return stmts, nil
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
		if p.peek().text == ";" {
			p.next()
		} else if p.peek().kind != tokEOF {
			return nil, p.errf("expected ';' or end of input, found %q", p.peek().text)
		}
	}
}

// ParseOne parses exactly one statement.
func ParseOne(src string) (Statement, error) {
	stmts, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("sql: expected exactly one statement, got %d", len(stmts))
	}
	return stmts[0], nil
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }
func (p *parser) atKw(kw string) bool {
	return p.peek().isKeyword(kw)
}

// acceptKw consumes the keyword if present.
func (p *parser) acceptKw(kw string) bool {
	if p.atKw(kw) {
		p.next()
		return true
	}
	return false
}

// expectKw consumes the keyword or fails.
func (p *parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return p.errf("expected %s, found %q", strings.ToUpper(kw), p.peek().text)
	}
	return nil
}

// expectSym consumes the symbol or fails.
func (p *parser) expectSym(sym string) error {
	if p.peek().kind == tokSymbol && p.peek().text == sym {
		p.next()
		return nil
	}
	return p.errf("expected %q, found %q", sym, p.peek().text)
}

// acceptSym consumes the symbol if present.
func (p *parser) acceptSym(sym string) bool {
	if p.peek().kind == tokSymbol && p.peek().text == sym {
		p.next()
		return true
	}
	return false
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: offset %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

// ident consumes an identifier (keywords double as identifiers in this
// dialect, like PostgreSQL's non-reserved words).
func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", p.errf("expected identifier, found %q", t.text)
	}
	p.next()
	return strings.ToLower(t.text), nil
}

// paramIndex parses the digits of a tokParam into a 1-based index.
func (p *parser) paramIndex(t token) (int, error) {
	n, err := strconv.Atoi(t.text)
	if err != nil || n < 1 || n > maxParams {
		return 0, p.errf("bad parameter $%s (parameters are $1..$%d)", t.text, maxParams)
	}
	return n, nil
}

// maxParams bounds parameter indices; statements never need more, and the
// bound keeps hostile $999999999 texts from allocating huge bind arrays.
const maxParams = 64

// tableName consumes a table-name position: an identifier, or a $N
// parameter (returned as the second value, with an empty name).
func (p *parser) tableName() (string, int, error) {
	if t := p.peek(); t.kind == tokParam {
		p.next()
		idx, err := p.paramIndex(t)
		if err != nil {
			return "", 0, err
		}
		return "", idx, nil
	}
	name, err := p.ident()
	return name, 0, err
}

func (p *parser) statement() (Statement, error) {
	switch {
	case p.atKw("create"):
		return p.createTableAs()
	case p.atKw("drop"):
		return p.dropTable()
	case p.atKw("alter"):
		return p.alterRename()
	case p.atKw("insert"):
		return p.insertValues()
	case p.atKw("delete"):
		return p.deleteFrom()
	case p.atKw("explain"):
		p.next()
		analyze := p.acceptKw("analyze")
		sel, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		return &ExplainStmt{Select: sel, Analyze: analyze}, nil
	case p.atKw("select"):
		sel, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		return &SelectQuery{Select: sel}, nil
	}
	return nil, p.errf("expected statement, found %q", p.peek().text)
}

func (p *parser) createTableAs() (Statement, error) {
	p.next() // create
	if p.atKw("component") {
		p.next()
		if err := p.expectKw("index"); err != nil {
			return nil, err
		}
		if err := p.expectKw("on"); err != nil {
			return nil, err
		}
		name, nameParam, err := p.tableName()
		if err != nil {
			return nil, err
		}
		return &CreateComponentIndex{Table: name, TableParam: nameParam}, nil
	}
	if err := p.expectKw("table"); err != nil {
		return nil, err
	}
	name, nameParam, err := p.tableName()
	if err != nil {
		return nil, err
	}
	// Plain DDL form: CREATE TABLE name (col, col, ...).
	if p.acceptSym("(") {
		plain := &CreateTablePlain{Name: name, NameParam: nameParam}
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			plain.Cols = append(plain.Cols, col)
			if !p.acceptSym(",") {
				break
			}
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		if p.acceptKw("distributed") {
			if err := p.expectKw("by"); err != nil {
				return nil, err
			}
			if err := p.expectSym("("); err != nil {
				return nil, err
			}
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			plain.DistBy = col
		}
		return plain, nil
	}
	if err := p.expectKw("as"); err != nil {
		return nil, err
	}
	sel, err := p.selectStmt()
	if err != nil {
		return nil, err
	}
	stmt := &CreateTableAs{Name: name, NameParam: nameParam, Select: sel}
	if p.acceptKw("distributed") {
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		if err := p.expectSym("("); err != nil {
			return nil, err
		}
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		stmt.DistBy = col
	}
	return stmt, nil
}

func (p *parser) dropTable() (Statement, error) {
	p.next() // drop
	if p.atKw("component") {
		p.next()
		if err := p.expectKw("index"); err != nil {
			return nil, err
		}
		if err := p.expectKw("on"); err != nil {
			return nil, err
		}
		name, nameParam, err := p.tableName()
		if err != nil {
			return nil, err
		}
		return &DropComponentIndex{Table: name, TableParam: nameParam}, nil
	}
	if err := p.expectKw("table"); err != nil {
		return nil, err
	}
	var names []string
	var params []int
	for {
		n, prm, err := p.tableName()
		if err != nil {
			return nil, err
		}
		names = append(names, n)
		params = append(params, prm)
		if !p.acceptSym(",") {
			break
		}
	}
	return &DropTable{Names: names, NameParams: params}, nil
}

func (p *parser) alterRename() (Statement, error) {
	p.next() // alter
	if err := p.expectKw("table"); err != nil {
		return nil, err
	}
	oldName, oldParam, err := p.tableName()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("rename"); err != nil {
		return nil, err
	}
	if err := p.expectKw("to"); err != nil {
		return nil, err
	}
	newName, newParam, err := p.tableName()
	if err != nil {
		return nil, err
	}
	return &AlterRename{Old: oldName, New: newName, OldParam: oldParam, NewParam: newParam}, nil
}

func (p *parser) insertValues() (Statement, error) {
	p.next() // insert
	if err := p.expectKw("into"); err != nil {
		return nil, err
	}
	name, nameParam, err := p.tableName()
	if err != nil {
		return nil, err
	}
	// INSERT INTO t SELECT ... appends a query's result rows.
	if p.atKw("select") {
		sel, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		return &InsertSelect{Name: name, NameParam: nameParam, Select: sel}, nil
	}
	if err := p.expectKw("values"); err != nil {
		return nil, err
	}
	var rows [][]Expr
	for {
		if err := p.expectSym("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.acceptSym(",") {
				break
			}
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		rows = append(rows, row)
		if !p.acceptSym(",") {
			break
		}
	}
	return &InsertValues{Name: name, NameParam: nameParam, Rows: rows}, nil
}

// deleteFrom parses DELETE FROM name [WHERE expr].
func (p *parser) deleteFrom() (Statement, error) {
	p.next() // delete
	if err := p.expectKw("from"); err != nil {
		return nil, err
	}
	name, nameParam, err := p.tableName()
	if err != nil {
		return nil, err
	}
	st := &DeleteStmt{Name: name, NameParam: nameParam}
	if p.acceptKw("where") {
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

func (p *parser) selectStmt() (*SelectStmt, error) {
	if err := p.expectKw("select"); err != nil {
		return nil, err
	}
	sel := &SelectStmt{}
	if p.acceptKw("distinct") {
		sel.Distinct = true
	}
	// Select list.
	for {
		item, err := p.selectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if !p.acceptSym(",") {
			break
		}
	}
	if p.acceptKw("from") {
		for {
			fi, err := p.fromItem()
			if err != nil {
				return nil, err
			}
			sel.From = append(sel.From, fi)
			if !p.acceptSym(",") {
				break
			}
		}
	}
	if p.acceptKw("where") {
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		sel.Where = e
	}
	if p.acceptKw("group") {
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		for {
			id, err := p.qualifiedIdent()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, id)
			if !p.acceptSym(",") {
				break
			}
		}
	}
	if p.acceptKw("union") {
		if err := p.expectKw("all"); err != nil {
			return nil, err
		}
		rest, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		sel.UnionAll = rest
	}
	sel.Limit = -1
	if p.acceptKw("order") {
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Col: col}
			if p.acceptKw("desc") {
				item.Desc = true
			} else {
				p.acceptKw("asc")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.acceptSym(",") {
				break
			}
		}
	}
	if p.acceptKw("limit") {
		t := p.peek()
		if t.kind != tokNumber {
			return nil, p.errf("expected number after LIMIT, found %q", t.text)
		}
		p.next()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil || n < 0 {
			return nil, p.errf("bad LIMIT %q", t.text)
		}
		sel.Limit = n
	}
	return sel, nil
}

// selectItem parses "expr", "expr AS alias" or "expr alias".
func (p *parser) selectItem() (SelectItem, error) {
	e, err := p.expression()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKw("as") {
		alias, err := p.ident()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = alias
		return item, nil
	}
	// Implicit alias: a bare identifier that is not a clause keyword.
	t := p.peek()
	if t.kind == tokIdent && !isClauseKeyword(t.text) {
		item.Alias = strings.ToLower(t.text)
		p.next()
	}
	return item, nil
}

// isReservedWord lists keywords that cannot begin an expression, so that
// malformed statements fail at parse time rather than resolving a keyword
// as a column name.
func isReservedWord(s string) bool {
	switch strings.ToLower(s) {
	case "select", "from", "where", "group", "by", "union", "all",
		"distinct", "left", "outer", "inner", "join", "on", "order",
		"having", "as", "distributed", "create", "table", "drop", "alter",
		"rename", "to", "insert", "into", "values", "explain", "limit",
		"asc", "desc", "delete":
		return true
	}
	return false
}

// isClauseKeyword lists the keywords that terminate a select list and
// therefore cannot be implicit aliases.
func isClauseKeyword(s string) bool {
	switch strings.ToLower(s) {
	case "from", "where", "group", "union", "distributed", "left", "right",
		"inner", "join", "on", "order", "having", "as", "limit":
		return true
	}
	return false
}

// fromItem parses a table reference followed by any number of explicit
// joins: "t [AS a] [LEFT [OUTER] JOIN t2 [AS b] ON ( expr )]*".
func (p *parser) fromItem() (FromItem, error) {
	ref, err := p.tableRef()
	if err != nil {
		return FromItem{}, err
	}
	fi := FromItem{Table: ref}
	for {
		var leftOuter bool
		switch {
		case p.atKw("left"):
			p.next()
			p.acceptKw("outer")
			if err := p.expectKw("join"); err != nil {
				return FromItem{}, err
			}
			leftOuter = true
		case p.atKw("inner"):
			p.next()
			if err := p.expectKw("join"); err != nil {
				return FromItem{}, err
			}
		case p.atKw("join"):
			p.next()
		default:
			return fi, nil
		}
		ref, err := p.tableRef()
		if err != nil {
			return FromItem{}, err
		}
		if err := p.expectKw("on"); err != nil {
			return FromItem{}, err
		}
		on, err := p.expression()
		if err != nil {
			return FromItem{}, err
		}
		fi.Joins = append(fi.Joins, JoinClause{LeftOuter: leftOuter, Table: ref, On: on})
	}
}

func (p *parser) tableRef() (TableRef, error) {
	name, param, err := p.tableName()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Table: name, Param: param}
	if p.acceptKw("as") {
		alias, err := p.ident()
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = alias
		return ref, nil
	}
	t := p.peek()
	if t.kind == tokIdent && !isFromKeyword(t.text) {
		ref.Alias = strings.ToLower(t.text)
		p.next()
	}
	return ref, nil
}

// isFromKeyword lists keywords that end a table reference and cannot be
// implicit table aliases.
func isFromKeyword(s string) bool {
	switch strings.ToLower(s) {
	case "left", "right", "inner", "join", "on", "where", "group", "union",
		"distributed", "order", "having", "as", "limit":
		return true
	}
	return false
}

func (p *parser) qualifiedIdent() (*Ident, error) {
	first, err := p.ident()
	if err != nil {
		return nil, err
	}
	if p.acceptSym(".") {
		second, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &Ident{Qual: first, Name: second}, nil
	}
	return &Ident{Name: first}, nil
}

// Expression grammar, loosest to tightest: OR, AND, comparison, additive,
// primary.
func (p *parser) expression() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("or") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "or", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.cmpExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("and") {
		r, err := p.cmpExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "and", L: l, R: r}
	}
	return l, nil
}

func (p *parser) cmpExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind == tokSymbol {
		switch t.text {
		case "=", "!=", "<>", "<", "<=", ">", ">=":
			p.next()
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			op := t.text
			if op == "<>" {
				op = "!="
			}
			return &BinaryExpr{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokSymbol && (t.text == "+" || t.text == "-") {
			p.next()
			r, err := p.primary()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: t.text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) primary() (Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tokParam:
		p.next()
		idx, err := p.paramIndex(t)
		if err != nil {
			return nil, err
		}
		return &ParamRef{Index: idx}, nil
	case t.kind == tokNumber:
		p.next()
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q: %v", t.text, err)
		}
		return &NumLit{Val: v}, nil
	case t.kind == tokSymbol && t.text == "-":
		p.next()
		n := p.peek()
		if n.kind != tokNumber {
			return nil, p.errf("expected number after unary '-', found %q", n.text)
		}
		p.next()
		// Parse as negative to admit math.MinInt64.
		v, err := strconv.ParseInt("-"+n.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number -%q: %v", n.text, err)
		}
		return &NumLit{Val: v}, nil
	case t.kind == tokSymbol && t.text == "(":
		p.next()
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.isKeyword("null"):
		p.next()
		return &NullLit{}, nil
	case t.kind == tokIdent:
		if isReservedWord(t.text) {
			return nil, p.errf("expected expression, found keyword %q", t.text)
		}
		p.next()
		name := strings.ToLower(t.text)
		// Function call?
		if p.peek().kind == tokSymbol && p.peek().text == "(" {
			p.next()
			call := &Call{Name: name}
			if p.acceptSym("*") {
				call.Star = true
				if err := p.expectSym(")"); err != nil {
					return nil, err
				}
				return call, nil
			}
			if p.acceptSym(")") {
				return call, nil
			}
			for {
				a, err := p.expression()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if !p.acceptSym(",") {
					break
				}
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			return call, nil
		}
		// Qualified column?
		if p.acceptSym(".") {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &Ident{Qual: name, Name: col}, nil
		}
		return &Ident{Name: name}, nil
	}
	return nil, p.errf("expected expression, found %q", t.text)
}
