package sql

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"

	"dbcc/internal/engine"
)

// sessionSeq numbers isolated sessions so every one gets a distinct
// temporary-table namespace, even across goroutines.
var sessionSeq atomic.Uint64

// Session executes SQL statements against a cluster, mirroring the paper's
// Python driver: every executed statement reports the number of rows it
// produced, which the algorithms use as their termination signal.
//
// A Session is a lightweight, single-goroutine object; open one session per
// goroutine. The Cluster underneath is safe to share, so many sessions may
// execute statements concurrently. Sessions created with NewSession share
// the global table namespace; sessions created with NewIsolatedSession
// prefix every table they create with a session-private namespace, so
// concurrent runs of the paper's algorithms never collide on intermediate
// table names.
type Session struct {
	c    *engine.Cluster
	ns   string          // temp-table namespace prefix; "" shares the global namespace
	deny string          // bare names with this prefix never resolve globally; "" disables
	ctx  context.Context // statement execution context; nil means Background
}

// NewSession creates a session on the cluster using the shared global
// table namespace.
func NewSession(c *engine.Cluster) *Session { return &Session{c: c} }

// NewIsolatedSession creates a session whose created tables live in a
// fresh session-private namespace. References to tables the session did
// not create (for example a shared input edge table) resolve globally.
func NewIsolatedSession(c *engine.Cluster) *Session {
	return SessionWithNamespace(c, fmt.Sprintf("tmp%d_", sessionSeq.Add(1)))
}

// SessionWithNamespace creates a session with an explicit temporary-table
// namespace prefix. Callers that create tables through both the SQL layer
// and the engine API (package ccalg's runs) pass the same prefix to both
// so the two views agree on physical names.
func SessionWithNamespace(c *engine.Cluster, ns string) *Session {
	return &Session{c: c, ns: ns}
}

// RestrictPrefix returns a copy of the session whose Resolve refuses to
// fall back to global-namespace tables whose names carry the given
// prefix: such references resolve into the session's own namespace and
// therefore fail with "does not exist" unless the session created them.
// The multi-tenant server uses this to stop one tenant from naming
// another tenant's physical tables (all of which share one catalog
// prefix) while keeping genuinely shared global tables reachable. The
// receiver is unchanged.
func (s *Session) RestrictPrefix(prefix string) *Session {
	out := *s
	out.deny = prefix
	return &out
}

// WithContext returns a copy of the session whose statements execute
// under ctx: cancelling it (or its deadline expiring) aborts queries
// between operators and between segment tasks. The receiver is unchanged.
func (s *Session) WithContext(ctx context.Context) *Session {
	out := *s
	out.ctx = ctx
	return &out
}

// context returns the session's execution context, Background by default.
func (s *Session) context() context.Context {
	if s.ctx != nil {
		return s.ctx
	}
	return context.Background()
}

// Cluster returns the underlying cluster.
func (s *Session) Cluster() *engine.Cluster { return s.c }

// Namespace returns the session's temporary-table prefix ("" for sessions
// sharing the global namespace).
func (s *Session) Namespace() string { return s.ns }

// Resolve maps a table name as written in SQL to its catalog name: if the
// session namespace holds a table of that name it wins, otherwise the name
// refers to the shared global namespace. Within a namespace only this
// session creates and drops tables, so the existence probe is stable.
func (s *Session) Resolve(name string) string {
	if s.ns == "" {
		return name
	}
	phys := s.ns + name
	if _, ok := s.c.Table(phys); ok {
		return phys
	}
	if s.deny != "" && strings.HasPrefix(name, s.deny) {
		// Restricted prefix: never escape to the global namespace. The
		// in-namespace name (which does not exist) keeps the failure mode a
		// plain "table does not exist".
		return phys
	}
	return name
}

// tempName returns the catalog name a table created by this session gets.
func (s *Session) tempName(name string) string { return s.ns + name }

// resolver adapts Resolve for the planner; nil when no namespace is set so
// the planner takes its identity fast path.
func (s *Session) resolver() Resolver {
	if s.ns == "" {
		return nil
	}
	return s.Resolve
}

// Exec parses and executes a script of one or more statements and returns
// the row count produced by the last one (the paper's r.log_exec result).
//
// Single-statement SELECT and CREATE TABLE AS texts consult the engine's
// plan cache keyed on the normalized statement text: a validated hit skips
// both parse and plan. Statements with $N parameters are rejected here —
// they need Prepare, which binds them.
func (s *Session) Exec(src string) (int64, error) {
	toks, err := lex(src)
	if err != nil {
		return 0, err
	}
	if err := rejectParams(toks); err != nil {
		return 0, err
	}
	norm := normalizeTokens(toks)
	if t, ok := s.lookupTemplate(s.ns, norm, nil); ok {
		return s.execTemplate(t)
	}
	s.c.NoteParse()
	stmts, err := parseTokens(toks)
	if err != nil {
		return 0, err
	}
	if len(stmts) == 0 {
		return 0, fmt.Errorf("sql: empty statement")
	}
	if len(stmts) == 1 {
		if n, done, err := s.execStmtCaching(stmts[0], norm); done {
			return n, err
		}
	}
	var n int64
	for _, st := range stmts {
		n, err = s.ExecStmt(st)
		if err != nil {
			return 0, err
		}
	}
	return n, nil
}

// rejectParams fails unprepared execution of parameterised statements.
func rejectParams(toks []token) error {
	for _, t := range toks {
		if t.kind == tokParam {
			return fmt.Errorf("sql: statement has parameter $%s; use Prepare", t.text)
		}
	}
	return nil
}

// execStmtCaching executes a cache-eligible single statement, building and
// caching its plan template. done=false means the statement is not
// eligible (DDL, INSERT, FROM-less SELECT) and the caller should run it
// through the ordinary path without touching the cache counters.
func (s *Session) execStmtCaching(st Statement, norm string) (n int64, done bool, err error) {
	var sel *SelectStmt
	var isCTAS bool
	var target, distBy string
	switch st := st.(type) {
	case *SelectQuery:
		sel = st.Select
	case *CreateTableAs:
		sel, isCTAS, target, distBy = st.Select, true, st.Name, st.DistBy
	default:
		return 0, false, nil
	}
	if selectHasConstBlock(sel) {
		return 0, false, nil
	}
	s.c.NotePlanCacheMiss()
	t, err := s.buildTemplate(s.ns, norm, sel, isCTAS, target, distBy, nil)
	if err != nil {
		return 0, true, err
	}
	n, err = s.execTemplate(t)
	return n, true, err
}

// execTemplate runs a parameter-free cached template.
func (s *Session) execTemplate(t *planTemplate) (int64, error) {
	plan, err := s.instantiate(t, nil)
	if err != nil {
		return 0, err
	}
	if t.isCTAS {
		return s.c.CreateTableAsCtx(s.context(), s.tempName(t.target), plan, t.distKey)
	}
	_, rows, err := s.c.QueryCtx(s.context(), plan)
	if err != nil {
		return 0, err
	}
	return int64(len(rows)), nil
}

// Execf is Exec with fmt.Sprintf-style formatting, matching how the
// paper's driver interpolates table names and round keys into its queries.
func (s *Session) Execf(format string, args ...any) (int64, error) {
	return s.Exec(fmt.Sprintf(format, args...))
}

// ExecStmt executes one parsed statement.
func (s *Session) ExecStmt(st Statement) (int64, error) {
	switch st := st.(type) {
	case *CreateTableAs:
		plan, names, err := PlanSelectResolved(s.c, st.Select, s.resolver())
		if err != nil {
			return 0, err
		}
		distKey := engine.NoDistKey
		if st.DistBy != "" {
			distKey = names.ColIndex(st.DistBy)
			if distKey < 0 {
				return 0, fmt.Errorf("sql: DISTRIBUTED BY column %q is not in the select list %v", st.DistBy, names)
			}
		}
		return s.c.CreateTableAsCtx(s.context(), s.tempName(st.Name), renameOutput(plan, names), distKey)

	case *CreateTablePlain:
		distKey := engine.NoDistKey
		if st.DistBy != "" {
			distKey = engine.Schema(st.Cols).ColIndex(st.DistBy)
			if distKey < 0 {
				return 0, fmt.Errorf("sql: DISTRIBUTED BY column %q is not among the columns %v", st.DistBy, st.Cols)
			}
		}
		_, err := s.c.CreateTable(s.tempName(st.Name), engine.Schema(st.Cols), distKey)
		return 0, err

	case *ExplainStmt:
		// EXPLAIN is answered through Explain; executing it directly just
		// validates that the query plans. EXPLAIN ANALYZE does execute,
		// reporting the produced row count like any query.
		plan, _, err := PlanSelectResolved(s.c, st.Select, s.resolver())
		if err != nil {
			return 0, err
		}
		if !st.Analyze {
			return 0, nil
		}
		_, rows, err := s.c.QueryCtx(s.context(), plan)
		if err != nil {
			return 0, err
		}
		return int64(len(rows)), nil

	case *DropTable:
		for _, n := range st.Names {
			if err := s.c.DropTable(s.Resolve(n)); err != nil {
				return 0, err
			}
		}
		return 0, nil

	case *AlterRename:
		physOld := s.Resolve(st.Old)
		physNew := st.New
		if physOld != st.Old {
			// A session-temp table stays in the session's namespace.
			physNew = s.tempName(st.New)
		}
		return 0, s.c.RenameTable(physOld, physNew)

	case *InsertValues:
		t, ok := s.c.Table(s.Resolve(st.Name))
		if !ok {
			return 0, fmt.Errorf("sql: table %q does not exist", st.Name)
		}
		rows := make([]engine.Row, len(st.Rows))
		for i, exprRow := range st.Rows {
			if len(exprRow) != len(t.Schema) {
				return 0, fmt.Errorf("sql: INSERT row has %d values, table %q has %d columns",
					len(exprRow), st.Name, len(t.Schema))
			}
			row := make(engine.Row, len(exprRow))
			for j, e := range exprRow {
				ce, err := compileScalar(s.c, e, nil)
				if err != nil {
					return 0, err
				}
				row[j] = ce.Eval(nil)
			}
			rows[i] = row
		}
		if err := s.c.InsertRows(s.Resolve(st.Name), rows); err != nil {
			return 0, err
		}
		return int64(len(rows)), nil

	case *InsertSelect:
		phys := s.Resolve(st.Name)
		t, ok := s.c.Table(phys)
		if !ok {
			return 0, fmt.Errorf("sql: table %q does not exist", st.Name)
		}
		plan, names, err := PlanSelectResolved(s.c, st.Select, s.resolver())
		if err != nil {
			return 0, err
		}
		if len(names) != len(t.Schema) {
			return 0, fmt.Errorf("sql: INSERT SELECT produces %d columns, table %q has %d",
				len(names), st.Name, len(t.Schema))
		}
		_, rows, err := s.c.QueryCtx(s.context(), plan)
		if err != nil {
			return 0, err
		}
		if err := s.c.InsertRows(phys, rows); err != nil {
			return 0, err
		}
		return int64(len(rows)), nil

	case *DeleteStmt:
		phys := s.Resolve(st.Name)
		t, ok := s.c.Table(phys)
		if !ok {
			return 0, fmt.Errorf("sql: table %q does not exist", st.Name)
		}
		keep := func(engine.Row) bool { return false } // no WHERE: delete all
		if st.Where != nil {
			sc := make(scope, len(t.Schema))
			for i, col := range t.Schema {
				sc[i] = scopeCol{qual: st.Name, name: col}
			}
			pred, err := compileScalar(s.c, st.Where, sc)
			if err != nil {
				return 0, err
			}
			keep = func(r engine.Row) bool {
				d := pred.Eval(r)
				return d.Null || d.Int == 0 // keep rows the filter does not match
			}
		}
		return s.c.DeleteRows(phys, keep)

	case *CreateComponentIndex:
		return 0, s.c.CreateComponentIndex(s.Resolve(st.Table))

	case *DropComponentIndex:
		return 0, s.c.DropComponentIndex(s.Resolve(st.Table))

	case *SelectQuery:
		plan, names, err := PlanSelectResolved(s.c, st.Select, s.resolver())
		if err != nil {
			return 0, err
		}
		_, rows, err := s.c.QueryCtx(s.context(), renameOutput(plan, names))
		if err != nil {
			return 0, err
		}
		return int64(len(rows)), nil
	}
	return 0, fmt.Errorf("sql: unsupported statement %T", st)
}

// Query parses and executes a single SELECT, returning its schema and
// rows. Like Exec it consults the plan cache on the normalized statement
// text before paying for a parse.
func (s *Session) Query(src string) (engine.Schema, []engine.Row, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, nil, err
	}
	if err := rejectParams(toks); err != nil {
		return nil, nil, err
	}
	norm := normalizeTokens(toks)
	if t, ok := s.lookupTemplate(s.ns, norm, nil); ok && !t.isCTAS {
		_, rows, err := s.c.QueryCtx(s.context(), t.plan)
		if err != nil {
			return nil, nil, err
		}
		return t.names, rows, nil
	}
	s.c.NoteParse()
	stmts, err := parseTokens(toks)
	if err != nil {
		return nil, nil, err
	}
	if len(stmts) != 1 {
		return nil, nil, fmt.Errorf("sql: Query requires a single statement, got %d", len(stmts))
	}
	var sel *SelectStmt
	switch st := stmts[0].(type) {
	case *SelectQuery:
		sel = st.Select
	default:
		return nil, nil, fmt.Errorf("sql: Query requires a SELECT statement, got %T", st)
	}
	if !selectHasConstBlock(sel) {
		s.c.NotePlanCacheMiss()
		t, err := s.buildTemplate(s.ns, norm, sel, false, "", "", nil)
		if err != nil {
			return nil, nil, err
		}
		_, rows, err := s.c.QueryCtx(s.context(), t.plan)
		if err != nil {
			return nil, nil, err
		}
		return t.names, rows, nil
	}
	plan, names, err := PlanSelectResolved(s.c, sel, s.resolver())
	if err != nil {
		return nil, nil, err
	}
	_, rows, err := s.c.QueryCtx(s.context(), renameOutput(plan, names))
	if err != nil {
		return nil, nil, err
	}
	return names, rows, nil
}

// Explain plans a SELECT (or EXPLAIN [ANALYZE] SELECT) statement and
// returns the engine operator tree as text. A plain EXPLAIN only plans;
// EXPLAIN ANALYZE (or ExplainAnalyze) also executes the query and
// annotates every operator with its measured actual rows, bytes, wall
// time and per-segment breakdown.
func (s *Session) Explain(src string) (string, error) {
	s.c.NoteParse()
	st, err := ParseOne(src)
	if err != nil {
		return "", err
	}
	var sel *SelectStmt
	analyze := false
	switch st := st.(type) {
	case *ExplainStmt:
		sel = st.Select
		analyze = st.Analyze
	case *SelectQuery:
		sel = st.Select
	case *CreateTableAs:
		sel = st.Select
	default:
		return "", fmt.Errorf("sql: EXPLAIN requires a SELECT, got %T", st)
	}
	plan, names, err := PlanSelectResolved(s.c, sel, s.resolver())
	if err != nil {
		return "", err
	}
	if !analyze {
		return FormatExplain(plan, names), nil
	}
	_, rows, root, err := s.c.QueryAnalyzeCtx(s.context(), renameOutput(plan, names))
	if err != nil {
		return "", err
	}
	return FormatExplainAnalyze(root, names, int64(len(rows))) + s.planCacheLine(), nil
}

// planCacheLine renders the cluster's plan-cache counters for EXPLAIN
// ANALYZE reports.
func (s *Session) planCacheLine() string {
	st := s.c.Stats()
	return fmt.Sprintf("Plan cache: %d hits, %d misses, %d invalidations, %d entries, %d parses\n",
		st.PlanCacheHits, st.PlanCacheMisses, st.PlanCacheInvalidations, s.c.PlanCacheLen(), st.Parses)
}

// ExplainAnalyze executes a SELECT and returns the annotated operator
// profile report, regardless of whether the source text carries the
// EXPLAIN ANALYZE prefix.
func (s *Session) ExplainAnalyze(src string) (string, error) {
	s.c.NoteParse()
	st, err := ParseOne(src)
	if err != nil {
		return "", err
	}
	var sel *SelectStmt
	switch st := st.(type) {
	case *ExplainStmt:
		sel = st.Select
	case *SelectQuery:
		sel = st.Select
	default:
		return "", fmt.Errorf("sql: EXPLAIN ANALYZE requires a SELECT, got %T", st)
	}
	plan, names, err := PlanSelectResolved(s.c, sel, s.resolver())
	if err != nil {
		return "", err
	}
	_, rows, root, err := s.c.QueryAnalyzeCtx(s.context(), renameOutput(plan, names))
	if err != nil {
		return "", err
	}
	return FormatExplainAnalyze(root, names, int64(len(rows))) + s.planCacheLine(), nil
}

// Queryf is Query with fmt.Sprintf-style formatting.
func (s *Session) Queryf(format string, args ...any) (engine.Schema, []engine.Row, error) {
	return s.Query(fmt.Sprintf(format, args...))
}

// renameOutput wraps the plan so the materialised table carries the SELECT
// list's output names (projections already do; joins and scans may not).
func renameOutput(plan engine.Plan, names engine.Schema) engine.Plan {
	if pp, ok := plan.(engine.ProjectPlan); ok {
		match := len(pp.Cols) == len(names)
		for i := range pp.Cols {
			if !match {
				break
			}
			match = pp.Cols[i].Name == names[i]
		}
		if match {
			return plan
		}
	}
	cols := make([]engine.ProjCol, len(names))
	for i, n := range names {
		cols[i] = engine.ProjCol{Expr: engine.Col(i), Name: n}
	}
	return engine.Project(plan, cols...)
}
