package sql

import (
	"fmt"
	"testing"

	"dbcc/internal/engine"
)

// benchStmt is shaped like one CC round-loop statement: a self-join with a
// grouped aggregate, the kind of text the drivers used to re-parse and
// re-plan every round. The benchmark pair below pins how much of that cost
// prepare-once/execute-many actually removes.
const benchStmtPrepared = "SELECT e.v1 AS v1, min(o.v2) AS rep FROM $1 AS e, $2 AS o WHERE e.v1 = o.v1 AND e.v2 != $3 GROUP BY e.v1"

func benchCluster(b *testing.B, cacheSize int) (*engine.Cluster, *Session) {
	b.Helper()
	c := engine.NewCluster(engine.Options{Segments: 1, PlanCacheSize: cacheSize})
	if _, err := c.CreateTable("be", engine.Schema{"v1", "v2"}, 0); err != nil {
		b.Fatal(err)
	}
	rows := make([]engine.Row, 16)
	for i := range rows {
		rows[i] = engine.Row{engine.I(int64(i % 4)), engine.I(int64(i))}
	}
	if err := c.InsertRows("be", rows); err != nil {
		b.Fatal(err)
	}
	return c, NewSession(c)
}

// BenchmarkPreparedRoundLoop compares the two ways a driver can execute
// the same round statement many times: through a prepared handle hitting
// the plan cache (instantiate a cached template, run), and as literal text
// against a cache-disabled cluster (lex, parse, plan, run — the pre-cache
// cost every round used to pay). The committed microbench baseline gates
// prepared at a fraction of parse-plan-execute, so a regression that
// sneaks parsing or planning back into the prepared hot path fails CI.
func BenchmarkPreparedRoundLoop(b *testing.B) {
	b.Run("prepared", func(b *testing.B) {
		c, s := benchCluster(b, 0)
		defer c.Close()
		p, err := s.Prepare(benchStmtPrepared)
		if err != nil {
			b.Fatal(err)
		}
		args := []Arg{Table("be"), Table("be"), Int(-1)}
		if _, _, err := p.Query(args...); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := p.Query(args...); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parseplan", func(b *testing.B) {
		c, s := benchCluster(b, -1) // cache disabled: every execution replans
		defer c.Close()
		src := fmt.Sprintf("SELECT e.v1 AS v1, min(o.v2) AS rep FROM %s AS e, %s AS o WHERE e.v1 = o.v1 AND e.v2 != %d GROUP BY e.v1", "be", "be", -1)
		if _, _, err := s.Query(src); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := s.Query(src); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPreparedPlanning isolates the per-execution planning work the
// two paths pay before the engine runs anything: the prepared path binds
// its arguments, validates the cached template against the catalog and
// instantiates a concrete plan; the text path lexes, parses and plans the
// statement from scratch. This is the overhead the plan cache exists to
// remove, and the committed baseline pins prepared at a small fraction of
// parse+plan (the end-to-end gap above is diluted by the engine's fixed
// per-query execution cost, which both paths share).
func BenchmarkPreparedPlanning(b *testing.B) {
	b.Run("prepared", func(b *testing.B) {
		c, s := benchCluster(b, 0)
		defer c.Close()
		p, err := s.Prepare(benchStmtPrepared)
		if err != nil {
			b.Fatal(err)
		}
		args := []Arg{Table("be"), Table("be"), Int(-1)}
		if _, _, err := p.Query(args...); err != nil { // warm the template
			b.Fatal(err)
		}
		sel := p.stmts[0].(*SelectQuery).Select
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bound, err := p.Bind(args...)
			if err != nil {
				b.Fatal(err)
			}
			tmpl, err := s.templateFor(bound.p, 0, sel, "", bound.args)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := s.instantiate(tmpl, bound.args); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parseplan", func(b *testing.B) {
		c, s := benchCluster(b, -1)
		defer c.Close()
		src := "SELECT e.v1 AS v1, min(o.v2) AS rep FROM be AS e, be AS o WHERE e.v1 = o.v1 AND e.v2 != -1 GROUP BY e.v1"
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			toks, err := lex(src)
			if err != nil {
				b.Fatal(err)
			}
			stmts, err := parseTokens(toks)
			if err != nil {
				b.Fatal(err)
			}
			sel := stmts[0].(*SelectQuery).Select
			if _, _, err := PlanSelectResolved(s.c, sel, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}
