package sql

import (
	"fmt"
	"strings"

	"dbcc/internal/engine"
)

// scopeCol is one visible column during name resolution: the alias of the
// relation it came from and its column name, mapped to a position in the
// current intermediate row.
type scopeCol struct {
	qual string
	name string
}

// scope is the ordered set of columns visible to expressions.
type scope []scopeCol

// resolve finds the position of a column reference, enforcing SQL's
// ambiguity rules for unqualified names.
func (s scope) resolve(id *Ident) (int, error) {
	found := -1
	for i, c := range s {
		if id.Qual != "" && c.qual != id.Qual {
			continue
		}
		if c.name != id.Name {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("sql: column reference %q is ambiguous", identString(id))
		}
		found = i
	}
	if found < 0 {
		return 0, fmt.Errorf("sql: column %q does not exist", identString(id))
	}
	return found, nil
}

func identString(id *Ident) string {
	if id.Qual != "" {
		return id.Qual + "." + id.Name
	}
	return id.Name
}

// isAggName reports whether a call is one of the supported aggregates.
func isAggName(name string) bool {
	switch name {
	case "min", "max", "count", "sum":
		return true
	}
	return false
}

// Resolver maps a table name as written in SQL to its catalog name. It is
// how isolated sessions rewrite references to their namespaced temporary
// tables; a nil Resolver is the identity.
type Resolver func(name string) string

// tableDep records one fixed (non-parameter) table a plan reads: the name
// as written, the physical table it resolved to, the schema it was
// planned against, and the row count observed at plan time. The plan
// cache re-checks name resolution and schema before reusing a cached
// plan, so DDL that slips past eager invalidation (e.g. namespace
// shadowing) still can never execute a stale plan; the row count feeds
// the statistics-staleness rule (validateTemplate), which evicts plans
// whose inputs have grown or shrunk far past what they were planned for.
type tableDep struct {
	logical string
	phys    string
	schema  engine.Schema
	rows    int64
}

// planParams carries prepared-statement planning state: the physical
// tables bound to $N table parameters this execute (for schema lookup),
// whether parameterised scans should be emitted under placeholder names
// (template mode), and the dependency record the plan cache stores.
type planParams struct {
	tables       map[int]string // $N -> physical table providing the schema
	placeholders bool           // emit paramScanName(N) instead of the physical name
	deps         []tableDep
	paramSchemas map[int]engine.Schema // schema each table param was planned against
}

// paramScanName is the placeholder scan name templates use for table
// parameter $N; the NUL prefix cannot collide with a real table name.
func paramScanName(n int) string { return fmt.Sprintf("\x00p%d", n) }

// PlanSelect compiles a SELECT statement to an engine plan plus its output
// column names.
func PlanSelect(c *engine.Cluster, sel *SelectStmt) (engine.Plan, engine.Schema, error) {
	return PlanSelectResolved(c, sel, nil)
}

// PlanSelectResolved is PlanSelect with table references passed through
// resolve before catalog lookup. Column qualifiers keep the names written
// in the query ("rc_graph.v1" still resolves even when rc_graph is stored
// under a session-private name).
func PlanSelectResolved(c *engine.Cluster, sel *SelectStmt, resolve Resolver) (engine.Plan, engine.Schema, error) {
	return planSelectParams(c, sel, resolve, nil)
}

// planSelectParams is the parameter-aware planner entry point; pp may be
// nil for statements without table parameters.
func planSelectParams(c *engine.Cluster, sel *SelectStmt, resolve Resolver, pp *planParams) (engine.Plan, engine.Schema, error) {
	if pp == nil {
		pp = &planParams{}
	}
	plan, names, err := planOneSelect(c, sel, resolve, pp)
	if err != nil {
		return nil, nil, err
	}
	last := sel
	for u := sel.UnionAll; u != nil; u = u.UnionAll {
		last = u
		p2, n2, err := planOneSelect(c, u, resolve, pp)
		if err != nil {
			return nil, nil, err
		}
		if len(n2) != len(names) {
			return nil, nil, fmt.Errorf("sql: UNION ALL branches have different arity (%d vs %d)", len(names), len(n2))
		}
		plan = engine.UnionAll(plan, p2)
	}
	// ORDER BY / LIMIT textually trail the last block but apply to the
	// whole statement, as in standard SQL.
	if len(last.OrderBy) > 0 || last.Limit >= 0 {
		keys := make([]engine.SortKey, len(last.OrderBy))
		for i, o := range last.OrderBy {
			idx := names.ColIndex(o.Col)
			if idx < 0 {
				return nil, nil, fmt.Errorf("sql: ORDER BY column %q is not in the select list %v", o.Col, names)
			}
			keys[i] = engine.SortKey{Col: idx, Desc: o.Desc}
		}
		plan = engine.Sort(plan, keys, last.Limit)
	}
	return plan, names, nil
}

// planOneSelect compiles a single SELECT block (ignoring its UnionAll tail).
func planOneSelect(c *engine.Cluster, sel *SelectStmt, resolve Resolver, pp *planParams) (engine.Plan, engine.Schema, error) {
	if len(sel.From) == 0 {
		return planConstSelect(c, sel)
	}
	plan, sc, err := planFrom(c, sel, resolve, pp)
	if err != nil {
		return nil, nil, err
	}
	// planFrom already consumed equi-join conjuncts of WHERE; the residual
	// predicate (if any) was attached there. What remains here is GROUP BY
	// and the select list.
	hasAgg := false
	for _, item := range sel.Items {
		if containsAgg(item.Expr) {
			hasAgg = true
			break
		}
	}
	var outPlan engine.Plan
	var names engine.Schema
	if len(sel.GroupBy) > 0 || hasAgg {
		outPlan, names, err = planAggregate(c, sel, plan, sc)
	} else {
		outPlan, names, err = planProjection(c, sel, plan, sc)
	}
	if err != nil {
		return nil, nil, err
	}
	if sel.Distinct {
		outPlan = engine.Distinct(outPlan)
	}
	return outPlan, names, nil
}

// planConstSelect handles FROM-less selects (constant rows). The item
// expressions are evaluated at plan time, so parameters must have been
// substituted away first (prepare.go routes parameterised constant selects
// through AST substitution instead of plan templates).
func planConstSelect(c *engine.Cluster, sel *SelectStmt) (engine.Plan, engine.Schema, error) {
	row := make(engine.Row, len(sel.Items))
	names := make(engine.Schema, len(sel.Items))
	for i, item := range sel.Items {
		if containsParam(item.Expr) {
			return nil, nil, fmt.Errorf("sql: parameters in a FROM-less SELECT require Prepare")
		}
		e, err := compileScalar(c, item.Expr, nil)
		if err != nil {
			return nil, nil, err
		}
		row[i] = e.Eval(nil)
		names[i] = itemName(item, i)
	}
	return engine.Values(names, []engine.Row{row}), names, nil
}

// containsParam reports whether an expression contains a $N parameter.
func containsParam(e Expr) bool {
	switch e := e.(type) {
	case *ParamRef:
		return true
	case *BinaryExpr:
		return containsParam(e.L) || containsParam(e.R)
	case *Call:
		for _, a := range e.Args {
			if containsParam(a) {
				return true
			}
		}
	}
	return false
}

// planFrom builds the join tree for the FROM clause, consuming the WHERE
// clause's equi-join conjuncts and applying all remaining predicates as a
// filter. It returns the joined plan and its name scope.
func planFrom(c *engine.Cluster, sel *SelectStmt, resolve Resolver, pp *planParams) (engine.Plan, scope, error) {
	type pending struct {
		item FromItem
	}
	// Plan the first FROM item (base table plus its explicit joins).
	plan, sc, err := planFromItem(c, sel.From[0], resolve, pp)
	if err != nil {
		return nil, nil, err
	}
	conjuncts := splitConjuncts(sel.Where)
	remaining := make([]pending, 0, len(sel.From)-1)
	for _, fi := range sel.From[1:] {
		remaining = append(remaining, pending{item: fi})
	}
	// Greedily fold in comma-joined tables using WHERE equi-join conjuncts,
	// the way a database planner orders a join list.
	for len(remaining) > 0 {
		progressed := false
		for ri, p := range remaining {
			rPlan, rScope, err := planFromItem(c, p.item, resolve, pp)
			if err != nil {
				return nil, nil, err
			}
			// Find a conjunct linking current scope to this table's scope.
			for ci, cj := range conjuncts {
				lk, rk, ok := equiJoinKeys(cj, sc, rScope)
				if !ok {
					continue
				}
				plan = engine.Join(plan, rPlan, lk, rk)
				sc = append(append(scope{}, sc...), rScope...)
				conjuncts = append(conjuncts[:ci], conjuncts[ci+1:]...)
				remaining = append(remaining[:ri], remaining[ri+1:]...)
				progressed = true
				break
			}
			if progressed {
				break
			}
		}
		if !progressed {
			return nil, nil, fmt.Errorf("sql: no join condition found for table %q (cartesian products are not supported)", remaining[0].item.Table.Name())
		}
	}
	// Apply leftover conjuncts as filters.
	for _, cj := range conjuncts {
		pred, err := compileScalar(c, cj, sc)
		if err != nil {
			return nil, nil, err
		}
		plan = engine.Filter(plan, pred)
	}
	return plan, sc, nil
}

// planFromItem plans one FROM element: a base table and its explicit JOIN
// chain.
func planFromItem(c *engine.Cluster, fi FromItem, resolve Resolver, pp *planParams) (engine.Plan, scope, error) {
	plan, sc, err := planTableRef(c, fi.Table, resolve, pp)
	if err != nil {
		return nil, nil, err
	}
	for _, j := range fi.Joins {
		rPlan, rScope, err := planTableRef(c, j.Table, resolve, pp)
		if err != nil {
			return nil, nil, err
		}
		lk, rk, ok := equiJoinKeys(j.On, sc, rScope)
		if !ok {
			return nil, nil, fmt.Errorf("sql: JOIN ... ON must be an equality between one column of each side")
		}
		if j.LeftOuter {
			plan = engine.LeftJoin(plan, rPlan, lk, rk)
		} else {
			plan = engine.Join(plan, rPlan, lk, rk)
		}
		sc = append(append(scope{}, sc...), rScope...)
	}
	return plan, sc, nil
}

// planTableRef plans a base table scan with its alias scope. The catalog
// lookup goes through the resolver, while the column qualifier stays the
// name (or alias) as written, so session-namespaced tables keep their
// source-level names inside expressions. Parameterised references take
// their schema from the table currently bound to the parameter; in
// template mode the scan is emitted under a placeholder name that execute
// substitutes.
func planTableRef(c *engine.Cluster, ref TableRef, resolve Resolver, pp *planParams) (engine.Plan, scope, error) {
	if ref.Param > 0 {
		if pp == nil || pp.tables == nil {
			return nil, nil, fmt.Errorf("sql: table parameter $%d requires Prepare", ref.Param)
		}
		phys, ok := pp.tables[ref.Param]
		if !ok {
			return nil, nil, fmt.Errorf("sql: table parameter $%d is not bound", ref.Param)
		}
		t, ok := c.Table(phys)
		if !ok {
			return nil, nil, fmt.Errorf("sql: table %q does not exist", phys)
		}
		sc := make(scope, len(t.Schema))
		for i, col := range t.Schema {
			sc[i] = scopeCol{qual: ref.Name(), name: col}
		}
		if pp.paramSchemas == nil {
			pp.paramSchemas = make(map[int]engine.Schema)
		}
		pp.paramSchemas[ref.Param] = append(engine.Schema(nil), t.Schema...)
		name := phys
		if pp.placeholders {
			name = paramScanName(ref.Param)
		}
		return engine.Scan(name), sc, nil
	}
	stored := ref.Table
	if resolve != nil {
		stored = resolve(ref.Table)
	}
	t, ok := c.Table(stored)
	if !ok {
		return nil, nil, fmt.Errorf("sql: table %q does not exist", ref.Table)
	}
	if pp != nil {
		pp.deps = append(pp.deps, tableDep{
			logical: ref.Table,
			phys:    stored,
			schema:  append(engine.Schema(nil), t.Schema...),
			rows:    t.Rows(),
		})
	}
	sc := make(scope, len(t.Schema))
	for i, col := range t.Schema {
		sc[i] = scopeCol{qual: ref.Name(), name: col}
	}
	return engine.Scan(stored), sc, nil
}

// splitConjuncts flattens a WHERE expression into AND-connected conjuncts.
func splitConjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*BinaryExpr); ok && b.Op == "and" {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []Expr{e}
}

// equiJoinKeys recognises "a.x = b.y" with one side resolving in left scope
// and the other in right scope, returning the key positions.
func equiJoinKeys(e Expr, left, right scope) (lk, rk int, ok bool) {
	b, isBin := e.(*BinaryExpr)
	if !isBin || b.Op != "=" {
		return 0, 0, false
	}
	li, lok := b.L.(*Ident)
	ri, rok := b.R.(*Ident)
	if !lok || !rok {
		return 0, 0, false
	}
	if l, err := left.resolve(li); err == nil {
		if r, err := right.resolve(ri); err == nil {
			return l, r, true
		}
	}
	// Try swapped orientation.
	if l, err := left.resolve(ri); err == nil {
		if r, err := right.resolve(li); err == nil {
			return l, r, true
		}
	}
	return 0, 0, false
}

// containsAgg reports whether an expression contains an aggregate call.
func containsAgg(e Expr) bool {
	switch e := e.(type) {
	case *Call:
		if isAggName(e.Name) {
			return true
		}
		for _, a := range e.Args {
			if containsAgg(a) {
				return true
			}
		}
	case *BinaryExpr:
		return containsAgg(e.L) || containsAgg(e.R)
	}
	return false
}

// compileScalar lowers an AST expression to an engine expression against a
// scope. Aggregate calls are rejected here; they are handled by
// planAggregate.
func compileScalar(c *engine.Cluster, e Expr, sc scope) (engine.Expr, error) {
	switch e := e.(type) {
	case *NumLit:
		return engine.Const(e.Val), nil
	case *NullLit:
		return engine.Null, nil
	case *ParamRef:
		return paramExpr{Index: e.Index}, nil
	case *Ident:
		idx, err := sc.resolve(e)
		if err != nil {
			return nil, err
		}
		return engine.NamedCol(idx, identString(e)), nil
	case *BinaryExpr:
		op, ok := binOps[e.Op]
		if !ok {
			return nil, fmt.Errorf("sql: unsupported operator %q", e.Op)
		}
		l, err := compileScalar(c, e.L, sc)
		if err != nil {
			return nil, err
		}
		r, err := compileScalar(c, e.R, sc)
		if err != nil {
			return nil, err
		}
		return engine.Bin(op, l, r), nil
	case *Call:
		if isAggName(e.Name) {
			return nil, fmt.Errorf("sql: aggregate %s() is not allowed here", e.Name)
		}
		args := make([]engine.Expr, len(e.Args))
		for i, a := range e.Args {
			ea, err := compileScalar(c, a, sc)
			if err != nil {
				return nil, err
			}
			args[i] = ea
		}
		switch e.Name {
		case "least":
			return engine.Least(args...), nil
		case "coalesce":
			return engine.Coalesce(args...), nil
		}
		return c.CallUDF(e.Name, args...)
	}
	return nil, fmt.Errorf("sql: unsupported expression %T", e)
}

var binOps = map[string]engine.BinOp{
	"=": engine.OpEq, "!=": engine.OpNe, "<": engine.OpLt, "<=": engine.OpLe,
	">": engine.OpGt, ">=": engine.OpGe, "+": engine.OpAdd, "-": engine.OpSub,
	"and": engine.OpAnd, "or": engine.OpOr,
}

// planProjection lowers the select list of a non-aggregating query.
func planProjection(c *engine.Cluster, sel *SelectStmt, in engine.Plan, sc scope) (engine.Plan, engine.Schema, error) {
	cols := make([]engine.ProjCol, len(sel.Items))
	names := make(engine.Schema, len(sel.Items))
	for i, item := range sel.Items {
		e, err := compileScalar(c, item.Expr, sc)
		if err != nil {
			return nil, nil, err
		}
		names[i] = itemName(item, i)
		cols[i] = engine.ProjCol{Expr: e, Name: names[i]}
	}
	return engine.Project(in, cols...), names, nil
}

// planAggregate lowers a grouped (or globally aggregated) select.
func planAggregate(c *engine.Cluster, sel *SelectStmt, in engine.Plan, sc scope) (engine.Plan, engine.Schema, error) {
	// Resolve group keys.
	keys := make([]int, len(sel.GroupBy))
	keyOut := make(map[int]int) // input position -> key output position
	for i, id := range sel.GroupBy {
		idx, err := sc.resolve(id)
		if err != nil {
			return nil, nil, err
		}
		keys[i] = idx
		keyOut[idx] = i
	}
	// Collect aggregate calls from all select items (by pointer identity).
	var aggs []engine.Agg
	aggPos := make(map[*Call]int)
	var collect func(e Expr) error
	collect = func(e Expr) error {
		switch e := e.(type) {
		case *Call:
			if isAggName(e.Name) {
				if containsNestedAgg(e.Args) {
					return fmt.Errorf("sql: nested aggregates are not allowed")
				}
				var arg engine.Expr
				var op engine.AggOp
				switch e.Name {
				case "min":
					op = engine.AggMin
				case "max":
					op = engine.AggMax
				case "count":
					op = engine.AggCount
				case "sum":
					op = engine.AggSum
				}
				if !e.Star {
					if len(e.Args) != 1 {
						return fmt.Errorf("sql: %s() takes exactly one argument", e.Name)
					}
					var err error
					arg, err = compileScalar(c, e.Args[0], sc)
					if err != nil {
						return err
					}
				} else if e.Name != "count" {
					return fmt.Errorf("sql: %s(*) is not valid", e.Name)
				}
				aggPos[e] = len(keys) + len(aggs)
				aggs = append(aggs, engine.Agg{Op: op, Arg: arg, Name: fmt.Sprintf("agg%d", len(aggs))})
				return nil
			}
			for _, a := range e.Args {
				if err := collect(a); err != nil {
					return err
				}
			}
		case *BinaryExpr:
			if err := collect(e.L); err != nil {
				return err
			}
			return collect(e.R)
		}
		return nil
	}
	for _, item := range sel.Items {
		if err := collect(item.Expr); err != nil {
			return nil, nil, err
		}
	}
	grouped := engine.GroupBy(in, keys, aggs...)

	// Compile select items against the post-aggregation row layout:
	// group keys first, then aggregate results.
	var compilePost func(e Expr) (engine.Expr, error)
	compilePost = func(e Expr) (engine.Expr, error) {
		switch e := e.(type) {
		case *NumLit:
			return engine.Const(e.Val), nil
		case *NullLit:
			return engine.Null, nil
		case *ParamRef:
			return paramExpr{Index: e.Index}, nil
		case *Ident:
			idx, err := sc.resolve(e)
			if err != nil {
				return nil, err
			}
			out, ok := keyOut[idx]
			if !ok {
				return nil, fmt.Errorf("sql: column %q must appear in the GROUP BY clause or be used in an aggregate function", identString(e))
			}
			return engine.NamedCol(out, identString(e)), nil
		case *Call:
			if isAggName(e.Name) {
				return engine.Col(aggPos[e]), nil
			}
			args := make([]engine.Expr, len(e.Args))
			for i, a := range e.Args {
				ea, err := compilePost(a)
				if err != nil {
					return nil, err
				}
				args[i] = ea
			}
			switch e.Name {
			case "least":
				return engine.Least(args...), nil
			case "coalesce":
				return engine.Coalesce(args...), nil
			}
			return c.CallUDF(e.Name, args...)
		case *BinaryExpr:
			op, ok := binOps[e.Op]
			if !ok {
				return nil, fmt.Errorf("sql: unsupported operator %q", e.Op)
			}
			l, err := compilePost(e.L)
			if err != nil {
				return nil, err
			}
			r, err := compilePost(e.R)
			if err != nil {
				return nil, err
			}
			return engine.Bin(op, l, r), nil
		}
		return nil, fmt.Errorf("sql: unsupported expression %T", e)
	}
	cols := make([]engine.ProjCol, len(sel.Items))
	names := make(engine.Schema, len(sel.Items))
	for i, item := range sel.Items {
		e, err := compilePost(item.Expr)
		if err != nil {
			return nil, nil, err
		}
		names[i] = itemName(item, i)
		cols[i] = engine.ProjCol{Expr: e, Name: names[i]}
	}
	return engine.Project(grouped, cols...), names, nil
}

func containsNestedAgg(args []Expr) bool {
	for _, a := range args {
		if containsAgg(a) {
			return true
		}
	}
	return false
}

// itemName derives the output column name of a select item.
func itemName(item SelectItem, pos int) string {
	if item.Alias != "" {
		return item.Alias
	}
	switch e := item.Expr.(type) {
	case *Ident:
		return e.Name
	case *Call:
		return strings.ToLower(e.Name)
	}
	return fmt.Sprintf("column%d", pos+1)
}
