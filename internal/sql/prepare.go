package sql

import (
	"fmt"
	"strings"

	"dbcc/internal/engine"
)

// This file implements $1-style prepared statements: parse and plan once,
// execute many times. A Prepared handle carries the parsed AST; the logical
// plan is compiled on first execute into a planTemplate — an engine plan
// whose value parameters are paramExpr placeholders and whose
// parameterised table scans read placeholder names — and cached in the
// engine's plan cache. Each execute rebuilds a concrete plan by walking
// the immutable template and substituting the bound constants and physical
// table names, which is orders of magnitude cheaper than parsing and
// planning SQL text.
//
// Two parameter kinds exist, inferred from where $N appears:
//
//   - value parameters ($N in expression position) bind int64 or NULL;
//   - table parameters ($N in table-name position) bind a table name, the
//     mechanism that lets the round-N temp-table rename dance of the CC
//     drivers reuse one cached plan while the physical tables change.
//
// Statements whose table references are all parameters produce
// namespace-independent cache entries (the "" namespace): their plans
// contain no fixed names, so sessions with different temp-table prefixes —
// successive algorithm runs, or different server connections — share one
// template. Correctness never rests on invalidation alone: every cache hit
// is validated against the current catalog (each fixed table must still
// resolve to the same physical table with the same schema, and each bound
// table's schema must match the one planned against) and a failed
// validation replans, counting a miss.

// Arg is one bound parameter value: an integer, NULL, or a table name.
type Arg struct {
	kind  argKind
	i     int64
	table string
}

type argKind int

const (
	argInt argKind = iota
	argNull
	argTable
)

// Int binds an integer value parameter.
func Int(v int64) Arg { return Arg{kind: argInt, i: v} }

// Null binds SQL NULL to a value parameter.
func Null() Arg { return Arg{kind: argNull} }

// Table binds a table name (in the session's logical namespace) to a table
// parameter.
func Table(name string) Arg { return Arg{kind: argTable, table: name} }

// IsTable reports whether the argument is a table-name binding.
func (a Arg) IsTable() bool { return a.kind == argTable }

// TableName returns the bound table name ("" for value arguments).
func (a Arg) TableName() string { return a.table }

// Int64 returns the bound integer value and whether the argument is a
// non-NULL integer.
func (a Arg) Int64() (int64, bool) { return a.i, a.kind == argInt }

// String renders the argument the way it would appear inline in SQL.
func (a Arg) String() string {
	switch a.kind {
	case argNull:
		return "null"
	case argTable:
		return a.table
	default:
		return fmt.Sprintf("%d", a.i)
	}
}

// BindError is the typed error for parameter binding failures: argument
// count mismatches and kind mismatches (a table name bound to a value
// parameter or vice versa).
type BindError struct {
	Want int    // parameters the statement declares
	Got  int    // arguments supplied
	Msg  string // human-readable detail
}

func (e *BindError) Error() string { return "sql: bind: " + e.Msg }

// paramExpr is a $N placeholder inside a plan template. It never executes:
// instantiation replaces it with a ConstExpr before the engine sees the
// plan, so Eval firing means a template escaped substitution.
type paramExpr struct{ Index int }

func (e paramExpr) Eval(engine.Row) engine.Datum {
	panic(fmt.Sprintf("sql: unsubstituted parameter $%d reached execution", e.Index))
}

func (e paramExpr) String() string { return fmt.Sprintf("$%d", e.Index) }

// Prepared is a parameterised statement handle: the script is lexed and
// parsed exactly once, at Prepare time. A handle is a lightweight
// single-goroutine object like the Session that created it; the plan
// templates built from it live in the cluster-wide plan cache and are
// shared across handles and sessions.
type Prepared struct {
	s          *Session
	src        string
	norm       string // normalized text, the cache-key component
	stmts      []Statement
	numParams  int
	tableParam []bool // index i: is $i+1 a table parameter?
	nsKeys     []string
}

// NumParams returns how many $N parameters the statement declares.
func (p *Prepared) NumParams() int { return p.numParams }

// ParamIsTable reports whether parameter n (1-based) is a table parameter.
func (p *Prepared) ParamIsTable(n int) bool {
	return n >= 1 && n <= p.numParams && p.tableParam[n-1]
}

// IsQuery reports whether the prepared script is a single SELECT, i.e.
// whether Query returns rows.
func (p *Prepared) IsQuery() bool {
	if len(p.stmts) != 1 {
		return false
	}
	_, ok := p.stmts[0].(*SelectQuery)
	return ok
}

// Source returns the statement text as given to Prepare.
func (p *Prepared) Source() string { return p.src }

// Prepare lexes and parses a script once, returning a handle that executes
// it with bound parameters. Parameters must be numbered contiguously from
// $1, and each parameter must be used consistently as either a value or a
// table name.
func (s *Session) Prepare(src string) (*Prepared, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	s.c.NoteParse()
	stmts, err := parseTokens(toks)
	if err != nil {
		return nil, err
	}
	if len(stmts) == 0 {
		return nil, fmt.Errorf("sql: empty statement")
	}
	valueParams := make(map[int]bool)
	tableParams := make(map[int]bool)
	for _, st := range stmts {
		collectStmtParams(st, valueParams, tableParams)
	}
	numParams := 0
	for i := range valueParams {
		if i > numParams {
			numParams = i
		}
	}
	for i := range tableParams {
		if i > numParams {
			numParams = i
		}
	}
	tableParam := make([]bool, numParams)
	for i := 1; i <= numParams; i++ {
		switch {
		case valueParams[i] && tableParams[i]:
			return nil, fmt.Errorf("sql: parameter $%d is used both as a value and as a table name", i)
		case !valueParams[i] && !tableParams[i]:
			return nil, fmt.Errorf("sql: parameters must be numbered contiguously from $1; $%d is unused", i)
		case tableParams[i]:
			tableParam[i-1] = true
		}
	}
	norm := normalizeTokens(toks)
	p := &Prepared{
		s:          s,
		src:        src,
		norm:       norm,
		stmts:      stmts,
		numParams:  numParams,
		tableParam: tableParam,
		nsKeys:     make([]string, len(stmts)),
	}
	for i, st := range stmts {
		p.nsKeys[i] = s.nsKeyFor(st)
	}
	return p, nil
}

// nsKeyFor picks the cache namespace for a statement: statements whose
// table references are all parameters have no fixed names in their plans,
// so their templates are shared across namespaces under the "" key.
func (s *Session) nsKeyFor(st Statement) string {
	if stmtAllTableRefsParam(st) {
		return ""
	}
	return s.ns
}

// Bound is a Prepared statement with its arguments validated and attached.
type Bound struct {
	p    *Prepared
	args []Arg
}

// Bind validates the arguments against the statement's parameter list and
// returns an executable binding. Count or kind mismatches return a typed
// *BindError.
func (p *Prepared) Bind(args ...Arg) (*Bound, error) {
	if err := p.checkArgs(args); err != nil {
		return nil, err
	}
	return &Bound{p: p, args: args}, nil
}

// Bind is Prepared.Bind as a session method.
func (s *Session) Bind(p *Prepared, args ...Arg) (*Bound, error) { return p.Bind(args...) }

// checkArgs validates argument count and kinds.
func (p *Prepared) checkArgs(args []Arg) error {
	if len(args) != p.numParams {
		return &BindError{
			Want: p.numParams, Got: len(args),
			Msg: fmt.Sprintf("statement declares %d parameter(s), got %d argument(s)", p.numParams, len(args)),
		}
	}
	for i, a := range args {
		if p.tableParam[i] && a.kind != argTable {
			return &BindError{Want: p.numParams, Got: len(args),
				Msg: fmt.Sprintf("parameter $%d is a table name; bind it with Table(...)", i+1)}
		}
		if !p.tableParam[i] && a.kind == argTable {
			return &BindError{Want: p.numParams, Got: len(args),
				Msg: fmt.Sprintf("parameter $%d is a value; got a table name", i+1)}
		}
		if a.kind == argTable && a.table == "" {
			return &BindError{Want: p.numParams, Got: len(args),
				Msg: fmt.Sprintf("parameter $%d: empty table name", i+1)}
		}
	}
	return nil
}

// Exec binds the arguments and executes the statement(s), returning the
// row count of the last one, like Session.Exec.
func (p *Prepared) Exec(args ...Arg) (int64, error) {
	b, err := p.Bind(args...)
	if err != nil {
		return 0, err
	}
	return p.s.ExecutePrepared(b)
}

// Query binds the arguments and executes a single prepared SELECT,
// returning its schema and rows, like Session.Query.
func (p *Prepared) Query(args ...Arg) (engine.Schema, []engine.Row, error) {
	b, err := p.Bind(args...)
	if err != nil {
		return nil, nil, err
	}
	return p.s.QueryPrepared(b)
}

// ExecutePrepared executes a bound statement against this session,
// returning the row count of the last sub-statement.
func (s *Session) ExecutePrepared(b *Bound) (int64, error) {
	var n int64
	for i, st := range b.p.stmts {
		var err error
		n, err = s.execPreparedStmt(b.p, i, st, b.args)
		if err != nil {
			return 0, err
		}
	}
	return n, nil
}

// QueryPrepared executes a bound single-SELECT statement, returning its
// schema and rows.
func (s *Session) QueryPrepared(b *Bound) (engine.Schema, []engine.Row, error) {
	if len(b.p.stmts) != 1 {
		return nil, nil, fmt.Errorf("sql: QueryPrepared requires a single statement, got %d", len(b.p.stmts))
	}
	sq, ok := b.p.stmts[0].(*SelectQuery)
	if !ok {
		return nil, nil, fmt.Errorf("sql: QueryPrepared requires a SELECT statement, got %T", b.p.stmts[0])
	}
	if selectHasConstBlock(sq.Select) {
		// FROM-less blocks evaluate expressions at plan time, so they take
		// the substitute-and-replan path instead of a plan template.
		sel := substituteSelect(sq.Select, b.args)
		plan, names, err := PlanSelectResolved(s.c, sel, s.resolver())
		if err != nil {
			return nil, nil, err
		}
		_, rows, err := s.c.QueryCtx(s.context(), renameOutput(plan, names))
		if err != nil {
			return nil, nil, err
		}
		return names, rows, nil
	}
	tmpl, err := s.templateFor(b.p, 0, sq.Select, "", b.args)
	if err != nil {
		return nil, nil, err
	}
	plan, err := s.instantiate(tmpl, b.args)
	if err != nil {
		return nil, nil, err
	}
	_, rows, err := s.c.QueryCtx(s.context(), plan)
	if err != nil {
		return nil, nil, err
	}
	return tmpl.names, rows, nil
}

// execPreparedStmt executes sub-statement i of a prepared script.
func (s *Session) execPreparedStmt(p *Prepared, i int, st Statement, args []Arg) (int64, error) {
	switch st := st.(type) {
	case *SelectQuery:
		if selectHasConstBlock(st.Select) {
			return s.ExecStmt(substituteStmt(st, args))
		}
		tmpl, err := s.templateFor(p, i, st.Select, "", args)
		if err != nil {
			return 0, err
		}
		plan, err := s.instantiate(tmpl, args)
		if err != nil {
			return 0, err
		}
		_, rows, err := s.c.QueryCtx(s.context(), plan)
		if err != nil {
			return 0, err
		}
		return int64(len(rows)), nil

	case *CreateTableAs:
		if selectHasConstBlock(st.Select) {
			return s.ExecStmt(substituteStmt(st, args))
		}
		tmpl, err := s.templateFor(p, i, st.Select, st.DistBy, args)
		if err != nil {
			return 0, err
		}
		plan, err := s.instantiate(tmpl, args)
		if err != nil {
			return 0, err
		}
		target := st.Name
		if st.NameParam > 0 {
			target = args[st.NameParam-1].table
		}
		return s.c.CreateTableAsCtx(s.context(), s.tempName(target), plan, tmpl.distKey)

	default:
		// DDL, INSERT and EXPLAIN have no plan worth templating; direct AST
		// substitution reuses the parse and the ordinary execution path.
		return s.ExecStmt(substituteStmt(st, args))
	}
}

// planTemplate is a compiled parameterised plan stored in the engine's
// plan cache: the plan tree with placeholders, the output names, the
// resolved distribution key and target of a CTAS, and the catalog facts
// the plan assumed (validated on every cache hit).
type planTemplate struct {
	plan       engine.Plan
	names      engine.Schema
	isCTAS     bool
	target     string // CTAS target logical name ("" when parameterised)
	distKey    int
	deps       []tableDep
	paramScans []paramScan
}

// paramScan records one table parameter of a template: its $N index, the
// placeholder scan name baked into the template plan, and the schema it
// was planned against. Precomputing this at build time keeps the
// per-execution path free of formatting and map allocation.
type paramScan struct {
	idx    int
	name   string
	schema engine.Schema
}

// lookupTemplate consults the plan cache and validates any hit against
// the current catalog. Invalid entries are evicted; the caller replans.
// The hit counter moves only here, the miss counter only where callers
// replan, so hits+misses equals the number of cache-eligible executions.
func (s *Session) lookupTemplate(nsKey, norm string, args []Arg) (*planTemplate, bool) {
	if v, ok := s.c.PlanCacheGet(nsKey, norm); ok {
		if t, ok := v.(*planTemplate); ok && s.validateTemplate(t, args) {
			s.c.NotePlanCacheHit()
			return t, true
		}
		s.c.PlanCacheRemove(nsKey, norm)
	}
	return nil, false
}

// buildTemplate plans a select into a template and stores it in the plan
// cache under (nsKey, norm), keyed to the physical tables it depends on.
func (s *Session) buildTemplate(nsKey, norm string, sel *SelectStmt, isCTAS bool, target, distBy string, tableArgs map[int]string) (*planTemplate, error) {
	pp := &planParams{tables: tableArgs, placeholders: true}
	plan, names, err := planSelectParams(s.c, sel, s.resolver(), pp)
	if err != nil {
		return nil, err
	}
	t := &planTemplate{
		plan:    renameOutput(plan, names),
		names:   names,
		isCTAS:  isCTAS,
		target:  target,
		distKey: engine.NoDistKey,
	}
	t.deps = pp.deps
	for idx, schema := range pp.paramSchemas {
		t.paramScans = append(t.paramScans, paramScan{idx: idx, name: paramScanName(idx), schema: schema})
	}
	if distBy != "" {
		t.distKey = names.ColIndex(distBy)
		if t.distKey < 0 {
			return nil, fmt.Errorf("sql: DISTRIBUTED BY column %q is not in the select list %v", distBy, names)
		}
	}
	deps := make([]string, len(pp.deps))
	for j, d := range pp.deps {
		deps[j] = d.phys
	}
	s.c.PlanCachePut(nsKey, norm, t, deps)
	return t, nil
}

// templateFor returns the plan template for sub-statement i of a prepared
// script. Hits are validated against the current catalog before reuse;
// failed validation evicts, replans and counts a miss.
func (s *Session) templateFor(p *Prepared, i int, sel *SelectStmt, distBy string, args []Arg) (*planTemplate, error) {
	norm := p.norm
	if len(p.stmts) > 1 {
		norm = fmt.Sprintf("%s#%d", p.norm, i)
	}
	nsKey := p.nsKeys[i]
	if t, ok := s.lookupTemplate(nsKey, norm, args); ok {
		return t, nil
	}
	s.c.NotePlanCacheMiss()
	var isCTAS bool
	var target string
	if ct, ok := p.stmts[i].(*CreateTableAs); ok {
		isCTAS = true
		target = ct.Name // "" when the target is a parameter
	}
	return s.buildTemplate(nsKey, norm, sel, isCTAS, target, distBy, s.resolveTableArgs(args))
}

// resolveTableArgs maps each table argument's logical name to the physical
// table this session reads under that name right now.
func (s *Session) resolveTableArgs(args []Arg) map[int]string {
	var m map[int]string
	for i, a := range args {
		if a.kind != argTable {
			continue
		}
		if m == nil {
			m = make(map[int]string)
		}
		m[i+1] = s.Resolve(a.table)
	}
	return m
}

// validateTemplate re-checks everything the cached plan assumed about the
// catalog: every fixed table still resolves to the same physical table
// with an unchanged schema, and every bound table parameter names an
// existing table whose schema matches the one planned against. It also
// checks table *statistics*: a plan whose input row count has drifted
// past statsStaleFactor (with an absolute change of at least
// statsStaleMinRows, so small tables never thrash) is treated as stale —
// plan-time decisions that depend on cardinality (join order heuristics;
// future cost-based choices) must be retaken once the data has shifted
// that far. A stale plan never executes — it fails here and is replanned.
func (s *Session) validateTemplate(t *planTemplate, args []Arg) bool {
	for _, d := range t.deps {
		if s.Resolve(d.logical) != d.phys {
			return false
		}
		tbl, ok := s.c.Table(d.phys)
		if !ok || !sameSchema(tbl.Schema, d.schema) {
			return false
		}
		if statsStale(d.rows, tbl.Rows()) {
			return false
		}
	}
	for _, ps := range t.paramScans {
		if ps.idx > len(args) {
			return false
		}
		tbl, ok := s.c.Table(s.Resolve(args[ps.idx-1].table))
		if !ok || !sameSchema(tbl.Schema, ps.schema) {
			return false
		}
	}
	return true
}

// Statistics-staleness thresholds: a cached plan is invalidated when an
// input table's row count has grown or shrunk by statsStaleFactor AND the
// absolute change is at least statsStaleMinRows. The factor catches the
// interesting shifts (a table crossing a broadcast/bloom threshold); the
// floor keeps the round loop's small, churning temp tables from evicting
// their templates on every round.
const (
	statsStaleFactor  = 4
	statsStaleMinRows = 1024
)

// statsStale reports whether a table's live row count has drifted far
// enough from the plan-time count to invalidate plans that read it.
func statsStale(planned, now int64) bool {
	lo, hi := planned, now
	if lo > hi {
		lo, hi = hi, lo
	}
	if hi-lo < statsStaleMinRows {
		return false
	}
	return hi >= lo*statsStaleFactor
}

func sameSchema(a, b engine.Schema) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// scanSub maps one placeholder scan name to the physical table it reads
// this execution. A handful of entries at most, so substitution uses a
// linear scan over a stack-friendly slice instead of a map.
type scanSub struct {
	name, phys string
}

func lookupScan(subs []scanSub, name string) (string, bool) {
	for _, s := range subs {
		if s.name == name {
			return s.phys, true
		}
	}
	return "", false
}

// instantiate turns a template into a concrete executable plan for the
// given arguments, substituting physical scan names for table-parameter
// placeholders and constants for value-parameter placeholders. This is
// the prepared path's entire per-execution planning cost, so it avoids
// maps and formatting: one slice allocation plus the plan-tree copy.
func (s *Session) instantiate(t *planTemplate, args []Arg) (engine.Plan, error) {
	hasVals := false
	for _, a := range args {
		if a.kind != argTable {
			hasVals = true
			break
		}
	}
	if len(t.paramScans) == 0 && !hasVals {
		return t.plan, nil
	}
	var subs []scanSub
	if len(t.paramScans) > 0 {
		subs = make([]scanSub, len(t.paramScans))
		for i, ps := range t.paramScans {
			subs[i] = scanSub{name: ps.name, phys: s.Resolve(args[ps.idx-1].table)}
		}
	}
	return instantiatePlan(t.plan, subs, args), nil
}

// instantiatePlan rebuilds the value-typed plan tree with placeholders
// substituted. Untouched subtrees are still copied by value, which is
// cheap: the tree has a handful of nodes.
func instantiatePlan(p engine.Plan, subs []scanSub, args []Arg) engine.Plan {
	switch p := p.(type) {
	case engine.ScanPlan:
		if phys, ok := lookupScan(subs, p.Table); ok {
			return engine.ScanPlan{Table: phys}
		}
		return p
	case engine.FilterPlan:
		return engine.FilterPlan{
			Input: instantiatePlan(p.Input, subs, args),
			Pred:  instantiateExpr(p.Pred, args),
		}
	case engine.ProjectPlan:
		cols := make([]engine.ProjCol, len(p.Cols))
		for i, c := range p.Cols {
			cols[i] = engine.ProjCol{Expr: instantiateExpr(c.Expr, args), Name: c.Name}
		}
		return engine.ProjectPlan{Input: instantiatePlan(p.Input, subs, args), Cols: cols}
	case engine.JoinPlan:
		return engine.JoinPlan{
			Left:     instantiatePlan(p.Left, subs, args),
			Right:    instantiatePlan(p.Right, subs, args),
			LeftKey:  p.LeftKey,
			RightKey: p.RightKey,
			Kind:     p.Kind,
		}
	case engine.GroupByPlan:
		aggs := make([]engine.Agg, len(p.Aggs))
		for i, a := range p.Aggs {
			arg := a.Arg
			if arg != nil {
				arg = instantiateExpr(arg, args)
			}
			aggs[i] = engine.Agg{Op: a.Op, Arg: arg, Name: a.Name}
		}
		return engine.GroupByPlan{Input: instantiatePlan(p.Input, subs, args), Keys: p.Keys, Aggs: aggs}
	case engine.DistinctPlan:
		return engine.DistinctPlan{Input: instantiatePlan(p.Input, subs, args)}
	case engine.UnionAllPlan:
		ins := make([]engine.Plan, len(p.Inputs))
		for i, in := range p.Inputs {
			ins[i] = instantiatePlan(in, subs, args)
		}
		return engine.UnionAllPlan{Inputs: ins}
	case engine.SortPlan:
		return engine.SortPlan{Input: instantiatePlan(p.Input, subs, args), Keys: p.Keys, Limit: p.Limit}
	default:
		// ValuesPlan and any future leaf: nothing to substitute.
		return p
	}
}

// instantiateExpr rebuilds an expression tree with paramExpr placeholders
// replaced by the bound constants, read straight from the argument slice.
func instantiateExpr(e engine.Expr, args []Arg) engine.Expr {
	switch e := e.(type) {
	case paramExpr:
		a := args[e.Index-1]
		if a.kind == argNull {
			return engine.ConstExpr{Val: engine.NullDatum}
		}
		return engine.ConstExpr{Val: engine.I(a.i)}
	case engine.BinExpr:
		return engine.BinExpr{Op: e.Op, Left: instantiateExpr(e.Left, args), Right: instantiateExpr(e.Right, args)}
	case engine.LeastExpr:
		return engine.LeastExpr{Args: instantiateExprs(e.Args, args)}
	case engine.CoalesceExpr:
		return engine.CoalesceExpr{Args: instantiateExprs(e.Args, args)}
	case engine.IsNullExpr:
		return engine.IsNullExpr{Arg: instantiateExpr(e.Arg, args), Negate: e.Negate}
	case engine.UDFExpr:
		return engine.UDFExpr{Name: e.Name, Fn: e.Fn, Args: instantiateExprs(e.Args, args)}
	default:
		// ColRef, ConstExpr: no parameters below.
		return e
	}
}

func instantiateExprs(es []engine.Expr, args []Arg) []engine.Expr {
	out := make([]engine.Expr, len(es))
	for i, e := range es {
		out[i] = instantiateExpr(e, args)
	}
	return out
}

// --- AST parameter analysis and substitution ---

// collectStmtParams records which $N indices appear as value parameters
// and which as table-name parameters.
func collectStmtParams(st Statement, values, tables map[int]bool) {
	switch st := st.(type) {
	case *CreateTableAs:
		if st.NameParam > 0 {
			tables[st.NameParam] = true
		}
		collectSelectParams(st.Select, values, tables)
	case *CreateTablePlain:
		if st.NameParam > 0 {
			tables[st.NameParam] = true
		}
	case *DropTable:
		for _, prm := range st.NameParams {
			if prm > 0 {
				tables[prm] = true
			}
		}
	case *AlterRename:
		if st.OldParam > 0 {
			tables[st.OldParam] = true
		}
		if st.NewParam > 0 {
			tables[st.NewParam] = true
		}
	case *InsertValues:
		if st.NameParam > 0 {
			tables[st.NameParam] = true
		}
		for _, row := range st.Rows {
			for _, e := range row {
				collectExprParams(e, values)
			}
		}
	case *InsertSelect:
		if st.NameParam > 0 {
			tables[st.NameParam] = true
		}
		collectSelectParams(st.Select, values, tables)
	case *DeleteStmt:
		if st.NameParam > 0 {
			tables[st.NameParam] = true
		}
		collectExprParams(st.Where, values)
	case *CreateComponentIndex:
		if st.TableParam > 0 {
			tables[st.TableParam] = true
		}
	case *DropComponentIndex:
		if st.TableParam > 0 {
			tables[st.TableParam] = true
		}
	case *ExplainStmt:
		collectSelectParams(st.Select, values, tables)
	case *SelectQuery:
		collectSelectParams(st.Select, values, tables)
	}
}

func collectSelectParams(sel *SelectStmt, values, tables map[int]bool) {
	for ; sel != nil; sel = sel.UnionAll {
		for _, item := range sel.Items {
			collectExprParams(item.Expr, values)
		}
		for _, fi := range sel.From {
			if fi.Table.Param > 0 {
				tables[fi.Table.Param] = true
			}
			for _, j := range fi.Joins {
				if j.Table.Param > 0 {
					tables[j.Table.Param] = true
				}
				collectExprParams(j.On, values)
			}
		}
		collectExprParams(sel.Where, values)
	}
}

func collectExprParams(e Expr, values map[int]bool) {
	switch e := e.(type) {
	case nil:
	case *ParamRef:
		values[e.Index] = true
	case *BinaryExpr:
		collectExprParams(e.L, values)
		collectExprParams(e.R, values)
	case *Call:
		for _, a := range e.Args {
			collectExprParams(a, values)
		}
	}
}

// stmtAllTableRefsParam reports whether every table the statement reads is
// a parameter (such statements produce namespace-independent templates).
// Statements that read no tables at all return false: their cache entries
// stay namespace-local.
func stmtAllTableRefsParam(st Statement) bool {
	var sel *SelectStmt
	switch st := st.(type) {
	case *CreateTableAs:
		sel = st.Select
	case *SelectQuery:
		sel = st.Select
	case *ExplainStmt:
		sel = st.Select
	default:
		return false
	}
	refs := 0
	for ; sel != nil; sel = sel.UnionAll {
		for _, fi := range sel.From {
			refs++
			if fi.Table.Param == 0 {
				return false
			}
			for _, j := range fi.Joins {
				refs++
				if j.Table.Param == 0 {
					return false
				}
			}
		}
	}
	return refs > 0
}

// selectHasConstBlock reports whether any block of the (possibly UNION
// ALL-chained) select is FROM-less. Such blocks evaluate their expressions
// at plan time, so parameterised ones cannot become templates.
func selectHasConstBlock(sel *SelectStmt) bool {
	for ; sel != nil; sel = sel.UnionAll {
		if len(sel.From) == 0 {
			return true
		}
	}
	return false
}

// substituteStmt deep-copies a statement with every parameter replaced by
// its bound argument: value parameters become literals, table parameters
// become literal table names. The result executes through the ordinary
// statement path.
func substituteStmt(st Statement, args []Arg) Statement {
	switch st := st.(type) {
	case *CreateTableAs:
		out := *st
		out.Name, out.NameParam = substName(st.Name, st.NameParam, args)
		out.Select = substituteSelect(st.Select, args)
		return &out
	case *CreateTablePlain:
		out := *st
		out.Name, out.NameParam = substName(st.Name, st.NameParam, args)
		return &out
	case *DropTable:
		out := &DropTable{
			Names:      append([]string(nil), st.Names...),
			NameParams: make([]int, len(st.Names)),
		}
		for i := range out.Names {
			out.Names[i], out.NameParams[i] = substName(st.Names[i], st.NameParams[i], args)
		}
		return out
	case *AlterRename:
		out := *st
		out.Old, out.OldParam = substName(st.Old, st.OldParam, args)
		out.New, out.NewParam = substName(st.New, st.NewParam, args)
		return &out
	case *InsertValues:
		out := &InsertValues{Rows: make([][]Expr, len(st.Rows))}
		out.Name, out.NameParam = substName(st.Name, st.NameParam, args)
		for i, row := range st.Rows {
			out.Rows[i] = make([]Expr, len(row))
			for j, e := range row {
				out.Rows[i][j] = substituteExpr(e, args)
			}
		}
		return out
	case *InsertSelect:
		out := *st
		out.Name, out.NameParam = substName(st.Name, st.NameParam, args)
		out.Select = substituteSelect(st.Select, args)
		return &out
	case *DeleteStmt:
		out := *st
		out.Name, out.NameParam = substName(st.Name, st.NameParam, args)
		out.Where = substituteExpr(st.Where, args)
		return &out
	case *CreateComponentIndex:
		out := *st
		out.Table, out.TableParam = substName(st.Table, st.TableParam, args)
		return &out
	case *DropComponentIndex:
		out := *st
		out.Table, out.TableParam = substName(st.Table, st.TableParam, args)
		return &out
	case *ExplainStmt:
		return &ExplainStmt{Select: substituteSelect(st.Select, args), Analyze: st.Analyze}
	case *SelectQuery:
		return &SelectQuery{Select: substituteSelect(st.Select, args)}
	}
	return st
}

func substName(name string, param int, args []Arg) (string, int) {
	if param > 0 {
		return args[param-1].table, 0
	}
	return name, 0
}

func substituteSelect(sel *SelectStmt, args []Arg) *SelectStmt {
	if sel == nil {
		return nil
	}
	out := *sel
	out.Items = make([]SelectItem, len(sel.Items))
	for i, item := range sel.Items {
		out.Items[i] = SelectItem{Expr: substituteExpr(item.Expr, args), Alias: item.Alias}
	}
	out.From = make([]FromItem, len(sel.From))
	for i, fi := range sel.From {
		nf := FromItem{Table: substituteTableRef(fi.Table, args)}
		nf.Joins = make([]JoinClause, len(fi.Joins))
		for j, jc := range fi.Joins {
			nf.Joins[j] = JoinClause{
				LeftOuter: jc.LeftOuter,
				Table:     substituteTableRef(jc.Table, args),
				On:        substituteExpr(jc.On, args),
			}
		}
		out.From[i] = nf
	}
	out.Where = substituteExpr(sel.Where, args)
	out.UnionAll = substituteSelect(sel.UnionAll, args)
	return &out
}

func substituteTableRef(ref TableRef, args []Arg) TableRef {
	if ref.Param > 0 {
		name := args[ref.Param-1].table
		alias := ref.Alias
		return TableRef{Table: name, Alias: alias}
	}
	return ref
}

func substituteExpr(e Expr, args []Arg) Expr {
	switch e := e.(type) {
	case nil:
		return nil
	case *ParamRef:
		a := args[e.Index-1]
		if a.kind == argNull {
			return &NullLit{}
		}
		return &NumLit{Val: a.i}
	case *BinaryExpr:
		return &BinaryExpr{Op: e.Op, L: substituteExpr(e.L, args), R: substituteExpr(e.R, args)}
	case *Call:
		out := &Call{Name: e.Name, Star: e.Star, Args: make([]Expr, len(e.Args))}
		for i, a := range e.Args {
			out.Args[i] = substituteExpr(a, args)
		}
		return out
	}
	return e
}

// normalizeTokens renders a token stream in canonical form — lower-cased
// tokens separated by single spaces — the normalization the plan cache
// keys on, so formatting and case differences never duplicate entries.
func normalizeTokens(toks []token) string {
	var b strings.Builder
	for _, t := range toks {
		if t.kind == tokEOF {
			break
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		if t.kind == tokParam {
			b.WriteByte('$')
		}
		b.WriteString(strings.ToLower(t.text))
	}
	return b.String()
}
