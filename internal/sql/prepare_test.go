package sql

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"dbcc/internal/engine"
)

// planDeltas captures the cluster's parse/plan-cache counters so tests can
// assert exact deltas across a few statements.
type planDeltas struct {
	c                    *engine.Cluster
	parses, hits, misses int64
}

func snapCounters(c *engine.Cluster) *planDeltas {
	p, h, m := c.PlanCounters()
	return &planDeltas{c: c, parses: p, hits: h, misses: m}
}

func (d *planDeltas) delta() (parses, hits, misses int64) {
	p, h, m := d.c.PlanCounters()
	return p - d.parses, h - d.hits, m - d.misses
}

func (d *planDeltas) expect(t *testing.T, what string, parses, hits, misses int64) {
	t.Helper()
	p, h, m := d.delta()
	if p != parses || h != hits || m != misses {
		t.Fatalf("%s: parses/hits/misses = %d/%d/%d, want %d/%d/%d",
			what, p, h, m, parses, hits, misses)
	}
	d.parses, d.hits, d.misses = d.c.PlanCounters()
}

// TestPreparedValueParams checks a value-parameterised SELECT parses once
// and serves every subsequent execution from the cached template.
func TestPreparedValueParams(t *testing.T) {
	s := newSession(t)
	defer s.Cluster().Close()
	loadEdges(t, s, "e", [][2]int64{{1, 2}, {2, 3}, {3, 4}})

	d := snapCounters(s.Cluster())
	p, err := s.Prepare("SELECT v1, v2 FROM e WHERE v1 = $1")
	if err != nil {
		t.Fatal(err)
	}
	if p.NumParams() != 1 || p.ParamIsTable(1) || !p.IsQuery() {
		t.Fatalf("shape: params=%d table=%v query=%v", p.NumParams(), p.ParamIsTable(1), p.IsQuery())
	}
	d.expect(t, "prepare", 1, 0, 0)

	_, rows, err := p.Query(Int(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].Int != 2 || rows[0][1].Int != 3 {
		t.Fatalf("first execute: %v", rows)
	}
	d.expect(t, "first execute", 0, 0, 1)

	// Different binding, same template: a hit with no parse.
	_, rows, err = p.Query(Int(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][1].Int != 4 {
		t.Fatalf("rebind: %v", rows)
	}
	d.expect(t, "rebind", 0, 1, 0)

	// NULL binds through the same template; v1 = NULL matches nothing.
	if _, rows, err = p.Query(Null()); err != nil || len(rows) != 0 {
		t.Fatalf("null binding: %d rows, %v", len(rows), err)
	}
	d.expect(t, "null binding", 0, 1, 0)
}

// TestPreparedTableParamRenameDance drives the pattern the CC round loops
// depend on: one prepared statement with table parameters keeps hitting one
// cached plan while the concrete tables are created, renamed and dropped
// around it.
func TestPreparedTableParamRenameDance(t *testing.T) {
	s := newSession(t)
	defer s.Cluster().Close()
	loadEdges(t, s, "base", [][2]int64{{1, 2}, {3, 4}, {5, 6}})

	d := snapCounters(s.Cluster())
	copyStmt, err := s.Prepare("CREATE TABLE $1 AS SELECT x.v1 AS v1, x.v2 AS v2 FROM $2 AS x")
	if err != nil {
		t.Fatal(err)
	}
	if !copyStmt.ParamIsTable(1) || !copyStmt.ParamIsTable(2) {
		t.Fatal("both parameters should be table parameters")
	}
	cnt, err := s.Prepare("SELECT count(*) AS n FROM $1 AS g")
	if err != nil {
		t.Fatal(err)
	}
	d.expect(t, "prepares", 2, 0, 0)

	if _, err := copyStmt.Exec(Table("r1"), Table("base")); err != nil {
		t.Fatal(err)
	}
	d.expect(t, "first copy", 0, 0, 1)
	// Round 2 reads the round-1 output — same shape, different tables: hit.
	if _, err := copyStmt.Exec(Table("r2"), Table("r1")); err != nil {
		t.Fatal(err)
	}
	d.expect(t, "second copy", 0, 1, 0)

	if _, rows, err := cnt.Query(Table("r2")); err != nil || len(rows) != 1 || rows[0][0].Int != 3 {
		t.Fatalf("count over r2: %v %v", rows, err)
	}
	d.expect(t, "first count", 0, 0, 1)

	// The rename dance: drop the old generation, rename the new into its
	// place, and keep executing the same handles.
	if _, err := s.Exec("DROP TABLE r1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("ALTER TABLE r2 RENAME TO r1"); err != nil {
		t.Fatal(err)
	}
	d.parses, d.hits, d.misses = s.Cluster().PlanCounters()
	if _, rows, err := cnt.Query(Table("r1")); err != nil || rows[0][0].Int != 3 {
		t.Fatalf("count after rename: %v %v", rows, err)
	}
	d.expect(t, "count after rename", 0, 1, 0)

	// Binding a dropped table fails cleanly — replan, typed engine error,
	// never stale rows.
	if _, _, err := cnt.Query(Table("r2")); err == nil {
		t.Fatal("query against dropped table succeeded")
	}
}

// TestPreparedDDLScript checks a multi-statement prepared script of pure
// DDL (the generation-swap idiom) executes via AST substitution.
func TestPreparedDDLScript(t *testing.T) {
	s := newSession(t)
	defer s.Cluster().Close()
	loadEdges(t, s, "gen_old", [][2]int64{{1, 2}})
	loadEdges(t, s, "gen_new", [][2]int64{{3, 4}, {5, 6}})

	p, err := s.Prepare("DROP TABLE $1; ALTER TABLE $2 RENAME TO $1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Exec(Table("gen_old"), Table("gen_new")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Cluster().Table("gen_new"); ok {
		t.Fatal("gen_new still exists after swap")
	}
	tbl, ok := s.Cluster().Table("gen_old")
	if !ok || tbl.Rows() != 2 {
		t.Fatalf("gen_old after swap: ok=%v", ok)
	}
}

// TestPreparedInsert checks prepared INSERT executes with fresh values per
// round without re-parsing (the loadgen hot path).
func TestPreparedInsert(t *testing.T) {
	s := newSession(t)
	defer s.Cluster().Close()
	if _, err := s.Exec("CREATE TABLE sink (a, b)"); err != nil {
		t.Fatal(err)
	}
	d := snapCounters(s.Cluster())
	p, err := s.Prepare("INSERT INTO $1 VALUES ($2, $3), ($4, $5)")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 4; i++ {
		n, err := p.Exec(Table("sink"), Int(i), Int(i+1), Int(-i), Null())
		if err != nil {
			t.Fatal(err)
		}
		if n != 2 {
			t.Fatalf("insert reported %d rows", n)
		}
	}
	// One parse at Prepare; INSERT is not cache-eligible so the plan-cache
	// counters stay untouched.
	d.expect(t, "prepared inserts", 1, 0, 0)
	tbl, _ := s.Cluster().Table("sink")
	if tbl.Rows() != 8 {
		t.Fatalf("sink has %d rows, want 8", tbl.Rows())
	}
}

// TestBindErrors checks every binding failure is a typed *BindError.
func TestBindErrors(t *testing.T) {
	s := newSession(t)
	defer s.Cluster().Close()
	loadEdges(t, s, "e", [][2]int64{{1, 2}})
	p, err := s.Prepare("SELECT x.v1 AS v1 FROM $1 AS x WHERE x.v1 = $2")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		args []Arg
		frag string
	}{
		{"too few", []Arg{Table("e")}, "2 parameter(s), got 1"},
		{"too many", []Arg{Table("e"), Int(1), Int(2)}, "2 parameter(s), got 3"},
		{"value for table", []Arg{Int(1), Int(2)}, "$1 is a table name"},
		{"table for value", []Arg{Table("e"), Table("e")}, "$2 is a value"},
		{"empty table name", []Arg{Table(""), Int(1)}, "empty table name"},
	}
	for _, tc := range cases {
		_, err := p.Bind(tc.args...)
		var be *BindError
		if !errors.As(err, &be) {
			t.Fatalf("%s: error %v is not a *BindError", tc.name, err)
		}
		if !strings.Contains(be.Error(), tc.frag) {
			t.Fatalf("%s: %q does not mention %q", tc.name, be.Error(), tc.frag)
		}
		// Exec and Query surface the same typed error.
		if _, err := p.Exec(tc.args...); !errors.As(err, &be) {
			t.Fatalf("%s: Exec error %v is not a *BindError", tc.name, err)
		}
	}
	if _, err := p.Bind(Table("e")); err != nil {
		var be *BindError
		errors.As(err, &be)
		if be.Want != 2 || be.Got != 1 {
			t.Fatalf("count mismatch fields: want=%d got=%d", be.Want, be.Got)
		}
	}
}

// TestPrepareRejectsMalformedParams checks parameter numbering and kind
// consistency are enforced at Prepare time.
func TestPrepareRejectsMalformedParams(t *testing.T) {
	s := newSession(t)
	defer s.Cluster().Close()
	if _, err := s.Prepare("SELECT v1 FROM e WHERE v1 = $2"); err == nil ||
		!strings.Contains(err.Error(), "$1 is unused") {
		t.Fatalf("noncontiguous params: %v", err)
	}
	if _, err := s.Prepare("SELECT $1 AS k FROM $1 AS x"); err == nil ||
		!strings.Contains(err.Error(), "both as a value and as a table") {
		t.Fatalf("value/table conflict: %v", err)
	}
}

// TestExecRejectsUnpreparedParams checks $N never executes through the
// text entry points.
func TestExecRejectsUnpreparedParams(t *testing.T) {
	s := newSession(t)
	defer s.Cluster().Close()
	loadEdges(t, s, "e", [][2]int64{{1, 2}})
	if _, err := s.Exec("SELECT v1 FROM e WHERE v1 = $1"); err == nil ||
		!strings.Contains(err.Error(), "use Prepare") {
		t.Fatalf("Exec with params: %v", err)
	}
	if _, _, err := s.Query("SELECT v1 FROM e WHERE v1 = $1"); err == nil ||
		!strings.Contains(err.Error(), "use Prepare") {
		t.Fatalf("Query with params: %v", err)
	}
}

// TestTextPlanCache checks unparameterised Session.Exec/Query texts also
// parse once: the second execution of the same normalized text is a
// parse-free cache hit, including across case and whitespace variation.
func TestTextPlanCache(t *testing.T) {
	s := newSession(t)
	defer s.Cluster().Close()
	loadEdges(t, s, "e", [][2]int64{{1, 2}, {2, 3}})

	d := snapCounters(s.Cluster())
	if _, _, err := s.Query("SELECT count(*) AS n FROM e"); err != nil {
		t.Fatal(err)
	}
	d.expect(t, "first text query", 1, 0, 1)
	if _, _, err := s.Query("SELECT count(*) AS n FROM e"); err != nil {
		t.Fatal(err)
	}
	d.expect(t, "repeat text query", 0, 1, 0)
	// Normalization is token-based: case and spacing differences share the
	// cached plan.
	if _, rows, err := s.Query("select   COUNT(*)  as N from E"); err != nil || rows[0][0].Int != 2 {
		t.Fatalf("case-variant query: %v %v", rows, err)
	}
	d.expect(t, "case-variant query", 0, 1, 0)
}

// TestInvalidationDropCreate checks DDL on a fixed dependency evicts the
// cached plan and the next execution replans against the new catalog state.
func TestInvalidationDropCreate(t *testing.T) {
	s := newSession(t)
	defer s.Cluster().Close()
	loadEdges(t, s, "inv", [][2]int64{{1, 2}, {3, 4}})

	p, err := s.Prepare("SELECT count(*) AS n FROM inv")
	if err != nil {
		t.Fatal(err)
	}
	if _, rows, err := p.Query(); err != nil || rows[0][0].Int != 2 {
		t.Fatalf("before DDL: %v %v", rows, err)
	}
	inval0 := s.Cluster().Stats().PlanCacheInvalidations

	// Replace the table wholesale with a different schema and cardinality.
	if _, err := s.Exec("DROP TABLE inv"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("CREATE TABLE inv (k)"); err != nil {
		t.Fatal(err)
	}
	if err := s.Cluster().InsertRows("inv", []engine.Row{{engine.I(7)}, {engine.I(8)}, {engine.I(9)}}); err != nil {
		t.Fatal(err)
	}
	if got := s.Cluster().Stats().PlanCacheInvalidations; got <= inval0 {
		t.Fatalf("DDL did not count invalidations: %d -> %d", inval0, got)
	}

	d := snapCounters(s.Cluster())
	_, rows, err := p.Query()
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0].Int != 3 {
		t.Fatalf("stale plan executed: count=%d, want 3", rows[0][0].Int)
	}
	d.expect(t, "post-DDL execute", 0, 0, 1)
}

// TestInvalidationRename checks a plan over a renamed-away table never
// executes stale: it fails cleanly, and once a new table takes the old
// name the handle replans against it.
func TestInvalidationRename(t *testing.T) {
	s := newSession(t)
	defer s.Cluster().Close()
	loadEdges(t, s, "ren", [][2]int64{{1, 2}})

	p, err := s.Prepare("SELECT count(*) AS n FROM ren")
	if err != nil {
		t.Fatal(err)
	}
	if _, rows, err := p.Query(); err != nil || rows[0][0].Int != 1 {
		t.Fatalf("before rename: %v %v", rows, err)
	}
	if _, err := s.Exec("ALTER TABLE ren RENAME TO ren_moved"); err != nil {
		t.Fatal(err)
	}
	// The old name resolves to nothing now; returning the moved table's
	// rows here would be the stale-plan bug.
	if _, _, err := p.Query(); err == nil {
		t.Fatal("prepared plan executed against a renamed-away table")
	}
	// A different table claiming the name must be what the handle now reads.
	loadEdges(t, s, "ren", [][2]int64{{5, 6}, {7, 8}, {9, 10}})
	if _, rows, err := p.Query(); err != nil || rows[0][0].Int != 3 {
		t.Fatalf("after re-create: %v %v", rows, err)
	}
}

// TestInvalidationCrossSession checks DDL issued by one session over a
// shared namespace invalidates plans another session cached — the
// multi-tenant server's connections-of-one-tenant topology.
func TestInvalidationCrossSession(t *testing.T) {
	c := engine.NewCluster(engine.Options{Segments: 2})
	defer c.Close()
	sA := SessionWithNamespace(c, "tn_acme_")
	sB := SessionWithNamespace(c, "tn_acme_")

	if _, err := sA.Exec("CREATE TABLE src (v1, v2)"); err != nil {
		t.Fatal(err)
	}
	if _, err := sA.Exec("INSERT INTO src VALUES (1, 2), (3, 4)"); err != nil {
		t.Fatal(err)
	}
	p, err := sA.Prepare("SELECT count(*) AS n FROM src")
	if err != nil {
		t.Fatal(err)
	}
	if _, rows, err := p.Query(); err != nil || rows[0][0].Int != 2 {
		t.Fatalf("session A before B's DDL: %v %v", rows, err)
	}

	// Session B swaps the table out from under A's cached plan.
	if _, err := sB.Exec("DROP TABLE src"); err != nil {
		t.Fatal(err)
	}
	if _, err := sB.Exec("CREATE TABLE src (k)"); err != nil {
		t.Fatal(err)
	}
	if _, err := sB.Exec("INSERT INTO src VALUES (7)"); err != nil {
		t.Fatal(err)
	}

	d := snapCounters(c)
	_, rows, err := p.Query()
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0].Int != 1 {
		t.Fatalf("session A saw stale plan after B's DDL: count=%d, want 1", rows[0][0].Int)
	}
	d.expect(t, "cross-session replan", 0, 0, 1)
}

// TestAllParamTemplateSharedAcrossNamespaces checks fully parameterised
// statements cache namespace-independent templates: a second session with
// a different temp namespace hits the template the first session built.
func TestAllParamTemplateSharedAcrossNamespaces(t *testing.T) {
	c := engine.NewCluster(engine.Options{Segments: 2})
	defer c.Close()
	if _, err := c.CreateTable("shared_edges", engine.Schema{"v1", "v2"}, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.InsertRows("shared_edges", []engine.Row{{engine.I(1), engine.I(2)}}); err != nil {
		t.Fatal(err)
	}

	sA := NewIsolatedSession(c)
	sB := NewIsolatedSession(c)
	const src = "SELECT count(*) AS n FROM $1 AS g"
	pA, err := sA.Prepare(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := pA.Query(Table("shared_edges")); err != nil {
		t.Fatal(err)
	}

	d := snapCounters(c)
	pB, err := sB.Prepare(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, rows, err := pB.Query(Table("shared_edges")); err != nil || rows[0][0].Int != 1 {
		t.Fatalf("session B: %v %v", rows, err)
	}
	// One parse for B's Prepare; execution hits A's template.
	d.expect(t, "shared template", 1, 1, 0)
}

// TestResetStatsKeepsTemplatesWarm checks clearing statistics does not
// throw cached plans away: the next execution is still a hit.
func TestResetStatsKeepsTemplatesWarm(t *testing.T) {
	s := newSession(t)
	defer s.Cluster().Close()
	loadEdges(t, s, "w", [][2]int64{{1, 2}})
	p, err := s.Prepare("SELECT count(*) AS n FROM w")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Query(); err != nil {
		t.Fatal(err)
	}
	s.Cluster().ResetStats()
	if parses, hits, misses := s.Cluster().PlanCounters(); parses != 0 || hits != 0 || misses != 0 {
		t.Fatalf("ResetStats left counters: %d/%d/%d", parses, hits, misses)
	}
	if _, _, err := p.Query(); err != nil {
		t.Fatal(err)
	}
	if parses, hits, misses := s.Cluster().PlanCounters(); parses != 0 || hits != 1 || misses != 0 {
		t.Fatalf("post-reset execute: parses/hits/misses = %d/%d/%d, want 0/1/0", parses, hits, misses)
	}
}

// TestExplainAnalyzePlanCacheLine checks the profile report surfaces the
// plan-cache counters.
func TestExplainAnalyzePlanCacheLine(t *testing.T) {
	s := newSession(t)
	defer s.Cluster().Close()
	loadEdges(t, s, "e", [][2]int64{{1, 2}})
	out, err := s.ExplainAnalyze("SELECT v1, v2 FROM e")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Plan cache:") {
		t.Fatalf("EXPLAIN ANALYZE lacks the plan-cache line:\n%s", out)
	}
}

// TestPreparedValueResultsMatchText checks prepared execution is
// result-identical to the equivalent literal text, including through UDFs.
func TestPreparedValueResultsMatchText(t *testing.T) {
	s := newSession(t)
	defer s.Cluster().Close()
	loadEdges(t, s, "g", [][2]int64{{1, 5}, {2, 6}, {3, 7}})

	p, err := s.Prepare("SELECT v1 AS v1, axplusb($1, v2, $2) AS h FROM g")
	if err != nil {
		t.Fatal(err)
	}
	for _, ab := range [][2]int64{{3, 4}, {11, 13}} {
		_, prepRows, err := p.Query(Int(ab[0]), Int(ab[1]))
		if err != nil {
			t.Fatal(err)
		}
		_, textRows, err := s.Queryf("SELECT v1 AS v1, axplusb(%d, v2, %d) AS h FROM g", ab[0], ab[1])
		if err != nil {
			t.Fatal(err)
		}
		pm, tm := rowsToPairs(prepRows), rowsToPairs(textRows)
		if len(pm) != len(tm) {
			t.Fatalf("a=%d b=%d: %d vs %d distinct rows", ab[0], ab[1], len(pm), len(tm))
		}
		for k, n := range tm {
			if pm[k] != n {
				t.Fatalf("a=%d b=%d: row %v count %d vs %d", ab[0], ab[1], k, pm[k], n)
			}
		}
	}
}

// TestCachedPlanStatsInvalidation pins validation-on-hit to table
// *statistics*, not just the catalog: a cached SELECT template built when
// its input was small must be evicted and replanned once the table grows
// past statsStaleFactor (with the statsStaleMinRows floor), so plan-time
// cardinality decisions are retaken against the new sizes. Interleaves
// inserts with cached-plan executions the way a streaming workload does.
func TestCachedPlanStatsInvalidation(t *testing.T) {
	s := newSession(t)
	defer s.Cluster().Close()
	loadEdges(t, s, "e", [][2]int64{{1, 2}, {2, 3}, {3, 4}})
	loadEdges(t, s, "f", [][2]int64{{2, 20}, {3, 30}})

	p, err := s.Prepare("SELECT count(*) AS n FROM e, f WHERE e.v2 = f.v1")
	if err != nil {
		t.Fatal(err)
	}
	run := func(want int64) {
		t.Helper()
		_, rows, err := p.Query()
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 1 || rows[0][0].Int != want {
			t.Fatalf("join count: %v, want %d", rows, want)
		}
	}

	d := snapCounters(s.Cluster())
	run(2)
	d.expect(t, "first execute", 0, 0, 1)

	// Small growth — under the statsStaleMinRows floor — must keep the
	// template hot even though the table quadrupled: tiny tables never
	// thrash the cache (the rc-det round loop depends on this).
	if _, err := s.Exec("INSERT INTO e VALUES (4,5),(5,6),(6,7),(7,8),(8,9),(9,10)"); err != nil {
		t.Fatal(err)
	}
	run(2)
	d.expect(t, "after small growth", 1, 1, 0) // the 1 parse is the INSERT

	// Large growth: push e from 9 rows to >1024 with one bulk INSERT
	// (over the floor, far over the factor). The next execution must
	// fail validation, evict, and replan against the new cardinality.
	var b strings.Builder
	b.WriteString("INSERT INTO e VALUES ")
	for i := 0; i < 1100; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "(%d,%d)", 1000+i, 2000+i)
	}
	if _, err := s.Exec(b.String()); err != nil {
		t.Fatal(err)
	}
	inval0 := s.Cluster().Stats().PlanCacheInvalidations
	run(2)
	d.expect(t, "after bulk growth", 1, 0, 1) // the 1 parse is the INSERT
	if got := s.Cluster().Stats().PlanCacheInvalidations; got <= inval0 {
		t.Fatalf("stale template not evicted: invalidations %d -> %d", inval0, got)
	}

	// The replanned template captured the new row counts: steady-state
	// executions hit again.
	run(2)
	d.expect(t, "steady state after replan", 0, 1, 0)
}
