// Package sql implements the SQL dialect the paper's algorithms are written
// in (Appendix A): CREATE TABLE AS SELECT with DISTRIBUTED BY, multi-table
// joins, LEFT OUTER JOIN, GROUP BY with min aggregation, DISTINCT, UNION
// ALL, the scalar functions least and coalesce, user-defined functions such
// as axplusb, plus the DDL the driver scripts use (DROP TABLE, ALTER TABLE
// RENAME, INSERT ... VALUES). Statements are parsed to an AST, planned onto
// engine operator trees and executed through a Session, which mirrors the
// paper's Python driver: it returns the row count of every executed query.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokSymbol // punctuation and operators
	tokParam  // $N prepared-statement parameter; text is the digits
)

// token is one lexical element. Keywords are tokIdent; the parser matches
// them case-insensitively.
type token struct {
	kind tokenKind
	text string
	pos  int
}

// lexer scans SQL text into tokens.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenises src, returning an error for unrecognised characters.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			// Line comment.
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case isIdentStart(rune(c)):
			start := l.pos
			for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
				l.pos++
			}
			l.emit(tokIdent, l.src[start:l.pos], start)
		case c >= '0' && c <= '9':
			start := l.pos
			for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
				l.pos++
			}
			l.emit(tokNumber, l.src[start:l.pos], start)
		case c == '$':
			start := l.pos
			l.pos++
			for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
				l.pos++
			}
			if l.pos == start+1 {
				return nil, fmt.Errorf("sql: expected parameter number after $ at offset %d", start)
			}
			l.emit(tokParam, l.src[start+1:l.pos], start)
		default:
			start := l.pos
			// Two-character operators first.
			if l.pos+1 < len(l.src) {
				two := l.src[l.pos : l.pos+2]
				if two == "!=" || two == "<>" || two == "<=" || two == ">=" {
					l.pos += 2
					l.emit(tokSymbol, two, start)
					continue
				}
			}
			switch c {
			case '(', ')', ',', ';', '.', '*', '=', '<', '>', '+', '-':
				l.pos++
				l.emit(tokSymbol, string(c), start)
			default:
				return nil, fmt.Errorf("sql: unexpected character %q at offset %d", c, l.pos)
			}
		}
	}
	l.emit(tokEOF, "", l.pos)
	return l.toks, nil
}

func (l *lexer) emit(kind tokenKind, text string, pos int) {
	l.toks = append(l.toks, token{kind: kind, text: text, pos: pos})
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// isKeyword reports whether the token matches the keyword (ASCII
// case-insensitive), as SQL keywords are not reserved in this dialect.
func (t token) isKeyword(kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}
