package sql

import (
	"fmt"
	"strings"

	"dbcc/internal/engine"
)

// FormatExplain renders a plain EXPLAIN report: the planned operator tree
// and its output column names.
func FormatExplain(plan engine.Plan, names engine.Schema) string {
	return fmt.Sprintf("%s -> %v", plan.String(), []string(names))
}

// FormatExplainAnalyze renders an EXPLAIN ANALYZE report: the executed
// operator tree annotated with the measured per-operator actuals (wall
// time, rows, bytes, shuffle traffic, retry/fault and spill counters, and
// for bloom-pruned joins the probe rows checked and skipped) and the
// per-segment row/time breakdown, followed by the statement totals — the
// reproduction of an MPP database's "actual rows/time per operator per
// segment" report.
func FormatExplainAnalyze(root *engine.OpMetrics, names engine.Schema, totalRows int64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "output: %v\n", []string(names))
	b.WriteString(root.Format())
	fmt.Fprintf(&b, "Total: rows=%d time=%s shuffle=%d bytes\n",
		totalRows, fmt.Sprintf("%.3fms", float64(root.Elapsed.Nanoseconds())/1e6), root.TotalShuffle())
	return b.String()
}
