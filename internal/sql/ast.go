package sql

// Statement is a parsed SQL statement.
type Statement interface{ stmt() }

// CreateTableAs is CREATE TABLE name AS select [DISTRIBUTED BY (col)].
type CreateTableAs struct {
	Name   string
	Select *SelectStmt
	DistBy string // output column name, or "" for no declared distribution
}

// CreateTablePlain is CREATE TABLE name (col, col, ...) [DISTRIBUTED BY (col)].
type CreateTablePlain struct {
	Name   string
	Cols   []string
	DistBy string
}

// ExplainStmt is EXPLAIN [ANALYZE] select: it plans the query and reports
// the operator tree. With Analyze set the query is also executed and the
// report carries the measured per-operator, per-segment profile.
type ExplainStmt struct {
	Select  *SelectStmt
	Analyze bool
}

// DropTable is DROP TABLE name [, name ...].
type DropTable struct{ Names []string }

// AlterRename is ALTER TABLE old RENAME TO new.
type AlterRename struct{ Old, New string }

// InsertValues is INSERT INTO name VALUES (...), (...).
type InsertValues struct {
	Name string
	Rows [][]Expr
}

// SelectQuery is a bare SELECT executed for its result rows.
type SelectQuery struct{ Select *SelectStmt }

func (*CreateTableAs) stmt()    {}
func (*CreateTablePlain) stmt() {}
func (*ExplainStmt) stmt()      {}
func (*DropTable) stmt()        {}
func (*AlterRename) stmt()      {}
func (*InsertValues) stmt()     {}
func (*SelectQuery) stmt()      {}

// SelectStmt is one SELECT block; UnionAll chains additional blocks
// (SELECT ... UNION ALL SELECT ...). OrderBy and Limit apply to the whole
// statement (after any UNION ALL), as in standard SQL.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []FromItem
	Where    Expr
	GroupBy  []*Ident
	UnionAll *SelectStmt
	OrderBy  []OrderItem
	Limit    int64 // -1 = no limit
}

// OrderItem is one ORDER BY key: an output column name with direction.
type OrderItem struct {
	Col  string
	Desc bool
}

// SelectItem is one output column: an expression with an optional alias
// (explicit AS or the implicit "expr name" form the paper uses).
type SelectItem struct {
	Expr  Expr
	Alias string
}

// FromItem is one element of the FROM comma-list: a base table possibly
// extended by explicit JOIN clauses.
type FromItem struct {
	Table TableRef
	Joins []JoinClause
}

// TableRef names a stored table with an optional alias.
type TableRef struct {
	Table string
	Alias string
}

// Name returns the alias if present, else the table name.
func (t TableRef) Name() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// JoinClause is an explicit join hanging off a FromItem.
type JoinClause struct {
	LeftOuter bool
	Table     TableRef
	On        Expr
}

// Expr is a scalar expression AST node.
type Expr interface{ expr() }

// Ident is a possibly qualified column reference (alias.col or col).
type Ident struct {
	Qual string // table alias, or ""
	Name string
}

// NumLit is an integer literal (possibly negative).
type NumLit struct{ Val int64 }

// NullLit is the NULL literal.
type NullLit struct{}

// Call is a function call; Star marks count(*).
type Call struct {
	Name string
	Star bool
	Args []Expr
}

// BinaryExpr applies an infix operator: = != < <= > >= + - AND OR.
type BinaryExpr struct {
	Op   string
	L, R Expr
}

func (*Ident) expr()      {}
func (*NumLit) expr()     {}
func (*NullLit) expr()    {}
func (*Call) expr()       {}
func (*BinaryExpr) expr() {}
