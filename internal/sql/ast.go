package sql

// Statement is a parsed SQL statement.
type Statement interface{ stmt() }

// CreateTableAs is CREATE TABLE name AS select [DISTRIBUTED BY (col)].
// NameParam is the $N index when the target name is a prepared-statement
// parameter (Name is then ""); 0 for a literal name.
type CreateTableAs struct {
	Name      string
	NameParam int
	Select    *SelectStmt
	DistBy    string // output column name, or "" for no declared distribution
}

// CreateTablePlain is CREATE TABLE name (col, col, ...) [DISTRIBUTED BY (col)].
type CreateTablePlain struct {
	Name      string
	NameParam int // $N index when the name is a parameter, else 0
	Cols      []string
	DistBy    string
}

// ExplainStmt is EXPLAIN [ANALYZE] select: it plans the query and reports
// the operator tree. With Analyze set the query is also executed and the
// report carries the measured per-operator, per-segment profile.
type ExplainStmt struct {
	Select  *SelectStmt
	Analyze bool
}

// DropTable is DROP TABLE name [, name ...]. NameParams runs parallel to
// Names: entry i is the $N index when name i is a parameter, else 0.
type DropTable struct {
	Names      []string
	NameParams []int
}

// AlterRename is ALTER TABLE old RENAME TO new; the *Param fields are the
// $N indices when the corresponding name is a parameter, else 0.
type AlterRename struct {
	Old, New           string
	OldParam, NewParam int
}

// InsertValues is INSERT INTO name VALUES (...), (...).
type InsertValues struct {
	Name      string
	NameParam int // $N index when the name is a parameter, else 0
	Rows      [][]Expr
}

// InsertSelect is INSERT INTO name SELECT ...: the query's result rows
// are appended to an existing table (whose schema must have the query's
// arity). Like every insert it feeds any component index on the target.
type InsertSelect struct {
	Name      string
	NameParam int // $N index when the name is a parameter, else 0
	Select    *SelectStmt
}

// DeleteStmt is DELETE FROM name [WHERE expr]: rows matching the filter
// (all rows without one) are removed. A component index on the table is
// rebuilt afterwards — deletes can split components, which the
// incremental union-find cannot express.
type DeleteStmt struct {
	Name      string
	NameParam int  // $N index when the name is a parameter, else 0
	Where     Expr // nil = delete every row
}

// CreateComponentIndex is CREATE COMPONENT INDEX ON name: it builds the
// incremental connected-components index over an edge table (first two
// columns are the endpoints) and keeps it maintained under inserts.
type CreateComponentIndex struct {
	Table      string
	TableParam int // $N index when the table name is a parameter, else 0
}

// DropComponentIndex is DROP COMPONENT INDEX ON name.
type DropComponentIndex struct {
	Table      string
	TableParam int
}

// SelectQuery is a bare SELECT executed for its result rows.
type SelectQuery struct{ Select *SelectStmt }

func (*CreateTableAs) stmt()        {}
func (*CreateTablePlain) stmt()     {}
func (*ExplainStmt) stmt()          {}
func (*DropTable) stmt()            {}
func (*AlterRename) stmt()          {}
func (*InsertValues) stmt()         {}
func (*InsertSelect) stmt()         {}
func (*DeleteStmt) stmt()           {}
func (*CreateComponentIndex) stmt() {}
func (*DropComponentIndex) stmt()   {}
func (*SelectQuery) stmt()          {}

// SelectStmt is one SELECT block; UnionAll chains additional blocks
// (SELECT ... UNION ALL SELECT ...). OrderBy and Limit apply to the whole
// statement (after any UNION ALL), as in standard SQL.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []FromItem
	Where    Expr
	GroupBy  []*Ident
	UnionAll *SelectStmt
	OrderBy  []OrderItem
	Limit    int64 // -1 = no limit
}

// OrderItem is one ORDER BY key: an output column name with direction.
type OrderItem struct {
	Col  string
	Desc bool
}

// SelectItem is one output column: an expression with an optional alias
// (explicit AS or the implicit "expr name" form the paper uses).
type SelectItem struct {
	Expr  Expr
	Alias string
}

// FromItem is one element of the FROM comma-list: a base table possibly
// extended by explicit JOIN clauses.
type FromItem struct {
	Table TableRef
	Joins []JoinClause
}

// TableRef names a stored table with an optional alias. Param is the $N
// index when the table name is a prepared-statement parameter (Table is
// then ""); parameterised tables need an explicit alias to be referenced
// by qualified column names.
type TableRef struct {
	Table string
	Param int
	Alias string
}

// Name returns the alias if present, else the table name (empty for an
// unaliased parameter).
func (t TableRef) Name() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// JoinClause is an explicit join hanging off a FromItem.
type JoinClause struct {
	LeftOuter bool
	Table     TableRef
	On        Expr
}

// Expr is a scalar expression AST node.
type Expr interface{ expr() }

// Ident is a possibly qualified column reference (alias.col or col).
type Ident struct {
	Qual string // table alias, or ""
	Name string
}

// NumLit is an integer literal (possibly negative).
type NumLit struct{ Val int64 }

// NullLit is the NULL literal.
type NullLit struct{}

// Call is a function call; Star marks count(*).
type Call struct {
	Name string
	Star bool
	Args []Expr
}

// BinaryExpr applies an infix operator: = != < <= > >= + - AND OR.
type BinaryExpr struct {
	Op   string
	L, R Expr
}

// ParamRef is a $N prepared-statement value parameter (1-based).
type ParamRef struct{ Index int }

func (*Ident) expr()      {}
func (*NumLit) expr()     {}
func (*NullLit) expr()    {}
func (*Call) expr()       {}
func (*BinaryExpr) expr() {}
func (*ParamRef) expr()   {}
