package sql

import "testing"

func TestLexBasics(t *testing.T) {
	toks, err := lex("select v1, -5 from t where a != b; -- trailing comment")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tok := range toks {
		if tok.kind == tokEOF {
			break
		}
		texts = append(texts, tok.text)
	}
	want := []string{"select", "v1", ",", "-", "5", "from", "t", "where", "a", "!=", "b", ";"}
	if len(texts) != len(want) {
		t.Fatalf("tokens %v, want %v", texts, want)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Fatalf("token %d = %q, want %q", i, texts[i], want[i])
		}
	}
}

func TestLexTwoCharOperators(t *testing.T) {
	for _, op := range []string{"!=", "<>", "<=", ">="} {
		toks, err := lex("a " + op + " b")
		if err != nil {
			t.Fatal(err)
		}
		if toks[1].text != op {
			t.Fatalf("lexed %q as %q", op, toks[1].text)
		}
	}
}

func TestLexComments(t *testing.T) {
	toks, err := lex("-- whole line\nselect -- tail\n1")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].text != "select" || toks[1].text != "1" {
		t.Fatalf("comments not skipped: %v", toks)
	}
}

func TestLexBadCharacter(t *testing.T) {
	for _, src := range []string{"select @", "a $ b", "x ~ y"} {
		if _, err := lex(src); err == nil {
			t.Errorf("lex(%q) succeeded", src)
		}
	}
}

func TestKeywordCaseInsensitive(t *testing.T) {
	toks, _ := lex("SeLeCt")
	if !toks[0].isKeyword("select") {
		t.Fatal("keyword match is case sensitive")
	}
	if toks[0].isKeyword("from") {
		t.Fatal("keyword matched wrong word")
	}
}

func TestParseImplicitAliases(t *testing.T) {
	// The paper's Appendix A uses implicit aliases everywhere:
	// "select v1 v, least(...) rep from ccgraph".
	st, err := ParseOne("select v1 v, least(v1, 2) rep from ccgraph g group by v1")
	if err != nil {
		t.Fatal(err)
	}
	sel := st.(*SelectQuery).Select
	if sel.Items[0].Alias != "v" || sel.Items[1].Alias != "rep" {
		t.Fatalf("aliases %q %q", sel.Items[0].Alias, sel.Items[1].Alias)
	}
	if sel.From[0].Table.Alias != "g" {
		t.Fatalf("table alias %q", sel.From[0].Table.Alias)
	}
}

func TestParseJoinChain(t *testing.T) {
	st, err := ParseOne(`select a.x from t1 as a
		left outer join t2 as b on (a.x = b.y)
		join t3 as c on (b.y = c.z)`)
	if err != nil {
		t.Fatal(err)
	}
	fi := st.(*SelectQuery).Select.From[0]
	if len(fi.Joins) != 2 {
		t.Fatalf("%d joins", len(fi.Joins))
	}
	if !fi.Joins[0].LeftOuter || fi.Joins[1].LeftOuter {
		t.Fatal("join kinds wrong")
	}
}

func TestParseUnionAllChain(t *testing.T) {
	st, err := ParseOne("select 1 union all select 2 union all select 3")
	if err != nil {
		t.Fatal(err)
	}
	sel := st.(*SelectQuery).Select
	depth := 0
	for u := sel.UnionAll; u != nil; u = u.UnionAll {
		depth++
	}
	if depth != 2 {
		t.Fatalf("union chain depth %d", depth)
	}
}

func TestParseMinInt64(t *testing.T) {
	st, err := ParseOne("select -9223372036854775808 as x")
	if err != nil {
		t.Fatal(err)
	}
	lit := st.(*SelectQuery).Select.Items[0].Expr.(*NumLit)
	if lit.Val != -9223372036854775808 {
		t.Fatalf("min int64 parsed as %d", lit.Val)
	}
}

func TestParsePrecedence(t *testing.T) {
	// a = 1 or b = 2 and c = 3  must parse as  a=1 OR (b=2 AND c=3).
	st, err := ParseOne("select 1 from t where a = 1 or b = 2 and c = 3")
	if err != nil {
		t.Fatal(err)
	}
	where := st.(*SelectQuery).Select.Where.(*BinaryExpr)
	if where.Op != "or" {
		t.Fatalf("top operator %q, want or", where.Op)
	}
	if right := where.R.(*BinaryExpr); right.Op != "and" {
		t.Fatalf("right operator %q, want and", right.Op)
	}
}
