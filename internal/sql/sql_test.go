package sql

import (
	"strings"
	"testing"

	"dbcc/internal/engine"
	"dbcc/internal/gf"
)

// newSession returns a session over a fresh cluster with the paper's UDF
// registered.
func newSession(t *testing.T) *Session {
	t.Helper()
	c := engine.NewCluster(engine.Options{Segments: 4})
	c.RegisterUDF("axplusb", func(args []engine.Datum) engine.Datum {
		if args[0].Null || args[1].Null || args[2].Null {
			return engine.NullDatum
		}
		return engine.I(int64(gf.AxB(uint64(args[0].Int), uint64(args[1].Int), uint64(args[2].Int))))
	})
	return NewSession(c)
}

// loadEdges creates a two-column table from int64 pairs.
func loadEdges(t *testing.T, s *Session, name string, edges [][2]int64) {
	t.Helper()
	if _, err := s.Cluster().CreateTable(name, engine.Schema{"v1", "v2"}, 0); err != nil {
		t.Fatal(err)
	}
	rows := make([]engine.Row, len(edges))
	for i, e := range edges {
		rows[i] = engine.Row{engine.I(e[0]), engine.I(e[1])}
	}
	if err := s.Cluster().InsertRows(name, rows); err != nil {
		t.Fatal(err)
	}
}

func rowsToPairs(rows []engine.Row) map[[2]int64]int {
	m := make(map[[2]int64]int)
	for _, r := range rows {
		m[[2]int64{r[0].Int, r[1].Int}]++
	}
	return m
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"create table",
		"select from t",
		"select 1 2 3",
		"drop x",
		"alter table a rename b",
		"select ~ from t",
		"insert into t values 1",
		"create table t as select 1 distributed by v",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseScript(t *testing.T) {
	stmts, err := Parse(`
		-- a comment
		create table a as select 1 x;
		drop table a;
		alter table b rename to c;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("parsed %d statements, want 3", len(stmts))
	}
}

func TestConstSelect(t *testing.T) {
	s := newSession(t)
	names, rows, err := s.Query("select 1 as a, -5 b, null as c")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("%d rows", len(rows))
	}
	if names[0] != "a" || names[1] != "b" || names[2] != "c" {
		t.Fatalf("names %v", names)
	}
	if rows[0][0].Int != 1 || rows[0][1].Int != -5 || !rows[0][2].Null {
		t.Fatalf("row %v", rows[0])
	}
}

func TestUnionAllSetup(t *testing.T) {
	// The paper's setup query: symmetrise the edge table.
	s := newSession(t)
	loadEdges(t, s, "g", [][2]int64{{1, 2}, {3, 4}})
	n, err := s.Exec(`
		create table ccgraph as
		select v1, v2 from g
		union all
		select v2, v1 from g
		distributed by (v1)`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("rowcount %d, want 4", n)
	}
	_, rows, err := s.Query("select v1, v2 from ccgraph")
	if err != nil {
		t.Fatal(err)
	}
	got := rowsToPairs(rows)
	for _, want := range [][2]int64{{1, 2}, {2, 1}, {3, 4}, {4, 3}} {
		if got[want] != 1 {
			t.Fatalf("missing row %v in %v", want, got)
		}
	}
	// The created table must be hash-distributed by v1.
	tab, _ := s.Cluster().Table("ccgraph")
	if tab.DistKey != 0 {
		t.Fatalf("distkey %d, want 0", tab.DistKey)
	}
}

func TestGroupByWithAggExpression(t *testing.T) {
	// The paper's representative query shape:
	// least(axplusb(A,v1,B), min(axplusb(A,v2,B))) with group by v1.
	// Use A=1, B=0 so axplusb is the identity and results are checkable.
	s := newSession(t)
	loadEdges(t, s, "ccgraph", [][2]int64{{1, 5}, {1, 3}, {7, 2}})
	_, rows, err := s.Query(`
		select v1 v, least(axplusb(1, v1, 0), min(axplusb(1, v2, 0))) rep
		from ccgraph
		group by v1`)
	if err != nil {
		t.Fatal(err)
	}
	got := rowsToPairs(rows)
	want := map[[2]int64]int{{1, 1}: 1, {7, 2}: 1}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for k := range want {
		if got[k] != 1 {
			t.Fatalf("missing %v in %v", k, got)
		}
	}
}

func TestThreeWayJoinWithDistinct(t *testing.T) {
	// Fig. 3's contraction query: a three-way comma join resolved through
	// WHERE equi-join conjuncts plus a residual filter.
	s := newSession(t)
	loadEdges(t, s, "e", [][2]int64{{1, 2}, {2, 3}, {3, 1}, {4, 5}})
	loadEdges(t, s, "r", [][2]int64{{1, 1}, {2, 1}, {3, 3}, {4, 4}, {5, 4}})
	// r maps: 1→1, 2→1, 3→3, 4→4, 5→4 (schema v1=v, v2=rep).
	_, rows, err := s.Query(`
		select distinct v.v2 as v, w.v2 as w
		from e, r as v, r as w
		where e.v1 = v.v1 and e.v2 = w.v1 and v.v2 != w.v2`)
	if err != nil {
		t.Fatal(err)
	}
	got := rowsToPairs(rows)
	// Edges map to: (1,2)->(1,1) loop dropped; (2,3)->(1,3); (3,1)->(3,1); (4,5)->(4,4) dropped.
	want := map[[2]int64]int{{1, 3}: 1, {3, 1}: 1}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for k := range want {
		if got[k] != 1 {
			t.Fatalf("missing %v", k)
		}
	}
}

func TestLeftOuterJoinCoalesce(t *testing.T) {
	// Fig. 3's composition query shape.
	s := newSession(t)
	loadEdges(t, s, "l", [][2]int64{{1, 10}, {2, 20}})
	loadEdges(t, s, "r", [][2]int64{{10, 100}})
	_, rows, err := s.Query(`
		select l.v1 as v, coalesce(r.v2, axplusb(1, l.v2, 0)) as rep
		from l left outer join r on (l.v2 = r.v1)`)
	if err != nil {
		t.Fatal(err)
	}
	got := rowsToPairs(rows)
	want := map[[2]int64]int{{1, 100}: 1, {2, 20}: 1}
	for k := range want {
		if got[k] != 1 {
			t.Fatalf("missing %v in %v", k, got)
		}
	}
}

func TestInsertAndCount(t *testing.T) {
	s := newSession(t)
	loadEdges(t, s, "t", nil)
	n, err := s.Exec("insert into t values (1, 2), (3, null)")
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("insert count %d", n)
	}
	_, rows, err := s.Query("select count(*) as n from t")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].Int != 2 {
		t.Fatalf("count rows %v", rows)
	}
	_, rows, err = s.Query("select count(v2) as n, min(v1) as m, max(v1) as x from t")
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0].Int != 1 || rows[0][1].Int != 1 || rows[0][2].Int != 3 {
		t.Fatalf("aggregates %v", rows[0])
	}
}

func TestDropAlter(t *testing.T) {
	s := newSession(t)
	loadEdges(t, s, "a", nil)
	loadEdges(t, s, "b", nil)
	if _, err := s.Exec("drop table a, b"); err != nil {
		t.Fatal(err)
	}
	loadEdges(t, s, "x", [][2]int64{{1, 2}})
	if _, err := s.Exec("alter table x rename to y"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Cluster().Table("y"); !ok {
		t.Fatal("rename lost table")
	}
}

func TestAmbiguousColumn(t *testing.T) {
	s := newSession(t)
	loadEdges(t, s, "a", nil)
	loadEdges(t, s, "b", nil)
	_, _, err := s.Query("select v1 from a, b where a.v1 = b.v1")
	if err == nil {
		t.Fatal("ambiguous column reference accepted")
	}
}

func TestMissingGroupByColumn(t *testing.T) {
	s := newSession(t)
	loadEdges(t, s, "a", [][2]int64{{1, 2}})
	_, _, err := s.Query("select v1, v2 from a group by v1")
	if err == nil {
		t.Fatal("non-grouped column accepted")
	}
}

func TestCartesianRejected(t *testing.T) {
	s := newSession(t)
	loadEdges(t, s, "a", nil)
	loadEdges(t, s, "b", nil)
	_, _, err := s.Query("select a.v1 from a, b")
	if err == nil {
		t.Fatal("cartesian product accepted")
	}
}

func TestWhereFilter(t *testing.T) {
	s := newSession(t)
	loadEdges(t, s, "a", [][2]int64{{1, 10}, {2, 20}, {3, 30}})
	_, rows, err := s.Query("select v1, v2 from a where v2 >= 20 and v1 != 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].Int != 2 {
		t.Fatalf("filter result %v", rows)
	}
}

func TestDistributedByMissingColumn(t *testing.T) {
	s := newSession(t)
	loadEdges(t, s, "a", nil)
	_, err := s.Exec("create table b as select v1 from a distributed by (nope)")
	if err == nil {
		t.Fatal("bad DISTRIBUTED BY accepted")
	}
}

func TestCreateTablePlainAndInsert(t *testing.T) {
	s := newSession(t)
	if _, err := s.Exec("create table pts (x, y) distributed by (x)"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("insert into pts values (1, 2), (3, 4)"); err != nil {
		t.Fatal(err)
	}
	_, rows, err := s.Query("select count(*) as n from pts")
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0].Int != 2 {
		t.Fatalf("count %v", rows[0])
	}
	tab, _ := s.Cluster().Table("pts")
	if tab.DistKey != 0 {
		t.Fatalf("distkey %d", tab.DistKey)
	}
	if _, err := s.Exec("create table bad (x) distributed by (nope)"); err == nil {
		t.Fatal("bad DISTRIBUTED BY accepted")
	}
}

func TestOrderByLimit(t *testing.T) {
	s := newSession(t)
	loadEdges(t, s, "t", [][2]int64{{3, 30}, {1, 10}, {2, 20}, {5, 50}})
	_, rows, err := s.Query("select v1, v2 from t order by v1 desc limit 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0][0].Int != 5 || rows[1][0].Int != 3 {
		t.Fatalf("order by desc limit: %v", rows)
	}
	_, rows, err = s.Query("select v1, v2 from t order by v2 asc")
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][1].Int != 10 || rows[3][1].Int != 50 {
		t.Fatalf("order by asc: %v", rows)
	}
	if _, _, err := s.Query("select v1 from t order by missing"); err == nil {
		t.Fatal("ORDER BY unknown column accepted")
	}
}

func TestOrderByAppliesToWholeUnion(t *testing.T) {
	s := newSession(t)
	_, rows, err := s.Query("select 2 as x union all select 1 as x order by x")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0][0].Int != 1 || rows[1][0].Int != 2 {
		t.Fatalf("union order: %v", rows)
	}
}

func TestSumAggregate(t *testing.T) {
	s := newSession(t)
	loadEdges(t, s, "t", [][2]int64{{1, 10}, {1, 5}, {2, 7}})
	_, rows, err := s.Query("select v1, sum(v2) as total from t group by v1 order by v1")
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][1].Int != 15 || rows[1][1].Int != 7 {
		t.Fatalf("sum: %v", rows)
	}
}

func TestExplain(t *testing.T) {
	s := newSession(t)
	loadEdges(t, s, "t", [][2]int64{{1, 2}})
	out, err := s.Explain("explain select v1 v, min(v2) m from t group by v1")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"GroupBy", "Scan(t)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("explain output %q missing %q", out, want)
		}
	}
	if _, err := s.Explain("drop table t"); err == nil {
		t.Fatal("EXPLAIN of DDL accepted")
	}
	// Executing an EXPLAIN statement validates but does not run the query.
	before := s.Cluster().Stats().Queries
	if _, err := s.Exec("explain select v1 from t"); err != nil {
		t.Fatal(err)
	}
	if got := s.Cluster().Stats().Queries; got != before {
		t.Fatalf("EXPLAIN executed the query (%d -> %d)", before, got)
	}
}

func TestUDFNotRegistered(t *testing.T) {
	s := newSession(t)
	loadEdges(t, s, "a", [][2]int64{{1, 2}})
	if _, _, err := s.Query("select nosuchfn(v1) from a"); err == nil {
		t.Fatal("unknown function accepted")
	}
}
