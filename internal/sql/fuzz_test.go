package sql

import (
	"strings"
	"testing"
)

// FuzzParse checks the parser never panics and that anything it accepts
// round-trips through a second parse (the seed corpus runs under plain
// `go test`; use `go test -fuzz=FuzzParse ./internal/sql` to explore).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		";",
		"select 1",
		"select v1 v, least(axplusb(3, v1, 4), min(axplusb(3, v2, 4))) rep from g group by v1 distributed by (v)",
		"create table t as select a.x from t1 a left outer join t2 b on (a.x = b.y) where a.x != 3",
		"create table t (a, b) distributed by (b)",
		"insert into t values (1, null), (-2, 3)",
		"drop table a, b; alter table c rename to d",
		"select distinct v1, v2 from e union all select v2, v1 from e order by v1 desc limit 10",
		"explain select count(*) from t",
		"select (((1)))",
		"select 1 from t where a = 1 or b = 2 and c <> 3",
		"select -9223372036854775808 x",
		"create table",
		"select from",
		"select f(g(h(1,2),3),4) from t",
		"select 1 union all",
		"insert into t values (",
		"group by select where",
		"select a..b from t",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmts, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Accepted input must parse deterministically.
		again, err2 := Parse(src)
		if err2 != nil {
			t.Fatalf("second parse failed: %v", err2)
		}
		if len(stmts) != len(again) {
			t.Fatalf("non-deterministic parse: %d vs %d statements", len(stmts), len(again))
		}
		_ = strings.TrimSpace(src)
	})
}
