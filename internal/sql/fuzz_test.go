package sql

import (
	"errors"
	"strings"
	"testing"

	"dbcc/internal/engine"
)

// FuzzParse checks the parser never panics and that anything it accepts
// round-trips through a second parse (the seed corpus runs under plain
// `go test`; use `go test -fuzz=FuzzParse ./internal/sql` to explore).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		";",
		"select 1",
		"select v1 v, least(axplusb(3, v1, 4), min(axplusb(3, v2, 4))) rep from g group by v1 distributed by (v)",
		"create table t as select a.x from t1 a left outer join t2 b on (a.x = b.y) where a.x != 3",
		"create table t (a, b) distributed by (b)",
		"insert into t values (1, null), (-2, 3)",
		"drop table a, b; alter table c rename to d",
		"select distinct v1, v2 from e union all select v2, v1 from e order by v1 desc limit 10",
		"explain select count(*) from t",
		"select (((1)))",
		"select 1 from t where a = 1 or b = 2 and c <> 3",
		"select -9223372036854775808 x",
		"create table",
		"select from",
		"select f(g(h(1,2),3),4) from t",
		"select 1 union all",
		"insert into t values (",
		"group by select where",
		"select a..b from t",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmts, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Accepted input must parse deterministically.
		again, err2 := Parse(src)
		if err2 != nil {
			t.Fatalf("second parse failed: %v", err2)
		}
		if len(stmts) != len(again) {
			t.Fatalf("non-deterministic parse: %d vs %d statements", len(stmts), len(again))
		}
		_ = strings.TrimSpace(src)
	})
}

// FuzzPrepare drives the prepared-statement pipeline — Prepare, Bind,
// execute — with arbitrary statement text. Prepare must never panic
// (malformed parameter numbering is a plain error), Bind must reject
// count and kind mismatches as typed *BindError, and executing a
// well-bound handle must fail, if it fails, through an error — never a
// panic, and in particular never an unsubstituted paramExpr reaching the
// engine. Use `go test -fuzz=FuzzPrepare ./internal/sql` to explore.
func FuzzPrepare(f *testing.F) {
	seeds := []string{
		"select count(*) as n from $1 as g",
		"create table $1 as select x.v1 as v1, x.v2 as v2 from $2 as x",
		"insert into $1 values ($2, $3), ($4, $5)",
		"select v1 from e where v1 = $1",
		"drop table $1; alter table $2 rename to $1",
		"select least($1, v1) k from $2 t where t.v1 != $1",
		"select $1 from $1",              // value/table conflict
		"select v1 from e where v1 = $3", // noncontiguous
		"select $0 from e",
		"select $99999999999999999999 from e",
		"insert into $1 values ($2",
		"select count(*) from $1 union all select count(*) from $2",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		c := engine.NewCluster(engine.Options{Segments: 1})
		defer c.Close()
		if _, err := c.CreateTable("e", engine.Schema{"v1", "v2"}, 0); err != nil {
			t.Fatal(err)
		}
		s := NewSession(c)
		p, err := s.Prepare(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		// A bind with the wrong argument count must be a typed *BindError.
		if _, err := p.Bind(make([]Arg, p.NumParams()+1)...); err == nil {
			t.Fatalf("bind accepted %d args for %d params", p.NumParams()+1, p.NumParams())
		} else {
			var be *BindError
			if !errors.As(err, &be) {
				t.Fatalf("count mismatch is %T, want *BindError: %v", err, err)
			}
		}
		// Bind each parameter by its declared kind and execute. Execution
		// errors (missing tables, schema mismatches) are fine; panics and
		// kind-mismatch BindErrors on a well-formed binding are not.
		args := make([]Arg, p.NumParams())
		for i := range args {
			if p.ParamIsTable(i + 1) {
				args[i] = Table("e")
			} else {
				args[i] = Int(int64(i))
			}
		}
		if _, err := p.Exec(args...); err != nil {
			var be *BindError
			if errors.As(err, &be) {
				t.Fatalf("well-kinded binding rejected: %v", err)
			}
		}
	})
}
