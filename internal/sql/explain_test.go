package sql

import (
	"regexp"
	"strings"
	"testing"

	"dbcc/internal/engine"
)

// explainSession returns a session with an edge table and a label table
// for join + group-by profiling queries.
func explainSession(t *testing.T) *Session {
	t.Helper()
	s := newSession(t)
	loadEdges(t, s, "e", [][2]int64{{1, 2}, {2, 3}, {3, 4}, {4, 1}, {5, 6}})
	loadEdges(t, s, "lab", [][2]int64{{1, 10}, {2, 10}, {3, 10}, {4, 10}, {5, 20}, {6, 20}})
	return s
}

const joinGroupBySQL = `
	select lab.v2 c, count(*) n
	from e, lab
	where e.v1 = lab.v1
	group by lab.v2`

func TestExplainAnalyzeJoinGroupBy(t *testing.T) {
	s := explainSession(t)

	// Ground truth via plain execution: edges with v1 in {1..4} carry
	// label 10 (4 rows), v1 = 5 carries label 20 (1 row).
	_, rows, err := s.Query(joinGroupBySQL)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("query produced %d rows, want 2", len(rows))
	}

	out, err := s.Explain("explain analyze " + joinGroupBySQL)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range []string{"HashJoin", "GroupBy", "Scan(e)", "Scan(lab)"} {
		if !strings.Contains(out, op) {
			t.Fatalf("EXPLAIN ANALYZE output missing operator %s:\n%s", op, out)
		}
	}
	// Every operator line carries measured actuals; every operator is
	// followed by its per-segment breakdown.
	actual := regexp.MustCompile(`actual time=\d+\.\d{3}ms rows=\d+ bytes=\d+`)
	if got := len(actual.FindAllString(out, -1)); got < 4 {
		t.Fatalf("found %d operator actual annotations, want >= 4:\n%s", got, out)
	}
	segRe := regexp.MustCompile(`seg rows=\[[0-9 ]+\]`)
	if got := len(segRe.FindAllString(out, -1)); got < 4 {
		t.Fatalf("found %d per-segment breakdowns, want >= 4:\n%s", got, out)
	}
	// The per-segment counts of every operator have one entry per segment.
	segs := s.Cluster().Segments()
	for _, m := range segRe.FindAllString(out, -1) {
		counts := strings.Fields(m[len("seg rows=[") : len(m)-1])
		if len(counts) != segs {
			t.Fatalf("segment breakdown %q has %d entries, want %d", m, len(counts), segs)
		}
	}
	// The statement totals line reports the executed row count.
	if !strings.Contains(out, "Total: rows=2 time=") {
		t.Fatalf("EXPLAIN ANALYZE output missing totals line:\n%s", out)
	}
	// The join's measured output count is the 5 matched edge rows.
	joinLine := regexp.MustCompile(`HashJoin[^\n]*rows=(\d+)`).FindStringSubmatch(out)
	if joinLine == nil || joinLine[1] != "5" {
		t.Fatalf("HashJoin actual rows = %v, want 5:\n%s", joinLine, out)
	}
}

func TestExplainAnalyzeViaExec(t *testing.T) {
	s := explainSession(t)
	// Executing EXPLAIN ANALYZE as a statement runs the query and reports
	// its row count; plain EXPLAIN only plans and reports zero.
	n, err := s.Exec("explain analyze " + joinGroupBySQL)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("EXPLAIN ANALYZE reported %d rows, want 2", n)
	}
	n, err = s.Exec("explain " + joinGroupBySQL)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("plain EXPLAIN reported %d rows, want 0", n)
	}
}

func TestExplainAnalyzeMethod(t *testing.T) {
	s := explainSession(t)
	// ExplainAnalyze profiles a bare SELECT without the prefix.
	out, err := s.ExplainAnalyze("select v1 from e where v1 < 3")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Filter") || !strings.Contains(out, "actual time=") {
		t.Fatalf("ExplainAnalyze output missing profile:\n%s", out)
	}
	if !strings.Contains(out, "output: [v1]") {
		t.Fatalf("ExplainAnalyze output missing column header:\n%s", out)
	}
}

// TestExplainAnalyzeShowsBloomPruning joins on a non-distribution column,
// forcing the probe side to reshuffle; the build-side bloom filter then
// prunes the probe rows whose keys no build row carries, and the join's
// operator line must surface both counters. Disabling bloom joins removes
// the annotation but not the rows.
func TestExplainAnalyzeShowsBloomPruning(t *testing.T) {
	s := explainSession(t)
	// lab is distributed by v1; probing on lab.v2 (labels 10 and 20)
	// against e.v1 (vertices 1-5) reshuffles lab, and no label matches a
	// vertex id, so every checked probe row is prunable.
	q := "select count(*) n from lab, e where lab.v2 = e.v1"
	out, err := s.ExplainAnalyze(q)
	if err != nil {
		t.Fatal(err)
	}
	m := regexp.MustCompile(`HashJoin[^\n]* bloom checked=(\d+) skipped=(\d+)`).FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("EXPLAIN ANALYZE join line missing bloom counters:\n%s", out)
	}
	if m[1] != "6" {
		t.Fatalf("bloom checked = %s, want all 6 probe rows:\n%s", m[1], out)
	}
	if m[2] == "0" {
		t.Fatalf("bloom skipped no rows despite a disjoint key set:\n%s", out)
	}

	off := NewSession(engine.NewCluster(engine.Options{Segments: 4, DisableBloomJoin: true}))
	loadEdges(t, off, "e", [][2]int64{{1, 2}, {2, 3}, {3, 4}, {4, 1}, {5, 6}})
	loadEdges(t, off, "lab", [][2]int64{{1, 10}, {2, 10}, {3, 10}, {4, 10}, {5, 20}, {6, 20}})
	out, err = off.ExplainAnalyze(q)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "bloom checked=") {
		t.Fatalf("bloom annotation survived DisableBloomJoin:\n%s", out)
	}
}

func TestPlainExplainUnchanged(t *testing.T) {
	s := explainSession(t)
	out, err := s.Explain("explain select v1, count(*) n from e group by v1")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "actual time=") {
		t.Fatalf("plain EXPLAIN must not execute or annotate:\n%s", out)
	}
	if !strings.Contains(out, "GroupBy") {
		t.Fatalf("plain EXPLAIN missing plan:\n%s", out)
	}
}
