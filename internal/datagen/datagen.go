// Package datagen generates the reproduction's datasets: laptop-scale
// synthetic stand-ins for every dataset family in the paper's Table II,
// plus the exact synthetic constructions the paper uses (R-MAT, Path,
// PathUnion) and small structured graphs for the theory experiments.
//
// Substitutions (documented in DESIGN.md §1): the 250 GB Bitcoin
// blockchain, the com-Friendster social network, the Andromeda Gigapixel
// image and the CANDELS UHD video are unavailable; Bitcoin, BitcoinFull,
// Friendster, Image2D and Video3D generate graphs with the same structural
// traits the paper argues matter — bounded degree for the image graphs,
// scale-free component sizes, a single giant component for Friendster —
// at a scale that preserves each dataset's |E|/|V| ratio and relative
// size.
package datagen

import (
	"math"

	"dbcc/internal/graph"
	"dbcc/internal/xrand"
)

// Path returns the sequentially numbered path graph 1—2—…—n, the paper's
// adversarial input: Breadth First Search takes n−1 rounds on it (Sec. IV)
// and deterministic min-contraction shrinks it by one vertex per round
// (Fig. 2a). Hash-to-Min and Cracker blow up quadratically on it
// (Path100M, Sec. VII-A).
func Path(n int) *graph.Graph {
	g := graph.New(n - 1)
	for i := int64(1); i < int64(n); i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// PathUnion returns a union of k disjoint paths of geometrically increasing
// lengths with vertices numbered adversarially for the Two-Phase
// algorithm's large-star/small-star alternation (PathUnion10, Sec. VII-A).
// The paper describes the numbering only as "a specific way"; this
// implementation numbers each path's positions by bit reversal, which in
// our measurements penalises Two-Phase hardest among structured
// numberings while — unlike sequential numbering — not triggering the
// separate quadratic blow-ups of Hash-to-Min and Cracker (the paper's
// PathUnion10 likewise leaves Cracker functional). totalVertices is
// distributed across the paths in proportions 1 : 2 : 4 : … : 2^(k−1).
func PathUnion(k, totalVertices int) *graph.Graph {
	weights := 1<<uint(k) - 1
	g := graph.New(totalVertices)
	base := int64(1)
	for p := 0; p < k; p++ {
		n := totalVertices * (1 << uint(p)) / weights
		if n < 2 {
			n = 2
		}
		// Bit width covering positions 0..n-1.
		w := 1
		for 1<<uint(w) < n {
			w++
		}
		num := func(i int) int64 { return base + int64(bitReverse(uint64(i), w)) }
		for i := 0; i < n-1; i++ {
			g.AddEdge(num(i), num(i+1))
		}
		base += 1 << uint(w) // disjoint ID ranges per path
	}
	return g
}

// bitReverse reverses the low w bits of v.
func bitReverse(v uint64, w int) uint64 {
	var r uint64
	for b := 0; b < w; b++ {
		r = r<<1 | v&1
		v >>= 1
	}
	return r
}

// Cycle returns the n-cycle with sequential numbering.
func Cycle(n int) *graph.Graph {
	g := graph.New(n)
	for i := int64(1); i < int64(n); i++ {
		g.AddEdge(i, i+1)
	}
	g.AddEdge(int64(n), 1)
	return g
}

// Complete returns the complete graph on n vertices.
func Complete(n int) *graph.Graph {
	g := graph.New(n * (n - 1) / 2)
	for i := int64(1); i <= int64(n); i++ {
		for j := i + 1; j <= int64(n); j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

// Star returns the star graph: vertex 1 joined to vertices 2..n.
func Star(n int) *graph.Graph {
	g := graph.New(n - 1)
	for i := int64(2); i <= int64(n); i++ {
		g.AddEdge(1, i)
	}
	return g
}

// RMAT generates a recursive-matrix random graph (Chakrabarti et al.) with
// the partition probabilities (a, b, c, d) the paper takes from the
// Two-Phase evaluation: (0.57, 0.19, 0.19, 0.05). scale is log2 of the
// vertex-ID space; edges is the number of edge rows generated. Vertex IDs
// are randomised afterwards, as in the paper, to decouple graph structure
// from generation artefacts.
func RMAT(scale int, edges int, a, b, c, d float64, seed uint64) *graph.Graph {
	rng := xrand.New(seed)
	g := graph.New(edges)
	for i := 0; i < edges; i++ {
		var v, w int64
		for bit := 0; bit < scale; bit++ {
			r := rng.Float64()
			switch {
			case r < a:
				// top-left: both bits 0
			case r < a+b:
				w |= 1 << uint(bit)
			case r < a+b+c:
				v |= 1 << uint(bit)
			default:
				v |= 1 << uint(bit)
				w |= 1 << uint(bit)
			}
		}
		g.AddEdge(v+1, w+1)
	}
	g.RandomizeIDs(seed ^ 0x52a47) // decouple IDs from the recursive structure
	return g
}

// paretoArea draws an object area from a truncated Pareto distribution
// with tail exponent alpha on [minA, maxA]: the source of the power-law
// object (and hence component) sizes of Fig. 5.
func paretoArea(rng *xrand.Rand, minA, maxA, alpha float64) float64 {
	u := rng.Float64()
	lo := 1.0
	hi := math.Pow(minA/maxA, alpha)
	t := lo + u*(hi-lo)
	return minA * math.Pow(t, -1.0/alpha)
}

// Image2D generates the "Andromeda" stand-in: a width×height sky image —
// a giant background sprinkled with objects whose areas follow a truncated
// power law — converted to a graph with an edge between horizontally or
// vertically adjacent pixels of the same region (the paper used RGB
// distance ≤ 50); a dropout fraction of edges models pixel noise at region
// boundaries and texture. Component sizes are scale-free by construction,
// with the background as the single giant outlier — exactly the Fig. 5
// behaviour the paper reports ("the single outlier for Andromeda is the
// image's black background"). Vertex IDs are randomised so they do not
// reflect image geometry, as the paper does.
func Image2D(width, height, objects int, alpha, dropout float64, seed uint64) *graph.Graph {
	rng := xrand.New(seed)
	pix := make([]int32, width*height)
	stampObjects(rng, pix, width, height, 1, objects, alpha)
	g := graph.New(2 * width * height)
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			i := y*width + x
			if x+1 < width && pix[i] == pix[i+1] && rng.Float64() >= dropout {
				g.AddEdge(int64(i), int64(i+1))
			}
			if y+1 < height && pix[i] == pix[i+width] && rng.Float64() >= dropout {
				g.AddEdge(int64(i), int64(i+width))
			}
		}
	}
	g.RandomizeIDs(seed ^ 0x6a1d2d)
	return g
}

// Video3D generates the "Candels" stand-in: frames of a width×height
// synthetic survey flight with pixel 6-connectivity (x, y and time),
// matching the paper's conversion of the CANDELS video (colour difference
// ≤ 20, 6-connectivity). Objects are boxes extending through space and
// time with power-law volumes over a giant background. Increasing frames
// yields the Candels10…Candels160 scalability series. Vertex IDs are
// randomised.
func Video3D(width, height, frames, objects int, alpha, dropout float64, seed uint64) *graph.Graph {
	rng := xrand.New(seed)
	n := width * height * frames
	pix := make([]int32, n)
	stampObjects(rng, pix, width, height, frames, objects, alpha)
	g := graph.New(3 * n)
	idx := func(x, y, t int) int { return (t*height+y)*width + x }
	for t := 0; t < frames; t++ {
		for y := 0; y < height; y++ {
			for x := 0; x < width; x++ {
				i := idx(x, y, t)
				if x+1 < width && pix[i] == pix[idx(x+1, y, t)] && rng.Float64() >= dropout {
					g.AddEdge(int64(i), int64(idx(x+1, y, t)))
				}
				if y+1 < height && pix[i] == pix[idx(x, y+1, t)] && rng.Float64() >= dropout {
					g.AddEdge(int64(i), int64(idx(x, y+1, t)))
				}
				if t+1 < frames && pix[i] == pix[idx(x, y, t+1)] && rng.Float64() >= dropout {
					g.AddEdge(int64(i), int64(idx(x, y, t+1)))
				}
			}
		}
	}
	g.RandomizeIDs(seed ^ 0xca4de15)
	return g
}

// stampObjects paints `objects` axis-aligned boxes with Pareto(alpha)
// volumes onto a width×height×frames canvas of region IDs (0 keeps the
// background; later stamps overwrite earlier ones, fragmenting them the
// way overlapping sources do in a real image).
func stampObjects(rng *xrand.Rand, pix []int32, width, height, frames, objects int, alpha float64) {
	total := float64(len(pix))
	dims := 2
	if frames > 1 {
		dims = 3
	}
	for id := int32(1); id <= int32(objects); id++ {
		area := paretoArea(rng, 2, total/8, alpha)
		// Box side from the volume, with a random aspect ratio per axis.
		side := math.Pow(area, 1.0/float64(dims))
		dim := func(limit int) (int, int) {
			s := int(side*(0.5+rng.Float64())) + 1
			if s > limit {
				s = limit
			}
			off := 0
			if limit > s {
				off = int(rng.Uint64n(uint64(limit - s + 1)))
			}
			return off, s
		}
		x0, w := dim(width)
		y0, h := dim(height)
		t0, d := 0, 1
		if dims == 3 {
			t0, d = dim(frames)
		}
		for t := t0; t < t0+d; t++ {
			for y := y0; y < y0+h; y++ {
				base := (t*height + y) * width
				for x := x0; x < x0+w; x++ {
					pix[base+x] = id
				}
			}
		}
	}
}

// Bitcoin generates the "Bitcoin addresses" stand-in: the bipartite graph
// linking addresses to the transactions that spend from them (the address
// clustering heuristic of Sec. VII-A). Transactions draw a geometric
// number of input addresses; addresses are reused with preferential
// attachment, giving the heavy-tailed address-reuse behaviour that makes
// the real graph's component sizes scale-free (Fig. 5). Transaction IDs
// and address IDs live in disjoint ranges.
func Bitcoin(numTx int, seed uint64) *graph.Graph {
	rng := xrand.New(seed)
	g := graph.New(numTx * 2)
	const txBase = 1 << 40 // transaction IDs start here; addresses below
	// usage is the address-reuse multiset: picking a uniform element is
	// preferential attachment proportional to prior usage.
	var usage []int64
	nextAddr := int64(1)
	for tx := 0; tx < numTx; tx++ {
		txID := int64(txBase + tx)
		// Geometric number of inputs, mean 1.6: most transactions spend a
		// single input and cause no merging, keeping the graph near the
		// percolation threshold like the real address graph (the paper
		// reports 217 M components over 878 M vertices).
		inputs := 1
		for rng.Float64() < 0.375 && inputs < 64 {
			inputs++
		}
		for i := 0; i < inputs; i++ {
			var addr int64
			// Reuse an existing address with probability 0.45.
			if len(usage) > 0 && rng.Float64() < 0.45 {
				addr = usage[rng.Uint64n(uint64(len(usage)))]
			} else {
				addr = nextAddr
				nextAddr++
			}
			usage = append(usage, addr)
			g.AddEdge(txID, addr)
		}
	}
	return g
}

// BitcoinFull generates the "Bitcoin full" stand-in: the complete
// transaction graph of Sec. VII-A, a bipartite graph of transactions and
// the outputs they produce and spend. Unlike the address graph, spending
// links transactions into long chains, so the graph has only a handful of
// components ("different markets that have not interacted with each
// other" — the paper reports 37 k components over 1.5 G vertices).
// Each transaction spends a geometric number of previously unspent outputs
// and produces a geometric number of new ones; a small fraction of
// transactions are coinbase-like roots with no inputs, seeding the rare
// separate markets.
func BitcoinFull(numTx int, seed uint64) *graph.Graph {
	rng := xrand.New(seed)
	g := graph.New(numTx * 4)
	const txBase = 1 << 40
	var unspent []int64
	nextOut := int64(1)
	for tx := 0; tx < numTx; tx++ {
		txID := int64(txBase + tx)
		// Coinbase transactions (no inputs) appear rarely after startup.
		coinbase := len(unspent) == 0 || rng.Float64() < 0.0005
		if !coinbase {
			inputs := 1
			for rng.Float64() < 0.5 && inputs < 16 {
				inputs++
			}
			for i := 0; i < inputs && len(unspent) > 0; i++ {
				j := int(rng.Uint64n(uint64(len(unspent))))
				out := unspent[j]
				unspent[j] = unspent[len(unspent)-1]
				unspent = unspent[:len(unspent)-1]
				g.AddEdge(txID, out)
			}
		}
		outputs := 1
		for rng.Float64() < 0.5 && outputs < 16 {
			outputs++
		}
		for i := 0; i < outputs; i++ {
			g.AddEdge(txID, nextOut)
			unspent = append(unspent, nextOut)
			nextOut++
		}
	}
	return g
}

// Friendster generates the social-network stand-in: a preferential-
// attachment graph where each of n vertices attaches m edges to earlier
// vertices chosen proportionally to degree. Like com-Friendster it has a
// single connected component and a heavy-tailed degree distribution.
func Friendster(n, m int, seed uint64) *graph.Graph {
	rng := xrand.New(seed)
	g := graph.New(n * m)
	// targets is the degree multiset for preferential selection.
	targets := make([]int64, 0, 2*n*m)
	g.AddEdge(1, 2)
	targets = append(targets, 1, 2)
	for v := int64(3); v <= int64(n); v++ {
		for e := 0; e < m; e++ {
			w := targets[rng.Uint64n(uint64(len(targets)))]
			if w == v {
				w = v - 1
			}
			g.AddEdge(v, w)
			targets = append(targets, v, w)
		}
	}
	return g
}

// StreetGrid generates the "Streets of Italy" stand-in used by the Spark
// comparison (Sec. VII-C): a road-network-like planar graph — a sparse 2-D
// lattice with a fraction of edges removed — whose |E|/|V| ≈ 1.05 matches
// the reported street network (19 M vertices, 20 M edges).
func StreetGrid(width, height int, keep float64, seed uint64) *graph.Graph {
	rng := xrand.New(seed)
	g := graph.New(2 * width * height)
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			i := int64(y*width + x)
			if x+1 < width && rng.Float64() < keep {
				g.AddEdge(i, i+1)
			}
			if y+1 < height && rng.Float64() < keep {
				g.AddEdge(i, i+int64(width))
			}
		}
	}
	g.RandomizeIDs(seed ^ 0x57e375)
	return g
}

// ErdosRenyi generates a G(n, m) random graph with m uniform edges, used by
// the property-based algorithm tests.
func ErdosRenyi(n, m int, seed uint64) *graph.Graph {
	rng := xrand.New(seed)
	g := graph.New(m)
	for i := 0; i < m; i++ {
		v := rng.Int63n(int64(n)) + 1
		w := rng.Int63n(int64(n)) + 1
		g.AddEdge(v, w)
	}
	return g
}
