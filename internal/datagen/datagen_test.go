package datagen

import (
	"testing"

	"dbcc/internal/unionfind"
)

func TestPath(t *testing.T) {
	g := Path(10)
	if g.NumEdges() != 9 || g.NumVertices() != 10 {
		t.Fatalf("path: %d edges, %d vertices", g.NumEdges(), g.NumVertices())
	}
	if unionfind.CountComponents(g) != 1 {
		t.Fatal("path not connected")
	}
	// Sequential numbering is the point of this generator.
	if g.Edges[0].V != 1 || g.Edges[0].W != 2 {
		t.Fatalf("path numbering %v", g.Edges[0])
	}
}

func TestPathUnion(t *testing.T) {
	g := PathUnion(10, 10000)
	if got := unionfind.CountComponents(g); got != 10 {
		t.Fatalf("PathUnion(10) has %d components", got)
	}
	// Path lengths must differ (geometric progression).
	sizes := unionfind.Components(g).ComponentSizes()
	distinct := make(map[int]bool)
	for _, s := range sizes {
		distinct[s] = true
	}
	if len(distinct) < 8 {
		t.Fatalf("path lengths not sufficiently distinct: %v", sizes)
	}
}

func TestCycleCompleteStar(t *testing.T) {
	if g := Cycle(10); g.NumEdges() != 10 || unionfind.CountComponents(g) != 1 {
		t.Fatal("cycle malformed")
	}
	if g := Complete(6); g.NumEdges() != 15 || g.MaxDegree() != 5 {
		t.Fatal("complete graph malformed")
	}
	if g := Star(7); g.NumEdges() != 6 || g.MaxDegree() != 6 {
		t.Fatal("star malformed")
	}
}

func TestRMAT(t *testing.T) {
	g := RMAT(12, 20000, 0.57, 0.19, 0.19, 0.05, 1)
	if g.NumEdges() != 20000 {
		t.Fatalf("rmat edges %d", g.NumEdges())
	}
	// Skew: R-MAT with these parameters concentrates edges on few vertices,
	// so max degree far exceeds the Erdős–Rényi expectation.
	if g.MaxDegree() < 50 {
		t.Fatalf("rmat max degree %d, expected heavy skew", g.MaxDegree())
	}
	// Determinism.
	h := RMAT(12, 20000, 0.57, 0.19, 0.19, 0.05, 1)
	if h.Edges[0] != g.Edges[0] || h.Edges[19999] != g.Edges[19999] {
		t.Fatal("rmat not deterministic for fixed seed")
	}
}

func TestImage2D(t *testing.T) {
	g := Image2D(100, 100, 400, 1.1, 0.2, 7)
	if g.NumEdges() == 0 {
		t.Fatal("no edges")
	}
	// 4-connectivity bounds the degree by 4.
	if d := g.MaxDegree(); d > 4 {
		t.Fatalf("2-D image degree %d > 4", d)
	}
	l := unionfind.Components(g)
	if l.NumComponents() < 50 {
		t.Fatalf("only %d components", l.NumComponents())
	}
	// The background is a giant outlier component.
	maxSize := 0
	for _, s := range l.ComponentSizes() {
		if s > maxSize {
			maxSize = s
		}
	}
	if maxSize < len(l)/4 {
		t.Fatalf("largest component %d of %d vertices; expected a giant background", maxSize, len(l))
	}
	// |E|/|V| should be near 2·(1−dropout) ≈ 1.6 (paper: 1.57).
	ratio := float64(g.NumEdges()) / float64(g.NumVertices())
	if ratio < 1.2 || ratio > 1.9 {
		t.Fatalf("|E|/|V| = %.2f, want ≈1.6", ratio)
	}
}

func TestImage2DPowerLawSizes(t *testing.T) {
	// Bucketed component counts must decrease roughly monotonically over
	// several octaves — the log-log-linear shape of Fig. 5.
	g := Image2D(200, 150, 1200, 1.1, 0.2, 11)
	sizes := unionfind.Components(g).ComponentSizes()
	buckets := make(map[int]int)
	for _, s := range sizes {
		b := 0
		for v := s; v > 1; v >>= 1 {
			b++
		}
		buckets[b]++
	}
	if len(buckets) < 5 {
		t.Fatalf("component sizes span only %d octaves", len(buckets))
	}
	if buckets[1] < buckets[4] {
		t.Fatalf("size distribution not decreasing: %v", buckets)
	}
}

func TestVideo3D(t *testing.T) {
	g := Video3D(20, 20, 10, 30, 1.1, 0.04, 7)
	if d := g.MaxDegree(); d > 6 {
		t.Fatalf("3-D video degree %d > 6", d)
	}
	if unionfind.CountComponents(g) < 5 {
		t.Fatal("too few components")
	}
	// |E|/|V| should be near 3·(1−dropout) ≈ 2.9 (paper: 2.87).
	ratio := float64(g.NumEdges()) / float64(g.NumVertices())
	if ratio < 2.2 || ratio > 3.0 {
		t.Fatalf("|E|/|V| = %.2f, want ≈2.9", ratio)
	}
}

func TestVideo3DScalesWithFrames(t *testing.T) {
	small := Video3D(16, 16, 5, 10, 1.1, 0.04, 3)
	large := Video3D(16, 16, 10, 20, 1.1, 0.04, 3)
	if large.NumEdges() < small.NumEdges()*3/2 {
		t.Fatalf("doubling frames did not grow the graph: %d vs %d",
			small.NumEdges(), large.NumEdges())
	}
}

func TestBitcoinBipartite(t *testing.T) {
	g := Bitcoin(5000, 11)
	const txBase = int64(1) << 40
	for _, e := range g.Edges {
		// Every edge must link a transaction to an address.
		txV, txW := e.V >= txBase, e.W >= txBase
		if txV == txW {
			t.Fatalf("non-bipartite edge %v", e)
		}
	}
	// Heavy-tailed reuse: some address must be used many times.
	deg := make(map[int64]int)
	for _, e := range g.Edges {
		if e.W < txBase {
			deg[e.W]++
		}
		if e.V < txBase {
			deg[e.V]++
		}
	}
	maxd := 0
	for _, d := range deg {
		if d > maxd {
			maxd = d
		}
	}
	if maxd < 20 {
		t.Fatalf("address reuse max %d, expected heavy tail", maxd)
	}
	// Many components: address clustering yields many entities.
	if c := unionfind.CountComponents(g); c < 100 {
		t.Fatalf("bitcoin graph has %d components", c)
	}
}

func TestBitcoinFullFewComponents(t *testing.T) {
	g := BitcoinFull(5000, 11)
	const txBase = int64(1) << 40
	for _, e := range g.Edges {
		txV, txW := e.V >= txBase, e.W >= txBase
		if txV == txW {
			t.Fatalf("non-bipartite edge %v", e)
		}
	}
	// The spending chains link almost everything: components must be a
	// tiny fraction of vertices (paper: 37 k of 1.5 G).
	comps := unionfind.CountComponents(g)
	if comps > g.NumVertices()/100 {
		t.Fatalf("bitcoin-full has %d components over %d vertices; expected few",
			comps, g.NumVertices())
	}
	// More connected than the address graph: |E|/tx around 4.
	if g.NumEdges() < 3*5000 {
		t.Fatalf("only %d edges for 5000 transactions", g.NumEdges())
	}
}

func TestFriendsterSingleComponent(t *testing.T) {
	g := Friendster(2000, 5, 17)
	if c := unionfind.CountComponents(g); c != 1 {
		t.Fatalf("friendster has %d components, want 1", c)
	}
	// Preferential attachment must produce hubs.
	if g.MaxDegree() < 50 {
		t.Fatalf("max degree %d, expected hubs", g.MaxDegree())
	}
}

func TestStreetGrid(t *testing.T) {
	g := StreetGrid(100, 100, 0.55, 23)
	if d := g.MaxDegree(); d > 4 {
		t.Fatalf("street grid degree %d", d)
	}
	ratio := float64(g.NumEdges()) / float64(g.NumVertices())
	if ratio < 0.8 || ratio > 1.4 {
		t.Fatalf("street |E|/|V| = %.2f, want ≈1.05", ratio)
	}
}

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi(100, 500, 3)
	if g.NumEdges() != 500 {
		t.Fatalf("edges %d", g.NumEdges())
	}
	for _, e := range g.Edges {
		if e.V < 1 || e.V > 100 || e.W < 1 || e.W > 100 {
			t.Fatalf("edge out of range: %v", e)
		}
	}
}
