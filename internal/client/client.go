// Package client is the Go client for ccserverd's wire protocol: dial,
// select a tenant, then issue SQL statements, streamed SELECTs and
// connected-components runs over one TCP connection.
//
// A Client carries one statement at a time (the protocol is strictly
// request/reply); open one Client per goroutine for concurrency, exactly
// as the bench load generator does. Admission rejections surface as
// *wire.WireError with code 429 — test with IsOverloaded — so callers
// can tell "server is protecting itself, back off" apart from "my
// statement is wrong".
package client

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"time"

	"dbcc/internal/engine"
	"dbcc/internal/wire"
)

// Client is one authenticated connection to a ccserverd.
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
}

// CCResult is the reply to a ConnectedComponents run over the wire.
type CCResult struct {
	Components int64
	Rounds     int64
	Vertices   int64
	// Queued is how long the statement waited in the server's admission
	// queue before executing.
	Queued time.Duration
}

// IsOverloaded reports whether err is the server's 429-style admission
// rejection (tenant statement cap reached with a full queue, or the
// queue wait timed out) — the signal to back off and retry.
func IsOverloaded(err error) bool {
	var we *wire.WireError
	return errors.As(err, &we) && we.Overloaded()
}

// IsUnavailable reports whether err is the server's 503: draining for
// shutdown, or the statement was cancelled by it.
func IsUnavailable(err error) bool {
	var we *wire.WireError
	return errors.As(err, &we) && we.Code == wire.CodeUnavailable
}

// Dial connects and authenticates: tenant selects the catalog this
// connection operates in, token must match the server's configured
// secret (empty when the server runs without auth).
func Dial(addr, tenant, token string) (*Client, error) {
	return DialTimeout(addr, tenant, token, 10*time.Second)
}

// DialTimeout is Dial with a connect timeout.
func DialTimeout(addr, tenant, token string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn)}
	hello := wire.EncodeHello(wire.Hello{Version: wire.ProtocolVersion, Tenant: tenant, Token: token})
	if err := c.send(wire.Frame{Type: wire.TypeHello, Payload: hello}); err != nil {
		conn.Close()
		return nil, err
	}
	f, err := c.recv()
	if err != nil {
		conn.Close()
		return nil, err
	}
	if f.Type != wire.TypeHelloOK {
		conn.Close()
		return nil, fmt.Errorf("client: handshake answered with frame 0x%02x", f.Type)
	}
	if _, err := wire.DecodeHelloOK(f.Payload); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) send(f wire.Frame) error {
	if err := wire.WriteFrame(c.bw, f); err != nil {
		return err
	}
	return c.bw.Flush()
}

// recv reads one frame, turning Error frames into *wire.WireError.
func (c *Client) recv() (wire.Frame, error) {
	f, err := wire.ReadFrame(c.br)
	if err != nil {
		return wire.Frame{}, err
	}
	if f.Type == wire.TypeError {
		we, derr := wire.DecodeError(f.Payload)
		if derr != nil {
			return wire.Frame{}, derr
		}
		return wire.Frame{}, &we
	}
	return f, nil
}

// Exec runs a statement script, returning the last statement's row count
// and the time the script waited in the admission queue.
func (c *Client) Exec(src string) (rows int64, queued time.Duration, err error) {
	if err := c.send(wire.Frame{Type: wire.TypeExec, Payload: []byte(src)}); err != nil {
		return 0, 0, err
	}
	f, err := c.recv()
	if err != nil {
		return 0, 0, err
	}
	if f.Type != wire.TypeDone {
		return 0, 0, fmt.Errorf("client: Exec answered with frame 0x%02x", f.Type)
	}
	d, err := wire.DecodeDone(f.Payload)
	if err != nil {
		return 0, 0, err
	}
	return d.Rows, time.Duration(d.QueueNanos), nil
}

// Query runs a SELECT and returns the full result set (streamed from the
// server in bounded chunks, reassembled here).
func (c *Client) Query(src string) (engine.Schema, []engine.Row, error) {
	if err := c.send(wire.Frame{Type: wire.TypeQuery, Payload: []byte(src)}); err != nil {
		return nil, nil, err
	}
	return c.readResult()
}

// readResult reassembles a streamed Schema, Rows*, Done reply.
func (c *Client) readResult() (engine.Schema, []engine.Row, error) {
	f, err := c.recv()
	if err != nil {
		return nil, nil, err
	}
	if f.Type != wire.TypeSchema {
		return nil, nil, fmt.Errorf("client: Query answered with frame 0x%02x, want Schema", f.Type)
	}
	sch, err := wire.DecodeSchema(f.Payload)
	if err != nil {
		return nil, nil, err
	}
	schema := engine.Schema(sch.Cols)
	var rows []engine.Row
	for {
		f, err := c.recv()
		if err != nil {
			return nil, nil, err
		}
		switch f.Type {
		case wire.TypeRows:
			chunk, err := wire.DecodeRows(f.Payload)
			if err != nil {
				return nil, nil, err
			}
			if chunk.NCols != len(schema) {
				return nil, nil, fmt.Errorf("client: rows chunk has %d columns, schema has %d", chunk.NCols, len(schema))
			}
			for r := 0; r < chunk.NRows(); r++ {
				row := make(engine.Row, chunk.NCols)
				for col := 0; col < chunk.NCols; col++ {
					i := r*chunk.NCols + col
					if chunk.Tags[i] == 1 {
						row[col] = engine.NullDatum
					} else {
						row[col] = engine.I(chunk.Vals[i])
					}
				}
				rows = append(rows, row)
			}
		case wire.TypeDone:
			return schema, rows, nil
		default:
			return nil, nil, fmt.Errorf("client: unexpected frame 0x%02x in result stream", f.Type)
		}
	}
}

// Int, Null and Table build the three bound-argument kinds of a prepared
// statement: an integer value, SQL NULL, and a table name standing in for
// a table-identifier placeholder.
func Int(v int64) wire.Arg       { return wire.IntArg(v) }
func Null() wire.Arg             { return wire.NullArg() }
func Table(name string) wire.Arg { return wire.TableArg(name) }

// Stmt is a prepared statement held open on the server: parsed once at
// Prepare, planned once at first execution (the server caches the plan),
// then executed with fresh bindings every call. Close releases the
// server-side handle; closing the Client releases all of them.
type Stmt struct {
	c         *Client
	id        uint32
	numParams int
	isQuery   bool
}

// Prepare parses a $N statement on the server and returns the handle.
// Placeholders can stand for integer values or — uniquely useful for the
// round-loop rename dance — table identifiers.
func (c *Client) Prepare(src string) (*Stmt, error) {
	if err := c.send(wire.Frame{Type: wire.TypePrepare, Payload: []byte(src)}); err != nil {
		return nil, err
	}
	f, err := c.recv()
	if err != nil {
		return nil, err
	}
	if f.Type != wire.TypePrepareOK {
		return nil, fmt.Errorf("client: Prepare answered with frame 0x%02x", f.Type)
	}
	ok, err := wire.DecodePrepareOK(f.Payload)
	if err != nil {
		return nil, err
	}
	return &Stmt{c: c, id: ok.ID, numParams: int(ok.NumParams), isQuery: ok.IsQuery}, nil
}

// NumParams reports how many $N parameters the statement takes.
func (s *Stmt) NumParams() int { return s.numParams }

// IsQuery reports whether execution streams a result set (a single
// SELECT) rather than answering with a row count.
func (s *Stmt) IsQuery() bool { return s.isQuery }

// Exec executes the prepared statement with the given arguments,
// returning the last sub-statement's row count and the admission queue
// wait.
func (s *Stmt) Exec(args ...wire.Arg) (rows int64, queued time.Duration, err error) {
	req := wire.EncodeExecPrepared(wire.ExecPrepared{ID: s.id, Args: args})
	if err := s.c.send(wire.Frame{Type: wire.TypeExecPrepared, Payload: req}); err != nil {
		return 0, 0, err
	}
	f, err := s.c.recv()
	if err != nil {
		return 0, 0, err
	}
	if f.Type != wire.TypeDone {
		return 0, 0, fmt.Errorf("client: ExecPrepared answered with frame 0x%02x", f.Type)
	}
	d, err := wire.DecodeDone(f.Payload)
	if err != nil {
		return 0, 0, err
	}
	return d.Rows, time.Duration(d.QueueNanos), nil
}

// Query executes a prepared SELECT with the given arguments and returns
// the full result set.
func (s *Stmt) Query(args ...wire.Arg) (engine.Schema, []engine.Row, error) {
	req := wire.EncodeExecPrepared(wire.ExecPrepared{ID: s.id, Args: args})
	if err := s.c.send(wire.Frame{Type: wire.TypeExecPrepared, Payload: req}); err != nil {
		return nil, nil, err
	}
	return s.c.readResult()
}

// Close releases the server-side prepared statement.
func (s *Stmt) Close() error {
	req := wire.EncodeClosePrepared(wire.ClosePrepared{ID: s.id})
	if err := s.c.send(wire.Frame{Type: wire.TypeClosePrepared, Payload: req}); err != nil {
		return err
	}
	f, err := s.c.recv()
	if err != nil {
		return err
	}
	if f.Type != wire.TypeDone {
		return fmt.Errorf("client: ClosePrepared answered with frame 0x%02x", f.Type)
	}
	return nil
}

// ConnectedComponents runs the named algorithm ("" selects Randomised
// Contraction) over a table in the connection's tenant catalog.
func (c *Client) ConnectedComponents(table, algorithm string, seed uint64) (*CCResult, error) {
	req := wire.EncodeCC(wire.CC{Table: table, Algorithm: algorithm, Seed: seed})
	if err := c.send(wire.Frame{Type: wire.TypeCC, Payload: req}); err != nil {
		return nil, err
	}
	f, err := c.recv()
	if err != nil {
		return nil, err
	}
	if f.Type != wire.TypeCCDone {
		return nil, fmt.Errorf("client: CC answered with frame 0x%02x", f.Type)
	}
	d, err := wire.DecodeCCDone(f.Payload)
	if err != nil {
		return nil, err
	}
	return &CCResult{
		Components: d.Components,
		Rounds:     d.Rounds,
		Vertices:   d.Vertices,
		Queued:     time.Duration(d.QueueNanos),
	}, nil
}

// Event is one component-index change delivered to a Watch subscription.
type Event struct {
	// Seq increases by exactly one per event on a subscription; the first
	// event's Seq is Watch.StartSeq()+1. A gap means frames were lost and
	// the subscription should be treated as broken.
	Seq uint64
	// Rebuild marks a full relabelling (a DELETE triggered a rebuild):
	// component labels may have changed wholesale and From/To are zero.
	// Otherwise the event is a merge of From's component into To's.
	Rebuild  bool
	From, To int64
}

// Watch is a live component-index subscription. Events arrive on C until
// the server drains, the connection drops, or the subscription overflows
// server-side; then C is closed and Err reports why. A watch is terminal
// for its connection — open a dedicated Client to subscribe.
type Watch struct {
	c        *Client
	startSeq uint64
	events   chan Event
	err      error // set before events is closed
}

// StartSeq is the index's sequence number at registration: the watch sees
// every event after it.
func (w *Watch) StartSeq() uint64 { return w.startSeq }

// Events is the subscription stream; closed when the watch ends. Callers
// must keep draining it until it closes (the pump goroutine blocks on an
// unread event, even across Close).
func (w *Watch) Events() <-chan Event { return w.events }

// Err reports why the event channel closed: a *wire.WireError with
// CodeUnavailable on server drain, nil only if Close ended the watch.
// Valid after Events is closed.
func (w *Watch) Err() error { return w.err }

// Close tears the watch down by closing the underlying connection (a
// subscription is terminal for its connection, so there is nothing less
// drastic to do). The event channel closes shortly after.
func (w *Watch) Close() error { return w.c.Close() }

// Subscribe opens a component-index watch on a table in the connection's
// tenant catalog. The table must already have a component index
// (CREATE COMPONENT INDEX ON t). The Client must not be used for other
// statements afterwards: the subscription owns the connection.
func (c *Client) Subscribe(table string) (*Watch, error) {
	req := wire.EncodeSubscribe(wire.Subscribe{Table: table})
	if err := c.send(wire.Frame{Type: wire.TypeSubscribe, Payload: req}); err != nil {
		return nil, err
	}
	f, err := c.recv()
	if err != nil {
		return nil, err
	}
	if f.Type != wire.TypeSubscribeOK {
		return nil, fmt.Errorf("client: Subscribe answered with frame 0x%02x", f.Type)
	}
	ok, err := wire.DecodeSubscribeOK(f.Payload)
	if err != nil {
		return nil, err
	}
	w := &Watch{c: c, startSeq: ok.Seq, events: make(chan Event)}
	go w.run()
	return w, nil
}

// run pumps Notify frames into the event channel until a terminal frame
// or connection error arrives.
func (w *Watch) run() {
	defer close(w.events)
	for {
		f, err := w.c.recv()
		if err != nil {
			w.err = err // server drain arrives here as *wire.WireError 503
			return
		}
		if f.Type != wire.TypeNotify {
			w.err = fmt.Errorf("client: unexpected frame 0x%02x on subscription", f.Type)
			return
		}
		n, err := wire.DecodeNotify(f.Payload)
		if err != nil {
			w.err = err
			return
		}
		w.events <- Event{Seq: n.Seq, Rebuild: n.Kind == wire.NotifyRebuild, From: n.From, To: n.To}
	}
}

// ServerStats fetches the server's observability snapshot: connection
// and statement totals, per-tenant admission accounting (queue depth,
// queue time, shed counts) and the drain flag.
func (c *Client) ServerStats() (*wire.ServerStats, error) {
	if err := c.send(wire.Frame{Type: wire.TypeStats}); err != nil {
		return nil, err
	}
	f, err := c.recv()
	if err != nil {
		return nil, err
	}
	if f.Type != wire.TypeStatsReply {
		return nil, fmt.Errorf("client: Stats answered with frame 0x%02x", f.Type)
	}
	var st wire.ServerStats
	if err := json.Unmarshal(f.Payload, &st); err != nil {
		return nil, err
	}
	return &st, nil
}
