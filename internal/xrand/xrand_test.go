package xrand

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between differently seeded streams", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	for i := 0; i < 64; i++ {
		if parent.Uint64() == child.Uint64() {
			t.Fatal("parent and child emitted identical values in lockstep")
		}
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(3)
	for _, n := range []uint64{1, 2, 3, 7, 100, 1 << 40} {
		for i := 0; i < 1000; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestUint64nUniform(t *testing.T) {
	// Chi-square-ish sanity check on 10 buckets.
	r := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(draws) / n
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: %d draws, want ≈%.0f", b, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	sum := 0.0
	const draws = 100000
	for i := 0; i < draws; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean %v too far from 0.5", mean)
	}
}

func TestNonZero(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		if r.NonZeroUint64() == 0 {
			t.Fatal("NonZeroUint64 returned zero")
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(13)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestMix64Distinct(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := uint64(0); i < 10000; i++ {
		h := Mix64(i)
		if seen[h] {
			t.Fatalf("Mix64 collision at %d", i)
		}
		seen[h] = true
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc ^= r.Uint64()
	}
	sink = acc
}

var sink uint64
