// Package xrand provides the deterministic, splittable pseudo-random number
// generation used throughout the reproduction. Every experiment in the
// repository is reproducible from a single seed: dataset generation, vertex
// ID randomisation, and the per-round key draws of the Randomised
// Contraction algorithm all derive their streams from here.
//
// The generator is xoshiro256**, seeded via SplitMix64 as its authors
// recommend. Split produces an independent child stream, so concurrent
// segments can draw without locking and without correlating.
package xrand

// splitMix64 advances a SplitMix64 state and returns the next output.
// SplitMix64 is an equidistributed 64-bit generator whose single-word state
// makes it ideal for seeding and for hashing counters into streams.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
	z = (z ^ z>>27) * 0x94d049bb133111eb
	return z ^ z>>31
}

// Mix64 hashes x through the SplitMix64 finaliser. It is a fast,
// high-quality 64-bit mixing function used for hash partitioning.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ x>>30) * 0xbf58476d1ce4e5b9
	x = (x ^ x>>27) * 0x94d049bb133111eb
	return x ^ x>>31
}

// Rand is a xoshiro256** generator. The zero value is not valid; use New.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed via SplitMix64.
func New(seed uint64) *Rand {
	r := &Rand{}
	st := seed
	for i := range r.s {
		r.s[i] = splitMix64(&st)
	}
	// xoshiro must not start from the all-zero state; SplitMix64 cannot
	// produce four consecutive zeros, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next pseudo-random 64-bit value.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split returns a new generator whose stream is statistically independent of
// the parent's. It consumes one output from the parent.
func (r *Rand) Split() *Rand { return New(r.Uint64()) }

// Uint64n returns a uniform value in [0, n). It panics if n = 0.
// Debiased via rejection sampling (Lemire's method without 128-bit ops:
// plain rejection on the top range).
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with n = 0")
	}
	if n&(n-1) == 0 { // power of two
		return r.Uint64() & (n - 1)
	}
	// Rejection sampling: accept values below the largest multiple of n.
	limit := -n % n // (2^64 - n) % n == 2^64 mod n
	for {
		v := r.Uint64()
		if v >= limit {
			return v % n
		}
	}
}

// Int63n returns a uniform value in [0, n) as int64. It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("xrand: Int63n with n <= 0")
	}
	return int64(r.Uint64n(uint64(n)))
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// NonZeroUint64 returns a uniform non-zero 64-bit value, as required for the
// multiplicative coefficient A of the finite fields method.
func (r *Rand) NonZeroUint64() uint64 {
	for {
		if v := r.Uint64(); v != 0 {
			return v
		}
	}
}

// Perm returns a uniformly random permutation of [0, n) by Fisher–Yates.
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := int(r.Uint64n(uint64(i + 1)))
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle performs a Fisher–Yates shuffle of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := int(r.Uint64n(uint64(i + 1)))
		swap(i, j)
	}
}
