package bench

import (
	"errors"
	"math"
	"time"

	"dbcc/internal/ccalg"
	"dbcc/internal/engine"
	"dbcc/internal/graph"
	"dbcc/internal/unionfind"
	"dbcc/internal/verify"
)

// Config controls a benchmark campaign.
type Config struct {
	// Scale multiplies dataset sizes (1.0 ≈ 1/10 000 of the paper).
	Scale float64
	// Segments is the virtual MPP segment count.
	Segments int
	// Reps is the number of repetitions per (dataset, algorithm) cell;
	// the paper ran three.
	Reps int
	// Seed is the base seed; repetition i uses Seed+i.
	Seed uint64
	// CapacityFactor sets the cluster's storage capacity as a multiple of
	// the largest dataset's input size — the resource wall that produces
	// the paper's "did not finish" entries. 0 disables the limit.
	CapacityFactor float64
	// SparkProfile switches the engine to the Spark SQL model.
	SparkProfile bool
	// Verify cross-checks every labelling against the Union/Find oracle.
	Verify bool
	// FaultRate injects deterministic segment-task failures at this
	// probability per task attempt (retried by the engine); 0 disables
	// injection. Chaos campaigns exercise the paper's claim that the
	// algorithms are correct on a substrate with failing segment tasks.
	FaultRate float64
	// FaultSeed seeds the fault injector (the fault schedule is a pure
	// function of the seed and statement sequence).
	FaultSeed uint64
	// QueryTimeout aborts any single statement exceeding this duration;
	// 0 disables the per-query deadline.
	QueryTimeout time.Duration
	// MemoryBudget bounds each statement's working memory in bytes;
	// kernels spill partitions to disk beyond their per-segment share and
	// the reports gain spill accounting. 0 means unbounded.
	MemoryBudget int64
	// DisableBloomJoin turns off bloom-join shuffle pruning — the knob for
	// measuring how much probe-side traffic the filters save (compare
	// shuffle_bytes across paired runs; labellings are identical).
	DisableBloomJoin bool
	// DisableOperatorFusion turns off fused scan→filter→project execution,
	// forcing each operator to materialise its intermediate chunks.
	DisableOperatorFusion bool
}

// DefaultConfig returns the configuration used for the committed
// EXPERIMENTS.md numbers. The capacity factor of 6.2 was calibrated so
// that the cluster storage wall sits where the paper's did relative to its
// workloads: above every Randomised Contraction / Two-Phase / Cracker peak
// on the non-path datasets, below Hash-to-Min's peaks on the large
// datasets (Andromeda, Bitcoin full, Candels80/160) and far below the
// quadratic blow-ups of Hash-to-Min and Cracker on Path100M.
func DefaultConfig() Config {
	return Config{Scale: 1.0, Segments: 8, Reps: 3, Seed: 2019, CapacityFactor: 6.2, Verify: true}
}

// Outcome is the result of one (dataset, algorithm) cell, aggregated over
// repetitions.
type Outcome struct {
	Dataset    string
	Algorithm  string // short name
	DNF        bool   // exceeded the storage capacity (paper's "–")
	Err        error  // non-DNF failure, nil normally
	Partial    int    // rounds completed before a failing run aborted
	Retries    int64  // segment-task retries across the cell (fault injection)
	Faults     int64  // injected segment faults across the cell
	Runs       int
	MeanSecs   float64
	StddevSecs float64
	Rounds     int   // from the last repetition
	InputBytes int64 // edge table footprint
	PeakBytes  int64 // max intermediate space beyond the input (Table IV)
	Written    int64 // total bytes written during execution (Table V)
	Components int
	VertexN    int64
	EdgeN      int64
}

// RelStddev returns the relative standard deviation in percent.
func (o Outcome) RelStddev() float64 {
	if o.MeanSecs == 0 {
		return 0
	}
	return 100 * o.StddevSecs / o.MeanSecs
}

// capacityBytes computes the cluster storage wall for a config: a multiple
// of the largest dataset's input footprint at this scale, mirroring the
// fixed cluster resources of the paper's testbed.
func capacityBytes(cfg Config) int64 {
	if cfg.CapacityFactor <= 0 {
		return 0
	}
	maxInput := int64(0)
	for _, d := range Datasets() {
		g := d.Gen(cfg.Scale, cfg.Seed)
		b := int64(g.NumEdges()) * 2 * engine.DatumSize
		if b > maxInput {
			maxInput = b
		}
	}
	return int64(cfg.CapacityFactor * float64(maxInput))
}

// Run executes one (dataset, algorithm) cell with repetitions.
func Run(ds Dataset, alg ccalg.Info, cfg Config, capacity int64) Outcome {
	out := Outcome{Dataset: ds.Name, Algorithm: alg.Name}
	var times []float64
	for rep := 0; rep < max(1, cfg.Reps); rep++ {
		seed := cfg.Seed + uint64(rep)
		g := ds.Gen(cfg.Scale, cfg.Seed) // same graph across reps; seeds vary the algorithm
		res, m, err := runOnce(g, alg, cfg, capacity, seed)
		out.Retries += m.retries
		out.Faults += m.faults
		if err != nil {
			// A RoundError reports how far the run got before aborting;
			// surface that partial progress alongside the failure.
			var re *ccalg.RoundError
			if errors.As(err, &re) {
				out.Partial = len(re.RoundLog)
			}
			if errors.Is(err, ccalg.ErrSpaceLimit) {
				out.DNF = true
				out.PeakBytes = m.peak
				out.InputBytes = m.input
				return out
			}
			out.Err = err
			return out
		}
		if cfg.Verify {
			if verr := verify.Labelling(g, res.Labels); verr != nil {
				out.Err = verr
				return out
			}
		}
		times = append(times, m.secs)
		out.Rounds = res.Rounds
		out.InputBytes = m.input
		out.PeakBytes = m.peak
		out.Written = m.written
		out.Components = res.Labels.NumComponents()
		out.VertexN = int64(len(res.Labels))
		out.EdgeN = int64(g.NumEdges())
	}
	out.Runs = len(times)
	out.MeanSecs, out.StddevSecs = meanStddev(times)
	return out
}

// metrics captures one repetition's engine accounting.
type metrics struct {
	secs     float64
	input    int64
	peak     int64
	written  int64
	retries  int64
	faults   int64
	peakWork int64 // peak accounted working memory (memory-bounded execution)
	spilled  int64 // bytes written to spill partition files
}

// clusterOptions builds the engine options for one benchmark cluster,
// including the fault-injection and per-query-deadline settings.
func clusterOptions(cfg Config) engine.Options {
	profile := engine.ProfileMPP
	if cfg.SparkProfile {
		profile = engine.ProfileSparkSQL
	}
	var injector *engine.FaultInjector
	if cfg.FaultRate > 0 {
		injector = engine.NewFaultInjector(engine.FaultConfig{
			Seed:        cfg.FaultSeed,
			FailureRate: cfg.FaultRate,
		})
	}
	return engine.Options{
		Segments:              cfg.Segments,
		Profile:               profile,
		QueryTimeout:          cfg.QueryTimeout,
		FaultInjector:         injector,
		MemoryBudget:          cfg.MemoryBudget,
		DisableBloomJoin:      cfg.DisableBloomJoin,
		DisableOperatorFusion: cfg.DisableOperatorFusion,
	}
}

// runOnce executes one repetition on a fresh cluster.
func runOnce(g *graph.Graph, alg ccalg.Info, cfg Config, capacity int64, seed uint64) (*ccalg.Result, metrics, error) {
	c := engine.NewCluster(clusterOptions(cfg))
	defer c.Close()
	if err := graph.Load(c, "input", g); err != nil {
		return nil, metrics{}, err
	}
	input := c.Stats().LiveBytes
	c.ResetStats()
	start := time.Now()
	res, err := alg.Run(c, "input", ccalg.Options{Seed: seed, MaxLiveBytes: capacity})
	secs := time.Since(start).Seconds()
	st := c.Stats()
	retries, faults, _ := c.FaultTotals()
	m := metrics{secs: secs, input: input, peak: st.PeakBytes - input,
		written: st.BytesWritten, retries: retries, faults: faults,
		peakWork: st.PeakWorkBytes, spilled: st.SpilledBytes}
	if err != nil {
		return nil, m, err
	}
	return res, m, nil
}

// meanStddev returns the sample mean and standard deviation.
func meanStddev(xs []float64) (mean, stddev float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(ss / float64(len(xs)-1))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TableAlgorithms returns the four algorithms of Tables III–V in the
// paper's column order (RC, HM, TP, CR; BFS is evaluated separately in
// Sec. IV's argument, not in the main tables).
func TableAlgorithms() []ccalg.Info {
	var out []ccalg.Info
	for _, name := range []string{"rc", "hm", "tp", "cr"} {
		info, _ := ccalg.ByName(name)
		out = append(out, info)
	}
	return out
}

// PaperSecs returns the paper's Table III runtime for an algorithm column
// (0 = did not finish).
func (d Dataset) PaperSecs(alg string) float64 {
	switch alg {
	case "rc":
		return d.PaperSecsRC
	case "hm":
		return d.PaperSecsHM
	case "tp":
		return d.PaperSecsTP
	case "cr":
		return d.PaperSecsCR
	}
	return 0
}

// CountComponents counts a dataset's components with the sequential oracle
// (used for Table II).
func CountComponents(g *graph.Graph) int { return unionfind.CountComponents(g) }
