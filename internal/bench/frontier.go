package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"dbcc/internal/ccalg"
	"dbcc/internal/datagen"
	"dbcc/internal/engine"
	"dbcc/internal/graph"
	"dbcc/internal/verify"
)

// FrontierEntryJSON is one (dataset, algorithm) cell of the frontier
// report: the round count, wall time and peak live-table footprint of one
// run. Derived marks entries whose round count comes from a verified
// closed form rather than an actual run — deterministic contraction on the
// 1e6-vertex path needs exactly |V|−1 rounds, which is calibrated on the
// small path (where the run is cheap) and extrapolated, not executed, at
// scale.
type FrontierEntryJSON struct {
	Dataset   string  `json:"dataset"`
	Name      string  `json:"name"`
	Rounds    int     `json:"rounds"`
	WallSecs  float64 `json:"wall_secs"`
	PeakBytes int64   `json:"peak_bytes"`
	Derived   bool    `json:"derived"`
	Error     string  `json:"error,omitempty"`
}

// FrontierJSON is the machine-readable frontier report written as
// BENCH_frontier.json by ccbench -experiment frontier. The CI bench-smoke
// job gates on it: log-diameter's round count on the 1e6-vertex path must
// be at most half of deterministic contraction's.
type FrontierJSON struct {
	SchemaVersion int                 `json:"schema_version"`
	Experiment    string              `json:"experiment"`
	Segments      int                 `json:"segments"`
	Seed          uint64              `json:"seed"`
	Entries       []FrontierEntryJSON `json:"entries"`
}

// frontierDatasets are the A11 comparison graphs: the adversarial
// sequentially numbered path at calibration and at full scale, a pure hub
// graph, and a preferential-attachment (friendster-shaped) graph.
func frontierDatasets(seed uint64) []struct {
	name string
	g    *graph.Graph
} {
	return []struct {
		name string
		g    *graph.Graph
	}{
		{"path-512", datagen.Path(512)},
		{"path-1e6", datagen.Path(1000000)},
		{"star-200000", datagen.Star(200000)},
		{"friendster-50000", datagen.Friendster(50000, 3, seed)},
	}
}

// FrontierExperiment runs experiment A11: round counts and wall time of
// the two frontier drivers (local contraction, log-diameter) against the
// deterministic-contraction reference on path-, star- and
// friendster-shaped graphs, plus the adaptive planner's choice per graph.
// Deterministic contraction on the sequentially numbered path needs
// exactly |V|−1 rounds (each round only shaves the smallest live vertex
// off the chain — the Fig. 2 worst case); the experiment runs it at
// calibration scale to confirm the closed form and reports the 1e6-vertex
// entry as derived instead of spending ~1e6 rounds in every CI pass.
func FrontierExperiment(w io.Writer, cfg Config) *FrontierJSON {
	rep := &FrontierJSON{
		SchemaVersion: JSONSchemaVersion,
		Experiment:    "frontier",
		Segments:      cfg.Segments,
		Seed:          cfg.Seed,
	}
	fmt.Fprintln(w, "EXPERIMENT A11 — ALGORITHM FRONTIER: LOCAL CONTRACTION AND LOG-DIAMETER VS DETERMINISTIC CONTRACTION")
	fmt.Fprintln(w, "(rounds / wall seconds per driver; rc-det on the sequentially numbered path needs |V|-1 rounds,")
	fmt.Fprintln(w, " verified at calibration scale and derived, not run, at 1e6)")
	fmt.Fprintf(w, "%-18s %-22s %18s %18s %18s\n", "dataset", "planner picks", "rc-det", "lc", "ld")

	for _, ds := range frontierDatasets(cfg.Seed) {
		cells := map[string]string{}
		// The planner's decision, from the same pre-scan Auto would run.
		c := engine.NewCluster(clusterOptions(cfg))
		if err := graph.Load(c, "input", ds.g); err != nil {
			fmt.Fprintf(w, "%-18s load failed: %v\n", ds.name, err)
			c.Close()
			continue
		}
		decision, derr := ccalg.PlanAlgorithm(c, "input", ccalg.Options{Seed: cfg.Seed})
		c.Close()
		picked := decision.Algorithm
		if derr != nil {
			picked = "error: " + derr.Error()
		}

		for _, alg := range []string{"rc-det", "lc", "ld"} {
			entry := FrontierEntryJSON{Dataset: ds.name, Name: alg}
			if alg == "rc-det" && ds.name == "path-1e6" {
				// The verified closed form: |V|−1 rounds. Wall time and peak
				// are unknowable without running it, and stay zero.
				entry.Rounds = ds.g.NumVertices() - 1
				entry.Derived = true
				rep.Entries = append(rep.Entries, entry)
				cells[alg] = fmt.Sprintf("%d (derived)", entry.Rounds)
				continue
			}
			entry = runFrontierCell(ds.name, ds.g, alg, cfg)
			rep.Entries = append(rep.Entries, entry)
			if entry.Error != "" {
				cells[alg] = "error"
				fmt.Fprintf(w, "%-18s %s failed: %s\n", ds.name, alg, entry.Error)
				continue
			}
			cells[alg] = fmt.Sprintf("%d / %.2fs", entry.Rounds, entry.WallSecs)
			if alg == "rc-det" && ds.name == "path-512" && entry.Rounds != 511 {
				fmt.Fprintf(w, "%-18s NOTE: rc-det took %d rounds, closed form says 511\n", ds.name, entry.Rounds)
			}
		}
		fmt.Fprintf(w, "%-18s %-22s %18s %18s %18s\n",
			ds.name, picked, cells["rc-det"], cells["lc"], cells["ld"])
	}
	return rep
}

// runFrontierCell executes one (dataset, algorithm) cell on a fresh
// cluster and verifies the labelling against the oracle.
func runFrontierCell(dsName string, g *graph.Graph, alg string, cfg Config) FrontierEntryJSON {
	entry := FrontierEntryJSON{Dataset: dsName, Name: alg}
	opts := ccalg.Options{Seed: cfg.Seed}
	name := alg
	if alg == "rc-det" {
		name = "rc"
		opts.RC.Deterministic = true
	}
	info, ok := ccalg.ByName(name)
	if !ok {
		entry.Error = fmt.Sprintf("unknown algorithm %q", alg)
		return entry
	}
	c := engine.NewCluster(clusterOptions(cfg))
	defer c.Close()
	if err := graph.Load(c, "input", g); err != nil {
		entry.Error = err.Error()
		return entry
	}
	input := c.Stats().LiveBytes
	c.ResetStats()
	start := time.Now()
	res, err := info.Run(c, "input", opts)
	entry.WallSecs = time.Since(start).Seconds()
	entry.PeakBytes = c.Stats().PeakBytes - input
	if err != nil {
		entry.Error = err.Error()
		return entry
	}
	entry.Rounds = res.Rounds
	if cfg.Verify {
		if verr := verify.Labelling(g, res.Labels); verr != nil {
			entry.Error = verr.Error()
		}
	}
	return entry
}

// WriteFrontierReport writes the frontier report as BENCH_frontier.json
// into dir (created if needed) and returns the file path.
func WriteFrontierReport(dir string, rep *FrontierJSON) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, "BENCH_frontier.json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
