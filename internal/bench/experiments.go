package bench

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"dbcc/internal/ccalg"
	"dbcc/internal/datagen"
	"dbcc/internal/engine"
	"dbcc/internal/gf"
	"dbcc/internal/graph"
	"dbcc/internal/sql"
	"dbcc/internal/xrand"
)

// GammaExperiment measures the per-round contraction factor γ (Sec. VI /
// Appendix B): the fraction of vertices surviving one contraction round,
// averaged over trials, per graph family and randomisation flavour. The
// paper proves E[γ] ≤ 3/4 for the finite fields method and ≤ 2/3 under
// full randomisation (Appendix B), and notes the worst known undirected
// graph reaches ≈ 56.3%.
func GammaExperiment(w io.Writer, trials int, seed uint64) {
	fmt.Fprintln(w, "EXPERIMENT E8 — CONTRACTION FACTOR γ PER ROUND")
	fmt.Fprintln(w, "(Thm 1: E[γ] ≤ 0.75 for the finite fields method; App. B: ≤ 2/3 under full randomisation)")
	fmt.Fprintf(w, "%-22s %14s %14s\n", "graph", "γ finite-field", "γ full-random")
	families := []struct {
		name string
		gen  func(seed uint64) *graph.Graph
	}{
		{"path-1000", func(uint64) *graph.Graph { return datagen.Path(1000) }},
		{"cycle-1000", func(uint64) *graph.Graph { return datagen.Cycle(1000) }},
		{"complete-64", func(uint64) *graph.Graph { return datagen.Complete(64) }},
		{"star-1000", func(uint64) *graph.Graph { return datagen.Star(1000) }},
		{"erdos-1000x1500", func(s uint64) *graph.Graph { return datagen.ErdosRenyi(1000, 1500, s) }},
		{"rmat-2^10x3000", func(s uint64) *graph.Graph {
			return datagen.RMAT(10, 3000, 0.57, 0.19, 0.19, 0.05, s)
		}},
	}
	rng := xrand.New(seed)
	for _, fam := range families {
		var ffSum, frSum float64
		for t := 0; t < trials; t++ {
			g := fam.gen(rng.Uint64())
			ffSum += MeasureGamma(g, rng, false)
			frSum += MeasureGamma(g, rng, true)
		}
		fmt.Fprintf(w, "%-22s %14.4f %14.4f\n",
			fam.name, ffSum/float64(trials), frSum/float64(trials))
	}
}

// MeasureGamma performs one contraction round on g and returns the
// surviving-vertex fraction. fullRandom selects an idealised uniform
// random order (the random reals method); otherwise the finite fields
// affine map is used.
func MeasureGamma(g *graph.Graph, rng *xrand.Rand, fullRandom bool) float64 {
	adj := make(map[int64][]int64)
	for _, e := range g.Edges {
		if e.V == e.W {
			continue
		}
		adj[e.V] = append(adj[e.V], e.W)
		adj[e.W] = append(adj[e.W], e.V)
	}
	if len(adj) == 0 {
		return 0
	}
	var h func(int64) uint64
	if fullRandom {
		vals := make(map[int64]uint64, len(adj))
		for v := range adj {
			vals[v] = rng.Uint64()
		}
		h = func(v int64) uint64 { return vals[v] }
	} else {
		a, b := rng.NonZeroUint64(), rng.Uint64()
		m := gf.NewMultiplier(a)
		h = func(v int64) uint64 { return m.AxB(uint64(v), b) }
	}
	reps := make(map[int64]struct{}, len(adj))
	for v, nbrs := range adj {
		best, bestH := v, h(v)
		for _, w := range nbrs {
			if hw := h(w); hw < bestH || (hw == bestH && w < best) {
				best, bestH = w, hw
			}
		}
		reps[best] = struct{}{}
	}
	return float64(len(reps)) / float64(len(adj))
}

// RoundsExperiment verifies the O(log |V|) round bound (Sec. VI-A): RC's
// round count versus doubling path sizes, against log2(n).
func RoundsExperiment(w io.Writer, cfg Config) {
	fmt.Fprintln(w, "EXPERIMENT E9 — ROUNDS VS GRAPH SIZE (sequentially numbered paths)")
	fmt.Fprintf(w, "%-10s %8s %10s %10s\n", "n", "log2(n)", "RC rounds", "TP rounds")
	for _, n := range []int{512, 1024, 2048, 4096, 8192, 16384} {
		g := datagen.Path(n)
		rcInfo, _ := ccalg.ByName("rc")
		tpInfo, _ := ccalg.ByName("tp")
		rcRes, _, err := runOnce(g, rcInfo, cfg, 0, cfg.Seed)
		if err != nil {
			fmt.Fprintf(w, "%-10d RC error: %v\n", n, err)
			continue
		}
		tpRes, _, err := runOnce(g, tpInfo, cfg, 0, cfg.Seed)
		if err != nil {
			fmt.Fprintf(w, "%-10d TP error: %v\n", n, err)
			continue
		}
		fmt.Fprintf(w, "%-10d %8.1f %10d %10d\n",
			n, math.Log2(float64(n)), rcRes.Rounds, tpRes.Rounds)
	}
}

// ScalingExperiment reproduces the Candels-series scalability result
// (Sec. VII-B): RC runtime versus size across the doubling series; the
// paper finds it "essentially linear in the size of the graph".
func ScalingExperiment(w io.Writer, cfg Config) {
	fmt.Fprintln(w, "EXPERIMENT E10 — SCALABILITY ON THE CANDELS SERIES (Randomised Contraction)")
	fmt.Fprintf(w, "%-12s %12s %12s %14s\n", "dataset", "edges", "seconds", "secs/Medge")
	rcInfo, _ := ccalg.ByName("rc")
	for _, name := range []string{"Candels10", "Candels20", "Candels40", "Candels80", "Candels160"} {
		d, _ := DatasetByName(name)
		g := d.Gen(cfg.Scale, cfg.Seed)
		res, m, err := runOnce(g, rcInfo, cfg, 0, cfg.Seed)
		if err != nil {
			fmt.Fprintf(w, "%-12s error: %v\n", name, err)
			continue
		}
		_ = res
		perM := m.secs / (float64(g.NumEdges()) / 1e6)
		fmt.Fprintf(w, "%-12s %12d %12.2f %14.2f\n", name, g.NumEdges(), m.secs, perM)
	}
	fmt.Fprintln(w, "(a flat secs/Medge column is the paper's quasi-linearity claim)")
}

// SparkExperiment reproduces Sec. VII-C: the same algorithms under the
// mature-MPP profile versus the Spark SQL profile, on the Candels10
// stand-in (the paper measured a ≈2.3× slowdown for RC in Spark SQL) and
// on the street-network graph (paper: RC in-database 143 s vs Cracker
// in-database 261 s vs Cracker's published Spark implementation 1338 s).
func SparkExperiment(w io.Writer, cfg Config) {
	fmt.Fprintln(w, "EXPERIMENT E7 — IN-DATABASE VS SPARK SQL (Sec. VII-C)")
	rcInfo, _ := ccalg.ByName("rc")
	crInfo, _ := ccalg.ByName("cr")

	d, _ := DatasetByName("Candels10")
	g := d.Gen(cfg.Scale, cfg.Seed)
	mpp := cfg
	mpp.SparkProfile = false
	spark := cfg
	spark.SparkProfile = true
	_, mMPP, err1 := runOnce(g, rcInfo, mpp, 0, cfg.Seed)
	_, mSpark, err2 := runOnce(g, rcInfo, spark, 0, cfg.Seed)
	if err1 != nil || err2 != nil {
		fmt.Fprintf(w, "error: %v %v\n", err1, err2)
		return
	}
	fmt.Fprintf(w, "RC on Candels10: in-database %.2fs, Spark SQL %.2fs -> ratio %.1fx (paper: 2.3x)\n",
		mMPP.secs, mSpark.secs, mSpark.secs/mMPP.secs)

	streets := datagen.StreetGrid(int(140*math.Sqrt(cfg.Scale*10)), int(140*math.Sqrt(cfg.Scale*10)), 0.55, cfg.Seed)
	_, mRC, err1 := runOnce(streets, rcInfo, mpp, 0, cfg.Seed)
	_, mCR, err2 := runOnce(streets, crInfo, mpp, 0, cfg.Seed)
	_, mCRSpark, err3 := runOnce(streets, crInfo, spark, 0, cfg.Seed)
	if err1 != nil || err2 != nil || err3 != nil {
		fmt.Fprintf(w, "error: %v %v %v\n", err1, err2, err3)
		return
	}
	fmt.Fprintf(w, "Streets-of-Italy stand-in (%d edges):\n", streets.NumEdges())
	fmt.Fprintf(w, "  RC in-database        %8.2fs   (paper: 143s)\n", mRC.secs)
	fmt.Fprintf(w, "  Cracker in-database   %8.2fs   (paper: 261s)\n", mCR.secs)
	fmt.Fprintf(w, "  Cracker, Spark model  %8.2fs   (paper: 1338s — but that ran Lulli's\n", mCRSpark.secs)
	fmt.Fprintln(w, "      original memory-intensive implementation, not a port; our model only")
	fmt.Fprintln(w, "      adds the scheduling overhead, so treat this line as a lower bound)")
}

// VariantsExperiment is ablation A1: the Fig. 3 deterministic-space
// variant versus the Fig. 4 fast variant — runtime and peak space.
func VariantsExperiment(w io.Writer, cfg Config) {
	fmt.Fprintln(w, "ABLATION A1 — FIG. 3 (SAFE) VS FIG. 4 (FAST) VARIANT")
	fmt.Fprintf(w, "%-18s %-10s %10s %12s %12s\n", "dataset", "variant", "seconds", "peak MiB", "written MiB")
	for _, name := range []string{"Bitcoin addresses", "Candels40", "RMAT"} {
		d, _ := DatasetByName(name)
		g := d.Gen(cfg.Scale, cfg.Seed)
		for _, variant := range []ccalg.Variant{ccalg.Fast, ccalg.Safe} {
			m, err := runRCConfigured(g, cfg, ccalg.RCOptions{Variant: variant})
			if err != nil {
				fmt.Fprintf(w, "%-18s %-10s error: %v\n", name, variant, err)
				continue
			}
			fmt.Fprintf(w, "%-18s %-10s %10.2f %12.1f %12.1f\n",
				name, variant, m.secs, mib(m.peak), mib(m.written))
		}
	}
}

// MethodsExperiment is ablation A2: the four randomisation methods —
// runtime, rounds and data written. The finite fields method is the
// paper's final refinement precisely because the argmin methods pay for
// extra joins (random reals also materialises the h table) and encryption
// pays for per-row cipher work.
func MethodsExperiment(w io.Writer, cfg Config) {
	fmt.Fprintln(w, "ABLATION A2 — RANDOMISATION METHODS (Sec. V-C)")
	fmt.Fprintf(w, "%-16s %10s %8s %12s\n", "method", "seconds", "rounds", "written MiB")
	d, _ := DatasetByName("Candels40")
	g := d.Gen(cfg.Scale, cfg.Seed)
	for _, method := range []ccalg.Method{ccalg.FiniteFields, ccalg.GFPrime, ccalg.Encryption, ccalg.RandomReals} {
		m, err := runRCConfigured(g, cfg, ccalg.RCOptions{Method: method})
		if err != nil {
			fmt.Fprintf(w, "%-16s error: %v\n", method, err)
			continue
		}
		fmt.Fprintf(w, "%-16s %10.2f %8d %12.1f\n", method, m.secs, m.rounds, mib(m.written))
	}
}

// RerandomExperiment is ablation A3: fresh randomness per round versus a
// fixed permutation versus no randomisation, on the adversarial path.
func RerandomExperiment(w io.Writer, cfg Config) {
	fmt.Fprintln(w, "ABLATION A3 — RE-RANDOMISATION PER ROUND (Sec. V-B) ON A 4096-PATH")
	fmt.Fprintf(w, "%-34s %8s %10s\n", "mode", "rounds", "seconds")
	g := datagen.Path(4096)
	modes := []struct {
		name string
		rc   ccalg.RCOptions
	}{
		{"fresh keys every round (paper)", ccalg.RCOptions{}},
		{"single fixed random key", ccalg.RCOptions{NoRerandomise: true}},
		{"no randomisation (Fig. 2a)", ccalg.RCOptions{Deterministic: true}},
	}
	for _, mode := range modes {
		m, err := runRCConfigured(g, cfg, mode.rc)
		if err != nil {
			fmt.Fprintf(w, "%-34s error: %v\n", mode.name, err)
			continue
		}
		fmt.Fprintf(w, "%-34s %8d %10.2f\n", mode.name, m.rounds, m.secs)
	}
}

// SegmentsExperiment is ablation A4: MPP parallelism — RC runtime versus
// the virtual segment count.
func SegmentsExperiment(w io.Writer, cfg Config) {
	fmt.Fprintln(w, "ABLATION A4 — SEGMENT-COUNT SCALING (Randomised Contraction, Candels40)")
	fmt.Fprintf(w, "%-10s %10s\n", "segments", "seconds")
	d, _ := DatasetByName("Candels40")
	g := d.Gen(cfg.Scale, cfg.Seed)
	for _, segs := range []int{1, 2, 4, 8, 16} {
		c := cfg
		c.Segments = segs
		m, err := runRCConfigured(g, c, ccalg.RCOptions{})
		if err != nil {
			fmt.Fprintf(w, "%-10d error: %v\n", segs, err)
			continue
		}
		fmt.Fprintf(w, "%-10d %10.2f\n", segs, m.secs)
	}
}

// TransactionExperiment is ablation A7: running each algorithm as one
// database transaction (Sec. VII-B). Because most databases reclaim
// dropped temporary tables only at commit, peak storage inside a
// transaction equals the total data written — the metric of Table V, on
// which Randomised Contraction wins where the instantaneous-peak metric of
// Table IV favoured Two-Phase.
func TransactionExperiment(w io.Writer, cfg Config) {
	fmt.Fprintln(w, "ABLATION A7 — PEAK SPACE INSIDE A TRANSACTION (Candels40, MiB)")
	fmt.Fprintf(w, "%-28s %12s %14s\n", "algorithm", "normal peak", "in-transaction")
	d, _ := DatasetByName("Candels40")
	g := d.Gen(cfg.Scale, cfg.Seed)
	for _, alg := range TableAlgorithms() {
		peaks := make([]float64, 2)
		ok := true
		for i, txn := range []bool{false, true} {
			c := engine.NewCluster(engine.Options{Segments: cfg.Segments, TransactionMode: txn})
			if err := graph.Load(c, "input", g); err != nil {
				fmt.Fprintf(w, "%-28s error: %v\n", alg.FullName, err)
				ok = false
				break
			}
			input := c.Stats().LiveBytes
			c.ResetStats()
			if _, err := alg.Run(c, "input", ccalg.Options{Seed: cfg.Seed}); err != nil {
				fmt.Fprintf(w, "%-28s error: %v\n", alg.FullName, err)
				ok = false
				break
			}
			peaks[i] = mib(c.Stats().PeakBytes - input)
		}
		if ok {
			fmt.Fprintf(w, "%-28s %12.1f %14.1f\n", alg.FullName, peaks[0], peaks[1])
		}
	}
}

// BroadcastExperiment is ablation A8: the broadcast-motion join
// optimisation of MPP planners, measured on Randomised Contraction.
// Finding: it barely moves the needle — the paper's published SQL already
// pins every table's distribution with DISTRIBUTED BY so that each join
// probes co-located data, leaving broadcast nothing large to save (the
// only non-co-located joins are the small against small representative
// compositions, where broadcasting can even cost more than shuffling).
// This quantifies how deliberate the paper's distribution choices are.
func BroadcastExperiment(w io.Writer, cfg Config) {
	fmt.Fprintln(w, "ABLATION A8 — BROADCAST-MOTION JOINS (Randomised Contraction, Candels40)")
	fmt.Fprintf(w, "%-22s %10s %14s\n", "mode", "seconds", "shuffled MiB")
	d, _ := DatasetByName("Candels40")
	g := d.Gen(cfg.Scale, cfg.Seed)
	for _, threshold := range []int64{0, 1 << 62} {
		name := "distributed joins"
		if threshold > 0 {
			name = "broadcast small side"
		}
		c := engine.NewCluster(engine.Options{Segments: cfg.Segments, BroadcastThreshold: threshold})
		if err := graph.Load(c, "input", g); err != nil {
			fmt.Fprintf(w, "%-22s error: %v\n", name, err)
			continue
		}
		c.ResetStats()
		start := time.Now()
		res, err := ccalg.RandomisedContraction(c, "input", ccalg.Options{Seed: cfg.Seed})
		if err != nil {
			fmt.Fprintf(w, "%-22s error: %v\n", name, err)
			continue
		}
		_ = res
		fmt.Fprintf(w, "%-22s %10.2f %14.1f\n",
			name, time.Since(start).Seconds(), mib(c.Stats().ShuffleBytes))
	}
}

// SpillExperiment is ablation A9: memory-bounded execution. Each table
// algorithm plus the deterministic RC variant runs once unbounded to
// observe its peak accounted working memory (hash tables, sort state,
// partition buffers), then again under a work_mem-style budget of one
// tenth of that peak, which forces the join/aggregate/sort kernels onto
// their Grace-partitioned spilling paths. The labellings must be
// identical — spilling is an execution strategy, not a semantics change —
// so the rows report only what the budget costs: wall-clock slowdown and
// the spill volume written to partition files.
func SpillExperiment(w io.Writer, cfg Config) {
	fmt.Fprintln(w, "ABLATION A9 — MEMORY-BOUNDED EXECUTION (work_mem = unbounded peak / 10)")
	d, _ := DatasetByName("Bitcoin addresses")
	g := d.Gen(cfg.Scale, cfg.Seed)
	fmt.Fprintf(w, "%-38s %8s %10s %11s %12s %7s %9s\n",
		"algorithm (Bitcoin addresses)", "secs", "peak KiB", "budget KiB", "spilled MiB", "parts", "slowdown")
	for _, a := range jsonAlgorithms() {
		base, baseSecs, baseStats, err := runSpillCell(g, a, cfg, 0)
		if err != nil {
			fmt.Fprintf(w, "%-38s error: %v\n", a.FullName, err)
			continue
		}
		if baseStats.PeakWorkBytes == 0 {
			fmt.Fprintf(w, "%-38s no accounted working memory\n", a.FullName)
			continue
		}
		budget := baseStats.PeakWorkBytes / 10
		labels, secs, st, err := runSpillCell(g, a, cfg, budget)
		if err != nil {
			fmt.Fprintf(w, "%-38s budgeted run error: %v\n", a.FullName, err)
			continue
		}
		same := len(labels) == len(base)
		for v, l := range base {
			if labels[v] != l {
				same = false
				break
			}
		}
		if !same {
			fmt.Fprintf(w, "%-38s LABELLING DIVERGED UNDER BUDGET\n", a.FullName)
			continue
		}
		fmt.Fprintf(w, "%-38s %8.2f %10.1f %11.1f %12.2f %7d %8.2fx\n",
			a.FullName, secs,
			float64(baseStats.PeakWorkBytes)/(1<<10), float64(budget)/(1<<10),
			float64(st.SpilledBytes)/(1<<20), st.SpillPartitions, secs/baseSecs)
	}
	fmt.Fprintln(w, "(identical labellings verified per row; peak accounted memory stays within the budget)")
}

// runSpillCell runs one algorithm once on a fresh cluster under the given
// working-memory budget, returning the labelling, wall-clock seconds and
// the engine counters.
func runSpillCell(g *graph.Graph, a jsonAlgorithm, cfg Config, budget int64) (graph.Labelling, float64, engine.Stats, error) {
	bcfg := cfg
	bcfg.MemoryBudget = budget
	c := engine.NewCluster(clusterOptions(bcfg))
	defer c.Close()
	if err := graph.Load(c, "input", g); err != nil {
		return nil, 0, engine.Stats{}, err
	}
	c.ResetStats()
	start := time.Now()
	res, err := a.Run(c, "input", ccalg.Options{Seed: cfg.Seed, RC: a.RC})
	secs := time.Since(start).Seconds()
	if err != nil {
		return nil, secs, c.Stats(), err
	}
	return res.Labels, secs, c.Stats(), nil
}

// rcMetrics extends metrics with the round count.
type rcMetrics struct {
	metrics
	rounds int
}

// runRCConfigured runs Randomised Contraction with explicit RC options on
// a fresh cluster.
func runRCConfigured(g *graph.Graph, cfg Config, rc ccalg.RCOptions) (rcMetrics, error) {
	c := engine.NewCluster(clusterOptions(cfg))
	defer c.Close()
	if err := graph.Load(c, "input", g); err != nil {
		return rcMetrics{}, err
	}
	input := c.Stats().LiveBytes
	c.ResetStats()
	start := time.Now()
	res, err := ccalg.RandomisedContraction(c, "input", ccalg.Options{Seed: cfg.Seed, RC: rc})
	if err != nil {
		return rcMetrics{}, err
	}
	st := c.Stats()
	return rcMetrics{
		metrics: metrics{
			secs:    time.Since(start).Seconds(),
			input:   input,
			peak:    st.PeakBytes - input,
			written: st.BytesWritten,
		},
		rounds: res.Rounds,
	}, nil
}

// StreamExperiment is ablation A10: incremental connected components.
// Each family's edges are streamed into a component-indexed table batch
// by batch — the insert path maintains the labelling with bounded
// union-find work per statement — and the run reports the per-edge
// maintenance cost (relabels/edge, µs/edge) against the cost of
// recomputing rc-det from scratch, plus the price of one delete-triggered
// rebuild. A Watch subscription rides along to count delivered events and
// assert gap-free sequence numbers.
//
// The path family is kept deliberately small: a sequentially numbered
// path is rc-det's Fig. 2(a) worst case (one vertex removed per round,
// quadratic total work), so every recompute and every delete-triggered
// rebuild pays that worst case while the insert path's union-find work
// stays bounded regardless of numbering — the speedup column is the
// point, not an artefact.
func StreamExperiment(w io.Writer, cfg Config) {
	fmt.Fprintln(w, "EXPERIMENT A10 — INCREMENTAL MAINTENANCE: STREAMED INSERTS vs RECOMPUTE")
	fmt.Fprintln(w, "(component index: bounded union-find work per INSERT; DELETE triggers one rc-det rebuild;")
	fmt.Fprintln(w, " sequentially numbered path = rc-det's Fig. 2(a) worst case, hit by every recompute)")
	fmt.Fprintf(w, "%-18s %8s %10s %9s %13s %12s %11s %11s %8s\n",
		"graph", "edges", "stream_ms", "µs/edge", "relabels/edge", "full_rc_ms", "speedup", "rebuild_ms", "events")
	scale := func(n int) int {
		if v := int(float64(n) * cfg.Scale); v > 16 {
			return v
		}
		return 16
	}
	families := []struct {
		name string
		g    *graph.Graph
	}{
		{"path", datagen.Path(scale(2500))},
		{"bitcoin", datagen.Bitcoin(scale(1200), cfg.Seed)},
		{"friendster", datagen.Friendster(scale(2500), 2, cfg.Seed)},
	}
	for _, fam := range families {
		if err := streamCell(w, cfg, fam.name, fam.g); err != nil {
			fmt.Fprintf(w, "%-18s ERROR %v\n", fam.name, err)
		}
	}
}

// streamCell runs one family of the streaming ablation.
func streamCell(w io.Writer, cfg Config, name string, g *graph.Graph) error {
	c := engine.NewCluster(clusterOptions(cfg))
	defer c.Close()
	ccalg.RegisterUDFs(c)
	c.SetComponentRebuilder(func(table string) (map[int64]int64, error) {
		res, err := ccalg.RandomisedContraction(c, table,
			ccalg.Options{Seed: cfg.Seed, RC: ccalg.RCOptions{Deterministic: true}})
		if err != nil {
			return nil, err
		}
		return res.Labels, nil
	})
	s := sql.NewSession(c)
	if _, err := s.Exec("CREATE TABLE edges (v1, v2) DISTRIBUTED BY (v1); CREATE COMPONENT INDEX ON edges"); err != nil {
		return err
	}
	idx, _ := c.ComponentIndex("edges")
	sub := idx.Subscribe()
	events := make(chan int64, 1)
	go func() {
		var n int64
		seq := sub.StartSeq
		for ev := range sub.C {
			if ev.Seq != seq+1 {
				n = -1 // a sequence gap poisons the count
				break
			}
			seq = ev.Seq
			n++
		}
		events <- n
	}()

	before := c.Stats()
	const batch = 256
	start := time.Now()
	for off := 0; off < len(g.Edges); off += batch {
		end := off + batch
		if end > len(g.Edges) {
			end = len(g.Edges)
		}
		var b strings.Builder
		b.WriteString("INSERT INTO edges VALUES ")
		for i, e := range g.Edges[off:end] {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "(%d,%d)", e.V, e.W)
		}
		if _, err := s.Exec(b.String()); err != nil {
			return err
		}
	}
	streamSecs := time.Since(start).Seconds()
	touched := c.Stats().IndexLabelsTouched - before.IndexLabelsTouched

	// The alternative a component index replaces: recompute from scratch.
	start = time.Now()
	if _, err := ccalg.RandomisedContraction(c, "edges",
		ccalg.Options{Seed: cfg.Seed, RC: ccalg.RCOptions{Deterministic: true}}); err != nil {
		return err
	}
	fullSecs := time.Since(start).Seconds()

	// One delete: the rebuild path, priced end to end (statement + rc-det).
	start = time.Now()
	if _, err := s.Exec(fmt.Sprintf("DELETE FROM edges WHERE v1 = %d AND v2 = %d",
		g.Edges[0].V, g.Edges[0].W)); err != nil {
		return err
	}
	rebuildSecs := time.Since(start).Seconds()

	sub.Close()
	nEvents := <-events
	if nEvents < 0 {
		return fmt.Errorf("watch subscription observed a sequence gap")
	}
	m := float64(len(g.Edges))
	batches := (len(g.Edges) + batch - 1) / batch
	speedup := float64(batches) * fullSecs / streamSecs // recompute-per-batch vs maintained
	fmt.Fprintf(w, "%-18s %8d %10.1f %9.2f %13.2f %12.1f %10.1fx %11.1f %8d\n",
		name, len(g.Edges), streamSecs*1e3, streamSecs*1e6/m, float64(touched)/m,
		fullSecs*1e3, speedup, rebuildSecs*1e3, nEvents)
	return nil
}
