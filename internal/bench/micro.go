package bench

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Microbenchmark regression gate: parse `go test -bench` output and check
// it against a committed baseline. Two kinds of gate keep the check
// meaningful on arbitrary CI machines:
//
//   - allocs/op is deterministic for a given implementation, so it is
//     gated per benchmark against an absolute expected value (with the
//     baseline tolerance absorbing benign off-by-a-few drift from pool
//     warmup);
//   - ns/op is machine-dependent, so wall time is gated only as a *ratio*
//     between two benchmarks of the same run (the columnar kernel vs the
//     row-at-a-time or counting baseline it replaced). The ratio cancels
//     the machine and pins the relative speedup — the radix-vs-counting
//     entry, for example, enforces the shuffle kernel's ≥2× win on every
//     run.

// MicroResult is one parsed benchmark line.
type MicroResult struct {
	NsPerOp     float64
	BytesPerOp  int64
	AllocsPerOp int64
}

// ParseGoBench parses `go test -bench -benchmem` output into results keyed
// by benchmark name. The trailing GOMAXPROCS suffix ("-8") is stripped so
// names are stable across machines; non-benchmark lines are ignored.
func ParseGoBench(text string) map[string]MicroResult {
	out := map[string]MicroResult{}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		var r MicroResult
		seen := false
		for i := 2; i+1 < len(fields); i += 2 {
			val, unit := fields[i], fields[i+1]
			switch unit {
			case "ns/op":
				if f, err := strconv.ParseFloat(val, 64); err == nil {
					r.NsPerOp = f
					seen = true
				}
			case "B/op":
				if n, err := strconv.ParseInt(val, 10, 64); err == nil {
					r.BytesPerOp = n
				}
			case "allocs/op":
				if n, err := strconv.ParseInt(val, 10, 64); err == nil {
					r.AllocsPerOp = n
				}
			}
		}
		if seen {
			out[name] = r
		}
	}
	return out
}

// NsRatioGate demands ns/op(Numerator) <= Max × ns/op(Denominator) within
// one benchmark run — a machine-independent relative-speed pin.
type NsRatioGate struct {
	Name        string  `json:"name"`
	Numerator   string  `json:"numerator"`
	Denominator string  `json:"denominator"`
	Max         float64 `json:"max"`
}

// MicroBaseline is the committed microbenchmark envelope the CI
// bench-smoke job holds kernel runs to.
type MicroBaseline struct {
	// Tolerance is the allowed relative regression of allocs/op over the
	// expected value (0.15 = +15%); improvements always pass.
	Tolerance float64 `json:"tolerance"`
	// AllocsPerOp maps benchmark name (GOMAXPROCS suffix stripped) to its
	// expected allocations per operation.
	AllocsPerOp map[string]int64 `json:"allocs_per_op"`
	// NsRatios are the relative wall-time gates.
	NsRatios []NsRatioGate `json:"ns_ratios"`
}

// LoadMicroBaseline reads a committed microbenchmark baseline file.
func LoadMicroBaseline(path string) (*MicroBaseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b MicroBaseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("bench: micro baseline %s: %w", path, err)
	}
	return &b, nil
}

// Check compares parsed benchmark results against the baseline. Every
// gated benchmark must be present in the results — a missing one means the
// benchmark was renamed or silently skipped, which is itself a failure.
// A nil error means every gate passed.
func (b *MicroBaseline) Check(results map[string]MicroResult) error {
	var problems []string
	for name, expected := range b.AllocsPerOp {
		r, ok := results[name]
		if !ok {
			problems = append(problems, fmt.Sprintf("%s: no result (renamed or not run?)", name))
			continue
		}
		limit := int64(float64(expected) * (1 + b.Tolerance))
		if r.AllocsPerOp > limit {
			problems = append(problems, fmt.Sprintf("%s: %d allocs/op, baseline expects ≤%d (%d +%.0f%%)",
				name, r.AllocsPerOp, limit, expected, 100*b.Tolerance))
		}
	}
	for _, g := range b.NsRatios {
		num, ok := results[g.Numerator]
		if !ok {
			problems = append(problems, fmt.Sprintf("%s: no result for %s", g.Name, g.Numerator))
			continue
		}
		den, ok := results[g.Denominator]
		if !ok {
			problems = append(problems, fmt.Sprintf("%s: no result for %s", g.Name, g.Denominator))
			continue
		}
		if den.NsPerOp <= 0 {
			problems = append(problems, fmt.Sprintf("%s: degenerate denominator %s", g.Name, g.Denominator))
			continue
		}
		ratio := num.NsPerOp / den.NsPerOp
		if ratio > g.Max {
			problems = append(problems, fmt.Sprintf("%s: ns/op ratio %.2f exceeds %.2f (%s=%.0fns vs %s=%.0fns)",
				g.Name, ratio, g.Max, g.Numerator, num.NsPerOp, g.Denominator, den.NsPerOp))
		}
	}
	if len(problems) > 0 {
		return fmt.Errorf("bench: microbenchmark gate failed:\n  %s", strings.Join(problems, "\n  "))
	}
	return nil
}

// CheckMicroFile loads a `go test -bench` output file and a baseline and
// runs the gate — the ccbench -check-micro entry point.
func CheckMicroFile(benchOutputPath, baselinePath string) error {
	data, err := os.ReadFile(benchOutputPath)
	if err != nil {
		return err
	}
	results := ParseGoBench(string(data))
	if len(results) == 0 {
		return fmt.Errorf("bench: %s contains no benchmark results", benchOutputPath)
	}
	b, err := LoadMicroBaseline(baselinePath)
	if err != nil {
		return err
	}
	return b.Check(results)
}
