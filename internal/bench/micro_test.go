package bench

import (
	"path/filepath"
	"strings"
	"testing"
)

// sampleBenchOutput is a realistic `go test -bench -benchmem` transcript:
// header lines, GOMAXPROCS suffixes, and a trailing PASS.
const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: dbcc/internal/engine
cpu: Some CPU @ 2.10GHz
BenchmarkKernelJoinProbe/kernel/n=4096-8         	    3564	    308466 ns/op	  775376 B/op	      90 allocs/op
BenchmarkKernelJoinProbe/rows/n=4096-8           	    1426	    847269 ns/op	 1205608 B/op	    7075 allocs/op
BenchmarkKernelRadixPartition/kernel/wide/n=65536-8 	    3385	    344443 ns/op	    2208 B/op	      28 allocs/op
BenchmarkKernelRadixPartition/counting/wide/n=65536-8 	     934	   1202334 ns/op	 2140288 B/op	      35 allocs/op
PASS
ok  	dbcc/internal/engine	28.586s
`

func TestParseGoBench(t *testing.T) {
	results := ParseGoBench(sampleBenchOutput)
	if len(results) != 4 {
		t.Fatalf("parsed %d results, want 4: %v", len(results), results)
	}
	r, ok := results["BenchmarkKernelJoinProbe/kernel/n=4096"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: %v", results)
	}
	if r.NsPerOp != 308466 || r.BytesPerOp != 775376 || r.AllocsPerOp != 90 {
		t.Fatalf("parsed %+v", r)
	}
}

func TestMicroBaselineCheck(t *testing.T) {
	results := ParseGoBench(sampleBenchOutput)
	good := &MicroBaseline{
		Tolerance: 0.15,
		AllocsPerOp: map[string]int64{
			"BenchmarkKernelJoinProbe/kernel/n=4096": 90,
		},
		NsRatios: []NsRatioGate{{
			Name:        "radix vs counting",
			Numerator:   "BenchmarkKernelRadixPartition/kernel/wide/n=65536",
			Denominator: "BenchmarkKernelRadixPartition/counting/wide/n=65536",
			Max:         0.5,
		}},
	}
	if err := good.Check(results); err != nil {
		t.Fatalf("matching baseline failed: %v", err)
	}

	// An allocation regression beyond the tolerance fails.
	tight := &MicroBaseline{
		Tolerance:   0.15,
		AllocsPerOp: map[string]int64{"BenchmarkKernelJoinProbe/kernel/n=4096": 70},
	}
	if err := tight.Check(results); err == nil || !strings.Contains(err.Error(), "allocs/op") {
		t.Fatalf("29%% alloc regression passed the 15%% gate: %v", err)
	}

	// A ratio gate the measured speedup no longer clears fails.
	slow := &MicroBaseline{
		Tolerance: 0.15,
		NsRatios: []NsRatioGate{{
			Name:        "radix vs counting",
			Numerator:   "BenchmarkKernelRadixPartition/kernel/wide/n=65536",
			Denominator: "BenchmarkKernelRadixPartition/counting/wide/n=65536",
			Max:         0.1,
		}},
	}
	if err := slow.Check(results); err == nil || !strings.Contains(err.Error(), "ratio") {
		t.Fatalf("a 0.29 ratio passed a 0.1 gate: %v", err)
	}

	// A gated benchmark missing from the run is itself a failure — renames
	// must not silently disarm the gate.
	missing := &MicroBaseline{
		Tolerance:   0.15,
		AllocsPerOp: map[string]int64{"BenchmarkKernelRenamed/kernel/n=1": 1},
	}
	if err := missing.Check(results); err == nil {
		t.Fatal("missing benchmark passed the gate")
	}
}

// TestLoadCommittedMicroBaseline keeps the committed baseline file well
// formed: it must load, gate the radix-vs-counting hot loop at ≤0.5 (the
// shuffle kernel's 2× acceptance bar), and cover the join-probe and
// group-by alloc counts.
func TestLoadCommittedMicroBaseline(t *testing.T) {
	b, err := LoadMicroBaseline(filepath.Join("testdata", "microbench_baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	if b.Tolerance <= 0 || len(b.AllocsPerOp) == 0 || len(b.NsRatios) == 0 {
		t.Fatalf("committed micro baseline is degenerate: %+v", b)
	}
	var radix *NsRatioGate
	for i := range b.NsRatios {
		if strings.Contains(b.NsRatios[i].Numerator, "RadixPartition/kernel/wide") {
			radix = &b.NsRatios[i]
		}
	}
	if radix == nil || radix.Max > 0.5 {
		t.Fatalf("committed baseline does not pin the radix hot loop at 2x: %+v", b.NsRatios)
	}
	for _, name := range []string{
		"BenchmarkKernelJoinProbe/kernel/n=65536",
		"BenchmarkKernelGroupByMin/kernel/n=65536",
	} {
		if _, ok := b.AllocsPerOp[name]; !ok {
			t.Fatalf("committed baseline does not gate %s allocs", name)
		}
	}
}
