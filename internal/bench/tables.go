package bench

import (
	"fmt"
	"io"
	"math"
	"strings"

	"dbcc/internal/ccalg"
	"dbcc/internal/graph"
	"dbcc/internal/unionfind"
)

// Campaign holds the outcomes of the full Tables III–V benchmark sweep:
// one Outcome per (dataset, algorithm) cell.
type Campaign struct {
	Config   Config
	Capacity int64
	Cells    []Outcome
}

// RunCampaign executes the full sweep behind Tables III, IV and V.
func RunCampaign(cfg Config, progress func(string)) *Campaign {
	capacity := capacityBytes(cfg)
	camp := &Campaign{Config: cfg, Capacity: capacity}
	for _, ds := range Datasets() {
		for _, alg := range TableAlgorithms() {
			if progress != nil {
				progress(fmt.Sprintf("%s / %s", ds.Name, alg.FullName))
			}
			camp.Cells = append(camp.Cells, Run(ds, alg, cfg, capacity))
		}
	}
	return camp
}

// Cell returns the outcome for a dataset/algorithm pair.
func (c *Campaign) Cell(dataset, alg string) (Outcome, bool) {
	for _, o := range c.Cells {
		if o.Dataset == dataset && o.Algorithm == alg {
			return o, true
		}
	}
	return Outcome{}, false
}

// Table1 prints the complexity summary of the paper's Table I from the
// algorithm registry.
func Table1(w io.Writer) {
	fmt.Fprintln(w, "TABLE I — CONNECTED COMPONENT ALGORITHMS")
	fmt.Fprintf(w, "%-32s %-18s %s\n", "Algorithm", "Number of steps", "Space")
	for _, a := range ccalg.Algorithms() {
		if a.Name == "bfs" {
			continue // BFS appears in Sec. IV, not Table I
		}
		fmt.Fprintf(w, "%-32s %-18s %s\n", a.FullName, a.StepsBig0, a.SpaceBig0)
	}
}

// Table2 generates every dataset at the configured scale and prints the
// measured inventory next to the paper's numbers (paper values quoted in
// millions of vertices/edges and thousands of components).
func Table2(w io.Writer, cfg Config) {
	fmt.Fprintln(w, "TABLE II — DATASETS (measured at reproduction scale; paper values in [brackets])")
	fmt.Fprintf(w, "%-18s %12s %12s %12s   %s\n", "Dataset", "|V|", "|E|", "components", "[paper |V|M / |E|M / comps k]")
	for _, d := range Datasets() {
		g := d.Gen(cfg.Scale, cfg.Seed)
		comps := CountComponents(g)
		fmt.Fprintf(w, "%-18s %12d %12d %12d   [%.0f / %.0f / %.0f]\n",
			d.Name, g.NumVertices(), g.NumEdges(), comps, d.PaperV, d.PaperE, d.PaperComps)
	}
}

// cellTime renders one Table III cell.
func cellTime(o Outcome) string {
	if o.DNF {
		return "–"
	}
	if o.Err != nil {
		return "ERR"
	}
	return fmt.Sprintf("%.2f", o.MeanSecs)
}

// Table3 prints the runtime matrix of the paper's Table III, plus the
// relative standard deviation summary the paper reports in Sec. VII-B.
func Table3(w io.Writer, camp *Campaign) {
	fmt.Fprintln(w, "TABLE III — RUNTIMES IN SECONDS (– = did not finish within the storage capacity)")
	fmt.Fprintf(w, "%-18s %10s %10s %10s %10s   %s\n", "Dataset", "RC", "HM", "TP", "CR", "[paper RC/HM/TP/CR]")
	for _, d := range Datasets() {
		row := make([]string, 0, 4)
		for _, alg := range TableAlgorithms() {
			o, _ := camp.Cell(d.Name, alg.Name)
			row = append(row, cellTime(o))
		}
		paper := make([]string, 0, 4)
		for _, alg := range TableAlgorithms() {
			if s := d.PaperSecs(alg.Name); s > 0 {
				paper = append(paper, fmt.Sprintf("%.0f", s))
			} else {
				paper = append(paper, "–")
			}
		}
		fmt.Fprintf(w, "%-18s %10s %10s %10s %10s   [%s]\n",
			d.Name, row[0], row[1], row[2], row[3], strings.Join(paper, "/"))
	}
	// Relative standard deviation per algorithm (paper: RC 4.0%, HM 2.2%,
	// TP 2.1%, CR 1.6%).
	fmt.Fprintln(w)
	fmt.Fprint(w, "mean relative stddev over completed runs: ")
	var parts []string
	for _, alg := range TableAlgorithms() {
		var sum float64
		var n int
		for _, o := range camp.Cells {
			if o.Algorithm == alg.Name && !o.DNF && o.Err == nil && o.Runs > 1 {
				sum += o.RelStddev()
				n++
			}
		}
		if n > 0 {
			parts = append(parts, fmt.Sprintf("%s %.1f%%", strings.ToUpper(alg.Name), sum/float64(n)))
		}
	}
	fmt.Fprintln(w, strings.Join(parts, ", "))
}

// Table4 prints the maximum-space matrix of the paper's Table IV, in MiB
// at reproduction scale.
func Table4(w io.Writer, camp *Campaign) {
	fmt.Fprintln(w, "TABLE IV — MAXIMUM SPACE USED IN MiB (beyond the input table; – = did not finish)")
	fmt.Fprintf(w, "%-18s %8s %10s %10s %10s %10s\n", "Dataset", "input", "RC", "HM", "TP", "CR")
	for _, d := range Datasets() {
		vals := make([]string, 0, 4)
		var input int64
		for _, alg := range TableAlgorithms() {
			o, _ := camp.Cell(d.Name, alg.Name)
			if o.InputBytes > input {
				input = o.InputBytes
			}
			if o.DNF {
				vals = append(vals, "–")
			} else if o.Err != nil {
				vals = append(vals, "ERR")
			} else {
				vals = append(vals, fmt.Sprintf("%.1f", mib(o.PeakBytes)))
			}
		}
		fmt.Fprintf(w, "%-18s %8.1f %10s %10s %10s %10s\n",
			d.Name, mib(input), vals[0], vals[1], vals[2], vals[3])
	}
}

// Table5 prints the total-data-written matrix of the paper's Table V.
func Table5(w io.Writer, camp *Campaign) {
	fmt.Fprintln(w, "TABLE V — TOTAL MiB WRITTEN (– = did not finish)")
	fmt.Fprintf(w, "%-18s %8s %10s %10s %10s %10s\n", "Dataset", "input", "RC", "HM", "TP", "CR")
	for _, d := range Datasets() {
		vals := make([]string, 0, 4)
		var input int64
		for _, alg := range TableAlgorithms() {
			o, _ := camp.Cell(d.Name, alg.Name)
			if o.InputBytes > input {
				input = o.InputBytes
			}
			if o.DNF {
				vals = append(vals, "–")
			} else if o.Err != nil {
				vals = append(vals, "ERR")
			} else {
				vals = append(vals, fmt.Sprintf("%.1f", mib(o.Written)))
			}
		}
		fmt.Fprintf(w, "%-18s %8.1f %10s %10s %10s %10s\n",
			d.Name, mib(input), vals[0], vals[1], vals[2], vals[3])
	}
}

func mib(b int64) float64 { return float64(b) / (1 << 20) }

// Figure5 prints the component-size distributions of the Andromeda and
// Bitcoin-addresses stand-ins in power-of-two buckets — the log-log view
// of the paper's Figure 5.
func Figure5(w io.Writer, cfg Config) {
	fmt.Fprintln(w, "FIGURE 5 — COMPONENT SIZE DISTRIBUTION (log-log; count per power-of-two size bucket)")
	for _, name := range []string{"Andromeda", "Bitcoin addresses"} {
		d, _ := DatasetByName(name)
		g := d.Gen(cfg.Scale, cfg.Seed)
		sizes := componentSizes(g)
		buckets := map[int]int{}
		maxB := 0
		for _, s := range sizes {
			b := int(math.Log2(float64(s)))
			buckets[b]++
			if b > maxB {
				maxB = b
			}
		}
		fmt.Fprintf(w, "\n%s (%d components):\n", name, len(sizes))
		fmt.Fprintf(w, "  %-14s %10s\n", "size", "count")
		for b := 0; b <= maxB; b++ {
			n := buckets[b]
			bar := ""
			if n > 0 {
				bar = strings.Repeat("#", int(math.Ceil(math.Log2(float64(n)+1))))
			}
			fmt.Fprintf(w, "  2^%-2d .. 2^%-2d %10d %s\n", b, b+1, n, bar)
		}
	}
}

// componentSizes computes the multiset of component sizes of g using the
// sequential oracle.
func componentSizes(g *graph.Graph) []int {
	sizes := unionfind.Components(g).ComponentSizes()
	out := make([]int, 0, len(sizes))
	for _, s := range sizes {
		out = append(out, s)
	}
	return out
}

// Figure6 renders the Table III data as the horizontal bar chart of the
// paper's Figure 6 (one row per dataset, one bar per algorithm, length
// proportional to runtime).
func Figure6(w io.Writer, camp *Campaign) {
	fmt.Fprintln(w, "FIGURE 6 — IN-DATABASE EXECUTION TIMES (bar length ∝ runtime)")
	// Normalise bars to the slowest completed run.
	var maxSecs float64
	for _, o := range camp.Cells {
		if !o.DNF && o.Err == nil && o.MeanSecs > maxSecs {
			maxSecs = o.MeanSecs
		}
	}
	if maxSecs == 0 {
		maxSecs = 1
	}
	names := map[string]string{"rc": "Randomised Contraction", "hm": "Hash-to-Min", "tp": "Two-Phase", "cr": "Cracker"}
	for _, d := range Datasets() {
		fmt.Fprintf(w, "\n%s\n", d.Name)
		for _, alg := range TableAlgorithms() {
			o, _ := camp.Cell(d.Name, alg.Name)
			label := names[alg.Name]
			if o.DNF {
				fmt.Fprintf(w, "  %-24s %s\n", label, "did not finish")
				continue
			}
			if o.Err != nil {
				fmt.Fprintf(w, "  %-24s error: %v\n", label, o.Err)
				continue
			}
			barLen := int(math.Round(50 * o.MeanSecs / maxSecs))
			if barLen < 1 {
				barLen = 1
			}
			fmt.Fprintf(w, "  %-24s %s %.2fs\n", label, strings.Repeat("█", barLen), o.MeanSecs)
		}
	}
}
