package bench

import (
	"fmt"
	"io"

	"dbcc/internal/ccalg"
	"dbcc/internal/datagen"
	"dbcc/internal/graph"
	"dbcc/internal/xrand"
)

// NaiveExperiment reproduces the Sec. IV argument about the two simple
// solution attempts:
//
//   - the Breadth First Search strategy needs a number of rounds bounded
//     only by the graph diameter (n−1 on a sequentially numbered path);
//   - iterated squaring (G, G², G⁴, …) reaches radius 2^k neighbourhoods
//     in k steps but blows the edge set up towards the complete graph —
//     a quadratic data explosion.
//
// Both are measured here on paths, next to Randomised Contraction on the
// same inputs.
func NaiveExperiment(w io.Writer, cfg Config) {
	fmt.Fprintln(w, "ABLATION A6 — THE SEC. IV DEAD ENDS ON SEQUENTIAL PATHS")
	fmt.Fprintf(w, "%-8s %12s %12s %16s %12s\n",
		"n", "BFS rounds", "RC rounds", "G^2k max edges", "input edges")
	bfsInfo, _ := ccalg.ByName("bfs")
	rcInfo, _ := ccalg.ByName("rc")
	for _, n := range []int{64, 128, 256, 512} {
		g := datagen.Path(n)
		bfsRes, _, err := runOnce(g, bfsInfo, cfg, 0, cfg.Seed)
		if err != nil {
			fmt.Fprintf(w, "%-8d BFS error: %v\n", n, err)
			continue
		}
		rcRes, _, err := runOnce(g, rcInfo, cfg, 0, cfg.Seed)
		if err != nil {
			fmt.Fprintf(w, "%-8d RC error: %v\n", n, err)
			continue
		}
		maxEdges := squaringMaxEdges(g)
		fmt.Fprintf(w, "%-8d %12d %12d %16d %12d\n",
			n, bfsRes.Rounds, rcRes.Rounds, maxEdges, g.NumEdges())
	}
	fmt.Fprintln(w, "(BFS rounds grow linearly; squaring's intermediate edge count grows")
	fmt.Fprintln(w, " quadratically towards the complete graph; RC stays logarithmic)")
}

// squaringMaxEdges runs the Sec. IV iterated-squaring idea in-memory until
// the neighbourhoods stop growing and returns the largest intermediate
// undirected edge count — the quadratic blow-up the paper rules the
// approach out for.
func squaringMaxEdges(g *graph.Graph) int {
	type pair struct{ v, w int64 }
	edges := make(map[pair]struct{})
	add := func(a, b int64) {
		if a == b {
			return
		}
		if a > b {
			a, b = b, a
		}
		edges[pair{a, b}] = struct{}{}
	}
	for _, e := range g.Edges {
		add(e.V, e.W)
	}
	maxEdges := len(edges)
	for {
		adj := make(map[int64][]int64)
		for e := range edges {
			adj[e.v] = append(adj[e.v], e.w)
			adj[e.w] = append(adj[e.w], e.v)
		}
		next := make(map[pair]struct{}, len(edges))
		for e := range edges {
			next[e] = struct{}{}
		}
		// G² adds (x, z) whenever x–y and y–z exist.
		for _, nbrs := range adj {
			for i := 0; i < len(nbrs); i++ {
				for j := i + 1; j < len(nbrs); j++ {
					a, b := nbrs[i], nbrs[j]
					if a == b {
						continue
					}
					if a > b {
						a, b = b, a
					}
					next[pair{a, b}] = struct{}{}
				}
			}
		}
		if len(next) == len(edges) {
			return maxEdges
		}
		edges = next
		if len(edges) > maxEdges {
			maxEdges = len(edges)
		}
	}
}

// AppendixBExperiment verifies the theory of Appendix B by Monte-Carlo
// census: over uniformly random orderings of random directed graphs, the
// expected number of type-1 vertices (representative of exactly one
// vertex) never exceeds the expected number of type-0 vertices (Lemma 1),
// and the expected number of representatives stays ≤ (2/3)n (Theorem 2) —
// with the directed 3-cycle attaining the bound exactly.
func AppendixBExperiment(w io.Writer, trials int, seed uint64) {
	fmt.Fprintln(w, "EXPERIMENT E8b — APPENDIX B TYPE CENSUS ON DIRECTED GRAPHS")
	fmt.Fprintf(w, "%-24s %8s %8s %8s %10s\n", "graph", "E[type0]", "E[type1]", "E[2+]", "E[reps]/n")
	rng := xrand.New(seed)
	graphs := []struct {
		name string
		gen  func(r *xrand.Rand) [][]int64 // adjacency: out-neighbours per vertex
	}{
		{"directed-3-cycle", func(*xrand.Rand) [][]int64 {
			return [][]int64{{1}, {2}, {0}}
		}},
		{"random-out-1 (n=30)", func(r *xrand.Rand) [][]int64 {
			out := make([][]int64, 30)
			for v := range out {
				w := int64(r.Uint64n(30))
				for w == int64(v) {
					w = int64(r.Uint64n(30))
				}
				out[v] = []int64{w}
			}
			return out
		}},
		{"random-out-3 (n=30)", func(r *xrand.Rand) [][]int64 {
			out := make([][]int64, 30)
			for v := range out {
				seen := map[int64]bool{int64(v): true}
				for len(out[v]) < 3 {
					w := int64(r.Uint64n(30))
					if !seen[w] {
						seen[w] = true
						out[v] = append(out[v], w)
					}
				}
			}
			return out
		}},
		{"bidirected-path (n=20)", func(*xrand.Rand) [][]int64 {
			out := make([][]int64, 20)
			for v := 0; v < 20; v++ {
				if v > 0 {
					out[v] = append(out[v], int64(v-1))
				}
				if v < 19 {
					out[v] = append(out[v], int64(v+1))
				}
			}
			return out
		}},
	}
	for _, spec := range graphs {
		var t0, t1, t2, reps float64
		n := 0
		for trial := 0; trial < trials; trial++ {
			out := spec.gen(rng)
			n = len(out)
			a, b, c, r := typeCensus(out, rng)
			t0 += float64(a)
			t1 += float64(b)
			t2 += float64(c)
			reps += float64(r)
		}
		f := float64(trials)
		fmt.Fprintf(w, "%-24s %8.2f %8.2f %8.2f %10.4f\n",
			spec.name, t0/f, t1/f, t2/f, reps/f/float64(n))
	}
	fmt.Fprintln(w, "(Lemma 1: E[type1] ≤ E[type0]; Thm 2: E[reps]/n ≤ 2/3, tight on the 3-cycle)")
}

// typeCensus draws one uniformly random labelling, assigns every vertex
// the representative argmin_{w∈N⁺[v]} L(w), and counts vertices by how
// many vertices they represent.
func typeCensus(out [][]int64, rng *xrand.Rand) (type0, type1, type2plus, reps int) {
	n := len(out)
	label := rng.Perm(n)
	counts := make([]int, n)
	for v := 0; v < n; v++ {
		best := v
		for _, w := range out[v] {
			if label[w] < label[best] {
				best = int(w)
			}
		}
		counts[best]++
	}
	for _, c := range counts {
		switch {
		case c == 0:
			type0++
		case c == 1:
			type1++
		default:
			type2plus++
		}
	}
	return type0, type1, type2plus, n - type0
}
