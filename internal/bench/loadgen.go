package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"dbcc/internal/client"
	"dbcc/internal/wire"
)

// LoadgenConfig drives mixed SQL + connected-components traffic at a
// running ccserverd over the wire protocol — the server-soak workload.
// Connections are spread round-robin across Tenants tenant catalogs, so
// the run exercises both the shared worker pool and the per-tenant
// admission gates.
type LoadgenConfig struct {
	Addr        string        // ccserverd address
	Connections int           // concurrent client connections (default 8)
	Tenants     int           // tenant catalogs to spread connections over (default 2)
	Duration    time.Duration // measurement window (default 10s)
	Seed        uint64        // workload seed (op mix and edge values)
	AuthToken   string        // shared secret, if the server requires one
	SetupEdges  int           // edges loaded into each tenant's graph (default 400)
	CCEvery     int           // every CCEvery-th op is a connected-components run (default 8)
	// NoPrepare disables the prepared-statement wire path: every op is
	// sent as statement text and re-parsed server-side. Ablation knob for
	// measuring what prepare-once/execute-many buys.
	NoPrepare bool
}

// ServerJSON is the server-soak section of a BENCH report (schema v6):
// client-observed latency percentiles over the whole op mix plus the
// server's own admission accounting at the end of the run. The CI
// server-soak lane asserts ops > 0, failed == shed == 0 and (on the
// prepared path) a warm plan-cache hit rate.
type ServerJSON struct {
	Addr         string  `json:"addr"`
	Connections  int     `json:"connections"`
	Tenants      int     `json:"tenants"`
	DurationSecs float64 `json:"duration_secs"`
	NoPrepare    bool    `json:"no_prepare"` // text-only ablation; false = prepared wire path

	Ops    int64 `json:"ops"`     // completed operations across all connections
	SQLOps int64 `json:"sql_ops"` // Exec/Query operations
	CCOps  int64 `json:"cc_ops"`  // connected-components runs
	Failed int64 `json:"failed"`  // operations that returned a non-admission error
	Shed   int64 `json:"shed"`    // 429-style admission rejections observed by clients

	P50Millis float64 `json:"p50_ms"`
	P95Millis float64 `json:"p95_ms"`
	P99Millis float64 `json:"p99_ms"`
	MaxMillis float64 `json:"max_ms"`

	// Final server snapshot, taken after every connection finished.
	ServerStatements int64   `json:"server_statements"`
	ServerFailed     int64   `json:"server_failed"`
	ServerShed       int64   `json:"server_shed"`
	QueueDepth       int64   `json:"queue_depth"`
	PeakQueueDepth   int64   `json:"peak_queue_depth"`
	QueueMillis      float64 `json:"queue_ms_total"` // total admission-queue wait across tenants

	// Plan-cache accounting over the measurement window (deltas between
	// the pre- and post-run server snapshots, so setup traffic and earlier
	// runs against the same server don't dilute the rate).
	ServerPrepared   int64   `json:"server_prepared"`   // Prepare frames served, lifetime
	Parses           int64   `json:"parses"`            // statements parsed in the window
	PlanCacheHits    int64   `json:"plan_cache_hits"`   // window delta
	PlanCacheMisses  int64   `json:"plan_cache_misses"` // window delta
	PlanCacheHitRate float64 `json:"plan_cache_hit_rate"`
}

func (cfg *LoadgenConfig) defaults() {
	if cfg.Connections <= 0 {
		cfg.Connections = 8
	}
	if cfg.Tenants <= 0 {
		cfg.Tenants = 2
	}
	if cfg.Tenants > cfg.Connections {
		cfg.Tenants = cfg.Connections
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 10 * time.Second
	}
	if cfg.SetupEdges <= 0 {
		cfg.SetupEdges = 400
	}
	if cfg.CCEvery <= 0 {
		cfg.CCEvery = 8
	}
}

// loadgenTenant names tenant i of a run.
func loadgenTenant(i int) string { return fmt.Sprintf("soak%d", i) }

// createFresh creates an empty table, replacing a leftover from an earlier
// run against the same server. CREATE is tried first so a fresh server —
// the CI soak lane, which asserts a zero server-side failure count — sees
// no failing statements at all; only the reuse path pays a DROP.
func createFresh(c *client.Client, name, createStmt string) error {
	if _, _, err := c.Exec(createStmt); err == nil {
		return nil
	}
	if _, _, err := c.Exec("DROP TABLE " + name); err != nil {
		return err
	}
	_, _, err := c.Exec(createStmt)
	return err
}

// setupTenant creates and fills one tenant's edges table: a ring per
// expected component plus seeded chords, so connected-components runs have
// real (and deterministic, per seed) work to do.
func setupTenant(cfg *LoadgenConfig, tenant string, seed uint64) error {
	c, err := client.Dial(cfg.Addr, tenant, cfg.AuthToken)
	if err != nil {
		return fmt.Errorf("loadgen: setup dial %s: %w", tenant, err)
	}
	defer c.Close()
	if err := createFresh(c, "edges", "CREATE TABLE edges (v1, v2) DISTRIBUTED BY (v1)"); err != nil {
		return fmt.Errorf("loadgen: setup %s: %w", tenant, err)
	}
	rng := rand.New(rand.NewSource(int64(seed)))
	n := int64(cfg.SetupEdges) // ring of SetupEdges vertices => one giant component
	var b strings.Builder
	for i := int64(0); i < n; i++ {
		v, w := i, (i+1)%n
		if rng.Intn(8) == 0 { // chord: reconnects inside the ring, keeps one component
			w = rng.Int63n(n)
		}
		if b.Len() == 0 {
			b.WriteString("INSERT INTO edges VALUES ")
		} else {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, "(%d,%d)", v, w)
		if (i+1)%100 == 0 || i == n-1 {
			if _, _, err := c.Exec(b.String()); err != nil {
				return fmt.Errorf("loadgen: setup %s: %w", tenant, err)
			}
			b.Reset()
		}
	}
	return nil
}

// connStats is one connection's tally, merged after the run.
type connStats struct {
	ops, sqlOps, ccOps, failed, shed int64
	latencies                        []time.Duration
}

// runConn drives one connection's op mix until deadline: SELECTs and
// INSERTs against the tenant catalog with a connected-components run every
// CCEvery-th op. Admission rejections (429) count as shed, not failures;
// the scratch table is dropped and recreated periodically so the workload
// doesn't slow down over long soaks.
func runConn(cfg *LoadgenConfig, id int, deadline time.Time, st *connStats) error {
	tenant := loadgenTenant(id % cfg.Tenants)
	c, err := client.Dial(cfg.Addr, tenant, cfg.AuthToken)
	if err != nil {
		return fmt.Errorf("loadgen: conn %d dial: %w", id, err)
	}
	defer c.Close()
	scratch := fmt.Sprintf("scratch_%d", id)
	if err := createFresh(c, scratch, fmt.Sprintf("CREATE TABLE %s (k, x) DISTRIBUTED BY (k)", scratch)); err != nil {
		return fmt.Errorf("loadgen: conn %d scratch: %w", id, err)
	}
	// The prepared path parses each op shape exactly once per connection.
	// The two count shapes carry distinct aliases on purpose: the plan
	// cache keys table-parameterised statements by normalized text alone
	// and validates the bound table's schema on every hit, so one shape
	// alternating between edges (v1, v2) and scratch (k, x) would fail
	// validation — and replan — every other execution.
	var insStmt, qEdges, qScratch *client.Stmt
	if !cfg.NoPrepare {
		for _, p := range []struct {
			dst **client.Stmt
			src string
		}{
			{&insStmt, "INSERT INTO $1 VALUES ($2,$3),($4,$5)"},
			{&qEdges, "SELECT count(*) AS n FROM $1 AS e"},
			{&qScratch, "SELECT count(*) AS n FROM $1 AS s"},
		} {
			if *p.dst, err = c.Prepare(p.src); err != nil {
				return fmt.Errorf("loadgen: conn %d prepare: %w", id, err)
			}
		}
	}
	rng := rand.New(rand.NewSource(int64(cfg.Seed) + int64(id)*7919))
	for op := 0; time.Now().Before(deadline); op++ {
		start := time.Now()
		var err error
		cc := op%cfg.CCEvery == cfg.CCEvery-1
		if cc {
			_, err = c.ConnectedComponents("edges", "", cfg.Seed+uint64(op))
		} else if cfg.NoPrepare {
			switch op % 3 {
			case 0:
				_, _, err = c.Exec(fmt.Sprintf("INSERT INTO %s VALUES (%d,%d),(%d,%d)",
					scratch, rng.Intn(64), rng.Intn(1000), rng.Intn(64), rng.Intn(1000)))
			case 1:
				_, _, err = c.Query("SELECT count(*) AS n FROM edges")
			default:
				_, _, err = c.Query(fmt.Sprintf("SELECT count(*) AS n FROM %s", scratch))
			}
		} else {
			switch op % 3 {
			case 0:
				_, _, err = insStmt.Exec(client.Table(scratch),
					client.Int(int64(rng.Intn(64))), client.Int(int64(rng.Intn(1000))),
					client.Int(int64(rng.Intn(64))), client.Int(int64(rng.Intn(1000))))
			case 1:
				_, _, err = qEdges.Query(client.Table("edges"))
			default:
				_, _, err = qScratch.Query(client.Table(scratch))
			}
		}
		switch {
		case err == nil:
			st.ops++
			if cc {
				st.ccOps++
			} else {
				st.sqlOps++
			}
			st.latencies = append(st.latencies, time.Since(start))
		case client.IsOverloaded(err):
			st.shed++
			time.Sleep(5 * time.Millisecond) // back off as a real client would
		default:
			st.failed++
		}
		if op > 0 && op%256 == 0 {
			// Bound scratch growth so op latency stays flat over the soak.
			// An admission rejection here is a shed like any other op —
			// the statement never ran, the scratch table is untouched.
			switch _, _, err := c.Exec(fmt.Sprintf("DROP TABLE %s; CREATE TABLE %s (k, x) DISTRIBUTED BY (k)", scratch, scratch)); {
			case err == nil:
			case client.IsOverloaded(err):
				st.shed++
				time.Sleep(5 * time.Millisecond)
			default:
				st.failed++
			}
		}
	}
	return nil
}

// percentile returns the p-quantile (0 < p <= 1) of sorted durations in
// milliseconds.
func percentile(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return float64(sorted[i]) / float64(time.Millisecond)
}

// RunLoadgen loads each tenant's graph, drives Connections concurrent
// clients against the server for Duration, and reports client-observed
// latency percentiles together with the server's final admission stats.
// Operation errors are counted (failed/shed), not returned; the error
// return covers setup and the final stats fetch only.
func RunLoadgen(cfg LoadgenConfig, progress func(string)) (*ServerJSON, error) {
	cfg.defaults()
	for i := 0; i < cfg.Tenants; i++ {
		if err := setupTenant(&cfg, loadgenTenant(i), cfg.Seed+uint64(i)); err != nil {
			return nil, err
		}
	}
	if progress != nil {
		progress(fmt.Sprintf("loadgen: %d connections over %d tenants for %s (prepared=%v)", cfg.Connections, cfg.Tenants, cfg.Duration, !cfg.NoPrepare))
	}

	// Pre-run snapshot: the hit rate is computed over the measurement
	// window only, so setup inserts and prior runs don't dilute it.
	before, err := fetchServerStats(&cfg)
	if err != nil {
		return nil, err
	}

	deadline := time.Now().Add(cfg.Duration)
	stats := make([]connStats, cfg.Connections)
	errs := make([]error, cfg.Connections)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Connections; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = runConn(&cfg, i, deadline, &stats[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	out := &ServerJSON{
		Addr:         cfg.Addr,
		Connections:  cfg.Connections,
		Tenants:      cfg.Tenants,
		DurationSecs: cfg.Duration.Seconds(),
		NoPrepare:    cfg.NoPrepare,
	}
	var all []time.Duration
	for i := range stats {
		out.Ops += stats[i].ops
		out.SQLOps += stats[i].sqlOps
		out.CCOps += stats[i].ccOps
		out.Failed += stats[i].failed
		out.Shed += stats[i].shed
		all = append(all, stats[i].latencies...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	out.P50Millis = percentile(all, 0.50)
	out.P95Millis = percentile(all, 0.95)
	out.P99Millis = percentile(all, 0.99)
	out.MaxMillis = percentile(all, 1)

	st, err := fetchServerStats(&cfg)
	if err != nil {
		return nil, err
	}
	out.ServerStatements = st.Statements
	out.ServerFailed = st.Failed
	out.ServerShed = st.Shed
	out.QueueDepth = st.QueueDepth
	out.PeakQueueDepth = st.PeakQueueDepth
	var queueNanos int64
	for _, ts := range st.Tenants {
		queueNanos += ts.QueueNanos
	}
	out.QueueMillis = float64(queueNanos) / float64(time.Millisecond)

	out.ServerPrepared = st.Prepared
	out.Parses = st.Parses - before.Parses
	out.PlanCacheHits = st.PlanCacheHits - before.PlanCacheHits
	out.PlanCacheMisses = st.PlanCacheMisses - before.PlanCacheMisses
	if looked := out.PlanCacheHits + out.PlanCacheMisses; looked > 0 {
		out.PlanCacheHitRate = float64(out.PlanCacheHits) / float64(looked)
	}
	return out, nil
}

// fetchServerStats dials the server for one stats snapshot.
func fetchServerStats(cfg *LoadgenConfig) (*wire.ServerStats, error) {
	c, err := client.Dial(cfg.Addr, loadgenTenant(0), cfg.AuthToken)
	if err != nil {
		return nil, fmt.Errorf("loadgen: stats dial: %w", err)
	}
	defer c.Close()
	st, err := c.ServerStats()
	if err != nil {
		return nil, fmt.Errorf("loadgen: stats: %w", err)
	}
	return st, nil
}

// LoadgenDataset is the Dataset name of server-soak reports:
// BENCH_server-soak.json.
const LoadgenDataset = "server-soak"

// WriteLoadgenReport runs the load generator and writes its result as a
// schema-v6 BENCH report (dataset "server-soak", no algorithm table, the
// server section populated) into dir, returning the report and its path.
func WriteLoadgenReport(dir string, benchCfg Config, cfg LoadgenConfig, progress func(string)) (*BenchJSON, string, error) {
	srv, err := RunLoadgen(cfg, progress)
	if err != nil {
		return nil, "", err
	}
	rep := &BenchJSON{
		SchemaVersion: JSONSchemaVersion,
		Dataset:       LoadgenDataset,
		Scale:         benchCfg.Scale,
		Segments:      benchCfg.Segments,
		Seed:          cfg.Seed,
		Algorithms:    []AlgorithmJSON{},
		Server:        srv,
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, "", err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, "", err
	}
	path := filepath.Join(dir, JSONFileName(LoadgenDataset))
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return nil, "", err
	}
	return rep, path, nil
}
