package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"dbcc/internal/client"
	"dbcc/internal/wire"
)

// LoadgenConfig drives mixed SQL + connected-components traffic at a
// running ccserverd over the wire protocol — the server-soak workload.
// Connections are spread round-robin across Tenants tenant catalogs, so
// the run exercises both the shared worker pool and the per-tenant
// admission gates.
type LoadgenConfig struct {
	Addr        string        // ccserverd address
	Connections int           // concurrent client connections (default 8)
	Tenants     int           // tenant catalogs to spread connections over (default 2)
	Duration    time.Duration // measurement window (default 10s)
	Seed        uint64        // workload seed (op mix and edge values)
	AuthToken   string        // shared secret, if the server requires one
	SetupEdges  int           // edges loaded into each tenant's graph (default 400)
	CCEvery     int           // every CCEvery-th op is a connected-components run (default 8)
	// NoPrepare disables the prepared-statement wire path: every op is
	// sent as statement text and re-parsed server-side. Ablation knob for
	// measuring what prepare-once/execute-many buys.
	NoPrepare bool
	// Stream switches the op mix to the incremental-maintenance workload:
	// each tenant's edges table carries a component index, connections
	// stream prepared INSERTs (bounded relabel work per statement) with
	// periodic DELETEs that trigger index rebuilds, and Watchers live
	// subscriptions consume the Notify fan-out, each asserting gap-free
	// sequence numbers.
	Stream bool
	// Watchers is how many Watch subscriptions stay open for the whole
	// run (stream mode; spread round-robin over tenants; default 4).
	Watchers int
	// DeleteEvery makes every DeleteEvery-th op of a streaming connection
	// a DELETE statement — the rebuild trigger (default 192).
	DeleteEvery int
}

// ServerJSON is the server-soak section of a BENCH report (schema v6):
// client-observed latency percentiles over the whole op mix plus the
// server's own admission accounting at the end of the run. The CI
// server-soak lane asserts ops > 0, failed == shed == 0 and (on the
// prepared path) a warm plan-cache hit rate.
type ServerJSON struct {
	Addr         string  `json:"addr"`
	Connections  int     `json:"connections"`
	Tenants      int     `json:"tenants"`
	DurationSecs float64 `json:"duration_secs"`
	NoPrepare    bool    `json:"no_prepare"` // text-only ablation; false = prepared wire path

	Ops    int64 `json:"ops"`     // completed operations across all connections
	SQLOps int64 `json:"sql_ops"` // Exec/Query operations
	CCOps  int64 `json:"cc_ops"`  // connected-components runs
	Failed int64 `json:"failed"`  // operations that returned a non-admission error
	Shed   int64 `json:"shed"`    // 429-style admission rejections observed by clients

	P50Millis float64 `json:"p50_ms"`
	P95Millis float64 `json:"p95_ms"`
	P99Millis float64 `json:"p99_ms"`
	MaxMillis float64 `json:"max_ms"`

	// Final server snapshot, taken after every connection finished.
	ServerStatements int64   `json:"server_statements"`
	ServerFailed     int64   `json:"server_failed"`
	ServerShed       int64   `json:"server_shed"`
	QueueDepth       int64   `json:"queue_depth"`
	PeakQueueDepth   int64   `json:"peak_queue_depth"`
	QueueMillis      float64 `json:"queue_ms_total"` // total admission-queue wait across tenants

	// Plan-cache accounting over the measurement window (deltas between
	// the pre- and post-run server snapshots, so setup traffic and earlier
	// runs against the same server don't dilute the rate).
	ServerPrepared   int64   `json:"server_prepared"`   // Prepare frames served, lifetime
	Parses           int64   `json:"parses"`            // statements parsed in the window
	PlanCacheHits    int64   `json:"plan_cache_hits"`   // window delta
	PlanCacheMisses  int64   `json:"plan_cache_misses"` // window delta
	PlanCacheHitRate float64 `json:"plan_cache_hit_rate"`

	// Streaming section (schema v7; populated in stream mode). Insert
	// percentiles cover INSERT statements only — the latency the bounded
	// incremental-maintenance invariant protects; relabels_per_insert is
	// the window's IndexLabelsTouched delta per insert statement, the
	// bounded-work witness. seq_gaps must be zero: every watcher checks
	// its Notify stream for gap-free monotonic sequence numbers.
	Stream            bool    `json:"stream,omitempty"`
	Watchers          int     `json:"watchers,omitempty"`
	InsertOps         int64   `json:"insert_ops,omitempty"`
	DeleteOps         int64   `json:"delete_ops,omitempty"`
	InsertP50Millis   float64 `json:"insert_p50_ms,omitempty"`
	InsertP95Millis   float64 `json:"insert_p95_ms,omitempty"`
	InsertP99Millis   float64 `json:"insert_p99_ms,omitempty"`
	RelabelsPerInsert float64 `json:"relabels_per_insert,omitempty"`
	IndexMerges       int64   `json:"index_merges,omitempty"`   // window delta
	IndexRebuilds     int64   `json:"index_rebuilds,omitempty"` // window delta
	Notifies          int64   `json:"notifies,omitempty"`       // window delta
	WatchEvents       int64   `json:"watch_events,omitempty"`   // events seen by this run's watchers
	SeqGaps           int64   `json:"seq_gaps"`                 // watcher-observed sequence gaps (must be 0)
}

func (cfg *LoadgenConfig) defaults() {
	if cfg.Connections <= 0 {
		cfg.Connections = 8
	}
	if cfg.Tenants <= 0 {
		cfg.Tenants = 2
	}
	if cfg.Tenants > cfg.Connections {
		cfg.Tenants = cfg.Connections
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 10 * time.Second
	}
	if cfg.SetupEdges <= 0 {
		cfg.SetupEdges = 400
	}
	if cfg.CCEvery <= 0 {
		cfg.CCEvery = 8
	}
	if cfg.Stream && cfg.Watchers <= 0 {
		cfg.Watchers = 4
	}
	if cfg.DeleteEvery <= 0 {
		cfg.DeleteEvery = 192
	}
}

// loadgenTenant names tenant i of a run.
func loadgenTenant(i int) string { return fmt.Sprintf("soak%d", i) }

// createFresh creates an empty table, replacing a leftover from an earlier
// run against the same server. CREATE is tried first so a fresh server —
// the CI soak lane, which asserts a zero server-side failure count — sees
// no failing statements at all; only the reuse path pays a DROP.
func createFresh(c *client.Client, name, createStmt string) error {
	if _, _, err := c.Exec(createStmt); err == nil {
		return nil
	}
	if _, _, err := c.Exec("DROP TABLE " + name); err != nil {
		return err
	}
	_, _, err := c.Exec(createStmt)
	return err
}

// setupTenant creates and fills one tenant's edges table: a ring per
// expected component plus seeded chords, so connected-components runs have
// real (and deterministic, per seed) work to do.
func setupTenant(cfg *LoadgenConfig, tenant string, seed uint64) error {
	c, err := client.Dial(cfg.Addr, tenant, cfg.AuthToken)
	if err != nil {
		return fmt.Errorf("loadgen: setup dial %s: %w", tenant, err)
	}
	defer c.Close()
	if err := createFresh(c, "edges", "CREATE TABLE edges (v1, v2) DISTRIBUTED BY (v1)"); err != nil {
		return fmt.Errorf("loadgen: setup %s: %w", tenant, err)
	}
	rng := rand.New(rand.NewSource(int64(seed)))
	n := int64(cfg.SetupEdges) // ring of SetupEdges vertices => one giant component
	var b strings.Builder
	for i := int64(0); i < n; i++ {
		v, w := i, (i+1)%n
		if rng.Intn(8) == 0 { // chord: reconnects inside the ring, keeps one component
			w = rng.Int63n(n)
		}
		if b.Len() == 0 {
			b.WriteString("INSERT INTO edges VALUES ")
		} else {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, "(%d,%d)", v, w)
		if (i+1)%100 == 0 || i == n-1 {
			if _, _, err := c.Exec(b.String()); err != nil {
				return fmt.Errorf("loadgen: setup %s: %w", tenant, err)
			}
			b.Reset()
		}
	}
	if cfg.Stream {
		// Index after the bulk load: the scan-at-create path registers the
		// existing edges, then the streamed inserts maintain incrementally.
		// createFresh always leaves a fresh table, so no stale index can
		// survive from an earlier run.
		if _, _, err := c.Exec("CREATE COMPONENT INDEX ON edges"); err != nil {
			return fmt.Errorf("loadgen: setup index %s: %w", tenant, err)
		}
	}
	return nil
}

// connStats is one connection's tally, merged after the run.
type connStats struct {
	ops, sqlOps, ccOps, failed, shed int64
	inserts, deletes                 int64
	latencies                        []time.Duration
	insertLatencies                  []time.Duration
}

// note classifies one operation's outcome, the single classification
// every op kind — SQL, CC, and the streaming inserts/deletes — funnels
// through: success, admission shed (429: the server protecting itself;
// the op never ran), or failure. Keeping the streaming ops on this path
// is what keeps -require-zero-shed meaningful for stream soaks.
func (st *connStats) note(err error, start time.Time, kind byte) {
	switch {
	case err == nil:
		st.ops++
		el := time.Since(start)
		st.latencies = append(st.latencies, el)
		switch kind {
		case 'c':
			st.ccOps++
		case 'i':
			st.sqlOps++
			st.inserts++
			st.insertLatencies = append(st.insertLatencies, el)
		case 'd':
			st.sqlOps++
			st.deletes++
		default:
			st.sqlOps++
		}
	case client.IsOverloaded(err):
		st.shed++
		time.Sleep(5 * time.Millisecond) // back off as a real client would
	default:
		st.failed++
	}
}

// runConn drives one connection's op mix until deadline: SELECTs and
// INSERTs against the tenant catalog with a connected-components run every
// CCEvery-th op. Admission rejections (429) count as shed, not failures;
// the scratch table is dropped and recreated periodically so the workload
// doesn't slow down over long soaks.
func runConn(cfg *LoadgenConfig, id int, deadline time.Time, st *connStats) error {
	tenant := loadgenTenant(id % cfg.Tenants)
	c, err := client.Dial(cfg.Addr, tenant, cfg.AuthToken)
	if err != nil {
		return fmt.Errorf("loadgen: conn %d dial: %w", id, err)
	}
	defer c.Close()
	if cfg.Stream {
		return runStreamConn(cfg, c, id, deadline, st)
	}
	scratch := fmt.Sprintf("scratch_%d", id)
	if err := createFresh(c, scratch, fmt.Sprintf("CREATE TABLE %s (k, x) DISTRIBUTED BY (k)", scratch)); err != nil {
		return fmt.Errorf("loadgen: conn %d scratch: %w", id, err)
	}
	// The prepared path parses each op shape exactly once per connection.
	// The two count shapes carry distinct aliases on purpose: the plan
	// cache keys table-parameterised statements by normalized text alone
	// and validates the bound table's schema on every hit, so one shape
	// alternating between edges (v1, v2) and scratch (k, x) would fail
	// validation — and replan — every other execution.
	var insStmt, qEdges, qScratch *client.Stmt
	if !cfg.NoPrepare {
		for _, p := range []struct {
			dst **client.Stmt
			src string
		}{
			{&insStmt, "INSERT INTO $1 VALUES ($2,$3),($4,$5)"},
			{&qEdges, "SELECT count(*) AS n FROM $1 AS e"},
			{&qScratch, "SELECT count(*) AS n FROM $1 AS s"},
		} {
			if *p.dst, err = c.Prepare(p.src); err != nil {
				return fmt.Errorf("loadgen: conn %d prepare: %w", id, err)
			}
		}
	}
	rng := rand.New(rand.NewSource(int64(cfg.Seed) + int64(id)*7919))
	for op := 0; time.Now().Before(deadline); op++ {
		start := time.Now()
		var err error
		cc := op%cfg.CCEvery == cfg.CCEvery-1
		if cc {
			_, err = c.ConnectedComponents("edges", "", cfg.Seed+uint64(op))
		} else if cfg.NoPrepare {
			switch op % 3 {
			case 0:
				_, _, err = c.Exec(fmt.Sprintf("INSERT INTO %s VALUES (%d,%d),(%d,%d)",
					scratch, rng.Intn(64), rng.Intn(1000), rng.Intn(64), rng.Intn(1000)))
			case 1:
				_, _, err = c.Query("SELECT count(*) AS n FROM edges")
			default:
				_, _, err = c.Query(fmt.Sprintf("SELECT count(*) AS n FROM %s", scratch))
			}
		} else {
			switch op % 3 {
			case 0:
				_, _, err = insStmt.Exec(client.Table(scratch),
					client.Int(int64(rng.Intn(64))), client.Int(int64(rng.Intn(1000))),
					client.Int(int64(rng.Intn(64))), client.Int(int64(rng.Intn(1000))))
			case 1:
				_, _, err = qEdges.Query(client.Table("edges"))
			default:
				_, _, err = qScratch.Query(client.Table(scratch))
			}
		}
		kind := byte('q')
		if cc {
			kind = 'c'
		}
		st.note(err, start, kind)
		if op > 0 && op%256 == 0 {
			// Bound scratch growth so op latency stays flat over the soak.
			// An admission rejection here is a shed like any other op —
			// the statement never ran, the scratch table is untouched.
			switch _, _, err := c.Exec(fmt.Sprintf("DROP TABLE %s; CREATE TABLE %s (k, x) DISTRIBUTED BY (k)", scratch, scratch)); {
			case err == nil:
			case client.IsOverloaded(err):
				st.shed++
				time.Sleep(5 * time.Millisecond)
			default:
				st.failed++
			}
		}
	}
	return nil
}

// runStreamConn drives one connection's streaming op mix until deadline:
// mostly prepared INSERTs into the tenant's indexed edges table (the
// bounded-relabel insert path), a count SELECT every 4th op, and every
// DeleteEvery-th op a DELETE that exercises the rebuild trigger.
func runStreamConn(cfg *LoadgenConfig, c *client.Client, id int, deadline time.Time, st *connStats) error {
	var insStmt, cntStmt *client.Stmt
	var err error
	if !cfg.NoPrepare {
		if insStmt, err = c.Prepare("INSERT INTO $1 VALUES ($2,$3),($4,$5)"); err != nil {
			return fmt.Errorf("loadgen: conn %d prepare insert: %w", id, err)
		}
		if cntStmt, err = c.Prepare("SELECT count(*) AS n FROM $1 AS e"); err != nil {
			return fmt.Errorf("loadgen: conn %d prepare count: %w", id, err)
		}
	}
	rng := rand.New(rand.NewSource(int64(cfg.Seed) + int64(id)*7919))
	// Inserts draw vertices from twice the setup span, so the stream both
	// grows components with new vertices and merges existing ones.
	span := int64(cfg.SetupEdges) * 2
	for op := 0; time.Now().Before(deadline); op++ {
		start := time.Now()
		var err error
		var kind byte
		switch {
		case op%cfg.DeleteEvery == cfg.DeleteEvery-1:
			kind = 'd'
			_, _, err = c.Exec(fmt.Sprintf("DELETE FROM edges WHERE v1 = %d", rng.Int63n(span)))
		case op%4 == 3:
			kind = 'q'
			if cfg.NoPrepare {
				_, _, err = c.Query("SELECT count(*) AS n FROM edges")
			} else {
				_, _, err = cntStmt.Query(client.Table("edges"))
			}
		default:
			kind = 'i'
			a, b := rng.Int63n(span), rng.Int63n(span)
			x, y := rng.Int63n(span), rng.Int63n(span)
			if cfg.NoPrepare {
				_, _, err = c.Exec(fmt.Sprintf("INSERT INTO edges VALUES (%d,%d),(%d,%d)", a, b, x, y))
			} else {
				_, _, err = insStmt.Exec(client.Table("edges"),
					client.Int(a), client.Int(b), client.Int(x), client.Int(y))
			}
		}
		st.note(err, start, kind)
	}
	return nil
}

// watchStats is one watcher's tally.
type watchStats struct {
	events, gaps, shed int64
}

// runWatcher holds one Watch subscription open until deadline, counting
// events and asserting the delivery contract: strictly gap-free
// monotonic sequence numbers. An admission rejection at subscribe time
// is a shed (the 429 classification of satellite ops), retried after
// backoff like any shed statement.
func runWatcher(cfg *LoadgenConfig, id int, deadline time.Time, ws *watchStats) error {
	tenant := loadgenTenant(id % cfg.Tenants)
	var w *client.Watch
	var c *client.Client
	for {
		var err error
		c, err = client.Dial(cfg.Addr, tenant, cfg.AuthToken)
		if err != nil {
			return fmt.Errorf("loadgen: watcher %d dial: %w", id, err)
		}
		w, err = c.Subscribe("edges")
		if err == nil {
			break
		}
		c.Close()
		if client.IsOverloaded(err) && time.Now().Before(deadline) {
			ws.shed++
			time.Sleep(5 * time.Millisecond)
			continue
		}
		return fmt.Errorf("loadgen: watcher %d subscribe: %w", id, err)
	}
	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	seq := w.StartSeq()
	for {
		select {
		case ev, ok := <-w.Events():
			if !ok {
				// Server-side disconnect mid-run (drain or overflow) would
				// lose events; surface it as a failure of the soak.
				return fmt.Errorf("loadgen: watcher %d stream closed: %v", id, w.Err())
			}
			ws.events++
			if ev.Seq != seq+1 {
				ws.gaps++
			}
			seq = ev.Seq
		case <-timer.C:
			c.Close()
			for range w.Events() { // release the pump goroutine
			}
			return nil
		}
	}
}

// percentile returns the p-quantile (0 < p <= 1) of sorted durations in
// milliseconds.
func percentile(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return float64(sorted[i]) / float64(time.Millisecond)
}

// RunLoadgen loads each tenant's graph, drives Connections concurrent
// clients against the server for Duration, and reports client-observed
// latency percentiles together with the server's final admission stats.
// Operation errors are counted (failed/shed), not returned; the error
// return covers setup and the final stats fetch only.
func RunLoadgen(cfg LoadgenConfig, progress func(string)) (*ServerJSON, error) {
	cfg.defaults()
	for i := 0; i < cfg.Tenants; i++ {
		if err := setupTenant(&cfg, loadgenTenant(i), cfg.Seed+uint64(i)); err != nil {
			return nil, err
		}
	}
	if progress != nil {
		progress(fmt.Sprintf("loadgen: %d connections over %d tenants for %s (prepared=%v)", cfg.Connections, cfg.Tenants, cfg.Duration, !cfg.NoPrepare))
	}

	// Pre-run snapshot: the hit rate is computed over the measurement
	// window only, so setup inserts and prior runs don't dilute it.
	before, err := fetchServerStats(&cfg)
	if err != nil {
		return nil, err
	}

	deadline := time.Now().Add(cfg.Duration)
	stats := make([]connStats, cfg.Connections)
	errs := make([]error, cfg.Connections)
	watchers := 0
	if cfg.Stream {
		watchers = cfg.Watchers
	}
	wstats := make([]watchStats, watchers)
	werrs := make([]error, watchers)
	var wg sync.WaitGroup
	for i := 0; i < watchers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			werrs[i] = runWatcher(&cfg, i, deadline, &wstats[i])
		}(i)
	}
	for i := 0; i < cfg.Connections; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = runConn(&cfg, i, deadline, &stats[i])
		}(i)
	}
	wg.Wait()
	for _, err := range append(errs, werrs...) {
		if err != nil {
			return nil, err
		}
	}

	out := &ServerJSON{
		Addr:         cfg.Addr,
		Connections:  cfg.Connections,
		Tenants:      cfg.Tenants,
		DurationSecs: cfg.Duration.Seconds(),
		NoPrepare:    cfg.NoPrepare,
	}
	var all, inserts []time.Duration
	for i := range stats {
		out.Ops += stats[i].ops
		out.SQLOps += stats[i].sqlOps
		out.CCOps += stats[i].ccOps
		out.Failed += stats[i].failed
		out.Shed += stats[i].shed
		out.InsertOps += stats[i].inserts
		out.DeleteOps += stats[i].deletes
		all = append(all, stats[i].latencies...)
		inserts = append(inserts, stats[i].insertLatencies...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	out.P50Millis = percentile(all, 0.50)
	out.P95Millis = percentile(all, 0.95)
	out.P99Millis = percentile(all, 0.99)
	out.MaxMillis = percentile(all, 1)
	if cfg.Stream {
		out.Stream = true
		out.Watchers = cfg.Watchers
		sort.Slice(inserts, func(i, j int) bool { return inserts[i] < inserts[j] })
		out.InsertP50Millis = percentile(inserts, 0.50)
		out.InsertP95Millis = percentile(inserts, 0.95)
		out.InsertP99Millis = percentile(inserts, 0.99)
		for i := range wstats {
			out.WatchEvents += wstats[i].events
			out.SeqGaps += wstats[i].gaps
			out.Shed += wstats[i].shed
		}
	}

	st, err := fetchServerStats(&cfg)
	if err != nil {
		return nil, err
	}
	out.ServerStatements = st.Statements
	out.ServerFailed = st.Failed
	out.ServerShed = st.Shed
	out.QueueDepth = st.QueueDepth
	out.PeakQueueDepth = st.PeakQueueDepth
	var queueNanos int64
	for _, ts := range st.Tenants {
		queueNanos += ts.QueueNanos
	}
	out.QueueMillis = float64(queueNanos) / float64(time.Millisecond)

	out.ServerPrepared = st.Prepared
	out.Parses = st.Parses - before.Parses
	out.PlanCacheHits = st.PlanCacheHits - before.PlanCacheHits
	out.PlanCacheMisses = st.PlanCacheMisses - before.PlanCacheMisses
	if looked := out.PlanCacheHits + out.PlanCacheMisses; looked > 0 {
		out.PlanCacheHitRate = float64(out.PlanCacheHits) / float64(looked)
	}
	if cfg.Stream {
		out.IndexMerges = st.IndexMerges - before.IndexMerges
		out.IndexRebuilds = st.IndexRebuilds - before.IndexRebuilds
		out.Notifies = st.Notifies - before.Notifies
		if out.InsertOps > 0 {
			out.RelabelsPerInsert = float64(st.IndexLabelsTouched-before.IndexLabelsTouched) / float64(out.InsertOps)
		}
	}
	return out, nil
}

// fetchServerStats dials the server for one stats snapshot.
func fetchServerStats(cfg *LoadgenConfig) (*wire.ServerStats, error) {
	c, err := client.Dial(cfg.Addr, loadgenTenant(0), cfg.AuthToken)
	if err != nil {
		return nil, fmt.Errorf("loadgen: stats dial: %w", err)
	}
	defer c.Close()
	st, err := c.ServerStats()
	if err != nil {
		return nil, fmt.Errorf("loadgen: stats: %w", err)
	}
	return st, nil
}

// LoadgenDataset is the Dataset name of server-soak reports
// (BENCH_server-soak.json); StreamDataset names the streaming op-mix
// variant (BENCH_stream-soak.json).
const (
	LoadgenDataset = "server-soak"
	StreamDataset  = "stream-soak"
)

// WriteLoadgenReport runs the load generator and writes its result as a
// BENCH report (dataset "server-soak", or "stream-soak" in stream mode;
// no algorithm table, the server section populated) into dir, returning
// the report and its path.
func WriteLoadgenReport(dir string, benchCfg Config, cfg LoadgenConfig, progress func(string)) (*BenchJSON, string, error) {
	srv, err := RunLoadgen(cfg, progress)
	if err != nil {
		return nil, "", err
	}
	dataset := LoadgenDataset
	if cfg.Stream {
		dataset = StreamDataset
	}
	rep := &BenchJSON{
		SchemaVersion: JSONSchemaVersion,
		Dataset:       dataset,
		Scale:         benchCfg.Scale,
		Segments:      benchCfg.Segments,
		Seed:          cfg.Seed,
		Algorithms:    []AlgorithmJSON{},
		Server:        srv,
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, "", err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, "", err
	}
	path := filepath.Join(dir, JSONFileName(dataset))
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return nil, "", err
	}
	return rep, path, nil
}
