package bench

import (
	"fmt"
	"io"
	"sync"
	"time"

	"dbcc/internal/ccalg"
	"dbcc/internal/datagen"
	"dbcc/internal/engine"
	"dbcc/internal/graph"
	"dbcc/internal/verify"
)

// ConcurrencyExperiment exercises the multi-session engine: n sessions run
// Randomised Contraction on n different R-MAT graphs against ONE shared
// cluster, first one after another and then all at once. Both passes must
// produce correct labellings; the report compares the wall-clock times and
// prints the engine's concurrency gauges (peak simultaneously executing
// statements). Because every session's segment tasks drain through one
// worker pool bounded by the cluster's worker budget, the concurrent pass
// overlaps the per-round SQL latencies without oversubscribing the host.
func ConcurrencyExperiment(w io.Writer, cfg Config, sessions int) {
	fmt.Fprintf(w, "EXPERIMENT E11 — CONCURRENT SESSIONS (%d x Randomised Contraction, one shared cluster)\n", sessions)

	type sessionJob struct {
		table string
		g     *graph.Graph
	}
	newCluster := func() (*engine.Cluster, []sessionJob, bool) {
		c := engine.NewCluster(engine.Options{Segments: cfg.Segments})
		ccalg.RegisterUDFs(c)
		jobs := make([]sessionJob, sessions)
		for i := range jobs {
			edges := int(cfg.Scale * float64(20000+4000*i))
			if edges < 200 {
				edges = 200
			}
			g := datagen.RMAT(14, edges, 0.57, 0.19, 0.19, 0.05, cfg.Seed+uint64(i))
			jobs[i] = sessionJob{table: fmt.Sprintf("conc_in_%d", i), g: g}
			if err := graph.Load(c, jobs[i].table, g); err != nil {
				fmt.Fprintf(w, "load session %d: %v\n", i, err)
				return nil, nil, false
			}
		}
		return c, jobs, true
	}
	runOne := func(c *engine.Cluster, j sessionJob, seed uint64) error {
		res, err := ccalg.RandomisedContraction(c, j.table, ccalg.Options{Seed: seed})
		if err != nil {
			return err
		}
		if cfg.Verify {
			return verify.Labelling(j.g, res.Labels)
		}
		return nil
	}

	// Pass 1: the same workload, one session at a time.
	c, jobs, ok := newCluster()
	if !ok {
		return
	}
	soloStart := time.Now()
	for i, j := range jobs {
		if err := runOne(c, j, cfg.Seed+uint64(i)); err != nil {
			fmt.Fprintf(w, "solo session %d: %v\n", i, err)
			return
		}
	}
	solo := time.Since(soloStart).Seconds()

	// Pass 2: all sessions at once on a fresh cluster.
	c, jobs, ok = newCluster()
	if !ok {
		return
	}
	var wg sync.WaitGroup
	errs := make([]error, sessions)
	concStart := time.Now()
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j sessionJob) {
			defer wg.Done()
			errs[i] = runOne(c, j, cfg.Seed+uint64(i))
		}(i, j)
	}
	wg.Wait()
	conc := time.Since(concStart).Seconds()
	for i, err := range errs {
		if err != nil {
			fmt.Fprintf(w, "concurrent session %d: %v\n", i, err)
			return
		}
	}

	cs := c.ConcurrencyStats()
	fmt.Fprintf(w, "%-28s %10s\n", "", "seconds")
	fmt.Fprintf(w, "%-28s %10.2f\n", "sequential (one at a time)", solo)
	fmt.Fprintf(w, "%-28s %10.2f\n", "concurrent (all at once)", conc)
	if conc > 0 {
		fmt.Fprintf(w, "%-28s %9.2fx\n", "throughput gain", solo/conc)
	}
	fmt.Fprintf(w, "worker budget %d, peak concurrent statements %d, statements total %d\n",
		c.Workers(), cs.Peak, cs.Total)
	if cfg.Verify {
		fmt.Fprintln(w, "(every labelling verified against the Union/Find oracle in both passes)")
	}
}
