package bench

import (
	"context"
	"encoding/json"
	"os"
	"testing"
	"time"

	"dbcc"
	"dbcc/internal/server"
)

// startSoakServer boots an in-process ccserverd on a free port and tears
// it down (graceful drain) with the test.
func startSoakServer(t *testing.T) *server.Server {
	t.Helper()
	srv := server.New(server.Config{
		Addr: "127.0.0.1:0",
		DB:   dbcc.Config{Segments: 2},
		// Generous admission limits: the short soak asserts zero shed.
		Admission: server.AdmissionConfig{TenantStatements: 8, TenantQueue: 64, QueueTimeout: time.Minute},
	})
	if err := srv.Listen(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return srv
}

// TestLoadgenSoak is the server-soak contract in miniature: a short mixed
// SQL + CC run over the wire must complete with zero failures, zero sheds
// (admission limits are generous) and sane latency percentiles.
func TestLoadgenSoak(t *testing.T) {
	srv := startSoakServer(t)
	rep, err := RunLoadgen(LoadgenConfig{
		Addr:        srv.Addr(),
		Connections: 4,
		Tenants:     2,
		Duration:    2 * time.Second,
		Seed:        2019,
		SetupEdges:  120,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops == 0 || rep.SQLOps == 0 || rep.CCOps == 0 {
		t.Fatalf("soak did no work: %+v", rep)
	}
	if rep.Failed != 0 || rep.Shed != 0 {
		t.Fatalf("soak failed=%d shed=%d: %+v", rep.Failed, rep.Shed, rep)
	}
	if rep.P50Millis <= 0 || rep.P99Millis < rep.P50Millis || rep.MaxMillis < rep.P99Millis {
		t.Fatalf("latency percentiles out of order: p50=%.2f p95=%.2f p99=%.2f max=%.2f",
			rep.P50Millis, rep.P95Millis, rep.P99Millis, rep.MaxMillis)
	}
	if rep.ServerStatements == 0 {
		t.Fatalf("server counted no statements: %+v", rep)
	}
	if rep.ServerShed != 0 || rep.ServerFailed != 0 {
		t.Fatalf("server-side shed=%d failed=%d", rep.ServerShed, rep.ServerFailed)
	}
	if rep.NoPrepare {
		t.Fatalf("default soak should use the prepared path: %+v", rep)
	}
	if rep.ServerPrepared == 0 {
		t.Fatalf("prepared path served no Prepare frames: %+v", rep)
	}
	// The CI soak lane requires ≥ 0.90 after warmup; even this 2-second
	// run clears it, since only first executions and CC-template builds
	// miss.
	if rep.PlanCacheHitRate < 0.90 {
		t.Fatalf("plan-cache hit rate %.3f < 0.90 (hits=%d misses=%d)",
			rep.PlanCacheHitRate, rep.PlanCacheHits, rep.PlanCacheMisses)
	}
}

// TestLoadgenNoPrepare is the ablation leg: the text-only path must still
// complete cleanly and must re-parse per statement — the INSERTs carry
// fresh literals every op, so the parse count scales with the op count
// instead of the shape count.
func TestLoadgenNoPrepare(t *testing.T) {
	srv := startSoakServer(t)
	rep, err := RunLoadgen(LoadgenConfig{
		Addr:        srv.Addr(),
		Connections: 2,
		Tenants:     1,
		Duration:    time.Second,
		Seed:        2019,
		SetupEdges:  60,
		NoPrepare:   true,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.NoPrepare {
		t.Fatalf("ablation flag not recorded: %+v", rep)
	}
	if rep.Failed != 0 || rep.Shed != 0 {
		t.Fatalf("ablation failed=%d shed=%d", rep.Failed, rep.Shed)
	}
	if rep.Parses < rep.SQLOps {
		t.Fatalf("text path parsed %d < %d sql ops", rep.Parses, rep.SQLOps)
	}
}

// TestLoadgenSetupIdempotent re-runs the tenant setup against the same
// server: the second pass must replace the first tenant graph, not fail on
// the existing table.
func TestLoadgenSetupIdempotent(t *testing.T) {
	srv := startSoakServer(t)
	cfg := LoadgenConfig{Addr: srv.Addr(), SetupEdges: 50}
	cfg.defaults()
	for i := 0; i < 2; i++ {
		if err := setupTenant(&cfg, "reuse", 7); err != nil {
			t.Fatalf("setup pass %d: %v", i, err)
		}
	}
}

// TestWriteLoadgenReport checks the schema-v6 report file: dataset
// "server-soak", the server section populated, and a round-trip decode.
func TestWriteLoadgenReport(t *testing.T) {
	srv := startSoakServer(t)
	dir := t.TempDir()
	rep, path, err := WriteLoadgenReport(dir, Config{Scale: 1, Segments: 2}, LoadgenConfig{
		Addr:        srv.Addr(),
		Connections: 2,
		Tenants:     1,
		Duration:    time.Second,
		Seed:        2019,
		SetupEdges:  60,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SchemaVersion != JSONSchemaVersion || rep.Dataset != LoadgenDataset || rep.Server == nil {
		t.Fatalf("report header: %+v", rep)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rt BenchJSON
	if err := json.Unmarshal(data, &rt); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if rt.Server == nil || rt.Server.Ops != rep.Server.Ops {
		t.Fatalf("round-tripped server section: %+v", rt.Server)
	}
}

func TestPercentile(t *testing.T) {
	var ds []time.Duration
	for i := 1; i <= 100; i++ {
		ds = append(ds, time.Duration(i)*time.Millisecond)
	}
	if got := percentile(ds, 0.50); got != 50 {
		t.Fatalf("p50 = %v", got)
	}
	if got := percentile(ds, 0.99); got != 99 {
		t.Fatalf("p99 = %v", got)
	}
	if got := percentile(ds, 1); got != 100 {
		t.Fatalf("p100 = %v", got)
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Fatalf("empty percentile = %v", got)
	}
}

// TestLoadgenStream is the stream-soak contract in miniature: the
// streaming op mix (indexed inserts, periodic rebuild-triggering deletes,
// live watchers) must complete with zero failures and zero sheds, record
// insert-only percentiles, show bounded relabel work per insert, rebuild
// at least once, and deliver gap-free watcher sequences.
func TestLoadgenStream(t *testing.T) {
	srv := startSoakServer(t)
	rep, err := RunLoadgen(LoadgenConfig{
		Addr:        srv.Addr(),
		Connections: 4,
		Tenants:     2,
		Duration:    2 * time.Second,
		Seed:        2019,
		SetupEdges:  120,
		Stream:      true,
		Watchers:    3,
		DeleteEvery: 48,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Stream || rep.Watchers != 3 {
		t.Fatalf("stream flags not recorded: %+v", rep)
	}
	if rep.InsertOps == 0 || rep.DeleteOps == 0 || rep.SQLOps == 0 {
		t.Fatalf("stream mix did no work: %+v", rep)
	}
	if rep.Failed != 0 || rep.Shed != 0 {
		t.Fatalf("stream failed=%d shed=%d: %+v", rep.Failed, rep.Shed, rep)
	}
	if rep.InsertP50Millis <= 0 || rep.InsertP99Millis < rep.InsertP50Millis {
		t.Fatalf("insert percentiles out of order: p50=%.2f p95=%.2f p99=%.2f",
			rep.InsertP50Millis, rep.InsertP95Millis, rep.InsertP99Millis)
	}
	if rep.RelabelsPerInsert <= 0 || rep.RelabelsPerInsert > 64 {
		// Two edges per insert; amortised union-find work is a handful of
		// pointer writes each — far below this generous ceiling, while a
		// recompute-per-insert would blow past it.
		t.Fatalf("relabels/insert = %.2f outside (0, 64]", rep.RelabelsPerInsert)
	}
	if rep.IndexRebuilds == 0 {
		t.Fatalf("deletes triggered no rebuilds: %+v", rep)
	}
	if rep.IndexMerges == 0 || rep.Notifies == 0 || rep.WatchEvents == 0 {
		t.Fatalf("no fan-out observed: merges=%d notifies=%d watch_events=%d",
			rep.IndexMerges, rep.Notifies, rep.WatchEvents)
	}
	if rep.SeqGaps != 0 {
		t.Fatalf("watchers observed %d sequence gaps", rep.SeqGaps)
	}
	if rep.PlanCacheHitRate < 0.90 {
		t.Fatalf("stream plan-cache hit rate %.3f < 0.90 (hits=%d misses=%d)",
			rep.PlanCacheHitRate, rep.PlanCacheHits, rep.PlanCacheMisses)
	}
}
