package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dbcc/internal/ccalg"
	"dbcc/internal/engine"
	"dbcc/internal/graph"
	"dbcc/internal/verify"
)

// JSONSchemaVersion identifies the BENCH_*.json layout; bump it whenever a
// field is added, removed or renamed so downstream consumers (the CI
// bench-smoke job, plotting scripts) can detect mismatches.
//
// Version 2 added partial (rounds completed before a failed run aborted)
// and the fault-tolerance counters retries/faults.
//
// Version 3 added the memory-bounded-execution accounting: the campaign's
// memory_budget and, per algorithm, peak_work_bytes, spilled_bytes,
// spill_partitions and spill_passes.
//
// Version 4 added the data-movement kernel accounting: the campaign's
// bloom_join and operator_fusion flags and, per algorithm, the bloom-join
// pruning counters bloom_checked, bloom_skipped and shuffle_saved_bytes.
//
// Version 5 added the optional server section: wire-protocol load-generator
// results against a running ccserverd — client-observed latency percentiles
// (p50/p95/p99), shed and failure counts, and the server's admission-queue
// accounting. Reports without a server run omit the section.
//
// Version 6 added the prepared-statement accounting: per algorithm and per
// round, parses / plan_hits / plan_misses expose how much planning work the
// plan cache amortised; the server section gained the no_prepare ablation
// flag, window parse counts and the plan-cache hit rate.
//
// Version 7 added the streaming section of server reports (stream mode —
// dataset "stream-soak"): stream/watchers flags, insert_ops/delete_ops,
// insert-only latency percentiles insert_p50_ms/insert_p95_ms/insert_p99_ms,
// the bounded-work witness relabels_per_insert, the window deltas
// index_merges/index_rebuilds/notifies, and the watcher-observed
// watch_events/seq_gaps (a healthy run reports seq_gaps == 0).
//
// Version 8 added the frontier report (ccbench -experiment frontier —
// BENCH_frontier.json): experiment tag plus per-(dataset, algorithm)
// entries with rounds, wall_secs, peak_bytes and the derived flag marking
// closed-form round counts that were not run to completion.
const JSONSchemaVersion = 8

// RoundJSON is one algorithm round in the machine-readable report — the
// serialised form of ccalg.RoundStats.
type RoundJSON struct {
	Round        int   `json:"round"`
	LiveVertices int64 `json:"live_vertices"`
	LiveEdges    int64 `json:"live_edges"`
	Queries      int64 `json:"queries"`
	RowsWritten  int64 `json:"rows_written"`
	BytesWritten int64 `json:"bytes_written"`
	Parses       int64 `json:"parses"`      // statements parsed during the round
	PlanHits     int64 `json:"plan_hits"`   // plan-cache hits during the round
	PlanMisses   int64 `json:"plan_misses"` // plan-cache misses during the round
}

// AlgorithmJSON is one algorithm's run on one dataset: the whole-run
// engine accounting (the machine-readable Tables III–V cell) plus the
// per-round measurement stream. Error is empty for clean runs; DNF marks
// the paper's "did not finish" storage-wall outcome.
type AlgorithmJSON struct {
	Name         string      `json:"name"`
	FullName     string      `json:"full_name"`
	DNF          bool        `json:"dnf"`
	Error        string      `json:"error"`
	Partial      int         `json:"partial"` // rounds completed before a failing run aborted
	Retries      int64       `json:"retries"` // segment-task retries (fault injection)
	Faults       int64       `json:"faults"`  // injected segment faults
	Rounds       int         `json:"rounds"`
	Queries      int64       `json:"queries"`
	RowsWritten  int64       `json:"rows_written"`
	BytesWritten int64       `json:"bytes_written"`
	PeakBytes    int64       `json:"peak_bytes"`
	ShuffleBytes int64       `json:"shuffle_bytes"`
	ShuffleSaved int64       `json:"shuffle_saved_bytes"` // shuffle bytes pruned by bloom-join filters
	BloomChecked int64       `json:"bloom_checked"`       // probe rows tested against build-side bloom filters
	BloomSkipped int64       `json:"bloom_skipped"`       // probe rows dropped before crossing segments
	PeakWork     int64       `json:"peak_work_bytes"`     // peak accounted working memory
	Spilled      int64       `json:"spilled_bytes"`       // bytes written to spill partitions
	SpillParts   int64       `json:"spill_partitions"`    // partition files created
	SpillPasses  int64       `json:"spill_passes"`        // partitioning passes (recursion included)
	Parses       int64       `json:"parses"`              // SQL statements parsed over the run
	PlanHits     int64       `json:"plan_hits"`           // plan-cache hits over the run
	PlanMisses   int64       `json:"plan_misses"`         // plan-cache misses over the run
	MeanSecs     float64     `json:"mean_secs"`
	Components   int         `json:"components"`
	RoundLog     []RoundJSON `json:"round_log"`
}

// BenchJSON is the per-dataset benchmark report written as
// BENCH_<dataset>.json by ccbench -json.
type BenchJSON struct {
	SchemaVersion  int             `json:"schema_version"`
	Dataset        string          `json:"dataset"`
	Scale          float64         `json:"scale"`
	Segments       int             `json:"segments"`
	Seed           uint64          `json:"seed"`
	MemoryBudget   int64           `json:"memory_budget"`   // bytes per statement; 0 = unbounded
	BloomJoin      bool            `json:"bloom_join"`      // bloom-join shuffle pruning enabled
	OperatorFusion bool            `json:"operator_fusion"` // scan→filter→project fusion enabled
	Vertices       int64           `json:"vertices"`
	Edges          int64           `json:"edges"`
	Algorithms     []AlgorithmJSON `json:"algorithms"`
	// Server holds server-soak load-generator results (ccbench -loadgen);
	// nil for ordinary dataset reports.
	Server *ServerJSON `json:"server,omitempty"`
}

// jsonAlgorithm is one entry of a JSON report's run list.
type jsonAlgorithm struct {
	Name, FullName string
	Run            ccalg.Func
	RC             ccalg.RCOptions
}

// jsonAlgorithms returns the runs of a JSON report: the four table
// algorithms of Tables III–V plus the deterministic RC variant, whose
// query count is reproducible for a fixed seed and scale and therefore
// anchors the CI baseline comparison.
func jsonAlgorithms() []jsonAlgorithm {
	var out []jsonAlgorithm
	for _, info := range TableAlgorithms() {
		out = append(out, jsonAlgorithm{Name: info.Name, FullName: info.FullName, Run: info.Run})
	}
	out = append(out, jsonAlgorithm{
		Name:     "rc-det",
		FullName: "Randomised Contraction (deterministic)",
		Run:      ccalg.RandomisedContraction,
		RC:       ccalg.RCOptions{Deterministic: true},
	})
	return out
}

// JSONReport runs every report algorithm once on the dataset (each on a
// fresh cluster) and assembles the machine-readable report. One repetition
// per algorithm keeps the CI smoke run fast; the deterministic entries
// (query counts, rows, rounds) do not vary across repetitions anyway.
func JSONReport(ds Dataset, cfg Config, capacity int64) *BenchJSON {
	g := ds.Gen(cfg.Scale, cfg.Seed)
	rep := &BenchJSON{
		SchemaVersion:  JSONSchemaVersion,
		Dataset:        ds.Name,
		Scale:          cfg.Scale,
		Segments:       cfg.Segments,
		Seed:           cfg.Seed,
		MemoryBudget:   cfg.MemoryBudget,
		BloomJoin:      !cfg.DisableBloomJoin,
		OperatorFusion: !cfg.DisableOperatorFusion,
		Vertices:       int64(g.NumVertices()),
		Edges:          int64(g.NumEdges()),
	}
	for _, a := range jsonAlgorithms() {
		aj := AlgorithmJSON{Name: a.Name, FullName: a.FullName, RoundLog: []RoundJSON{}}
		c := engine.NewCluster(clusterOptions(cfg))
		if err := graph.Load(c, "input", g); err != nil {
			aj.Error = err.Error()
			rep.Algorithms = append(rep.Algorithms, aj)
			c.Close()
			continue
		}
		input := c.Stats().LiveBytes
		c.ResetStats()
		opts := ccalg.Options{
			Seed:         cfg.Seed,
			MaxLiveBytes: capacity,
			RC:           a.RC,
			// Stream rounds into the report as they finish, so partial logs
			// survive a storage-wall abort.
			OnRound: func(rs ccalg.RoundStats) {
				aj.RoundLog = append(aj.RoundLog, RoundJSON{
					Round:        rs.Round,
					LiveVertices: rs.LiveVertices,
					LiveEdges:    rs.LiveEdges,
					Queries:      rs.Queries,
					RowsWritten:  rs.RowsWritten,
					BytesWritten: rs.BytesWritten,
					Parses:       rs.Parses,
					PlanHits:     rs.PlanHits,
					PlanMisses:   rs.PlanMisses,
				})
			},
		}
		start := time.Now()
		res, err := a.Run(c, "input", opts)
		aj.MeanSecs = time.Since(start).Seconds()
		st := c.Stats()
		aj.Queries = st.Queries
		aj.RowsWritten = st.RowsWritten
		aj.BytesWritten = st.BytesWritten
		aj.PeakBytes = st.PeakBytes - input
		aj.ShuffleBytes = st.ShuffleBytes
		aj.ShuffleSaved = st.ShuffleSavedBytes
		aj.BloomChecked, aj.BloomSkipped = c.BloomTotals()
		aj.PeakWork = st.PeakWorkBytes
		aj.Spilled = st.SpilledBytes
		aj.SpillParts = st.SpillPartitions
		aj.SpillPasses = st.SpillPasses
		aj.Parses = st.Parses
		aj.PlanHits = st.PlanCacheHits
		aj.PlanMisses = st.PlanCacheMisses
		aj.Retries, aj.Faults, _ = c.FaultTotals()
		var re *ccalg.RoundError
		if errors.As(err, &re) {
			aj.Partial = len(re.RoundLog)
		}
		switch {
		case errors.Is(err, ccalg.ErrSpaceLimit):
			aj.DNF = true
		case err != nil:
			aj.Error = err.Error()
		default:
			aj.Rounds = res.Rounds
			aj.Components = res.Labels.NumComponents()
			if cfg.Verify {
				if verr := verify.Labelling(g, res.Labels); verr != nil {
					aj.Error = verr.Error()
				}
			}
		}
		rep.Algorithms = append(rep.Algorithms, aj)
		c.Close()
	}
	return rep
}

// JSONFileName maps a dataset name to its report file name
// (spaces become underscores): "Bitcoin addresses" →
// "BENCH_Bitcoin_addresses.json".
func JSONFileName(dataset string) string {
	return "BENCH_" + strings.ReplaceAll(dataset, " ", "_") + ".json"
}

// WriteJSONReports runs the JSON report for each dataset and writes
// BENCH_<dataset>.json files into dir (created if needed), returning the
// reports alongside their file paths.
func WriteJSONReports(dir string, datasets []Dataset, cfg Config, progress func(string)) ([]*BenchJSON, []string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	capacity := capacityBytes(cfg)
	var reps []*BenchJSON
	var paths []string
	for _, ds := range datasets {
		if progress != nil {
			progress(ds.Name + " (json)")
		}
		rep := JSONReport(ds, cfg, capacity)
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return nil, nil, err
		}
		path := filepath.Join(dir, JSONFileName(ds.Name))
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return nil, nil, err
		}
		reps = append(reps, rep)
		paths = append(paths, path)
	}
	return reps, paths, nil
}

// Baseline is the committed reference the CI bench-smoke job checks
// reports against: the deterministic-RC query count per dataset, with a
// relative tolerance for benign drift (for example a convergence-check
// tweak changing the per-round statement count by one).
type Baseline struct {
	// Tolerance is the allowed relative deviation of the actual query
	// count from the expected one (0.1 = ±10%).
	Tolerance float64 `json:"tolerance"`
	// RCDetQueries maps dataset name to the expected whole-run query count
	// of the deterministic RC variant.
	RCDetQueries map[string]int64 `json:"rc_det_queries"`
	// RCDetShuffleBytes maps dataset name to the expected whole-run shuffle
	// traffic of the deterministic RC variant with bloom-join pruning
	// enabled — the envelope that catches a silent regression of the
	// shuffle pruning (bytes creeping back up) as well as an accounting bug
	// (bytes collapsing). Datasets absent from the map skip the check, so
	// pre-pruning baselines stay loadable.
	RCDetShuffleBytes map[string]int64 `json:"rc_det_shuffle_bytes"`
}

// LoadBaseline reads a committed baseline file.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("bench: baseline %s: %w", path, err)
	}
	return &b, nil
}

// Check compares a report's deterministic-RC query count against the
// baseline, failing on datasets missing from the baseline and on
// deviations beyond the tolerance. A nil error means the report is within
// the committed envelope.
func (b *Baseline) Check(rep *BenchJSON) error {
	expected, ok := b.RCDetQueries[rep.Dataset]
	if !ok {
		return fmt.Errorf("bench: dataset %q has no baseline entry; regenerate the baseline", rep.Dataset)
	}
	var actual, shuffle int64 = -1, -1
	for _, a := range rep.Algorithms {
		if a.Name == "rc-det" {
			if a.Error != "" {
				return fmt.Errorf("bench: %s: deterministic RC failed: %s", rep.Dataset, a.Error)
			}
			if a.DNF {
				return fmt.Errorf("bench: %s: deterministic RC hit the storage wall", rep.Dataset)
			}
			actual = a.Queries
			shuffle = a.ShuffleBytes
		}
	}
	if actual < 0 {
		return fmt.Errorf("bench: %s: report has no rc-det entry", rep.Dataset)
	}
	dev := float64(actual-expected) / float64(expected)
	if dev < 0 {
		dev = -dev
	}
	if dev > b.Tolerance {
		return fmt.Errorf("bench: %s: deterministic RC issued %d queries, baseline expects %d (±%.0f%%); "+
			"if the change is intended, update the baseline file",
			rep.Dataset, actual, expected, 100*b.Tolerance)
	}
	if expectedShuffle, ok := b.RCDetShuffleBytes[rep.Dataset]; ok && rep.BloomJoin {
		sdev := float64(shuffle-expectedShuffle) / float64(expectedShuffle)
		if sdev < 0 {
			sdev = -sdev
		}
		if sdev > b.Tolerance {
			return fmt.Errorf("bench: %s: deterministic RC shuffled %d bytes, baseline expects %d (±%.0f%%); "+
				"a higher count means bloom-join pruning regressed — if the change is intended, update the baseline file",
				rep.Dataset, shuffle, expectedShuffle, 100*b.Tolerance)
		}
	}
	return nil
}
