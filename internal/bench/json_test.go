package bench

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"dbcc/internal/datagen"
	"dbcc/internal/graph"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// tinyDataset is a fast synthetic dataset for report tests.
func tinyDataset() Dataset {
	return Dataset{
		Name: "Tiny test",
		Gen: func(s float64, seed uint64) *graph.Graph {
			return datagen.Bitcoin(120, seed)
		},
	}
}

func tinyConfig() Config {
	return Config{Scale: 1, Segments: 4, Reps: 1, Seed: 2019, Verify: true}
}

// keyPaths flattens a decoded JSON value into its set of field paths
// (arrays contribute "[]" segments), ignoring the values — the shape of
// the document, independent of timings and counts.
func keyPaths(prefix string, v any, out map[string]bool) {
	switch v := v.(type) {
	case map[string]any:
		for k, child := range v {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			out[p] = true
			keyPaths(p, child, out)
		}
	case []any:
		for _, child := range v {
			keyPaths(prefix+"[]", child, out)
		}
	}
}

// TestJSONSchemaGolden locks the BENCH_*.json document shape against the
// committed golden file: adding, removing or renaming a field fails until
// the golden (and JSONSchemaVersion) are updated deliberately. Run with
// -update to rewrite the golden.
func TestJSONSchemaGolden(t *testing.T) {
	rep := JSONReport(tinyDataset(), tinyConfig(), 0)
	for _, a := range rep.Algorithms {
		if a.Error != "" {
			t.Fatalf("%s failed: %s", a.Name, a.Error)
		}
		if len(a.RoundLog) == 0 {
			t.Fatalf("%s has no round log; the golden needs every array populated", a.Name)
		}
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var decoded any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	set := map[string]bool{}
	keyPaths("", decoded, set)
	paths := make([]string, 0, len(set))
	for p := range set {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	got := strings.Join(paths, "\n") + "\n"

	golden := filepath.Join("testdata", "bench_schema_golden.txt")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("BENCH json schema drifted from %s (run with -update and bump JSONSchemaVersion if intended)\ngot:\n%s\nwant:\n%s",
			golden, got, want)
	}
}

// TestJSONReportContents sanity-checks the report values the schema test
// ignores.
func TestJSONReportContents(t *testing.T) {
	rep := JSONReport(tinyDataset(), tinyConfig(), 0)
	if rep.SchemaVersion != JSONSchemaVersion {
		t.Fatalf("schema version %d, want %d", rep.SchemaVersion, JSONSchemaVersion)
	}
	if rep.Vertices <= 0 || rep.Edges <= 0 {
		t.Fatalf("report sizes v=%d e=%d", rep.Vertices, rep.Edges)
	}
	names := map[string]bool{}
	for _, a := range rep.Algorithms {
		names[a.Name] = true
		if a.Queries <= 0 || a.RowsWritten <= 0 {
			t.Fatalf("%s: queries=%d rows=%d", a.Name, a.Queries, a.RowsWritten)
		}
		if a.Rounds == 0 || a.Components <= 0 {
			t.Fatalf("%s: rounds=%d components=%d", a.Name, a.Rounds, a.Components)
		}
		var qsum int64
		for _, r := range a.RoundLog {
			qsum += r.Queries
		}
		if qsum <= 0 || qsum > a.Queries {
			t.Fatalf("%s: round queries sum %d vs whole-run %d", a.Name, qsum, a.Queries)
		}
	}
	for _, want := range []string{"rc", "hm", "tp", "cr", "rc-det"} {
		if !names[want] {
			t.Fatalf("report is missing algorithm %q (has %v)", want, names)
		}
	}
}

func TestWriteJSONReportsAndFileName(t *testing.T) {
	if got := JSONFileName("Bitcoin addresses"); got != "BENCH_Bitcoin_addresses.json" {
		t.Fatalf("JSONFileName = %q", got)
	}
	dir := t.TempDir()
	reps, paths, err := WriteJSONReports(dir, []Dataset{tinyDataset()}, tinyConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 1 || len(paths) != 1 {
		t.Fatalf("got %d reports, %d paths", len(reps), len(paths))
	}
	data, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	var rt BenchJSON
	if err := json.Unmarshal(data, &rt); err != nil {
		t.Fatalf("written report does not round-trip: %v", err)
	}
	if rt.Dataset != "Tiny test" {
		t.Fatalf("round-tripped dataset %q", rt.Dataset)
	}
}

func TestBaselineCheck(t *testing.T) {
	rep := JSONReport(tinyDataset(), tinyConfig(), 0)
	var det int64
	for _, a := range rep.Algorithms {
		if a.Name == "rc-det" {
			det = a.Queries
		}
	}
	good := &Baseline{Tolerance: 0.1, RCDetQueries: map[string]int64{"Tiny test": det}}
	if err := good.Check(rep); err != nil {
		t.Fatalf("exact baseline failed: %v", err)
	}
	drifted := &Baseline{Tolerance: 0.1, RCDetQueries: map[string]int64{"Tiny test": det * 2}}
	if err := drifted.Check(rep); err == nil {
		t.Fatal("a 2x query deviation passed the 10% tolerance")
	}
	missing := &Baseline{Tolerance: 0.1, RCDetQueries: map[string]int64{}}
	if err := missing.Check(rep); err == nil {
		t.Fatal("missing baseline entry passed")
	}
}

// tinyRCDetQueries is the exact whole-run query count of the deterministic
// RC variant on the tiny dataset. Unlike the CI smoke baseline (which
// allows relative drift across the larger datasets), this pin is exact:
// the deterministic variant must issue precisely the same statements for a
// fixed seed, so any change here means an engine or algorithm change
// altered query planning and the constant (and likely the committed
// baseline file) must be updated deliberately.
const tinyRCDetQueries = 28

// tinyRCDetParses pins the SQL parse count of the same run. The driver
// prepares each of its distinct statement shapes exactly once — setup,
// representative selection, the two contraction steps, relabeling, and the
// constant hash probe — so a whole run costs six parses regardless of how
// many rounds it takes; every round-loop execution is a plan-cache hit.
// A higher number here means a statement stopped being prepared (or a
// shape was duplicated) and the prepare-once economics regressed.
const tinyRCDetParses = 6

func TestRCDetQueryCountPinned(t *testing.T) {
	rep := JSONReport(tinyDataset(), tinyConfig(), 0)
	for _, a := range rep.Algorithms {
		if a.Name != "rc-det" {
			continue
		}
		if a.Error != "" || a.DNF {
			t.Fatalf("deterministic RC did not finish: err=%q dnf=%v", a.Error, a.DNF)
		}
		if a.Queries != tinyRCDetQueries {
			t.Fatalf("deterministic RC issued %d queries, pinned at %d; update the constant only for intended planning changes",
				a.Queries, tinyRCDetQueries)
		}
		if a.Parses != tinyRCDetParses {
			t.Fatalf("deterministic RC parsed %d times, pinned at %d (one parse per distinct statement shape)",
				a.Parses, tinyRCDetParses)
		}
		if a.PlanHits == 0 {
			t.Fatal("deterministic RC recorded no plan-cache hits; round loops are replanning")
		}
		return
	}
	t.Fatal("report has no rc-det entry")
}

func TestLoadCommittedBaseline(t *testing.T) {
	b, err := LoadBaseline(filepath.Join("testdata", "bench_baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	if b.Tolerance <= 0 || len(b.RCDetQueries) == 0 {
		t.Fatalf("committed baseline is degenerate: %+v", b)
	}
}
