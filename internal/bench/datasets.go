// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (Tables I–V, Figures 5–6) plus the
// theory experiments and ablations indexed in DESIGN.md §3, at the
// reproduction scale of roughly 1/10 000 of the paper's datasets.
package bench

import (
	"math"
	"strings"

	"dbcc/internal/datagen"
	"dbcc/internal/graph"
)

// Dataset is one entry of the paper's Table II, with its laptop-scale
// generator and the values the paper reported (for side-by-side output).
type Dataset struct {
	// Name as printed in the paper's tables.
	Name string
	// Gen builds the stand-in graph; scale multiplies the edge count
	// (scale 1 ≈ 1/10 000 of the paper), seed varies repetitions.
	Gen func(scale float64, seed uint64) *graph.Graph
	// PaperV, PaperE are the paper's |V| and |E| in millions; PaperComps
	// is the paper's component count in thousands (Table II).
	PaperV, PaperE float64
	PaperComps     float64
	// PaperSecsRC .. PaperSecsCR are the paper's Table III runtimes in
	// seconds (0 = did not finish).
	PaperSecsRC, PaperSecsHM, PaperSecsTP, PaperSecsCR float64
}

// Datasets returns the twelve Table II datasets in the paper's order.
func Datasets() []Dataset {
	return []Dataset{
		{
			Name: "Andromeda",
			Gen: func(s float64, seed uint64) *graph.Graph {
				w := int(560 * math.Sqrt(s))
				h := int(330 * math.Sqrt(s))
				return datagen.Image2D(w, h, w*h/25, 1.1, 0.2, seed)
			},
			PaperV: 1459, PaperE: 2287, PaperComps: 62166,
			PaperSecsRC: 5431, PaperSecsHM: 0, PaperSecsTP: 37987, PaperSecsCR: 14506,
		},
		{
			Name: "Bitcoin addresses",
			Gen: func(s float64, seed uint64) *graph.Graph {
				return datagen.Bitcoin(int(52000*s), seed)
			},
			PaperV: 878, PaperE: 830, PaperComps: 216917,
			PaperSecsRC: 1530, PaperSecsHM: 11696, PaperSecsTP: 9811, PaperSecsCR: 3457,
		},
		{
			Name: "Bitcoin full",
			Gen: func(s float64, seed uint64) *graph.Graph {
				return datagen.BitcoinFull(int(52000*s), seed)
			},
			PaperV: 1476, PaperE: 2079, PaperComps: 37,
			PaperSecsRC: 6398, PaperSecsHM: 0, PaperSecsTP: 77359, PaperSecsCR: 26015,
		},
		candels("Candels10", 10, 83, 238, 39, 424, 3178, 1425, 867),
		candels("Candels20", 20, 166, 483, 48, 749, 5868, 2836, 1766),
		candels("Candels40", 40, 332, 975, 91, 1482, 13892, 6363, 3726),
		candels("Candels80", 80, 663, 1958, 224, 3463, 0, 15560, 8619),
		candels("Candels160", 160, 1326, 3923, 617, 9260, 0, 32615, 23409),
		{
			Name: "Friendster",
			Gen: func(s float64, seed uint64) *graph.Graph {
				n := int(6600 * s)
				if n < 60 {
					n = 60
				}
				return datagen.Friendster(n, 27, seed)
			},
			PaperV: 66, PaperE: 1806, PaperComps: 0.001,
			PaperSecsRC: 2462, PaperSecsHM: 9554, PaperSecsTP: 4409, PaperSecsCR: 5092,
		},
		{
			Name: "RMAT",
			Gen: func(s float64, seed uint64) *graph.Graph {
				return datagen.RMAT(14, int(208000*s), 0.57, 0.19, 0.19, 0.05, seed)
			},
			PaperV: 39, PaperE: 2079, PaperComps: 5,
			PaperSecsRC: 2151, PaperSecsHM: 4384, PaperSecsTP: 2816, PaperSecsCR: 3187,
		},
		{
			Name: "Path100M",
			Gen: func(s float64, seed uint64) *graph.Graph {
				return datagen.Path(int(10000 * s))
			},
			PaperV: 100, PaperE: 100, PaperComps: 0.001,
			PaperSecsRC: 366, PaperSecsHM: 0, PaperSecsTP: 1406, PaperSecsCR: 0,
		},
		{
			Name: "PathUnion10",
			Gen: func(s float64, seed uint64) *graph.Graph {
				return datagen.PathUnion(10, int(15400*s))
			},
			PaperV: 154, PaperE: 154, PaperComps: 0.01,
			PaperSecsRC: 386, PaperSecsHM: 0, PaperSecsTP: 4022, PaperSecsCR: 1202,
		},
	}
}

// candels builds a Candels-series entry: the frame count scales with the
// series index, like the paper's increasing video prefixes.
func candels(name string, size int, pv, pe, pc, rc, hm, tp, cr float64) Dataset {
	return Dataset{
		Name: name,
		Gen: func(s float64, seed uint64) *graph.Graph {
			frames := int(float64(15*size) / 10 * s)
			if frames < 2 {
				frames = 2
			}
			n := 32 * 18 * frames
			return datagen.Video3D(32, 18, frames, n/2000+1, 1.1, 0.04, seed)
		},
		PaperV: pv, PaperE: pe, PaperComps: pc,
		PaperSecsRC: rc, PaperSecsHM: hm, PaperSecsTP: tp, PaperSecsCR: cr,
	}
}

// DatasetByName returns the Table II entry with the given name
// (ASCII case-insensitive).
func DatasetByName(name string) (Dataset, bool) {
	for _, d := range Datasets() {
		if strings.EqualFold(d.Name, name) {
			return d, true
		}
	}
	return Dataset{}, false
}
